// Command datagen generates synthetic Freebase-like entity graphs (the
// seven evaluation domains of the paper's Table 2) and writes them as text
// triples or binary snapshots.
//
// Example:
//
//	datagen -domain music -scale 0.001 -out music.egpt
//	datagen -domain film -format triples -out film.eg
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	previewtables "github.com/uta-db/previewtables"
	"github.com/uta-db/previewtables/internal/freebase"
)

func main() {
	domain := flag.String("domain", "", "domain to generate: "+strings.Join(freebase.Domains(), ", "))
	scale := flag.Float64("scale", 0, "fraction of the paper-reported sizes (0 = default 1e-3)")
	seed := flag.Int64("seed", 0, "generation seed (0 = default)")
	format := flag.String("format", "snapshot", "output format: snapshot or triples")
	out := flag.String("out", "", "output path ('-' or empty = stdout, triples only)")
	flag.Parse()

	if *domain == "" {
		fmt.Fprintln(os.Stderr, "datagen: -domain is required")
		flag.Usage()
		os.Exit(2)
	}
	opts := freebase.DefaultGenOptions()
	if *scale > 0 {
		opts.Scale = *scale
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	g, err := freebase.Generate(*domain, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "generated %s: %s\n", *domain, g.Stats())

	switch *format {
	case "snapshot":
		if *out == "" || *out == "-" {
			fatal(fmt.Errorf("snapshot output needs -out PATH"))
		}
		if err := previewtables.SaveSnapshot(*out, g); err != nil {
			fatal(err)
		}
	case "triples":
		w := os.Stdout
		if *out != "" && *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := previewtables.WriteTriples(w, g); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
	os.Exit(1)
}
