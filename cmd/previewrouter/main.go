// Command previewrouter is the fleet's front door: it partitions graphs
// across leader shards by consistent hashing, proxies writes to the
// owning shard's leader, spreads reads across that shard's caught-up
// replicas, and promotes the most-advanced replica when a leader stops
// answering probes.
//
// Each -shard flag names one shard and its processes — the leader
// (a previewd running -mutable -wal-dir) first, then any replicas
// (previewd -follow pointed AT THIS ROUTER, so a leader swap needs no
// replica reconfiguration):
//
//	previewrouter -addr :8090 \
//	  -shard alpha=http://10.0.0.1:8080,http://10.0.0.2:8080 \
//	  -shard beta=http://10.0.1.1:8080
//
// Shard IDs are the ring's hash keys: keep them stable across restarts
// and config edits, or graphs will re-map. Adding or removing a shard
// moves only ~1/N of the graphs (the consistent-hashing contract);
// renaming one moves everything it owned. Membership also changes at
// runtime: POST /v1/fleet/shards joins a shard and DELETE
// /v1/fleet/shards/{id} drains one, each migrating exactly the
// reassigned graphs while reads keep flowing.
//
// Graph placement must match ring ownership: the router forwards a
// graph's requests to the shard the ring assigns it, so each graph has
// to be provisioned on its owning shard. /v1/fleet lists every shard's
// graphs; a graph served by a non-owning shard is unreachable through
// the router and logged as a warning on each probe sweep that sees the
// topology change.
//
// The router serves the same read discipline as a single previewd —
// ETags, If-None-Match, HEAD, 404/405/503 ordering — plus /v1/fleet
// (topology and per-replica lag) and a merged /v1/graphs spliced from
// every shard.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"github.com/uta-db/previewtables/internal/fleet"
)

// shardFlags collects repeated -shard values.
type shardFlags []string

func (s *shardFlags) String() string     { return strings.Join(*s, " ") }
func (s *shardFlags) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	log.SetPrefix("previewrouter: ")
	log.SetFlags(0)

	addr := flag.String("addr", ":8090", "listen address")
	var shards shardFlags
	flag.Var(&shards, "shard", "one shard as id=leaderURL[,followerURL...]; repeat per shard")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "how often to probe every node for liveness and replication lag")
	failAfter := flag.Int("fail-after", fleet.DefaultFailAfter, "consecutive failed leader probes before failing over to a replica")
	vnodes := flag.Int("vnodes", 0, "ring points per shard (0 = default); must match across router restarts for stable ownership")
	flag.Parse()

	specs, err := parseShards(shards)
	if err != nil {
		log.Fatal(err)
	}
	rt, err := fleet.NewRouter(specs, fleet.RouterOptions{
		Vnodes:    *vnodes,
		FailAfter: *failAfter,
		Logf:      log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	// One synchronous sweep before serving: without it the router answers
	// its first probe-interval of traffic knowing no graph sets, no lag,
	// and no fences — every read goes to the leader and writes are
	// unstamped. Probe first, then open the door.
	rt.ProbeAll()
	rt.Start(*probeInterval)
	defer rt.Stop()

	for _, s := range specs {
		log.Printf("shard %s: leader %s, %d replica(s)", s.ID, s.Leader, len(s.Followers))
	}
	log.Printf("routing %d shard(s) on %s", len(specs), *addr)
	log.Fatal(http.ListenAndServe(*addr, rt))
}

// parseShards turns -shard flags into ShardSpecs.
func parseShards(flags shardFlags) ([]fleet.ShardSpec, error) {
	if len(flags) == 0 {
		return nil, fmt.Errorf("at least one -shard id=leaderURL is required")
	}
	var specs []fleet.ShardSpec
	for _, f := range flags {
		id, rest, ok := strings.Cut(f, "=")
		if !ok || id == "" || rest == "" {
			return nil, fmt.Errorf("malformed -shard %q, want id=leaderURL[,followerURL...]", f)
		}
		urls := strings.Split(rest, ",")
		for _, u := range urls {
			if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
				return nil, fmt.Errorf("-shard %q: %q is not an http(s) URL", id, u)
			}
		}
		specs = append(specs, fleet.ShardSpec{
			ID:        id,
			Leader:    strings.TrimRight(urls[0], "/"),
			Followers: trimAll(urls[1:]),
		})
	}
	return specs, nil
}

func trimAll(urls []string) []string {
	out := make([]string, len(urls))
	for i, u := range urls {
		out[i] = strings.TrimRight(u, "/")
	}
	return out
}
