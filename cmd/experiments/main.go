// Command experiments regenerates the paper's evaluation tables and
// figures on the synthetic Freebase domains.
//
// Usage:
//
//	experiments [-run all|<ids>] [-scale f] [-seed n] [-repeats n]
//
// Experiment ids: table2 table3 table4 fig5 fig6 fig7 fig8 fig9 table5
// table6 table7 tables13-16 figs10-14 table8 table9 tables17-21 table10
// table11 table12 tables22-23. Comma-separate to run several.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/uta-db/previewtables/internal/experiments"
	"github.com/uta-db/previewtables/internal/freebase"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	scale := flag.Float64("scale", 0, "generation scale (fraction of paper sizes; 0 = default 1e-3)")
	seed := flag.Int64("seed", 0, "random seed (0 = default)")
	repeats := flag.Int("repeats", 0, "timing repetitions (0 = default 3)")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *scale > 0 {
		cfg.Gen.Scale = *scale
	}
	if *seed != 0 {
		cfg.Seed = *seed
		cfg.Gen.Seed = *seed
	}
	if *repeats > 0 {
		cfg.Repeats = *repeats
	}
	r := experiments.New(cfg)

	want := map[string]bool{}
	all := *run == "all"
	for _, id := range strings.Split(*run, ",") {
		want[strings.TrimSpace(id)] = true
	}
	sel := func(id string) bool { return all || want[id] }

	type tableExp struct {
		id string
		f  func() (*experiments.Table, error)
	}
	type figExp struct {
		id string
		f  func() (*experiments.Figure, error)
	}

	tables := []tableExp{
		{"table2", r.Table2},
		{"table3", r.Table3},
		{"table4", r.Table4},
		{"table5", r.Table5},
		{"table6", r.Table6},
		{"table7", r.Table7},
		{"table8", r.Table8},
		{"table9", r.Table9},
		{"table10", r.Table10},
		{"table11", r.Table11},
		{"table12", r.Table12},
		{"tables22-23", r.Tables22and23},
	}
	figures := []figExp{
		{"fig5", r.Figure5},
		{"fig6", r.Figure6},
		{"fig7", r.Figure7},
		{"fig8", r.Figure8},
		{"fig9", r.Figure9},
	}

	ok := true
	for _, e := range tables {
		if !sel(e.id) {
			continue
		}
		t, err := e.f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.id, err)
			ok = false
			continue
		}
		t.Fprint(os.Stdout)
		fmt.Println()
	}
	for _, e := range figures {
		if !sel(e.id) {
			continue
		}
		f, err := e.f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.id, err)
			ok = false
			continue
		}
		f.Fprint(os.Stdout)
		fmt.Println()
	}

	// Per-domain experiment families.
	if sel("tables13-16") || sel("table7") && all {
		// covered by the loop below when all
	}
	if all || want["tables13-16"] {
		for _, domain := range freebase.GoldDomains() {
			if domain == "music" {
				continue // that's table7
			}
			t, err := r.PairwiseZ(domain)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: pairwise %s: %v\n", domain, err)
				ok = false
				continue
			}
			t.Fprint(os.Stdout)
			fmt.Println()
		}
	}
	if all || want["figs10-14"] {
		for _, domain := range freebase.GoldDomains() {
			t, err := r.TimeBoxplots(domain)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: boxplots %s: %v\n", domain, err)
				ok = false
				continue
			}
			t.Fprint(os.Stdout)
			fmt.Println()
		}
	}
	if all || want["tables17-21"] {
		for _, domain := range freebase.GoldDomains() {
			t, err := r.Likert(domain)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: likert %s: %v\n", domain, err)
				ok = false
				continue
			}
			t.Fprint(os.Stdout)
			fmt.Println()
		}
	}

	if !ok {
		os.Exit(1)
	}
}
