// Command previewgen discovers and renders an optimal preview for an
// entity graph.
//
// Input is one of:
//
//	-triples file.eg     the line-oriented text triple format
//	-ntriples file.nt    an N-Triples subset (literals dropped)
//	-snapshot file.egpt  a binary snapshot
//	-domain music        a synthetic Freebase-like domain
//
// Example:
//
//	previewgen -domain film -k 5 -n 10 -mode tight -d 2 -tuples 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	previewtables "github.com/uta-db/previewtables"
	"github.com/uta-db/previewtables/internal/freebase"
)

func main() {
	triplesPath := flag.String("triples", "", "input entity graph in text triple format")
	ntriplesPath := flag.String("ntriples", "", "input entity graph in N-Triples format")
	snapshotPath := flag.String("snapshot", "", "input entity graph snapshot")
	domain := flag.String("domain", "", "generate a synthetic domain: "+strings.Join(freebase.Domains(), ", "))
	scale := flag.Float64("scale", 0, "synthetic generation scale (0 = default)")

	k := flag.Int("k", 3, "number of preview tables")
	n := flag.Int("n", 9, "maximum total non-key attributes")
	mode := flag.String("mode", "concise", "preview space: concise, tight or diverse")
	d := flag.Int("d", 2, "distance bound for tight/diverse previews")
	keyMeasure := flag.String("key", "coverage", "key attribute measure: coverage or walk")
	nonKeyMeasure := flag.String("nonkey", "coverage", "non-key attribute measure: coverage or entropy")
	tuples := flag.Int("tuples", 4, "sample tuples per table (0 = schema only)")
	markdown := flag.Bool("markdown", false, "render Markdown instead of text")
	dot := flag.Bool("dot", false, "emit Graphviz DOT of the schema with the preview highlighted")
	suggest := flag.Bool("suggest", false, "print suggested (k, n) and distance bounds and exit")
	flag.Parse()

	g, err := loadGraph(*triplesPath, *ntriplesPath, *snapshotPath, *domain, *scale)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loaded entity graph: %s\n", g.Stats())

	km := previewtables.KeyCoverage
	if *keyMeasure == "walk" {
		km = previewtables.KeyRandomWalk
	}
	nm := previewtables.NonKeyCoverage
	if *nonKeyMeasure == "entropy" {
		nm = previewtables.NonKeyEntropy
	}
	disc := previewtables.NewDiscoverer(g, km, nm)

	if *suggest {
		c := disc.SuggestSize(4 * (*k + *n))
		sug := disc.SuggestDistance()
		fmt.Printf("suggested size: k=%d n=%d\n", c.K, c.N)
		fmt.Printf("suggested distance: tight d=%d, diverse d=%d (preferred: %s)\n",
			sug.TightD, sug.DiverseD, sug.Preferred)
		return
	}

	c := previewtables.Constraint{K: *k, N: *n, D: *d}
	switch *mode {
	case "concise":
		c.Mode = previewtables.Concise
	case "tight":
		c.Mode = previewtables.Tight
	case "diverse":
		c.Mode = previewtables.Diverse
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	p, err := disc.Discover(c)
	if err != nil {
		fatal(err)
	}

	switch {
	case *dot:
		err = previewtables.PreviewDOT(os.Stdout, g.Schema(), &p)
	case *markdown:
		err = previewtables.RenderMarkdownPreview(os.Stdout, g, &p, *tuples)
	default:
		err = previewtables.Render(os.Stdout, g, &p, *tuples)
	}
	if err != nil {
		fatal(err)
	}
}

func loadGraph(triples, ntriples, snapshot, domain string, scale float64) (*previewtables.EntityGraph, error) {
	switch {
	case triples != "":
		f, err := os.Open(triples)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return previewtables.ReadTriples(f)
	case ntriples != "":
		f, err := os.Open(ntriples)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return previewtables.ReadNTriples(f, previewtables.NTriplesOptions{DropLiterals: true})
	case snapshot != "":
		return previewtables.LoadSnapshot(snapshot)
	case domain != "":
		opts := freebase.DefaultGenOptions()
		if scale > 0 {
			opts.Scale = scale
		}
		return freebase.Generate(domain, opts)
	default:
		return nil, fmt.Errorf("no input: pass -triples, -ntriples, -snapshot or -domain")
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "previewgen: %v\n", err)
	os.Exit(1)
}
