// Command previewd serves preview-table discovery over HTTP: it loads one
// or more entity graphs into a named registry and answers JSON preview
// queries, caching the expensive per-graph scoring precomputation across
// requests (see internal/service).
//
// Graphs are registered with repeatable flags. File formats are inferred
// from the extension: .nt is the N-Triples subset (literals dropped),
// .egpt/.snap is the binary snapshot, anything else the text triple
// format.
//
//	previewd -graph movies=movies.eg -graph dump=dump.nt -domain film
//
// then:
//
//	curl localhost:8080/v1/graphs
//	curl localhost:8080/v1/graphs/film/stats
//	curl 'localhost:8080/v1/graphs/film/preview?k=3&n=9&tuples=4'
//	curl 'localhost:8080/v1/graphs/film/preview?k=4&n=8&mode=diverse&d=3'
//	curl 'localhost:8080/v1/graphs/film/render?k=3&n=9&tuples=4&format=markdown'
//
// With -mutable every graph also accepts live updates (epoch-versioned;
// see docs/ARCHITECTURE.md):
//
//	curl -XPOST localhost:8080/v1/graphs/film/edges -d '{"edges":[...]}'
//	curl -XPOST localhost:8080/v1/graphs/film/triples --data-binary @batch.eg
//
// and -checkpoint-dir persists each mutated graph back to a snapshot file
// every -checkpoint-interval (skipping epochs already on disk).
//
// Add -wal-dir and writes become durable: every batch is appended to a
// per-graph write-ahead log (and fsynced) before its epoch is
// acknowledged, and startup recovers each graph exactly — newest valid
// checkpoint, then the WAL tail, resuming at the recovered epoch. With
// both flags set, checkpoints are epoch-named snapshots committed
// through a current-manifest, and each checkpoint truncates the WAL
// segments it makes redundant, so the log stays bounded.
//
// A durable previewd is also a replication leader: its WAL doubles as
// the replication log. Start a read replica with
//
//	previewd -follow http://leader:8080 -addr :8081
//
// and it bootstraps every replicated graph from the leader, tails the
// leader's WAL over HTTP, and serves byte-identical reads at the
// leader's epochs; writes to the replica answer 503 naming the leader.
// Give the replica -wal-dir and -checkpoint-dir and it is durable in
// its own right — a restart resumes from local state and only ships the
// records it missed. See docs/ARCHITECTURE.md, "Replication".
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	previewtables "github.com/uta-db/previewtables"
	"github.com/uta-db/previewtables/internal/dynamic"
	"github.com/uta-db/previewtables/internal/freebase"
	"github.com/uta-db/previewtables/internal/score"
	"github.com/uta-db/previewtables/internal/service"
	"github.com/uta-db/previewtables/internal/storage"
)

func main() {
	log.SetPrefix("previewd: ")
	log.SetFlags(0)

	reg := service.NewRegistry()
	addr := flag.String("addr", ":8080", "listen address")
	scale := flag.Float64("scale", 0, "synthetic generation scale for -domain (0 = default)")
	parallelism := flag.Int("parallelism", 0, "worker count for scoring precomputation, incremental refreshes and preview search (0 = one per core, 1 = sequential); results are identical at any setting")
	entities := flag.Int("entities", 0, "with -domain: target entity count for synthetic generation, overriding -scale (0 = use -scale)")
	warm := flag.Bool("warm", true, "precompute scores for every graph before serving (first requests would otherwise pay it, possibly past the write timeout)")
	mutable := flag.Bool("mutable", false, "serve every graph as mutable: POST /v1/graphs/{name}/edges and .../triples apply live updates with epoch-versioned snapshots")
	ckptDir := flag.String("checkpoint-dir", "", "with -mutable: directory for periodic snapshot persistence of mutated graphs (one <name>.egpt per graph; epoch-named snapshots plus a <name>.current manifest when -wal-dir is also set)")
	ckptEvery := flag.Duration("checkpoint-interval", 30*time.Second, "how often to checkpoint mutated graphs to -checkpoint-dir")
	walDir := flag.String("wal-dir", "", "with -mutable: directory for per-graph write-ahead logs; every batch is logged and fsynced before its epoch is acknowledged, and startup replays checkpoint + WAL tail to resume at the exact pre-crash epoch")
	follow := flag.String("follow", "", "run as a read replica of the leader previewd at this base URL: its replicated graphs are bootstrapped and tail-followed over WAL shipping, writes here answer 503 naming the leader; add -wal-dir and -checkpoint-dir to make the replica durable (restart resumes from local state)")
	noRespCache := flag.Bool("no-response-cache", false, "disable the epoch-keyed response cache: every read renders cold (ETags and conditional GETs still work; useful for measuring the cache's effect)")
	anytimeBudget := flag.Int("anytime-budget", service.DefaultAnytimeBudget, "candidate-subset budget for ?anytime=1 preview requests: the immediate answer is the best preview found within this many scored subsets while background refinement converges on the exact one (0 = no bound, anytime answers are exact)")
	var loads []func() (string, *previewtables.EntityGraph, error) // deferred so -scale applies regardless of flag order
	flag.Func("graph", "register a graph: name=path (repeatable; format by extension)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("want name=path, got %q", v)
		}
		loads = append(loads, func() (string, *previewtables.EntityGraph, error) {
			g, err := loadFile(path)
			return name, g, err
		})
		return nil
	})
	flag.Func("domain", "register a synthetic domain under its own name (repeatable): "+
		strings.Join(freebase.Domains(), ", "), func(v string) error {
		loads = append(loads, func() (string, *previewtables.EntityGraph, error) {
			g, err := genDomain(v, *scale, *entities)
			return v, g, err
		})
		return nil
	})
	flag.Parse()

	workers := *parallelism
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	reg.Parallelism = workers
	walkOpts := score.DefaultWalkOptions()
	walkOpts.Parallelism = workers

	if len(loads) == 0 && *follow == "" && !(*mutable && *walDir != "") {
		// A durable mutable node may legitimately start empty: it is a
		// migration target, acquiring graphs at runtime through the fleet
		// router's adoption pipeline (and re-recovering them from local
		// state on restart).
		fmt.Fprintln(os.Stderr, "previewd: no graphs; pass at least one -graph name=path or -domain name (or -follow a leader, or -mutable -wal-dir to start empty as a migration target)")
		flag.Usage()
		os.Exit(2)
	}
	if *ckptDir != "" && !*mutable && *follow == "" {
		log.Fatal("-checkpoint-dir requires -mutable or -follow (static graphs never change)")
	}
	if *walDir != "" && !*mutable && *follow == "" {
		log.Fatal("-wal-dir requires -mutable or -follow (static graphs never change)")
	}
	if *ckptDir != "" && *ckptEvery <= 0 {
		log.Fatalf("-checkpoint-interval must be positive, got %v", *ckptEvery)
	}
	if *follow != "" {
		if len(loads) > 0 {
			log.Fatal("-follow replicates the leader's graphs; drop -graph/-domain")
		}
		if *mutable {
			log.Fatal("-follow is incompatible with -mutable: a replica accepts writes only from the replication stream")
		}
		if (*ckptDir == "") != (*walDir == "") {
			log.Fatal("a durable replica needs -checkpoint-dir and -wal-dir together (the checkpoint anchors the local WAL's epoch base)")
		}
	}
	if *walDir != "" {
		// Arm write fencing before anything serves or tails: the fleet
		// router stamps every proxied write with this node's shard fence,
		// and a stale stamp — a deposed leader's, or a write routed under
		// superseded membership — is refused with 409 instead of being
		// acknowledged. The fence persists next to the WAL manifests so a
		// restart cannot forget it was deposed.
		if err := reg.EnableFencing(*walDir); err != nil {
			log.Fatal(err)
		}
		if f, on := reg.Fencing(); on && f > 0 {
			log.Printf("fencing: recovered epoch %d", f)
		}
	}
	wals := map[string]*storage.WAL{}
	ckpts := map[string]*storage.Checkpointer{}
	var replicaFollowers []*service.Follower
	if *follow != "" {
		if *ckptDir != "" {
			if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
				log.Fatal(err)
			}
		}
		followers, err := service.FollowAll(reg, service.FollowerOptions{
			Leader:        *follow,
			Walk:          walkOpts,
			CheckpointDir: *ckptDir,
			WALRoot:       *walDir,
		})
		if err != nil {
			log.Fatal(err)
		}
		if len(followers) == 0 {
			log.Fatalf("leader %s ships no graphs; it needs -mutable -wal-dir", *follow)
		}
		for _, f := range followers {
			log.Printf("graph %q: following %s from epoch %d", f.Name(), *follow, f.Applied())
			if w := f.WAL(); w != nil {
				wals[f.Name()] = w
			}
			// Share the follower's checkpointer: its re-bootstrap saves and
			// the periodic loop's must serialize through one instance.
			if ck := f.Checkpointer(); ck != nil {
				ckpts[f.Name()] = ck
			}
		}
		replicaFollowers = followers
	}
	for _, load := range loads {
		name, g, err := load()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("graph %q: %s", name, g.Stats())
		switch {
		case *mutable && *walDir != "":
			// Durable: recover checkpoint + WAL tail, then log every new
			// batch before acknowledging it. The recovery origin is kept so
			// followers can bootstrap a byte-identical replica.
			rec, err := service.RecoverLive(g, name, *ckptDir, filepath.Join(*walDir, name), walkOpts)
			if err != nil {
				log.Fatal(err)
			}
			if epoch := rec.Live.Snapshot().Epoch; epoch > 0 {
				log.Printf("graph %q: recovered to epoch %d (%s)", name, epoch, rec.Live.Snapshot().Stats)
			}
			opts := []service.LiveOption{
				service.WithDurability(rec.WAL),
				service.WithOrigin(rec.Origin, rec.OriginEpoch),
			}
			if err := reg.AddLive(name, rec.Live, opts...); err != nil {
				log.Fatal(err)
			}
			wals[name] = rec.WAL
		case *mutable:
			dg, err := dynamic.FromEntityGraph(g)
			if err != nil {
				log.Fatal(err)
			}
			live, err := dynamic.NewLive(dg, walkOpts)
			if err != nil {
				log.Fatal(err)
			}
			if err := reg.AddLive(name, live); err != nil {
				log.Fatal(err)
			}
		default:
			if err := reg.Add(name, g); err != nil {
				log.Fatal(err)
			}
		}
	}
	if *mutable && *walDir != "" && *ckptDir != "" {
		// Graphs adopted at runtime (fleet migration) are registered by no
		// flag; their checkpoint manifests are how a restart finds them.
		recovered, err := service.RecoverAdopted(reg, *ckptDir, *walDir, walkOpts)
		if err != nil {
			log.Fatal(err)
		}
		for name, rec := range recovered {
			log.Printf("graph %q: recovered adopted graph to epoch %d", name, rec.Live.Snapshot().Epoch)
			wals[name] = rec.WAL
		}
	}
	if *warm {
		for _, name := range reg.Names() {
			gr, ok := reg.Get(name)
			if !ok {
				continue
			}
			start := time.Now()
			gr.Discoverer(score.KeyCoverage, score.NonKeyCoverage)
			log.Printf("graph %q: scores precomputed in %v", name, time.Since(start).Round(time.Millisecond))
		}
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			log.Fatal(err)
		}
		go checkpointLoop(reg, *ckptDir, *ckptEvery, wals, ckpts)
	}

	handler := service.New(reg)
	handler.NoCache = *noRespCache
	handler.AnytimeBudget = *anytimeBudget
	if *mutable && *walDir != "" && *ckptDir != "" {
		// A durable leader participates in fleet graph migration: adopt
		// tails a graph from its old owner, promote opens it for writes
		// after cutover, drop cleans up the source side. All three routes
		// are fence-gated; only the fleet router drives them.
		adopter := service.NewAdopter(reg, service.FollowerOptions{
			Walk:          walkOpts,
			CheckpointDir: *ckptDir,
			WALRoot:       *walDir,
		})
		handler.OnAdopt = func(graph, source string) error {
			log.Printf("graph %q: adopting from %s", graph, source)
			return adopter.Adopt(graph, source)
		}
		handler.OnGraphPromote = func(graph string) error {
			log.Printf("graph %q: promoted (migration cutover)", graph)
			return adopter.Promote(graph)
		}
		handler.OnDrop = func(graph string) error {
			log.Printf("graph %q: dropped (migrated away)", graph)
			return adopter.Drop(graph)
		}
	}
	if len(replicaFollowers) > 0 {
		// POST /v1/replication/promote turns this replica into a leader:
		// every replication loop stops (WALs stay open, so subsequent local
		// writes keep their durability hook) and writes are accepted here.
		handler.OnPromote = func() error {
			for _, f := range replicaFollowers {
				if err := f.Promote(); err != nil {
					return err
				}
			}
			log.Printf("promoted: now leading %d graph(s)", len(replicaFollowers))
			return nil
		}
	}
	srv := &http.Server{
		Addr:         *addr,
		Handler:      handler,
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 60 * time.Second,
	}
	mode := "read-only"
	switch {
	case *follow != "":
		mode = "read-replica (leader " + *follow + ")"
	case *mutable:
		mode = "mutable"
	}
	log.Printf("serving %d %s graph(s) %v on %s (parallelism %d)", len(reg.Names()), mode, reg.Names(), *addr, workers)
	log.Fatal(srv.ListenAndServe())
}

// checkpointLoop persists every mutable graph's latest snapshot to dir on
// a fixed cadence. The Checkpointer skips epochs already on disk, so a
// quiet graph costs one atomic-counter read per tick. Graphs with a WAL
// get durable (epoch-named, manifest-committed) checkpoints that
// truncate the replayed log segments after each successful save.
func checkpointLoop(reg *service.Registry, dir string, every time.Duration, wals map[string]*storage.WAL, ckpts map[string]*storage.Checkpointer) {
	// Follower graphs arrive with their checkpointer pre-seeded (shared
	// with the replication loop's re-bootstrap saves); the rest
	// materialize lazily per tick, so a graph registered after the loop
	// starts is picked up instead of dereferenced as nil.
	for range time.Tick(every) {
		for _, name := range reg.Names() {
			gr, ok := reg.Get(name)
			if !ok || gr.Live() == nil {
				continue
			}
			ck := ckpts[name]
			if ck == nil && gr.FollowState() != nil {
				// Mid-adoption: the adoption's own Follower checkpoints this
				// graph (bootstrap commit, re-bootstrap saves) through its
				// private Checkpointer; a second one here would race it.
				// After promotion FollowState clears and the graph joins the
				// loop below, with its WAL found via gr.WAL().
				continue
			}
			if ck == nil {
				wal := wals[name]
				if wal == nil {
					// Registered after boot (adopted, then promoted): the WAL
					// lives on the graph's durability hook, not in the boot-time
					// map.
					wal = gr.WAL()
				}
				if wal != nil {
					ck = storage.NewDurableCheckpointer(dir, name, wal)
				} else {
					ck = storage.NewCheckpointer(filepath.Join(dir, name+".egpt"))
				}
				ckpts[name] = ck
			}
			snap := gr.Live().Snapshot()
			wrote, err := ck.Save(snap.Frozen, snap.Epoch)
			if err != nil {
				log.Printf("checkpoint %q: %v", name, err)
				continue
			}
			if wrote {
				log.Printf("checkpoint %q: epoch %d → %s", name, snap.Epoch, ck.Path())
			}
		}
	}
}

// loadFile loads a graph file, inferring the format from its extension.
func loadFile(path string) (*previewtables.EntityGraph, error) {
	var (
		g   *previewtables.EntityGraph
		err error
	)
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".egpt", ".snap":
		g, err = previewtables.LoadSnapshot(path)
	case ".nt":
		var f *os.File
		if f, err = os.Open(path); err == nil {
			g, err = previewtables.ReadNTriples(f, previewtables.NTriplesOptions{DropLiterals: true})
			f.Close()
		}
	default:
		var f *os.File
		if f, err = os.Open(path); err == nil {
			g, err = previewtables.ReadTriples(f)
			f.Close()
		}
	}
	if err != nil {
		return nil, fmt.Errorf("loading %s: %w", path, err)
	}
	return g, nil
}

// genDomain generates a synthetic Freebase-like domain.
func genDomain(domain string, scale float64, entities int) (*previewtables.EntityGraph, error) {
	opts := freebase.DefaultGenOptions()
	if scale > 0 {
		opts.Scale = scale
	}
	if entities > 0 {
		opts.TargetEntities = entities
	}
	return freebase.Generate(domain, opts)
}
