// Command previewd serves preview-table discovery over HTTP: it loads one
// or more entity graphs into a named registry and answers JSON preview
// queries, caching the expensive per-graph scoring precomputation across
// requests (see internal/service).
//
// Graphs are registered with repeatable flags. File formats are inferred
// from the extension: .nt is the N-Triples subset (literals dropped),
// .egpt/.snap is the binary snapshot, anything else the text triple
// format.
//
//	previewd -graph movies=movies.eg -graph dump=dump.nt -domain film
//
// then:
//
//	curl localhost:8080/v1/graphs
//	curl localhost:8080/v1/graphs/film/stats
//	curl 'localhost:8080/v1/graphs/film/preview?k=3&n=9&tuples=4'
//	curl 'localhost:8080/v1/graphs/film/preview?k=4&n=8&mode=diverse&d=3'
//	curl 'localhost:8080/v1/graphs/film/render?k=3&n=9&tuples=4&format=markdown'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	previewtables "github.com/uta-db/previewtables"
	"github.com/uta-db/previewtables/internal/freebase"
	"github.com/uta-db/previewtables/internal/score"
	"github.com/uta-db/previewtables/internal/service"
)

func main() {
	log.SetPrefix("previewd: ")
	log.SetFlags(0)

	reg := service.NewRegistry()
	addr := flag.String("addr", ":8080", "listen address")
	scale := flag.Float64("scale", 0, "synthetic generation scale for -domain (0 = default)")
	warm := flag.Bool("warm", true, "precompute scores for every graph before serving (first requests would otherwise pay it, possibly past the write timeout)")
	var loads []func() error // deferred so -scale applies regardless of flag order
	flag.Func("graph", "register a graph: name=path (repeatable; format by extension)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("want name=path, got %q", v)
		}
		loads = append(loads, func() error { return addFile(reg, name, path) })
		return nil
	})
	flag.Func("domain", "register a synthetic domain under its own name (repeatable): "+
		strings.Join(freebase.Domains(), ", "), func(v string) error {
		loads = append(loads, func() error { return addDomain(reg, v, *scale) })
		return nil
	})
	flag.Parse()

	if len(loads) == 0 {
		fmt.Fprintln(os.Stderr, "previewd: no graphs; pass at least one -graph name=path or -domain name")
		flag.Usage()
		os.Exit(2)
	}
	for _, load := range loads {
		if err := load(); err != nil {
			log.Fatal(err)
		}
	}
	if *warm {
		for _, name := range reg.Names() {
			gr, ok := reg.Get(name)
			if !ok {
				continue
			}
			start := time.Now()
			gr.Discoverer(score.KeyCoverage, score.NonKeyCoverage)
			log.Printf("graph %q: scores precomputed in %v", name, time.Since(start).Round(time.Millisecond))
		}
	}

	srv := &http.Server{
		Addr:         *addr,
		Handler:      service.New(reg),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 60 * time.Second,
	}
	log.Printf("serving %d graph(s) %v on %s", len(reg.Names()), reg.Names(), *addr)
	log.Fatal(srv.ListenAndServe())
}

// addFile loads a graph file, inferring the format from its extension.
func addFile(reg *service.Registry, name, path string) error {
	var (
		g   *previewtables.EntityGraph
		err error
	)
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".egpt", ".snap":
		g, err = previewtables.LoadSnapshot(path)
	case ".nt":
		var f *os.File
		if f, err = os.Open(path); err == nil {
			g, err = previewtables.ReadNTriples(f, previewtables.NTriplesOptions{DropLiterals: true})
			f.Close()
		}
	default:
		var f *os.File
		if f, err = os.Open(path); err == nil {
			g, err = previewtables.ReadTriples(f)
			f.Close()
		}
	}
	if err != nil {
		return fmt.Errorf("loading %s: %w", path, err)
	}
	log.Printf("graph %q from %s: %s", name, path, g.Stats())
	return reg.Add(name, g)
}

// addDomain generates a synthetic Freebase-like domain and registers it
// under the domain name.
func addDomain(reg *service.Registry, domain string, scale float64) error {
	opts := freebase.DefaultGenOptions()
	if scale > 0 {
		opts.Scale = scale
	}
	g, err := freebase.Generate(domain, opts)
	if err != nil {
		return err
	}
	log.Printf("graph %q (synthetic): %s", domain, g.Stats())
	return reg.Add(domain, g)
}
