// Command loadgen measures the previewtables serving stack under a
// mixed read/write workload: latency percentiles, throughput,
// response-cache hit rate, conditional-GET (304) behavior and
// allocation cost per request. Results print as one JSON object,
// shaped for appending to BENCH_serving.json.
//
// The default workload serves the paper's Fig. 1 graph mutably and
// reads across the list, stats, preview and render routes:
//
//	loadgen -workers 32 -duration 5s
//	loadgen -workers 32 -duration 5s -write-every 64   # one write per 64 requests
//	loadgen -conditional                               # clients replay ETags
//	loadgen -no-cache                                  # cold contrast arm
//
// Synthetic domains scale the graph up (-domain music -entities 30000);
// write bodies are synthesized from the domain's own schema, so the
// write arm works on any graph.
//
// With -target the generator instead drives a RUNNING server over HTTP
// — a previewd node or the fleet router — discovering its graphs from
// GET /v1/graphs and mixing reads and writes across all of them, so a
// fleet run lands traffic on every shard:
//
//	loadgen -target http://127.0.0.1:8090 -workers 8 -duration 5s -write-every 32
//
// Targeted write bodies are synthesized from the fig1 schema (or from
// -domain's schema when set), matching how previewd and the fleet
// harness provision mutable graphs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/uta-db/previewtables/internal/dynamic"
	"github.com/uta-db/previewtables/internal/fig1"
	"github.com/uta-db/previewtables/internal/freebase"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/loadgen"
	"github.com/uta-db/previewtables/internal/score"
	"github.com/uta-db/previewtables/internal/service"
)

func main() {
	log.SetPrefix("loadgen: ")
	log.SetFlags(0)

	workers := flag.Int("workers", 32, "concurrent request loops")
	duration := flag.Duration("duration", 5*time.Second, "measured run length")
	writeEvery := flag.Int("write-every", 0, "interleave one write batch per this many requests (0 = read-only)")
	conditional := flag.Bool("conditional", false, "replay each path's ETag as If-None-Match, like a caching client")
	noCache := flag.Bool("no-cache", false, "disable the response cache (cold contrast arm)")
	domain := flag.String("domain", "", "benchmark a synthetic domain instead of fig1 (one of: "+fmt.Sprint(freebase.Domains())+")")
	entities := flag.Int("entities", 0, "with -domain: target entity count")
	seed := flag.Int64("seed", 1, "workload randomness seed")
	out := flag.String("out", "", "write the JSON result here instead of stdout")
	target := flag.String("target", "", "drive a running server at this base URL over HTTP (e.g. the fleet router) instead of an in-process handler; graphs are discovered from its /v1/graphs")
	flag.Parse()

	if *target != "" {
		runTarget(*target, *workers, *duration, *writeEvery, *conditional, *domain, *entities, *seed, *out)
		return
	}

	name, g := "fig1", fig1.Graph()
	if *domain != "" {
		opts := freebase.DefaultGenOptions()
		if *entities > 0 {
			opts.TargetEntities = *entities
		}
		var err error
		if g, err = freebase.Generate(*domain, opts); err != nil {
			log.Fatal(err)
		}
		name = *domain
	}
	log.Printf("graph %q: %s", name, g.Stats())

	dg, err := dynamic.FromEntityGraph(g)
	if err != nil {
		log.Fatal(err)
	}
	live, err := dynamic.NewLive(dg, score.DefaultWalkOptions())
	if err != nil {
		log.Fatal(err)
	}
	reg := service.NewRegistry()
	if err := reg.AddLive(name, live); err != nil {
		log.Fatal(err)
	}
	srv := service.New(reg)
	srv.NoCache = *noCache

	base := "/v1/graphs/" + name
	cfg := loadgen.Config{
		Workers:  *workers,
		Duration: *duration,
		ReadPaths: []string{
			"/v1/graphs",
			base + "/stats",
			base + "/preview?k=2&n=3",
			base + "/preview?k=2&n=3&tuples=3",
			base + "/preview?k=3&n=6&key=coverage&nonkey=entropy",
			// Tight/diverse previews exercise the Apriori search and, across
			// the write arm's epoch bumps, the incremental discovery path.
			base + "/preview?k=2&n=3&mode=tight&d=2",
			base + "/preview?k=2&n=3&mode=diverse&d=2",
			base + "/preview?k=2&n=3&mode=diverse&d=2&anytime=1",
			base + "/render?k=2&n=3&tuples=3&format=markdown",
		},
		Conditional: *conditional,
		Seed:        *seed,
	}
	if *writeEvery > 0 {
		cfg.WriteEvery = *writeEvery
		cfg.WriteRoute = base + "/edges"
		cfg.WriteBody = writeBodyFor(g)
	}

	start := time.Now()
	res, err := loadgen.Run(srv, cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%d requests in %v: %.0f req/s, p50 %.3fms p99 %.3fms, %d writes, %d 304s, cache hit rate %.3f",
		res.Requests, time.Since(start).Round(time.Millisecond), res.RPS,
		res.P50MS, res.P99MS, res.Writes, res.NotModified, res.CacheHitRate)

	emit(res, *out)
}

// runTarget is the -target mode: discover the server's graphs, spread
// a mixed workload across all of them (so a fleet run touches every
// shard), and report the same measurements as the in-process mode —
// minus cache stats, which live behind the remote listener.
func runTarget(base string, workers int, duration time.Duration, writeEvery int, conditional bool, domain string, entities int, seed int64, out string) {
	resp, err := http.Get(strings.TrimRight(base, "/") + "/v1/graphs")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s/v1/graphs: status %d", base, resp.StatusCode)
	}
	var doc struct {
		Graphs []struct {
			Name    string `json:"name"`
			Mutable bool   `json:"mutable"`
		} `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		log.Fatal(err)
	}
	if len(doc.Graphs) == 0 {
		log.Fatalf("target %s serves no graphs", base)
	}

	cfg := loadgen.Config{
		Workers:     workers,
		Duration:    duration,
		ReadPaths:   []string{"/v1/graphs"},
		Conditional: conditional,
		Seed:        seed,
	}
	var names, writable []string
	for _, g := range doc.Graphs {
		names = append(names, g.Name)
		gb := "/v1/graphs/" + g.Name
		cfg.ReadPaths = append(cfg.ReadPaths,
			gb+"/stats",
			gb+"/preview?k=2&n=3&tuples=3",
			gb+"/preview?k=3&n=6&key=coverage&nonkey=entropy",
			gb+"/render?k=2&n=3&format=markdown",
		)
		if g.Mutable {
			writable = append(writable, gb+"/edges")
		}
	}
	log.Printf("target %s: %d graph(s): %v", base, len(names), names)
	if writeEvery > 0 {
		if len(writable) == 0 {
			log.Fatalf("-write-every set but target %s serves no mutable graphs", base)
		}
		schema := fig1.Graph()
		if domain != "" {
			opts := freebase.DefaultGenOptions()
			if entities > 0 {
				opts.TargetEntities = entities
			}
			var err error
			if schema, err = freebase.Generate(domain, opts); err != nil {
				log.Fatal(err)
			}
		}
		cfg.WriteEvery = writeEvery
		cfg.WriteRoutes = writable
		cfg.WriteBody = writeBodyFor(schema)
	}

	start := time.Now()
	res, err := loadgen.Run(loadgen.Remote(base), cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%d requests in %v: %.0f req/s, p50 %.3fms p99 %.3fms, %d writes, %d 304s",
		res.Requests, time.Since(start).Round(time.Millisecond), res.RPS,
		res.P50MS, res.P99MS, res.Writes, res.NotModified)
	emit(res, out)
}

// emit prints the result JSON to stdout or -out.
func emit(res loadgen.Result, out string) {
	enc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
}

// writeBodyFor synthesizes distinct write batches from the graph's own
// schema: each batch attaches one brand-new entity to an existing one
// along the graph's first relationship type, so every write is a real
// mutation (a new epoch) regardless of which graph is being driven.
func writeBodyFor(g *graph.EntityGraph) func(i int) string {
	if g.NumRelTypes() == 0 || g.NumEntities() == 0 {
		log.Fatal("graph has no relationships to synthesize writes from")
	}
	rel := g.RelType(0)
	fromType, toType := g.TypeName(rel.From), g.TypeName(rel.To)
	targets := g.EntitiesOfType(rel.To)
	if len(targets) == 0 {
		log.Fatalf("relationship %q has no target entities", rel.Name)
	}
	return func(i int) string {
		to := g.EntityName(targets[i%len(targets)])
		body, err := json.Marshal(map[string]any{
			"edges": []map[string]string{{
				"from":      fmt.Sprintf("loadgen entity %d", i),
				"rel":       rel.Name,
				"from_type": fromType,
				"to_type":   toType,
				"to":        to,
			}},
		})
		if err != nil {
			log.Fatal(err)
		}
		return string(body)
	}
}
