package main

import (
	"strings"
	"testing"

	"github.com/uta-db/previewtables/internal/fig1"
)

// TestServerExampleSmoke runs the whole example — real listener, real
// HTTP round trips — and checks each stop of the tour produced output.
func TestServerExampleSmoke(t *testing.T) {
	var out strings.Builder
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"GET /healthz",
		`"graphs"`,
		`"name":"filmstudio"`,
		`"entities":`,
		`"preview":{"score":56`,     // Fig. 2's preview score on the fixture
		`"key":"` + fig1.Film + `"`, // first table keyed by FILM
		"| **" + fig1.Film + "** |", // Markdown rendering of the same table
	} {
		if !strings.Contains(got, want) {
			t.Errorf("example output missing %q:\n%s", want, got)
		}
	}
}
