// Server: run the previewd HTTP service end-to-end against the paper's
// film-studio fixture (the Fig. 1 entity graph) — register the graph,
// serve on an ephemeral port, and walk the API the way a client would:
// list graphs, fetch stats, discover a preview as JSON, render the same
// preview as Markdown, then exercise the live-update path: POST an edge
// batch and a triple batch, watching the mutation epoch climb and the
// stats change under the same preview URL. The requests mirror the curl
// examples in the README quickstart.
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"

	"github.com/uta-db/previewtables/internal/dynamic"
	"github.com/uta-db/previewtables/internal/fig1"
	"github.com/uta-db/previewtables/internal/score"
	"github.com/uta-db/previewtables/internal/service"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run starts the service on an ephemeral localhost port, issues the tour
// of requests, and writes each response to w.
func run(w io.Writer) error {
	reg := service.NewRegistry()
	dg, err := dynamic.FromEntityGraph(fig1.Graph())
	if err != nil {
		return err
	}
	live, err := dynamic.NewLive(dg, score.DefaultWalkOptions())
	if err != nil {
		return err
	}
	if err := reg.AddLive("filmstudio", live); err != nil {
		return err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: service.New(reg)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	for _, path := range []string{
		"/healthz",
		"/v1/graphs",
		"/v1/graphs/filmstudio/stats",
		"/v1/graphs/filmstudio/preview?k=2&n=3&tuples=4",
		"/v1/graphs/filmstudio/render?k=2&n=3&tuples=4&format=markdown",
	} {
		if err := show(w, base, path); err != nil {
			return err
		}
	}

	// Live updates: a JSON edge batch (epoch 1) ...
	edges := `{"edges": [
		{"from": "Danny Elfman", "rel": "Music", "from_type": "FILM COMPOSER", "to_type": "` + fig1.Film + `", "to": "Men in Black"},
		{"from": "Danny Elfman", "rel": "Music", "to": "Men in Black II"}
	]}`
	if err := post(w, base, "/v1/graphs/filmstudio/edges", edges); err != nil {
		return err
	}
	// ... then a native triple-format batch (epoch 2).
	triples := `edge "Steven Spielberg" "Producer" "FILM PRODUCER" "` + fig1.Film + `" "Men in Black"
edge "Steven Spielberg" "Producer" "FILM PRODUCER" "` + fig1.Film + `" "Men in Black II"
`
	if err := post(w, base, "/v1/graphs/filmstudio/triples", triples); err != nil {
		return err
	}
	// The same preview URL now answers from the epoch-2 snapshot.
	return show(w, base, "/v1/graphs/filmstudio/preview?k=2&n=3")
}

// show performs one GET and prints the request line and response body.
func show(w io.Writer, base, path string) error {
	resp, err := http.Get(base + path)
	if err != nil {
		return err
	}
	return dump(w, "GET", path, resp)
}

// post performs one POST and prints the request line and response body.
func post(w io.Writer, base, path, body string) error {
	resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	return dump(w, "POST", path, resp)
}

func dump(w io.Writer, method, path string, resp *http.Response) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s %s: status %d: %s", method, path, resp.StatusCode, body)
	}
	fmt.Fprintf(w, "%s %s\n%s\n", method, path, body)
	return nil
}
