// Server: run the previewd HTTP service end-to-end against the paper's
// film-studio fixture (the Fig. 1 entity graph) — register the graph,
// serve on an ephemeral port, and walk the API the way a client would:
// list graphs, fetch stats, discover a preview as JSON, and render the
// same preview as Markdown. The requests mirror the curl examples in the
// README quickstart.
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"

	"github.com/uta-db/previewtables/internal/fig1"
	"github.com/uta-db/previewtables/internal/service"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run starts the service on an ephemeral localhost port, issues the tour
// of requests, and writes each response to w.
func run(w io.Writer) error {
	reg := service.NewRegistry()
	if err := reg.Add("filmstudio", fig1.Graph()); err != nil {
		return err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: service.New(reg)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	for _, path := range []string{
		"/healthz",
		"/v1/graphs",
		"/v1/graphs/filmstudio/stats",
		"/v1/graphs/filmstudio/preview?k=2&n=3&tuples=4",
		"/v1/graphs/filmstudio/render?k=2&n=3&tuples=4&format=markdown",
	} {
		if err := show(w, base, path); err != nil {
			return err
		}
	}
	return nil
}

// show performs one GET and prints the request line and response body.
func show(w io.Writer, base, path string) error {
	resp, err := http.Get(base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d: %s", path, resp.StatusCode, body)
	}
	fmt.Fprintf(w, "GET %s\n%s\n", path, body)
	return nil
}
