// Explorer: the data-worker workflow the paper's introduction motivates —
// you are handed an unfamiliar dataset (here the synthetic "music" domain,
// loaded from a triple dump), and you need a quick sense of what's in it
// before committing to it. The example loads the dump, prints its sizes,
// discovers a preview under both scoring measures, compares against the
// YPS09 baseline summary, and writes a DOT rendering of the preview.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	previewtables "github.com/uta-db/previewtables"
	"github.com/uta-db/previewtables/internal/freebase"
	"github.com/uta-db/previewtables/internal/yps09"
)

func main() {
	// Simulate receiving a dump: generate the domain, serialize it to the
	// text triple format, and load it back — the path a real dataset would
	// take through the library.
	src, err := freebase.Generate("music", freebase.GenOptions{
		Scale: 2e-4, Seed: 7, MinEntities: 2000, MinEdges: 9000,
	})
	if err != nil {
		log.Fatal(err)
	}
	var dump bytes.Buffer
	if err := previewtables.WriteTriples(&dump, src); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("received dump: %d bytes of triples\n", dump.Len())

	g, err := previewtables.ReadTriples(&dump)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded entity graph: %s\n", g.Stats())
	fmt.Printf("schema graph alone would need %d type boxes and %d labeled edges — too much to eyeball\n\n",
		g.NumTypes(), g.NumRelTypes())

	// Previews under both key measures.
	for _, cfg := range []struct {
		label string
		key   previewtables.KeyMeasure
	}{
		{"coverage-scored preview", previewtables.KeyCoverage},
		{"random-walk-scored preview", previewtables.KeyRandomWalk},
	} {
		d := previewtables.NewDiscoverer(g, cfg.key, previewtables.NonKeyCoverage)
		p, err := d.Discover(previewtables.Constraint{K: 4, N: 9})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", cfg.label)
		if err := previewtables.Render(os.Stdout, g, &p, 2); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	// The YPS09 baseline for contrast: k cluster centers with *all* their
	// attributes — note how wide the tables get.
	y := yps09.New(g)
	clusters, err := y.Summarize(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== YPS09 baseline summary (cluster centers, all attributes) ===")
	for _, c := range clusters {
		fmt.Printf("  %-24s %2d columns, %2d member tables\n",
			g.TypeName(c.Center), y.TableWidth(c.Center), len(c.Members))
	}

	// Export the coverage preview as DOT for visual inspection.
	d := previewtables.NewDiscoverer(g, previewtables.KeyCoverage, previewtables.NonKeyCoverage)
	p, err := d.Discover(previewtables.Constraint{K: 4, N: 9})
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.CreateTemp("", "preview-*.dot")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := previewtables.PreviewDOT(f, g.Schema(), &p); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote preview DOT to %s (render with: dot -Tsvg)\n", f.Name())
}
