// Filmstudio: generate the synthetic "film" domain (63 entity types, 136
// relationship types — the Table 2 schema) and compare the three preview
// flavors side by side: concise, tight (related concepts) and diverse
// (spread-out concepts). This is the workload of the paper's Tables 11–12.
package main

import (
	"fmt"
	"log"
	"os"

	previewtables "github.com/uta-db/previewtables"
	"github.com/uta-db/previewtables/internal/freebase"
)

func main() {
	g, err := freebase.Generate("film", freebase.DefaultGenOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("film domain: %s\n", g.Stats())

	d := previewtables.NewDiscoverer(g, previewtables.KeyCoverage, previewtables.NonKeyCoverage)

	// Let the library suggest distance bounds for this schema (one of the
	// paper's future-work items).
	sug := d.SuggestDistance()
	fmt.Printf("suggested distance bounds: tight d=%d, diverse d=%d (preferred: %s)\n\n",
		sug.TightD, sug.DiverseD, sug.Preferred)

	configs := []struct {
		label string
		c     previewtables.Constraint
	}{
		{"CONCISE (k=5, n=10)", previewtables.Constraint{K: 5, N: 10, Mode: previewtables.Concise}},
		{"TIGHT (k=5, n=10, d=2)", previewtables.Constraint{K: 5, N: 10, Mode: previewtables.Tight, D: 2}},
		{"DIVERSE (k=5, n=10, d=3)", previewtables.Constraint{K: 5, N: 10, Mode: previewtables.Diverse, D: 3}},
	}
	for _, cfg := range configs {
		p, err := d.Discover(cfg.c)
		if err != nil {
			log.Fatalf("%s: %v", cfg.label, err)
		}
		fmt.Printf("=== %s — score %.4g, searched %d subsets ===\n",
			cfg.label, p.Score, p.Stats.SubsetsScored)
		for i := range p.Tables {
			if err := previewtables.RenderTable(os.Stdout, g, &p.Tables[i], 2); err != nil {
				log.Fatal(err)
			}
			fmt.Println()
		}
	}
}
