// Socialnetwork: a domain-specific scenario built entirely through the
// public API — a small social/professional network with users, posts,
// groups and employers. Shows entropy-based non-key scoring (which prefers
// informative attributes over merely frequent ones), representative tuple
// selection, and Markdown rendering.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	previewtables "github.com/uta-db/previewtables"
)

func main() {
	g := buildNetwork()
	fmt.Printf("social graph: %s\n\n", g.Stats())

	// Entropy-based non-key scoring: attributes whose values actually
	// discriminate between entities score higher than constant ones.
	d := previewtables.NewDiscoverer(g, previewtables.KeyCoverage, previewtables.NonKeyEntropy)

	// Derive the size constraint from a display budget of 16 table cells.
	c := d.SuggestSize(16)
	fmt.Printf("suggested constraint from a 16-cell budget: k=%d n=%d\n\n", c.K, c.N)

	p, err := d.Discover(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal preview (score %.4g):\n\n", p.Score)
	for i := range p.Tables {
		// Representative tuples: greedily chosen to expose as many
		// distinct attribute values as possible.
		if err := previewtables.RenderMarkdown(os.Stdout, g, &p.Tables[i], 0); err != nil {
			log.Fatal(err)
		}
		for _, tu := range previewtables.RepresentativeTuples(g, &p.Tables[i], 3) {
			fmt.Printf("| %s |", g.EntityName(tu.Key))
			for _, vals := range tu.Values {
				switch len(vals) {
				case 0:
					fmt.Printf(" - |")
				case 1:
					fmt.Printf(" %s |", g.EntityName(vals[0]))
				default:
					fmt.Printf(" %d values |", len(vals))
				}
			}
			fmt.Println()
		}
		fmt.Println()
	}
}

func buildNetwork() *previewtables.EntityGraph {
	var b previewtables.Builder
	user := b.Type("USER")
	post := b.Type("POST")
	group := b.Type("GROUP")
	company := b.Type("COMPANY")
	city := b.Type("CITY")
	topic := b.Type("TOPIC")

	follows := b.RelType("Follows", user, user)
	authored := b.RelType("Authored", user, post)
	likes := b.RelType("Likes", user, post)
	member := b.RelType("Member Of", user, group)
	worksAt := b.RelType("Works At", user, company)
	livesIn := b.RelType("Lives In", user, city)
	about := b.RelType("About", post, topic)
	groupTopic := b.RelType("Focused On", group, topic)

	rng := rand.New(rand.NewSource(42))
	users := make([]previewtables.EntityID, 40)
	for i := range users {
		users[i] = b.Entity(fmt.Sprintf("user%02d", i), user)
	}
	posts := make([]previewtables.EntityID, 120)
	for i := range posts {
		posts[i] = b.Entity(fmt.Sprintf("post%03d", i), post)
	}
	groups := make([]previewtables.EntityID, 6)
	for i := range groups {
		groups[i] = b.Entity(fmt.Sprintf("group-%c", 'A'+i), group)
	}
	companies := []previewtables.EntityID{
		b.Entity("Initech", company), b.Entity("Globex", company), b.Entity("Hooli", company),
	}
	cities := []previewtables.EntityID{
		b.Entity("Arlington", city), b.Entity("Austin", city), b.Entity("Dallas", city),
	}
	topics := []previewtables.EntityID{
		b.Entity("databases", topic), b.Entity("graphs", topic),
		b.Entity("espresso", topic), b.Entity("cycling", topic),
	}

	for i, p := range posts {
		b.Edge(users[i%len(users)], p, authored)
		b.Edge(p, topics[rng.Intn(len(topics))], about)
		for l := 0; l < rng.Intn(4); l++ {
			b.Edge(users[rng.Intn(len(users))], p, likes)
		}
	}
	for _, u := range users {
		for f := 0; f < 1+rng.Intn(4); f++ {
			other := users[rng.Intn(len(users))]
			if other != u {
				b.Edge(u, other, follows)
			}
		}
		if rng.Intn(3) > 0 {
			b.Edge(u, groups[rng.Intn(len(groups))], member)
		}
		if rng.Intn(4) > 0 {
			b.Edge(u, companies[rng.Intn(len(companies))], worksAt)
		}
		b.Edge(u, cities[rng.Intn(len(cities))], livesIn)
	}
	for _, gr := range groups {
		b.Edge(gr, topics[rng.Intn(len(topics))], groupTopic)
	}

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return g
}
