// Quickstart: build the paper's Fig. 1 entity graph through the public API,
// discover the optimal 2-table preview of Fig. 2, and print it.
package main

import (
	"fmt"
	"log"
	"os"

	previewtables "github.com/uta-db/previewtables"
)

func main() {
	var b previewtables.Builder

	// Entity types (Fig. 3's schema graph vertices).
	film := b.Type("FILM")
	actor := b.Type("FILM ACTOR")
	director := b.Type("FILM DIRECTOR")
	producer := b.Type("FILM PRODUCER")
	genre := b.Type("FILM GENRE")
	award := b.Type("AWARD")

	// Relationship types. Note the two distinct "Award Winners"
	// relationship types sharing a surface name — one from actors, one
	// from directors — exactly as in the paper's Sec. 2.
	rActor := b.RelType("Actor", actor, film)
	rDirector := b.RelType("Director", director, film)
	rGenres := b.RelType("Genres", film, genre)
	rProducer := b.RelType("Producer", producer, film)
	rExec := b.RelType("Executive Producer", producer, film)
	rAwardActor := b.RelType("Award Winners", actor, award)
	rAwardDirector := b.RelType("Award Winners", director, award)

	// Entities and relationships of Fig. 1. Entity types are inferred
	// from the relationship types, so plain names suffice.
	edges := []struct {
		from, to string
		rel      previewtables.RelTypeID
	}{
		{"Will Smith", "Men in Black", rActor},
		{"Will Smith", "Men in Black II", rActor},
		{"Will Smith", "Hancock", rActor},
		{"Will Smith", "I, Robot", rActor},
		{"Tommy Lee Jones", "Men in Black", rActor},
		{"Tommy Lee Jones", "Men in Black II", rActor},
		{"Barry Sonnenfeld", "Men in Black", rDirector},
		{"Barry Sonnenfeld", "Men in Black II", rDirector},
		{"Peter Berg", "Hancock", rDirector},
		{"Alex Proyas", "I, Robot", rDirector},
		{"Men in Black", "Action Film", rGenres},
		{"Men in Black", "Science Fiction", rGenres},
		{"Men in Black II", "Action Film", rGenres},
		{"Men in Black II", "Science Fiction", rGenres},
		{"I, Robot", "Action Film", rGenres},
		{"Will Smith", "Hancock", rProducer},
		{"Will Smith", "Men in Black II", rProducer},
		{"Will Smith", "I, Robot", rExec},
		{"Will Smith", "Saturn Award", rAwardActor},
		{"Tommy Lee Jones", "Academy Award", rAwardActor},
		{"Barry Sonnenfeld", "Razzie Award", rAwardDirector},
	}
	for _, e := range edges {
		b.Edge(b.Entity(e.from), b.Entity(e.to), e.rel)
	}

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("entity graph: %s\n\n", g.Stats())

	// A 2-table preview with at most 6 non-key attributes — the setting of
	// the paper's Sec. 4 example. The optimal preview scores 84.
	p, err := previewtables.Discover(g, previewtables.Constraint{K: 2, N: 6})
	if err != nil {
		log.Fatal(err)
	}
	if err := previewtables.Render(os.Stdout, g, &p, 4); err != nil {
		log.Fatal(err)
	}
}
