// Evolving: incremental score maintenance on a growing graph. An ingestion
// pipeline streams relationship batches into a dynamic graph; after each
// batch the scoring measures refresh incrementally (no rescan of the
// entity graph — the paper's Sec. 5 observation made concrete) and the
// optimal preview is rediscovered, showing how the preview shifts as the
// dataset's center of gravity moves.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/uta-db/previewtables/internal/core"
	"github.com/uta-db/previewtables/internal/dynamic"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/score"
)

func main() {
	var g dynamic.Graph
	paper := g.Type("PAPER")
	author := g.Type("AUTHOR")
	venue := g.Type("VENUE")
	topic := g.Type("TOPIC")
	dataset := g.Type("DATASET")

	mustRel := func(name string, from, to graph.TypeID) graph.RelTypeID {
		r, err := g.RelType(name, from, to)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	wrote := mustRel("Wrote", author, paper)
	publishedAt := mustRel("Published At", paper, venue)
	about := mustRel("About", paper, topic)
	cites := mustRel("Cites", paper, paper)
	evaluatesOn := mustRel("Evaluates On", paper, dataset)

	rng := rand.New(rand.NewSource(2016))
	papers := make([]graph.EntityID, 0, 300)
	authors := make([]graph.EntityID, 0, 80)
	venues := []graph.EntityID{
		g.Entity("SIGMOD", venue), g.Entity("VLDB", venue), g.Entity("ICDE", venue),
	}
	topics := []graph.EntityID{
		g.Entity("graphs", topic), g.Entity("previews", topic), g.Entity("indexing", topic),
	}
	datasets := []graph.EntityID{
		g.Entity("Freebase", dataset), g.Entity("DBpedia", dataset),
	}

	// Three ingestion batches: early batches are author-centric, later
	// batches pile on citations, shifting which tables matter most.
	batches := []struct {
		label             string
		papers, citations int
	}{
		{"batch 1: seed corpus", 40, 10},
		{"batch 2: steady growth", 120, 150},
		{"batch 3: citation graph lands", 60, 900},
	}

	for _, batch := range batches {
		for i := 0; i < batch.papers; i++ {
			p := g.Entity(fmt.Sprintf("paper-%04d", len(papers)), paper)
			papers = append(papers, p)
			if len(authors) < cap(authors) && rng.Intn(3) > 0 {
				authors = append(authors, g.Entity(fmt.Sprintf("author-%03d", len(authors)), author))
			}
			for a := 0; a < 1+rng.Intn(3); a++ {
				check(g.AddEdge(authors[rng.Intn(len(authors))], p, wrote))
			}
			check(g.AddEdge(p, venues[rng.Intn(len(venues))], publishedAt))
			check(g.AddEdge(p, topics[rng.Intn(len(topics))], about))
			if rng.Intn(2) == 0 {
				check(g.AddEdge(p, datasets[rng.Intn(len(datasets))], evaluatesOn))
			}
		}
		for i := 0; i < batch.citations && len(papers) > 1; i++ {
			a := papers[rng.Intn(len(papers))]
			b := papers[rng.Intn(len(papers))]
			if a != b {
				check(g.AddEdge(a, b, cites))
			}
		}

		// Incremental refresh: counters and histograms are already up to
		// date; only the (tiny) schema walk re-solves.
		set, err := g.Scores(score.DefaultWalkOptions())
		if err != nil {
			log.Fatal(err)
		}
		d := core.New(set, core.Options{Key: score.KeyRandomWalk, NonKey: score.NonKeyCoverage})
		p, err := d.Discover(core.Constraint{K: 2, N: 5, Mode: core.Concise})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s — %s\n", batch.label, g.Stats())
		s := set.Schema()
		for _, tb := range p.Tables {
			fmt.Printf("  table %-8s:", s.TypeName(tb.Key))
			for _, c := range tb.NonKeys {
				fmt.Printf(" %q", s.RelType(c.Inc.Rel).Name)
			}
			fmt.Println()
		}
		fmt.Println()
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
