package freebase

// Gold standard accessors (Table 10 and Tables 22–23 of the paper).

// GoldKeys returns the ordered Freebase gold-standard key attributes of a
// gold domain (the six entity types of the domain's Freebase entrance page,
// in Table 10 order), or nil for domains without a gold standard.
func GoldKeys(domain string) []string {
	spec, ok := Get(domain)
	if !ok || spec.Gold == nil {
		return nil
	}
	keys := make([]string, len(spec.Gold))
	for i, g := range spec.Gold {
		keys[i] = g.Key
	}
	return keys
}

// GoldNonKeys returns the gold-standard non-key attribute names of one
// entity type in a domain (the type-dependent attributes of the Freebase
// browse table for that type), or nil if the type has none.
func GoldNonKeys(domain, typeName string) []string {
	spec, ok := Get(domain)
	if !ok {
		return nil
	}
	for _, g := range spec.Gold {
		if g.Key == typeName {
			return append([]string(nil), g.NonKeys...)
		}
	}
	return nil
}

// GoldSize returns the size constraint (k, n) of the domain's gold standard
// — the values the user study's previews were generated under.
func GoldSize(domain string) (k, n int) {
	spec, ok := Get(domain)
	if !ok || spec.Gold == nil {
		return 0, 0
	}
	return len(spec.Gold), spec.GoldN
}

// ExpertKeys returns the hand-crafted experts' ranked key attributes for a
// gold domain (nil otherwise). The lists are constructed so that evaluating
// the Freebase ranking against the experts set — and vice versa — yields
// exactly the precision values of Tables 22 and 23.
func ExpertKeys(domain string) []string {
	spec, ok := Get(domain)
	if !ok || spec.ExpertKeys == nil {
		return nil
	}
	return append([]string(nil), spec.ExpertKeys...)
}

// PaperSchemaSize returns the Table 2 schema graph size (entity types K,
// relationship types N) of a domain.
func PaperSchemaSize(domain string) (k, n int, ok bool) {
	spec, found := Get(domain)
	if !found {
		return 0, 0, false
	}
	return spec.K, spec.N, true
}

// PaperGraphSize returns the Table 2 entity graph size (vertices, edges) of
// a domain as reported in the paper.
func PaperGraphSize(domain string) (vertices, edges int, ok bool) {
	spec, found := Get(domain)
	if !found {
		return 0, 0, false
	}
	return spec.PaperVertices, spec.PaperEdges, true
}
