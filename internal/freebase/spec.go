// Package freebase generates synthetic Freebase-like entity graphs for the
// seven domains of the paper's evaluation (Table 2): books, film, music,
// TV, people, basketball and architecture.
//
// The real experiments used a Freebase dump from 2012-09-28 that is no
// longer distributed. This package substitutes it with deterministic,
// seeded synthetic graphs that preserve what the algorithms actually
// consume:
//
//   - the schema graph sizes of Table 2, exactly (K entity types, N
//     relationship types per domain);
//   - a hand-authored seed schema per domain containing every entity type
//     and relationship named in the paper's gold standard (Table 10), its
//     expert study (Tables 22–23) and its sample previews (Tables 11–12),
//     padded with generic "topic" types to the Table 2 sizes;
//   - heavy-tailed entity and relationship populations whose relative
//     weights mirror Freebase (e.g. the recording/release/track triangle
//     dominates "music"; episodes dominate "TV"), scaled to laptop size.
//
// Absolute sizes differ from the paper by the configurable scale factor;
// relative shapes — which types are big, which relationship types are
// heavy, how far apart concepts sit — are preserved, which is what the
// scoring measures and discovery algorithms depend on.
package freebase

// TypeSpec declares one seed entity type of a domain.
type TypeSpec struct {
	Name string
	// Weight is the type's share of the domain's entity budget, relative to
	// the other types.
	Weight float64
	// SubsetOf optionally names another type whose entities this type
	// reuses a prefix of (e.g. DECEASED PERSON ⊂ PERSON), producing
	// multi-typed entities as in real Freebase.
	SubsetOf string
}

// RelSpec declares one seed relationship type of a domain.
type RelSpec struct {
	Name     string
	From, To string
	// Weight is the relationship type's share of the domain's edge budget.
	Weight float64
}

// GoldTable is one row group of Table 10: a gold-standard key attribute and
// its gold non-key attributes (relationship surface names).
type GoldTable struct {
	Key     string
	NonKeys []string
}

// Spec describes one domain: its paper-reported sizes, its seed schema and
// its gold standards.
type Spec struct {
	Name string

	// Paper-reported entity graph and schema graph sizes (Table 2).
	PaperVertices, PaperEdges int
	K, N                      int

	Types []TypeSpec
	Rels  []RelSpec

	// Gold is the Freebase gold standard of Table 10 (nil for basketball
	// and architecture, which the paper uses only in efficiency tests).
	Gold []GoldTable
	// GoldN is the total non-key budget n of the domain's gold standard.
	GoldN int
	// ExpertKeys is the hand-crafted experts' ranked key-attribute list,
	// constructed so that the cross-precision between the Freebase and
	// Experts gold standards reproduces Tables 22–23 exactly.
	ExpertKeys []string
}

// Domains lists the seven evaluation domains in the paper's order.
func Domains() []string {
	return []string{"books", "film", "music", "tv", "people", "basketball", "architecture"}
}

// GoldDomains lists the five domains with Freebase gold standards.
func GoldDomains() []string {
	return []string{"books", "film", "music", "tv", "people"}
}

// Get returns the spec for a domain name, or false if unknown.
func Get(name string) (*Spec, bool) {
	s, ok := specs[name]
	return s, ok
}

var specs = map[string]*Spec{
	"books":        booksSpec,
	"film":         filmSpec,
	"music":        musicSpec,
	"tv":           tvSpec,
	"people":       peopleSpec,
	"basketball":   basketballSpec,
	"architecture": architectureSpec,
}

// ---------------------------------------------------------------------------
// books: 6M / 91 vertices, 15M / 201 edges (Table 2). Gold k=6, n=15.

var booksSpec = &Spec{
	Name:          "books",
	PaperVertices: 6_000_000, PaperEdges: 15_000_000,
	K: 91, N: 201,
	Types: []TypeSpec{
		{Name: "BOOK", Weight: 1.0},
		{Name: "BOOK EDITION", Weight: 1.6},
		{Name: "SHORT STORY", Weight: 0.35},
		{Name: "POEM", Weight: 0.28},
		{Name: "SHORT NON-FICTION", Weight: 0.22},
		{Name: "AUTHOR", Weight: 0.55},
		{Name: "WRITTEN WORK", Weight: 0.45},
		{Name: "BOOK CHARACTER", Weight: 0.15},
		{Name: "LITERARY GENRE", Weight: 0.015},
		{Name: "PUBLISHER", Weight: 0.06},
		{Name: "PUBLICATION DATE", Weight: 0.12},
		{Name: "BOOK SERIES", Weight: 0.05},
		{Name: "POEM METER", Weight: 0.004},
		{Name: "VERSE FORM", Weight: 0.004},
		{Name: "WRITING MODE", Weight: 0.003},
		{Name: "LITERARY SERIES", Weight: 0.02},
		{Name: "TRANSLATION", Weight: 0.08},
	},
	Rels: []RelSpec{
		{Name: "Characters", From: "BOOK", To: "BOOK CHARACTER", Weight: 0.5},
		{Name: "Genre", From: "BOOK", To: "LITERARY GENRE", Weight: 0.9},
		{Name: "Editions", From: "BOOK", To: "BOOK EDITION", Weight: 1.6},
		{Name: "Publication Date", From: "BOOK EDITION", To: "PUBLICATION DATE", Weight: 1.5},
		{Name: "Publisher", From: "BOOK EDITION", To: "PUBLISHER", Weight: 1.4},
		{Name: "Credited To", From: "BOOK EDITION", To: "AUTHOR", Weight: 1.3},
		{Name: "Genre", From: "SHORT STORY", To: "LITERARY GENRE", Weight: 0.10},
		{Name: "Characters", From: "SHORT STORY", To: "BOOK CHARACTER", Weight: 0.06},
		{Name: "Characters", From: "POEM", To: "BOOK CHARACTER", Weight: 0.03},
		{Name: "Meter", From: "POEM", To: "POEM METER", Weight: 0.07},
		{Name: "Verse Form", From: "POEM", To: "VERSE FORM", Weight: 0.06},
		{Name: "Mode Of Writing", From: "SHORT NON-FICTION", To: "WRITING MODE", Weight: 0.06},
		{Name: "Verse Form", From: "SHORT NON-FICTION", To: "VERSE FORM", Weight: 0.02},
		{Name: "Series Written (Or Contributed To)", From: "AUTHOR", To: "BOOK SERIES", Weight: 0.12},
		{Name: "Works Edited", From: "AUTHOR", To: "WRITTEN WORK", Weight: 0.25},
		{Name: "Works Written", From: "AUTHOR", To: "WRITTEN WORK", Weight: 1.1},
		{Name: "Editions Of This Series", From: "LITERARY SERIES", To: "BOOK EDITION", Weight: 0.05},
		{Name: "Translations", From: "WRITTEN WORK", To: "TRANSLATION", Weight: 0.2},
		{Name: "Subjects", From: "WRITTEN WORK", To: "BOOK CHARACTER", Weight: 0.08},
		{Name: "Books In This Series", From: "BOOK SERIES", To: "BOOK", Weight: 0.09},
	},
	Gold: []GoldTable{
		{Key: "BOOK", NonKeys: []string{"Characters", "Genre", "Editions"}},
		{Key: "BOOK EDITION", NonKeys: []string{"Publication Date", "Publisher", "Credited To"}},
		{Key: "SHORT STORY", NonKeys: []string{"Genre", "Characters"}},
		{Key: "POEM", NonKeys: []string{"Characters", "Meter", "Verse Form"}},
		{Key: "SHORT NON-FICTION", NonKeys: []string{"Mode Of Writing", "Verse Form"}},
		{Key: "AUTHOR", NonKeys: []string{"Series Written (Or Contributed To)", "Works Edited", "Works Written"}},
	},
	GoldN: 15,
	// Overlap with Freebase gold = {BOOK, AUTHOR} at expert positions 1–2
	// (Tables 22–23: hits at Freebase positions 1 and 6).
	ExpertKeys: []string{"BOOK", "AUTHOR", "PUBLISHER", "BOOK CHARACTER", "LITERARY GENRE", "BOOK SERIES"},
}

// ---------------------------------------------------------------------------
// film: 2M / 63 vertices, 18M / 136 edges. Gold k=6, n=9.

var filmSpec = &Spec{
	Name:          "film",
	PaperVertices: 2_000_000, PaperEdges: 18_000_000,
	K: 63, N: 136,
	Types: []TypeSpec{
		// Table 11's concise preview (coverage) keys the five largest types:
		// FILM CHARACTER, FILM ACTOR, FILM, FILM DIRECTOR, FILM CREWMEMBER.
		{Name: "FILM", Weight: 1.0},
		{Name: "FILM CHARACTER", Weight: 1.25},
		{Name: "FILM ACTOR", Weight: 1.1},
		{Name: "FILM DIRECTOR", Weight: 0.5},
		{Name: "FILM CREWMEMBER", Weight: 0.45},
		{Name: "FILM CUT", Weight: 0.25},
		{Name: "FILM WRITER", Weight: 0.40},
		{Name: "FILM PRODUCER", Weight: 0.35},
		{Name: "FILM EDITOR", Weight: 0.18},
		{Name: "PERSON OR ENTITY APPEARING IN FILM", Weight: 0.16},
		{Name: "FILM GENRE", Weight: 0.010},
		{Name: "FILM CREW ROLE", Weight: 0.008},
		{Name: "COUNTRY", Weight: 0.006},
		{Name: "HUMAN LANGUAGE", Weight: 0.006},
		{Name: "TAGLINE", Weight: 0.10},
		{Name: "RELEASE DATE", Weight: 0.08},
		{Name: "FILM COMPANY", Weight: 0.05},
		{Name: "FILM FESTIVAL", Weight: 0.02},
		{Name: "FILM FESTIVAL EVENT", Weight: 0.06},
		{Name: "FILM FESTIVAL FOCUS", Weight: 0.004},
		{Name: "SPONSOR", Weight: 0.01},
		{Name: "LOCATION", Weight: 0.03},
		{Name: "TYPE OF APPEARANCE", Weight: 0.003},
	},
	Rels: []RelSpec{
		{Name: "Directed By", From: "FILM", To: "FILM DIRECTOR", Weight: 0.55},
		{Name: "Tagline", From: "FILM", To: "TAGLINE", Weight: 0.40},
		{Name: "Initial Release Date", From: "FILM", To: "RELEASE DATE", Weight: 0.50},
		{Name: "Performances", From: "FILM", To: "FILM CHARACTER", Weight: 2.4},
		{Name: "Genres", From: "FILM", To: "FILM GENRE", Weight: 1.1},
		{Name: "Runtime", From: "FILM", To: "FILM CUT", Weight: 0.9},
		{Name: "Country of origin", From: "FILM", To: "COUNTRY", Weight: 0.8},
		{Name: "Languages", From: "FILM", To: "HUMAN LANGUAGE", Weight: 0.7},
		{Name: "Film performances", From: "FILM ACTOR", To: "FILM", Weight: 2.2},
		{Name: "Films of this genre", From: "FILM GENRE", To: "FILM", Weight: 0.35},
		{Name: "Films directed", From: "FILM DIRECTOR", To: "FILM", Weight: 0.5},
		{Name: "Films Executive Produced", From: "FILM PRODUCER", To: "FILM", Weight: 0.22},
		{Name: "Films Produced", From: "FILM PRODUCER", To: "FILM", Weight: 0.35},
		{Name: "Film Writing Credits", From: "FILM WRITER", To: "FILM", Weight: 0.4},
		{Name: "Films edited", From: "FILM EDITOR", To: "FILM", Weight: 0.25},
		{Name: "Portrayed in films", From: "FILM CHARACTER", To: "FILM", Weight: 2.0},
		{Name: "Portrayed in films (dubbed)", From: "FILM CHARACTER", To: "FILM", Weight: 0.15},
		{Name: "Films crewed", From: "FILM CREWMEMBER", To: "FILM", Weight: 0.9},
		{Name: "Crew role", From: "FILM CREWMEMBER", To: "FILM CREW ROLE", Weight: 0.5},
		{Name: "Films appeared in", From: "PERSON OR ENTITY APPEARING IN FILM", To: "FILM", Weight: 0.4},
		{Name: "Type of appearance", From: "PERSON OR ENTITY APPEARING IN FILM", To: "TYPE OF APPEARANCE", Weight: 0.15},
		{Name: "Films", From: "FILM COMPANY", To: "FILM", Weight: 0.3},
		// The festival cluster hangs off FILM via FILM FESTIVAL EVENT,
		// putting FILM FESTIVAL at distance 2 from FILM and its satellites
		// (LOCATION, FOCUS, SPONSOR) at distance 3 — the spread that makes
		// diverse previews (Table 12, d=4) pick far-apart concepts.
		{Name: "Films shown", From: "FILM FESTIVAL EVENT", To: "FILM", Weight: 0.12},
		{Name: "Individual festivals", From: "FILM FESTIVAL", To: "FILM FESTIVAL EVENT", Weight: 0.10},
		{Name: "Location", From: "FILM FESTIVAL", To: "LOCATION", Weight: 0.05},
		{Name: "Focus", From: "FILM FESTIVAL", To: "FILM FESTIVAL FOCUS", Weight: 0.04},
		{Name: "Sponsoring organization", From: "FILM FESTIVAL", To: "SPONSOR", Weight: 0.03},
	},
	Gold: []GoldTable{
		{Key: "FILM", NonKeys: []string{"Directed By", "Tagline", "Initial Release Date"}},
		{Key: "FILM ACTOR", NonKeys: []string{"Film performances"}},
		{Key: "FILM GENRE", NonKeys: []string{"Films of this genre"}},
		{Key: "FILM DIRECTOR", NonKeys: []string{"Films directed"}},
		{Key: "FILM PRODUCER", NonKeys: []string{"Films Executive Produced", "Films Produced"}},
		{Key: "FILM WRITER", NonKeys: []string{"Film Writing Credits"}},
	},
	GoldN: 9,
	// Overlap {FILM, FILM DIRECTOR, FILM PRODUCER} at expert positions
	// 1, 3, 4 (Tables 22–23: Freebase hits at positions 1, 4, 5).
	ExpertKeys: []string{"FILM", "FILM CHARACTER", "FILM DIRECTOR", "FILM PRODUCER", "FILM COMPANY", "FILM FESTIVAL"},
}

// ---------------------------------------------------------------------------
// music: 27M / 69 vertices, 187M / 176 edges. Gold k=6, n=18.

var musicSpec = &Spec{
	Name:          "music",
	PaperVertices: 27_000_000, PaperEdges: 187_000_000,
	K: 69, N: 176,
	Types: []TypeSpec{
		// The recording/release/track triangle dominates real Freebase
		// music and drives the random-walk preview of Table 11.
		{Name: "MUSICAL RECORDING", Weight: 3.0},
		{Name: "RELEASE TRACK", Weight: 2.6},
		{Name: "MUSICAL RELEASE", Weight: 1.5},
		{Name: "MUSICAL ALBUM", Weight: 0.8},
		{Name: "MUSICAL ARTIST", Weight: 0.55},
		{Name: "COMPOSITION", Weight: 0.62},
		{Name: "CONCERT", Weight: 0.30},
		{Name: "MUSIC VIDEO", Weight: 0.36},
		{Name: "MUSICAL ALBUM TYPE", Weight: 0.002},
		{Name: "MUSICAL GENRE", Weight: 0.01},
		{Name: "COMPOSER", Weight: 0.12},
		{Name: "LYRICIST", Weight: 0.08},
		{Name: "VENUE", Weight: 0.05},
		{Name: "CONCERT TOUR", Weight: 0.03},
		{Name: "RELEASE DATE", Weight: 0.07},
		{Name: "TRACK LENGTH", Weight: 0.09},
		{Name: "LOCATION", Weight: 0.04},
		{Name: "CONCERT DATE", Weight: 0.03},
	},
	Rels: []RelSpec{
		{Name: "Releases", From: "MUSICAL RECORDING", To: "MUSICAL RELEASE", Weight: 2.6},
		{Name: "Tracks", From: "MUSICAL RECORDING", To: "RELEASE TRACK", Weight: 2.5},
		{Name: "Recorded by", From: "MUSICAL RECORDING", To: "MUSICAL ARTIST", Weight: 2.2},
		{Name: "Length", From: "MUSICAL RECORDING", To: "TRACK LENGTH", Weight: 1.6},
		{Name: "Featured artists", From: "MUSICAL RECORDING", To: "MUSICAL ARTIST", Weight: 0.7},
		{Name: "Tracks", From: "MUSICAL RELEASE", To: "MUSICAL RECORDING", Weight: 2.3},
		{Name: "Track list", From: "MUSICAL RELEASE", To: "RELEASE TRACK", Weight: 2.2},
		{Name: "Release", From: "RELEASE TRACK", To: "MUSICAL RELEASE", Weight: 2.1},
		{Name: "Recording", From: "RELEASE TRACK", To: "MUSICAL RECORDING", Weight: 2.0},
		{Name: "Tracks recorded", From: "MUSICAL ARTIST", To: "MUSICAL RECORDING", Weight: 1.9},
		{Name: "Albums", From: "MUSICAL ARTIST", To: "MUSICAL ALBUM", Weight: 0.8},
		{Name: "Place Musical Career Began", From: "MUSICAL ARTIST", To: "LOCATION", Weight: 0.3},
		{Name: "Musical Genres", From: "MUSICAL ARTIST", To: "MUSICAL GENRE", Weight: 0.5},
		{Name: "Releases", From: "MUSICAL ALBUM", To: "MUSICAL RELEASE", Weight: 1.0},
		{Name: "Release Type", From: "MUSICAL ALBUM", To: "MUSICAL ALBUM TYPE", Weight: 0.75},
		{Name: "Initial Release Date", From: "MUSICAL ALBUM", To: "RELEASE DATE", Weight: 0.7},
		{Name: "Artist", From: "MUSICAL ALBUM", To: "MUSICAL ARTIST", Weight: 0.72},
		{Name: "Includes", From: "COMPOSITION", To: "COMPOSITION", Weight: 0.25},
		{Name: "Lyricist", From: "COMPOSITION", To: "LYRICIST", Weight: 0.35},
		{Name: "Composer", From: "COMPOSITION", To: "COMPOSER", Weight: 0.45},
		{Name: "Venue", From: "CONCERT", To: "VENUE", Weight: 0.15},
		{Name: "Start Date", From: "CONCERT", To: "CONCERT DATE", Weight: 0.14},
		{Name: "Concert Tour", From: "CONCERT", To: "CONCERT TOUR", Weight: 0.12},
		{Name: "Song", From: "MUSIC VIDEO", To: "MUSICAL RECORDING", Weight: 0.2},
		{Name: "Initial release date", From: "MUSIC VIDEO", To: "RELEASE DATE", Weight: 0.16},
		{Name: "Artist", From: "MUSIC VIDEO", To: "MUSICAL ARTIST", Weight: 0.18},
		{Name: "Compositions", From: "COMPOSER", To: "COMPOSITION", Weight: 0.2},
		{Name: "Recordings", From: "COMPOSITION", To: "MUSICAL RECORDING", Weight: 0.4},
	},
	Gold: []GoldTable{
		{Key: "COMPOSITION", NonKeys: []string{"Includes", "Lyricist", "Composer"}},
		{Key: "CONCERT", NonKeys: []string{"Venue", "Start Date", "Concert Tour"}},
		{Key: "MUSIC VIDEO", NonKeys: []string{"Song", "Initial release date", "Artist"}},
		{Key: "MUSICAL ALBUM", NonKeys: []string{"Release Type", "Initial Release Date", "Artist"}},
		{Key: "MUSICAL ARTIST", NonKeys: []string{"Albums", "Place Musical Career Began", "Musical Genres"}},
		{Key: "MUSICAL RECORDING", NonKeys: []string{"Length", "Featured artists", "Recorded by"}},
	},
	GoldN: 18,
	// Overlap of 5 (all but MUSICAL RECORDING); expert position 5 holds the
	// non-gold MUSICAL RELEASE (Tables 22–23).
	ExpertKeys: []string{"COMPOSITION", "CONCERT", "MUSIC VIDEO", "MUSICAL ALBUM", "MUSICAL RELEASE", "MUSICAL ARTIST"},
}

// ---------------------------------------------------------------------------
// tv: 2M / 59 vertices, 17M / 177 edges. Gold k=6, n=9.

var tvSpec = &Spec{
	Name:          "tv",
	PaperVertices: 2_000_000, PaperEdges: 17_000_000,
	K: 59, N: 177,
	Types: []TypeSpec{
		{Name: "TV EPISODE", Weight: 3.0},
		{Name: "TV PROGRAM", Weight: 0.55},
		{Name: "TV SEASON", Weight: 0.40},
		{Name: "TV ACTOR", Weight: 0.8},
		{Name: "TV CHARACTER", Weight: 0.7},
		{Name: "TV WRITER", Weight: 0.30},
		{Name: "TV PRODUCER", Weight: 0.28},
		{Name: "TV DIRECTOR", Weight: 0.32},
		{Name: "TV SEGMENT", Weight: 0.1},
		{Name: "TV PROGRAM CREATOR", Weight: 0.08},
		{Name: "TV NETWORK", Weight: 0.02},
		{Name: "AIR DATE", Weight: 0.06},
		{Name: "PERSON", Weight: 0.20},
		{Name: "PERSONAL APPEARANCE ROLE", Weight: 0.005},
	},
	Rels: []RelSpec{
		{Name: "Previous episode", From: "TV EPISODE", To: "TV EPISODE", Weight: 2.4},
		{Name: "Next episode", From: "TV EPISODE", To: "TV EPISODE", Weight: 2.4},
		{Name: "Performances", From: "TV EPISODE", To: "TV CHARACTER", Weight: 2.0},
		{Name: "Season", From: "TV EPISODE", To: "TV SEASON", Weight: 2.2},
		{Name: "Series", From: "TV EPISODE", To: "TV PROGRAM", Weight: 2.1},
		{Name: "Personal appearances", From: "TV EPISODE", To: "PERSON", Weight: 0.5},
		{Name: "Episodes", From: "TV SEASON", To: "TV EPISODE", Weight: 1.8},
		{Name: "Program Creator", From: "TV PROGRAM", To: "TV PROGRAM CREATOR", Weight: 0.3},
		{Name: "Air Date Of First Episode", From: "TV PROGRAM", To: "AIR DATE", Weight: 0.32},
		{Name: "Air Date Of Final Episode", From: "TV PROGRAM", To: "AIR DATE", Weight: 0.28},
		{Name: "Regular acting performances", From: "TV PROGRAM", To: "TV CHARACTER", Weight: 0.9},
		{Name: "Starring TV Roles", From: "TV ACTOR", To: "TV CHARACTER", Weight: 0.8},
		{Name: "TV episode performances", From: "TV ACTOR", To: "TV EPISODE", Weight: 1.7},
		{Name: "Programs In Which This Was A Regular Character", From: "TV CHARACTER", To: "TV PROGRAM", Weight: 0.7},
		{Name: "TV Programs (Recurring Writer)", From: "TV WRITER", To: "TV PROGRAM", Weight: 0.3},
		{Name: "TV Programs Produced", From: "TV PRODUCER", To: "TV PROGRAM", Weight: 0.28},
		{Name: "TV Episodes Directed", From: "TV DIRECTOR", To: "TV EPISODE", Weight: 0.6},
		{Name: "TV Segments Directed", From: "TV DIRECTOR", To: "TV SEGMENT", Weight: 0.12},
		{Name: "Networks airing", From: "TV PROGRAM", To: "TV NETWORK", Weight: 0.2},
		{Name: "Appearance role", From: "PERSON", To: "PERSONAL APPEARANCE ROLE", Weight: 0.15},
	},
	Gold: []GoldTable{
		{Key: "TV PROGRAM", NonKeys: []string{"Program Creator", "Air Date Of First Episode", "Air Date Of Final Episode"}},
		{Key: "TV ACTOR", NonKeys: []string{"Starring TV Roles"}},
		{Key: "TV CHARACTER", NonKeys: []string{"Programs In Which This Was A Regular Character"}},
		{Key: "TV WRITER", NonKeys: []string{"TV Programs (Recurring Writer)"}},
		{Key: "TV PRODUCER", NonKeys: []string{"TV Programs Produced"}},
		{Key: "TV DIRECTOR", NonKeys: []string{"TV Episodes Directed", "TV Segments Directed"}},
	},
	GoldN: 9,
	// Overlap {TV PROGRAM, TV ACTOR, TV CHARACTER} at expert positions
	// 1, 2, 4 (Tables 22–23: Freebase hits at positions 1, 2, 3).
	ExpertKeys: []string{"TV PROGRAM", "TV ACTOR", "TV EPISODE", "TV CHARACTER", "TV SEASON", "TV NETWORK"},
}

// ---------------------------------------------------------------------------
// people: 3M / 45 vertices, 17M / 78 edges. Gold k=6, n=16.

var peopleSpec = &Spec{
	Name:          "people",
	PaperVertices: 3_000_000, PaperEdges: 17_000_000,
	K: 45, N: 78,
	Types: []TypeSpec{
		{Name: "PERSON", Weight: 3.0},
		{Name: "DECEASED PERSON", Weight: 1.0, SubsetOf: "PERSON"},
		{Name: "CAUSE OF DEATH", Weight: 0.07},
		{Name: "ETHNICITY", Weight: 0.08},
		{Name: "PROFESSION", Weight: 0.12},
		{Name: "PROFESSIONAL FIELD", Weight: 0.03},
		{Name: "COUNTRY", Weight: 0.005},
		{Name: "LOCATION", Weight: 0.15},
		{Name: "DATE OF BIRTH", Weight: 0.10},
		{Name: "DATE OF DEATH", Weight: 0.06},
		{Name: "FAMILY", Weight: 0.04},
		{Name: "FAMILY NAME", Weight: 0.07},
	},
	Rels: []RelSpec{
		{Name: "Profession", From: "PERSON", To: "PROFESSION", Weight: 2.2},
		{Name: "Country Of Nationality", From: "PERSON", To: "COUNTRY", Weight: 2.4},
		{Name: "Date Of Birth", From: "PERSON", To: "DATE OF BIRTH", Weight: 2.6},
		{Name: "Place Of Birth", From: "PERSON", To: "LOCATION", Weight: 1.8},
		{Name: "Ethnicity", From: "PERSON", To: "ETHNICITY", Weight: 0.7},
		{Name: "Family Name", From: "PERSON", To: "FAMILY NAME", Weight: 1.2},
		{Name: "Family members", From: "FAMILY", To: "PERSON", Weight: 0.2},
		{Name: "Cause Of Death", From: "DECEASED PERSON", To: "CAUSE OF DEATH", Weight: 0.8},
		{Name: "Place Of Death", From: "DECEASED PERSON", To: "LOCATION", Weight: 0.7},
		{Name: "Date Of Death", From: "DECEASED PERSON", To: "DATE OF DEATH", Weight: 0.9},
		{Name: "People Who Died This Way", From: "CAUSE OF DEATH", To: "DECEASED PERSON", Weight: 0.3},
		{Name: "Includes Causes Of Death", From: "CAUSE OF DEATH", To: "CAUSE OF DEATH", Weight: 0.05},
		{Name: "Parent Cause Of Death", From: "CAUSE OF DEATH", To: "CAUSE OF DEATH", Weight: 0.04},
		{Name: "Geographic Distribution", From: "ETHNICITY", To: "LOCATION", Weight: 0.08},
		{Name: "Includes Group(S)", From: "ETHNICITY", To: "ETHNICITY", Weight: 0.03},
		{Name: "Included In Group(S)", From: "ETHNICITY", To: "ETHNICITY", Weight: 0.03},
		{Name: "Specializations", From: "PROFESSION", To: "PROFESSION", Weight: 0.05},
		{Name: "Specialization Of", From: "PROFESSION", To: "PROFESSION", Weight: 0.05},
		{Name: "People With This Profession", From: "PROFESSION", To: "PERSON", Weight: 0.6},
		{Name: "Professions In This Field", From: "PROFESSIONAL FIELD", To: "PROFESSION", Weight: 0.04},
	},
	Gold: []GoldTable{
		{Key: "PERSON", NonKeys: []string{"Profession", "Country Of Nationality", "Date Of Birth"}},
		{Key: "DECEASED PERSON", NonKeys: []string{"Cause Of Death", "Place Of Death", "Date Of Death"}},
		{Key: "CAUSE OF DEATH", NonKeys: []string{"People Who Died This Way", "Includes Causes Of Death", "Parent Cause Of Death"}},
		{Key: "ETHNICITY", NonKeys: []string{"Geographic Distribution", "Includes Group(S)", "Included In Group(S)"}},
		{Key: "PROFESSION", NonKeys: []string{"Specializations", "Specialization Of", "People With This Profession"}},
		{Key: "PROFESSIONAL FIELD", NonKeys: []string{"Professions In This Field"}},
	},
	GoldN: 16,
	// Overlap {PERSON, DECEASED PERSON, PROFESSION} at expert positions
	// 1, 3, 4 (Tables 22–23: Freebase hits at positions 1, 2, 5).
	ExpertKeys: []string{"PERSON", "FAMILY", "DECEASED PERSON", "PROFESSION", "LOCATION", "COUNTRY"},
}

// ---------------------------------------------------------------------------
// basketball: 19K / 6 vertices, 557K / 21 edges. Efficiency domain only.

var basketballSpec = &Spec{
	Name:          "basketball",
	PaperVertices: 19_000, PaperEdges: 557_000,
	K: 6, N: 21,
	Types: []TypeSpec{
		{Name: "BASKETBALL PLAYER", Weight: 2.0},
		{Name: "BASKETBALL TEAM", Weight: 0.05},
		{Name: "BASKETBALL COACH", Weight: 0.12},
		{Name: "BASKETBALL POSITION", Weight: 0.003},
		{Name: "BASKETBALL SEASON", Weight: 0.08},
		{Name: "BASKETBALL GAME", Weight: 1.2},
	},
	Rels: []RelSpec{
		{Name: "Current team", From: "BASKETBALL PLAYER", To: "BASKETBALL TEAM", Weight: 1.0},
		{Name: "Former teams", From: "BASKETBALL PLAYER", To: "BASKETBALL TEAM", Weight: 1.4},
		{Name: "Position", From: "BASKETBALL PLAYER", To: "BASKETBALL POSITION", Weight: 1.1},
		{Name: "Games played", From: "BASKETBALL PLAYER", To: "BASKETBALL GAME", Weight: 3.0},
		{Name: "Drafted by", From: "BASKETBALL PLAYER", To: "BASKETBALL TEAM", Weight: 0.6},
		{Name: "Roster", From: "BASKETBALL TEAM", To: "BASKETBALL PLAYER", Weight: 1.2},
		{Name: "Head coach", From: "BASKETBALL TEAM", To: "BASKETBALL COACH", Weight: 0.08},
		{Name: "Former coaches", From: "BASKETBALL TEAM", To: "BASKETBALL COACH", Weight: 0.2},
		{Name: "Seasons", From: "BASKETBALL TEAM", To: "BASKETBALL SEASON", Weight: 0.5},
		{Name: "Home games", From: "BASKETBALL TEAM", To: "BASKETBALL GAME", Weight: 1.6},
		{Name: "Away games", From: "BASKETBALL TEAM", To: "BASKETBALL GAME", Weight: 1.6},
		{Name: "Teams coached", From: "BASKETBALL COACH", To: "BASKETBALL TEAM", Weight: 0.15},
		{Name: "Players coached", From: "BASKETBALL COACH", To: "BASKETBALL PLAYER", Weight: 0.9},
		{Name: "Season of", From: "BASKETBALL SEASON", To: "BASKETBALL TEAM", Weight: 0.4},
		{Name: "Games", From: "BASKETBALL SEASON", To: "BASKETBALL GAME", Weight: 1.8},
		{Name: "Champion", From: "BASKETBALL SEASON", To: "BASKETBALL TEAM", Weight: 0.05},
		{Name: "Home team", From: "BASKETBALL GAME", To: "BASKETBALL TEAM", Weight: 1.5},
		{Name: "Away team", From: "BASKETBALL GAME", To: "BASKETBALL TEAM", Weight: 1.5},
		{Name: "Season", From: "BASKETBALL GAME", To: "BASKETBALL SEASON", Weight: 1.4},
		{Name: "Players", From: "BASKETBALL GAME", To: "BASKETBALL PLAYER", Weight: 2.8},
		{Name: "Positions played", From: "BASKETBALL POSITION", To: "BASKETBALL PLAYER", Weight: 0.7},
	},
}

// ---------------------------------------------------------------------------
// architecture: 133K / 23 vertices, 432K / 48 edges. Efficiency domain only.

var architectureSpec = &Spec{
	Name:          "architecture",
	PaperVertices: 133_000, PaperEdges: 432_000,
	K: 23, N: 48,
	Types: []TypeSpec{
		{Name: "BUILDING", Weight: 2.0},
		{Name: "STRUCTURE", Weight: 1.6},
		{Name: "ARCHITECT", Weight: 0.3},
		{Name: "ARCHITECTURAL STYLE", Weight: 0.01},
		{Name: "BRIDGE", Weight: 0.15, SubsetOf: "STRUCTURE"},
		{Name: "SKYSCRAPER", Weight: 0.2, SubsetOf: "BUILDING"},
		{Name: "LOCATION", Weight: 0.8},
		{Name: "BUILDING FUNCTION", Weight: 0.01},
		{Name: "CONSTRUCTION MATERIAL", Weight: 0.008},
		{Name: "ENGINEER", Weight: 0.1},
		{Name: "OWNER", Weight: 0.25},
		{Name: "ARCHITECTURE FIRM", Weight: 0.06},
		{Name: "VENUE", Weight: 0.3},
		{Name: "MUSEUM", Weight: 0.08, SubsetOf: "BUILDING"},
		{Name: "TOWER", Weight: 0.07, SubsetOf: "STRUCTURE"},
		{Name: "DAM", Weight: 0.04, SubsetOf: "STRUCTURE"},
		{Name: "STADIUM", Weight: 0.05, SubsetOf: "VENUE"},
		{Name: "HOUSE", Weight: 0.3, SubsetOf: "BUILDING"},
		{Name: "PLACE OF WORSHIP", Weight: 0.12, SubsetOf: "BUILDING"},
		{Name: "MONUMENT", Weight: 0.06},
		{Name: "LIGHTHOUSE", Weight: 0.03, SubsetOf: "STRUCTURE"},
		{Name: "AIRPORT TERMINAL", Weight: 0.02, SubsetOf: "BUILDING"},
		{Name: "CASTLE", Weight: 0.04, SubsetOf: "BUILDING"},
	},
	Rels: []RelSpec{
		{Name: "Architect", From: "BUILDING", To: "ARCHITECT", Weight: 0.9},
		{Name: "Architectural style", From: "BUILDING", To: "ARCHITECTURAL STYLE", Weight: 0.8},
		{Name: "Location", From: "BUILDING", To: "LOCATION", Weight: 1.6},
		{Name: "Function", From: "BUILDING", To: "BUILDING FUNCTION", Weight: 1.0},
		{Name: "Owner", From: "BUILDING", To: "OWNER", Weight: 0.7},
		{Name: "Material", From: "STRUCTURE", To: "CONSTRUCTION MATERIAL", Weight: 0.6},
		{Name: "Location", From: "STRUCTURE", To: "LOCATION", Weight: 1.3},
		{Name: "Engineer", From: "STRUCTURE", To: "ENGINEER", Weight: 0.5},
		{Name: "Buildings designed", From: "ARCHITECT", To: "BUILDING", Weight: 0.85},
		{Name: "Firm", From: "ARCHITECT", To: "ARCHITECTURE FIRM", Weight: 0.2},
		{Name: "Projects", From: "ARCHITECTURE FIRM", To: "BUILDING", Weight: 0.3},
		{Name: "Buildings in style", From: "ARCHITECTURAL STYLE", To: "BUILDING", Weight: 0.4},
		{Name: "Structures designed", From: "ENGINEER", To: "STRUCTURE", Weight: 0.35},
		{Name: "Buildings owned", From: "OWNER", To: "BUILDING", Weight: 0.45},
		{Name: "Crosses", From: "BRIDGE", To: "LOCATION", Weight: 0.12},
		{Name: "Floors", From: "SKYSCRAPER", To: "BUILDING FUNCTION", Weight: 0.1},
		{Name: "Events hosted", From: "VENUE", To: "LOCATION", Weight: 0.25},
		{Name: "Collections", From: "MUSEUM", To: "OWNER", Weight: 0.08},
		{Name: "Monument commemorates", From: "MONUMENT", To: "LOCATION", Weight: 0.05},
	},
}
