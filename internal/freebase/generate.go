package freebase

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"github.com/uta-db/previewtables/internal/graph"
)

// GenOptions controls synthetic domain generation.
type GenOptions struct {
	// Scale is the fraction of the paper-reported entity/edge counts to
	// generate. The default 1e-3 turns the 27M-entity "music" domain into
	// ~27K entities — large enough for meaningful score distributions,
	// small enough for laptop benchmarks.
	Scale float64
	// TargetEntities, when positive, overrides Scale with the factor that
	// yields approximately this many entities (edge budgets scale by the
	// same factor, preserving the domain's density). The schema stays at
	// the exact Table 2 sizes regardless — only the population grows — so
	// one knob dials a schema-faithful graph from laptop benchmarks up to
	// the ~10⁶-entity scale the parallel hot-path measurements need.
	TargetEntities int
	// Seed drives all randomness; the same (domain, options) always
	// produces an identical graph. The domain name is mixed in so domains
	// differ even under one seed.
	Seed int64
	// NoiseSigma perturbs type and relationship weights log-normally,
	// so that planted importance rankings are imperfect — the paper's
	// measures achieve P@10 ≈ 0.6, not 1.0. Default 0.25.
	NoiseSigma float64
	// MinEntities / MinEdges floor the scaled budgets so tiny domains
	// (basketball: 19K entities in the paper) stay non-degenerate.
	MinEntities, MinEdges int
}

// DefaultGenOptions returns the options used throughout the experiments.
func DefaultGenOptions() GenOptions {
	return GenOptions{Scale: 1e-3, Seed: 20160626, NoiseSigma: 0.25, MinEntities: 1500, MinEdges: 6000}
}

// withDefaults fills zero fields.
func (o GenOptions) withDefaults() GenOptions {
	d := DefaultGenOptions()
	if o.Scale <= 0 {
		o.Scale = d.Scale
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.NoiseSigma <= 0 {
		o.NoiseSigma = d.NoiseSigma
	}
	if o.MinEntities <= 0 {
		o.MinEntities = d.MinEntities
	}
	if o.MinEdges <= 0 {
		o.MinEdges = d.MinEdges
	}
	return o
}

// Generate builds the synthetic entity graph of the named domain. The
// resulting schema graph has exactly the Table 2 sizes (K entity types, N
// relationship types); entity and edge populations are the paper counts
// scaled by opts.Scale with heavy-tailed value distributions.
func Generate(domain string, opts GenOptions) (*graph.EntityGraph, error) {
	spec, ok := Get(domain)
	if !ok {
		return nil, fmt.Errorf("freebase: unknown domain %q (have %v)", domain, Domains())
	}
	opts = opts.withDefaults()
	if opts.TargetEntities > 0 {
		opts.Scale = float64(opts.TargetEntities) / float64(spec.PaperVertices)
	}
	rng := rand.New(rand.NewSource(opts.Seed ^ int64(hashString(domain))))

	types, rels := expandSchema(spec, rng)

	var b graph.Builder
	typeIDs := make(map[string]graph.TypeID, len(types))
	for _, t := range types {
		typeIDs[t.Name] = b.Type(t.Name)
	}
	relIDs := make([]graph.RelTypeID, len(rels))
	for i, r := range rels {
		relIDs[i] = b.RelType(r.Name, typeIDs[r.From], typeIDs[r.To])
	}

	// Entity budget split by noisy weights.
	entityBudget := int(float64(spec.PaperVertices) * opts.Scale)
	if entityBudget < opts.MinEntities {
		entityBudget = opts.MinEntities
	}
	var weightSum float64
	noisy := make([]float64, len(types))
	for i, t := range types {
		w := t.Weight * math.Exp(rng.NormFloat64()*opts.NoiseSigma)
		noisy[i] = w
		if t.SubsetOf == "" {
			weightSum += w
		}
	}
	members := make(map[string][]graph.EntityID, len(types))
	for i, t := range types {
		if t.SubsetOf != "" {
			continue // second pass below, after parents exist
		}
		count := int(float64(entityBudget) * noisy[i] / weightSum)
		if count < 2 {
			count = 2
		}
		ids := make([]graph.EntityID, count)
		for j := 0; j < count; j++ {
			ids[j] = b.Entity(fmt.Sprintf("%s/%s/%d", domain, slug(t.Name), j), typeIDs[t.Name])
		}
		members[t.Name] = ids
	}
	for i, t := range types {
		if t.SubsetOf == "" {
			continue
		}
		parent := members[t.SubsetOf]
		if parent == nil {
			return nil, fmt.Errorf("freebase: %s: subset parent %q missing", domain, t.SubsetOf)
		}
		count := int(float64(entityBudget) * noisy[i] / weightSum)
		if count < 2 {
			count = 2
		}
		if count > len(parent) {
			count = len(parent)
		}
		ids := make([]graph.EntityID, count)
		for j := 0; j < count; j++ {
			// Re-declaring the same entity adds the subset type to it.
			ids[j] = b.Entity(fmt.Sprintf("%s/%s/%d", domain, slug(t.SubsetOf), j), typeIDs[t.Name])
		}
		members[t.Name] = ids
	}

	// Edge budget split by noisy relationship weights.
	edgeBudget := int(float64(spec.PaperEdges) * opts.Scale)
	if edgeBudget < opts.MinEdges {
		edgeBudget = opts.MinEdges
	}
	var relWeightSum float64
	relNoisy := make([]float64, len(rels))
	for i, r := range rels {
		w := r.Weight * math.Exp(rng.NormFloat64()*opts.NoiseSigma)
		relNoisy[i] = w
		relWeightSum += w
	}
	for i, r := range rels {
		count := int(float64(edgeBudget) * relNoisy[i] / relWeightSum)
		if count < 2 {
			count = 2
		}
		srcs := members[r.From]
		tgts := members[r.To]
		srcPick := newSkewedPicker(rng, len(srcs), 1.05+rng.Float64()*0.4)
		tgtPick := newSkewedPicker(rng, len(tgts), 1.1+rng.Float64()*0.9)
		for j := 0; j < count; j++ {
			b.Edge(srcs[srcPick.pick()], tgts[tgtPick.pick()], relIDs[i])
		}
	}

	return b.Build()
}

// expandSchema pads the seed schema with generic topic types and
// relationship types until the Table 2 sizes (K, N) are reached. Filler
// types chain onto each other with occasional links back into the seed
// core, producing the long-tailed, moderately deep schema graphs the paper
// describes (film: diameter 7, average path 3–4).
func expandSchema(spec *Spec, rng *rand.Rand) ([]TypeSpec, []RelSpec) {
	types := append([]TypeSpec(nil), spec.Types...)
	rels := append([]RelSpec(nil), spec.Rels...)
	if len(types) > spec.K {
		panic(fmt.Sprintf("freebase: %s seed has %d types, exceeding K=%d", spec.Name, len(types), spec.K))
	}
	if len(rels) > spec.N {
		panic(fmt.Sprintf("freebase: %s seed has %d rels, exceeding N=%d", spec.Name, len(rels), spec.N))
	}

	firstFiller := len(types)
	for i := len(types); i < spec.K; i++ {
		t := TypeSpec{
			Name:   fmt.Sprintf("%s Topic %02d", titleCase(spec.Name), i-firstFiller+1),
			Weight: 0.002 + rng.Float64()*0.02,
		}
		types = append(types, t)
		// Anchor each filler type so the schema stays connected: mostly
		// chain onto the previous filler (depth), sometimes onto a random
		// earlier type (branching).
		var anchor string
		if i > firstFiller && rng.Float64() < 0.55 {
			anchor = types[i-1].Name
		} else {
			anchor = types[rng.Intn(i)].Name
		}
		if len(rels) < spec.N {
			rels = append(rels, RelSpec{
				Name: "Related " + t.Name, From: t.Name, To: anchor,
				Weight: 0.002 + rng.Float64()*0.01,
			})
		}
	}
	// Remaining relationship budget: sprinkle extra low-weight links,
	// biased toward the tail types so the heavy seed core keeps its shape.
	extra := 0
	for len(rels) < spec.N {
		extra++
		a := types[rng.Intn(len(types))].Name
		b := types[firstFiller/2+rng.Intn(len(types)-firstFiller/2)].Name
		rels = append(rels, RelSpec{
			Name: fmt.Sprintf("Association %02d", extra), From: a, To: b,
			Weight: 0.002 + rng.Float64()*0.008,
		})
	}
	return types, rels
}

// skewedPicker draws indexes in [0, n) with a Zipf-like skew, so some
// entities accumulate many relationships (high-degree hubs, duplicate
// values for entropy) and others none (empty preview cells).
type skewedPicker struct {
	zipf *rand.Zipf
	perm []int
}

func newSkewedPicker(rng *rand.Rand, n int, s float64) *skewedPicker {
	if n <= 1 {
		return &skewedPicker{}
	}
	// Permute so the hubs differ between relationship types.
	return &skewedPicker{
		zipf: rand.NewZipf(rng, s, 1, uint64(n-1)),
		perm: rng.Perm(n),
	}
}

func (p *skewedPicker) pick() int {
	if p.zipf == nil {
		return 0
	}
	return p.perm[int(p.zipf.Uint64())]
}

func hashString(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

func slug(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		case r == ' ' || r == '-' || r == '(' || r == ')':
			if len(out) > 0 && out[len(out)-1] != '_' {
				out = append(out, '_')
			}
		}
	}
	for len(out) > 0 && out[len(out)-1] == '_' {
		out = out[:len(out)-1]
	}
	return string(out)
}

func titleCase(s string) string {
	if s == "" {
		return s
	}
	if s == "tv" {
		return "TV"
	}
	r := []rune(s)
	if r[0] >= 'a' && r[0] <= 'z' {
		r[0] -= 'a' - 'A'
	}
	return string(r)
}
