package freebase_test

import (
	"testing"

	"github.com/uta-db/previewtables/internal/eval"
	"github.com/uta-db/previewtables/internal/freebase"
	"github.com/uta-db/previewtables/internal/graph"
)

// smallOpts keeps unit-test generation fast.
func smallOpts() freebase.GenOptions {
	return freebase.GenOptions{Scale: 1e-4, Seed: 42, MinEntities: 400, MinEdges: 1500}
}

func TestSchemaSizesMatchTable2(t *testing.T) {
	want := map[string][2]int{
		"books":        {91, 201},
		"film":         {63, 136},
		"music":        {69, 176},
		"tv":           {59, 177},
		"people":       {45, 78},
		"basketball":   {6, 21},
		"architecture": {23, 48},
	}
	for _, domain := range freebase.Domains() {
		g, err := freebase.Generate(domain, smallOpts())
		if err != nil {
			t.Fatalf("%s: %v", domain, err)
		}
		st := g.Stats()
		if st.Types != want[domain][0] || st.RelTypes != want[domain][1] {
			t.Errorf("%s schema = (%d, %d), want %v (Table 2)", domain, st.Types, st.RelTypes, want[domain])
		}
	}
}

func TestGeneratedGraphsValidate(t *testing.T) {
	for _, domain := range freebase.Domains() {
		g, err := freebase.Generate(domain, smallOpts())
		if err != nil {
			t.Fatalf("%s: %v", domain, err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", domain, err)
		}
		if g.NumEntities() < 100 {
			t.Errorf("%s: only %d entities", domain, g.NumEntities())
		}
		if g.NumEdges() < g.NumEntities() {
			t.Errorf("%s: %d edges below entity count %d", domain, g.NumEdges(), g.NumEntities())
		}
	}
}

func TestGenerationDeterministic(t *testing.T) {
	a, err := freebase.Generate("film", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := freebase.Generate("film", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats() != b.Stats() {
		t.Errorf("same seed, different stats: %v vs %v", a.Stats(), b.Stats())
	}
	// Spot-check structural equality through a few entity degree counts.
	for i := 0; i < 50 && i < a.NumEntities(); i++ {
		id := graph.EntityID(i)
		if len(a.OutEdges(id)) != len(b.OutEdges(id)) || a.EntityName(id) != b.EntityName(id) {
			t.Fatalf("entity %d differs between runs", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	opts := smallOpts()
	a, err := freebase.Generate("film", opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Seed = 43
	b, err := freebase.Generate("film", opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEntities() == b.NumEntities() && a.NumEdges() == b.NumEdges() {
		t.Log("sizes happen to match; checking degrees")
		same := true
		for i := 0; i < 100 && i < a.NumEntities(); i++ {
			if len(a.OutEdges(graph.EntityID(i))) != len(b.OutEdges(graph.EntityID(i))) {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced an identical-looking graph")
		}
	}
}

func TestGoldTypesExistInGraph(t *testing.T) {
	for _, domain := range freebase.GoldDomains() {
		g, err := freebase.Generate(domain, smallOpts())
		if err != nil {
			t.Fatal(err)
		}
		for _, key := range freebase.GoldKeys(domain) {
			tid, ok := g.TypeByName(key)
			if !ok {
				t.Errorf("%s: gold key %q missing from graph", domain, key)
				continue
			}
			// Each gold non-key must correspond to an incident relationship
			// type with that surface name.
			incident := map[string]bool{}
			for _, r := range g.IncidentRelTypes(tid) {
				incident[g.RelType(r).Name] = true
			}
			for _, nk := range freebase.GoldNonKeys(domain, key) {
				if !incident[nk] {
					t.Errorf("%s: gold non-key %q not incident on %q", domain, nk, key)
				}
			}
		}
		for _, ek := range freebase.ExpertKeys(domain) {
			if _, ok := g.TypeByName(ek); !ok {
				t.Errorf("%s: expert key %q missing from graph", domain, ek)
			}
		}
	}
}

func TestGoldSize(t *testing.T) {
	cases := map[string][2]int{
		"books":  {6, 15},
		"film":   {6, 9},
		"music":  {6, 18},
		"tv":     {6, 9},
		"people": {6, 16},
	}
	for domain, want := range cases {
		k, n := freebase.GoldSize(domain)
		if k != want[0] || n != want[1] {
			t.Errorf("%s gold size = (%d, %d), want %v (Table 10)", domain, k, n, want)
		}
	}
	if k, n := freebase.GoldSize("basketball"); k != 0 || n != 0 {
		t.Error("basketball has no gold standard")
	}
}

func TestCrossPrecisionMatchesTables22And23(t *testing.T) {
	// Evaluating the Freebase gold ranking against the Experts set must
	// reproduce Table 22; the reverse must reproduce Table 23.
	table22 := map[string][6]float64{
		"books":  {1, 0.5, 1.0 / 3, 0.25, 0.2, 1.0 / 3},
		"film":   {1, 0.5, 1.0 / 3, 0.5, 0.6, 0.5},
		"music":  {1, 1, 1, 1, 1, 5.0 / 6},
		"tv":     {1, 1, 1, 0.75, 0.6, 0.5},
		"people": {1, 1, 2.0 / 3, 0.5, 0.6, 0.5},
	}
	table23 := map[string][6]float64{
		"books":  {1, 1, 2.0 / 3, 0.5, 0.4, 1.0 / 3},
		"film":   {1, 0.5, 2.0 / 3, 0.75, 0.6, 0.5},
		"music":  {1, 1, 1, 1, 0.8, 5.0 / 6},
		"tv":     {1, 1, 2.0 / 3, 0.75, 0.6, 0.5},
		"people": {1, 0.5, 2.0 / 3, 0.75, 0.6, 0.5},
	}
	const tol = 0.01 // the paper rounds (e.g. 0.334, 0.664)
	for _, domain := range freebase.GoldDomains() {
		fb := freebase.GoldKeys(domain)
		ex := freebase.ExpertKeys(domain)
		fbSet := eval.NewGold(fb...)
		exSet := eval.NewGold(ex...)
		for k := 1; k <= 6; k++ {
			if got, want := eval.PrecisionAtK(fb, exSet, k), table22[domain][k-1]; abs(got-want) > tol {
				t.Errorf("%s Table 22 P@%d = %v, want %v", domain, k, got, want)
			}
			if got, want := eval.PrecisionAtK(ex, fbSet, k), table23[domain][k-1]; abs(got-want) > tol {
				t.Errorf("%s Table 23 P@%d = %v, want %v", domain, k, got, want)
			}
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestSubsetTypesShareEntities(t *testing.T) {
	g, err := freebase.Generate("people", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	person, ok := g.TypeByName("PERSON")
	if !ok {
		t.Fatal("PERSON missing")
	}
	deceased, ok := g.TypeByName("DECEASED PERSON")
	if !ok {
		t.Fatal("DECEASED PERSON missing")
	}
	if g.TypeCoverage(deceased) >= g.TypeCoverage(person) {
		t.Errorf("DECEASED PERSON (%d) should be smaller than PERSON (%d)",
			g.TypeCoverage(deceased), g.TypeCoverage(person))
	}
	// Every deceased person is a person.
	for _, e := range g.EntitiesOfType(deceased) {
		if !g.HasType(e, person) {
			t.Fatalf("deceased entity %q lacks PERSON", g.EntityName(e))
		}
	}
}

func TestUnknownDomain(t *testing.T) {
	if _, err := freebase.Generate("cooking", smallOpts()); err == nil {
		t.Error("unknown domain should fail")
	}
	if freebase.GoldKeys("cooking") != nil || freebase.ExpertKeys("cooking") != nil {
		t.Error("unknown domain gold accessors should return nil")
	}
	if _, _, ok := freebase.PaperSchemaSize("cooking"); ok {
		t.Error("unknown domain PaperSchemaSize should report !ok")
	}
}

func TestPaperSizes(t *testing.T) {
	v, e, ok := freebase.PaperGraphSize("music")
	if !ok || v != 27_000_000 || e != 187_000_000 {
		t.Errorf("music paper size = (%d, %d, %v)", v, e, ok)
	}
	k, n, ok := freebase.PaperSchemaSize("film")
	if !ok || k != 63 || n != 136 {
		t.Errorf("film schema size = (%d, %d, %v)", k, n, ok)
	}
}

func TestSkewProducesEmptyAndMultiValuedCells(t *testing.T) {
	// The value distributions must include empty cells and multi-valued
	// cells (as in Fig. 2) for entropy to be meaningful.
	g, err := freebase.Generate("film", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	film, _ := g.TypeByName("FILM")
	s := g.Schema()
	var genres graph.Incidence
	found := false
	for _, inc := range s.Incident(film) {
		if s.RelType(inc.Rel).Name == "Genres" && inc.Outgoing {
			genres = inc
			found = true
		}
	}
	if !found {
		t.Fatal("Genres not incident on FILM")
	}
	var empty, multi int
	for _, e := range g.EntitiesOfType(film) {
		vals := g.Neighbors(e, genres.Rel, genres.Outgoing)
		switch {
		case len(vals) == 0:
			empty++
		case len(vals) > 1:
			multi++
		}
	}
	if empty == 0 {
		t.Error("no FILM has an empty Genres cell")
	}
	if multi == 0 {
		t.Error("no FILM has a multi-valued Genres cell")
	}
}

func TestTargetEntitiesScaleKnob(t *testing.T) {
	// TargetEntities overrides Scale: the generated population lands near
	// the requested entity count while the schema keeps its exact Table 2
	// sizes — the knob changes scale, never shape.
	const want = 25_000
	g, err := freebase.Generate("music", freebase.GenOptions{
		TargetEntities: want, Seed: 42, MinEntities: 400, MinEdges: 1500,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := g.NumEntities()
	if got < want*7/10 || got > want*13/10 {
		t.Fatalf("TargetEntities=%d generated %d entities, want within ±30%%", want, got)
	}
	if g.NumTypes() != 69 || g.NumRelTypes() != 176 {
		t.Fatalf("schema drifted: %d types, %d rel types; want 69, 176 (Table 2)", g.NumTypes(), g.NumRelTypes())
	}
	// Edges scale with the same factor: music's paper edge/entity ratio is
	// ~6.9, so the edge count must grow far past the MinEdges floor.
	if g.NumEdges() < 2*want {
		t.Fatalf("edge budget did not scale with TargetEntities: %d edges for %d entities", g.NumEdges(), got)
	}

	// A Scale value yielding the same factor produces the identical graph:
	// the knob is sugar, not a second code path.
	h, err := freebase.Generate("music", freebase.GenOptions{
		Scale: float64(want) / 27_000_000, Seed: 42, MinEntities: 400, MinEdges: 1500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEntities() != g.NumEntities() || h.NumEdges() != g.NumEdges() {
		t.Fatalf("TargetEntities and equivalent Scale diverge: %d/%d entities, %d/%d edges",
			g.NumEntities(), h.NumEntities(), g.NumEdges(), h.NumEdges())
	}
}
