package study_test

import (
	"math/rand"
	"testing"

	"github.com/uta-db/previewtables/internal/freebase"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/stats"
	"github.com/uta-db/previewtables/internal/study"
)

func testGraph(t *testing.T, domain string) *graph.EntityGraph {
	t.Helper()
	g, err := freebase.Generate(domain, freebase.GenOptions{Scale: 1e-4, Seed: 99, MinEntities: 500, MinEdges: 2500})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestApproachNames(t *testing.T) {
	want := []string{"Concise", "Tight", "Diverse", "Freebase", "Experts", "YPS09", "Graph"}
	for i, a := range study.Approaches() {
		if a.String() != want[i] {
			t.Errorf("approach %d = %s, want %s", i, a, want[i])
		}
		back, ok := study.ParseApproach(want[i])
		if !ok || back != a {
			t.Errorf("ParseApproach(%s) = %v, %v", want[i], back, ok)
		}
	}
	if _, ok := study.ParseApproach("Nope"); ok {
		t.Error("unknown approach parsed")
	}
}

func TestBuildPresentations(t *testing.T) {
	g := testGraph(t, "film")
	pres, err := study.BuildPresentations(g, "film")
	if err != nil {
		t.Fatal(err)
	}
	if len(pres) != 7 {
		t.Fatalf("presentations = %d, want 7", len(pres))
	}
	// The full graph shows everything.
	sg := pres[study.SchemaGraph]
	if sg.Coverage != 1 || sg.Load != 1 {
		t.Errorf("Graph coverage/load = %v/%v, want 1/1", sg.Coverage, sg.Load)
	}
	// Preview approaches are compact.
	for _, a := range []study.Approach{study.Concise, study.Tight, study.Diverse, study.FreebaseGold, study.Experts} {
		p := pres[a]
		if p.Load >= 0.5 {
			t.Errorf("%s load = %v, want compact (< 0.5)", a, p.Load)
		}
		if len(p.VisibleRels) == 0 {
			t.Errorf("%s shows no relationships", a)
		}
	}
	// YPS09's wide tables sit between previews and the full graph.
	y := pres[study.YPS09]
	if y.Columns <= pres[study.Concise].Columns {
		t.Errorf("YPS09 columns (%d) should exceed Concise (%d): wide tables",
			y.Columns, pres[study.Concise].Columns)
	}
	if y.Load >= 1 {
		t.Errorf("YPS09 load = %v, want < 1", y.Load)
	}
}

func TestPresentationsForAllGoldDomains(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, domain := range freebase.GoldDomains() {
		g := testGraph(t, domain)
		if _, err := study.BuildPresentations(g, domain); err != nil {
			t.Errorf("%s: %v", domain, err)
		}
	}
}

func TestBuildPresentationsRequiresGold(t *testing.T) {
	g := testGraph(t, "basketball")
	if _, err := study.BuildPresentations(g, "basketball"); err == nil {
		t.Error("domain without gold standard should fail")
	}
}

func TestGenerateQuestions(t *testing.T) {
	g := testGraph(t, "tv")
	rng := rand.New(rand.NewSource(5))
	qs, err := study.GenerateQuestions(g, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 4 {
		t.Fatalf("questions = %d, want 4", len(qs))
	}
	var pos, neg int
	seen := map[graph.RelTypeID]bool{}
	for _, q := range qs {
		if q.Text == "" {
			t.Error("empty question text")
		}
		if q.Positive {
			pos++
			if seen[q.Rel] {
				t.Error("positive fact repeated")
			}
			seen[q.Rel] = true
		} else {
			neg++
		}
	}
	if pos != 2 || neg != 2 {
		t.Errorf("positive/negative = %d/%d, want 2/2", pos, neg)
	}
}

func TestRunDomain(t *testing.T) {
	g := testGraph(t, "music")
	results, err := study.RunDomain(g, "music", study.Config{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 7 {
		t.Fatalf("results = %d, want 7", len(results))
	}
	wantResponses := map[study.Approach]int{
		study.Concise: 52, study.Tight: 48, study.Diverse: 52,
		study.FreebaseGold: 44, study.Experts: 48, study.YPS09: 52,
		study.SchemaGraph: 40,
	}
	for _, r := range results {
		if r.Responses != wantResponses[r.Approach] {
			t.Errorf("%s responses = %d, want %d (Table 5 sample sizes)",
				r.Approach, r.Responses, wantResponses[r.Approach])
		}
		c := r.ConversionRate()
		if c < 0.4 || c > 1 {
			t.Errorf("%s conversion = %v, outside plausible band", r.Approach, c)
		}
		if len(r.Times) != r.Responses {
			t.Errorf("%s times = %d, want %d", r.Approach, len(r.Times), r.Responses)
		}
		for _, tm := range r.Times {
			if tm <= 0 {
				t.Errorf("%s non-positive time %v", r.Approach, tm)
			}
		}
	}
}

func TestRunDomainDeterministic(t *testing.T) {
	g := testGraph(t, "people")
	a, err := study.RunDomain(g, "people", study.Config{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	b, err := study.RunDomain(g, "people", study.Config{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Correct != b[i].Correct || len(a[i].Times) != len(b[i].Times) {
			t.Fatal("same seed, different study outcome")
		}
	}
}

func TestCompactApproachesFasterThanGraph(t *testing.T) {
	// The shape of Table 6 / Fig. 10: preview-style presentations take less
	// median time than the full schema graph and the wide YPS09 tables.
	g := testGraph(t, "film")
	results, err := study.RunDomain(g, "film", study.Config{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	medians := map[study.Approach]float64{}
	for _, r := range results {
		medians[r.Approach] = stats.Median(r.Times)
	}
	if medians[study.Tight] >= medians[study.SchemaGraph] {
		t.Errorf("Tight median (%v) should beat Graph (%v)", medians[study.Tight], medians[study.SchemaGraph])
	}
	if medians[study.FreebaseGold] >= medians[study.YPS09] {
		t.Errorf("Freebase median (%v) should beat YPS09 (%v)", medians[study.FreebaseGold], medians[study.YPS09])
	}
}

func TestConversionRateZeroResponses(t *testing.T) {
	var r study.ApproachResult
	if r.ConversionRate() != 0 {
		t.Error("zero responses should yield 0 conversion")
	}
}

func TestLikertCalibration(t *testing.T) {
	// The embedded calibration equals the paper's Table 19 (music) values.
	means, ok := study.PaperLikertMeans("music", study.YPS09)
	if !ok {
		t.Fatal("music YPS09 means missing")
	}
	want := [4]float64{4.3077, 4.5385, 4.4615, 3.8333}
	if means != want {
		t.Errorf("music YPS09 = %v, want %v", means, want)
	}
	if _, ok := study.PaperLikertMeans("cooking", study.Tight); ok {
		t.Error("unknown domain should report !ok")
	}
	if len(study.LikertDomains()) != 5 {
		t.Error("want 5 calibrated domains")
	}
}

func TestSimulateLikert(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	got, ok := study.SimulateLikert("books", study.Tight, 200, rng)
	if !ok {
		t.Fatal("books Tight missing")
	}
	want, _ := study.PaperLikertMeans("books", study.Tight)
	for q := 0; q < 4; q++ {
		if got[q] < 1 || got[q] > 5 {
			t.Errorf("Q%d mean %v out of Likert range", q+1, got[q])
		}
		if diff := got[q] - want[q]; diff > 0.35 || diff < -0.35 {
			t.Errorf("Q%d simulated mean %v far from calibration %v", q+1, got[q], want[q])
		}
	}
	if _, ok := study.SimulateLikert("nope", study.Tight, 10, rng); ok {
		t.Error("unknown domain should report !ok")
	}
}

func TestUserExperienceQuestionsPresent(t *testing.T) {
	for i, q := range study.UserExperienceQuestions {
		if q == "" {
			t.Errorf("question %d empty", i+1)
		}
	}
}
