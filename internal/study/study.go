// Package study simulates the user study of Sec. 6.3: 84 participants
// split across seven schema-presentation approaches (Concise, Tight,
// Diverse, Freebase gold standard, hand-crafted Experts, YPS09 summaries,
// and the raw schema Graph), answering existence-test questions and user
// experience questionnaires over the five gold domains.
//
// Substitution note (see DESIGN.md): human participants are replaced by a
// behavioral model driven by the presentation each approach actually
// produces — the previews come from the real discovery algorithms, the
// YPS09 summary from the real baseline, and the gold standards from the
// paper's Table 10. A participant answers an existence question correctly
// with a probability that depends on whether the asked fact is visible in
// their presentation and on the presentation's complexity; response times
// are lognormal with medians growing with complexity. The study artifacts
// (conversion-rate tables, pairwise z-tests, time boxplots) are then
// computed with the same statistics as the paper.
package study

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/uta-db/previewtables/internal/graph"
)

// Approach is one of the seven presentation approaches compared in Sec. 6.3.
type Approach int

// The seven approaches, in the paper's table order.
const (
	Concise Approach = iota
	Tight
	Diverse
	FreebaseGold
	Experts
	YPS09
	SchemaGraph
)

// Approaches lists all seven approaches in presentation order.
func Approaches() []Approach {
	return []Approach{Concise, Tight, Diverse, FreebaseGold, Experts, YPS09, SchemaGraph}
}

// String names the approach as in the paper's tables.
func (a Approach) String() string {
	switch a {
	case Concise:
		return "Concise"
	case Tight:
		return "Tight"
	case Diverse:
		return "Diverse"
	case FreebaseGold:
		return "Freebase"
	case Experts:
		return "Experts"
	case YPS09:
		return "YPS09"
	case SchemaGraph:
		return "Graph"
	default:
		return fmt.Sprintf("Approach(%d)", int(a))
	}
}

// ParseApproach resolves a paper table label back to an Approach.
func ParseApproach(s string) (Approach, bool) {
	for _, a := range Approaches() {
		if a.String() == s {
			return a, true
		}
	}
	return 0, false
}

// Question is one existence-test item: "does the dataset provide <fact>?".
// Positive questions name a real relationship type; negative questions name
// a fabricated attribute of an existing entity type.
type Question struct {
	Text     string
	Positive bool
	Rel      graph.RelTypeID // valid when Positive
}

// GenerateQuestions builds n existence-test questions for a graph: half
// positive facts sampled with probability proportional to relationship
// instance counts (participants are asked about salient facts, e.g. "the
// dataset provides the awards of a musician"), half fabricated negatives.
func GenerateQuestions(g *graph.EntityGraph, n int, rng *rand.Rand) ([]Question, error) {
	if g.NumRelTypes() == 0 {
		return nil, errors.New("study: graph has no relationship types")
	}
	questions := make([]Question, 0, n)
	nPos := (n + 1) / 2

	// Weighted sampling without replacement over relationship types.
	type cand struct {
		id graph.RelTypeID
		w  float64
	}
	cands := make([]cand, g.NumRelTypes())
	var total float64
	for i := range cands {
		w := float64(g.RelType(graph.RelTypeID(i)).EdgeCount) + 1
		cands[i] = cand{graph.RelTypeID(i), w}
		total += w
	}
	for len(questions) < nPos && len(cands) > 0 {
		r := rng.Float64() * total
		idx := 0
		for i := range cands {
			r -= cands[i].w
			if r <= 0 {
				idx = i
				break
			}
		}
		rt := g.RelType(cands[idx].id)
		questions = append(questions, Question{
			Text: fmt.Sprintf("the dataset provides %q of %s entities",
				rt.Name, g.TypeName(rt.From)),
			Positive: true,
			Rel:      cands[idx].id,
		})
		total -= cands[idx].w
		cands = append(cands[:idx], cands[idx+1:]...)
	}

	// Negatives: a plausible-sounding attribute that no entity type has.
	fakes := []string{"Shoe Size", "Favorite Color", "Blood Type", "Zodiac Sign",
		"Prison Record", "Patent Portfolio", "Twitter Handle", "Carbon Footprint"}
	for i := 0; len(questions) < n; i++ {
		t := graph.TypeID(rng.Intn(g.NumTypes()))
		questions = append(questions, Question{
			Text: fmt.Sprintf("the dataset provides %q of %s entities",
				fakes[i%len(fakes)], g.TypeName(t)),
			Positive: false,
		})
	}
	return questions, nil
}

// Model holds the behavioral parameters of the simulated participants. The
// defaults are calibrated so conversion rates land in the paper's observed
// 0.6–0.98 band with the paper's ordering tendencies (compact previews fast
// and accurate on salient facts; the full graph accurate but slow).
type Model struct {
	// PVisible is the probability of answering a positive question
	// correctly when the fact is visible, before the complexity penalty.
	PVisible float64
	// PHidden is the probability of answering a positive question
	// correctly when the fact is not visible (informed guessing).
	PHidden float64
	// PNegativeBase + PNegativeCoverage·coverage is the probability of
	// correctly rejecting a fabricated fact: complete presentations let
	// participants verify absence.
	PNegativeBase, PNegativeCoverage float64
	// LoadPenalty scales the accuracy loss from presentation complexity.
	LoadPenalty float64
	// TimeBase and TimeLoad set the median seconds per question:
	// base + load·complexity^0.7; TimeSigma is the lognormal shape.
	TimeBase, TimeLoad, TimeSigma float64
	// LocalityPenalty slows participants whose presentation spreads over
	// distant concepts: the median is multiplied by
	// 1 + penalty·(avg key distance − 1).
	LocalityPenalty float64
}

// DefaultModel returns the calibrated participant model.
func DefaultModel() Model {
	return Model{
		PVisible:          0.96,
		PHidden:           0.45,
		PNegativeBase:     0.78,
		PNegativeCoverage: 0.18,
		LoadPenalty:       0.10,
		TimeBase:          11,
		TimeLoad:          38,
		TimeSigma:         0.45,
		LocalityPenalty:   0.09,
	}
}

// Config parameterizes a simulated study run.
type Config struct {
	Seed         int64
	Questions    int              // existence questions per domain (default 4)
	Participants map[Approach]int // per approach (defaults = paper's Table 5)
	Model        Model            // zero value takes DefaultModel
}

// DefaultParticipants returns the per-approach participant counts implied
// by Table 5's sample sizes (responses ÷ 4 questions).
func DefaultParticipants() map[Approach]int {
	return map[Approach]int{
		Concise:      13,
		Tight:        12,
		Diverse:      13,
		FreebaseGold: 11,
		Experts:      12,
		YPS09:        13,
		SchemaGraph:  10,
	}
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Questions <= 0 {
		c.Questions = 4
	}
	if c.Participants == nil {
		c.Participants = DefaultParticipants()
	}
	if c.Model == (Model{}) {
		c.Model = DefaultModel()
	}
	return c
}

// ApproachResult aggregates one approach's existence-test outcomes on one
// domain: the raw per-response times and the correct/total counts behind
// Table 5's sample sizes and conversion rates.
type ApproachResult struct {
	Approach  Approach
	Responses int
	Correct   int
	Times     []float64 // seconds per response
}

// ConversionRate is the fraction of existence questions answered correctly.
func (r ApproachResult) ConversionRate() float64 {
	if r.Responses == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Responses)
}

// RunDomain simulates all seven approaches on one domain's graph: it builds
// each approach's presentation, generates one shared question set, and runs
// the simulated participants. Results are returned in Approaches() order.
func RunDomain(g *graph.EntityGraph, domain string, cfg Config) ([]ApproachResult, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(len(domain))<<32 ^ int64(domain[0])))

	pres, err := BuildPresentations(g, domain)
	if err != nil {
		return nil, err
	}
	questions, err := GenerateQuestions(g, cfg.Questions, rng)
	if err != nil {
		return nil, err
	}

	m := cfg.Model
	results := make([]ApproachResult, 0, len(pres))
	for _, a := range Approaches() {
		p := pres[a]
		res := ApproachResult{Approach: a}
		participants := cfg.Participants[a]
		medianTime := (m.TimeBase + m.TimeLoad*math.Pow(p.Load, 0.7)) *
			(1 + m.LocalityPenalty*math.Max(0, p.AvgKeyDistance-1))
		for i := 0; i < participants; i++ {
			for _, q := range questions {
				var pCorrect float64
				switch {
				case q.Positive && p.VisibleRels[q.Rel]:
					pCorrect = m.PVisible - m.LoadPenalty*p.Load
				case q.Positive:
					pCorrect = m.PHidden
				default:
					pCorrect = m.PNegativeBase + m.PNegativeCoverage*p.Coverage - m.LoadPenalty*p.Load
				}
				res.Responses++
				if rng.Float64() < pCorrect {
					res.Correct++
				}
				res.Times = append(res.Times, medianTime*math.Exp(rng.NormFloat64()*m.TimeSigma))
			}
		}
		results = append(results, res)
	}
	return results, nil
}
