package study

import "math/rand"

// User experience questionnaire (Table 8). Each question is answered on a
// 1–5 Likert scale.
var UserExperienceQuestions = [4]string{
	"How easy was it to read the schema summary of this domain?",
	"How much understanding of the data in this domain can you gain from the schema summary?",
	"How helpful was the schema summary in assisting you to understand the data of this domain?",
	"Is the schema summary missing important information about data in this domain?",
}

// likertMeans embeds the paper's reported mean Likert responses
// (Tables 17–21) per domain, approach and question. Human perception —
// unlike existence-test efficacy — cannot be derived from the presentation
// artifacts (the paper itself highlights the mismatch between perception
// and performance in Sec. 6.3.2), so the simulation samples individual
// responses calibrated to these observed means.
var likertMeans = map[string]map[Approach][4]float64{
	"books": {
		Concise:      {3.5, 4.0769, 3.9231, 3.6154},
		Tight:        {3.5833, 3.9167, 4, 3.3333},
		Diverse:      {3.9231, 3.8462, 4.0769, 3.6364},
		FreebaseGold: {3.8182, 4.0909, 4, 3.6},
		Experts:      {3.3333, 3.75, 4.2727, 3.5},
		YPS09:        {3.75, 3.8333, 3.8462, 3.5385},
		SchemaGraph:  {4.4, 4.1, 4.1, 3.3333},
	},
	"film": {
		Concise:      {4, 4.0909, 4.4167, 3.7692},
		Tight:        {4.0833, 4.6667, 4.5, 3.75},
		Diverse:      {4.1538, 4.4615, 4.4615, 3.3846},
		FreebaseGold: {4.1818, 4.3636, 4.2727, 3.4545},
		Experts:      {4, 4.0833, 4.25, 3.2727},
		YPS09:        {3.5385, 4.3077, 4.2308, 4},
		SchemaGraph:  {3.8, 4.7, 4.6, 4},
	},
	"music": {
		Concise:      {3.8462, 3.8462, 4.1538, 3.5833},
		Tight:        {3.6667, 3.8333, 4.0833, 3.75},
		Diverse:      {3.75, 3.75, 3.9167, 3},
		FreebaseGold: {3.8182, 4.2727, 4.4545, 3.5455},
		Experts:      {4.1667, 4.1667, 4.5, 4.3333},
		YPS09:        {4.3077, 4.5385, 4.4615, 3.8333},
		SchemaGraph:  {3.6, 4.6, 4.5, 3.9},
	},
	"tv": {
		Concise:      {3.7692, 4, 3.7692, 3.7692},
		Tight:        {4.1667, 4.1667, 4.1667, 3.6667},
		Diverse:      {4.0833, 4.25, 4.4167, 3.6667},
		FreebaseGold: {4.5455, 4.3636, 4.2727, 3.2727},
		Experts:      {4.1667, 3.8333, 3.8333, 3.6667},
		YPS09:        {3.5385, 3.6154, 3.7692, 3},
		SchemaGraph:  {3.5, 4.6, 4.4, 3.9},
	},
	"people": {
		Concise:      {4.2308, 4.3846, 4.3077, 4},
		Tight:        {2.9167, 3.6364, 3.4545, 2.9167},
		Diverse:      {4.0833, 4.1667, 4.0833, 3.5833},
		FreebaseGold: {3.9091, 4.0909, 4.0909, 3.4545},
		Experts:      {3.9167, 4.0833, 4.0833, 3.75},
		YPS09:        {4.3333, 4.4615, 4.6923, 4.3846},
		SchemaGraph:  {4.5, 4.1, 4, 3.1},
	},
}

// PaperLikertMeans returns the paper-reported mean Likert responses for a
// domain/approach (Tables 17–21), and whether the domain has them.
func PaperLikertMeans(domain string, a Approach) ([4]float64, bool) {
	m, ok := likertMeans[domain]
	if !ok {
		return [4]float64{}, false
	}
	v, ok := m[a]
	return v, ok
}

// LikertDomains lists the domains with calibration data.
func LikertDomains() []string {
	return []string{"books", "film", "music", "tv", "people"}
}

// SimulateLikert samples individual 1–5 responses from the given number of
// participants for each of the four questions, calibrated to the paper's
// reported means, and returns the per-question sample means. Individual
// responses are the rounded, clamped draws of a normal around the
// calibrated mean (sd 0.7) — the granularity real Likert data has.
func SimulateLikert(domain string, a Approach, participants int, rng *rand.Rand) ([4]float64, bool) {
	means, ok := PaperLikertMeans(domain, a)
	if !ok {
		return [4]float64{}, false
	}
	var out [4]float64
	for q := 0; q < 4; q++ {
		var sum float64
		for i := 0; i < participants; i++ {
			v := means[q] + rng.NormFloat64()*0.7
			r := int(v + 0.5)
			if r < 1 {
				r = 1
			}
			if r > 5 {
				r = 5
			}
			sum += float64(r)
		}
		if participants > 0 {
			out[q] = sum / float64(participants)
		}
	}
	return out, true
}
