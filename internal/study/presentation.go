package study

import (
	"errors"
	"fmt"

	"github.com/uta-db/previewtables/internal/core"
	"github.com/uta-db/previewtables/internal/freebase"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/score"
	"github.com/uta-db/previewtables/internal/yps09"
)

// Presentation is what a participant sees under one approach: the set of
// relationship types exposed as attributes somewhere in the presentation,
// and two derived signals the behavioral model consumes — Coverage (the
// fraction of all relationship types visible; completeness) and Load (the
// column count normalized by the full schema's size; scanning effort).
type Presentation struct {
	Approach    Approach
	VisibleRels map[graph.RelTypeID]bool
	Columns     int
	Coverage    float64
	Load        float64
	// AvgKeyDistance is the mean pairwise schema distance between the
	// presentation's keyed entity types (for the full graph: between all
	// types). Scanning related concepts is faster than hopping between
	// distant ones — the behavioral hypothesis behind the paper's finding
	// that tight previews were the most convenient (Table 6).
	AvgKeyDistance float64
}

// BuildPresentations constructs all seven approaches' presentations for one
// gold domain. The preview approaches run the actual discovery algorithms
// under the domain's gold-standard size constraint (k, n); Tight uses d=2
// and Diverse d=4 (the sample-preview settings of Tables 11–12), falling
// back toward the feasible range if a constraint is unsatisfiable on the
// generated schema.
func BuildPresentations(g *graph.EntityGraph, domain string) (map[Approach]*Presentation, error) {
	k, n := freebase.GoldSize(domain)
	if k == 0 {
		return nil, fmt.Errorf("study: domain %q has no gold standard", domain)
	}
	set := score.Compute(g, score.DefaultWalkOptions())
	d := core.New(set, core.Options{Key: score.KeyCoverage, NonKey: score.NonKeyCoverage})
	totalCols := g.NumTypes() + g.NumRelTypes()
	distances := d.Distances()
	avgDist := func(keys []graph.TypeID) float64 {
		var sum, cnt float64
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				if dd := distances.Dist(keys[i], keys[j]); dd >= 0 {
					sum += float64(dd)
					cnt++
				}
			}
		}
		if cnt == 0 {
			return 1
		}
		return sum / cnt
	}

	pres := make(map[Approach]*Presentation, 7)
	add := func(a Approach, rels map[graph.RelTypeID]bool, columns int, keys []graph.TypeID) {
		pres[a] = &Presentation{
			Approach:       a,
			VisibleRels:    rels,
			Columns:        columns,
			Coverage:       float64(len(rels)) / float64(g.NumRelTypes()),
			Load:           float64(columns) / float64(totalCols),
			AvgKeyDistance: avgDist(keys),
		}
	}

	addPreview := func(a Approach, p core.Preview) {
		rels := make(map[graph.RelTypeID]bool)
		cols := 0
		for _, t := range p.Tables {
			cols++ // key column
			for _, c := range t.NonKeys {
				rels[c.Inc.Rel] = true
				cols++
			}
		}
		add(a, rels, cols, p.Keys())
	}

	// Concise preview.
	pc, err := d.Discover(core.Constraint{K: k, N: n, Mode: core.Concise})
	if err != nil {
		return nil, fmt.Errorf("study: concise preview for %s: %w", domain, err)
	}
	addPreview(Concise, pc)

	// Tight preview: d=2, relaxing upward if infeasible.
	pt, err := discoverWithFallback(d, core.Constraint{K: k, N: n, Mode: core.Tight, D: 2}, []int{3, 4, 5})
	if err != nil {
		return nil, fmt.Errorf("study: tight preview for %s: %w", domain, err)
	}
	addPreview(Tight, pt)

	// Diverse preview: d=4, relaxing downward if infeasible.
	pd, err := discoverWithFallback(d, core.Constraint{K: k, N: n, Mode: core.Diverse, D: 4}, []int{3, 2, 1})
	if err != nil {
		return nil, fmt.Errorf("study: diverse preview for %s: %w", domain, err)
	}
	addPreview(Diverse, pd)

	// Freebase gold standard: Table 10 verbatim.
	goldRels := make(map[graph.RelTypeID]bool)
	goldCols := 0
	var goldKeyIDs []graph.TypeID
	for _, key := range freebase.GoldKeys(domain) {
		tid, ok := g.TypeByName(key)
		if !ok {
			return nil, fmt.Errorf("study: gold key %q missing in %s", key, domain)
		}
		goldKeyIDs = append(goldKeyIDs, tid)
		goldCols++
		incidentByName := make(map[string]graph.RelTypeID)
		for _, r := range g.IncidentRelTypes(tid) {
			incidentByName[g.RelType(r).Name] = r
		}
		for _, nk := range freebase.GoldNonKeys(domain, key) {
			if r, ok := incidentByName[nk]; ok {
				goldRels[r] = true
				goldCols++
			}
		}
	}
	add(FreebaseGold, goldRels, goldCols, goldKeyIDs)

	// Experts: the expert key attributes under the same (k, n) budget,
	// attributes chosen by the discovery machinery (the experts also picked
	// "reasonable" attributes for their keys).
	expertIDs := make([]graph.TypeID, 0, k)
	for _, name := range freebase.ExpertKeys(domain) {
		tid, ok := g.TypeByName(name)
		if !ok {
			return nil, fmt.Errorf("study: expert key %q missing in %s", name, domain)
		}
		expertIDs = append(expertIDs, tid)
	}
	pe, err := d.ComputePreview(expertIDs, n)
	if err != nil {
		return nil, fmt.Errorf("study: experts preview for %s: %w", domain, err)
	}
	addPreview(Experts, pe)

	// YPS09: k cluster-center tables, each with every incident relationship
	// (Sec. 6.3: "the table for each entity type includes all relationships
	// incident on the entity type ... the tables are wide").
	y := yps09.New(g)
	clusters, err := y.Summarize(k)
	if err != nil {
		return nil, fmt.Errorf("study: yps09 summary for %s: %w", domain, err)
	}
	yRels := make(map[graph.RelTypeID]bool)
	yCols := 0
	var centers []graph.TypeID
	for _, c := range clusters {
		centers = append(centers, c.Center)
		yCols += y.TableWidth(c.Center)
		for _, r := range g.IncidentRelTypes(c.Center) {
			yRels[r] = true
		}
	}
	add(YPS09, yRels, yCols, centers)

	// Graph: the full schema graph.
	allRels := make(map[graph.RelTypeID]bool, g.NumRelTypes())
	allTypes := make([]graph.TypeID, g.NumTypes())
	for i := 0; i < g.NumRelTypes(); i++ {
		allRels[graph.RelTypeID(i)] = true
	}
	for i := range allTypes {
		allTypes[i] = graph.TypeID(i)
	}
	add(SchemaGraph, allRels, totalCols, allTypes)

	return pres, nil
}

// discoverWithFallback tries the constraint and then each fallback distance
// until one is satisfiable.
func discoverWithFallback(d *core.Discoverer, c core.Constraint, fallbacks []int) (core.Preview, error) {
	p, err := d.Discover(c)
	if err == nil {
		return p, nil
	}
	if !errors.Is(err, core.ErrNoPreview) {
		return core.Preview{}, err
	}
	for _, fd := range fallbacks {
		c.D = fd
		if p, err = d.Discover(c); err == nil {
			return p, nil
		}
		if !errors.Is(err, core.ErrNoPreview) {
			return core.Preview{}, err
		}
	}
	return core.Preview{}, err
}
