// Package eval implements the information-retrieval quality metrics used in
// Sec. 6.1 of the paper to compare scoring-measure rankings against gold
// standards: Precision-at-K, Average Precision, normalized Discounted
// Cumulative Gain, and Mean Reciprocal Rank, plus the "Optimal P@K" upper
// bound curve drawn in Figs. 5–7.
package eval

import "math"

// Gold is the set of relevant items for one ranking task.
type Gold map[string]bool

// NewGold builds a gold set from item names.
func NewGold(items ...string) Gold {
	g := make(Gold, len(items))
	for _, it := range items {
		g[it] = true
	}
	return g
}

// PrecisionAtK returns the fraction of the top-k ranked items that are in
// gold. If the ranking is shorter than k, the missing tail counts as
// irrelevant (precision keeps k as its denominator, matching the paper's
// fixed-x-axis plots).
func PrecisionAtK(ranked []string, gold Gold, k int) float64 {
	if k <= 0 {
		return 0
	}
	var hits int
	for i := 0; i < k && i < len(ranked); i++ {
		if gold[ranked[i]] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// OptimalPrecisionAtK is the best possible P@K for a gold set of the given
// size: min(|gold|, k)/k — the paper's topmost "Optimal P@K" curves.
func OptimalPrecisionAtK(goldSize, k int) float64 {
	if k <= 0 {
		return 0
	}
	if goldSize > k {
		goldSize = k
	}
	return float64(goldSize) / float64(k)
}

// AveragePrecision returns AvgP over the top-k results:
// Σ_{i=1..k} P@i · rel_i / |gold| (Sec. 6.1.2).
func AveragePrecision(ranked []string, gold Gold, k int) float64 {
	if len(gold) == 0 || k <= 0 {
		return 0
	}
	var sum float64
	var hits int
	for i := 0; i < k && i < len(ranked); i++ {
		if gold[ranked[i]] {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	return sum / float64(len(gold))
}

// DCG returns the discounted cumulative gain of the top-k results with
// binary relevance, using the paper's discount: rel1 + Σ_{i≥2} reli/log2(i).
func DCG(ranked []string, gold Gold, k int) float64 {
	var dcg float64
	for i := 0; i < k && i < len(ranked); i++ {
		if !gold[ranked[i]] {
			continue
		}
		if i == 0 {
			dcg++
		} else {
			dcg += 1 / math.Log2(float64(i+1))
		}
	}
	return dcg
}

// IdealDCG returns the DCG of an ideal top-k ranking for a gold set of the
// given size: the first min(k, size) positions are all relevant.
func IdealDCG(goldSize, k int) float64 {
	if goldSize > k {
		goldSize = k
	}
	var dcg float64
	for i := 0; i < goldSize; i++ {
		if i == 0 {
			dcg++
		} else {
			dcg += 1 / math.Log2(float64(i+1))
		}
	}
	return dcg
}

// NDCG returns DCG normalized by the ideal DCG; 0 when the gold set is
// empty.
func NDCG(ranked []string, gold Gold, k int) float64 {
	ideal := IdealDCG(len(gold), k)
	if ideal == 0 {
		return 0
	}
	return DCG(ranked, gold, k) / ideal
}

// ReciprocalRank returns 1/rank of the first gold item in the ranking, or 0
// if none appears.
func ReciprocalRank(ranked []string, gold Gold) float64 {
	for i, item := range ranked {
		if gold[item] {
			return 1 / float64(i+1)
		}
	}
	return 0
}

// MRR averages reciprocal ranks across ranking tasks (Sec. 6.1.2 uses it
// for non-key attribute scoring, one task per entity type). Empty input
// yields 0.
func MRR(rrs []float64) float64 {
	if len(rrs) == 0 {
		return 0
	}
	var sum float64
	for _, r := range rrs {
		sum += r
	}
	return sum / float64(len(rrs))
}
