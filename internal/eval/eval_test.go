package eval_test

import (
	"math"
	"testing"

	"github.com/uta-db/previewtables/internal/eval"
)

const eps = 1e-9

func TestPrecisionAtK(t *testing.T) {
	gold := eval.NewGold("a", "b", "c")
	ranked := []string{"a", "x", "b", "y", "z"}
	cases := []struct {
		k    int
		want float64
	}{
		{1, 1}, {2, 0.5}, {3, 2.0 / 3.0}, {5, 0.4}, {10, 0.2},
	}
	for _, c := range cases {
		if got := eval.PrecisionAtK(ranked, gold, c.k); math.Abs(got-c.want) > eps {
			t.Errorf("P@%d = %v, want %v", c.k, got, c.want)
		}
	}
	if eval.PrecisionAtK(ranked, gold, 0) != 0 {
		t.Error("P@0 should be 0")
	}
}

func TestOptimalPrecisionAtK(t *testing.T) {
	// Paper: "P@10 can be at most 0.6, since there are only 6 gold standard
	// key attributes".
	if got := eval.OptimalPrecisionAtK(6, 10); math.Abs(got-0.6) > eps {
		t.Errorf("optimal P@10 with 6 gold = %v, want 0.6", got)
	}
	if got := eval.OptimalPrecisionAtK(6, 3); got != 1 {
		t.Errorf("optimal P@3 with 6 gold = %v, want 1", got)
	}
	if eval.OptimalPrecisionAtK(6, 0) != 0 {
		t.Error("optimal P@0 should be 0")
	}
}

func TestAveragePrecision(t *testing.T) {
	gold := eval.NewGold("a", "b")
	// Ranking: a, x, b → AvgP@3 = (1/1 + 2/3)/2 = 5/6.
	got := eval.AveragePrecision([]string{"a", "x", "b"}, gold, 3)
	if want := 5.0 / 6.0; math.Abs(got-want) > eps {
		t.Errorf("AvgP = %v, want %v", got, want)
	}
	// Perfect ranking: AvgP = 1.
	if got := eval.AveragePrecision([]string{"a", "b"}, gold, 2); math.Abs(got-1) > eps {
		t.Errorf("perfect AvgP = %v, want 1", got)
	}
	// No relevant results: 0.
	if got := eval.AveragePrecision([]string{"x", "y"}, gold, 2); got != 0 {
		t.Errorf("irrelevant AvgP = %v, want 0", got)
	}
	if eval.AveragePrecision([]string{"a"}, eval.NewGold(), 1) != 0 {
		t.Error("empty gold should yield 0")
	}
}

func TestDCGAndNDCG(t *testing.T) {
	gold := eval.NewGold("a", "b")
	// Ranking: a, x, b → DCG = 1 + 1/log2(3).
	got := eval.DCG([]string{"a", "x", "b"}, gold, 3)
	want := 1 + 1/math.Log2(3)
	if math.Abs(got-want) > eps {
		t.Errorf("DCG = %v, want %v", got, want)
	}
	// Ideal: 1 + 1/log2(2) = 2.
	if ideal := eval.IdealDCG(2, 3); math.Abs(ideal-2) > eps {
		t.Errorf("IDCG = %v, want 2", ideal)
	}
	if ndcg := eval.NDCG([]string{"a", "x", "b"}, gold, 3); math.Abs(ndcg-want/2) > eps {
		t.Errorf("nDCG = %v, want %v", ndcg, want/2)
	}
	// Perfect ranking has nDCG 1.
	if ndcg := eval.NDCG([]string{"a", "b", "x"}, gold, 3); math.Abs(ndcg-1) > eps {
		t.Errorf("perfect nDCG = %v, want 1", ndcg)
	}
	if eval.NDCG([]string{"a"}, eval.NewGold(), 1) != 0 {
		t.Error("empty gold nDCG should be 0")
	}
}

func TestNDCGPenalizesLowRank(t *testing.T) {
	gold := eval.NewGold("a")
	high := eval.NDCG([]string{"a", "x", "y"}, gold, 3)
	low := eval.NDCG([]string{"x", "y", "a"}, gold, 3)
	if high <= low {
		t.Errorf("nDCG should penalize low ranks: high=%v low=%v", high, low)
	}
}

func TestReciprocalRankAndMRR(t *testing.T) {
	gold := eval.NewGold("b")
	if rr := eval.ReciprocalRank([]string{"a", "b", "c"}, gold); math.Abs(rr-0.5) > eps {
		t.Errorf("RR = %v, want 0.5", rr)
	}
	if rr := eval.ReciprocalRank([]string{"x", "y"}, gold); rr != 0 {
		t.Errorf("absent RR = %v, want 0", rr)
	}
	if m := eval.MRR([]float64{1, 0.5, 0.25}); math.Abs(m-7.0/12.0) > eps {
		t.Errorf("MRR = %v, want 7/12", m)
	}
	if eval.MRR(nil) != 0 {
		t.Error("empty MRR should be 0")
	}
}

func TestMetricsMonotoneInRankQuality(t *testing.T) {
	// Moving a relevant item up never hurts any metric.
	gold := eval.NewGold("a", "b", "c")
	better := []string{"a", "b", "x", "c", "y"}
	worse := []string{"a", "x", "b", "y", "c"}
	k := 5
	if eval.PrecisionAtK(better, gold, k) < eval.PrecisionAtK(worse, gold, k) {
		t.Error("P@K decreased for a better ranking")
	}
	if eval.AveragePrecision(better, gold, k) <= eval.AveragePrecision(worse, gold, k) {
		t.Error("AvgP should strictly improve")
	}
	if eval.NDCG(better, gold, k) <= eval.NDCG(worse, gold, k) {
		t.Error("nDCG should strictly improve")
	}
}
