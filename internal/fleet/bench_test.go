package fleet

// Fleet datapoints for BENCH_fleet.json: what the router costs on the
// read path (one extra in-process HTTP hop vs hitting the shard
// directly) and how long a failover takes from leader death to the
// first write acknowledged by the promoted replica.
//
// Both run over real sockets — unlike the in-process loadgen numbers in
// BENCH_serving.json — because the router's whole job is being a
// network hop; measuring it handler-to-handler would hide exactly the
// cost being asked about.

import (
	"io"
	"net/http"
	"testing"
)

// BenchmarkRouterReadOverhead compares a cached stats read served by
// the shard directly against the same read through the router (which
// adds one proxied hop and, with a caught-up replica registered, the
// read-spreading decision).
func BenchmarkRouterReadOverhead(b *testing.B) {
	const g = "solo"
	h := startFleet(b, []string{"alpha"}, []string{g}, 1, RouterOptions{})
	h.mustPost(g, writeBody(g, 0))
	h.quiesce()

	for _, arm := range []struct {
		name, base string
	}{
		{"direct", h.leaderBase("alpha")},
		{"routed", h.ts.URL},
	} {
		b.Run(arm.name, func(b *testing.B) {
			url := arm.base + "/v1/graphs/" + g + "/stats"
			for i := 0; i < b.N; i++ {
				resp, err := http.Get(url)
				if err != nil {
					b.Fatal(err)
				}
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("status %d", resp.StatusCode)
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		})
	}
}

// BenchmarkFailover measures leader-death to first-acked-write through
// the promoted replica: two probe sweeps (detection), the drain +
// catch-up + promote sequence, and the router's leader swap. Each
// iteration boots a fresh one-shard fleet with two replicas outside the
// timed window.
func BenchmarkFailover(b *testing.B) {
	const g = "solo"
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := startFleet(b, []string{"alpha"}, []string{g}, 2, RouterOptions{FailAfter: 2})
		for j := 0; j < 3; j++ {
			h.mustPost(g, writeBody(g, i*10+j))
		}
		h.quiesce()
		b.StartTimer()

		h.leaders["alpha"].crash()
		h.rt.ProbeAll()
		h.rt.ProbeAll()
		if got := h.rt.Failovers(); got != 1 {
			b.Fatalf("failovers = %d, want 1", got)
		}
		if status, _ := h.post(g, writeBody(g, i*10+9)); status != http.StatusOK {
			b.Fatalf("post-failover write: status %d", status)
		}
	}
	b.ReportMetric(b.Elapsed().Seconds()*1000/float64(b.N), "ms/failover")
}
