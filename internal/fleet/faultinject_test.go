package fleet

// Promotion-safety fault injection: kill the leader at the two nastiest
// instants inside a write — after the WAL fsync but before publication,
// and before the fsync — then fail over and check the promoted replica
// against the dead leader's on-disk WAL, which is the ground truth for
// what was durable.
//
// The invariant under test has two directions:
//
//   - no acked-write loss: every epoch the leader acknowledged AND that
//     replication had delivered before the crash is still served by the
//     promoted replica (replication is asynchronous, so an ack that
//     reached no replica dies with the leader — that window is why the
//     harness quiesces replication before arming the doomed write, so
//     here "acked" and "acked-and-replicated" coincide);
//   - no phantom epochs: the promoted replica never serves an epoch
//     beyond the last record in the dead leader's durable WAL — a
//     replica cannot invent history the leader didn't fsync.
//
// The injection reuses the crash-harness pattern from the durability
// tests: the graph's durability hook is swapped for one that optionally
// appends the real WAL record, severs every client connection and the
// listener (SIGKILL semantics), and returns an error so the epoch is
// never published or acknowledged.

import (
	"fmt"
	"net/http"
	"path/filepath"
	"testing"

	"github.com/uta-db/previewtables/internal/storage"
)

func TestFleetPromotionSafetyMidBatchCrash(t *testing.T) {
	for _, tc := range []struct {
		name string
		// fsynced: the crash lands after the WAL append, so the doomed
		// epoch IS durable on the dead leader — legal for a replica to
		// hold (it is recoverable history) but never required.
		fsynced bool
	}{
		{"crash after fsync before publish", true},
		{"crash before fsync", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const g = "solo"
			h := startFleet(t, []string{"alpha"}, []string{g}, 2, RouterOptions{FailAfter: 2, Logf: t.Logf})
			lp := h.leaders["alpha"]

			// A few healthy batches, then quiesce so every replica has
			// applied everything acked so far: from here on, "acked"
			// means "acked and replicated".
			var acked uint64
			for i := 0; i < 3; i++ {
				acked = h.mustPost(g, writeBody(g, i))
			}
			h.quiesce()

			// Arm the doomed write: the hook mimics a process that dies
			// mid-durability — optionally the fsync happened, the
			// publication never does, and no ack escapes.
			wal := lp.wals[g]
			lp.lives[g].SetDurability(func(epoch uint64, kind byte, payload []byte) error {
				if tc.fsynced {
					if err := wal.Append(epoch, kind, payload); err != nil {
						return err
					}
				}
				lp.crash()
				return fmt.Errorf("fault injection: leader died mid-batch at epoch %d", epoch)
			})
			if status, _ := h.post(g, writeBody(g, 8888)); status == http.StatusOK {
				t.Fatalf("doomed write was acknowledged (status %d); the crash must precede the ack", status)
			}

			// Two failed sweeps trip the failover.
			h.rt.ProbeAll()
			h.rt.ProbeAll()
			if got := h.rt.Failovers(); got != 1 {
				t.Fatalf("failovers = %d, want 1", got)
			}
			newLeader := h.leaderBase("alpha")
			if newLeader == lp.ts.URL {
				t.Fatal("shard still routed to the dead leader")
			}

			// Ground truth: replay the dead leader's WAL from disk.
			recs, err := replayRecords(filepath.Join(lp.walRoot, g))
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) == 0 {
				t.Fatal("dead leader's WAL is empty; the healthy batches never hit disk")
			}
			durable := recs[len(recs)-1]
			if tc.fsynced {
				if durable != acked+1 {
					t.Fatalf("WAL tail epoch = %d, want the doomed %d: the injected fsync is missing", durable, acked+1)
				}
			} else if durable != acked {
				t.Fatalf("WAL tail epoch = %d, want the last acked %d: an unfsynced epoch reached disk", durable, acked)
			}

			promoted := h.statusEpoch(newLeader, g)
			if promoted < acked {
				t.Errorf("promoted replica serves epoch %d, below the acked %d: acknowledged writes lost", promoted, acked)
			}
			if promoted > durable {
				t.Errorf("promoted replica serves epoch %d beyond the WAL tail %d: phantom epoch", promoted, durable)
			}

			// The promoted replica must lead for real: the next write
			// through the router acks at exactly promoted+1.
			if got := h.mustPost(g, writeBody(g, 9999)); got != promoted+1 {
				t.Fatalf("post-failover write acked at epoch %d, want %d", got, promoted+1)
			}
		})
	}
}

// replayRecords returns the epochs of every record in a WAL directory,
// in order — the dead leader's durable history.
func replayRecords(dir string) ([]uint64, error) {
	recs, err := storage.ReplayWAL(dir)
	if err != nil {
		return nil, err
	}
	epochs := make([]uint64, len(recs))
	for i, r := range recs {
		epochs[i] = r.Epoch
	}
	return epochs, nil
}
