package fleet

// The fencing regression test: a deposed leader that comes back from
// the dead must acknowledge ZERO writes. The scenario is the classic
// split-brain opener — leader killed mid-write, a replica promoted,
// then the old leader process revived from its intact on-disk state —
// and the fence is what slams the door: the revived process recovers
// its persisted fencing epoch, the router has since minted a higher
// one, and every write the old leader sees (stamped with the current
// fence, or unstamped) mismatches its own and is answered 409.

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// directPost writes straight at a node — around the router, the way a
// partitioned client or a stale DNS entry would — optionally stamped.
func directPost(t *testing.T, base, graph, body, fence string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/graphs/"+graph+"/edges", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if fence != "" {
		req.Header.Set(fenceHeader, fence)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get(fenceHeader) + "\n" + string(raw)
}

func TestFleetFencing(t *testing.T) {
	h := startFleet(t, []string{"alpha"}, []string{"solo"}, 2, RouterOptions{FailAfter: 2, Logf: t.Logf})

	// First sweep activates fencing: the router exchanges fence 1 with
	// the leader, which persists it next to its WAL manifests.
	h.rt.ProbeAll()
	h.rt.mu.RLock()
	sh := h.rt.shards["alpha"]
	h.rt.mu.RUnlock()
	if f := sh.fence.Load(); f != 1 {
		t.Fatalf("after first sweep, shard fence = %d, want 1", f)
	}

	// Seed some acknowledged history and let the replicas catch up.
	for i := 0; i < 3; i++ {
		h.mustPost("solo", writeBody("solo", i))
	}
	h.quiesce()
	h.assertDifferential("fenced steady state")

	// A writer hammers the router across the kill, tolerating the
	// dead-leader window: this is the "mid-write" in kill-mid-write.
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 100; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			h.post("solo", writeBody("solo", i))
			time.Sleep(2 * time.Millisecond)
		}
	}()

	oldLeader := h.leaderBase("alpha")
	h.leaders["alpha"].crash()
	h.rt.ProbeAll()
	h.rt.ProbeAll()
	close(stop)
	writer.Wait()
	if got := h.rt.Failovers(); got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	newLeader := h.leaderBase("alpha")
	if newLeader == oldLeader {
		t.Fatal("failover did not replace the leader")
	}
	if f := sh.fence.Load(); f != 2 {
		t.Fatalf("after failover, shard fence = %d, want 2", f)
	}

	// Revive the deposed leader from its intact durable state: same WAL
	// root, so it recovers its graphs — and its fence (1, now stale).
	revived := startLeaderProc(t, "alpha", []string{"solo"}, h.root)
	frozen := h.statusEpoch(revived.ts.URL, "solo")

	// Replay an acked-style write at the revived node, stamped exactly
	// as the router stamps writes today (fence 2). The node's persisted
	// fence is 1: the stamp names a configuration this node was deposed
	// from, and installing it on the write path would BE the split brain
	// — so it refuses.
	curFence := strconv.FormatUint(sh.fence.Load(), 10)
	if status, body := directPost(t, revived.ts.URL, "solo", writeBody("solo", 7777), curFence); status != http.StatusConflict {
		t.Fatalf("revived leader answered %d to a current-fence write, want 409; body %q", status, body)
	}
	// And unstamped — a client that kept the old leader's address.
	status, body := directPost(t, revived.ts.URL, "solo", writeBody("solo", 8888), "")
	if status != http.StatusConflict {
		t.Fatalf("revived leader answered %d to an unstamped write, want 409; body %q", status, body)
	}
	// The 409 names the node's own fence so operators can see the gap.
	if !strings.HasPrefix(body, "1\n") {
		t.Errorf("409 response fence header = %q, want the node's persisted fence 1", strings.SplitN(body, "\n", 2)[0])
	}
	// Zero acknowledgements means zero epochs: the revived node's history
	// is exactly what it held when it died.
	if got := h.statusEpoch(revived.ts.URL, "solo"); got != frozen {
		t.Fatalf("revived leader advanced from epoch %d to %d: it acknowledged a write while deposed", frozen, got)
	}

	// Meanwhile the fleet is fine: writes through the router land on the
	// promoted leader and reads stay byte-identical.
	h.mustPost("solo", writeBody("solo", 9999))
	h.quiesce()
	h.assertDifferential("after reviving the deposed leader")
}
