package fleet

// Elastic membership end to end: a third shard joins a live two-shard
// fleet over POST /v1/fleet/shards, exactly the ring-reassigned graphs
// migrate to it (and only those — the consistent-hashing contract),
// reads stay byte-identical through the router at every phase of the
// migration (asserted from inside the pipeline via the migrate hook),
// and DELETE /v1/fleet/shards/{id} drains it back out, restoring the
// original owners exactly.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"sort"
	"testing"
)

// fetchAll is readSurfaces without testing.TB fatals: the migrate hook
// runs on the admin request's handler goroutine, where t.Fatal must not
// be called.
func fetchAll(base string, urls []string) (map[string]string, error) {
	out := make(map[string]string, len(urls))
	for _, u := range urls {
		resp, err := http.Get(base + u)
		if err != nil {
			return nil, err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: status %d body %s", u, resp.StatusCode, raw)
		}
		out[u] = resp.Header.Get("ETag") + "\n" + string(raw)
	}
	return out, nil
}

// assertMidMigration compares one graph's read surfaces through the
// router against the node the ring currently routes it to, mid-pipeline.
func (h *fleetHarness) assertMidMigration(phase, graph string) {
	urls := graphReadURLs(graph)
	owner := h.rt.Owner(graph)
	want, err := fetchAll(h.leaderBase(owner), urls)
	if err != nil {
		h.t.Errorf("phase %s, graph %s: reading owner shard %s: %v", phase, graph, owner, err)
		return
	}
	got, err := fetchAll(h.ts.URL, urls)
	if err != nil {
		h.t.Errorf("phase %s, graph %s: reading through router: %v", phase, graph, err)
		return
	}
	for _, u := range urls {
		if got[u] != want[u] {
			h.t.Errorf("phase %s: GET %s diverged between router and owner %s:\nowner:  %s\nrouter: %s",
				phase, u, owner, want[u], got[u])
		}
	}
}

// refreshPlacement recomputes the harness's graph→shard map from the
// router's live ring, after a membership change.
func (h *fleetHarness) refreshPlacement() {
	byShard := map[string][]string{}
	for _, g := range h.graphs {
		owner := h.rt.Owner(g)
		byShard[owner] = append(byShard[owner], g)
	}
	h.byShard = byShard
}

func TestFleetMembership(t *testing.T) {
	shardIDs := []string{"alpha", "beta"}
	graphs := []string{"atlas", "cedar", "delta", "briar", "grove", "heath"}
	h := startFleet(t, shardIDs, graphs, 1, RouterOptions{FailAfter: 2, Logf: t.Logf})
	h.rt.ProbeAll()

	origOwner := map[string]string{}
	for _, g := range graphs {
		origOwner[g] = h.rt.Owner(g)
	}

	// Acknowledged history on every graph before anything moves.
	for i := 0; i < 3; i++ {
		for _, g := range graphs {
			h.mustPost(g, writeBody(g, i))
		}
	}
	h.quiesce()
	h.assertDifferential("before join")
	h.assertMergedList("before join")

	// The expected move set is computable up front: the ring is
	// deterministic, so the joined ring's reassignments are exactly the
	// graphs whose owner changes — and each must move TO the new shard.
	newRing := NewRing([]string{"alpha", "beta", "gamma"}, 0)
	var wantMoved []string
	for _, g := range graphs {
		if newOwner := newRing.Owner(g); newOwner != origOwner[g] {
			if newOwner != "gamma" {
				t.Fatalf("ring reassigned %q to %s on a pure join; consistent hashing moves keys only to the new shard", g, newOwner)
			}
			wantMoved = append(wantMoved, g)
		}
	}
	sort.Strings(wantMoved)
	if len(wantMoved) == 0 || len(wantMoved) == len(graphs) {
		t.Fatalf("degenerate move plan %v; pick graph names that split", wantMoved)
	}

	// The migrate hook asserts byte-identity from INSIDE the pipeline:
	// after adoption (old owner still serving) and right after cutover
	// (ring swapped, new owner serving as a not-yet-promoted adopter).
	h.rt.migrateHook = func(phase, graph string) {
		if phase == "adopted" || phase == "cutover" {
			h.assertMidMigration(phase, graph)
		}
	}

	// A fresh, EMPTY leader process joins over the admin route.
	gamma := startLeaderProc(t, "gamma", nil, h.root)
	spec, _ := json.Marshal(map[string]any{"id": "gamma", "leader": gamma.ts.URL})
	resp, err := http.Post(h.ts.URL+"/v1/fleet/shards", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/fleet/shards: status %d body %s", resp.StatusCode, raw)
	}
	var addDoc struct {
		Added string   `json:"added"`
		Moved []string `json:"moved"`
	}
	if err := json.Unmarshal(raw, &addDoc); err != nil {
		t.Fatal(err)
	}
	sort.Strings(addDoc.Moved)
	if !reflect.DeepEqual(addDoc.Moved, wantMoved) {
		t.Fatalf("join moved %v, want exactly the reassigned graphs %v", addDoc.Moved, wantMoved)
	}
	h.leaders["gamma"] = gamma
	h.refreshPlacement()

	// The moved graphs now live on gamma and ONLY on gamma: the old
	// owners dropped their copies.
	for _, g := range wantMoved {
		if owner := h.rt.Owner(g); owner != "gamma" {
			t.Fatalf("after join, %q owned by %s, want gamma", g, owner)
		}
		if _, ok := gamma.reg.Get(g); !ok {
			t.Fatalf("after join, gamma does not host %q", g)
		}
		if _, ok := h.leaders[origOwner[g]].reg.Get(g); ok {
			t.Fatalf("after join, old owner %s still hosts %q", origOwner[g], g)
		}
	}

	// Writes land everywhere — including the migrated graphs, now
	// fence-stamped for gamma — and reads stay byte-identical.
	for _, g := range graphs {
		h.mustPost(g, writeBody(g, 500))
	}
	h.quiesce()
	h.assertDifferential("after join")
	h.assertMergedList("after join")

	// Drain gamma back out. Consistent hashing restores the ORIGINAL
	// owners: removal is the exact inverse of the join.
	req, _ := http.NewRequest(http.MethodDelete, h.ts.URL+"/v1/fleet/shards/gamma", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /v1/fleet/shards/gamma: status %d body %s", resp.StatusCode, raw)
	}
	var delDoc struct {
		Removed string   `json:"removed"`
		Moved   []string `json:"moved"`
	}
	if err := json.Unmarshal(raw, &delDoc); err != nil {
		t.Fatal(err)
	}
	sort.Strings(delDoc.Moved)
	if !reflect.DeepEqual(delDoc.Moved, wantMoved) {
		t.Fatalf("drain moved %v, want %v", delDoc.Moved, wantMoved)
	}
	delete(h.leaders, "gamma")
	h.refreshPlacement()
	for _, g := range graphs {
		if owner := h.rt.Owner(g); owner != origOwner[g] {
			t.Fatalf("after drain, %q owned by %s, want the original %s", g, owner, origOwner[g])
		}
	}

	for _, g := range graphs {
		h.mustPost(g, writeBody(g, 900))
	}
	h.quiesce()
	h.assertDifferential("after drain")
	h.assertMergedList("after drain")
}
