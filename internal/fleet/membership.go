package fleet

// Elastic membership: shards join and leave a running fleet over the
// /v1/fleet/shards admin routes, and the router migrates exactly the
// graphs whose ring ownership changes — ~1/N of them, the consistent-
// hashing guarantee — while reads keep flowing, byte-identical,
// throughout.
//
// The migration pipeline, per moved graph:
//
//  1. ADOPT — the destination leader starts tailing the graph directly
//     from the source leader (POST /v1/replication/{g}/adopt):
//     checkpoint bootstrap over the ordinary replication routes, then
//     contiguous WAL-tail applies into a local durable WAL. The source
//     keeps serving reads and writes; the adopter refuses direct writes
//     (503) until promoted.
//  2. CUTOVER — once every moved graph has caught up, the router swaps
//     the ring (one atomic pointer store: every new request now routes
//     to the new owner) and bumps each source shard's fence. From that
//     instant the source can acknowledge no further writes — any write
//     still in flight carries the old stamp and is answered 409, so
//     nothing can land on the source after the adopter stops tailing.
//  3. PROMOTE + DROP — after the adopter's applied epoch reaches the
//     source's durable epoch (everything ever acknowledged), the
//     destination graph is promoted writable and the source drops its
//     copy (WAL segments and checkpoints deleted).
//
// Byte-identity across the move is the same argument as replication's:
// the adopter applies the source's WAL records byte-for-byte in epoch
// order, and rendering is deterministic in the applied history — so at
// equal epochs the two copies render identical bodies AND ETags, and
// the cutover happens only at equal epochs.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// migrateTimeout bounds each moved graph's catch-up waits. Generous:
// a bootstrap ships a whole checkpoint.
const migrateTimeout = 30 * time.Second

// move is one graph changing owners.
type move struct {
	graph    string
	src, dst *shard
}

// AddShard adds a new shard to the running fleet: fence its leader,
// rebuild the ring with the new member, and migrate the graphs whose
// ownership moved to it. Returns the names of the moved graphs.
// Idempotent on retry: re-adding an identical spec re-runs the
// migration, which skips graphs already moved.
func (rt *Router) AddShard(spec ShardSpec) ([]string, error) {
	if spec.ID == "" || spec.Leader == "" {
		return nil, &memberErr{status: http.StatusBadRequest,
			err: fmt.Errorf("fleet: shard needs an id and a leader URL")}
	}
	rt.adminMu.Lock()
	defer rt.adminMu.Unlock()

	leaderURL := strings.TrimRight(spec.Leader, "/")
	rt.mu.Lock()
	if existing, dup := rt.shards[spec.ID]; dup {
		sameLeader := existing.leader.url == leaderURL
		rt.mu.Unlock()
		if !sameLeader {
			return nil, &memberErr{status: http.StatusConflict,
				err: fmt.Errorf("fleet: shard %q already exists with a different leader", spec.ID)}
		}
		// Same id, same leader: a retry of an add that may have been
		// interrupted mid-migration. Fall through to re-plan; already-
		// completed moves plan to zero.
	} else {
		sh := &shard{id: spec.ID, leader: &backend{url: leaderURL}}
		for _, f := range spec.Followers {
			sh.followers = append(sh.followers, &backend{url: strings.TrimRight(f, "/")})
		}
		rt.shards[spec.ID] = sh
		rt.mu.Unlock()
	}

	// The new leader must be fenceable before anything routes to it — a
	// migration onto a node that cannot persist a fence would leave the
	// moved graphs unprotected by exactly the mechanism the move relies on.
	rt.mu.RLock()
	sh := rt.shards[spec.ID]
	rt.mu.RUnlock()
	if sh.fence.Load() == 0 {
		f, err := rt.fenceExchange(leaderURL, 1)
		if err != nil {
			rt.mu.Lock()
			delete(rt.shards, spec.ID)
			rt.mu.Unlock()
			return nil, &memberErr{status: http.StatusBadGateway,
				err: fmt.Errorf("fleet: shard %q leader %s cannot fence: %w (run previewd with -mutable -wal-dir)", spec.ID, leaderURL, err)}
		}
		sh.fence.CompareAndSwap(0, f)
	}

	// Refresh placement so the plan works from current graph sets, then
	// plan: every graph whose owner changes under the new ring moves.
	rt.ProbeAll()
	newRing := rt.ringWith(spec.ID, "")
	moves := rt.planMoves(newRing)
	if err := rt.migrate(moves, newRing); err != nil {
		return movedNames(moves), &memberErr{status: http.StatusBadGateway, err: err}
	}
	rt.logf("fleet: shard %s joined; %d graphs migrated", spec.ID, len(moves))
	return movedNames(moves), nil
}

// RemoveShard drains a shard out of the running fleet: rebuild the ring
// without it, migrate every graph it owns to the new owners, then drop
// it from the topology. Returns the names of the moved graphs.
func (rt *Router) RemoveShard(id string) ([]string, error) {
	rt.adminMu.Lock()
	defer rt.adminMu.Unlock()

	rt.mu.RLock()
	_, ok := rt.shards[id]
	n := len(rt.shards)
	rt.mu.RUnlock()
	if !ok {
		return nil, &memberErr{status: http.StatusNotFound, err: fmt.Errorf("fleet: no shard %q", id)}
	}
	if n == 1 {
		return nil, &memberErr{status: http.StatusConflict,
			err: fmt.Errorf("fleet: cannot remove %q: it is the last shard", id)}
	}

	rt.ProbeAll()
	newRing := rt.ringWith("", id)
	moves := rt.planMoves(newRing)
	if err := rt.migrate(moves, newRing); err != nil {
		return movedNames(moves), &memberErr{status: http.StatusBadGateway, err: err}
	}

	rt.mu.Lock()
	delete(rt.shards, id)
	rt.mu.Unlock()
	rt.logf("fleet: shard %s left; %d graphs migrated", id, len(moves))
	return movedNames(moves), nil
}

// ringWith builds the successor ring: current membership plus `add`
// (if non-empty) minus `remove` (if non-empty). Same vnodes as the
// original so unchanged shards hash to identical points.
func (rt *Router) ringWith(add, remove string) *Ring {
	ids := rt.ring.Load().Shards()
	if add != "" {
		ids = append(ids, add)
	}
	if remove != "" {
		kept := ids[:0]
		for _, id := range ids {
			if id != remove {
				kept = append(kept, id)
			}
		}
		ids = kept
	}
	return NewRing(ids, rt.vnodes)
}

// planMoves lists every hosted graph whose owner changes under newRing,
// sorted by name for deterministic logs and responses.
func (rt *Router) planMoves(newRing *Ring) []move {
	cur := rt.ring.Load()
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	var moves []move
	for _, sh := range rt.shards {
		for _, g := range sh.graphs {
			if cur.Owner(g) != sh.id {
				continue // misprovisioned; probeShard already logs it
			}
			newOwner := newRing.Owner(g)
			if newOwner == sh.id {
				continue
			}
			dst := rt.shards[newOwner]
			if dst == nil {
				continue // unreachable: newRing only names registered shards
			}
			moves = append(moves, move{graph: g, src: sh, dst: dst})
		}
	}
	sort.Slice(moves, func(i, j int) bool { return moves[i].graph < moves[j].graph })
	return moves
}

// migrate runs the pipeline described at the top of this file for a set
// of moves, then installs newRing. Serialized by the caller (adminMu).
// On error the ring may already be swapped with some moves incomplete;
// the admin retries the same add/remove, which re-plans and finishes
// the remainder (adopt answers 409 for an in-flight adoption, treated
// as progress).
func (rt *Router) migrate(moves []move, newRing *Ring) error {
	// Phase 1: adopt + catch up, every graph, before any cutover. The
	// ring swap is all-or-nothing, so every moved graph must be ready.
	for _, mv := range moves {
		rt.mu.RLock()
		srcURL, dstURL := mv.src.leader.url, mv.dst.leader.url
		rt.mu.RUnlock()
		if err := rt.adoptGraph(mv.graph, srcURL, dstURL); err != nil {
			return fmt.Errorf("adopting %q on shard %s: %w", mv.graph, mv.dst.id, err)
		}
		if err := rt.waitCaughtUp(mv.graph, srcURL, dstURL); err != nil {
			return fmt.Errorf("catching up %q on shard %s: %w", mv.graph, mv.dst.id, err)
		}
		rt.hook("adopted", mv.graph)
	}

	// Phase 2: cutover. Swap the ring first — from here every request
	// routes to the new owners — then bump each source shard's fence so
	// in-flight writes stamped with the old routing answer 409 at the
	// source instead of landing after the adopter stopped listening.
	rt.ring.Store(newRing)
	srcs := map[*shard]bool{}
	for _, mv := range moves {
		srcs[mv.src] = true
	}
	for sh := range srcs {
		if cur := sh.fence.Load(); cur != 0 {
			rt.mu.RLock()
			leaderURL := sh.leader.url
			rt.mu.RUnlock()
			f, err := rt.fenceExchange(leaderURL, cur+1)
			if err != nil {
				return fmt.Errorf("fencing shard %s at cutover: %w", sh.id, err)
			}
			sh.fence.Store(f)
		}
	}

	// Phase 3: final drain + promote + drop, per graph. The fence bump
	// guarantees the source's durable epoch is now frozen; once the
	// adopter has applied up to it, it holds the complete acknowledged
	// history and can lead.
	for _, mv := range moves {
		rt.mu.RLock()
		srcURL, dstURL := mv.src.leader.url, mv.dst.leader.url
		rt.mu.RUnlock()
		if err := rt.waitCaughtUp(mv.graph, srcURL, dstURL); err != nil {
			return fmt.Errorf("draining %q from shard %s: %w", mv.graph, mv.src.id, err)
		}
		rt.hook("cutover", mv.graph)
		if err := rt.stampedPost(dstURL+"/v1/replication/"+mv.graph+"/promote", mv.dst.fence.Load()); err != nil {
			return fmt.Errorf("promoting %q on shard %s: %w", mv.graph, mv.dst.id, err)
		}
		if err := rt.stampedDelete(srcURL+"/v1/graphs/"+mv.graph, mv.src.fence.Load()); err != nil {
			return fmt.Errorf("dropping %q from shard %s: %w", mv.graph, mv.src.id, err)
		}
		rt.moveBookkeeping(mv)
		rt.hook("done", mv.graph)
	}
	return nil
}

// adoptGraph starts the destination leader tailing graph from the
// source leader. An "already adopting/registered" 409 is a retried
// migration finding its own earlier progress — continue, don't fail.
func (rt *Router) adoptGraph(graph, srcURL, dstURL string) error {
	body, err := json.Marshal(struct {
		Source string `json:"source"`
	}{Source: srcURL})
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, dstURL+"/v1/replication/"+graph+"/adopt", strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	rt.stampFence(req, dstURL)
	resp, err := rt.probe.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	switch resp.StatusCode {
	case http.StatusOK, http.StatusConflict:
		return nil
	default:
		return fmt.Errorf("adopt answered %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
}

// waitCaughtUp blocks until dst's applied epoch for graph reaches src's
// durable epoch — the complete acknowledged history. Already-promoted
// destinations (status reports no applied epoch but a durable one at
// least the source's) pass too: that is a retried migration finding a
// finished move.
func (rt *Router) waitCaughtUp(graph, srcURL, dstURL string) error {
	deadline := time.Now().Add(migrateTimeout)
	for {
		srcSt, srcFound, srcErr := rt.replStatus(srcURL, graph)
		dstSt, dstFound, dstErr := rt.replStatus(dstURL, graph)
		if srcErr == nil && dstErr == nil && dstFound {
			if !srcFound {
				// The source no longer hosts the graph: a retried migration
				// already dropped it there. Whatever dst holds IS the graph.
				return nil
			}
			if dstSt.applied >= srcSt.durable || dstSt.durable >= srcSt.durable {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out (src durable %d, dst applied %d, src err %v, dst err %v)",
				srcSt.durable, dstSt.applied, srcErr, dstErr)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// stampFence stamps a request with the fence of the shard whose leader
// is at url, when known.
func (rt *Router) stampFence(req *http.Request, url string) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	for _, sh := range rt.shards {
		if sh.leader.url == url {
			if f := sh.fence.Load(); f != 0 {
				req.Header.Set(fenceHeader, fmt.Sprintf("%d", f))
			}
			return
		}
	}
}

func (rt *Router) stampedPost(url string, fence uint64) error {
	req, err := http.NewRequest(http.MethodPost, url, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if fence != 0 {
		req.Header.Set(fenceHeader, fmt.Sprintf("%d", fence))
	}
	return rt.doAdmin(req)
}

func (rt *Router) stampedDelete(url string, fence uint64) error {
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		return err
	}
	if fence != 0 {
		req.Header.Set(fenceHeader, fmt.Sprintf("%d", fence))
	}
	return rt.doAdmin(req)
}

func (rt *Router) doAdmin(req *http.Request) error {
	resp, err := rt.probe.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s %s answered %d: %s", req.Method, req.URL, resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	return nil
}

// moveBookkeeping updates the shard graph sets after a completed move
// so /v1/fleet and subsequent plans reflect it without waiting for the
// next probe sweep.
func (rt *Router) moveBookkeeping(mv move) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	kept := mv.src.graphs[:0]
	for _, g := range mv.src.graphs {
		if g != mv.graph {
			kept = append(kept, g)
		}
	}
	mv.src.graphs = kept
	mv.dst.graphs = append(mv.dst.graphs, mv.graph)
	sort.Strings(mv.dst.graphs)
}

func (rt *Router) hook(phase, graph string) {
	if rt.migrateHook != nil {
		rt.migrateHook(phase, graph)
	}
}

func movedNames(moves []move) []string {
	names := make([]string, 0, len(moves))
	for _, mv := range moves {
		names = append(names, mv.graph)
	}
	return names
}

// memberErr carries the HTTP status a membership failure maps to.
type memberErr struct {
	status int
	err    error
}

func (e *memberErr) Error() string { return e.err.Error() }
func (e *memberErr) Unwrap() error { return e.err }

// handleShardAdd answers POST /v1/fleet/shards: body {"id","leader",
// "followers"}; response lists the graphs the join migrated.
func (rt *Router) handleShardAdd(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		rt.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	var spec ShardSpec
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&spec); err != nil {
		rt.writeError(w, http.StatusBadRequest, fmt.Errorf("bad shard spec: %w", err))
		return
	}
	moved, err := rt.AddShard(spec)
	if err != nil {
		rt.writeMemberErr(w, err)
		return
	}
	rt.writeMoved(w, map[string]any{"added": spec.ID, "moved": moved})
}

// handleShardRemove answers DELETE /v1/fleet/shards/{id}.
func (rt *Router) handleShardRemove(w http.ResponseWriter, r *http.Request, id string) {
	if id == "" || strings.Contains(id, "/") {
		rt.writeError(w, http.StatusNotFound, fmt.Errorf("no such route %q", r.URL.Path))
		return
	}
	if r.Method != http.MethodDelete {
		w.Header().Set("Allow", "DELETE")
		rt.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	moved, err := rt.RemoveShard(id)
	if err != nil {
		rt.writeMemberErr(w, err)
		return
	}
	rt.writeMoved(w, map[string]any{"removed": id, "moved": moved})
}

func (rt *Router) writeMemberErr(w http.ResponseWriter, err error) {
	status := http.StatusBadGateway
	if me, ok := err.(*memberErr); ok {
		status = me.status
	}
	rt.writeError(w, status, err)
}

func (rt *Router) writeMoved(w http.ResponseWriter, doc map[string]any) {
	body, err := marshalJSONBody(doc)
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Content-Length", fmt.Sprintf("%d", len(body)))
	_, _ = w.Write(body)
}
