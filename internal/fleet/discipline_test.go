package fleet

// Route discipline through the front door. The service package proves
// the discipline on a single node (TestReplicationRouteDiscipline);
// this table proves the router preserves it end to end: resource
// existence first (404 for any method on a route that isn't there),
// then method (405 with an accurate Allow), then role (503 with an
// X-Previewtables-Leader pointer on a write aimed at a replica), and
// HEAD behaving as GET-without-body — same status, same ETag, zero
// bytes — on every read route the router serves or forwards.

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestRouterRouteDiscipline(t *testing.T) {
	const g = "solo"
	h := startFleet(t, []string{"alpha"}, []string{g}, 1, RouterOptions{Logf: t.Logf})
	h.mustPost(g, writeBody(g, 0))
	h.quiesce()
	follower := h.fprocs["alpha"][0].ts.URL

	str := func(s string) *string { return &s }
	type want struct {
		status int
		allow  *string
		leader bool // response must carry X-Previewtables-Leader
	}
	cases := []struct {
		name   string
		base   string
		method string
		path   string
		want   want
	}{
		// Existence beats method: unknown routes 404 whatever the verb,
		// on the router's own surface and through the forwarding path.
		{"unknown route", h.ts.URL, "GET", "/v1/nope", want{status: 404}},
		{"unknown route write", h.ts.URL, "POST", "/v1/nope", want{status: 404}},
		{"unknown graph", h.ts.URL, "GET", "/v1/graphs/missing/stats", want{status: 404}},
		{"unknown graph action", h.ts.URL, "POST", "/v1/graphs/" + g + "/nope", want{status: 404}},
		// The node-level promote action lives on replica processes; the
		// router is nobody's replica, so the resource is absent for any
		// method — 404 before 405, exactly as on a leader.
		{"promote via router", h.ts.URL, "POST", "/v1/replication/promote", want{status: 404}},
		{"promote via router wrong method", h.ts.URL, "GET", "/v1/replication/promote", want{status: 404}},

		// Method checks on the router's own routes and on forwarded ones.
		{"merged list wrong method", h.ts.URL, "DELETE", "/v1/graphs", want{status: 405, allow: str("GET, HEAD")}},
		{"fleet doc wrong method", h.ts.URL, "POST", "/v1/fleet", want{status: 405, allow: str("GET, HEAD")}},
		{"healthz wrong method", h.ts.URL, "POST", "/healthz", want{status: 405, allow: str("GET, HEAD")}},
		{"write route read method", h.ts.URL, "GET", "/v1/graphs/" + g + "/edges", want{status: 405, allow: str("POST")}},
		{"replication status wrong method", h.ts.URL, "POST", "/v1/replication/" + g + "/status", want{status: 405, allow: str("GET, HEAD")}},

		// The membership admin routes obey the same discipline: existence
		// first (an unknown shard id 404s on DELETE, a deeper path is no
		// route at all), then method with an accurate Allow, then the
		// request's own validity (malformed spec 400, duplicate id 409,
		// last shard 409).
		{"shard add wrong method", h.ts.URL, "GET", "/v1/fleet/shards", want{status: 405, allow: str("POST")}},
		{"shard remove wrong method", h.ts.URL, "GET", "/v1/fleet/shards/alpha", want{status: 405, allow: str("DELETE")}},
		{"shard remove unknown", h.ts.URL, "DELETE", "/v1/fleet/shards/nope", want{status: 404}},
		{"shard route too deep", h.ts.URL, "DELETE", "/v1/fleet/shards/alpha/extra", want{status: 404}},
		{"shard add bad body", h.ts.URL, "POST", "/v1/fleet/shards", want{status: 400}},
		{"shard remove last", h.ts.URL, "DELETE", "/v1/fleet/shards/alpha", want{status: 409}},

		// Role: a write aimed straight at a replica is refused with a
		// pointer to the node it tails — the router, which is exactly
		// where the client should have sent it.
		{"follower write", follower, "POST", "/v1/graphs/" + g + "/edges", want{status: 503, leader: true}},

		// Reads forward cleanly, replication routes included, so
		// replicas can tail through the front door.
		{"stats via router", h.ts.URL, "GET", "/v1/graphs/" + g + "/stats", want{status: 200}},
		{"replication status via router", h.ts.URL, "GET", "/v1/replication/" + g + "/status", want{status: 200}},
		{"fleet doc", h.ts.URL, "GET", "/v1/fleet", want{status: 200}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, tc.base+tc.path, strings.NewReader("{}"))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.want.status {
				t.Fatalf("%s %s: status %d, want %d (body %s)", tc.method, tc.path, resp.StatusCode, tc.want.status, body)
			}
			if tc.want.allow != nil {
				if got := resp.Header.Get("Allow"); got != *tc.want.allow {
					t.Errorf("%s %s: Allow %q, want %q", tc.method, tc.path, got, *tc.want.allow)
				}
			}
			if tc.want.leader {
				if got := resp.Header.Get("X-Previewtables-Leader"); got != h.ts.URL {
					t.Errorf("%s %s: X-Previewtables-Leader %q, want the router %q", tc.method, tc.path, got, h.ts.URL)
				}
			}
		})
	}

	// Re-adding an existing shard id under a DIFFERENT leader is a
	// conflict, not an upsert: shard ids are the ring's hash keys, and
	// silently re-pointing one would re-home its graphs to a node that
	// does not hold them.
	t.Run("shard add duplicate id", func(t *testing.T) {
		resp, err := http.Post(h.ts.URL+"/v1/fleet/shards", "application/json",
			strings.NewReader(`{"id":"alpha","leader":"http://127.0.0.1:1"}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("duplicate shard add: status %d, want 409", resp.StatusCode)
		}
	})

	// HEAD on every read route: same status and validator as GET, not a
	// byte of body — whether the router answers itself (list, fleet,
	// healthz) or forwards to a shard.
	heads := append(graphReadURLs(g),
		"/v1/graphs",
		"/v1/fleet",
		"/healthz",
		"/v1/replication/"+g+"/status",
	)
	for _, u := range heads {
		t.Run("HEAD "+u, func(t *testing.T) {
			getResp, err := http.Get(h.ts.URL + u)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, getResp.Body)
			getResp.Body.Close()
			headResp, err := http.Head(h.ts.URL + u)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(headResp.Body)
			headResp.Body.Close()
			if headResp.StatusCode != getResp.StatusCode {
				t.Fatalf("HEAD status %d, GET status %d", headResp.StatusCode, getResp.StatusCode)
			}
			if len(body) != 0 {
				t.Errorf("HEAD returned %d body bytes", len(body))
			}
			if ge, he := getResp.Header.Get("ETag"), headResp.Header.Get("ETag"); ge != he {
				t.Errorf("ETag differs: GET %q, HEAD %q", ge, he)
			}
		})
	}
}
