package fleet

// Ring tests: the two properties the router's correctness leans on.
//
//   - determinism: ownership is a pure function of the shard set, so a
//     restarted router (a fresh Ring over the same IDs) maps every graph
//     to the same shard — no write can land on a non-owner after a
//     restart;
//   - minimal disruption: adding a shard steals keys only for the new
//     shard, removing one moves only its own keys, and the stolen/moved
//     fraction concentrates around 1/N.

import (
	"fmt"
	"math"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("graph-%04d", i)
	}
	return keys
}

func shardIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("shard-%c", 'a'+i)
	}
	return ids
}

// TestRingDeterministicAcrossRestarts: two independently constructed
// rings over the same shard set agree on every key — the "router
// restart" property — and shard order / duplicates in the config don't
// matter.
func TestRingDeterministicAcrossRestarts(t *testing.T) {
	keys := ringKeys(500)
	a := NewRing([]string{"s1", "s2", "s3"}, 0)
	b := NewRing([]string{"s3", "s1", "s2", "s1"}, 0) // shuffled + duplicate
	for _, k := range keys {
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("ownership of %q differs across ring constructions: %q vs %q", k, ao, bo)
		}
	}
	if got := a.Owner("anything"); got == "" {
		t.Fatal("non-empty ring returned no owner")
	}
	if got := NewRing(nil, 0).Owner("anything"); got != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", got)
	}
}

// TestRingStability is the property test: for fleets of 2..6 shards,
// adding one shard only ever moves keys TO the new shard (nothing
// shuffles between survivors), removing one only moves the removed
// shard's keys, and the displaced fraction is in a loose band around
// 1/N — the consistent-hashing contract that makes shard membership
// changes cheap.
func TestRingStability(t *testing.T) {
	keys := ringKeys(2000)
	for n := 2; n <= 6; n++ {
		ids := shardIDs(n)
		base := NewRing(ids, 0)
		before := make(map[string]string, len(keys))
		for _, k := range keys {
			before[k] = base.Owner(k)
		}

		// Add one shard: every remap must target the newcomer.
		added := NewRing(append(append([]string{}, ids...), "shard-new"), 0)
		moved := 0
		for _, k := range keys {
			if got := added.Owner(k); got != before[k] {
				if got != "shard-new" {
					t.Fatalf("n=%d add: key %q moved %q → %q, not to the new shard", n, k, before[k], got)
				}
				moved++
			}
		}
		assertFraction(t, fmt.Sprintf("n=%d add", n), moved, len(keys), 1.0/float64(n+1))

		// Remove one shard: only its keys move, each to a survivor.
		victim := ids[0]
		removed := NewRing(ids[1:], 0)
		moved = 0
		for _, k := range keys {
			got := removed.Owner(k)
			if before[k] == victim {
				if got == victim {
					t.Fatalf("n=%d remove: key %q still owned by removed shard", n, k)
				}
				moved++
			} else if got != before[k] {
				t.Fatalf("n=%d remove: key %q moved %q → %q though its owner survived", n, k, before[k], got)
			}
		}
		assertFraction(t, fmt.Sprintf("n=%d remove", n), moved, len(keys), 1.0/float64(n))
	}
}

// assertFraction checks moved/total is within a generous band around
// the ideal fraction. Vnode placement is random-like, so the observed
// share wobbles; a [¼×, 3×] band catches gross breakage (everything
// moved, nothing moved, one shard owning half the ring) without flaking.
func assertFraction(t *testing.T, what string, moved, total int, ideal float64) {
	t.Helper()
	frac := float64(moved) / float64(total)
	if frac < ideal/4 || frac > math.Min(1, ideal*3) {
		t.Errorf("%s: moved %d/%d = %.3f of keys, want ≈%.3f (band [%.3f, %.3f])",
			what, moved, total, frac, ideal, ideal/4, ideal*3)
	}
}

// TestRingBalance: with DefaultVnodes the largest shard's share stays
// within 2× of fair — the distribution guarantee read-spreading and
// capacity planning assume.
func TestRingBalance(t *testing.T) {
	keys := ringKeys(4000)
	for _, n := range []int{2, 3, 5} {
		r := NewRing(shardIDs(n), 0)
		counts := map[string]int{}
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d shards own keys: %v", n, len(counts), counts)
		}
		fair := float64(len(keys)) / float64(n)
		for s, c := range counts {
			if float64(c) > 2*fair {
				t.Errorf("n=%d: shard %s owns %d keys, more than 2× the fair share %.0f", n, s, c, fair)
			}
		}
	}
}
