package fleet

// Health probing and leader failover.
//
// One probe per node per sweep: GET /v1/graphs returns each graph's
// name and published epoch, so the leader probe discovers the shard's
// graph set and its current epochs, and each follower probe yields
// per-graph replication lag by difference. "Caught up" is decidable
// from that single number because followers publish contiguous epochs
// (internal/service/follower.go): applied == leader epoch means the
// follower holds exactly the leader's history, not merely the same
// count of it.
//
// When the leader probe fails FailAfter consecutive sweeps, the router
// promotes the follower with the highest total published epoch (POST
// /v1/replication/promote) and re-points the shard at it. Promotion is
// lossless — the leader fsyncs every batch to its WAL before the epoch
// is acknowledged, and followers apply the same records in the same
// order — so the most-advanced follower holds a durable prefix of
// exactly what clients were acknowledged. Choosing the MAX-applied
// follower also keeps the survivors tailing cleanly: a survivor is at
// most at the promoted node's epoch, so its next poll through the
// router resumes without a divergence conflict.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"slices"
	"sort"
	"strconv"
	"time"
)

// nodeEpochs probes one node's /v1/graphs and returns name → published
// epoch. Graphs without an epoch field (static) map to 0.
func (rt *Router) nodeEpochs(base string) (map[string]uint64, error) {
	resp, err := rt.probe.Get(base + "/v1/graphs")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var doc struct {
		Graphs []struct {
			Name  string  `json:"name"`
			Epoch *uint64 `json:"epoch"`
		} `json:"graphs"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, err
	}
	out := make(map[string]uint64, len(doc.Graphs))
	for _, g := range doc.Graphs {
		var e uint64
		if g.Epoch != nil {
			e = *g.Epoch
		}
		out[g.Name] = e
	}
	return out, nil
}

// ProbeAll runs one synchronous health sweep over every shard: leader
// liveness + graph discovery, follower lag, and — when a leader has
// been down FailAfter consecutive sweeps — failover. Tests drive this
// directly for determinism; cmd/previewrouter runs it on a ticker via
// Start.
func (rt *Router) ProbeAll() {
	rt.mu.RLock()
	shards := make([]*shard, 0, len(rt.shards))
	for _, sh := range rt.shards {
		shards = append(shards, sh)
	}
	rt.mu.RUnlock()
	sort.Slice(shards, func(i, j int) bool { return shards[i].id < shards[j].id })
	for _, sh := range shards {
		rt.probeShard(sh)
	}
}

func (rt *Router) probeShard(sh *shard) {
	rt.mu.RLock()
	leaderURL := sh.leader.url
	followers := make([]*backend, len(sh.followers))
	copy(followers, sh.followers)
	rt.mu.RUnlock()

	leaderEpochs, leaderErr := rt.nodeEpochs(leaderURL)

	if leaderErr == nil && sh.fence.Load() == 0 {
		// Activate fencing on first contact: tell the leader to hold at
		// least fence 1 and adopt whatever it actually holds (a leader
		// that survived a previous router answers with its persisted,
		// possibly higher, fence — so a router restart recovers the
		// fleet's fencing state instead of resetting it). CAS because a
		// concurrent failover may have minted a fence meanwhile; the
		// higher one wins by staying.
		if f, err := rt.fenceExchange(leaderURL, 1); err == nil {
			if sh.fence.CompareAndSwap(0, f) {
				rt.logf("fleet: shard %s: fencing active at epoch %d (leader %s)", sh.id, f, leaderURL)
			}
		} else if sh.fenceWarned.CompareAndSwap(false, true) {
			rt.logf("fleet: shard %s: leader %s cannot fence (%v); writes to it go unstamped — run previewd with -wal-dir to enable fencing",
				sh.id, leaderURL, err)
		}
	}

	// Probe followers regardless of the leader's state: their published
	// epochs are exactly what failover needs when the leader is gone.
	results := make([]probeResult, len(followers))
	for i, f := range followers {
		e, err := rt.nodeEpochs(f.url)
		results[i] = probeResult{epochs: e, err: err}
	}

	rt.mu.Lock()
	if leaderErr != nil {
		sh.leader.fails++
		rt.logf("fleet: shard %s leader %s probe failed (%d consecutive): %v",
			sh.id, leaderURL, sh.leader.fails, leaderErr)
	} else {
		sh.leader.fails = 0
		names := make([]string, 0, len(leaderEpochs))
		for name := range leaderEpochs {
			names = append(names, name)
		}
		sort.Strings(names)
		if !slices.Equal(names, sh.graphs) {
			// Placement must match ring ownership: a graph provisioned on
			// a shard the ring maps elsewhere is unreachable through the
			// router (requests go to the owner, which 404s). Surface the
			// misconfiguration here, once per change, instead of leaving
			// only a bare 404 for the client.
			for _, g := range names {
				if owner := rt.ring.Load().Owner(g); owner != sh.id {
					rt.logf("fleet: shard %s serves graph %q but the ring assigns it to shard %s; requests for it will miss — provision it on its owning shard",
						sh.id, g, owner)
				}
			}
		}
		sh.graphs = names
	}
	for i, f := range followers {
		if results[i].err != nil {
			f.fails++
			f.lag = nil
			continue
		}
		f.fails = 0
		// Lag against the leader epochs from this same sweep. A follower
		// that reads AHEAD of the (possibly stale) leader probe is simply
		// caught up to everything that probe saw.
		lag := make(map[string]uint64, len(results[i].epochs))
		for g, fe := range results[i].epochs {
			le, ok := leaderEpochs[g]
			if !ok || leaderErr != nil {
				continue // unknown leader epoch → lag unknown → not a read candidate
			}
			if fe >= le {
				lag[g] = 0
			} else {
				lag[g] = le - fe
			}
		}
		f.lag = lag
	}
	needFailover := sh.leader.fails >= rt.failAfter && len(sh.followers) > 0
	rt.mu.Unlock()

	if needFailover {
		rt.failover(sh, followers, results)
	}
}

// failover promotes the reachable follower with the highest total
// published epoch and installs it as the shard's leader. The dead
// leader is dropped from the topology; if it ever comes back it must
// rejoin as a follower of the promoted node (its WAL FirstEpoch /
// checkpoint bootstrap handles that), it is never re-trusted as leader.
func (rt *Router) failover(sh *shard, followers []*backend, results []probeResult) {
	rt.mu.RLock()
	graphs := append([]string{}, sh.graphs...)
	rt.mu.RUnlock()
	drained := rt.drainFollowers(sh, followers, results, graphs)
	best := -1
	var bestTotal uint64
	for i := range followers {
		if drained[i] == nil {
			continue
		}
		var total uint64
		for _, e := range drained[i] {
			total += e
		}
		if best == -1 || total > bestTotal {
			best, bestTotal = i, total
		}
	}
	if best == -1 {
		rt.logf("fleet: shard %s leader is down and no follower is reachable; cannot fail over", sh.id)
		return
	}
	winner := followers[best]
	rt.syncWinner(sh, winner, followers, drained, best, graphs)
	// Mint the successor fence and carry it on the promote request: the
	// winner persists it BEFORE it starts accepting writes, so from its
	// first acknowledged write onward the old leader's fence is history —
	// if the deposed leader wakes up, every stamp it sees (its own
	// persisted fence, or a replayed old stamp) mismatches and it answers
	// 409 instead of acknowledging. A shard where fencing never activated
	// (volatile backends) promotes unstamped, exactly as before fencing
	// existed — a fence the winner cannot persist would be theater.
	var newFence uint64
	if cur := sh.fence.Load(); cur != 0 {
		newFence = cur + 1
	}
	req, err := http.NewRequest(http.MethodPost, winner.url+"/v1/replication/promote", nil)
	if err != nil {
		rt.logf("fleet: shard %s: promoting %s failed: %v", sh.id, winner.url, err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if newFence != 0 {
		req.Header.Set(fenceHeader, strconv.FormatUint(newFence, 10))
	}
	resp, err := rt.probe.Do(req)
	if err != nil {
		rt.logf("fleet: shard %s: promoting %s failed: %v", sh.id, winner.url, err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		rt.logf("fleet: shard %s: promoting %s answered %d", sh.id, winner.url, resp.StatusCode)
		return
	}
	if newFence != 0 {
		sh.fence.Store(newFence)
	}

	rt.mu.Lock()
	oldLeader := sh.leader.url
	sh.leader = &backend{url: winner.url}
	kept := sh.followers[:0]
	for _, f := range sh.followers {
		if f != winner {
			kept = append(kept, f)
		}
	}
	sh.followers = kept
	rt.failovers++
	rt.mu.Unlock()
	rt.logf("fleet: shard %s: promoted %s (total epoch %d) to leader, replacing %s",
		sh.id, winner.url, bestTotal, oldLeader)
}

// probeResult is one node's answer to a sweep's /v1/graphs probe,
// shared between probeShard and failover.
type probeResult struct {
	epochs map[string]uint64
	err    error
}

// syncWinner brings the promotion candidate to the per-graph fleet
// maximum before it starts leading. With several graphs per shard no
// single follower is guaranteed to be the most advanced on ALL of them
// — each graph's WAL ships independently, so at the moment of the
// crash follower A can be ahead on one graph while follower B is ahead
// on another. Promoting any single node naively would strand the
// epochs it lacks on the other survivors, which is both a loss of
// (possibly acknowledged) writes and a divergence bomb: the survivor
// holding them would eventually trip the 409 conflict check and stop.
//
// Instead, for every graph where some survivor is ahead of the winner,
// the router temporarily forwards that graph's replication routes to
// the most-advanced survivor. The winner's own replication loop —
// which tails through the router — then pulls the missing records over
// the ordinary shipping path (followers serve the replication routes
// from their local WALs, byte-for-byte as shipped). Once the winner
// reports the target epoch on every graph, the override is lifted and
// promotion proceeds. Bounded: a graph that cannot catch up within the
// deadline is promoted as-is, with the abandonment logged.
func (rt *Router) syncWinner(sh *shard, winner *backend, followers []*backend, drained []map[string]uint64, best int, graphs []string) {
	needs := map[string]string{}   // graph → catch-up source URL
	targets := map[string]uint64{} // graph → epoch the winner must reach
	for _, g := range graphs {
		maxE, src := drained[best][g], ""
		for i, f := range followers {
			if i == best || drained[i] == nil {
				continue
			}
			if drained[i][g] > maxE {
				maxE, src = drained[i][g], f.url
			}
		}
		if src != "" {
			needs[g] = src
			targets[g] = maxE
		}
	}
	if len(needs) == 0 {
		return
	}
	rt.mu.Lock()
	sh.replSrc = needs
	rt.mu.Unlock()
	defer func() {
		rt.mu.Lock()
		sh.replSrc = nil
		rt.mu.Unlock()
	}()
	deadline := time.Now().Add(10 * time.Second)
	for g, want := range targets {
		rt.logf("fleet: shard %s: syncing %s to epoch %d on %q from %s before promotion",
			sh.id, winner.url, want, g, needs[g])
		for {
			st, found, err := rt.replStatus(winner.url, g)
			if err == nil && found && st.epoch >= want {
				break
			}
			if time.Now().After(deadline) {
				rt.logf("fleet: shard %s: %s never reached epoch %d on %q; promoting anyway, later epochs are abandoned",
					sh.id, winner.url, want, g)
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// drainFollowers waits for each reachable follower's apply pipeline to
// empty before reading its epochs for the promotion decision, and
// returns per-follower graph→epoch (nil for unreachable followers).
//
// The wait matters: a follower's applied epoch can still advance after
// the leader's death, because the tail of a WAL response it received
// before the crash is applied record by record. An epoch snapshot taken
// mid-drain can crown a node that another follower is actually ahead
// of — and a survivor ahead of its new leader either trips the 409
// divergence check or, worse, silently skips epochs the new leader
// minted differently. The replication loop is sequential — fetch,
// apply, fetch — so once a graph's status reports a failing poll
// (Error non-empty: the dead leader is unreachable), nothing buffered
// remains and that follower's epoch is frozen. Best-effort bounded: if
// a follower never settles within the deadline, its last reading is
// used and the stall is logged.
func (rt *Router) drainFollowers(sh *shard, followers []*backend, results []probeResult, graphs []string) []map[string]uint64 {
	out := make([]map[string]uint64, len(followers))
	deadline := time.Now().Add(5 * time.Second)
	for i, f := range followers {
		if results[i].err != nil {
			continue
		}
		for {
			epochs := make(map[string]uint64, len(graphs))
			settled := true
			reachable := true
			for _, g := range graphs {
				st, found, err := rt.replStatus(f.url, g)
				if err != nil {
					reachable = false
					break
				}
				if !found {
					// Not bootstrapped on this graph — it holds epoch 0 of
					// it, nothing more. That makes it a poor candidate, not
					// an unreachable one: disqualifying the whole follower
					// here would discard its (possibly fleet-leading) epochs
					// on every OTHER graph over one 404.
					epochs[g] = 0
					continue
				}
				epochs[g] = st.epoch
				if st.errMsg == "" {
					settled = false
				}
			}
			if !reachable {
				out[i] = nil
				break
			}
			out[i] = epochs
			if settled || time.Now().After(deadline) {
				if !settled {
					rt.logf("fleet: shard %s: follower %s never drained; promoting from its last reading", sh.id, f.url)
				}
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return out
}

// replState is one graph's replication status as a node reports it.
// durable/applied matter to the migration pipeline (membership.go):
// cutover waits until the adopter has APPLIED everything the source
// holds DURABLY, which is exactly the acknowledged history.
type replState struct {
	epoch   uint64
	durable uint64
	applied uint64
	errMsg  string
}

// replStatus reads one graph's replication status from a node. A 404 —
// the node does not host the graph (yet) — is not an error: it returns
// found=false with a zero state, because "not bootstrapped" is an
// ordinary answer during adoption and right after a follower starts,
// not evidence the node is unreachable.
func (rt *Router) replStatus(base, graph string) (replState, bool, error) {
	var st replState
	resp, err := rt.probe.Get(base + "/v1/replication/" + graph + "/status")
	if err != nil {
		return st, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return st, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return st, false, fmt.Errorf("status %d", resp.StatusCode)
	}
	var doc struct {
		Epoch        uint64  `json:"epoch"`
		DurableEpoch uint64  `json:"durable_epoch"`
		AppliedEpoch *uint64 `json:"applied_epoch"`
		Error        string  `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return st, false, err
	}
	st.epoch, st.durable, st.errMsg = doc.Epoch, doc.DurableEpoch, doc.Error
	if doc.AppliedEpoch != nil {
		st.applied = *doc.AppliedEpoch
	}
	return st, true, nil
}

// Start launches the background probe loop at the given cadence; Stop
// ends it. Tests skip this and call ProbeAll directly.
func (rt *Router) Start(interval time.Duration) {
	rt.stop = make(chan struct{})
	rt.done = make(chan struct{})
	go func() {
		defer close(rt.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-rt.stop:
				return
			case <-t.C:
				rt.ProbeAll()
			}
		}
	}()
}

func (rt *Router) Stop() {
	if rt.stop == nil {
		return
	}
	close(rt.stop)
	<-rt.done
}
