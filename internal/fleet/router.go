package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Header names shared with internal/service. The router mints no epochs
// and names no leaders itself — those headers arrive from the backends
// and are copied through verbatim — but it does stamp elapsed time on
// the responses it synthesizes (the merged list, /v1/fleet), and it
// mints fences: every proxied POST write carries the owning shard's
// fencing epoch, and every forwarded replication response carries it
// too so followers keep their persisted fences current (see fence.go).
const (
	elapsedHeader = "X-Previewtables-Elapsed"
	leaderHeader  = "X-Previewtables-Leader"
	fenceHeader   = "X-Previewtables-Fence"
)

// DefaultFailAfter is how many consecutive failed leader probes trigger
// a failover. One transient connection blip should not depose a leader.
const DefaultFailAfter = 2

// DefaultProbeTimeout bounds each health/lag probe request. Probes must
// fail fast — a hung leader is exactly the case they exist to detect.
const DefaultProbeTimeout = 2 * time.Second

// ShardSpec configures one shard at router construction: a leader
// serving `-mutable -wal-dir` plus any number of read replicas
// following it (directly or through this router).
type ShardSpec struct {
	ID        string
	Leader    string
	Followers []string
}

// RouterOptions tunes a Router. The zero value is usable.
type RouterOptions struct {
	Vnodes       int           // ring points per shard (<=0 = DefaultVnodes)
	FailAfter    int           // consecutive leader-probe failures before failover (<=0 = DefaultFailAfter)
	ProbeTimeout time.Duration // per-probe request bound (<=0 = DefaultProbeTimeout)
	Logf         func(format string, args ...any)
}

// backend is one node of a shard as the router sees it: its base URL
// plus the probe loop's latest verdict. All mutable fields are guarded
// by the Router's mu.
type backend struct {
	url   string
	fails int               // consecutive failed probes
	lag   map[string]uint64 // per-graph replication lag, present only when known
}

// shard is a leader plus its followers, with a round-robin cursor for
// read spreading.
type shard struct {
	id        string
	leader    *backend
	followers []*backend
	graphs    []string // sorted; discovered from the leader's /v1/graphs
	// rr is the read-spreading cursor; atomic so the read hot path can
	// bump it under the shared RLock instead of serializing on mu.
	rr atomic.Uint64
	// fence is the shard's current fencing epoch as the router knows it:
	// 0 until the first successful exchange with the leader (unfenced —
	// writes go unstamped), then monotonically increasing — bumped at
	// every promotion and at every migration cutover that takes graphs
	// away from this shard. Guarded by atomics, not mu: it is read on
	// every proxied write.
	fence atomic.Uint64
	// fenceWarned de-noises the probe log when a shard's backend cannot
	// fence at all (static or volatile previewd): warn once, not per sweep.
	fenceWarned atomic.Bool
	// replSrc, when non-nil, overrides where a graph's replication
	// routes forward — set only during a failover's catch-up phase,
	// pointing each graph at the most-advanced surviving follower so
	// the promotion candidate (whose polls flow through the router)
	// can pull the epochs it is missing before it starts leading.
	replSrc map[string]string
}

// Router is the fleet's front door: an http.Handler that owns no graph
// data, only the ring and the shard map. Reads for a graph go to a
// caught-up follower of the owning shard (falling back to the leader),
// every other method goes to the owning leader, and the replication
// endpoints are forwarded to the leader so followers can tail through
// the router — which is what makes failover transparent to survivors:
// when a leader dies and a follower is promoted, the router re-points
// the forwarding and the remaining followers keep tailing without
// being reconfigured.
type Router struct {
	// ring is swapped atomically by runtime membership changes
	// (membership.go); every request resolves ownership against one
	// consistent ring. vnodes is pinned at construction so rebuilt rings
	// hash identically to the original.
	ring         atomic.Pointer[Ring]
	vnodes       int
	failAfter    int
	probeTimeout time.Duration
	logf         func(string, ...any)

	// adminMu serializes membership changes (add/remove shard): a
	// migration is a multi-step pipeline and two interleaved ones could
	// each observe the other's half-moved graphs.
	adminMu sync.Mutex

	// migrateHook, when non-nil, observes migration phases ("adopted",
	// "cutover", "done") per graph — the membership test asserts read
	// byte-identity in the middle of a live migration through it.
	migrateHook func(phase, graph string)

	// proxy forwards client traffic: no timeout, because the replication
	// WAL route long-polls (up to DefaultReplicationWait) and a router
	// must not sever a healthy long-poll. probe is the opposite: every
	// health/lag check must return fast or count as a failure.
	proxy *http.Client
	probe *http.Client

	mu        sync.RWMutex
	shards    map[string]*shard
	failovers int

	stop chan struct{}
	done chan struct{}
}

// NewRouter builds a router over the given shards. The initial ring is
// built from the shard IDs; runtime membership changes (AddShard /
// RemoveShard, driven over the /v1/fleet/shards admin routes) rebuild
// it and migrate the ~1/N reassigned graphs. Failover replaces a
// shard's leader, never the shard.
func NewRouter(specs []ShardSpec, opts RouterOptions) (*Router, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("fleet: a router needs at least one shard")
	}
	if opts.FailAfter <= 0 {
		opts.FailAfter = DefaultFailAfter
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = DefaultProbeTimeout
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	rt := &Router{
		vnodes:       opts.Vnodes,
		failAfter:    opts.FailAfter,
		probeTimeout: opts.ProbeTimeout,
		logf:         opts.Logf,
		proxy:        &http.Client{},
		probe:        &http.Client{Timeout: opts.ProbeTimeout},
		shards:       make(map[string]*shard, len(specs)),
	}
	ids := make([]string, 0, len(specs))
	for _, sp := range specs {
		if sp.ID == "" || sp.Leader == "" {
			return nil, fmt.Errorf("fleet: shard needs an id and a leader URL, got %+v", sp)
		}
		if _, dup := rt.shards[sp.ID]; dup {
			return nil, fmt.Errorf("fleet: duplicate shard id %q", sp.ID)
		}
		sh := &shard{id: sp.ID, leader: &backend{url: strings.TrimRight(sp.Leader, "/")}}
		for _, f := range sp.Followers {
			sh.followers = append(sh.followers, &backend{url: strings.TrimRight(f, "/")})
		}
		rt.shards[sp.ID] = sh
		ids = append(ids, sp.ID)
	}
	rt.ring.Store(NewRing(ids, opts.Vnodes))
	return rt, nil
}

// AddFollower registers a follower with a shard after construction —
// the boot order in tests (and rolling deploys) starts the router
// first, then followers that tail through it.
func (rt *Router) AddFollower(shardID, url string) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	sh, ok := rt.shards[shardID]
	if !ok {
		return fmt.Errorf("fleet: no shard %q", shardID)
	}
	sh.followers = append(sh.followers, &backend{url: strings.TrimRight(url, "/")})
	return nil
}

// Owner returns the shard ID owning a graph name.
func (rt *Router) Owner(graph string) string { return rt.ring.Load().Owner(graph) }

// Failovers reports how many leader promotions this router has driven.
func (rt *Router) Failovers() int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.failovers
}

// ServeHTTP implements the fleet front door. The route discipline
// mirrors internal/service exactly — resource existence first (404
// whatever the method), then the route's method set (405 with accurate
// Allow) — with everything graph-scoped forwarded to the owning shard,
// which settles the rest (its own 404s, 405s, and the follower 503).
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case path == "/healthz":
		if !rt.requireRead(w, r) {
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	case path == "/v1/fleet":
		if !rt.requireRead(w, r) {
			return
		}
		rt.handleFleet(w, r)
	case path == "/v1/fleet/shards" || path == "/v1/fleet/shards/":
		rt.handleShardAdd(w, r)
	case strings.HasPrefix(path, "/v1/fleet/shards/"):
		rt.handleShardRemove(w, r, strings.TrimPrefix(path, "/v1/fleet/shards/"))
	case path == "/v1/graphs" || path == "/v1/graphs/":
		if !rt.requireRead(w, r) {
			return
		}
		rt.handleMergedList(w, r)
	case strings.HasPrefix(path, "/v1/graphs/"):
		graph, _, _ := strings.Cut(strings.TrimPrefix(path, "/v1/graphs/"), "/")
		rt.forwardGraph(w, r, graph, r.Method == http.MethodGet || r.Method == http.MethodHead)
	case path == "/v1/replication/promote":
		// The node-level promote action exists on follower processes, not
		// on the router: the router is nobody's replica.
		rt.writeError(w, http.StatusNotFound,
			fmt.Errorf("the router is not a follower; promote a shard's replica directly"))
	case strings.HasPrefix(path, "/v1/replication/"):
		graph, _, _ := strings.Cut(strings.TrimPrefix(path, "/v1/replication/"), "/")
		rt.forwardRepl(w, r, graph)
	default:
		rt.writeError(w, http.StatusNotFound, fmt.Errorf("no such route %q", path))
	}
}

// forwardGraph proxies a graph-scoped request to the owning shard:
// reads (spread=true) to a caught-up follower with leader fallback,
// everything else to the leader.
func (rt *Router) forwardGraph(w http.ResponseWriter, r *http.Request, graph string, spread bool) {
	owner := rt.ring.Load().Owner(graph)
	rt.mu.RLock()
	sh := rt.shards[owner]
	rt.mu.RUnlock()
	if sh == nil {
		// Unreachable with a non-empty ring, but never answer with a nil
		// dereference if the shard map and ring ever disagree.
		rt.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("no shard owns graph %q", graph))
		return
	}
	if r.Method == http.MethodPost {
		// Stamp the write with the owning shard's fence (POST only: the
		// fence authorizes writes, and stamping DELETE would launder the
		// drop admin route through the router — unstamped, a fenced node
		// refuses it, which is the point). If the shard's configuration
		// changes while this request is in flight, the stamp no longer
		// matches the node's installed fence and the node answers 409
		// instead of acknowledging a write the router no longer stands
		// behind.
		if f := sh.fence.Load(); f != 0 {
			r.Header.Set(fenceHeader, strconv.FormatUint(f, 10))
		}
	}
	if spread {
		if f := rt.pickFollower(sh, graph); f != "" {
			if rt.proxyTo(w, r, f) {
				return
			}
			// The chosen follower died between probe and proxy: fall
			// through to the leader rather than failing the read.
		}
	}
	rt.mu.RLock()
	leaderURL := sh.leader.url
	rt.mu.RUnlock()
	if !rt.proxyTo(w, r, leaderURL) {
		rt.writeError(w, http.StatusBadGateway, fmt.Errorf("shard %q is unreachable", owner))
	}
}

// forwardRepl proxies a replication route for a graph. Normally the
// owning leader answers — its WAL is the shard's authoritative log —
// but during a failover's catch-up phase the route is overridden to
// the most-advanced surviving follower for that graph (followers serve
// the same replication routes from their own WALs, record for record
// as shipped), so the promotion candidate can pull the epochs it is
// missing through the same path it always tails.
func (rt *Router) forwardRepl(w http.ResponseWriter, r *http.Request, graph string) {
	owner := rt.ring.Load().Owner(graph)
	rt.mu.RLock()
	sh := rt.shards[owner]
	var target string
	if sh != nil {
		target = sh.leader.url
		if u, ok := sh.replSrc[graph]; ok {
			target = u
		}
	}
	rt.mu.RUnlock()
	if sh == nil {
		rt.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("no shard owns graph %q", graph))
		return
	}
	// Stamp the shard's fence on the forwarded RESPONSE (proxyTo copies
	// the backend's headers on top; a preset survives because Add, not
	// Set, merges them — and the backend never emits this header itself).
	// Followers tailing through the router adopt it (follower.go), which
	// keeps every replica's persisted fence current without another
	// round trip.
	if f := sh.fence.Load(); f != 0 {
		w.Header().Set(fenceHeader, strconv.FormatUint(f, 10))
	}
	if !rt.proxyTo(w, r, target) {
		rt.writeError(w, http.StatusBadGateway, fmt.Errorf("shard %q replication source is unreachable", owner))
	}
}

// pickFollower returns the URL of a healthy, caught-up-on-graph
// follower, round-robin across candidates; "" when none qualifies.
// "Caught up" means the last probe saw replication lag 0 for this graph
// — decidable because every follower publishes contiguous epochs, so
// applied == leader-epoch is the whole story, not a lower bound.
//
// The cursor bump is atomic under the shared read lock: spread reads
// are the router's hot path, and taking the exclusive mu here would
// serialize every read against every other just to increment a counter.
func (rt *Router) pickFollower(sh *shard, graph string) string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	var candidates []string
	for _, f := range sh.followers {
		if f.fails == 0 && f.lag != nil {
			if lag, known := f.lag[graph]; known && lag == 0 {
				candidates = append(candidates, f.url)
			}
		}
	}
	if len(candidates) == 0 {
		return ""
	}
	n := sh.rr.Add(1)
	return candidates[n%uint64(len(candidates))]
}

// proxyTo forwards the request verbatim to base and copies the response
// back verbatim — status, every header, every body byte — so the router
// adds nothing and strips nothing: ETags, conditional 304s, epoch and
// leader headers, HEAD semantics are all the backend's own. Returns
// false only when the backend could not be reached (nothing written),
// letting the caller fall back; once any byte is written the response
// is committed.
func (rt *Router) proxyTo(w http.ResponseWriter, r *http.Request, base string) bool {
	out, err := http.NewRequestWithContext(r.Context(), r.Method, base+r.URL.RequestURI(), r.Body)
	if err != nil {
		rt.writeError(w, http.StatusBadGateway, err)
		return true
	}
	out.Header = r.Header.Clone()
	resp, err := rt.proxy.Do(out)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	h := w.Header()
	for k, vs := range resp.Header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return true
}

// shardList is the part of a backend's /v1/graphs body the merger needs:
// entries stay raw so the splice is byte-preserving, with only the name
// peeked at for ordering.
type shardList struct {
	Graphs []json.RawMessage `json:"graphs"`
}

// handleMergedList answers GET /v1/graphs with the union of every
// shard's list: entries spliced verbatim (byte-identical to the owning
// shard's rendering) and sorted by graph name, under a derived strong
// ETag — sha256 over the per-shard ETags — so the merged document is
// conditional-GET cacheable exactly like a single node's: any shard
// publishing an epoch changes its own list ETag and therefore ours.
func (rt *Router) handleMergedList(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rt.mu.RLock()
	type target struct{ id, url string }
	targets := make([]target, 0, len(rt.shards))
	for id, sh := range rt.shards {
		targets = append(targets, target{id, sh.leader.url})
	}
	rt.mu.RUnlock()
	sort.Slice(targets, func(i, j int) bool { return targets[i].id < targets[j].id })

	type entry struct {
		name string
		raw  json.RawMessage
	}
	var entries []entry
	var scope strings.Builder
	scope.WriteString("fleet-graphs")
	ring := rt.ring.Load()
	for _, tg := range targets {
		// Bounded at probe-timeout scale per shard: the untimed proxy
		// client exists for long-polls, but a list fetch that a single
		// hung leader can stall forever would wedge every merged-list
		// request behind it. Degrade to a 502 naming the shard instead.
		ctx, cancel := context.WithTimeout(r.Context(), rt.probeTimeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, tg.url+"/v1/graphs", nil)
		if err != nil {
			cancel()
			rt.writeError(w, http.StatusBadGateway, fmt.Errorf("listing shard %q: %w", tg.id, err))
			return
		}
		resp, err := rt.proxy.Do(req)
		if err != nil {
			cancel()
			rt.writeError(w, http.StatusBadGateway, fmt.Errorf("listing shard %q: %w", tg.id, err))
			return
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		if err != nil || resp.StatusCode != http.StatusOK {
			rt.writeError(w, http.StatusBadGateway,
				fmt.Errorf("listing shard %q: status %d (%v)", tg.id, resp.StatusCode, err))
			return
		}
		var doc shardList
		if err := json.Unmarshal(raw, &doc); err != nil {
			rt.writeError(w, http.StatusBadGateway, fmt.Errorf("listing shard %q: %w", tg.id, err))
			return
		}
		for _, g := range doc.Graphs {
			var peek struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal(g, &peek); err != nil {
				rt.writeError(w, http.StatusBadGateway, fmt.Errorf("listing shard %q: %w", tg.id, err))
				return
			}
			if ring.Owner(peek.Name) != tg.id {
				// Splice only the owner's entry. Mid-migration a graph is
				// briefly hosted on two shards (the adopter's copy until the
				// source drops it); keeping both would double-list the name.
				// A misprovisioned graph — hosted only off its owner — drops
				// out of the listing entirely, deliberately: it is
				// unreachable through the router anyway, and the probe sweep
				// already logs the misplacement.
				continue
			}
			entries = append(entries, entry{name: peek.Name, raw: g})
		}
		fmt.Fprintf(&scope, "\n%s=%s", tg.id, resp.Header.Get("ETag"))
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	sum := sha256.Sum256([]byte(scope.String()))
	etag := `"` + hex.EncodeToString(sum[:16]) + `"`
	h := w.Header()
	h.Set("ETag", etag)
	setElapsed(h, start)
	if inm := r.Header.Get("If-None-Match"); inm == "*" || (inm != "" && etagMatches(inm, etag)) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	merged := shardList{Graphs: make([]json.RawMessage, 0, len(entries))}
	for _, e := range entries {
		merged.Graphs = append(merged.Graphs, e.raw)
	}
	body, err := marshalJSONBody(merged)
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, err)
		return
	}
	h.Set("Content-Type", "application/json; charset=utf-8")
	h.Set("Content-Length", strconv.Itoa(len(body)))
	if r.Method == http.MethodHead {
		w.WriteHeader(http.StatusOK)
		return
	}
	_, _ = w.Write(body)
}

// fleetDoc is the JSON body of GET /v1/fleet: the router's own view of
// the topology — who leads, who follows at what lag, and how many
// failovers it has driven.
type fleetDoc struct {
	Shards    []fleetShardDoc `json:"shards"`
	Failovers int             `json:"failovers"`
}

type fleetShardDoc struct {
	ID        string         `json:"id"`
	Leader    string         `json:"leader"`
	Fence     uint64         `json:"fence"`
	Graphs    []string       `json:"graphs"`
	Followers []fleetNodeDoc `json:"followers"`
}

type fleetNodeDoc struct {
	URL     string            `json:"url"`
	Healthy bool              `json:"healthy"`
	Lag     map[string]uint64 `json:"lag,omitempty"`
}

func (rt *Router) handleFleet(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rt.mu.RLock()
	doc := fleetDoc{Shards: []fleetShardDoc{}, Failovers: rt.failovers}
	for _, sh := range rt.shards {
		sd := fleetShardDoc{
			ID:        sh.id,
			Leader:    sh.leader.url,
			Fence:     sh.fence.Load(),
			Graphs:    append([]string{}, sh.graphs...),
			Followers: []fleetNodeDoc{},
		}
		for _, f := range sh.followers {
			var lag map[string]uint64
			if f.lag != nil {
				lag = make(map[string]uint64, len(f.lag))
				for g, l := range f.lag {
					lag[g] = l
				}
			}
			sd.Followers = append(sd.Followers, fleetNodeDoc{URL: f.url, Healthy: f.fails == 0, Lag: lag})
		}
		doc.Shards = append(doc.Shards, sd)
	}
	rt.mu.RUnlock()
	sort.Slice(doc.Shards, func(i, j int) bool { return doc.Shards[i].ID < doc.Shards[j].ID })

	body, err := marshalJSONBody(doc)
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json; charset=utf-8")
	h.Set("Content-Length", strconv.Itoa(len(body)))
	setElapsed(h, start)
	if r.Method == http.MethodHead {
		w.WriteHeader(http.StatusOK)
		return
	}
	_, _ = w.Write(body)
}

// requireRead admits GET and HEAD, mirroring internal/service.
func (rt *Router) requireRead(w http.ResponseWriter, r *http.Request) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		return true
	}
	w.Header().Set("Allow", "GET, HEAD")
	rt.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	return false
}

// writeError mirrors internal/service's error shape so clients see one
// error dialect whether a response came from a shard or the router.
func (rt *Router) writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{Error: err.Error()})
}

// etagMatches mirrors internal/service's weak comparison (RFC 9110
// §8.8.3.2): a W/ prefix is ignored; "*" is the caller's decision.
func etagMatches(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		t := strings.TrimSpace(part)
		t = strings.TrimPrefix(t, "W/")
		if t == etag {
			return true
		}
	}
	return false
}

// marshalJSONBody mirrors internal/service's body encoding — no HTML
// escaping, trailing newline — so spliced documents stay byte-identical
// to what a single node would stream.
func marshalJSONBody(v any) ([]byte, error) {
	var buf strings.Builder
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return []byte(buf.String()), nil
}

func setElapsed(h http.Header, start time.Time) {
	h.Set(elapsedHeader, strconv.FormatFloat(float64(time.Since(start).Microseconds())/1000, 'f', -1, 64))
}
