package fleet

// The fleet differential harness: an in-process multi-shard topology —
// leader "processes", follower "processes", and the router front door,
// each with its own registry and HTTP listener — plus the headline
// test, which asserts that every read route through the router is
// byte-identical (body AND ETag) to the owning shard's own response
// before, during, and after a leader kill + promotion, under concurrent
// writes.
//
// Byte-identity is asserted at quiesce points: writers pause at a gate,
// followers are waited to the leader's durable epoch, one synchronous
// probe sweep refreshes the router's lag view, and only then are the
// two sides compared. Between quiesce points replicas are eventually
// consistent by design — a probe-aged lag-0 mark can trail the leader
// by in-flight batches — so an instantaneous comparison would assert a
// property the system deliberately does not have.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/uta-db/previewtables/internal/dynamic"
	"github.com/uta-db/previewtables/internal/fig1"
	"github.com/uta-db/previewtables/internal/score"
	"github.com/uta-db/previewtables/internal/service"
	"github.com/uta-db/previewtables/internal/storage"
)

// leaderProc is one leader "process": a registry of durable live graphs
// (each WAL-backed, origin-pinned for follower bootstrap) behind its own
// listener.
type leaderProc struct {
	id      string
	reg     *service.Registry
	ts      *httptest.Server
	lives   map[string]*dynamic.Live
	wals    map[string]*storage.WAL
	walRoot string
}

func startLeaderProc(t testing.TB, shardID string, graphs []string, root string) *leaderProc {
	t.Helper()
	lp := &leaderProc{
		id:      shardID,
		reg:     service.NewRegistry(),
		lives:   map[string]*dynamic.Live{},
		wals:    map[string]*storage.WAL{},
		walRoot: filepath.Join(root, "leader-"+shardID),
	}
	// Fencing arms before anything serves — and a restarted leader (same
	// walRoot) recovers its persisted fence here, which is exactly what
	// keeps a deposed leader deposed.
	if err := lp.reg.EnableFencing(lp.walRoot); err != nil {
		t.Fatal(err)
	}
	for _, g := range graphs {
		rec, err := service.RecoverLive(fig1.Graph(), g, "", filepath.Join(lp.walRoot, g), score.DefaultWalkOptions())
		if err != nil {
			t.Fatal(err)
		}
		if err := lp.reg.AddLive(g, rec.Live,
			service.WithDurability(rec.WAL), service.WithOrigin(rec.Origin, rec.OriginEpoch)); err != nil {
			t.Fatal(err)
		}
		lp.lives[g] = rec.Live
		lp.wals[g] = rec.WAL
	}
	srv := service.New(lp.reg)
	// Migration endpoints, mirroring cmd/previewd's durable-leader wiring.
	adopter := service.NewAdopter(lp.reg, service.FollowerOptions{
		Walk:          score.DefaultWalkOptions(),
		CheckpointDir: filepath.Join(root, "leader-"+shardID+"-ckpt"),
		WALRoot:       lp.walRoot,
		Wait:          150 * time.Millisecond,
		Backoff:       5 * time.Millisecond,
	})
	srv.OnAdopt = adopter.Adopt
	srv.OnGraphPromote = adopter.Promote
	srv.OnDrop = adopter.Drop
	lp.ts = httptest.NewServer(srv)
	t.Cleanup(lp.ts.Close)
	return lp
}

// crash kills the process SIGKILL-style: established connections are
// severed mid-flight and the listener stops accepting, but nothing is
// flushed or closed cleanly — whatever the WAL holds on disk is exactly
// what a crashed process would leave behind.
func (lp *leaderProc) crash() {
	lp.ts.CloseClientConnections()
	lp.ts.Listener.Close()
}

// followerProc is one replica "process": a registry hosting one durable
// Follower per shard graph — all tailing THROUGH the router, so a
// leader swap needs no replica reconfiguration — behind its own
// listener, with the node-level promote endpoint wired to flip every
// followed graph at once.
type followerProc struct {
	reg *service.Registry
	fs  map[string]*service.Follower
	ts  *httptest.Server
}

func startFollowerProc(t testing.TB, routerURL string, graphs []string, root string) *followerProc {
	t.Helper()
	fp := &followerProc{reg: service.NewRegistry(), fs: map[string]*service.Follower{}}
	ckpt := filepath.Join(root, "ckpt")
	if err := os.MkdirAll(ckpt, 0o755); err != nil {
		t.Fatal(err)
	}
	// A durable replica fences too: it learns the shard's fence from the
	// stamped replication responses it tails through the router, and
	// installs the successor fence when the router promotes it.
	if err := fp.reg.EnableFencing(filepath.Join(root, "wal")); err != nil {
		t.Fatal(err)
	}
	for _, g := range graphs {
		f, err := service.StartFollower(fp.reg, g, service.FollowerOptions{
			Leader:        routerURL,
			Walk:          score.DefaultWalkOptions(),
			CheckpointDir: ckpt,
			WALRoot:       filepath.Join(root, "wal"),
			Wait:          150 * time.Millisecond,
			Backoff:       5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		fp.fs[g] = f
		t.Cleanup(f.Stop)
	}
	srv := service.New(fp.reg)
	srv.OnPromote = func() error {
		for _, f := range fp.fs {
			if err := f.Promote(); err != nil {
				return err
			}
		}
		return nil
	}
	fp.ts = httptest.NewServer(srv)
	t.Cleanup(fp.ts.Close)
	return fp
}

// fleetHarness is the whole topology: shard leaders, follower procs,
// and the router fronting them.
type fleetHarness struct {
	t       testing.TB
	root    string // the fleet's durable state; a "restarted" proc reuses it
	rt      *Router
	ts      *httptest.Server // the router's front door
	leaders map[string]*leaderProc
	fprocs  map[string][]*followerProc
	byShard map[string][]string
	graphs  []string
}

// startFleet boots leaders, the router, then followersPerShard replica
// processes per shard (tailing through the router) and registers them —
// the same order a rolling deploy would use.
func startFleet(t testing.TB, shardIDs, graphs []string, followersPerShard int, opts RouterOptions) *fleetHarness {
	t.Helper()
	root := t.TempDir()
	ring := NewRing(shardIDs, opts.Vnodes)
	byShard := map[string][]string{}
	for _, g := range graphs {
		owner := ring.Owner(g)
		byShard[owner] = append(byShard[owner], g)
	}
	for _, id := range shardIDs {
		if len(byShard[id]) == 0 {
			t.Fatalf("shard %s owns no graphs; pick graph names that split across %v", id, shardIDs)
		}
	}
	h := &fleetHarness{
		t:       t,
		root:    root,
		leaders: map[string]*leaderProc{},
		fprocs:  map[string][]*followerProc{},
		byShard: byShard,
		graphs:  graphs,
	}
	var specs []ShardSpec
	for _, id := range shardIDs {
		lp := startLeaderProc(t, id, byShard[id], root)
		h.leaders[id] = lp
		specs = append(specs, ShardSpec{ID: id, Leader: lp.ts.URL})
	}
	rt, err := NewRouter(specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	h.rt = rt
	h.ts = httptest.NewServer(rt)
	t.Cleanup(h.ts.Close)
	for _, id := range shardIDs {
		for i := 0; i < followersPerShard; i++ {
			fp := startFollowerProc(t, h.ts.URL, byShard[id], filepath.Join(root, fmt.Sprintf("f-%s-%d", id, i)))
			if err := rt.AddFollower(id, fp.ts.URL); err != nil {
				t.Fatal(err)
			}
			h.fprocs[id] = append(h.fprocs[id], fp)
		}
	}
	return h
}

// leaderBase returns the URL the router currently routes shard writes
// to — the original leader, or the promoted follower after a failover.
func (h *fleetHarness) leaderBase(shardID string) string {
	h.rt.mu.RLock()
	defer h.rt.mu.RUnlock()
	return h.rt.shards[shardID].leader.url
}

// post applies one write batch through the router, returning the status
// and, on success, the acknowledged epoch.
func (h *fleetHarness) post(graph, body string) (int, uint64) {
	resp, err := http.Post(h.ts.URL+"/v1/graphs/"+graph+"/edges", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, 0 // transport failure: the dead-leader window
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, 0
	}
	var doc struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		h.t.Errorf("write ack for %s is not JSON: %v (%s)", graph, err, raw)
	}
	return resp.StatusCode, doc.Epoch
}

// mustPost is post for phases where the fleet is healthy.
func (h *fleetHarness) mustPost(graph, body string) uint64 {
	h.t.Helper()
	status, epoch := h.post(graph, body)
	if status != http.StatusOK {
		h.t.Fatalf("write to %s: status %d", graph, status)
	}
	return epoch
}

// statusEpoch asks a node for a graph's published epoch via the
// replication status route — process-agnostic, so it works on original
// leaders and promoted followers alike.
func (h *fleetHarness) statusEpoch(base, graph string) uint64 {
	h.t.Helper()
	resp, err := http.Get(base + "/v1/replication/" + graph + "/status")
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		h.t.Fatal(err)
	}
	return doc.Epoch
}

// quiesce waits, for every shard, until every replica process that is
// not currently acting as the shard's leader has applied the leader's
// published epoch, then runs one probe sweep so the router's lag view
// is current. Callers must have paused writers first.
func (h *fleetHarness) quiesce() {
	h.t.Helper()
	for id, procs := range h.fprocs {
		base := h.leaderBase(id)
		for _, g := range h.byShard[id] {
			target := h.statusEpoch(base, g)
			for _, fp := range procs {
				if fp.ts.URL == base {
					continue // promoted: it IS the leader now
				}
				if err := fp.fs[g].WaitCaughtUp(target, 30*time.Second); err != nil {
					h.t.Fatalf("shard %s follower %s on %q: %v", id, fp.ts.URL, g, err)
				}
			}
		}
	}
	h.rt.ProbeAll()
}

// graphReadURLs is the per-graph differential surface: stats, previews
// across measure pairs (with sampled tuples), and markdown rendering.
func graphReadURLs(g string) []string {
	return []string{
		"/v1/graphs/" + g + "/stats",
		"/v1/graphs/" + g + "/preview?k=2&n=3&tuples=3&key=coverage&nonkey=coverage",
		"/v1/graphs/" + g + "/preview?k=3&n=6&tuples=2&key=coverage&nonkey=entropy",
		"/v1/graphs/" + g + "/render?k=2&n=3&tuples=3&key=coverage&nonkey=coverage&format=markdown",
	}
}

// readSurfaces fetches urls from base, folding each response's ETag
// into the compared value: byte-identity must cover the validator, or
// conditional GETs would behave differently through the router.
func readSurfaces(t testing.TB, base string, urls []string) map[string]string {
	t.Helper()
	out := make(map[string]string, len(urls))
	for _, u := range urls {
		resp, err := http.Get(base + u)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d body %s", u, resp.StatusCode, raw)
		}
		out[u] = resp.Header.Get("ETag") + "\n" + string(raw)
	}
	return out
}

// assertDifferential compares every graph's read surfaces through the
// router against the owning shard's current leader, directly.
func (h *fleetHarness) assertDifferential(what string) {
	h.t.Helper()
	for id, graphs := range h.byShard {
		base := h.leaderBase(id)
		for _, g := range graphs {
			urls := graphReadURLs(g)
			want := readSurfaces(h.t, base, urls)
			got := readSurfaces(h.t, h.ts.URL, urls)
			for _, u := range urls {
				if got[u] != want[u] {
					h.t.Errorf("%s: GET %s diverged between router and shard %s:\nshard:  %s\nrouter: %s",
						what, u, id, want[u], got[u])
				}
			}
		}
	}
}

// assertSpreadable asserts the router has a caught-up follower to serve
// every graph's reads — i.e. the differential just exercised the
// follower path, not only leader fallback. Valid only right after
// quiesce, and only for shards that still have followers.
func (h *fleetHarness) assertSpreadable(what string) {
	h.t.Helper()
	h.rt.mu.RLock()
	defer h.rt.mu.RUnlock()
	for id, graphs := range h.byShard {
		sh := h.rt.shards[id]
		if len(sh.followers) == 0 {
			continue
		}
		for _, g := range graphs {
			ok := false
			for _, f := range sh.followers {
				if f.fails == 0 && f.lag != nil {
					if lag, known := f.lag[g]; known && lag == 0 {
						ok = true
					}
				}
			}
			if !ok {
				h.t.Errorf("%s: no caught-up follower for %q on shard %s; reads were not spread", what, g, id)
			}
		}
	}
}

// assertMergedList checks the router's /v1/graphs: the union of every
// shard's entries, spliced verbatim and sorted by name, under a strong
// ETag honoring If-None-Match, with HEAD serving GET's headers bodiless.
func (h *fleetHarness) assertMergedList(what string) {
	h.t.Helper()
	resp, err := http.Get(h.ts.URL + "/v1/graphs")
	if err != nil {
		h.t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		h.t.Fatalf("%s: merged list status %d", what, resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		h.t.Fatalf("%s: merged list has no ETag", what)
	}
	var doc struct {
		Graphs []json.RawMessage `json:"graphs"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		h.t.Fatalf("%s: merged list not JSON: %v", what, err)
	}
	merged := map[string]string{}
	var order []string
	for _, e := range doc.Graphs {
		var peek struct {
			Name string `json:"name"`
		}
		if err := json.Unmarshal(e, &peek); err != nil {
			h.t.Fatal(err)
		}
		merged[peek.Name] = string(e)
		order = append(order, peek.Name)
	}
	if !sort.StringsAreSorted(order) {
		h.t.Errorf("%s: merged list not sorted by name: %v", what, order)
	}
	total := 0
	for id := range h.byShard {
		sresp, err := http.Get(h.leaderBase(id) + "/v1/graphs")
		if err != nil {
			h.t.Fatal(err)
		}
		sraw, _ := io.ReadAll(sresp.Body)
		sresp.Body.Close()
		var sdoc struct {
			Graphs []json.RawMessage `json:"graphs"`
		}
		if err := json.Unmarshal(sraw, &sdoc); err != nil {
			h.t.Fatal(err)
		}
		for _, e := range sdoc.Graphs {
			var peek struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal(e, &peek); err != nil {
				h.t.Fatal(err)
			}
			total++
			if got, ok := merged[peek.Name]; !ok || got != string(e) {
				h.t.Errorf("%s: merged entry for %q is not the shard's bytes:\nshard:  %s\nmerged: %s",
					what, peek.Name, e, got)
			}
		}
	}
	if len(merged) != total {
		h.t.Errorf("%s: merged list has %d entries, shards have %d", what, len(merged), total)
	}

	// Conditional GET against the derived ETag.
	req, _ := http.NewRequest(http.MethodGet, h.ts.URL+"/v1/graphs", nil)
	req.Header.Set("If-None-Match", etag)
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		h.t.Fatal(err)
	}
	io.Copy(io.Discard, cresp.Body)
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusNotModified {
		h.t.Errorf("%s: conditional merged list = %d, want 304", what, cresp.StatusCode)
	}
	// HEAD mirrors GET's validator with no body.
	hreq, _ := http.NewRequest(http.MethodHead, h.ts.URL+"/v1/graphs", nil)
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		h.t.Fatal(err)
	}
	hraw, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || len(hraw) != 0 || hresp.Header.Get("ETag") != etag {
		h.t.Errorf("%s: HEAD merged list: status %d, %d body bytes, etag %q (want 200, 0, %q)",
			what, hresp.StatusCode, len(hraw), hresp.Header.Get("ETag"), etag)
	}
}

func writeBody(graph string, i int) string {
	return fmt.Sprintf(`{"edges":[{"from":"Film %s-%04d","rel":"Genres","from_type":%q,"to_type":%q,"to":"Action Film"}]}`,
		graph, i, fig1.Film, fig1.FilmGenre)
}

// TestFleetDifferential is the acceptance test: a 2-shard fleet, two
// replicas per shard, all reads through the router byte-identical to
// the owning shard before, during, and after a leader kill + follower
// promotion, with concurrent writers running across every graph the
// whole time (pausing only at the comparison quiesce points).
func TestFleetDifferential(t *testing.T) {
	shardIDs := []string{"alpha", "beta"}
	graphs := []string{"atlas", "cedar", "delta", "briar", "grove", "heath"}
	h := startFleet(t, shardIDs, graphs, 2, RouterOptions{FailAfter: 2, Logf: t.Logf})

	// Phase "before": a couple of quiet batches per graph, in parallel
	// across graphs, then quiesce and compare.
	maxAcked := struct {
		sync.Mutex
		m map[string]uint64
	}{m: map[string]uint64{}}
	ack := func(g string, epoch uint64) {
		maxAcked.Lock()
		if epoch > maxAcked.m[g] {
			maxAcked.m[g] = epoch
		}
		maxAcked.Unlock()
	}
	var wg sync.WaitGroup
	for _, g := range graphs {
		wg.Add(1)
		go func(g string) {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				ack(g, h.mustPost(g, writeBody(g, i)))
			}
		}(g)
	}
	wg.Wait()
	h.quiesce()
	h.assertDifferential("before")
	h.assertSpreadable("before")
	h.assertMergedList("before")

	// Concurrent writers for the rest of the test: one per graph,
	// pausable at a gate, tolerant of the dead-leader window (failed
	// writes are simply not acked).
	var gate sync.RWMutex
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for _, g := range graphs {
		writers.Add(1)
		go func(g string) {
			defer writers.Done()
			for i := 100; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				gate.RLock()
				status, epoch := h.post(g, writeBody(g, i))
				gate.RUnlock()
				if status == http.StatusOK {
					ack(g, epoch)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(g)
	}

	// Phase "during": writers mid-flight, pause at the gate, quiesce,
	// compare, resume.
	time.Sleep(50 * time.Millisecond)
	gate.Lock()
	h.quiesce()
	h.assertDifferential("during concurrent writes")
	h.assertSpreadable("during concurrent writes")
	h.assertMergedList("during concurrent writes")

	// Snapshot the acked epochs while the gate is held: the quiesce
	// above proved every replica has applied them, so whichever
	// replica wins the promotion must still hold them. Acks issued
	// between here and the kill are deliberately NOT covered —
	// replication is asynchronous, so an epoch no replica had pulled
	// yet dies with the leader; the fault-injection test pins down
	// that exact boundary against the dead leader's WAL.
	maxAcked.Lock()
	ackedAlpha := map[string]uint64{}
	for _, g := range h.byShard["alpha"] {
		ackedAlpha[g] = maxAcked.m[g]
	}
	maxAcked.Unlock()
	gate.Unlock()

	// Kill shard alpha's leader mid-traffic and let the router notice:
	// FailAfter consecutive failed sweeps, then promotion of the
	// most-advanced replica.
	time.Sleep(25 * time.Millisecond)
	oldLeader := h.leaderBase("alpha")
	h.leaders["alpha"].crash()
	h.rt.ProbeAll()
	h.rt.ProbeAll()
	if got := h.rt.Failovers(); got != 1 {
		t.Fatalf("failovers = %d after two failed sweeps, want 1", got)
	}
	newLeader := h.leaderBase("alpha")
	if newLeader == oldLeader {
		t.Fatalf("shard alpha still led by the dead %s", oldLeader)
	}
	promoted := false
	for _, fp := range h.fprocs["alpha"] {
		if fp.ts.URL == newLeader {
			promoted = true
		}
	}
	if !promoted {
		t.Fatalf("new leader %s is not one of alpha's replicas", newLeader)
	}

	// Writers keep running against the promoted leader; the survivor
	// replica re-tails through the router without reconfiguration.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	writers.Wait()

	// Every epoch acked at the last quiesce before the kill must still
	// be served: the promoted node's published epoch is at least the
	// max acked-and-replicated one.
	for g, acked := range ackedAlpha {
		if got := h.statusEpoch(newLeader, g); got < acked {
			t.Errorf("promoted leader serves %q at epoch %d, below the acked %d: acknowledged writes lost", g, got, acked)
		}
	}

	// Phase "after": post-failover writes must succeed through the
	// router for every graph (proving the swap is live), then quiesce
	// and compare — including the merged list, now spliced from the
	// promoted leader.
	for _, g := range graphs {
		ack(g, h.mustPost(g, writeBody(g, 9999)))
	}
	h.quiesce()
	h.assertDifferential("after promotion")
	h.assertSpreadable("after promotion")
	h.assertMergedList("after promotion")
}
