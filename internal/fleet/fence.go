package fleet

// Fencing: the router is the fleet's single write authority, and the
// fencing epoch is how it makes that authority stick across failures.
// Each shard carries a monotonically increasing fence, minted by the
// router and persisted by the shard's leader next to its WAL manifest
// (internal/storage). Every proxied POST write is stamped with the
// owner's current fence; a node whose installed fence differs answers
// 409 instead of acknowledging. The fence is bumped at every promotion
// (the promote request carries old+1, installed by the winner BEFORE
// it starts leading) and at every migration cutover that takes graphs
// away from a shard — so a deposed leader that wakes back up holds a
// fence the router no longer stamps, and can never acknowledge another
// write, no matter how briefly it was unreachable.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// fenceExchange tells the node at base to raise its persisted fence to
// at least want and returns the fence the node actually holds after the
// exchange — max(want, persisted). The max matters on router restart:
// a fresh router sends want=1, and a leader that survived the previous
// router's tenure answers with the real (higher) fence it persisted, so
// the router recovers the fleet's fencing state instead of resetting it.
func (rt *Router) fenceExchange(base string, want uint64) (uint64, error) {
	body, err := json.Marshal(struct {
		Fence uint64 `json:"fence"`
	}{Fence: want})
	if err != nil {
		return 0, err
	}
	resp, err := rt.probe.Post(base+"/v1/replication/fence", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("fence exchange with %s: status %d: %s", base, resp.StatusCode, bytes.TrimSpace(raw))
	}
	var doc struct {
		Fence uint64 `json:"fence"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return 0, fmt.Errorf("fence exchange with %s: %w", base, err)
	}
	return doc.Fence, nil
}
