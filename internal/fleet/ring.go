// Package fleet partitions a registry of entity graphs across leader
// shards and fronts them with a single routing door: writes proxy to the
// owning shard's leader, reads spread across that shard's caught-up
// followers, and a dead leader is replaced by promoting its most
// advanced follower (see router.go). Ownership is decided by the
// consistent-hash ring in this file, so adding or removing a shard
// remaps only the graphs that must move.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVnodes is the number of virtual points each shard contributes
// to the ring. More vnodes smooth the key distribution (the expected
// share of each shard concentrates around 1/N) at a small cost in ring
// size; 64 keeps the imbalance low for the shard counts a preview fleet
// actually runs.
const DefaultVnodes = 64

// Ring is an immutable consistent-hash ring over shard IDs. Hashing is
// sha256-based and involves no process state, so ownership is a pure
// function of (shard set, vnodes, key): two routers configured with the
// same shards — or one router across restarts — always agree.
type Ring struct {
	points []ringPoint // sorted by hash
	shards []string    // sorted, deduplicated
	vnodes int
}

type ringPoint struct {
	hash  uint64
	shard string
}

// NewRing builds a ring over the given shard IDs with vnodes virtual
// points per shard (<=0 means DefaultVnodes). Duplicate IDs collapse;
// an empty shard set yields a ring whose Owner always returns "".
func NewRing(shards []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(shards))
	var uniq []string
	for _, s := range shards {
		if !seen[s] {
			seen[s] = true
			uniq = append(uniq, s)
		}
	}
	sort.Strings(uniq)
	r := &Ring{shards: uniq, vnodes: vnodes}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for _, s := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", s, i)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full-64-bit sha256 collision between vnode labels is not a
		// practical concern, but break ties deterministically anyway so
		// ownership never depends on sort stability.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Owner returns the shard owning key: the first ring point at or after
// hash(key), wrapping past the top. Empty ring → "".
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Shards returns the sorted shard IDs on the ring.
func (r *Ring) Shards() []string {
	out := make([]string, len(r.shards))
	copy(out, r.shards)
	return out
}

// hashKey is the ring's hash: the first 8 bytes of sha256, big-endian.
// sha256 (rather than a seeded fast hash) keeps placement identical
// across processes, architectures and Go versions — the stability the
// ownership property test pins.
func hashKey(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
