package triple_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"github.com/uta-db/previewtables/internal/fig1"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/triple"
)

func TestMarshalRoundTrip(t *testing.T) {
	g := fig1.Graph()
	var buf bytes.Buffer
	if err := triple.Marshal(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := triple.Unmarshal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats() != g2.Stats() {
		t.Errorf("round trip stats: %v vs %v", g.Stats(), g2.Stats())
	}
	if err := g2.Validate(); err != nil {
		t.Errorf("round-tripped graph invalid: %v", err)
	}
	// Multi-typed entity survives.
	will, ok := g2.EntityByName("Will Smith")
	if !ok {
		t.Fatal("Will Smith lost in round trip")
	}
	if len(g2.Entity(will).Types) != 2 {
		t.Errorf("Will Smith types = %d, want 2", len(g2.Entity(will).Types))
	}
	// Parallel relationship types sharing a surface name survive distinctly.
	var awardRels int
	for i := 0; i < g2.NumRelTypes(); i++ {
		if g2.RelType(graph.RelTypeID(i)).Name == fig1.RelAwardWinners {
			awardRels++
		}
	}
	if awardRels != 2 {
		t.Errorf("Award Winners relationship types = %d, want 2", awardRels)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	g := fig1.Graph()
	var a, b bytes.Buffer
	if err := triple.Marshal(&a, g); err != nil {
		t.Fatal(err)
	}
	if err := triple.Marshal(&b, g); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("marshal not deterministic")
	}
}

func TestUnmarshalQuotedNames(t *testing.T) {
	src := `
# a tiny graph
type "FILM ACTOR"
type "FILM"
rel "Actor" "FILM ACTOR" "FILM"
entity "Will \"The Fresh Prince\" Smith" "FILM ACTOR"
edge "Will \"The Fresh Prince\" Smith" "Actor" "FILM ACTOR" "FILM" "Men in Black"
`
	g, err := triple.Unmarshal(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 || g.NumEntities() != 2 {
		t.Errorf("stats = %v", g.Stats())
	}
	if _, ok := g.EntityByName(`Will "The Fresh Prince" Smith`); !ok {
		t.Error("escaped quotes mishandled")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := map[string]string{
		"unknown directive":  `frobnicate "x"`,
		"type arity":         `type`,
		"rel arity":          `rel "r" "a"`,
		"entity needs type":  `entity "x"`,
		"edge arity":         `edge "a" "r" "T" "U"`,
		"unterminated quote": `type "oops`,
	}
	for name, src := range cases {
		if _, err := triple.Unmarshal(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error for %q", name, src)
		}
	}
}

func TestParseErrorHasLine(t *testing.T) {
	src := "type \"A\"\nbogus line here\n"
	_, err := triple.Unmarshal(strings.NewReader(src))
	pe, ok := err.(*triple.ParseError)
	if !ok {
		t.Fatalf("err = %T, want *ParseError", err)
	}
	if pe.Line != 2 {
		t.Errorf("error line = %d, want 2", pe.Line)
	}
	if pe.Error() == "" {
		t.Error("empty error message")
	}
}

func TestReadNTriples(t *testing.T) {
	src := `
<will> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <FilmActor> .
<mib> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Film> .
<will> <actedIn> <mib> .
<will> <age> "47" .
`
	g, err := triple.ReadNTriples(strings.NewReader(src), triple.NTriplesOptions{DropLiterals: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEntities() != 2 || g.NumEdges() != 1 || g.NumTypes() != 2 {
		t.Errorf("stats = %v", g.Stats())
	}
	names := triple.SortedTypeNames(g)
	if names[0] != "Film" || names[1] != "FilmActor" {
		t.Errorf("types = %v", names)
	}
}

func TestReadNTriplesLiteralRejected(t *testing.T) {
	src := `<a> <p> "literal" .`
	if _, err := triple.ReadNTriples(strings.NewReader(src), triple.NTriplesOptions{}); err == nil {
		t.Error("literal object without DropLiterals should fail")
	}
}

func TestReadNTriplesDefaultType(t *testing.T) {
	// Untyped subjects get the default type so the graph stays valid.
	src := `<a> <knows> <b> .`
	g, err := triple.ReadNTriples(strings.NewReader(src), triple.NTriplesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTypes() != 1 || g.TypeName(0) != "Thing" {
		t.Errorf("types = %v", triple.SortedTypeNames(g))
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestReadNTriplesAShorthand(t *testing.T) {
	src := `
<x> a <Widget> .
<y> a <Widget> .
<x> <next> <y> .
`
	g, err := triple.ReadNTriples(strings.NewReader(src), triple.NTriplesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTypes() != 1 || g.NumEdges() != 1 {
		t.Errorf("stats = %v", g.Stats())
	}
}

func TestReadNTriplesRelTypePerEndpointPair(t *testing.T) {
	// The same predicate between different type pairs becomes different
	// relationship types (the paper's model).
	src := `
<a1> a <A> .
<b1> a <B> .
<c1> a <C> .
<a1> <linked> <b1> .
<a1> <linked> <c1> .
`
	g, err := triple.ReadNTriples(strings.NewReader(src), triple.NTriplesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRelTypes() != 2 {
		t.Errorf("relationship types = %d, want 2", g.NumRelTypes())
	}
}

func TestReadNTriplesMalformed(t *testing.T) {
	for _, src := range []string{
		`<a> <p>`,
		`<a <p> <b> .`,
		`<a> <p> "unterminated .`,
		`<a> <p> <b> <extra> .`,
	} {
		if _, err := triple.ReadNTriples(strings.NewReader(src), triple.NTriplesOptions{DropLiterals: true}); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

// recordSink captures directives as strings, proving Decode resolves
// names through the sink rather than a private builder.
type recordSink struct {
	names []string
	log   []string
	fail  bool
}

func (s *recordSink) intern(name string) int {
	for i, n := range s.names {
		if n == name {
			return i
		}
	}
	s.names = append(s.names, name)
	return len(s.names) - 1
}

func (s *recordSink) Type(name string) graph.TypeID {
	return graph.TypeID(s.intern("t:" + name))
}

func (s *recordSink) RelType(name string, from, to graph.TypeID) (graph.RelTypeID, error) {
	if s.fail {
		return 0, fmt.Errorf("sink rejected %q", name)
	}
	s.log = append(s.log, fmt.Sprintf("rel %s %d->%d", name, from, to))
	return graph.RelTypeID(s.intern("r:" + name)), nil
}

func (s *recordSink) Entity(name string, types ...graph.TypeID) graph.EntityID {
	return graph.EntityID(s.intern("e:" + name))
}

func (s *recordSink) Edge(from, to graph.EntityID, rel graph.RelTypeID) error {
	s.log = append(s.log, fmt.Sprintf("edge %d-%d-%d", from, rel, to))
	return nil
}

func TestDecodeIntoCustomSink(t *testing.T) {
	src := `type "A"
rel "r" "A" "B"
entity "x" "A"
edge "x" "r" "A" "B" "y"
`
	var sink recordSink
	if err := triple.Decode(strings.NewReader(src), &sink); err != nil {
		t.Fatal(err)
	}
	if len(sink.log) != 3 { // rel directive, edge's rel resolution, edge
		t.Fatalf("directive log: %v", sink.log)
	}
}

func TestDecodeSinkErrorCarriesLine(t *testing.T) {
	src := "type \"A\"\nrel \"r\" \"A\" \"A\"\n"
	if err := triple.Decode(strings.NewReader(src), &recordSink{fail: true}); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Fatalf("sink error lost its line: %v", err)
	}
}
