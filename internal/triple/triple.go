// Package triple reads and writes entity graphs as text triples. Entity
// graphs "are often represented as RDF triples" (Sec. 1); this package
// provides the loading path a data worker would use before previewing a
// dataset:
//
//   - a line-oriented native format (see Marshal) that round-trips every
//     feature of the data model (multi-typed entities, parallel
//     relationship types sharing a surface name);
//   - an N-Triples-subset reader (ReadNTriples) for third-party dumps,
//     mapping rdf:type statements to entity types and other predicates to
//     relationship types, with optional dropping of literal objects —
//     mirroring the paper's preprocessing, which removed all numeric
//     attribute values and kept named entities only.
package triple

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/uta-db/previewtables/internal/graph"
)

// Native format:
//
//	# comment
//	type <TypeName>
//	rel <RelName> <FromType> <ToType>
//	entity <Name> <Type> [<Type>...]
//	edge <From> <RelName> <FromType> <ToType> <To>
//
// Every field is quoted with strconv.Quote, so names may contain spaces.

// Marshal writes g in the native format. Declarations are emitted in a
// deterministic order (types, relationship types, entities, edges) so equal
// graphs marshal identically.
func Marshal(w io.Writer, g *graph.EntityGraph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# entity graph: %s\n", g.Stats())
	for i := 0; i < g.NumTypes(); i++ {
		fmt.Fprintf(bw, "type %s\n", strconv.Quote(g.TypeName(graph.TypeID(i))))
	}
	for i := 0; i < g.NumRelTypes(); i++ {
		rt := g.RelType(graph.RelTypeID(i))
		fmt.Fprintf(bw, "rel %s %s %s\n",
			strconv.Quote(rt.Name),
			strconv.Quote(g.TypeName(rt.From)),
			strconv.Quote(g.TypeName(rt.To)))
	}
	for i := 0; i < g.NumEntities(); i++ {
		e := g.Entity(graph.EntityID(i))
		fmt.Fprintf(bw, "entity %s", strconv.Quote(e.Name))
		for _, t := range e.Types {
			fmt.Fprintf(bw, " %s", strconv.Quote(g.TypeName(t)))
		}
		fmt.Fprintln(bw)
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(graph.EdgeID(i))
		rt := g.RelType(e.Rel)
		fmt.Fprintf(bw, "edge %s %s %s %s %s\n",
			strconv.Quote(g.EntityName(e.From)),
			strconv.Quote(rt.Name),
			strconv.Quote(g.TypeName(rt.From)),
			strconv.Quote(g.TypeName(rt.To)),
			strconv.Quote(g.EntityName(e.To)))
	}
	return bw.Flush()
}

// ParseError reports a malformed line.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("triple: line %d: %s", e.Line, e.Msg)
}

// Sink receives parsed native-format directives. Decode resolves names to
// IDs through the sink itself, so any upsert-style graph representation —
// graph.Builder for batch loading, dynamic.Graph for live ingestion —
// can be the target of one shared parser.
type Sink interface {
	// Type declares (or finds) an entity type.
	Type(name string) graph.TypeID
	// RelType declares (or finds) a relationship type.
	RelType(name string, from, to graph.TypeID) (graph.RelTypeID, error)
	// Entity declares (or finds) an entity, adding any new types to it.
	Entity(name string, types ...graph.TypeID) graph.EntityID
	// Edge inserts one relationship instance.
	Edge(from, to graph.EntityID, rel graph.RelTypeID) error
}

// BuilderSink adapts graph.Builder (whose methods are infallible) to Sink.
type BuilderSink struct{ B *graph.Builder }

func (s BuilderSink) Type(name string) graph.TypeID { return s.B.Type(name) }

func (s BuilderSink) RelType(name string, from, to graph.TypeID) (graph.RelTypeID, error) {
	return s.B.RelType(name, from, to), nil
}

func (s BuilderSink) Entity(name string, types ...graph.TypeID) graph.EntityID {
	return s.B.Entity(name, types...)
}

func (s BuilderSink) Edge(from, to graph.EntityID, rel graph.RelTypeID) error {
	s.B.Edge(from, to, rel)
	return nil
}

// Decode parses the native format into sink, one directive at a time.
// Errors — syntactic or returned by the sink — carry the line number.
func Decode(r io.Reader, sink Sink) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields, err := splitQuoted(line)
		if err != nil {
			return &ParseError{lineNo, err.Error()}
		}
		switch fields[0] {
		case "type":
			if len(fields) != 2 {
				return &ParseError{lineNo, "type wants 1 argument"}
			}
			sink.Type(fields[1])
		case "rel":
			if len(fields) != 4 {
				return &ParseError{lineNo, "rel wants 3 arguments"}
			}
			if _, err := sink.RelType(fields[1], sink.Type(fields[2]), sink.Type(fields[3])); err != nil {
				return &ParseError{lineNo, err.Error()}
			}
		case "entity":
			if len(fields) < 3 {
				return &ParseError{lineNo, "entity wants a name and at least one type"}
			}
			types := make([]graph.TypeID, 0, len(fields)-2)
			for _, t := range fields[2:] {
				types = append(types, sink.Type(t))
			}
			sink.Entity(fields[1], types...)
		case "edge":
			if len(fields) != 6 {
				return &ParseError{lineNo, "edge wants 5 arguments"}
			}
			from := sink.Type(fields[3])
			to := sink.Type(fields[4])
			rel, err := sink.RelType(fields[2], from, to)
			if err != nil {
				return &ParseError{lineNo, err.Error()}
			}
			if err := sink.Edge(sink.Entity(fields[1], from), sink.Entity(fields[5], to), rel); err != nil {
				return &ParseError{lineNo, err.Error()}
			}
		default:
			return &ParseError{lineNo, fmt.Sprintf("unknown directive %q", fields[0])}
		}
	}
	return sc.Err()
}

// Unmarshal reads a native-format graph.
func Unmarshal(r io.Reader) (*graph.EntityGraph, error) {
	var b graph.Builder
	if err := Decode(r, BuilderSink{&b}); err != nil {
		return nil, err
	}
	return b.Build()
}

// splitQuoted tokenizes a line of space-separated, possibly quoted fields.
func splitQuoted(line string) ([]string, error) {
	var fields []string
	i := 0
	for i < len(line) {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		if i >= len(line) {
			break
		}
		if line[i] == '"' {
			// Find the closing quote, honoring escapes.
			j := i + 1
			for j < len(line) {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == '"' {
					break
				}
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("unterminated quote")
			}
			s, err := strconv.Unquote(line[i : j+1])
			if err != nil {
				return nil, fmt.Errorf("bad quoting: %v", err)
			}
			fields = append(fields, s)
			i = j + 1
		} else {
			j := i
			for j < len(line) && line[j] != ' ' {
				j++
			}
			fields = append(fields, line[i:j])
			i = j
		}
	}
	if len(fields) == 0 {
		return nil, fmt.Errorf("empty line")
	}
	return fields, nil
}

// NTriplesOptions configures ReadNTriples.
type NTriplesOptions struct {
	// TypePredicates are the predicate IRIs treated as type assertions.
	// Defaults to rdf:type (both full IRI and the common "a" shorthand).
	TypePredicates []string
	// DropLiterals discards statements whose object is a literal ("...")
	// rather than an IRI — the paper's preprocessing removed all numeric
	// attribute values; enable this to keep named entities only.
	DropLiterals bool
	// DefaultType is assigned to subjects/objects that never receive an
	// explicit type (entity graphs require every entity to have one).
	// Defaults to "Thing".
	DefaultType string
}

// ReadNTriples parses a subset of N-Triples: lines of
// `<subject> <predicate> <object> .` with IRIs in angle brackets and
// literals in double quotes. Relationship types are keyed by
// (predicate, subject type, object type) using each entity's first declared
// type, mirroring the paper's model where a relationship type determines
// its endpoint types.
func ReadNTriples(r io.Reader, opts NTriplesOptions) (*graph.EntityGraph, error) {
	if opts.DefaultType == "" {
		opts.DefaultType = "Thing"
	}
	typePreds := map[string]bool{
		"http://www.w3.org/1999/02/22-rdf-syntax-ns#type": true,
		"a": true,
	}
	for _, p := range opts.TypePredicates {
		typePreds[p] = true
	}

	type stmt struct{ s, p, o string }
	var typeStmts, relStmts []stmt

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, p, o, isLit, err := parseNTriple(line)
		if err != nil {
			return nil, &ParseError{lineNo, err.Error()}
		}
		if typePreds[p] {
			if isLit {
				return nil, &ParseError{lineNo, "type object must be an IRI"}
			}
			typeStmts = append(typeStmts, stmt{s, p, o})
			continue
		}
		if isLit {
			if opts.DropLiterals {
				continue
			}
			return nil, &ParseError{lineNo, "literal object (enable DropLiterals to skip)"}
		}
		relStmts = append(relStmts, stmt{s, p, o})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	var b graph.Builder
	firstType := map[string]graph.TypeID{}
	for _, st := range typeStmts {
		t := b.Type(st.o)
		b.Entity(st.s, t)
		if _, ok := firstType[st.s]; !ok {
			firstType[st.s] = t
		}
	}
	def := graph.TypeID(graph.None)
	typeOf := func(name string) graph.TypeID {
		if t, ok := firstType[name]; ok {
			return t
		}
		if def == graph.None {
			def = b.Type(opts.DefaultType)
		}
		firstType[name] = def
		return def
	}
	for _, st := range relStmts {
		ft := typeOf(st.s)
		tt := typeOf(st.o)
		rel := b.RelType(st.p, ft, tt)
		b.Edge(b.Entity(st.s, ft), b.Entity(st.o, tt), rel)
	}
	return b.Build()
}

// parseNTriple splits one statement into subject, predicate, object.
func parseNTriple(line string) (s, p, o string, literal bool, err error) {
	line = strings.TrimSuffix(strings.TrimSpace(line), ".")
	line = strings.TrimSpace(line)
	rest := line
	s, rest, err = takeIRI(rest)
	if err != nil {
		return "", "", "", false, fmt.Errorf("subject: %v", err)
	}
	p, rest, err = takeIRI(rest)
	if err != nil {
		return "", "", "", false, fmt.Errorf("predicate: %v", err)
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return "", "", "", false, fmt.Errorf("missing object")
	}
	if rest[0] == '"' {
		// Literal: take through the closing quote, ignore datatype/lang tags.
		j := 1
		for j < len(rest) {
			if rest[j] == '\\' {
				j += 2
				continue
			}
			if rest[j] == '"' {
				break
			}
			j++
		}
		if j >= len(rest) {
			return "", "", "", false, fmt.Errorf("unterminated literal")
		}
		return s, p, rest[1:j], true, nil
	}
	o, rest, err = takeIRI(rest)
	if err != nil {
		return "", "", "", false, fmt.Errorf("object: %v", err)
	}
	if strings.TrimSpace(rest) != "" {
		return "", "", "", false, fmt.Errorf("trailing content %q", rest)
	}
	return s, p, o, false, nil
}

func takeIRI(s string) (iri, rest string, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", "", fmt.Errorf("missing term")
	}
	if s[0] == '<' {
		end := strings.IndexByte(s, '>')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated IRI")
		}
		return s[1:end], s[end+1:], nil
	}
	// Bare token (e.g. the "a" shorthand).
	end := strings.IndexByte(s, ' ')
	if end < 0 {
		return s, "", nil
	}
	return s[:end], s[end:], nil
}

// SortedTypeNames returns the graph's entity type names sorted, a
// convenience for deterministic test assertions on loaded graphs.
func SortedTypeNames(g *graph.EntityGraph) []string {
	names := make([]string, g.NumTypes())
	for i := range names {
		names[i] = g.TypeName(graph.TypeID(i))
	}
	sort.Strings(names)
	return names
}
