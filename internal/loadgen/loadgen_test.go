package loadgen

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/uta-db/previewtables/internal/dynamic"
	"github.com/uta-db/previewtables/internal/fig1"
	"github.com/uta-db/previewtables/internal/score"
	"github.com/uta-db/previewtables/internal/service"
)

// benchServer builds a mutable in-memory fig1 service, the same
// configuration cmd/loadgen defaults to.
func benchServer(t testing.TB) *service.Server {
	t.Helper()
	dg, err := dynamic.FromEntityGraph(fig1.Graph())
	if err != nil {
		t.Fatal(err)
	}
	live, err := dynamic.NewLive(dg, score.DefaultWalkOptions())
	if err != nil {
		t.Fatal(err)
	}
	reg := service.NewRegistry()
	if err := reg.AddLive("fig1", live); err != nil {
		t.Fatal(err)
	}
	return service.New(reg)
}

func edgeBody(i int) string {
	return fmt.Sprintf(`{"edges":[{"from":"Load Actor %d","rel":"Actor","from_type":%q,"to_type":%q,"to":"Gattaca"}]}`,
		i, fig1.FilmActor, fig1.Film)
}

var readPaths = []string{
	"/v1/graphs",
	"/v1/graphs/fig1/stats",
	"/v1/graphs/fig1/preview?k=2&n=3",
	"/v1/graphs/fig1/preview?k=2&n=3&tuples=3",
	"/v1/graphs/fig1/render?k=2&n=3&format=markdown",
}

// TestRunMixedWorkload: a short mixed read/write run completes with no
// request errors, counts add up, the cache is exercised, and latency
// percentiles are ordered.
func TestRunMixedWorkload(t *testing.T) {
	srv := benchServer(t)
	res, err := Run(srv, Config{
		Workers:    4,
		Duration:   300 * time.Millisecond,
		ReadPaths:  readPaths,
		WriteRoute: "/v1/graphs/fig1/edges",
		WriteBody:  edgeBody,
		WriteEvery: 8,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.Requests != res.Reads+res.Writes {
		t.Fatalf("requests %d != reads %d + writes %d", res.Requests, res.Reads, res.Writes)
	}
	if res.Writes == 0 {
		t.Fatal("write arm produced no writes")
	}
	if res.Errors != 0 {
		t.Fatalf("%d request errors", res.Errors)
	}
	if res.CacheHits == 0 || res.CacheMisses == 0 {
		t.Fatalf("mixed workload should both hit and miss the cache: hits %d misses %d", res.CacheHits, res.CacheMisses)
	}
	if !(res.P50MS <= res.P90MS && res.P90MS <= res.P99MS && res.P99MS <= res.MaxMS) {
		t.Fatalf("percentiles out of order: p50 %v p90 %v p99 %v max %v", res.P50MS, res.P90MS, res.P99MS, res.MaxMS)
	}
	if res.RPS <= 0 || res.AllocsPerOp <= 0 {
		t.Fatalf("rps %v allocs/op %v", res.RPS, res.AllocsPerOp)
	}
}

// TestRunConditional: with If-None-Match replay on a read-only
// workload, steady state within one epoch collapses to 304s.
func TestRunConditional(t *testing.T) {
	srv := benchServer(t)
	res, err := Run(srv, Config{
		Workers:     2,
		Duration:    200 * time.Millisecond,
		ReadPaths:   readPaths,
		Conditional: true,
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NotModified == 0 {
		t.Fatal("conditional run produced no 304s")
	}
	// Every request beyond each worker's first sight of a path should
	// revalidate: the 200s are bounded by workers × paths.
	if full := res.Reads - res.NotModified; full > res.Workers*len(readPaths) {
		t.Fatalf("%d full responses, want at most workers×paths = %d", full, res.Workers*len(readPaths))
	}
}

// TestRunRemoteMultiGraph: the Remote adapter drives a real listener
// over sockets, with the write arm round-robined across two graphs'
// write routes — the shape `loadgen -target` uses against a fleet.
func TestRunRemoteMultiGraph(t *testing.T) {
	reg := service.NewRegistry()
	for _, name := range []string{"left", "right"} {
		dg, err := dynamic.FromEntityGraph(fig1.Graph())
		if err != nil {
			t.Fatal(err)
		}
		live, err := dynamic.NewLive(dg, score.DefaultWalkOptions())
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.AddLive(name, live); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(service.New(reg))
	defer ts.Close()

	res, err := Run(Remote(ts.URL), Config{
		Workers:  2,
		Duration: 300 * time.Millisecond,
		ReadPaths: []string{
			"/v1/graphs",
			"/v1/graphs/left/stats",
			"/v1/graphs/right/preview?k=2&n=3",
		},
		WriteRoutes: []string{"/v1/graphs/left/edges", "/v1/graphs/right/edges"},
		WriteBody:   edgeBody,
		WriteEvery:  8,
		Conditional: true,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d request errors", res.Errors)
	}
	// Round-robin across two routes: both graphs must have been written,
	// which shows as at least two writes whenever any landed.
	if res.Writes < 2 {
		t.Fatalf("write arm produced %d writes, want ≥2 across both routes", res.Writes)
	}
	if res.NotModified == 0 {
		t.Fatal("conditional remote run produced no 304s: ETags did not survive the wire")
	}
}

// TestRunRejectsBadConfig: config errors surface instead of hanging.
func TestRunRejectsBadConfig(t *testing.T) {
	srv := benchServer(t)
	if _, err := Run(srv, Config{Duration: time.Millisecond}); err == nil {
		t.Fatal("no read paths: want error")
	}
	if _, err := Run(srv, Config{Duration: time.Millisecond, ReadPaths: readPaths, WriteEvery: 4}); err == nil {
		t.Fatal("WriteEvery without WriteRoute: want error")
	}
	if _, err := Run(srv, Config{Duration: time.Millisecond, ReadPaths: []string{"/v1/graphs/nope/stats"}}); err == nil {
		t.Fatal("failing warmup path: want error")
	}
}
