// Package loadgen drives a previewtables service handler with a mixed
// read/write workload and reports latency percentiles, throughput,
// conditional-GET behavior, response-cache effectiveness and per-request
// allocation cost.
//
// The generator runs in-process: workers call the http.Handler directly
// through httptest.NewRequest and a discarding ResponseWriter, so the
// numbers measure the serving stack — routing, the response cache,
// ETag validation, rendering — without kernel sockets or client-side
// HTTP parsing in the way. That is deliberate: the PR this harness
// lands with is about the read path behind the listener, and an
// in-process driver can saturate it on a single-CPU container where a
// socket-based one would measure the loopback stack instead.
//
// Workloads are deterministic given Config.Seed: every worker derives
// its own PRNG, picks read paths uniformly, and (when configured)
// interleaves one write per WriteEvery requests. In Conditional mode a
// worker remembers the last ETag it saw per path and replays it as
// If-None-Match, so steady-state traffic within an epoch collapses to
// 304s — exactly the cadence a well-behaved HTTP client produces.
package loadgen

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// CacheStatser is the slice of service.Server the generator needs to
// report cache effectiveness; any handler without it just reports
// zeroes.
type CacheStatser interface {
	CacheStats() (hits, misses uint64)
}

// Config describes one load run.
type Config struct {
	// Workers is the number of concurrent request loops.
	Workers int
	// Duration is how long the measured phase runs.
	Duration time.Duration
	// ReadPaths are the GET targets, picked uniformly at random.
	ReadPaths []string
	// WriteRoute, when non-empty, is the POST target (e.g.
	// "/v1/graphs/bench/edges") for the write arm of the workload.
	WriteRoute string
	// WriteRoutes spreads the write arm round-robin across several POST
	// targets — one per graph when driving a fleet, so writes land on
	// every shard. When set it supersedes WriteRoute.
	WriteRoutes []string
	// WriteBody produces the i-th write's request body. Bodies should
	// be pairwise distinct so every write is a real mutation (and a
	// real epoch, invalidating the response cache).
	WriteBody func(i int) string
	// WriteEvery interleaves one write per this many requests on
	// worker 0 (0 disables writes even if WriteRoute is set). Writes
	// stay on one worker so the write rate is a workload parameter,
	// not a function of worker count.
	WriteEvery int
	// Conditional replays each path's last observed ETag as
	// If-None-Match, the way a caching HTTP client would.
	Conditional bool
	// Seed drives all randomness; same seed, same request sequence.
	Seed int64
}

// Result is one run's measurements, shaped for BENCH_serving.json.
type Result struct {
	Workers      int     `json:"workers"`
	DurationMS   float64 `json:"duration_ms"`
	Requests     int     `json:"requests"`
	Reads        int     `json:"reads"`
	Writes       int     `json:"writes"`
	NotModified  int     `json:"not_modified"`
	Errors       int     `json:"errors"`
	RPS          float64 `json:"rps"`
	P50MS        float64 `json:"p50_ms"`
	P90MS        float64 `json:"p90_ms"`
	P99MS        float64 `json:"p99_ms"`
	MaxMS        float64 `json:"max_ms"`
	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
}

// sink is the discarding ResponseWriter: it keeps headers (the
// conditional loop needs ETags) and counts body bytes, allocating
// nothing per write.
type sink struct {
	h      http.Header
	status int
	n      int64
}

func (s *sink) Header() http.Header { return s.h }
func (s *sink) WriteHeader(c int)   { s.status = c }
func (s *sink) Write(p []byte) (int, error) {
	if s.status == 0 {
		s.status = http.StatusOK
	}
	s.n += int64(len(p))
	return len(p), nil
}

// worker is one request loop's private state and tallies.
type worker struct {
	rng       *rand.Rand
	etags     map[string]string
	latencies []time.Duration
	reads     int
	writes    int
	notMod    int
	errs      []string
}

// Run drives h with cfg's workload and returns the measurements. The
// handler is warmed first (one GET per read path, excluded from the
// measured window) so cold scoring precomputation does not smear the
// percentiles; pass the same paths cold via a fresh handler to measure
// cold starts instead.
func Run(h http.Handler, cfg Config) (Result, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if len(cfg.ReadPaths) == 0 {
		return Result{}, fmt.Errorf("loadgen: no read paths")
	}
	if len(cfg.WriteRoutes) == 0 && cfg.WriteRoute != "" {
		cfg.WriteRoutes = []string{cfg.WriteRoute}
	}
	if cfg.WriteEvery > 0 && (len(cfg.WriteRoutes) == 0 || cfg.WriteBody == nil) {
		return Result{}, fmt.Errorf("loadgen: WriteEvery set without WriteRoutes and WriteBody")
	}
	for _, p := range cfg.ReadPaths {
		s := &sink{h: make(http.Header)}
		h.ServeHTTP(s, httptest.NewRequest(http.MethodGet, p, nil))
		if s.status != http.StatusOK {
			return Result{}, fmt.Errorf("loadgen: warmup GET %s: status %d", p, s.status)
		}
	}

	statser, _ := h.(CacheStatser)
	var hits0, misses0 uint64
	if statser != nil {
		hits0, misses0 = statser.CacheStats()
	}
	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	workers := make([]*worker, cfg.Workers)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for i := range workers {
		w := &worker{
			rng:   rand.New(rand.NewSource(cfg.Seed + int64(i)*7919)),
			etags: make(map[string]string),
		}
		workers[i] = w
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			writeN := 0
			for req := 0; ; req++ {
				select {
				case <-stop:
					return
				default:
				}
				if id == 0 && cfg.WriteEvery > 0 && req%cfg.WriteEvery == cfg.WriteEvery-1 {
					w.doWrite(h, cfg, writeN)
					writeN++
					continue
				}
				w.doRead(h, cfg)
			}
		}(i)
	}
	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	res := Result{Workers: cfg.Workers, DurationMS: float64(elapsed.Microseconds()) / 1000}
	var all []time.Duration
	for _, w := range workers {
		res.Reads += w.reads
		res.Writes += w.writes
		res.NotModified += w.notMod
		res.Errors += len(w.errs)
		all = append(all, w.latencies...)
		if res.Errors > 0 && len(w.errs) > 0 {
			return res, fmt.Errorf("loadgen: %d request errors, first: %s", res.Errors, w.errs[0])
		}
	}
	res.Requests = res.Reads + res.Writes
	if res.Requests == 0 {
		return res, fmt.Errorf("loadgen: no requests completed in %v", cfg.Duration)
	}
	res.RPS = float64(res.Requests) / elapsed.Seconds()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.P50MS = ms(percentile(all, 0.50))
	res.P90MS = ms(percentile(all, 0.90))
	res.P99MS = ms(percentile(all, 0.99))
	res.MaxMS = ms(all[len(all)-1])
	if statser != nil {
		hits, misses := statser.CacheStats()
		res.CacheHits = hits - hits0
		res.CacheMisses = misses - misses0
		if total := res.CacheHits + res.CacheMisses; total > 0 {
			res.CacheHitRate = float64(res.CacheHits) / float64(total)
		}
	}
	res.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(res.Requests)
	res.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(res.Requests)
	return res, nil
}

func (w *worker) doRead(h http.Handler, cfg Config) {
	path := cfg.ReadPaths[w.rng.Intn(len(cfg.ReadPaths))]
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if cfg.Conditional {
		if tag := w.etags[path]; tag != "" {
			req.Header.Set("If-None-Match", tag)
		}
	}
	s := &sink{h: make(http.Header)}
	t0 := time.Now()
	h.ServeHTTP(s, req)
	w.latencies = append(w.latencies, time.Since(t0))
	w.reads++
	switch s.status {
	case http.StatusOK:
		if cfg.Conditional {
			if tag := s.h.Get("ETag"); tag != "" {
				w.etags[path] = tag
			}
		}
	case http.StatusNotModified:
		w.notMod++
	default:
		w.errs = append(w.errs, fmt.Sprintf("GET %s: status %d", path, s.status))
	}
}

func (w *worker) doWrite(h http.Handler, cfg Config, n int) {
	route := cfg.WriteRoutes[n%len(cfg.WriteRoutes)]
	req := httptest.NewRequest(http.MethodPost, route, strings.NewReader(cfg.WriteBody(n)))
	req.Header.Set("Content-Type", "application/json")
	s := &sink{h: make(http.Header)}
	t0 := time.Now()
	h.ServeHTTP(s, req)
	w.latencies = append(w.latencies, time.Since(t0))
	w.writes++
	if s.status != http.StatusOK {
		w.errs = append(w.errs, fmt.Sprintf("POST %s: status %d", route, s.status))
	}
}

// Remote adapts a live HTTP endpoint into the http.Handler the
// generator drives: each in-process request is re-issued as a real
// request against base, and the response is copied back verbatim. The
// same workload, warmup and measurement code then exercises a running
// previewd node or the fleet router over actual sockets — which is the
// point when measuring router overhead: the wire belongs in the path.
func Remote(base string) http.Handler {
	base = strings.TrimRight(base, "/")
	client := &http.Client{}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		out, err := http.NewRequest(r.Method, base+r.URL.RequestURI(), r.Body)
		if err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprintln(w, err)
			return
		}
		out.Header = r.Header.Clone()
		resp, err := client.Do(out)
		if err != nil {
			// Surfaces in the run's error tally with the request line.
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	})
}

// percentile reads the p-quantile from an ascending latency slice by
// the nearest-rank method.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}
