// Package dynamic maintains preview scoring measures incrementally under a
// stream of entity-graph updates.
//
// Sec. 5 of the paper observes that "both the schema graph and the scoring
// measures ... can be incrementally updated when the underlying entity
// graph is updated (detailed discussion omitted)". This package supplies
// the omitted machinery:
//
//   - coverage scores and relationship-instance counts are plain counters;
//   - the entropy measure's per-attribute value-set group histograms are
//     updated in O(deg) per edge insertion (move the affected tuple from
//     its old group to its new one);
//   - the random-walk measure is recomputed from the maintained schema
//     weights in O(K²) per refresh — independent of the entity graph's
//     size, which is the expensive part.
//
// Emitting a score.Set after u updates therefore costs O(u·deg + K² + K·N)
// instead of the O(|Vd| + |Ed|) full rescan of score.Compute. The paper's
// companion observation — "the optimal previews cannot be incrementally
// updated" — still holds: rerun discovery on the refreshed Set.
package dynamic

import (
	"fmt"
	"math"
	"sort"

	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/score"
)

// Graph is a mutable entity graph with incrementally maintained scoring
// state. The zero value is ready to use. It is not safe for concurrent
// mutation.
type Graph struct {
	typeNames  []string
	typeByName map[string]graph.TypeID

	rels     []graph.RelType
	relByKey map[relKey]graph.RelTypeID

	entNames  []string
	entTypes  [][]graph.TypeID
	entByName map[string]graph.EntityID
	coverage  []int // per type

	edges int

	// hist[rel][dir] maintains the entropy bookkeeping of one attribute
	// orientation: dir 0 = outgoing (tuples are source entities of the
	// relationship's From type), dir 1 = incoming.
	hist [][2]*valueHist

	// walkPi is the stationary distribution of the previous Scores call,
	// used to warm-start power iteration: one update batch perturbs the
	// schema weights only slightly, so the old π is already near the new
	// fixed point and re-solving takes a handful of iterations.
	walkPi []float64

	// dirtyTypes collects, since the last resetDirty, the entity types
	// whose per-type measure inputs (coverage counter, incident entropy
	// histograms, incident relationship counts) moved — the set downstream
	// incremental discovery re-ranks instead of every type. structural
	// records that the schema itself changed (new type or relationship
	// type), which voids any incremental carry-forward.
	dirtyTypes map[graph.TypeID]struct{}
	structural bool
}

// markDirty records that type t's measure inputs moved.
func (g *Graph) markDirty(t graph.TypeID) {
	if g.dirtyTypes == nil {
		g.dirtyTypes = map[graph.TypeID]struct{}{}
	}
	g.dirtyTypes[t] = struct{}{}
}

// resetDirty clears the dirty-tracking state; the next takeDirty reports
// only mutations from this point on.
func (g *Graph) resetDirty() {
	g.dirtyTypes = nil
	g.structural = false
}

// takeDirty returns the types dirtied since the last resetDirty (sorted,
// for determinism) and whether a structural change occurred.
func (g *Graph) takeDirty() ([]graph.TypeID, bool) {
	if len(g.dirtyTypes) == 0 {
		return nil, g.structural
	}
	ts := make([]graph.TypeID, 0, len(g.dirtyTypes))
	for t := range g.dirtyTypes {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(a, b int) bool { return ts[a] < ts[b] })
	return ts, g.structural
}

type relKey struct {
	name     string
	from, to graph.TypeID
}

// valueHist tracks, per tuple (entity), its current deduplicated value set
// on one attribute, and the histogram of value sets across tuples — the
// inputs to the entropy measure. Alongside the histogram it maintains the
// two aggregates the entropy formula needs — the non-empty tuple count and
// Σ c·log10(c) over group counts — so emitting the entropy is O(1) instead
// of a scan over every group.
type valueHist struct {
	values map[graph.EntityID][]graph.EntityID // sorted, deduplicated
	groups map[string]int                      // value-set key → tuple count
	total  int                                 // Σ counts (non-empty tuples)
	clogc  float64                             // Σ c·log10(c) over groups
}

func newValueHist() *valueHist {
	return &valueHist{
		values: map[graph.EntityID][]graph.EntityID{},
		groups: map[string]int{},
	}
}

// add records that tuple e gained value v; reports whether the value was
// new for the tuple (parallel edges do not change value sets).
func (h *valueHist) add(e, v graph.EntityID) bool {
	vals := h.values[e]
	i := sort.Search(len(vals), func(i int) bool { return vals[i] >= v })
	if i < len(vals) && vals[i] == v {
		return false
	}
	if len(vals) > 0 {
		h.bump(vals, -1)
	}
	vals = append(vals, 0)
	copy(vals[i+1:], vals[i:])
	vals[i] = v
	h.values[e] = vals
	h.bump(vals, +1)
	return true
}

func (h *valueHist) bump(vals []graph.EntityID, delta int) {
	k := setKey(vals)
	c := h.groups[k]
	h.clogc += clog(c+delta) - clog(c)
	h.total += delta
	h.groups[k] = c + delta
	if h.groups[k] == 0 {
		delete(h.groups, k)
	}
}

// clog is c·log10(c) with the 0·log(0) = 0 convention.
func clog(c int) float64 {
	if c <= 1 {
		return 0
	}
	return float64(c) * math.Log10(float64(c))
}

// entropy computes Sτent(γ) from the maintained aggregates in O(1):
// H = Σ (c/T)·log10(T/c) = log10(T) − (Σ c·log10 c)/T (log base 10,
// tuples with empty values excluded — they are simply absent from the
// maps). The running Σ c·log10 c accumulates float error on the order of
// one ulp per histogram move, far below the measure's meaningful
// resolution; the result is clamped at 0 so a drifted aggregate can never
// report a (meaningless) negative entropy.
func (h *valueHist) entropy() float64 {
	if h.total == 0 {
		return 0
	}
	e := math.Log10(float64(h.total)) - h.clogc/float64(h.total)
	if e < 0 {
		return 0
	}
	return e
}

func setKey(vals []graph.EntityID) string {
	buf := make([]byte, 0, len(vals)*4)
	for _, id := range vals {
		buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(buf)
}

// Type declares (or finds) an entity type.
func (g *Graph) Type(name string) graph.TypeID {
	if g.typeByName == nil {
		g.typeByName = map[string]graph.TypeID{}
	}
	if id, ok := g.typeByName[name]; ok {
		return id
	}
	id := graph.TypeID(len(g.typeNames))
	g.typeNames = append(g.typeNames, name)
	g.coverage = append(g.coverage, 0)
	g.typeByName[name] = id
	g.structural = true
	return id
}

// RelType declares (or finds) a relationship type.
func (g *Graph) RelType(name string, from, to graph.TypeID) (graph.RelTypeID, error) {
	if int(from) >= len(g.typeNames) || int(to) >= len(g.typeNames) || from < 0 || to < 0 {
		return graph.None, fmt.Errorf("dynamic: relationship %q: unknown endpoint type", name)
	}
	if g.relByKey == nil {
		g.relByKey = map[relKey]graph.RelTypeID{}
	}
	k := relKey{name, from, to}
	if id, ok := g.relByKey[k]; ok {
		return id, nil
	}
	id := graph.RelTypeID(len(g.rels))
	g.rels = append(g.rels, graph.RelType{Name: name, From: from, To: to})
	g.hist = append(g.hist, [2]*valueHist{newValueHist(), newValueHist()})
	g.relByKey[k] = id
	g.structural = true
	return id, nil
}

// Entity declares (or finds) an entity, adding any new types to it.
// Coverage counters update incrementally.
func (g *Graph) Entity(name string, types ...graph.TypeID) graph.EntityID {
	if g.entByName == nil {
		g.entByName = map[string]graph.EntityID{}
	}
	id, ok := g.entByName[name]
	if !ok {
		id = graph.EntityID(len(g.entNames))
		g.entNames = append(g.entNames, name)
		g.entTypes = append(g.entTypes, nil)
		g.entByName[name] = id
	}
	for _, t := range types {
		g.addType(id, t)
	}
	return id
}

func (g *Graph) addType(e graph.EntityID, t graph.TypeID) {
	ts := g.entTypes[e]
	i := sort.Search(len(ts), func(i int) bool { return ts[i] >= t })
	if i < len(ts) && ts[i] == t {
		return
	}
	ts = append(ts, 0)
	copy(ts[i+1:], ts[i:])
	ts[i] = t
	g.entTypes[e] = ts
	g.coverage[t]++
	g.markDirty(t)
}

// AddEdge inserts one relationship instance and updates every affected
// measure input: the relationship's instance count (coverage measure and
// walk weight), the endpoints' types (coverage), and both orientations'
// value-set histograms (entropy). Cost is O(log deg + deg) for the
// value-set maintenance of the two affected tuples.
func (g *Graph) AddEdge(from, to graph.EntityID, rel graph.RelTypeID) error {
	if int(from) >= len(g.entNames) || int(to) >= len(g.entNames) || from < 0 || to < 0 {
		return fmt.Errorf("dynamic: edge endpoint out of range")
	}
	if int(rel) >= len(g.rels) || rel < 0 {
		return fmt.Errorf("dynamic: unknown relationship type %d", rel)
	}
	rt := g.rels[rel]
	g.addType(from, rt.From)
	g.addType(to, rt.To)
	g.rels[rel].EdgeCount++
	g.edges++
	g.hist[rel][0].add(from, to)
	g.hist[rel][1].add(to, from)
	// The edge moves the relationship count and both orientations'
	// entropy — non-key inputs of exactly the two endpoint types.
	g.markDirty(rt.From)
	g.markDirty(rt.To)
	return nil
}

// TypeName returns the name of a declared type.
func (g *Graph) TypeName(t graph.TypeID) string { return g.typeNames[int(t)] }

// TypeByName finds a declared type without declaring it.
func (g *Graph) TypeByName(name string) (graph.TypeID, bool) {
	id, ok := g.typeByName[name]
	return id, ok
}

// Rel returns one relationship type record (including its maintained
// instance count). Relationship types are keyed by (name, from, to), so
// one surface name may map to several types (the paper's "Award Winners"
// spans both actors and directors) — resolving a bare name to a type is
// the caller's policy.
func (g *Graph) Rel(id graph.RelTypeID) graph.RelType { return g.rels[int(id)] }

// FromEntityGraph streams an immutable entity graph into a fresh mutable
// Graph. Declaration order follows the source graph's ID order, so every
// type, relationship-type and entity ID is preserved — a frozen view of
// the result is interchangeable with the source.
func FromEntityGraph(src *graph.EntityGraph) (*Graph, error) {
	g := &Graph{}
	for t := 0; t < src.NumTypes(); t++ {
		g.Type(src.TypeName(graph.TypeID(t)))
	}
	for r := 0; r < src.NumRelTypes(); r++ {
		rt := src.RelType(graph.RelTypeID(r))
		if _, err := g.RelType(rt.Name, rt.From, rt.To); err != nil {
			return nil, err
		}
	}
	for e := 0; e < src.NumEntities(); e++ {
		ent := src.Entity(graph.EntityID(e))
		g.Entity(ent.Name, ent.Types...)
	}
	for i := 0; i < src.NumEdges(); i++ {
		ed := src.Edge(graph.EdgeID(i))
		if err := g.AddEdge(ed.From, ed.To, ed.Rel); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Stats returns current size statistics.
func (g *Graph) Stats() graph.Stats {
	return graph.Stats{
		Entities: len(g.entNames),
		Edges:    g.edges,
		Types:    len(g.typeNames),
		RelTypes: len(g.rels),
	}
}

// Schema builds the current schema graph (O(K + N)).
func (g *Graph) Schema() (*graph.Schema, error) {
	return graph.NewSchema(g.typeNames, g.rels)
}

// Scores assembles a score.Set from the incrementally maintained state:
// coverage and entropy read off the maintained counters and histograms;
// the random walk is re-solved on the (small) schema graph. No entity or
// edge is revisited.
func (g *Graph) Scores(opts score.WalkOptions) (*score.Set, error) {
	s, err := g.Schema()
	if err != nil {
		return nil, err
	}
	n := s.NumTypes()
	keyCov := make([]float64, n)
	for t := 0; t < n; t++ {
		keyCov[t] = float64(g.coverage[t])
	}
	keyWalk := score.StationaryDistributionWarm(s, opts, g.walkPi)
	g.walkPi = append(g.walkPi[:0], keyWalk...)
	nonKeyCov := make([][]float64, n)
	nonKeyEnt := make([][]float64, n)
	for t := 0; t < n; t++ {
		incs := s.Incident(graph.TypeID(t))
		cov := make([]float64, len(incs))
		ent := make([]float64, len(incs))
		for i, inc := range incs {
			cov[i] = float64(g.rels[inc.Rel].EdgeCount)
			dir := 1
			if inc.Outgoing {
				dir = 0
			}
			ent[i] = g.hist[inc.Rel][dir].entropy()
		}
		nonKeyCov[t] = cov
		nonKeyEnt[t] = ent
	}
	return score.NewSet(s, keyCov, keyWalk, nonKeyCov, nonKeyEnt)
}

// Freeze materializes the current state as an immutable EntityGraph for
// interop with rendering and tuple materialization. This is a full O(|Vd| +
// |Ed|) rebuild — use it when you need tuples, not scores.
//
// Note: Freeze rebuilds edges from the deduplicated value sets, so parallel
// duplicate edges collapse; every scoring measure is unaffected except
// relationship coverage, which Freeze preserves by construction through
// the maintained counts (the rebuilt graph re-counts, so its counts reflect
// the deduplicated edges — documented divergence for multigraph duplicates).
func (g *Graph) Freeze() (*graph.EntityGraph, error) {
	var b graph.Builder
	for _, name := range g.typeNames {
		b.Type(name)
	}
	relIDs := make([]graph.RelTypeID, len(g.rels))
	for i, r := range g.rels {
		relIDs[i] = b.RelType(r.Name, r.From, r.To)
	}
	for i, name := range g.entNames {
		b.Entity(name, g.entTypes[i]...)
	}
	for ri := range g.rels {
		h := g.hist[ri][0]
		// Deterministic edge order: sources ascending, then values.
		srcs := make([]graph.EntityID, 0, len(h.values))
		for e := range h.values {
			srcs = append(srcs, e)
		}
		sort.Slice(srcs, func(a, b int) bool { return srcs[a] < srcs[b] })
		for _, e := range srcs {
			for _, v := range h.values[e] {
				b.Edge(b.Entity(g.entNames[e]), b.Entity(g.entNames[v]), relIDs[ri])
			}
		}
	}
	return b.Build()
}
