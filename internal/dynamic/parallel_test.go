package dynamic_test

// The incremental refresh inherits its parallelism from the WalkOptions
// every call already threads through; this test proves the warm-started
// path emits bit-identical score sets at any worker count, batch after
// batch.

import (
	"testing"

	"github.com/uta-db/previewtables/internal/dynamic"
	"github.com/uta-db/previewtables/internal/freebase"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/score"
)

func TestIncrementalRefreshParallelBitIdentical(t *testing.T) {
	src, err := freebase.Generate("basketball", freebase.GenOptions{
		Scale: 1e-4, Seed: 21, MinEntities: 300, MinEdges: 1200,
	})
	if err != nil {
		t.Fatal(err)
	}

	seqOpts := score.DefaultWalkOptions()
	parOpts := seqOpts
	parOpts.Parallelism = 4

	mk := func() *dynamic.Graph {
		g, err := dynamic.FromEntityGraph(src)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	seqG, parG := mk(), mk()

	// Same update stream against both graphs: a few batches of edges
	// between existing entities, refreshing (and comparing) after each.
	rel := graph.RelTypeID(0)
	rt := src.RelType(rel)
	froms := src.EntitiesOfType(rt.From)
	tos := src.EntitiesOfType(rt.To)
	for batch := 0; batch < 4; batch++ {
		for j := 0; j < 8; j++ {
			from := froms[(batch*13+j*7)%len(froms)]
			to := tos[(batch*11+j*5)%len(tos)]
			if err := seqG.AddEdge(from, to, rel); err != nil {
				t.Fatal(err)
			}
			if err := parG.AddEdge(from, to, rel); err != nil {
				t.Fatal(err)
			}
		}
		seqSet, err := seqG.Scores(seqOpts)
		if err != nil {
			t.Fatal(err)
		}
		parSet, err := parG.Scores(parOpts)
		if err != nil {
			t.Fatal(err)
		}
		s := seqSet.Schema()
		for ti := 0; ti < s.NumTypes(); ti++ {
			tid := graph.TypeID(ti)
			for _, km := range []score.KeyMeasure{score.KeyCoverage, score.KeyRandomWalk} {
				if a, b := seqSet.Key(km, tid), parSet.Key(km, tid); a != b {
					t.Fatalf("batch %d: key %v score of type %d diverges: %v vs %v", batch, km, ti, a, b)
				}
			}
			for i := range s.Incident(tid) {
				for _, nm := range []score.NonKeyMeasure{score.NonKeyCoverage, score.NonKeyEntropy} {
					if a, b := seqSet.NonKey(nm, tid, i), parSet.NonKey(nm, tid, i); a != b {
						t.Fatalf("batch %d: non-key %v score of (%d, %d) diverges: %v vs %v", batch, nm, ti, i, a, b)
					}
				}
			}
		}
	}
}
