// Live graphs: a concurrency-safe facade over Graph that serializes
// mutation batches and publishes immutable, epoch-versioned snapshots for
// readers. Writers take a mutex; readers never block — they load the
// current Snapshot through an atomic pointer and keep using it for the
// whole request, so an in-flight preview sees one consistent (graph,
// scores, epoch) triple no matter how many batches land meanwhile.
//
// Each successful batch bumps the epoch by one and refreshes the scores
// through the incremental path (Graph.Scores: O(u·deg) histogram moves
// already paid during mutation, an O(K²)-per-iteration warm-started walk
// re-solve, and an O(K + N) assembly) instead of score.Compute's
// O(|Vd| + |Ed|) rescan. The frozen entity graph — needed only to
// materialize tuples — is rebuilt per publication; it is the one full-scan
// cost of the write path, and it buys readers lock-free access to a graph
// that can never change underneath them.
package dynamic

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/score"
)

// Snapshot is one published epoch of a live graph: the frozen entity
// graph, its score set, and size statistics, all taken at the same
// instant. Snapshots are immutable; readers share them freely.
//
// One documented asymmetry (inherited from Graph.Freeze): the entity
// graph is a multigraph, so Stats.Edges and the coverage measures count
// parallel duplicate edges — a client that retries an already-applied
// batch inflates them — while Frozen and the entropy measure collapse
// duplicates. Every other measure is unaffected. Clients wanting
// exactly-once semantics should check the stats epoch before retrying a
// batch whose response was lost.
type Snapshot struct {
	// Epoch counts successful mutation batches since the graph was made
	// live. The initial load is epoch 0.
	Epoch uint64
	// Stats are the live graph's statistics at publication.
	Stats graph.Stats
	// Scores is the incrementally refreshed score set.
	Scores *score.Set
	// Frozen is the immutable entity graph for tuple materialization.
	Frozen *graph.EntityGraph
}

// Live wraps a Graph for concurrent serving: Apply serializes writers and
// publishes a fresh Snapshot per batch; Snapshot hands readers the
// current one without blocking.
type Live struct {
	opts score.WalkOptions

	mu sync.Mutex // serializes mutation + publication
	g  *Graph

	snap      atomic.Pointer[Snapshot]
	refreshes atomic.Int64
}

// NewLive publishes g's current state as epoch 0 and returns the facade.
// The caller must not touch g directly afterwards — all further mutation
// goes through Apply.
func NewLive(g *Graph, opts score.WalkOptions) (*Live, error) {
	l := &Live{opts: opts, g: g}
	if err := l.publishLocked(0); err != nil {
		return nil, err
	}
	return l, nil
}

// Snapshot returns the current published snapshot. It never blocks, not
// even against an in-progress Apply.
func (l *Live) Snapshot() *Snapshot { return l.snap.Load() }

// Refreshes reports how many score refreshes Apply has published — with
// the epoch discipline working it equals the number of successful batches
// (the initial NewLive publication is not counted).
func (l *Live) Refreshes() int64 { return l.refreshes.Load() }

// Apply runs one mutation batch under the writer lock and, if it
// succeeds, refreshes the scores incrementally and publishes the next
// epoch. mutate must validate before mutating: a failed batch publishes
// no epoch, so any mutation it already performed would silently leak into
// the next successful epoch — and a mutation that breaks the data model
// itself (say, an entity declared with no type) is worse still: it is
// never rolled back, so every later publication fails at Freeze until
// restart. The HTTP write routes uphold the contract by construction;
// new callers must too. Concurrent Apply calls serialize; readers are
// never blocked.
func (l *Live) Apply(mutate func(*Graph) error) (*Snapshot, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := mutate(l.g); err != nil {
		return nil, err
	}
	if err := l.publishLocked(l.snap.Load().Epoch + 1); err != nil {
		return nil, err
	}
	l.refreshes.Add(1)
	return l.snap.Load(), nil
}

// publishLocked refreshes scores through the incremental path, freezes
// the entity graph, and swaps in the new snapshot. Callers hold l.mu.
func (l *Live) publishLocked(epoch uint64) error {
	scores, err := l.g.Scores(l.opts)
	if err != nil {
		return fmt.Errorf("dynamic: refreshing scores: %w", err)
	}
	frozen, err := l.g.Freeze()
	if err != nil {
		return fmt.Errorf("dynamic: freezing graph: %w", err)
	}
	l.snap.Store(&Snapshot{
		Epoch:  epoch,
		Stats:  l.g.Stats(),
		Scores: scores,
		Frozen: frozen,
	})
	return nil
}
