// Live graphs: a concurrency-safe facade over Graph that serializes
// mutation batches and publishes immutable, epoch-versioned snapshots for
// readers. Writers take a mutex; readers never block — they load the
// current Snapshot through an atomic pointer and keep using it for the
// whole request, so an in-flight preview sees one consistent (graph,
// scores, epoch) triple no matter how many batches land meanwhile.
//
// Each successful batch bumps the epoch by one and refreshes the scores
// through the incremental path (Graph.Scores: O(u·deg) histogram moves
// already paid during mutation, an O(K²)-per-iteration warm-started walk
// re-solve, and an O(K + N) assembly) instead of score.Compute's
// O(|Vd| + |Ed|) rescan. The frozen entity graph — needed only to
// materialize tuples — is rebuilt per publication; it is the one full-scan
// cost of the write path, and it buys readers lock-free access to a graph
// that can never change underneath them.
package dynamic

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/score"
)

// ErrWedged is returned by writes to a Live whose durability hook has
// failed. The in-memory graph and the log may then disagree, so no
// further mutation is allowed: the last published snapshot keeps
// serving reads, and a restart recovers exactly the durable state.
var ErrWedged = errors.New("dynamic: live graph wedged by an earlier durability failure; restart to recover")

// A DurabilityHook persists one applied batch before its epoch is
// published. It receives the epoch the batch will create, a
// caller-defined kind tag, and the batch's replayable payload; returning
// an error aborts publication and wedges the Live (see ErrWedged). The
// hook runs under the writer lock, so calls are serialized and epochs
// arrive contiguously.
type DurabilityHook func(epoch uint64, kind byte, payload []byte) error

// Snapshot is one published epoch of a live graph: the frozen entity
// graph, its score set, and size statistics, all taken at the same
// instant. Snapshots are immutable; readers share them freely.
//
// One documented asymmetry (inherited from Graph.Freeze): the entity
// graph is a multigraph, so Stats.Edges and the coverage measures count
// parallel duplicate edges — a client that retries an already-applied
// batch inflates them — while Frozen and the entropy measure collapse
// duplicates. Every other measure is unaffected. Clients wanting
// exactly-once semantics should check the stats epoch before retrying a
// batch whose response was lost.
type Snapshot struct {
	// Epoch counts successful mutation batches since the graph was made
	// live. The initial load is epoch 0.
	Epoch uint64
	// Stats are the live graph's statistics at publication.
	Stats graph.Stats
	// Scores is the incrementally refreshed score set.
	Scores *score.Set
	// Frozen is the immutable entity graph for tuple materialization.
	Frozen *graph.EntityGraph
	// Dirty lists (sorted) the entity types whose measure inputs moved in
	// the batch that produced this epoch — the delta incremental discovery
	// re-ranks. nil when nothing moved or on a structural publication.
	Dirty []graph.TypeID
	// Structural marks a publication that is not a single incremental step
	// from its predecessor: the initial load, recovery, resync, or a batch
	// that changed the schema (new type or relationship type). Consumers
	// carrying state across epochs must rebuild from scratch at one.
	Structural bool
}

// Live wraps a Graph for concurrent serving: Apply serializes writers and
// publishes a fresh Snapshot per batch; Snapshot hands readers the
// current one without blocking.
type Live struct {
	opts score.WalkOptions

	mu     sync.Mutex // serializes mutation + publication
	g      *Graph
	hook   DurabilityHook // nil = volatile
	wedged error          // sticky durability failure; see ErrWedged

	snap      atomic.Pointer[Snapshot]
	refreshes atomic.Int64
}

// NewLive publishes g's current state as epoch 0 and returns the facade.
// The caller must not touch g directly afterwards — all further mutation
// goes through Apply.
func NewLive(g *Graph, opts score.WalkOptions) (*Live, error) {
	return NewLiveAt(g, opts, 0)
}

// NewLiveAt publishes g's current state at the given epoch. Recovery
// uses it to resume exactly where the durable state ends: g is the
// checkpoint graph with the WAL tail already replayed, and epoch is the
// last recovered epoch, so the next batch publishes epoch+1 and the
// epoch sequence has no seam across the restart.
func NewLiveAt(g *Graph, opts score.WalkOptions, epoch uint64) (*Live, error) {
	l := &Live{opts: opts, g: g}
	// The initial publication is structural by definition: nothing
	// precedes it to be incremental from.
	if err := l.publishLocked(epoch, nil, true); err != nil {
		return nil, err
	}
	return l, nil
}

// SetDurability installs the hook that persists every batch before its
// epoch is published. Install it before the first write: batches applied
// earlier were not logged and will not survive a crash. Passing nil
// removes the hook.
func (l *Live) SetDurability(hook DurabilityHook) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.hook = hook
}

// Snapshot returns the current published snapshot. It never blocks, not
// even against an in-progress Apply.
func (l *Live) Snapshot() *Snapshot { return l.snap.Load() }

// Refreshes reports how many score refreshes Apply has published — with
// the epoch discipline working it equals the number of successful batches
// (the initial NewLive publication is not counted).
func (l *Live) Refreshes() int64 { return l.refreshes.Load() }

// Apply runs one mutation batch under the writer lock and, if it
// succeeds, refreshes the scores incrementally and publishes the next
// epoch. mutate must validate before mutating: a failed batch publishes
// no epoch, so any mutation it already performed would silently leak into
// the next successful epoch — and a mutation that breaks the data model
// itself (say, an entity declared with no type) is worse still: it is
// never rolled back, so every later publication fails at Freeze until
// restart. The HTTP write routes uphold the contract by construction;
// new callers must too. Concurrent Apply calls serialize; readers are
// never blocked.
//
// Apply is the volatile write path: it carries no replayable payload, so
// it refuses to run on a Live with a durability hook installed — a batch
// applied but never logged would silently vanish on crash. Durable
// callers use ApplyBatch.
func (l *Live) Apply(mutate func(*Graph) error) (*Snapshot, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.hook != nil {
		return nil, errors.New("dynamic: Apply on a durable live graph; use ApplyBatch with a replayable payload")
	}
	return l.applyLocked(0, nil, mutate)
}

// ApplyBatch is Apply for durable live graphs: kind and payload are the
// batch's replayable form, handed to the durability hook (with the epoch
// the batch creates) after the mutation succeeds and before the epoch is
// published. Ordering is the durability contract: when ApplyBatch
// returns, an acknowledged batch is on stable storage; when the hook
// fails, the epoch is never published — readers keep the previous
// snapshot — and the Live wedges (ErrWedged) because the in-memory graph
// already contains a mutation the log does not.
//
// Without a hook installed, ApplyBatch behaves exactly like Apply.
func (l *Live) ApplyBatch(kind byte, payload []byte, mutate func(*Graph) error) (*Snapshot, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.applyLocked(kind, payload, mutate)
}

// ApplyShipped applies one replicated batch at the epoch its leader
// assigned: the follower half of WAL shipping. It is ApplyBatch with the
// epoch checked instead of chosen — the shipped record must create
// exactly the next epoch (a gap means records were lost in transit; a
// stale epoch means the batch is already applied), and everything else
// runs through the same machinery as a local write: the mutation under
// the writer lock, the durability hook (the follower's own WAL, so a
// replica is durable in its own right), and the epoch publication. A
// follower that only ever applies shipped batches therefore replays the
// leader's exact state sequence, which is what makes its reads
// byte-identical.
func (l *Live) ApplyShipped(epoch uint64, kind byte, payload []byte, mutate func(*Graph) error) (*Snapshot, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cur := l.snap.Load().Epoch; epoch != cur+1 {
		return nil, fmt.Errorf("dynamic: shipped batch carries epoch %d, want %d", epoch, cur+1)
	}
	return l.applyLocked(kind, payload, mutate)
}

func (l *Live) applyLocked(kind byte, payload []byte, mutate func(*Graph) error) (*Snapshot, error) {
	if l.wedged != nil {
		return nil, fmt.Errorf("%w: %v", ErrWedged, l.wedged)
	}
	l.g.resetDirty()
	if err := mutate(l.g); err != nil {
		return nil, err
	}
	epoch := l.snap.Load().Epoch + 1
	dirty, structural := l.g.takeDirty()
	if l.hook != nil {
		if err := l.hook(epoch, kind, payload); err != nil {
			l.wedged = err
			return nil, fmt.Errorf("dynamic: logging batch for epoch %d: %w", epoch, err)
		}
	}
	if err := l.publishLocked(epoch, dirty, structural); err != nil {
		if l.hook != nil {
			// The batch is already in the log; failing to publish it leaves
			// log, memory and published epoch mutually inconsistent (and the
			// logged batch would materialize on restart despite this error
			// response) — same disagreement as a hook failure, same remedy.
			l.wedged = err
		}
		return nil, err
	}
	l.refreshes.Add(1)
	return l.snap.Load(), nil
}

// publishLocked refreshes scores through the incremental path, freezes
// the entity graph, and swaps in the new snapshot carrying the batch's
// dirty-type delta. Callers hold l.mu.
func (l *Live) publishLocked(epoch uint64, dirty []graph.TypeID, structural bool) error {
	scores, err := l.g.Scores(l.opts)
	if err != nil {
		return fmt.Errorf("dynamic: refreshing scores: %w", err)
	}
	frozen, err := l.g.Freeze()
	if err != nil {
		return fmt.Errorf("dynamic: freezing graph: %w", err)
	}
	if structural {
		dirty = nil
	}
	l.snap.Store(&Snapshot{
		Epoch:      epoch,
		Stats:      l.g.Stats(),
		Scores:     scores,
		Frozen:     frozen,
		Dirty:      dirty,
		Structural: structural,
	})
	return nil
}
