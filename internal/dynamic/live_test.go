package dynamic_test

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/uta-db/previewtables/internal/dynamic"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/score"
)

func newFig1Live(t *testing.T) *dynamic.Live {
	t.Helper()
	live, err := dynamic.NewLive(buildFig1Dynamic(t), score.DefaultWalkOptions())
	if err != nil {
		t.Fatal(err)
	}
	return live
}

func TestLivePublishesEpochs(t *testing.T) {
	live := newFig1Live(t)
	snap := live.Snapshot()
	if snap.Epoch != 0 {
		t.Fatalf("initial epoch = %d, want 0", snap.Epoch)
	}
	if snap.Stats.Edges != 21 || snap.Frozen.NumEdges() != 21 {
		t.Fatalf("initial stats = %+v, frozen edges = %d", snap.Stats, snap.Frozen.NumEdges())
	}
	if live.Refreshes() != 0 {
		t.Fatalf("initial publication counted as a refresh: %d", live.Refreshes())
	}

	next, err := live.Apply(func(g *dynamic.Graph) error {
		film, _ := g.TypeByName("FILM")
		genre, _ := g.TypeByName("FILM GENRE")
		rel, err := g.RelType("Genres", film, genre)
		if err != nil {
			return err
		}
		return g.AddEdge(g.Entity("Hancock", film), g.Entity("Action Film", genre), rel)
	})
	if err != nil {
		t.Fatal(err)
	}
	if next.Epoch != 1 || live.Snapshot() != next {
		t.Fatalf("epoch after one batch = %d (current %p, want %p)", next.Epoch, live.Snapshot(), next)
	}
	if next.Stats.Edges != 22 {
		t.Fatalf("edges after batch = %d, want 22", next.Stats.Edges)
	}
	if live.Refreshes() != 1 {
		t.Fatalf("refreshes = %d, want 1", live.Refreshes())
	}
	// The old snapshot is untouched: copy-on-write, not in-place.
	if snap.Stats.Edges != 21 || snap.Frozen.NumEdges() != 21 {
		t.Fatalf("published snapshot mutated: %+v", snap.Stats)
	}
}

func TestLiveFailedBatchPublishesNothing(t *testing.T) {
	live := newFig1Live(t)
	before := live.Snapshot()
	boom := errors.New("validation failed")
	if _, err := live.Apply(func(g *dynamic.Graph) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Apply error = %v, want %v", err, boom)
	}
	if live.Snapshot() != before || live.Refreshes() != 0 {
		t.Fatal("failed batch published an epoch or counted a refresh")
	}
}

// TestLiveRandomStreamsMatchCompute is the incremental-vs-batch
// cross-check on the live facade: after every randomized update batch,
// the incrementally refreshed score set must equal score.Compute on the
// published frozen graph for every measure pair. Randomized streams keep
// the entropy bookkeeping honest (histogram moves, warm-started walk,
// O(1) entropy aggregates all drift-free); duplicate (from, rel, to)
// triples are excluded because Freeze collapses them by design.
func TestLiveRandomStreamsMatchCompute(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			var dg dynamic.Graph
			nTypes := rng.Intn(5) + 2
			types := make([]graph.TypeID, nTypes)
			for i := range types {
				types[i] = dg.Type(fmt.Sprintf("T%d", i))
			}
			var rels []graph.RelTypeID
			for i := 0; i < rng.Intn(6)+2; i++ {
				r, err := dg.RelType(fmt.Sprintf("r%d", i), types[rng.Intn(nTypes)], types[rng.Intn(nTypes)])
				if err != nil {
					t.Fatal(err)
				}
				rels = append(rels, r)
			}
			nEnts := rng.Intn(30) + 6
			for i := 0; i < nEnts; i++ {
				dg.Entity(fmt.Sprintf("e%d", i), types[rng.Intn(nTypes)])
			}
			live, err := dynamic.NewLive(&dg, score.DefaultWalkOptions())
			if err != nil {
				t.Fatal(err)
			}

			seen := map[[3]int32]bool{}
			for batch := 0; batch < 6; batch++ {
				snap, err := live.Apply(func(g *dynamic.Graph) error {
					// Each batch may also grow the universe: new entities,
					// occasionally a whole new relationship type.
					if rng.Intn(3) == 0 {
						g.Entity(fmt.Sprintf("e%d-%d", batch, rng.Intn(100)), types[rng.Intn(nTypes)])
					}
					if rng.Intn(4) == 0 {
						r, err := g.RelType(fmt.Sprintf("r-batch%d", batch), types[rng.Intn(nTypes)], types[rng.Intn(nTypes)])
						if err != nil {
							return err
						}
						rels = append(rels, r)
					}
					st := g.Stats()
					for i := 0; i < rng.Intn(10)+1; i++ {
						from := graph.EntityID(rng.Intn(st.Entities))
						to := graph.EntityID(rng.Intn(st.Entities))
						rel := rels[rng.Intn(len(rels))]
						k := [3]int32{int32(from), int32(to), int32(rel)}
						if seen[k] {
							continue
						}
						seen[k] = true
						if err := g.AddEdge(from, to, rel); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				if snap.Epoch != uint64(batch)+1 {
					t.Fatalf("batch %d published epoch %d", batch, snap.Epoch)
				}
				if err := snap.Frozen.Validate(); err != nil {
					t.Fatalf("batch %d frozen graph invalid: %v", batch, err)
				}
				batchSet := score.Compute(snap.Frozen, score.DefaultWalkOptions())
				assertSetsEqual(t, snap.Scores, batchSet)
				if t.Failed() {
					t.Fatalf("batch %d: incremental refresh drifted from score.Compute", batch)
				}
			}
		})
	}
}

// TestLiveConcurrentApplyAndRead hammers the facade directly (the HTTP
// equivalent lives in internal/service): writers apply disjoint batches
// while readers continuously load snapshots, asserting epochs are
// monotone per reader and every snapshot is internally consistent.
func TestLiveConcurrentApplyAndRead(t *testing.T) {
	live := newFig1Live(t)
	const writers, batches, readers = 4, 6, 4

	var writersWG, readersWG sync.WaitGroup
	errs := make(chan error, writers*batches+readers)
	done := make(chan struct{})
	for w := 0; w < writers; w++ {
		w := w
		writersWG.Add(1)
		go func() {
			defer writersWG.Done()
			for b := 0; b < batches; b++ {
				_, err := live.Apply(func(g *dynamic.Graph) error {
					film, _ := g.TypeByName("FILM")
					genre, _ := g.TypeByName("FILM GENRE")
					rel, err := g.RelType("Genres", film, genre)
					if err != nil {
						return err
					}
					return g.AddEdge(
						g.Entity(fmt.Sprintf("Film w%d b%d", w, b), film),
						g.Entity("Action Film", genre), rel)
				})
				if err != nil {
					errs <- err
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			var last uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := live.Snapshot()
				if snap.Epoch < last {
					errs <- fmt.Errorf("epoch regressed: %d after %d", snap.Epoch, last)
					return
				}
				last = snap.Epoch
				if got := snap.Scores.Schema().NumTypes(); got != snap.Stats.Types {
					errs <- fmt.Errorf("snapshot %d inconsistent: %d score types vs %d stats types", snap.Epoch, got, snap.Stats.Types)
					return
				}
			}
		}()
	}
	// Readers stop once every writer has finished (success or failure), so
	// a failing batch surfaces as a test error instead of a hang.
	writersWG.Wait()
	close(done)
	readersWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	snap := live.Snapshot()
	if snap.Epoch != writers*batches || live.Refreshes() != writers*batches {
		t.Fatalf("final epoch %d, refreshes %d, want %d", snap.Epoch, live.Refreshes(), writers*batches)
	}
	batchSet := score.Compute(snap.Frozen, score.DefaultWalkOptions())
	assertSetsEqual(t, snap.Scores, batchSet)
}

// TestWarmStartMatchesColdStart pins the warm-started power iteration to
// the cold-started fixed point after a long drift of weight changes.
func TestWarmStartMatchesColdStart(t *testing.T) {
	dg := buildFig1Dynamic(t)
	film, _ := dg.TypeByName("FILM")
	genre, _ := dg.TypeByName("FILM GENRE")
	rel, err := dg.RelType("Genres", film, genre)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := dg.AddEdge(dg.Entity(fmt.Sprintf("Film %d", i), film), dg.Entity("Action Film", genre), rel); err != nil {
			t.Fatal(err)
		}
		// Every refresh warm-starts from the previous π.
		set, err := dg.Scores(score.DefaultWalkOptions())
		if err != nil {
			t.Fatal(err)
		}
		s := set.Schema()
		cold := score.StationaryDistribution(s, score.DefaultWalkOptions())
		for tt := 0; tt < s.NumTypes(); tt++ {
			if math.Abs(set.Key(score.KeyRandomWalk, graph.TypeID(tt))-cold[tt]) > 1e-8 {
				t.Fatalf("step %d: warm-started walk diverged at type %d: %v vs %v",
					i, tt, set.Key(score.KeyRandomWalk, graph.TypeID(tt)), cold[tt])
			}
		}
	}
}

// addHancockGenre is the canonical one-edge test batch.
func addHancockGenre(g *dynamic.Graph) error {
	film, _ := g.TypeByName("FILM")
	genre, _ := g.TypeByName("FILM GENRE")
	rel, err := g.RelType("Genres", film, genre)
	if err != nil {
		return err
	}
	return g.AddEdge(g.Entity("Hancock", film), g.Entity("Action Film", genre), rel)
}

// TestLiveDurabilityHookOrdering pins the write-ahead contract: the hook
// sees the batch — with the epoch it will create — strictly before that
// epoch is published, and a batch that fails validation never reaches
// the hook.
func TestLiveDurabilityHookOrdering(t *testing.T) {
	live := newFig1Live(t)
	type logged struct {
		epoch          uint64
		kind           byte
		payload        string
		publishedEpoch uint64 // epoch visible to readers at hook time
	}
	var log []logged
	live.SetDurability(func(epoch uint64, kind byte, payload []byte) error {
		log = append(log, logged{epoch, kind, string(payload), live.Snapshot().Epoch})
		return nil
	})

	snap, err := live.ApplyBatch(7, []byte("batch-1"), addHancockGenre)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", snap.Epoch)
	}
	if len(log) != 1 || log[0].epoch != 1 || log[0].kind != 7 || log[0].payload != "batch-1" {
		t.Fatalf("hook saw %+v", log)
	}
	if log[0].publishedEpoch != 0 {
		t.Fatalf("epoch %d was published before the hook ran", log[0].publishedEpoch)
	}

	boom := errors.New("validation failed")
	if _, err := live.ApplyBatch(7, []byte("bad"), func(*dynamic.Graph) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("failed batch error = %v", err)
	}
	if len(log) != 1 {
		t.Fatalf("failed batch reached the hook: %+v", log)
	}
}

// TestLiveDurabilityFailureWedges: a hook failure publishes nothing and
// poisons the facade — memory and log may now disagree, so every later
// write fails with ErrWedged while reads keep the last published epoch.
func TestLiveDurabilityFailureWedges(t *testing.T) {
	live := newFig1Live(t)
	diskFull := errors.New("disk full")
	calls := 0
	live.SetDurability(func(uint64, byte, []byte) error { calls++; return diskFull })
	before := live.Snapshot()

	if _, err := live.ApplyBatch(1, []byte("b"), addHancockGenre); !errors.Is(err, diskFull) {
		t.Fatalf("ApplyBatch error = %v, want the hook's", err)
	}
	if live.Snapshot() != before || live.Refreshes() != 0 {
		t.Fatal("failed log write published an epoch")
	}
	if _, err := live.ApplyBatch(1, []byte("b2"), addHancockGenre); !errors.Is(err, dynamic.ErrWedged) {
		t.Fatalf("post-failure ApplyBatch error = %v, want ErrWedged", err)
	}
	if calls != 1 {
		t.Fatalf("hook ran %d times after wedging, want 1", calls)
	}
	if live.Snapshot() != before {
		t.Fatal("wedged graph still publishing")
	}
}

// TestLiveApplyRefusedWhenDurable: the payload-less Apply cannot be
// replayed, so a durable facade rejects it outright.
func TestLiveApplyRefusedWhenDurable(t *testing.T) {
	live := newFig1Live(t)
	live.SetDurability(func(uint64, byte, []byte) error { return nil })
	if _, err := live.Apply(addHancockGenre); err == nil {
		t.Fatal("volatile Apply accepted on a durable live graph")
	}
	live.SetDurability(nil)
	if _, err := live.Apply(addHancockGenre); err != nil {
		t.Fatalf("Apply after removing the hook: %v", err)
	}
}

// TestNewLiveAtResumesEpoch: recovery republishes at the recovered
// epoch, and the next batch continues the sequence seamlessly.
func TestNewLiveAtResumesEpoch(t *testing.T) {
	live, err := dynamic.NewLiveAt(buildFig1Dynamic(t), score.DefaultWalkOptions(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if got := live.Snapshot().Epoch; got != 42 {
		t.Fatalf("resumed epoch = %d, want 42", got)
	}
	snap, err := live.ApplyBatch(1, []byte("b"), addHancockGenre)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 43 {
		t.Fatalf("epoch after resumed batch = %d, want 43", snap.Epoch)
	}
}

// TestLivePublishFailureAfterLogWedges: once the hook has appended the
// batch, a publish failure leaves log and memory disagreeing with the
// served epoch — the facade must wedge exactly as it does for a hook
// failure, because the logged batch will materialize on restart despite
// the error response.
func TestLivePublishFailureAfterLogWedges(t *testing.T) {
	live := newFig1Live(t)
	logged := 0
	live.SetDurability(func(uint64, byte, []byte) error { logged++; return nil })
	before := live.Snapshot()

	// A typeless entity breaks Freeze, so publication fails after the
	// (infallible here) mutation and the successful log append.
	_, err := live.ApplyBatch(1, []byte("b"), func(g *dynamic.Graph) error {
		g.Entity("orphan with no type")
		return nil
	})
	if err == nil {
		t.Fatal("publication of a typeless entity succeeded")
	}
	if logged != 1 {
		t.Fatalf("hook ran %d times, want 1", logged)
	}
	if live.Snapshot() != before {
		t.Fatal("failed publication swapped the snapshot")
	}
	if _, err := live.ApplyBatch(1, []byte("b2"), addHancockGenre); !errors.Is(err, dynamic.ErrWedged) {
		t.Fatalf("post-publish-failure write error = %v, want ErrWedged", err)
	}
	if logged != 1 {
		t.Fatalf("wedged facade still logging: %d", logged)
	}
}

// TestApplyShippedEnforcesLeaderEpoch: the follower apply path accepts a
// batch only at exactly the next epoch — a stale epoch (already applied)
// and a gapped epoch (records lost in transit) are both refused without
// mutating anything — and an accepted batch runs through the same
// durability hook and publication as a local write.
func TestApplyShippedEnforcesLeaderEpoch(t *testing.T) {
	live := newFig1Live(t)
	var hooked []uint64
	live.SetDurability(func(epoch uint64, kind byte, payload []byte) error {
		hooked = append(hooked, epoch)
		return nil
	})

	snap, err := live.ApplyShipped(1, 7, []byte("shipped-1"), addHancockGenre)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 1 || live.Snapshot() != snap {
		t.Fatalf("shipped batch published epoch %d, want 1", snap.Epoch)
	}
	if len(hooked) != 1 || hooked[0] != 1 {
		t.Fatalf("durability hook saw %v, want [1]", hooked)
	}

	before := live.Snapshot()
	mutations := 0
	count := func(g *dynamic.Graph) error { mutations++; return addHancockGenre(g) }
	if _, err := live.ApplyShipped(1, 7, []byte("replayed"), count); err == nil {
		t.Fatal("stale shipped epoch accepted")
	}
	if _, err := live.ApplyShipped(3, 7, []byte("gap"), count); err == nil {
		t.Fatal("gapped shipped epoch accepted")
	}
	if mutations != 0 {
		t.Fatalf("refused shipped batches ran their mutation %d times", mutations)
	}
	if live.Snapshot() != before || len(hooked) != 1 {
		t.Fatal("refused shipped batch published or logged")
	}

	if snap, err = live.ApplyShipped(2, 7, []byte("shipped-2"), addHancockGenre); err != nil || snap.Epoch != 2 {
		t.Fatalf("next shipped epoch: snap %v err %v", snap, err)
	}

	// A wedged facade refuses shipped batches like any other write.
	live.SetDurability(func(uint64, byte, []byte) error { return errors.New("disk full") })
	if _, err := live.ApplyShipped(3, 7, []byte("b"), addHancockGenre); err == nil {
		t.Fatal("hook failure not surfaced")
	}
	if _, err := live.ApplyShipped(3, 7, []byte("b"), addHancockGenre); !errors.Is(err, dynamic.ErrWedged) {
		t.Fatalf("post-failure shipped batch error = %v, want ErrWedged", err)
	}
}
