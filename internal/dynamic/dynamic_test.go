package dynamic_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/uta-db/previewtables/internal/core"
	"github.com/uta-db/previewtables/internal/dynamic"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/score"
)

const eps = 1e-9

// buildFig1Dynamic streams the Fig. 1 graph into a dynamic.Graph.
func buildFig1Dynamic(t *testing.T) *dynamic.Graph {
	t.Helper()
	var g dynamic.Graph
	film := g.Type("FILM")
	actor := g.Type("FILM ACTOR")
	director := g.Type("FILM DIRECTOR")
	producer := g.Type("FILM PRODUCER")
	genre := g.Type("FILM GENRE")
	award := g.Type("AWARD")

	mustRel := func(name string, from, to graph.TypeID) graph.RelTypeID {
		r, err := g.RelType(name, from, to)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	rActor := mustRel("Actor", actor, film)
	rDirector := mustRel("Director", director, film)
	rGenres := mustRel("Genres", film, genre)
	rProducer := mustRel("Producer", producer, film)
	rExec := mustRel("Executive Producer", producer, film)
	rAwardA := mustRel("Award Winners", actor, award)
	rAwardD := mustRel("Award Winners", director, award)

	edge := func(from, to string, r graph.RelTypeID) {
		if err := g.AddEdge(g.Entity(from), g.Entity(to), r); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range []string{"Men in Black", "Men in Black II", "Hancock", "I, Robot"} {
		edge("Will Smith", f, rActor)
	}
	edge("Tommy Lee Jones", "Men in Black", rActor)
	edge("Tommy Lee Jones", "Men in Black II", rActor)
	edge("Barry Sonnenfeld", "Men in Black", rDirector)
	edge("Barry Sonnenfeld", "Men in Black II", rDirector)
	edge("Peter Berg", "Hancock", rDirector)
	edge("Alex Proyas", "I, Robot", rDirector)
	edge("Men in Black", "Action Film", rGenres)
	edge("Men in Black", "Science Fiction", rGenres)
	edge("Men in Black II", "Action Film", rGenres)
	edge("Men in Black II", "Science Fiction", rGenres)
	edge("I, Robot", "Action Film", rGenres)
	edge("Will Smith", "Hancock", rProducer)
	edge("Will Smith", "Men in Black II", rProducer)
	edge("Will Smith", "I, Robot", rExec)
	edge("Will Smith", "Saturn Award", rAwardA)
	edge("Tommy Lee Jones", "Academy Award", rAwardA)
	edge("Barry Sonnenfeld", "Razzie Award", rAwardD)
	return &g
}

func TestIncrementalMatchesBatchOnFig1(t *testing.T) {
	dg := buildFig1Dynamic(t)
	incSet, err := dg.Scores(score.DefaultWalkOptions())
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := dg.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	batchSet := score.Compute(frozen, score.DefaultWalkOptions())
	assertSetsEqual(t, incSet, batchSet)
}

func assertSetsEqual(t *testing.T, a, b *score.Set) {
	t.Helper()
	sa, sb := a.Schema(), b.Schema()
	if sa.NumTypes() != sb.NumTypes() || sa.NumRelTypes() != sb.NumRelTypes() {
		t.Fatalf("schema sizes differ: (%d,%d) vs (%d,%d)",
			sa.NumTypes(), sa.NumRelTypes(), sb.NumTypes(), sb.NumRelTypes())
	}
	for tt := 0; tt < sa.NumTypes(); tt++ {
		tid := graph.TypeID(tt)
		if math.Abs(a.Key(score.KeyCoverage, tid)-b.Key(score.KeyCoverage, tid)) > eps {
			t.Errorf("type %d coverage: %v vs %v", tt,
				a.Key(score.KeyCoverage, tid), b.Key(score.KeyCoverage, tid))
		}
		if math.Abs(a.Key(score.KeyRandomWalk, tid)-b.Key(score.KeyRandomWalk, tid)) > 1e-6 {
			t.Errorf("type %d walk: %v vs %v", tt,
				a.Key(score.KeyRandomWalk, tid), b.Key(score.KeyRandomWalk, tid))
		}
		for i := range sa.Incident(tid) {
			if math.Abs(a.NonKey(score.NonKeyCoverage, tid, i)-b.NonKey(score.NonKeyCoverage, tid, i)) > eps {
				t.Errorf("type %d inc %d coverage differs", tt, i)
			}
			if math.Abs(a.NonKey(score.NonKeyEntropy, tid, i)-b.NonKey(score.NonKeyEntropy, tid, i)) > eps {
				t.Errorf("type %d inc %d entropy: %v vs %v", tt, i,
					a.NonKey(score.NonKeyEntropy, tid, i), b.NonKey(score.NonKeyEntropy, tid, i))
			}
		}
	}
}

func TestIncrementalMatchesBatchProperty(t *testing.T) {
	// Stream random graphs edge by edge; after every few insertions the
	// incrementally maintained Set must equal a batch recompute. Parallel
	// duplicate edges are excluded: Freeze collapses them by design (the
	// documented divergence), so the equivalence is asserted on simple
	// streams.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var dg dynamic.Graph
		nTypes := rng.Intn(5) + 2
		types := make([]graph.TypeID, nTypes)
		for i := range types {
			types[i] = dg.Type("T" + string(rune('A'+i)))
		}
		var rels []graph.RelTypeID
		for i := 0; i < rng.Intn(8)+1; i++ {
			r, err := dg.RelType("r"+string(rune('0'+i)), types[rng.Intn(nTypes)], types[rng.Intn(nTypes)])
			if err != nil {
				return false
			}
			rels = append(rels, r)
		}
		nEnts := rng.Intn(20) + 4
		ents := make([]graph.EntityID, nEnts)
		for i := range ents {
			ents[i] = dg.Entity("e"+string(rune('a'+i%26))+string(rune('0'+i/26)), types[rng.Intn(nTypes)])
		}
		seen := map[[3]int32]bool{}
		for i := 0; i < rng.Intn(40)+5; i++ {
			from := ents[rng.Intn(nEnts)]
			to := ents[rng.Intn(nEnts)]
			rel := rels[rng.Intn(len(rels))]
			k := [3]int32{int32(from), int32(to), int32(rel)}
			if seen[k] {
				continue
			}
			seen[k] = true
			if err := dg.AddEdge(from, to, rel); err != nil {
				return false
			}
		}
		incSet, err := dg.Scores(score.DefaultWalkOptions())
		if err != nil {
			return false
		}
		frozen, err := dg.Freeze()
		if err != nil {
			return false
		}
		if err := frozen.Validate(); err != nil {
			return false
		}
		batch := score.Compute(frozen, score.DefaultWalkOptions())
		// Compare a few aggregates cheaply, then spot-check entropies.
		sa := incSet.Schema()
		for tt := 0; tt < sa.NumTypes(); tt++ {
			tid := graph.TypeID(tt)
			if math.Abs(incSet.Key(score.KeyCoverage, tid)-batch.Key(score.KeyCoverage, tid)) > eps {
				return false
			}
			for i := range sa.Incident(tid) {
				if math.Abs(incSet.NonKey(score.NonKeyEntropy, tid, i)-batch.NonKey(score.NonKeyEntropy, tid, i)) > eps {
					return false
				}
				if math.Abs(incSet.NonKey(score.NonKeyCoverage, tid, i)-batch.NonKey(score.NonKeyCoverage, tid, i)) > eps {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDiscoveryOnIncrementalScores(t *testing.T) {
	// End to end: the Set produced incrementally feeds the discovery
	// algorithms and yields the paper's optimal score.
	dg := buildFig1Dynamic(t)
	set, err := dg.Scores(score.DefaultWalkOptions())
	if err != nil {
		t.Fatal(err)
	}
	d := core.New(set, core.Options{Key: score.KeyCoverage, NonKey: score.NonKeyCoverage})
	p, err := d.Discover(core.Constraint{K: 2, N: 6, Mode: core.Concise})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Score-84) > eps {
		t.Errorf("score on incremental set = %v, want 84", p.Score)
	}
}

func TestUpdatesShiftScores(t *testing.T) {
	// Adding edges changes the maintained measures in the expected
	// directions without a rescan.
	var g dynamic.Graph
	a := g.Type("A")
	c := g.Type("C")
	r, err := g.RelType("r", a, c)
	if err != nil {
		t.Fatal(err)
	}
	x := g.Entity("x", a)
	y := g.Entity("y", a)
	shared := g.Entity("s", c)
	other := g.Entity("o", c)
	if err := g.AddEdge(x, shared, r); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(y, shared, r); err != nil {
		t.Fatal(err)
	}
	set1, err := g.Scores(score.DefaultWalkOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Both tuples share the value set {s}: entropy 0.
	if got := set1.NonKey(score.NonKeyEntropy, a, 0); got != 0 {
		t.Errorf("entropy before update = %v, want 0", got)
	}
	// y gains a second value: value sets {s} and {s,o} → entropy log10(2).
	if err := g.AddEdge(y, other, r); err != nil {
		t.Fatal(err)
	}
	set2, err := g.Scores(score.DefaultWalkOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := set2.NonKey(score.NonKeyEntropy, a, 0), math.Log10(2); math.Abs(got-want) > eps {
		t.Errorf("entropy after update = %v, want %v", got, want)
	}
	if got := set2.NonKey(score.NonKeyCoverage, a, 0); got != 3 {
		t.Errorf("coverage after update = %v, want 3", got)
	}
}

func TestParallelEdgesDoNotChangeValueSets(t *testing.T) {
	var g dynamic.Graph
	a := g.Type("A")
	c := g.Type("C")
	r, _ := g.RelType("r", a, c)
	x := g.Entity("x", a)
	y := g.Entity("y", c)
	for i := 0; i < 3; i++ {
		if err := g.AddEdge(x, y, r); err != nil {
			t.Fatal(err)
		}
	}
	set, err := g.Scores(score.DefaultWalkOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Coverage counts all three instances; entropy sees one tuple with one
	// value set.
	if got := set.NonKey(score.NonKeyCoverage, a, 0); got != 3 {
		t.Errorf("coverage = %v, want 3 (multigraph)", got)
	}
	if got := set.NonKey(score.NonKeyEntropy, a, 0); got != 0 {
		t.Errorf("entropy = %v, want 0 (single tuple)", got)
	}
}

func TestDynamicErrors(t *testing.T) {
	var g dynamic.Graph
	a := g.Type("A")
	if _, err := g.RelType("r", a, graph.TypeID(5)); err == nil {
		t.Error("bad endpoint should fail")
	}
	r, _ := g.RelType("ok", a, a)
	if err := g.AddEdge(0, 99, r); err == nil {
		t.Error("out-of-range entity should fail")
	}
	x := g.Entity("x", a)
	if err := g.AddEdge(x, x, graph.RelTypeID(9)); err == nil {
		t.Error("unknown relationship should fail")
	}
}

func TestStats(t *testing.T) {
	g := buildFig1Dynamic(t)
	st := g.Stats()
	if st.Types != 6 || st.RelTypes != 7 || st.Entities != 14 || st.Edges != 21 {
		t.Errorf("stats = %+v", st)
	}
}
