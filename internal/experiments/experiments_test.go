package experiments_test

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"github.com/uta-db/previewtables/internal/experiments"
	"github.com/uta-db/previewtables/internal/freebase"
)

// testRunner builds a Runner at tiny scale so every experiment is fast.
func testRunner() *experiments.Runner {
	return experiments.New(experiments.Config{
		Gen:                 freebase.GenOptions{Scale: 1e-4, Seed: 11, MinEntities: 400, MinEdges: 1600},
		Seed:                11,
		Repeats:             1,
		BFSubsetCap:         2e5,
		AprioriCandidateCap: 2e5,
	})
}

func TestTable2(t *testing.T) {
	r := testRunner()
	tab, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 domains", len(tab.Rows))
	}
	// Schema sizes must match the paper exactly: "2 / 63" appears in the
	// generated column of the film row.
	var filmRow []string
	for _, row := range tab.Rows {
		if row[0] == "film" {
			filmRow = row
		}
	}
	if filmRow == nil || !strings.HasSuffix(filmRow[3], "/ 63") {
		t.Errorf("film generated vertex column = %v", filmRow)
	}
}

func TestTable3(t *testing.T) {
	r := testRunner()
	tab, err := r.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 gold domains", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		evaluated, err := strconv.Atoi(row[5])
		if err != nil || evaluated < 1 {
			t.Errorf("%s: evaluated types = %q, want ≥ 1", row[0], row[5])
		}
		mrr, err := strconv.ParseFloat(row[1], 64)
		if err != nil || mrr < 0 || mrr > 1 {
			t.Errorf("%s: coverage MRR = %q out of range", row[0], row[1])
		}
	}
}

func TestTable4(t *testing.T) {
	r := testRunner()
	tab, err := r.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for _, col := range []int{1, 3, 5, 7, 9} {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil || v < -1 || v > 1 {
				t.Errorf("%s col %d: PCC %q out of [-1,1]", row[0], col, row[col])
			}
		}
		// Our measures should positively correlate with the simulated crowd.
		cov, _ := strconv.ParseFloat(row[3], 64)
		walk, _ := strconv.ParseFloat(row[5], 64)
		if cov <= 0 || walk <= 0 {
			t.Errorf("%s: coverage/walk PCC = %v/%v, want positive", row[0], cov, walk)
		}
	}
}

func TestFigures5to7(t *testing.T) {
	r := testRunner()
	for _, mk := range []func() (*experiments.Figure, error){r.Figure5, r.Figure6, r.Figure7} {
		fig, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if len(fig.Panels) != 5 {
			t.Fatalf("%s panels = %d, want 5", fig.ID, len(fig.Panels))
		}
		for _, p := range fig.Panels {
			if len(p.Series) != 4 {
				t.Fatalf("%s %s series = %d, want 4", fig.ID, p.Title, len(p.Series))
			}
			for _, s := range p.Series {
				if len(s.X) != 20 {
					t.Errorf("%s %s %s: points = %d, want 20", fig.ID, p.Title, s.Name, len(s.X))
				}
				for i, y := range s.Y {
					if y < 0 || y > 1 {
						t.Errorf("%s %s %s: y[%d] = %v out of [0,1]", fig.ID, p.Title, s.Name, i, y)
					}
				}
			}
		}
	}
}

func TestFigure5OptimalDominates(t *testing.T) {
	r := testRunner()
	fig, err := r.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range fig.Panels {
		var optimal []float64
		for _, s := range p.Series {
			if s.Name == "Optimal" {
				optimal = s.Y
			}
		}
		for _, s := range p.Series {
			if s.Name == "Optimal" {
				continue
			}
			for i := range s.Y {
				if s.Y[i] > optimal[i]+1e-9 {
					t.Errorf("%s: %s exceeds optimal at K=%d", p.Title, s.Name, i+1)
				}
			}
		}
	}
}

func TestFigure8(t *testing.T) {
	r := testRunner()
	fig, err := r.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Panels) != 3 {
		t.Fatalf("panels = %d, want 3", len(fig.Panels))
	}
	for _, p := range fig.Panels {
		if len(p.Series) != 2 {
			t.Fatalf("%s: series = %d, want 2 (BF, DP)", p.Title, len(p.Series))
		}
		for _, s := range p.Series {
			for i, y := range s.Y {
				if y < 0 {
					t.Errorf("%s %s: negative time at %d", p.Title, s.Name, i)
				}
			}
		}
	}
	// The k sweep's largest point must show brute force far above DP.
	kPanel := fig.Panels[1]
	bf := kPanel.Series[0].Y
	dp := kPanel.Series[1].Y
	if bf[len(bf)-1] < 100*maxF(dp[len(dp)-1], 0.01) {
		t.Errorf("at k=9 brute force (%v ms) should dwarf DP (%v ms)", bf[len(bf)-1], dp[len(dp)-1])
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func TestFigure9(t *testing.T) {
	r := testRunner()
	fig, err := r.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Panels) != 8 {
		t.Fatalf("panels = %d, want 8 (4 tight + 4 diverse)", len(fig.Panels))
	}
	for _, p := range fig.Panels {
		if len(p.Series) != 2 {
			t.Fatalf("%s: series = %d, want 2 (BF, Apriori)", p.Title, len(p.Series))
		}
	}
}

func TestUserStudyTables(t *testing.T) {
	r := testRunner()
	t5, err := r.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Rows) != 7 {
		t.Errorf("table5 rows = %d, want 7 approaches", len(t5.Rows))
	}
	t6, err := r.Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(t6.Rows) != 5 {
		t.Errorf("table6 rows = %d, want 5 domains", len(t6.Rows))
	}
	for _, row := range t6.Rows {
		if len(row) != 8 {
			t.Errorf("table6 row %s has %d entries, want 8", row[0], len(row))
		}
	}
	t7, err := r.Table7()
	if err != nil {
		t.Fatal(err)
	}
	if len(t7.Rows) != 6 {
		t.Errorf("table7 rows = %d, want 6", len(t7.Rows))
	}
	for _, domain := range freebase.GoldDomains() {
		if _, err := r.PairwiseZ(domain); err != nil {
			t.Errorf("PairwiseZ(%s): %v", domain, err)
		}
		box, err := r.TimeBoxplots(domain)
		if err != nil {
			t.Errorf("TimeBoxplots(%s): %v", domain, err)
			continue
		}
		if len(box.Rows) != 7 {
			t.Errorf("boxplot rows = %d, want 7", len(box.Rows))
		}
	}
}

func TestLikertTables(t *testing.T) {
	r := testRunner()
	t8, err := r.Table8()
	if err != nil {
		t.Fatal(err)
	}
	if len(t8.Rows) != 4 {
		t.Errorf("table8 rows = %d, want 4 questions", len(t8.Rows))
	}
	t9, err := r.Table9()
	if err != nil {
		t.Fatal(err)
	}
	if len(t9.Rows) != 4 {
		t.Errorf("table9 rows = %d, want 4", len(t9.Rows))
	}
	for _, domain := range freebase.GoldDomains() {
		lt, err := r.Likert(domain)
		if err != nil {
			t.Fatal(err)
		}
		if len(lt.Rows) != 7 {
			t.Errorf("likert %s rows = %d, want 7", domain, len(lt.Rows))
		}
	}
	if _, err := r.Likert("cooking"); err == nil {
		t.Error("unknown domain should fail")
	}
}

func TestSamplePreviewTables(t *testing.T) {
	r := testRunner()
	t11, err := r.Table11()
	if err != nil {
		t.Fatal(err)
	}
	if len(t11.Rows) != 15 {
		t.Errorf("table11 rows = %d, want 15 (3 configs × 5 tables)", len(t11.Rows))
	}
	t12, err := r.Table12()
	if err != nil {
		t.Fatal(err)
	}
	if len(t12.Rows) != 10 {
		t.Errorf("table12 rows = %d, want 10 (tight 5 + diverse 5)", len(t12.Rows))
	}
	// Qualitative claim: diverse keys sit farther apart than tight keys.
	if len(t12.Notes) != 2 {
		t.Fatalf("table12 notes = %v", t12.Notes)
	}
	var tightAvg, diverseAvg float64
	if _, err := stringsSscanf(t12.Notes[0], &tightAvg); err != nil {
		t.Fatal(err)
	}
	if _, err := stringsSscanf(t12.Notes[1], &diverseAvg); err != nil {
		t.Fatal(err)
	}
	if diverseAvg <= tightAvg {
		t.Errorf("diverse avg distance (%v) should exceed tight (%v)", diverseAvg, tightAvg)
	}
}

// stringsSscanf pulls the trailing float out of a note line.
func stringsSscanf(note string, out *float64) (int, error) {
	idx := strings.LastIndex(note, " ")
	v, err := strconv.ParseFloat(note[idx+1:], 64)
	if err != nil {
		return 0, err
	}
	*out = v
	return 1, nil
}

func TestGoldStandardTables(t *testing.T) {
	r := testRunner()
	t10, err := r.Table10()
	if err != nil {
		t.Fatal(err)
	}
	if len(t10.Rows) != 30 {
		t.Errorf("table10 rows = %d, want 30 (5 domains × 6 keys)", len(t10.Rows))
	}
	t22, err := r.Tables22and23()
	if err != nil {
		t.Fatal(err)
	}
	if len(t22.Rows) != 10 {
		t.Errorf("tables22-23 rows = %d, want 10", len(t22.Rows))
	}
}

func TestRendering(t *testing.T) {
	r := testRunner()
	tab, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "== table2:") {
		t.Error("table header missing")
	}
	fig, err := r.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := fig.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "== fig5:") || !strings.Contains(buf.String(), "Coverage:") {
		t.Errorf("figure rendering malformed:\n%s", buf.String())
	}
}
