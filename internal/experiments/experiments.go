// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 6 and the appendix) on the synthetic Freebase domains.
// Each experiment is a method on Runner returning a renderable Table or
// Figure; cmd/experiments prints them and bench_test.go times them.
//
// Where the paper reports numbers we can compare against, the output
// includes "paper" columns next to the measured ones, so the
// paper-vs-measured record of EXPERIMENTS.md regenerates from one run.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"github.com/uta-db/previewtables/internal/freebase"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/score"
	"github.com/uta-db/previewtables/internal/study"
	"github.com/uta-db/previewtables/internal/yps09"
)

// Config parameterizes a full experiment run.
type Config struct {
	// Gen controls synthetic domain generation (zero = defaults).
	Gen freebase.GenOptions
	// Seed drives the simulated studies.
	Seed int64
	// Repeats is the number of timing repetitions averaged in the
	// efficiency experiments (the paper used 3).
	Repeats int
	// BFSubsetCap bounds how many k-subsets a brute-force timing run may
	// enumerate for real; larger configurations are extrapolated from the
	// measured per-subset rate (and marked as such). The paper ran its
	// largest brute-force points for hours; extrapolation preserves the
	// log-scale shape without the wait.
	BFSubsetCap float64
	// AprioriCandidateCap plays the same role for the Apriori search at
	// loose distance constraints (the paper's d=6 pathology).
	AprioriCandidateCap float64
}

// DefaultConfig returns the configuration used by cmd/experiments.
func DefaultConfig() Config {
	return Config{
		Gen:                 freebase.DefaultGenOptions(),
		Seed:                20160626,
		Repeats:             3,
		BFSubsetCap:         1.5e6,
		AprioriCandidateCap: 1.5e6,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Repeats <= 0 {
		c.Repeats = d.Repeats
	}
	if c.BFSubsetCap <= 0 {
		c.BFSubsetCap = d.BFSubsetCap
	}
	if c.AprioriCandidateCap <= 0 {
		c.AprioriCandidateCap = d.AprioriCandidateCap
	}
	return c
}

// Runner caches generated domains, score sets and simulated study outcomes
// across experiments. Methods are safe for sequential use; the caches are
// guarded so benchmarks may share a Runner.
type Runner struct {
	cfg Config

	mu      sync.Mutex
	graphs  map[string]*graph.EntityGraph
	sets    map[string]*score.Set
	ypss    map[string]*yps09.Summarizer
	studies map[string][]study.ApproachResult
}

// New creates a Runner.
func New(cfg Config) *Runner {
	return &Runner{
		cfg:     cfg.withDefaults(),
		graphs:  map[string]*graph.EntityGraph{},
		sets:    map[string]*score.Set{},
		ypss:    map[string]*yps09.Summarizer{},
		studies: map[string][]study.ApproachResult{},
	}
}

// Graph returns (generating and caching on first use) a domain's graph.
func (r *Runner) Graph(domain string) (*graph.EntityGraph, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.graphs[domain]; ok {
		return g, nil
	}
	g, err := freebase.Generate(domain, r.cfg.Gen)
	if err != nil {
		return nil, err
	}
	r.graphs[domain] = g
	return g, nil
}

// Scores returns (computing and caching on first use) a domain's score set.
func (r *Runner) Scores(domain string) (*score.Set, error) {
	r.mu.Lock()
	if s, ok := r.sets[domain]; ok {
		r.mu.Unlock()
		return s, nil
	}
	r.mu.Unlock()
	g, err := r.Graph(domain)
	if err != nil {
		return nil, err
	}
	s := score.Compute(g, score.DefaultWalkOptions())
	r.mu.Lock()
	r.sets[domain] = s
	r.mu.Unlock()
	return s, nil
}

// YPS09 returns (building and caching on first use) a domain's baseline
// summarizer.
func (r *Runner) YPS09(domain string) (*yps09.Summarizer, error) {
	r.mu.Lock()
	if y, ok := r.ypss[domain]; ok {
		r.mu.Unlock()
		return y, nil
	}
	r.mu.Unlock()
	g, err := r.Graph(domain)
	if err != nil {
		return nil, err
	}
	y := yps09.New(g)
	r.mu.Lock()
	r.ypss[domain] = y
	r.mu.Unlock()
	return y, nil
}

// Study returns (simulating and caching on first use) a domain's user-study
// outcome, shared by Tables 5–7, 13–16 and the time boxplots.
func (r *Runner) Study(domain string) ([]study.ApproachResult, error) {
	r.mu.Lock()
	if s, ok := r.studies[domain]; ok {
		r.mu.Unlock()
		return s, nil
	}
	r.mu.Unlock()
	g, err := r.Graph(domain)
	if err != nil {
		return nil, err
	}
	res, err := study.RunDomain(g, domain, study.Config{Seed: r.cfg.Seed})
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.studies[domain] = res
	r.mu.Unlock()
	return res, nil
}

// ---------------------------------------------------------------------------
// Renderable experiment outputs.

// Table is a renderable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) error {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = c + strings.Repeat(" ", maxInt(0, w-len([]rune(c))))
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	return nil
}

// Series is one curve of a figure panel.
type Series struct {
	Name string
	X    []float64
	Y    []float64
	// Extrapolated marks per-point values estimated rather than measured
	// (nil = all measured). Index-aligned with X/Y.
	Extrapolated []bool
}

// Panel is one subplot of a figure.
type Panel struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Figure is a renderable multi-panel experiment result.
type Figure struct {
	ID     string
	Title  string
	Panels []Panel
	Notes  []string
}

// Fprint renders the figure as per-panel data columns.
func (f *Figure) Fprint(w io.Writer) error {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	for _, p := range f.Panels {
		fmt.Fprintf(w, "-- %s (x=%s, y=%s)\n", p.Title, p.XLabel, p.YLabel)
		for _, s := range p.Series {
			fmt.Fprintf(w, "   %s:", s.Name)
			for i := range s.X {
				mark := ""
				if s.Extrapolated != nil && s.Extrapolated[i] {
					mark = "*"
				}
				fmt.Fprintf(w, " (%g, %.4g%s)", s.X[i], s.Y[i], mark)
			}
			fmt.Fprintln(w)
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
