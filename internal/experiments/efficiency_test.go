package experiments

// In-package coverage for the efficiency harness's extrapolation helpers —
// the cap decisions (binomial), the candidate-volume prediction
// (estimateAprioriCandidates), the empty-space convention (swallowEmpty),
// and the measure* paths that switch between direct timing and
// rate-based extrapolation.

import (
	"errors"
	"math"
	"testing"

	"github.com/uta-db/previewtables/internal/core"
	"github.com/uta-db/previewtables/internal/freebase"
)

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, 10}, {5, 3, 10}, {6, 0, 1}, {6, 6, 1}, {6, 1, 6},
		{10, 4, 210}, {0, 0, 1}, {4, 5, 0}, {4, -1, 0}, {52, 5, 2598960},
	}
	for _, c := range cases {
		if got := binomial(c.n, c.k); math.Abs(got-c.want) > 1e-6*math.Max(1, c.want) {
			t.Errorf("binomial(%d, %d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
	// Symmetry and Pascal's rule on a larger instance.
	if a, b := binomial(30, 12), binomial(30, 18); math.Abs(a-b) > 1e-3 {
		t.Errorf("binomial symmetry broken: C(30,12)=%v, C(30,18)=%v", a, b)
	}
	if got, want := binomial(20, 10), binomial(19, 9)+binomial(19, 10); math.Abs(got-want) > 1e-3 {
		t.Errorf("Pascal's rule broken: C(20,10)=%v, C(19,9)+C(19,10)=%v", got, want)
	}
}

func TestSwallowEmpty(t *testing.T) {
	if err := swallowEmpty(nil); err != nil {
		t.Errorf("swallowEmpty(nil) = %v", err)
	}
	if err := swallowEmpty(core.ErrNoPreview); err != nil {
		t.Errorf("swallowEmpty(ErrNoPreview) = %v, want nil: proving emptiness is timed work", err)
	}
	wrapped := errors.New("wrapping: " + core.ErrNoPreview.Error())
	if err := swallowEmpty(wrapped); err == nil {
		t.Error("swallowEmpty swallowed a non-ErrNoPreview error")
	}
	if err := swallowEmpty(core.ErrSearchBudget); !errors.Is(err, core.ErrSearchBudget) {
		t.Errorf("swallowEmpty(ErrSearchBudget) = %v, want pass-through", err)
	}
}

// tinyRunner builds a Runner over small generated domains with the given
// extrapolation caps.
func tinyRunner(bfCap, apCap float64) *Runner {
	return New(Config{
		Gen:                 freebase.GenOptions{Scale: 1e-4, Seed: 17, MinEntities: 300, MinEdges: 1200},
		Seed:                17,
		Repeats:             1,
		BFSubsetCap:         bfCap,
		AprioriCandidateCap: apCap,
	})
}

func TestEstimateAprioriCandidates(t *testing.T) {
	r := tinyRunner(1e9, 1e9)
	d, err := r.discoverer("basketball")
	if err != nil {
		t.Fatal(err)
	}
	n := d.Schema().NumTypes()

	// Degenerate inputs: k < 2 returns the type count with density 1.
	est, density := r.estimateAprioriCandidates(d, core.Constraint{K: 1, N: 2, Mode: core.Tight, D: 2})
	if est != float64(n) || density != 1 {
		t.Errorf("k=1: est=%v density=%v, want %d and 1", est, density, n)
	}

	// Concise mode: every pair is valid, so density is exactly 1 and the
	// estimate is the full level-volume sum Σ C(n, i).
	est, density = r.estimateAprioriCandidates(d, core.Constraint{K: 3, N: 6, Mode: core.Concise})
	if density != 1 {
		t.Errorf("concise density = %v, want 1", density)
	}
	if want := binomial(n, 2) + binomial(n, 3); math.Abs(est-want) > 1e-9*want {
		t.Errorf("concise estimate = %v, want %v", est, want)
	}

	// Tight and diverse at the same d partition the pair space, so their
	// densities sum to 1.
	_, dTight := r.estimateAprioriCandidates(d, core.Constraint{K: 2, N: 4, Mode: core.Tight, D: 2})
	_, dDiverse := r.estimateAprioriCandidates(d, core.Constraint{K: 2, N: 4, Mode: core.Diverse, D: 3})
	if dTight < 0 || dTight > 1 || dDiverse < 0 || dDiverse > 1 {
		t.Errorf("densities out of range: tight %v, diverse %v", dTight, dDiverse)
	}
	if math.Abs(dTight+dDiverse-1) > 1e-9 {
		t.Errorf("tight(d<=2) + diverse(d>=3) densities = %v + %v, want 1 (they partition the pairs)", dTight, dDiverse)
	}

	// The estimate is monotone in k: adding a level adds volume.
	e3, _ := r.estimateAprioriCandidates(d, core.Constraint{K: 3, N: 6, Mode: core.Tight, D: 2})
	e4, _ := r.estimateAprioriCandidates(d, core.Constraint{K: 4, N: 8, Mode: core.Tight, D: 2})
	if e4 < e3 {
		t.Errorf("estimate not monotone in k: k=3 → %v, k=4 → %v", e3, e4)
	}
}

func TestMeasureBFDirectAndExtrapolated(t *testing.T) {
	direct := tinyRunner(1e9, 1e9)
	d, err := direct.discoverer("basketball")
	if err != nil {
		t.Fatal(err)
	}
	c := core.Constraint{K: 3, N: 6, Mode: core.Concise}

	ms, extrapolated, err := direct.measureBF(d, c)
	if err != nil {
		t.Fatal(err)
	}
	if extrapolated {
		t.Error("generous cap must time directly, not extrapolate")
	}
	if ms < 1 {
		t.Errorf("measured %v ms, want >= 1 (paper's rounding rule)", ms)
	}

	// A cap of one subset forces the rate-based extrapolation.
	capped := tinyRunner(1, 1e9)
	dc, err := capped.discoverer("basketball")
	if err != nil {
		t.Fatal(err)
	}
	ms, extrapolated, err = capped.measureBF(dc, c)
	if err != nil {
		t.Fatal(err)
	}
	if !extrapolated {
		t.Error("cap of 1 subset must extrapolate")
	}
	if ms <= 0 || math.IsNaN(ms) || math.IsInf(ms, 0) {
		t.Errorf("extrapolated %v ms, want finite positive", ms)
	}
}

func TestMeasureAprioriDirectAndExtrapolated(t *testing.T) {
	direct := tinyRunner(1e9, 1e9)
	d, err := direct.discoverer("basketball")
	if err != nil {
		t.Fatal(err)
	}
	c := core.Constraint{K: 3, N: 6, Mode: core.Tight, D: 3}

	ms, extrapolated, err := direct.measureApriori(d, c)
	if err != nil {
		t.Fatal(err)
	}
	if extrapolated {
		t.Error("generous cap must time directly, not extrapolate")
	}
	if ms < 1 {
		t.Errorf("measured %v ms, want >= 1", ms)
	}

	capped := tinyRunner(1e9, 1)
	dc, err := capped.discoverer("basketball")
	if err != nil {
		t.Fatal(err)
	}
	ms, extrapolated, err = capped.measureApriori(dc, c)
	if err != nil {
		t.Fatal(err)
	}
	if !extrapolated {
		t.Error("cap of 1 candidate must extrapolate")
	}
	if ms <= 0 || math.IsNaN(ms) || math.IsInf(ms, 0) {
		t.Errorf("extrapolated %v ms, want finite positive", ms)
	}
}

func TestTimeItRoundsUpToOneMillisecond(t *testing.T) {
	r := tinyRunner(1e9, 1e9)
	ms, err := r.timeIt(func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if ms != 1 {
		t.Errorf("timeIt(no-op) = %v ms, want the paper's 1 ms floor", ms)
	}
	boom := errors.New("boom")
	if _, err := r.timeIt(func() error { return boom }); !errors.Is(err, boom) {
		t.Errorf("timeIt must propagate the callback error, got %v", err)
	}
}
