package experiments

// Sample optimal previews (appendix B): Table 11 shows optimal concise
// previews for three domain/measure combinations; Table 12 shows optimal
// tight and diverse previews on "film".

import (
	"fmt"

	"github.com/uta-db/previewtables/internal/core"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/score"
)

// previewRows renders a preview as (key, non-key list) table rows, with
// target entity types in parentheses as in Tables 11–12.
func previewRows(g *graph.EntityGraph, p core.Preview, label string) [][]string {
	s := g.Schema()
	var rows [][]string
	for ti, tb := range p.Tables {
		nonKeys := ""
		for i, c := range tb.NonKeys {
			if i > 0 {
				nonKeys += ", "
			}
			rt := s.RelType(c.Inc.Rel)
			if c.Inc.Outgoing {
				nonKeys += fmt.Sprintf("%s (%s)", rt.Name, s.TypeName(s.OtherEnd(c.Inc)))
			} else {
				// Incoming attribute: γ(τ′, τ) — mark the direction, since a
				// self loop contributes both orientations as distinct
				// attributes (Definition 1).
				nonKeys += fmt.Sprintf("%s (← %s)", rt.Name, s.TypeName(s.OtherEnd(c.Inc)))
			}
		}
		l := ""
		if ti == 0 {
			l = label
		}
		rows = append(rows, []string{l, g.TypeName(tb.Key), nonKeys})
	}
	return rows
}

// Table11 reproduces the sample optimal concise previews: film with
// coverage/coverage, music with random-walk/coverage, TV with
// random-walk/entropy, all at k=5, n=10.
func (r *Runner) Table11() (*Table, error) {
	t := &Table{
		ID:     "table11",
		Title:  "Sample optimal concise previews (k=5, n=10)",
		Header: []string{"Configuration", "Key attribute", "Non-key attributes (target types)"},
	}
	cases := []struct {
		domain string
		key    score.KeyMeasure
		nonKey score.NonKeyMeasure
	}{
		{"film", score.KeyCoverage, score.NonKeyCoverage},
		{"music", score.KeyRandomWalk, score.NonKeyCoverage},
		{"tv", score.KeyRandomWalk, score.NonKeyEntropy},
	}
	for _, cse := range cases {
		g, err := r.Graph(cse.domain)
		if err != nil {
			return nil, err
		}
		set, err := r.Scores(cse.domain)
		if err != nil {
			return nil, err
		}
		d := core.New(set, core.Options{Key: cse.key, NonKey: cse.nonKey})
		p, err := d.Discover(core.Constraint{K: 5, N: 10, Mode: core.Concise})
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%s, KS=%s, NKS=%s", cse.domain, cse.key, cse.nonKey)
		t.Rows = append(t.Rows, previewRows(g, p, label)...)
	}
	return t, nil
}

// Table12 reproduces the sample optimal tight (d=2) and diverse (d=4)
// previews on "film" with coverage/coverage at k=5, n=10.
func (r *Runner) Table12() (*Table, error) {
	t := &Table{
		ID:     "table12",
		Title:  "Sample optimal tight (d=2) and diverse (d=4) previews, film, KS=NKS=Coverage, k=5, n=10",
		Header: []string{"Configuration", "Key attribute", "Non-key attributes (target types)"},
	}
	g, err := r.Graph("film")
	if err != nil {
		return nil, err
	}
	set, err := r.Scores("film")
	if err != nil {
		return nil, err
	}
	d := core.New(set, core.Options{Key: score.KeyCoverage, NonKey: score.NonKeyCoverage})

	tight, err := d.Discover(core.Constraint{K: 5, N: 10, Mode: core.Tight, D: 2})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, previewRows(g, tight, "tight d=2")...)

	diverse, err := discoverDiverseWithFallback(d, core.Constraint{K: 5, N: 10, Mode: core.Diverse, D: 4})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, previewRows(g, diverse, "diverse d=4")...)

	// The headline qualitative claim of Table 12: tight keys huddle around
	// the hub; diverse keys spread out. Record both spreads.
	t.Notes = append(t.Notes,
		fmt.Sprintf("tight keys avg pairwise distance: %.2f", avgPairwiseDist(d, tight)),
		fmt.Sprintf("diverse keys avg pairwise distance: %.2f", avgPairwiseDist(d, diverse)),
	)
	return t, nil
}

func discoverDiverseWithFallback(d *core.Discoverer, c core.Constraint) (core.Preview, error) {
	for dd := c.D; dd >= 1; dd-- {
		c.D = dd
		p, err := d.Discover(c)
		if err == nil {
			return p, nil
		}
		if err != core.ErrNoPreview {
			return core.Preview{}, err
		}
	}
	return core.Preview{}, core.ErrNoPreview
}

func avgPairwiseDist(d *core.Discoverer, p core.Preview) float64 {
	m := d.Distances()
	keys := p.Keys()
	var sum, cnt float64
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if dist := m.Dist(keys[i], keys[j]); dist >= 0 {
				sum += float64(dist)
				cnt++
			}
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / cnt
}
