package experiments

// Algorithm efficiency experiments: Figure 8 (brute force vs dynamic
// programming for concise previews) and Figure 9 (brute force vs
// Apriori-style search for tight/diverse previews), with the paper's
// parameter sweeps.
//
// The paper's largest brute-force points run for hours (its Fig. 8 shows
// ~10^7 ms at k=9 on "music"); on a laptop-scale harness those points are
// extrapolated: the per-subset rate is measured on the largest capped run
// and multiplied by the exact subset count C(K, k). Extrapolated points are
// marked in the output. The shape of the comparison — brute force growing
// combinatorially while DP/Apriori stay flat — is preserved by
// construction, because brute-force cost is subset-count-driven.

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/uta-db/previewtables/internal/core"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/score"
)

// EfficiencyDomains are the three domains of Fig. 8/9's first panels, with
// the paper's labels: basketball (B), architecture (A), music (M).
var EfficiencyDomains = []string{"basketball", "architecture", "music"}

// discoverer builds a coverage/coverage discoverer for a domain.
func (r *Runner) discoverer(domain string) (*core.Discoverer, error) {
	set, err := r.Scores(domain)
	if err != nil {
		return nil, err
	}
	return core.New(set, core.Options{Key: score.KeyCoverage, NonKey: score.NonKeyCoverage}), nil
}

// binomial returns C(n, k) as float64 (precise enough for cap decisions).
func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := 1.0
	for i := 1; i <= k; i++ {
		res = res * float64(n-k+i) / float64(i)
	}
	return res
}

// timeIt measures the average wall-clock milliseconds of f over repeats.
// Following the paper's reporting rule, "execution time less than 1
// millisecond is rounded to 1 millisecond".
func (r *Runner) timeIt(f func() error) (float64, error) {
	var total time.Duration
	for i := 0; i < r.cfg.Repeats; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		total += time.Since(start)
	}
	ms := total.Seconds() * 1000 / float64(r.cfg.Repeats)
	if ms < 1 {
		ms = 1
	}
	return ms, nil
}

// swallowEmpty treats an empty constrained space as success: the search
// still performed (and was timed doing) the work of proving emptiness.
func swallowEmpty(err error) error {
	if errors.Is(err, core.ErrNoPreview) {
		return nil
	}
	return err
}

// measureBF times BruteForce under c, extrapolating when the subset count
// exceeds the configured cap: it measures the per-subset rate at the
// largest feasible k and scales by C(K, c.K).
func (r *Runner) measureBF(d *core.Discoverer, c core.Constraint) (ms float64, extrapolated bool, err error) {
	usable := d.Schema().NumTypes() // upper bound; exact usable count is close
	subsets := binomial(usable, c.K)
	if subsets <= r.cfg.BFSubsetCap {
		ms, err := r.timeIt(func() error {
			_, err := d.BruteForce(c)
			return swallowEmpty(err)
		})
		return ms, false, err
	}
	// Measure the per-subset rate at the largest feasible k.
	kFit := c.K
	for kFit > 1 && binomial(usable, kFit) > r.cfg.BFSubsetCap {
		kFit--
	}
	fit := c
	fit.K = kFit
	if fit.N < fit.K {
		fit.N = fit.K
	}
	start := time.Now()
	p, runErr := d.BruteForce(fit)
	elapsed := time.Since(start)
	if runErr != nil && !errors.Is(runErr, core.ErrNoPreview) {
		return 0, false, runErr
	}
	scored := p.Stats.SubsetsScored
	if scored == 0 {
		scored = int(binomial(usable, kFit)) // empty space: enumeration still visited every subset
	}
	rate := float64(elapsed.Nanoseconds()) / float64(maxInt(scored, 1))
	return rate * subsets / 1e6, true, nil
}

// measureApriori times Apriori under c, extrapolating when the estimated
// candidate volume exceeds the cap. The estimate uses the compatibility
// density ρ of valid pairs: E|Li| ≈ C(K, i)·ρ^C(i,2) (the expected i-clique
// count of a random graph with edge density ρ), summed over levels.
func (r *Runner) measureApriori(d *core.Discoverer, c core.Constraint) (ms float64, extrapolated bool, err error) {
	est, _ := r.estimateAprioriCandidates(d, c)
	if est <= r.cfg.AprioriCandidateCap {
		ms, err := r.timeIt(func() error {
			_, err := d.Apriori(c)
			return swallowEmpty(err)
		})
		return ms, false, err
	}
	// Rate from the largest feasible k under the same distance constraint.
	kFit := 2
	for k := c.K - 1; k >= 2; k-- {
		fit := c
		fit.K = k
		if e, _ := r.estimateAprioriCandidates(d, fit); e <= r.cfg.AprioriCandidateCap {
			kFit = k
			break
		}
	}
	fit := c
	fit.K = kFit
	if fit.N < fit.K {
		fit.N = fit.K
	}
	start := time.Now()
	p, runErr := d.Apriori(fit)
	elapsed := time.Since(start)
	if runErr != nil {
		// Even the reduced constraint is empty: fall back to a nominal
		// per-candidate rate over the density-based estimate.
		return est * 100 / 1e6, true, nil
	}
	work := p.Stats.CandidatesGenerated + p.Stats.SubsetsScored
	rate := float64(elapsed.Nanoseconds()) / float64(maxInt(work, 1))
	return rate * est / 1e6, true, nil
}

// estimateAprioriCandidates predicts the total candidates the level-wise
// search would generate under c, from the exact valid-pair density.
func (r *Runner) estimateAprioriCandidates(d *core.Discoverer, c core.Constraint) (est, density float64) {
	n := d.Schema().NumTypes()
	if n < 2 || c.K < 2 {
		return float64(n), 1
	}
	valid := 0
	m := d.Distances()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			dist := m.Dist(graph.TypeID(a), graph.TypeID(b))
			ok := false
			switch c.Mode {
			case core.Tight:
				ok = dist >= 0 && dist <= c.D
			case core.Diverse:
				ok = dist < 0 || dist >= c.D
			default:
				ok = true
			}
			if ok {
				valid++
			}
		}
	}
	pairs := binomial(n, 2)
	density = float64(valid) / pairs
	total := 0.0
	for i := 2; i <= c.K; i++ {
		total += binomial(n, i) * math.Pow(density, float64(i*(i-1)/2))
	}
	return total, density
}

// Figure8 reproduces the concise-preview efficiency comparison: execution
// time of brute force vs dynamic programming across (1) domains B/A/M at
// k=5, n=10; (2) k = 3..9 on music, n=20; (3) n = 8..20 on music, k=6.
func (r *Runner) Figure8() (*Figure, error) {
	fig := &Figure{
		ID:    "fig8",
		Title: "Execution time of optimal concise preview discovery (ms)",
		Notes: []string{"* = extrapolated from measured per-subset rate (see package comment)"},
	}

	// Panel 1: domains at k=5, n=10.
	p1 := Panel{Title: "domains (k=5, n=10)", XLabel: "domain index B/A/M", YLabel: "ms"}
	bf1 := Series{Name: "Brute-Force"}
	dp1 := Series{Name: "Dynamic-Programming"}
	for i, domain := range EfficiencyDomains {
		d, err := r.discoverer(domain)
		if err != nil {
			return nil, err
		}
		c := core.Constraint{K: 5, N: 10, Mode: core.Concise}
		if d.Schema().NumTypes() < 5 {
			c.K = d.Schema().NumTypes()
			c.N = 2 * c.K
		}
		ms, ex, err := r.measureBF(d, c)
		if err != nil {
			return nil, err
		}
		bf1.X = append(bf1.X, float64(i+1))
		bf1.Y = append(bf1.Y, ms)
		bf1.Extrapolated = append(bf1.Extrapolated, ex)
		ms, err = r.timeIt(func() error {
			_, err := d.DynamicProgramming(c)
			return err
		})
		if err != nil {
			return nil, err
		}
		dp1.X = append(dp1.X, float64(i+1))
		dp1.Y = append(dp1.Y, ms)
		dp1.Extrapolated = append(dp1.Extrapolated, false)
	}
	p1.Series = []Series{bf1, dp1}
	fig.Panels = append(fig.Panels, p1)

	// Panel 2: k sweep on music.
	d, err := r.discoverer("music")
	if err != nil {
		return nil, err
	}
	p2 := Panel{Title: "music, n=20", XLabel: "k", YLabel: "ms"}
	bf2 := Series{Name: "Brute-Force"}
	dp2 := Series{Name: "Dynamic-Programming"}
	for k := 3; k <= 9; k += 3 {
		c := core.Constraint{K: k, N: 20, Mode: core.Concise}
		ms, ex, err := r.measureBF(d, c)
		if err != nil {
			return nil, err
		}
		bf2.X = append(bf2.X, float64(k))
		bf2.Y = append(bf2.Y, ms)
		bf2.Extrapolated = append(bf2.Extrapolated, ex)
		ms, err = r.timeIt(func() error {
			_, err := d.DynamicProgramming(c)
			return err
		})
		if err != nil {
			return nil, err
		}
		dp2.X = append(dp2.X, float64(k))
		dp2.Y = append(dp2.Y, ms)
		dp2.Extrapolated = append(dp2.Extrapolated, false)
	}
	p2.Series = []Series{bf2, dp2}
	fig.Panels = append(fig.Panels, p2)

	// Panel 3: n sweep on music.
	p3 := Panel{Title: "music, k=6", XLabel: "n", YLabel: "ms"}
	bf3 := Series{Name: "Brute-Force"}
	dp3 := Series{Name: "Dynamic-Programming"}
	for n := 8; n <= 20; n += 4 {
		c := core.Constraint{K: 6, N: n, Mode: core.Concise}
		ms, ex, err := r.measureBF(d, c)
		if err != nil {
			return nil, err
		}
		bf3.X = append(bf3.X, float64(n))
		bf3.Y = append(bf3.Y, ms)
		bf3.Extrapolated = append(bf3.Extrapolated, ex)
		ms, err = r.timeIt(func() error {
			_, err := d.DynamicProgramming(c)
			return err
		})
		if err != nil {
			return nil, err
		}
		dp3.X = append(dp3.X, float64(n))
		dp3.Y = append(dp3.Y, ms)
		dp3.Extrapolated = append(dp3.Extrapolated, false)
	}
	p3.Series = []Series{bf3, dp3}
	fig.Panels = append(fig.Panels, p3)

	return fig, nil
}

// Figure9 reproduces the tight/diverse efficiency comparison: brute force
// vs Apriori across domains, k, n and d sweeps, for both constraint modes
// (tight d=2, diverse d=4 when not swept).
func (r *Runner) Figure9() (*Figure, error) {
	fig := &Figure{
		ID:    "fig9",
		Title: "Execution time of optimal tight (upper) / diverse (lower) preview discovery (ms)",
		Notes: []string{"* = extrapolated (brute force beyond subset cap; Apriori beyond candidate cap)"},
	}
	for _, mode := range []core.Mode{core.Tight, core.Diverse} {
		defaultD := 2
		if mode == core.Diverse {
			defaultD = 4
		}

		// Panel: domains at k=5, n=10.
		p1 := Panel{Title: fmt.Sprintf("%s: domains (k=5, n=10, d=%d)", mode, defaultD), XLabel: "domain index B/A/M", YLabel: "ms"}
		bf := Series{Name: "Brute-Force"}
		ap := Series{Name: "Apriori-style"}
		for i, domain := range EfficiencyDomains {
			d, err := r.discoverer(domain)
			if err != nil {
				return nil, err
			}
			c := core.Constraint{K: 5, N: 10, Mode: mode, D: defaultD}
			if d.Schema().NumTypes() < 5 {
				c.K = d.Schema().NumTypes()
				c.N = 2 * c.K
			}
			if err := r.appendTimingPoint(&bf, &ap, d, c, float64(i+1)); err != nil {
				return nil, err
			}
		}
		p1.Series = []Series{bf, ap}
		fig.Panels = append(fig.Panels, p1)

		d, err := r.discoverer("music")
		if err != nil {
			return nil, err
		}

		// Panel: k sweep.
		p2 := Panel{Title: fmt.Sprintf("%s: music, n=20, d=%d", mode, defaultD), XLabel: "k", YLabel: "ms"}
		bf2 := Series{Name: "Brute-Force"}
		ap2 := Series{Name: "Apriori-style"}
		for k := 3; k <= 9; k += 3 {
			c := core.Constraint{K: k, N: 20, Mode: mode, D: defaultD}
			if err := r.appendTimingPoint(&bf2, &ap2, d, c, float64(k)); err != nil {
				return nil, err
			}
		}
		p2.Series = []Series{bf2, ap2}
		fig.Panels = append(fig.Panels, p2)

		// Panel: n sweep.
		p3 := Panel{Title: fmt.Sprintf("%s: music, k=6, d=%d", mode, defaultD), XLabel: "n", YLabel: "ms"}
		bf3 := Series{Name: "Brute-Force"}
		ap3 := Series{Name: "Apriori-style"}
		for n := 8; n <= 20; n += 4 {
			c := core.Constraint{K: 6, N: n, Mode: mode, D: defaultD}
			if err := r.appendTimingPoint(&bf3, &ap3, d, c, float64(n)); err != nil {
				return nil, err
			}
		}
		p3.Series = []Series{bf3, ap3}
		fig.Panels = append(fig.Panels, p3)

		// Panel: d sweep.
		p4 := Panel{Title: fmt.Sprintf("%s: music, k=6, n=16", mode), XLabel: "d", YLabel: "ms"}
		bf4 := Series{Name: "Brute-Force"}
		ap4 := Series{Name: "Apriori-style"}
		for dd := 2; dd <= 6; dd += 2 {
			c := core.Constraint{K: 6, N: 16, Mode: mode, D: dd}
			if err := r.appendTimingPoint(&bf4, &ap4, d, c, float64(dd)); err != nil {
				return nil, err
			}
		}
		p4.Series = []Series{bf4, ap4}
		fig.Panels = append(fig.Panels, p4)
	}
	return fig, nil
}

// appendTimingPoint measures one (constraint, x) point for both brute force
// and Apriori, appending to the two series. Infeasible constraints (empty
// preview space) record zero time — the search still had to do the work of
// proving emptiness, which for Apriori is fast and for brute force is the
// full enumeration; both are measured as they behave.
func (r *Runner) appendTimingPoint(bf, ap *Series, d *core.Discoverer, c core.Constraint, x float64) error {
	ms, ex, err := r.measureBF(d, c)
	if err != nil {
		return err
	}
	bf.X = append(bf.X, x)
	bf.Y = append(bf.Y, ms)
	bf.Extrapolated = append(bf.Extrapolated, ex)

	ms, ex, err = r.measureApriori(d, c)
	if err != nil {
		return err
	}
	ap.X = append(ap.X, x)
	ap.Y = append(ap.Y, ms)
	ap.Extrapolated = append(ap.Extrapolated, ex)
	return nil
}
