package experiments

// User study experiments (Sec. 6.3): Table 5 (sample sizes and conversion
// rates), Table 6 (approaches by median existence-test time), Table 7 and
// Tables 13–16 (pairwise z-tests per domain), Figures 10–14 (time-per-task
// boxplots), Table 8 (questionnaire), Table 9 and Tables 17–21 (user
// experience scores).

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/uta-db/previewtables/internal/freebase"
	"github.com/uta-db/previewtables/internal/stats"
	"github.com/uta-db/previewtables/internal/study"
)

// Alpha is the significance level of the pairwise z-tests (Sec. 6.3.1).
const Alpha = 0.1

// Table5 reports per-approach sample sizes and conversion rates across the
// five gold domains.
func (r *Runner) Table5() (*Table, error) {
	t := &Table{
		ID:     "table5",
		Title:  "Sample sizes and conversion rates for all approaches and domains",
		Header: append([]string{"Approach"}, freebase.GoldDomains()...),
	}
	for _, a := range study.Approaches() {
		row := []string{a.String()}
		for _, domain := range freebase.GoldDomains() {
			res, err := r.Study(domain)
			if err != nil {
				return nil, err
			}
			for _, ar := range res {
				if ar.Approach == a {
					row = append(row, fmt.Sprintf("n=%d c=%.3f", ar.Responses, ar.ConversionRate()))
				}
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table6 sorts the approaches by median existence-test time per domain
// (ascending — most convenient first).
func (r *Runner) Table6() (*Table, error) {
	t := &Table{
		ID:     "table6",
		Title:  "Approaches sorted ascending by median time on existence tests",
		Header: []string{"Domain", "1", "2", "3", "4", "5", "6", "7"},
	}
	for _, domain := range freebase.GoldDomains() {
		res, err := r.Study(domain)
		if err != nil {
			return nil, err
		}
		type med struct {
			name string
			m    float64
		}
		meds := make([]med, 0, len(res))
		for _, ar := range res {
			meds = append(meds, med{ar.Approach.String(), stats.Median(ar.Times)})
		}
		sort.Slice(meds, func(i, j int) bool { return meds[i].m < meds[j].m })
		row := []string{domain}
		for _, m := range meds {
			row = append(row, m.name)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// PairwiseZ reproduces the pairwise conversion-rate comparison of one
// domain (Table 7 for music, Tables 13–16 for the others): a two-proportion
// one-tailed z-test per approach pair at α = 0.1.
func (r *Runner) PairwiseZ(domain string) (*Table, error) {
	res, err := r.Study(domain)
	if err != nil {
		return nil, err
	}
	byApproach := map[study.Approach]study.ApproachResult{}
	for _, ar := range res {
		byApproach[ar.Approach] = ar
	}
	approaches := study.Approaches()
	header := []string{"vs"}
	for _, a := range approaches[1:] {
		header = append(header, a.String())
	}
	t := &Table{
		ID:     "pairwise-z-" + domain,
		Title:  fmt.Sprintf("Pairwise conversion-rate z-tests, domain=%q (α=%.1f)", domain, Alpha),
		Header: header,
		Notes: []string{
			"cell: z-score / one-tailed p; '+' row approach significantly better, '-' significantly worse",
		},
	}
	for i, rowA := range approaches[:len(approaches)-1] {
		row := []string{rowA.String()}
		for j, colA := range approaches {
			if j <= i {
				if j > 0 {
					row = append(row, "")
				}
				continue
			}
			ra := byApproach[rowA]
			rc := byApproach[colA]
			// Following the paper's convention, the cell compares the
			// column approach (A) against the row approach (B).
			zt, err := stats.TwoProportionZTest(rc.Correct, rc.Responses, ra.Correct, ra.Responses, Alpha)
			if err != nil {
				return nil, err
			}
			mark := ""
			if zt.Rejected {
				if zt.Z < 0 {
					mark = " +" // row better
				} else {
					mark = " -"
				}
			}
			row = append(row, fmt.Sprintf("z=%.2f p=%.4f%s", zt.Z, zt.P, mark))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table7 is the pairwise z-test table for "music".
func (r *Runner) Table7() (*Table, error) { return r.PairwiseZ("music") }

// TimeBoxplots reproduces the time-per-task boxplots of Figures 10–14 as
// five-number summaries per approach.
func (r *Runner) TimeBoxplots(domain string) (*Table, error) {
	res, err := r.Study(domain)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "time-boxplot-" + domain,
		Title:  fmt.Sprintf("Time per existence-test task (s), domain=%q", domain),
		Header: []string{"Approach", "min", "q1", "median", "q3", "max", "n"},
	}
	for _, ar := range res {
		b, err := stats.NewBoxplot(ar.Times)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			ar.Approach.String(), f2(b.Min), f2(b.Q1), f2(b.Median), f2(b.Q3), f2(b.Max),
			fmt.Sprintf("%d", b.N),
		})
	}
	return t, nil
}

// Table8 reproduces the static user-experience questionnaire.
func (r *Runner) Table8() (*Table, error) {
	t := &Table{
		ID:     "table8",
		Title:  "User experience questionnaire (5-point Likert scale)",
		Header: []string{"#", "Question"},
	}
	for i, q := range study.UserExperienceQuestions {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("Q%d", i+1), q})
	}
	return t, nil
}

// Likert reproduces one of Tables 17–21: simulated mean user experience
// responses for a domain, next to the paper's reported means.
func (r *Runner) Likert(domain string) (*Table, error) {
	t := &Table{
		ID:     "likert-" + domain,
		Title:  fmt.Sprintf("User experience responses, domain=%q (simulated | paper)", domain),
		Header: []string{"Approach", "Q1", "Q2", "Q3", "Q4"},
	}
	participants := study.DefaultParticipants()
	rng := rand.New(rand.NewSource(r.cfg.Seed + int64(len(domain))))
	for _, a := range study.Approaches() {
		sim, ok := study.SimulateLikert(domain, a, participants[a], rng)
		if !ok {
			return nil, fmt.Errorf("experiments: no Likert calibration for %q", domain)
		}
		paper, _ := study.PaperLikertMeans(domain, a)
		row := []string{a.String()}
		for q := 0; q < 4; q++ {
			row = append(row, fmt.Sprintf("%.2f | %.2f", sim[q], paper[q]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table9 sorts approaches by mean simulated user-experience score across
// all five domains, per question (descending).
func (r *Runner) Table9() (*Table, error) {
	t := &Table{
		ID:     "table9",
		Title:  "Approaches sorted descending by average user experience scores across domains",
		Header: []string{"Question", "1", "2", "3", "4", "5", "6", "7"},
	}
	participants := study.DefaultParticipants()
	rng := rand.New(rand.NewSource(r.cfg.Seed))
	sums := map[study.Approach][4]float64{}
	for _, domain := range study.LikertDomains() {
		for _, a := range study.Approaches() {
			sim, ok := study.SimulateLikert(domain, a, participants[a], rng)
			if !ok {
				continue
			}
			cur := sums[a]
			for q := 0; q < 4; q++ {
				cur[q] += sim[q]
			}
			sums[a] = cur
		}
	}
	for q := 0; q < 4; q++ {
		type avg struct {
			name string
			v    float64
		}
		avgs := make([]avg, 0, 7)
		for _, a := range study.Approaches() {
			avgs = append(avgs, avg{a.String(), sums[a][q]})
		}
		sort.Slice(avgs, func(i, j int) bool { return avgs[i].v > avgs[j].v })
		row := []string{fmt.Sprintf("Q%d", q+1)}
		for _, a := range avgs {
			row = append(row, a.name)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
