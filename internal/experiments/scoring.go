package experiments

// Scoring-accuracy experiments: Table 2 (dataset sizes), Table 3 (MRR of
// non-key scoring), Table 4 (crowd PCC), Figures 5–7 (P@K / AvgP / nDCG of
// key scoring), Table 10 and Tables 22–23 (gold standards).

import (
	"fmt"
	"math"

	"github.com/uta-db/previewtables/internal/crowd"
	"github.com/uta-db/previewtables/internal/eval"
	"github.com/uta-db/previewtables/internal/freebase"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/score"
)

// Table2 reports entity/schema graph sizes per domain: the paper's numbers
// and the generated substitute's.
func (r *Runner) Table2() (*Table, error) {
	t := &Table{
		ID:     "table2",
		Title:  "Sizes of entity/schema graphs (paper vs generated)",
		Header: []string{"Domain", "paper |Vd|/|Vs|", "paper |Ed|/|Es|", "generated |Vd|/|Vs|", "generated |Ed|/|Es|"},
		Notes: []string{
			"generated sizes are the paper's scaled by GenOptions.Scale; schema sizes match exactly",
		},
	}
	for _, domain := range freebase.Domains() {
		g, err := r.Graph(domain)
		if err != nil {
			return nil, err
		}
		st := g.Stats()
		pv, pe, _ := freebase.PaperGraphSize(domain)
		pk, pn, _ := freebase.PaperSchemaSize(domain)
		t.Rows = append(t.Rows, []string{
			domain,
			fmt.Sprintf("%d / %d", pv, pk),
			fmt.Sprintf("%d / %d", pe, pn),
			fmt.Sprintf("%d / %d", st.Entities, st.Types),
			fmt.Sprintf("%d / %d", st.Edges, st.RelTypes),
		})
	}
	return t, nil
}

// paperTable3 holds the paper-reported MRR values for reference columns.
var paperTable3 = map[string][2]float64{
	"books":  {0.8, 0.786},
	"film":   {0.2, 0.25},
	"music":  {0.528, 0.589},
	"tv":     {0.622, 0.379},
	"people": {0.708, 0.606},
}

// MinCandidatesForMRR is the paper's rule: entity types with fewer than 5
// candidate non-key attributes are excluded from the MRR evaluation because
// the gold answers would rank deceptively high.
const MinCandidatesForMRR = 5

// Table3 evaluates non-key attribute scoring by Mean Reciprocal Rank
// against the Table 10 gold standard, per domain and measure.
func (r *Runner) Table3() (*Table, error) {
	t := &Table{
		ID:     "table3",
		Title:  "MRR of non-key attribute scoring",
		Header: []string{"Domain", "Coverage", "paper", "Entropy", "paper", "types evaluated"},
		Notes: []string{
			fmt.Sprintf("gold types with fewer than %d candidate non-key attributes excluded (paper's rule)", MinCandidatesForMRR),
		},
	}
	for _, domain := range freebase.GoldDomains() {
		g, err := r.Graph(domain)
		if err != nil {
			return nil, err
		}
		set, err := r.Scores(domain)
		if err != nil {
			return nil, err
		}
		covRRs, entRRs, evaluated := nonKeyRRs(g, set, domain)
		paper := paperTable3[domain]
		t.Rows = append(t.Rows, []string{
			domain,
			f3(eval.MRR(covRRs)), f3(paper[0]),
			f3(eval.MRR(entRRs)), f3(paper[1]),
			fmt.Sprintf("%d", evaluated),
		})
	}
	return t, nil
}

// nonKeyRRs computes, for every qualifying gold entity type of a domain,
// the reciprocal rank of the first gold non-key attribute under both
// measures.
func nonKeyRRs(g *graph.EntityGraph, set *score.Set, domain string) (cov, ent []float64, evaluated int) {
	s := set.Schema()
	for _, key := range freebase.GoldKeys(domain) {
		tid, ok := g.TypeByName(key)
		if !ok {
			continue
		}
		goldNames := freebase.GoldNonKeys(domain, key)
		if len(goldNames) == 0 {
			continue
		}
		if len(s.Incident(tid)) < MinCandidatesForMRR {
			continue
		}
		gold := eval.NewGold(goldNames...)
		rank := func(m score.NonKeyMeasure) float64 {
			ranked := set.RankNonKeys(m, tid)
			names := make([]string, len(ranked))
			for i, c := range ranked {
				names[i] = s.RelType(c.Inc.Rel).Name
			}
			return eval.ReciprocalRank(names, gold)
		}
		cov = append(cov, rank(score.NonKeyCoverage))
		ent = append(ent, rank(score.NonKeyEntropy))
		evaluated++
	}
	return cov, ent, evaluated
}

// paperTable4 holds the paper-reported PCC values: YPS09, key coverage,
// key random walk, non-key coverage, non-key entropy.
var paperTable4 = map[string][5]float64{
	"books":  {0.4, 0.55, 0.43, 0.43, 0.43},
	"film":   {-0.01, 0.48, 0.25, 0.35, 0.35},
	"music":  {0.37, 0.33, 0.46, 0.42, 0.41},
	"tv":     {0.37, 0.69, 0.65, 0.47, 0.47},
	"people": {0.36, 0.31, 0.29, 0.43, 0.43},
}

// Table4 correlates scoring-measure rankings with simulated crowd
// preferences (Pearson correlation, Sec. 6.1.3) for both key and non-key
// attributes.
func (r *Runner) Table4() (*Table, error) {
	t := &Table{
		ID:    "table4",
		Title: "PCC of key and non-key attribute scoring vs crowd",
		Header: []string{"Domain",
			"YPS09", "paper", "Coverage", "paper", "RandomWalk", "paper",
			"NK-Coverage", "paper", "NK-Entropy", "paper"},
		Notes: []string{"50 pairs × 20 simulated workers per domain, logistic preference on latent importance"},
	}
	for di, domain := range freebase.GoldDomains() {
		g, err := r.Graph(domain)
		if err != nil {
			return nil, err
		}
		set, err := r.Scores(domain)
		if err != nil {
			return nil, err
		}
		y, err := r.YPS09(domain)
		if err != nil {
			return nil, err
		}
		cfg := crowd.Config{Seed: r.cfg.Seed + int64(di)}

		// Key attribute study.
		latent := crowd.LatentImportance(g, freebase.GoldKeys(domain))
		ops, err := crowd.Collect(latent, cfg)
		if err != nil {
			return nil, err
		}
		pccYPS, err := ops.PCC(y.RankTables())
		if err != nil {
			return nil, err
		}
		pccCov, err := ops.PCC(set.RankKeys(score.KeyCoverage))
		if err != nil {
			return nil, err
		}
		pccWalk, err := ops.PCC(set.RankKeys(score.KeyRandomWalk))
		if err != nil {
			return nil, err
		}

		// Non-key attribute study: the "types" judged are (entity type,
		// incidence) pairs flattened into one global candidate list.
		nkLatent, nkCov, nkEnt := nonKeyPairStudy(g, set, domain)
		nkOps, err := crowd.Collect(nkLatent, cfg)
		if err != nil {
			return nil, err
		}
		pccNKCov, err := nkOps.PCC(nkCov)
		if err != nil {
			return nil, err
		}
		pccNKEnt, err := nkOps.PCC(nkEnt)
		if err != nil {
			return nil, err
		}

		paper := paperTable4[domain]
		t.Rows = append(t.Rows, []string{
			domain,
			f2(pccYPS), f2(paper[0]),
			f2(pccCov), f2(paper[1]),
			f2(pccWalk), f2(paper[2]),
			f2(pccNKCov), f2(paper[3]),
			f2(pccNKEnt), f2(paper[4]),
		})
	}
	return t, nil
}

// nonKeyPairStudy flattens every (gold type, candidate non-key) pair into a
// pseudo-type list: latent importance per pair, plus the global rankings
// induced by the coverage and entropy measures.
func nonKeyPairStudy(g *graph.EntityGraph, set *score.Set, domain string) (latent []float64, covRank, entRank []graph.TypeID) {
	s := set.Schema()
	type pair struct {
		t   graph.TypeID
		i   int
		cov float64
		ent float64
	}
	var pairs []pair
	goldKeys := freebase.GoldKeys(domain)
	for _, key := range goldKeys {
		tid, ok := g.TypeByName(key)
		if !ok {
			continue
		}
		goldNK := eval.NewGold(freebase.GoldNonKeys(domain, key)...)
		for i, inc := range s.Incident(tid) {
			p := pair{
				t:   tid,
				i:   i,
				cov: set.NonKey(score.NonKeyCoverage, tid, i),
				ent: set.NonKey(score.NonKeyEntropy, tid, i),
			}
			lat := math.Log10(1 + float64(s.RelType(inc.Rel).EdgeCount))
			if goldNK[s.RelType(inc.Rel).Name] {
				lat += 1.5
			}
			latent = append(latent, lat)
			pairs = append(pairs, p)
		}
	}
	covRank = rankPairs(pairs, func(p pair) float64 { return p.cov })
	entRank = rankPairs(pairs, func(p pair) float64 { return p.ent })
	return latent, covRank, entRank
}

// rankPairs sorts pair indexes (as pseudo TypeIDs into the latent slice) by
// decreasing score.
func rankPairs[T any](pairs []T, val func(T) float64) []graph.TypeID {
	idx := make([]graph.TypeID, len(pairs))
	for i := range idx {
		idx[i] = graph.TypeID(i)
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && val(pairs[idx[j-1]]) < val(pairs[idx[j]]); j-- {
			idx[j-1], idx[j] = idx[j], idx[j-1]
		}
	}
	return idx
}

// keyRankings assembles the ranked key-attribute name lists per measure for
// one domain: coverage, random walk, YPS09.
func (r *Runner) keyRankings(domain string) (cov, walk, yps []string, err error) {
	g, err := r.Graph(domain)
	if err != nil {
		return nil, nil, nil, err
	}
	set, err := r.Scores(domain)
	if err != nil {
		return nil, nil, nil, err
	}
	y, err := r.YPS09(domain)
	if err != nil {
		return nil, nil, nil, err
	}
	toNames := func(ids []graph.TypeID) []string {
		names := make([]string, len(ids))
		for i, id := range ids {
			names[i] = g.TypeName(id)
		}
		return names
	}
	return toNames(set.RankKeys(score.KeyCoverage)),
		toNames(set.RankKeys(score.KeyRandomWalk)),
		toNames(y.RankTables()), nil
}

// keyAccuracyFigure renders one of Figures 5–7: a panel per gold domain
// with four curves over K = 1..20.
func (r *Runner) keyAccuracyFigure(id, title, metric string,
	f func(ranked []string, gold eval.Gold, k int) float64,
	optimal func(goldSize, k int) float64) (*Figure, error) {
	fig := &Figure{ID: id, Title: title}
	for _, domain := range freebase.GoldDomains() {
		cov, walk, yps, err := r.keyRankings(domain)
		if err != nil {
			return nil, err
		}
		gold := eval.NewGold(freebase.GoldKeys(domain)...)
		panel := Panel{Title: domain, XLabel: "K", YLabel: metric}
		mk := func(name string, ranked []string) Series {
			s := Series{Name: name}
			for k := 1; k <= 20; k++ {
				s.X = append(s.X, float64(k))
				s.Y = append(s.Y, f(ranked, gold, k))
			}
			return s
		}
		panel.Series = append(panel.Series,
			mk("Coverage", cov),
			mk("Random Walk", walk),
			mk("YPS09", yps))
		if optimal != nil {
			s := Series{Name: "Optimal"}
			for k := 1; k <= 20; k++ {
				s.X = append(s.X, float64(k))
				s.Y = append(s.Y, optimal(len(gold), k))
			}
			panel.Series = append(panel.Series, s)
		}
		fig.Panels = append(fig.Panels, panel)
	}
	return fig, nil
}

// Figure5 reproduces Precision-at-K of key attribute scoring.
func (r *Runner) Figure5() (*Figure, error) {
	return r.keyAccuracyFigure("fig5", "Precision-at-K of key attribute scoring", "P@K",
		eval.PrecisionAtK, eval.OptimalPrecisionAtK)
}

// Figure6 reproduces Average Precision of key attribute scoring.
func (r *Runner) Figure6() (*Figure, error) {
	return r.keyAccuracyFigure("fig6", "Average precision of key attribute scoring", "AvgP",
		eval.AveragePrecision, func(goldSize, k int) float64 {
			// Ideal ranking has AvgP 1 once k ≥ goldSize, else k/goldSize.
			if k >= goldSize {
				return 1
			}
			return float64(k) / float64(goldSize)
		})
}

// Figure7 reproduces nDCG of key attribute scoring. An ideal ranking has
// nDCG exactly 1 at every K, so the optimal curve is constant.
func (r *Runner) Figure7() (*Figure, error) {
	return r.keyAccuracyFigure("fig7", "nDCG of key attribute scoring", "nDCG",
		eval.NDCG, func(goldSize, k int) float64 { return 1 })
}

// Table10 dumps the embedded Freebase gold standard.
func (r *Runner) Table10() (*Table, error) {
	t := &Table{
		ID:     "table10",
		Title:  "Freebase gold standard (Table 10)",
		Header: []string{"Domain", "Key attribute", "Non-key attributes"},
	}
	for _, domain := range freebase.GoldDomains() {
		k, n := freebase.GoldSize(domain)
		for i, key := range freebase.GoldKeys(domain) {
			label := domain
			if i > 0 {
				label = ""
			} else {
				label = fmt.Sprintf("%s (k=%d, n=%d)", domain, k, n)
			}
			t.Rows = append(t.Rows, []string{
				label, key, joinComma(freebase.GoldNonKeys(domain, key)),
			})
		}
	}
	return t, nil
}

// Tables22and23 evaluates the Freebase and Experts gold standards against
// each other (appendix Tables 22 and 23).
func (r *Runner) Tables22and23() (*Table, error) {
	t := &Table{
		ID:     "tables22-23",
		Title:  "Cross precision between Freebase and Experts gold standards",
		Header: []string{"Direction", "Domain", "P@1", "P@2", "P@3", "P@4", "P@5", "P@6"},
	}
	for _, domain := range freebase.GoldDomains() {
		fb := freebase.GoldKeys(domain)
		ex := freebase.ExpertKeys(domain)
		row22 := []string{"Freebase vs Experts (T22)", domain}
		row23 := []string{"Experts vs Freebase (T23)", domain}
		exSet := eval.NewGold(ex...)
		fbSet := eval.NewGold(fb...)
		for k := 1; k <= 6; k++ {
			row22 = append(row22, f3(eval.PrecisionAtK(fb, exSet, k)))
			row23 = append(row23, f3(eval.PrecisionAtK(ex, fbSet, k)))
		}
		t.Rows = append(t.Rows, row22, row23)
	}
	return t, nil
}

func joinComma(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ", "
		}
		out += s
	}
	return out
}
