// Package par is the repo's worker-pool substrate: deterministic
// partitioning of index ranges plus a pull-based pool that fans tasks out
// over a bounded number of goroutines.
//
// Every parallel hot path (score precomputation, the blocked power
// iteration, the k-subset searches of internal/core) is built on the same
// discipline: the WORK is partitioned into contiguous spans whose
// boundaries do not depend on the worker count, each span's result is
// written into a slot owned by that span, and span results are combined
// afterwards in span order on one goroutine. Floating-point accumulation
// order — the only way a data-race-free parallel run could diverge from
// the sequential one — is therefore fixed by the span plan, not by
// scheduling, which is what lets the callers promise bit-identical
// results at any parallelism.
package par

import "runtime"

// Workers resolves a parallelism knob: values above 1 are returned as-is,
// anything else (0, 1, negative) means sequential execution and resolves
// to 1. Callers that want "use all cores" pass Auto.
func Workers(n int) int {
	if n > 1 {
		return n
	}
	return 1
}

// Auto is the conventional "one worker per core" parallelism value.
func Auto() int { return runtime.GOMAXPROCS(0) }

// Span is one contiguous half-open index range [Lo, Hi).
type Span struct{ Lo, Hi int }

// Len returns the number of indexes in the span.
func (s Span) Len() int { return s.Hi - s.Lo }

// Spans partitions [0, n) into at most chunks contiguous spans of
// near-equal length (the first n%chunks spans are one longer). It returns
// nil for n <= 0 and clamps chunks to [1, n]. The partition is a pure
// function of (n, chunks): callers that keep chunks fixed across runs get
// identical span boundaries regardless of how many workers execute them.
func Spans(n, chunks int) []Span {
	if n <= 0 {
		return nil
	}
	if chunks < 1 {
		chunks = 1
	}
	if chunks > n {
		chunks = n
	}
	spans := make([]Span, chunks)
	size, rem := n/chunks, n%chunks
	lo := 0
	for i := range spans {
		hi := lo + size
		if i < rem {
			hi++
		}
		spans[i] = Span{Lo: lo, Hi: hi}
		lo = hi
	}
	return spans
}

// ForEach runs fn(i) for every i in [0, n), distributing indexes over up
// to workers goroutines through a shared pull counter. With workers <= 1
// (or n < 2) it degenerates to a plain loop on the calling goroutine.
// ForEach returns after every call completed; fn must handle its own
// synchronization for any shared state beyond slots it exclusively owns.
//
// A panic inside fn is caught on the worker, the remaining work is
// drained, and the first panic value re-raised on the calling goroutine —
// so a panicking hot path behaves like its sequential counterpart
// (recoverable by the caller, e.g. net/http's per-request recover)
// instead of crashing the process from an unrecoverable goroutine.
func ForEach(workers, n int, fn func(i int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int) // unbuffered: pure pull, no imbalance
	done := make(chan any)
	call := func(i int) (panicked any) {
		defer func() { panicked = recover() }()
		fn(i)
		return nil
	}
	for w := 0; w < workers; w++ {
		go func() {
			var panicked any
			for i := range next {
				if panicked != nil {
					continue // drain; the first panic already decided the outcome
				}
				panicked = call(i)
			}
			done <- panicked
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	var panicked any
	for w := 0; w < workers; w++ {
		if p := <-done; p != nil && panicked == nil {
			panicked = p
		}
	}
	if panicked != nil {
		panic(panicked)
	}
}
