package par

import (
	"sync/atomic"
	"testing"
)

func TestSpansPartition(t *testing.T) {
	cases := []struct{ n, chunks int }{
		{0, 4}, {-3, 2}, {1, 1}, {1, 8}, {7, 3}, {16, 4}, {5, 0}, {10, -1}, {100, 7},
	}
	for _, c := range cases {
		spans := Spans(c.n, c.chunks)
		if c.n <= 0 {
			if spans != nil {
				t.Fatalf("Spans(%d, %d) = %v, want nil", c.n, c.chunks, spans)
			}
			continue
		}
		// Exact cover of [0, n) in order, no empty spans.
		lo := 0
		for i, s := range spans {
			if s.Lo != lo {
				t.Fatalf("Spans(%d, %d)[%d].Lo = %d, want %d", c.n, c.chunks, i, s.Lo, lo)
			}
			if s.Len() < 1 {
				t.Fatalf("Spans(%d, %d)[%d] empty: %v", c.n, c.chunks, i, s)
			}
			lo = s.Hi
		}
		if lo != c.n {
			t.Fatalf("Spans(%d, %d) covers [0, %d), want [0, %d)", c.n, c.chunks, lo, c.n)
		}
		// Balanced: lengths differ by at most one.
		min, max := spans[0].Len(), spans[0].Len()
		for _, s := range spans {
			if s.Len() < min {
				min = s.Len()
			}
			if s.Len() > max {
				max = s.Len()
			}
		}
		if max-min > 1 {
			t.Fatalf("Spans(%d, %d) unbalanced: min %d max %d", c.n, c.chunks, min, max)
		}
	}
}

func TestSpansIndependentOfWorkers(t *testing.T) {
	// The partition is a function of (n, chunks) only — the determinism
	// contract parallel callers rely on.
	a := Spans(1000, 8)
	b := Spans(1000, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("span %d differs between identical calls: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 3, 8, 64} {
		const n = 257
		var hits [n]atomic.Int32
		ForEach(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d executed %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestForEachZeroTasks(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	if ran {
		t.Fatal("ForEach ran a task for n=0")
	}
}

func TestWorkers(t *testing.T) {
	for _, c := range []struct{ in, want int }{{-5, 1}, {0, 1}, {1, 1}, {2, 2}, {16, 16}} {
		if got := Workers(c.in); got != c.want {
			t.Fatalf("Workers(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	if Auto() < 1 {
		t.Fatalf("Auto() = %d, want >= 1", Auto())
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom 7" {
					t.Fatalf("workers=%d: recovered %v, want \"boom 7\"", workers, r)
				}
			}()
			ForEach(workers, 64, func(i int) {
				if i == 7 {
					panic("boom 7")
				}
			})
			t.Fatalf("workers=%d: ForEach returned instead of panicking", workers)
		}()
	}
}
