package crowd_test

import (
	"testing"

	"github.com/uta-db/previewtables/internal/crowd"
	"github.com/uta-db/previewtables/internal/fig1"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/score"
)

func TestLatentImportance(t *testing.T) {
	g := fig1.Graph()
	latent := crowd.LatentImportance(g, []string{fig1.Film})
	film, _ := g.TypeByName(fig1.Film)
	producer, _ := g.TypeByName(fig1.FilmProducer)
	if latent[film] <= latent[producer] {
		t.Errorf("FILM latent (%v) should exceed FILM PRODUCER (%v): larger and gold",
			latent[film], latent[producer])
	}
	// The gold bonus matters: a gold type beats an equal-coverage non-gold.
	latent2 := crowd.LatentImportance(g, []string{fig1.FilmActor})
	actor, _ := g.TypeByName(fig1.FilmActor)
	genre, _ := g.TypeByName(fig1.FilmGenre)
	if latent2[actor] <= latent2[genre] {
		t.Error("gold bonus should break the FILM ACTOR / FILM GENRE coverage tie")
	}
}

func TestCollectShape(t *testing.T) {
	latent := []float64{3, 2, 1, 0.5}
	cfg := crowd.Config{Pairs: 40, WorkersPerPair: 20, Seed: 7}
	o, err := crowd.Collect(latent, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Pairs) != 40 || len(o.Votes) != 40 {
		t.Fatalf("pairs = %d, votes = %d", len(o.Pairs), len(o.Votes))
	}
	for i := range o.Pairs {
		if o.Pairs[i][0] == o.Pairs[i][1] {
			t.Error("pair of identical types")
		}
		total := o.Votes[i][0] + o.Votes[i][1]
		if total > 20 {
			t.Errorf("votes %d exceed worker count", total)
		}
		if total == 0 {
			t.Error("no valid workers at pass rate 0.85 across 20 workers is implausible")
		}
	}
}

func TestCollectDeterministic(t *testing.T) {
	latent := []float64{1, 2, 3}
	a, err := crowd.Collect(latent, crowd.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := crowd.Collect(latent, crowd.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] || a.Votes[i] != b.Votes[i] {
			t.Fatal("same seed, different opinions")
		}
	}
}

func TestCollectErrors(t *testing.T) {
	if _, err := crowd.Collect([]float64{1}, crowd.Config{}); err == nil {
		t.Error("single type should fail")
	}
}

func TestPCCGoodMeasureBeatsBadMeasure(t *testing.T) {
	// A ranking aligned with the latent signal must out-correlate a
	// reversed ranking, and the reversed one must be negative.
	n := 12
	latent := make([]float64, n)
	good := make([]graph.TypeID, n)
	bad := make([]graph.TypeID, n)
	for i := 0; i < n; i++ {
		latent[i] = float64(n - i)
		good[i] = graph.TypeID(i)
		bad[i] = graph.TypeID(n - 1 - i)
	}
	o, err := crowd.Collect(latent, crowd.Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := o.PCC(good)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := o.PCC(bad)
	if err != nil {
		t.Fatal(err)
	}
	if pg <= 0.5 {
		t.Errorf("aligned ranking PCC = %v, want strong positive", pg)
	}
	if pb >= -0.5 {
		t.Errorf("reversed ranking PCC = %v, want strong negative", pb)
	}
	if pg <= pb {
		t.Error("good measure should beat bad measure")
	}
}

func TestEndToEndOnFig1(t *testing.T) {
	g := fig1.Graph()
	latent := crowd.LatentImportance(g, []string{fig1.Film, fig1.FilmActor})
	o, err := crowd.Collect(latent, crowd.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	set := score.Compute(g, score.DefaultWalkOptions())
	pcc, err := o.PCC(set.RankKeys(score.KeyCoverage))
	if err != nil {
		t.Fatal(err)
	}
	if pcc <= 0 {
		t.Errorf("coverage ranking PCC on fig1 = %v, want positive", pcc)
	}
}
