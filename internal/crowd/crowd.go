// Package crowd simulates the Amazon Mechanical Turk study of Sec. 6.1.3:
// randomly generated pairs of entity types, each judged by a pool of
// workers, whose aggregate preferences are correlated (Pearson, Eq. 4)
// against the rank differences produced by a scoring measure.
//
// Substitution note (see DESIGN.md): real workers are replaced by a noisy
// preference model over a latent importance signal. Each simulated worker
// first passes a screening test with a fixed probability (failed workers'
// responses are discarded, as in the paper) and then prefers the entity
// type with higher latent importance with a logistic probability in the
// importance gap. What Table 4 measures — whether a scoring measure's
// ranking agrees with human judgments of importance — is preserved, because
// the latent signal plays the role of ground-truth human importance:
// measures that track it correlate, measures that do not (the YPS09
// adaptation's information-content ranking) correlate less.
package crowd

import (
	"errors"
	"math"
	"math/rand"

	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/stats"
)

// Config parameterizes a simulated study. Zero values take the paper's
// setup (50 pairs × 20 workers) and calibrated model defaults.
type Config struct {
	Pairs          int     // pairs of entity types judged (default 50)
	WorkersPerPair int     // workers shown each pair (default 20)
	ScreeningPass  float64 // probability a worker passes screening (default 0.85)
	Sharpness      float64 // logistic steepness on latent-importance gaps (default 2.5)
	// TasteSigma perturbs each entity type's latent importance once per
	// study (default 0.7): the crowd's shared notion of importance only
	// partially aligns with any structural signal, which is why the
	// paper's PCC values sit in the 0.3–0.7 band rather than near 1.
	TasteSigma float64
	Seed       int64 // RNG seed (default 1)
}

func (c Config) withDefaults() Config {
	if c.Pairs <= 0 {
		c.Pairs = 50
	}
	if c.WorkersPerPair <= 0 {
		c.WorkersPerPair = 20
	}
	if c.ScreeningPass <= 0 {
		c.ScreeningPass = 0.85
	}
	if c.Sharpness <= 0 {
		c.Sharpness = 2.5
	}
	if c.TasteSigma == 0 {
		c.TasteSigma = 0.7
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// LatentImportance builds the ground-truth importance signal used by the
// simulated workers: the logarithm of an entity type's population plus a
// fixed bonus for membership in the human-curated gold standard. This
// mirrors what the paper's workers were asked to judge ("which of the 2
// entity types is more important" in common sense): both sheer prevalence
// and entrance-page curation shape human judgments.
func LatentImportance(g *graph.EntityGraph, goldKeys []string) []float64 {
	gold := make(map[string]bool, len(goldKeys))
	for _, k := range goldKeys {
		gold[k] = true
	}
	imp := make([]float64, g.NumTypes())
	for t := 0; t < g.NumTypes(); t++ {
		tid := graph.TypeID(t)
		imp[t] = math.Log10(float64(g.TypeCoverage(tid)) + 1)
		if gold[g.TypeName(tid)] {
			imp[t] += 1.5
		}
	}
	return imp
}

// Opinions holds the collected pairwise judgments: for each pair (A, B),
// the number of valid workers favoring A and favoring B.
type Opinions struct {
	Pairs [][2]graph.TypeID
	Votes [][2]int
}

// ErrTooFewTypes is returned when the graph has fewer than two types.
var ErrTooFewTypes = errors.New("crowd: need at least two entity types")

// Collect simulates the study: cfg.Pairs random distinct type pairs, each
// judged by cfg.WorkersPerPair workers. Workers who fail screening are
// dropped; the rest prefer the type with higher latent importance with
// probability 1/(1+exp(−sharpness·Δ)).
func Collect(latent []float64, cfg Config) (*Opinions, error) {
	cfg = cfg.withDefaults()
	n := len(latent)
	if n < 2 {
		return nil, ErrTooFewTypes
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// The crowd's shared taste: the structural latent signal plus one
	// idiosyncratic offset per type.
	taste := make([]float64, n)
	for i := range taste {
		taste[i] = latent[i]
		if cfg.TasteSigma > 0 {
			taste[i] += rng.NormFloat64() * cfg.TasteSigma
		}
	}
	o := &Opinions{
		Pairs: make([][2]graph.TypeID, cfg.Pairs),
		Votes: make([][2]int, cfg.Pairs),
	}
	for i := 0; i < cfg.Pairs; i++ {
		a := rng.Intn(n)
		b := rng.Intn(n - 1)
		if b >= a {
			b++
		}
		o.Pairs[i] = [2]graph.TypeID{graph.TypeID(a), graph.TypeID(b)}
		pPreferA := 1 / (1 + math.Exp(-cfg.Sharpness*(taste[a]-taste[b])))
		for w := 0; w < cfg.WorkersPerPair; w++ {
			if rng.Float64() > cfg.ScreeningPass {
				continue // failed screening; response discarded
			}
			if rng.Float64() < pPreferA {
				o.Votes[i][0]++
			} else {
				o.Votes[i][1]++
			}
		}
	}
	return o, nil
}

// PCC computes the Pearson correlation between a measure's pairwise rank
// differences and the workers' preference differences (Sec. 6.1.3): for
// each pair (A, B), X = rank(B) − rank(A) (positive when the measure ranks
// A better) and Y = votes(A) − votes(B) (positive when workers favor A).
// A measure that agrees with the workers yields a positive PCC.
func (o *Opinions) PCC(ranking []graph.TypeID) (float64, error) {
	pos := make(map[graph.TypeID]int, len(ranking))
	for i, t := range ranking {
		pos[t] = i
	}
	x := make([]float64, len(o.Pairs))
	y := make([]float64, len(o.Pairs))
	for i, pair := range o.Pairs {
		x[i] = float64(pos[pair[1]] - pos[pair[0]])
		y[i] = float64(o.Votes[i][0] - o.Votes[i][1])
	}
	return stats.Pearson(x, y)
}
