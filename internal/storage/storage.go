// Package storage provides a compact binary snapshot codec for entity
// graphs. The paper loaded its Freebase dump into MySQL once and then ran
// all preview computations against in-memory structures; the snapshot plays
// the same role here — generate or parse a graph once, persist it, and
// reload it instantly for repeated experiments.
//
// Format (all integers unsigned varints, strings length-prefixed):
//
//	magic "EGPT" | version | type table | relationship-type table |
//	entity table (name + type ids) | edge table (from, rel, to) |
//	CRC-32C of everything before the checksum
//
// Edge endpoints are delta-friendly small ints; a 200K-edge domain snapshot
// is a few MB and loads in milliseconds.
package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"github.com/uta-db/previewtables/internal/graph"
)

var magic = [4]byte{'E', 'G', 'P', 'T'}

// Version is the current snapshot format version.
const Version = 1

// ErrCorrupt is returned when a snapshot fails structural or checksum
// validation.
var ErrCorrupt = errors.New("storage: corrupt snapshot")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

type crcWriter struct {
	w   *bufio.Writer
	crc hash.Hash32
	buf [binary.MaxVarintLen64]byte
	err error
}

func (cw *crcWriter) write(p []byte) {
	if cw.err != nil {
		return
	}
	if _, err := cw.w.Write(p); err != nil {
		cw.err = err
		return
	}
	cw.crc.Write(p)
}

func (cw *crcWriter) uvarint(v uint64) {
	n := binary.PutUvarint(cw.buf[:], v)
	cw.write(cw.buf[:n])
}

func (cw *crcWriter) str(s string) {
	cw.uvarint(uint64(len(s)))
	cw.write([]byte(s))
}

// Write serializes g to w.
func Write(w io.Writer, g *graph.EntityGraph) error {
	cw := &crcWriter{w: bufio.NewWriter(w), crc: crc32.New(castagnoli)}
	cw.write(magic[:])
	cw.uvarint(Version)

	cw.uvarint(uint64(g.NumTypes()))
	for i := 0; i < g.NumTypes(); i++ {
		cw.str(g.TypeName(graph.TypeID(i)))
	}
	cw.uvarint(uint64(g.NumRelTypes()))
	for i := 0; i < g.NumRelTypes(); i++ {
		rt := g.RelType(graph.RelTypeID(i))
		cw.str(rt.Name)
		cw.uvarint(uint64(rt.From))
		cw.uvarint(uint64(rt.To))
	}
	cw.uvarint(uint64(g.NumEntities()))
	for i := 0; i < g.NumEntities(); i++ {
		e := g.Entity(graph.EntityID(i))
		cw.str(e.Name)
		cw.uvarint(uint64(len(e.Types)))
		for _, t := range e.Types {
			cw.uvarint(uint64(t))
		}
	}
	cw.uvarint(uint64(g.NumEdges()))
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(graph.EdgeID(i))
		cw.uvarint(uint64(e.From))
		cw.uvarint(uint64(e.Rel))
		cw.uvarint(uint64(e.To))
	}
	if cw.err != nil {
		return cw.err
	}
	// Trailing checksum (not itself checksummed).
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], cw.crc.Sum32())
	if _, err := cw.w.Write(sum[:]); err != nil {
		return err
	}
	return cw.w.Flush()
}

type crcReader struct {
	r   *bufio.Reader
	crc hash.Hash32
	// ioErr records a genuine transport failure of the underlying reader
	// (anything but running out of bytes), so fail can keep it apart from
	// data corruption.
	ioErr error
}

func (cr *crcReader) note(err error) {
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF && cr.ioErr == nil {
		cr.ioErr = err
	}
}

// fail classifies a decoding failure: transport errors pass through
// untouched; everything else — truncation, varint overflow, structural
// violations — means the bytes are not a valid snapshot and wraps
// ErrCorrupt, so callers (and fuzzing) can rely on errors.Is.
func (cr *crcReader) fail(err error) error {
	if err == nil {
		return nil
	}
	if cr.ioErr != nil {
		return cr.ioErr
	}
	if errors.Is(err, ErrCorrupt) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrCorrupt, err)
}

func (cr *crcReader) ReadByte() (byte, error) {
	b, err := cr.r.ReadByte()
	if err == nil {
		cr.crc.Write([]byte{b})
	}
	cr.note(err)
	return b, err
}

func (cr *crcReader) read(p []byte) error {
	if _, err := io.ReadFull(cr.r, p); err != nil {
		cr.note(err)
		return err
	}
	cr.crc.Write(p)
	return nil
}

func (cr *crcReader) uvarint() (uint64, error) {
	return binary.ReadUvarint(cr)
}

func (cr *crcReader) str(max uint64) (string, error) {
	n, err := cr.uvarint()
	if err != nil {
		return "", err
	}
	if n > max {
		return "", fmt.Errorf("%w: string length %d exceeds limit", ErrCorrupt, n)
	}
	buf := make([]byte, n)
	if err := cr.read(buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// Read deserializes a snapshot. The checksum is verified and the graph is
// rebuilt through the standard Builder, so a successfully read snapshot is
// structurally valid.
func Read(r io.Reader) (*graph.EntityGraph, error) {
	cr := &crcReader{r: bufio.NewReader(r), crc: crc32.New(castagnoli)}
	var m [4]byte
	if err := cr.read(m[:]); err != nil {
		return nil, cr.fail(err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	ver, err := cr.uvarint()
	if err != nil {
		return nil, cr.fail(err)
	}
	if ver != Version {
		// Classified as corrupt: with only one version ever written, any
		// other value is a damaged byte, not a future format. Revisit when
		// Version 2 exists (an unsupported-but-valid file would deserve its
		// own error).
		return nil, fmt.Errorf("%w: unsupported snapshot version %d", ErrCorrupt, ver)
	}

	const maxName = 1 << 20
	var b graph.Builder

	nTypes, err := cr.uvarint()
	if err != nil {
		return nil, cr.fail(err)
	}
	if nTypes > 1<<24 {
		return nil, fmt.Errorf("%w: type count %d", ErrCorrupt, nTypes)
	}
	types := make([]graph.TypeID, nTypes)
	for i := range types {
		name, err := cr.str(maxName)
		if err != nil {
			return nil, cr.fail(err)
		}
		types[i] = b.Type(name)
	}

	nRels, err := cr.uvarint()
	if err != nil {
		return nil, cr.fail(err)
	}
	if nRels > 1<<24 {
		return nil, fmt.Errorf("%w: relationship count %d", ErrCorrupt, nRels)
	}
	rels := make([]graph.RelTypeID, nRels)
	for i := range rels {
		name, err := cr.str(maxName)
		if err != nil {
			return nil, cr.fail(err)
		}
		from, err := cr.uvarint()
		if err != nil {
			return nil, cr.fail(err)
		}
		to, err := cr.uvarint()
		if err != nil {
			return nil, cr.fail(err)
		}
		if from >= nTypes || to >= nTypes {
			return nil, fmt.Errorf("%w: relationship endpoint out of range", ErrCorrupt)
		}
		rels[i] = b.RelType(name, types[from], types[to])
	}

	nEnts, err := cr.uvarint()
	if err != nil {
		return nil, cr.fail(err)
	}
	if nEnts > 1<<31 {
		return nil, fmt.Errorf("%w: entity count %d", ErrCorrupt, nEnts)
	}
	ents := make([]graph.EntityID, nEnts)
	for i := range ents {
		name, err := cr.str(maxName)
		if err != nil {
			return nil, cr.fail(err)
		}
		nt, err := cr.uvarint()
		if err != nil {
			return nil, cr.fail(err)
		}
		if nt == 0 || nt > nTypes {
			return nil, fmt.Errorf("%w: entity type count %d", ErrCorrupt, nt)
		}
		ts := make([]graph.TypeID, nt)
		for j := range ts {
			t, err := cr.uvarint()
			if err != nil {
				return nil, cr.fail(err)
			}
			if t >= nTypes {
				return nil, fmt.Errorf("%w: entity type out of range", ErrCorrupt)
			}
			ts[j] = types[t]
		}
		ents[i] = b.Entity(name, ts...)
	}

	nEdges, err := cr.uvarint()
	if err != nil {
		return nil, cr.fail(err)
	}
	if nEdges > 1<<31 {
		return nil, fmt.Errorf("%w: edge count %d", ErrCorrupt, nEdges)
	}
	for i := uint64(0); i < nEdges; i++ {
		from, err := cr.uvarint()
		if err != nil {
			return nil, cr.fail(err)
		}
		rel, err := cr.uvarint()
		if err != nil {
			return nil, cr.fail(err)
		}
		to, err := cr.uvarint()
		if err != nil {
			return nil, cr.fail(err)
		}
		if from >= nEnts || to >= nEnts || rel >= nRels {
			return nil, fmt.Errorf("%w: edge reference out of range", ErrCorrupt)
		}
		b.Edge(ents[from], ents[to], rels[rel])
	}

	want := cr.crc.Sum32()
	var sum [4]byte
	if _, err := io.ReadFull(cr.r, sum[:]); err != nil {
		return nil, fmt.Errorf("%w: missing checksum", ErrCorrupt)
	}
	if binary.BigEndian.Uint32(sum[:]) != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return g, nil
}

// SaveFile writes a snapshot to path, atomically via a temp file rename.
// The data is fsynced before the rename, so the path never names a
// snapshot whose bytes could still be lost to a power failure.
func SaveFile(path string, g *graph.EntityGraph) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Write(f, g); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// syncDir fsyncs a directory, making the renames, creates and unlinks
// inside it durable against power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// LoadFile reads a snapshot from path.
func LoadFile(path string) (*graph.EntityGraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Checkpointer persists successive epochs of a mutating graph. Save is
// epoch-aware: re-saving an epoch that is already on disk is a no-op, so
// a periodic checkpoint loop costs nothing while the graph is quiet.
// Writes go through SaveFile's atomic temp-file rename, so a crash
// mid-checkpoint leaves the previous snapshot intact. Safe for
// concurrent use.
//
// Two modes share the type. NewCheckpointer overwrites one fixed file
// and records nothing about epochs on disk — fine for warm-restart
// caches. NewDurableCheckpointer participates in crash recovery: each
// checkpoint is an epoch-named snapshot (`<name>-<epoch>.egpt`) made
// current by atomically rewriting a `<name>.current` manifest, so
// recovery always knows the exact epoch the loaded snapshot represents
// no matter where a crash fell; after the manifest swap, superseded
// snapshots are deleted and the paired WAL is truncated through the
// checkpointed epoch.
type Checkpointer struct {
	path string // single-file mode; "" in durable mode

	dir, name string // durable mode
	wal       *WAL   // optional: truncated after each durable save

	mu    sync.Mutex
	last  uint64
	saved bool
}

// NewCheckpointer returns a checkpointer overwriting one snapshot file.
// Nothing is saved yet — the first Save call writes unconditionally.
func NewCheckpointer(path string) *Checkpointer {
	return &Checkpointer{path: path}
}

// NewDurableCheckpointer returns a checkpointer writing epoch-named
// snapshots plus a current-manifest for name under dir. wal, when
// non-nil, is truncated through each checkpointed epoch after the
// manifest swap — the WAL records a checkpoint covers are the ones it
// makes redundant. Load the result back with LoadLatestCheckpoint.
func NewDurableCheckpointer(dir, name string, wal *WAL) *Checkpointer {
	return &Checkpointer{dir: dir, name: name, wal: wal}
}

// Path returns the snapshot file path (single-file mode) or the
// checkpoint directory (durable mode).
func (c *Checkpointer) Path() string {
	if c.path != "" {
		return c.path
	}
	return c.dir
}

// Save persists g unless epoch is already the one on disk; it reports
// whether a write happened. Concurrent calls serialize, and a failed
// write stays retryable (the recorded epoch only advances on success).
func (c *Checkpointer) Save(g *graph.EntityGraph, epoch uint64) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.saved && c.last == epoch {
		return false, nil
	}
	if c.path != "" {
		if err := SaveFile(c.path, g); err != nil {
			return false, err
		}
		c.last, c.saved = epoch, true
		return true, nil
	}
	if err := c.saveDurableLocked(g, epoch); err != nil {
		return false, err
	}
	c.last, c.saved = epoch, true
	return true, nil
}

// saveDurableLocked writes the epoch-named snapshot, swaps the manifest,
// and only then cleans up — so a crash at any point leaves a manifest
// naming a fully written snapshot whose epoch is known exactly. Every
// step is fsynced (file data before each rename, the directory after)
// before the WAL loses the records the checkpoint covers: truncation
// must never outrun the snapshot on its way to stable storage.
func (c *Checkpointer) saveDurableLocked(g *graph.EntityGraph, epoch uint64) error {
	snapName := checkpointSnapName(c.name, epoch)
	if err := SaveFile(filepath.Join(c.dir, snapName), g); err != nil {
		return err
	}
	if err := syncDir(c.dir); err != nil {
		return err
	}
	manifest := filepath.Join(c.dir, c.name+".current")
	tmp := manifest + ".tmp"
	if err := writeFileSync(tmp, []byte(snapName+"\n")); err != nil {
		return err
	}
	if err := os.Rename(tmp, manifest); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(c.dir); err != nil {
		return err
	}
	// Past the commit point: failures below cost disk space, not data.
	if ents, err := os.ReadDir(c.dir); err == nil {
		for _, e := range ents {
			n := e.Name()
			if n == snapName {
				continue
			}
			if e, ok := checkpointSnapEpoch(c.name, n); ok && e != epoch {
				os.Remove(filepath.Join(c.dir, n))
			}
		}
	}
	if c.wal != nil {
		if err := c.wal.TruncateThrough(epoch); err != nil {
			return fmt.Errorf("truncating WAL after checkpoint: %w", err)
		}
	}
	return nil
}

// writeFileSync is os.WriteFile plus an fsync before close.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func checkpointSnapName(name string, epoch uint64) string {
	return fmt.Sprintf("%s-%020d.egpt", name, epoch)
}

// checkpointSnapEpoch parses fname as an epoch-named snapshot of name.
func checkpointSnapEpoch(name, fname string) (uint64, bool) {
	rest, ok := strings.CutPrefix(fname, name+"-")
	if !ok {
		return 0, false
	}
	digits, ok := strings.CutSuffix(rest, ".egpt")
	if !ok || len(digits) != 20 {
		return 0, false
	}
	epoch, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return epoch, true
}

// LoadLatestCheckpoint loads name's newest durable checkpoint from dir:
// the snapshot its current-manifest names, plus the exact epoch it was
// taken at. ok=false (with nil error) means no checkpoint exists yet.
func LoadLatestCheckpoint(dir, name string) (*graph.EntityGraph, uint64, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, name+".current"))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, err
	}
	snapName := strings.TrimSpace(string(data))
	epoch, ok := checkpointSnapEpoch(name, snapName)
	if !ok || filepath.Base(snapName) != snapName {
		return nil, 0, false, fmt.Errorf("%w: checkpoint manifest names %q", ErrCorrupt, snapName)
	}
	g, err := LoadFile(filepath.Join(dir, snapName))
	if err != nil {
		return nil, 0, false, fmt.Errorf("loading checkpoint %s: %w", snapName, err)
	}
	return g, epoch, true, nil
}
