// Write-ahead log. The snapshot codec makes a graph's *state* durable;
// the WAL makes its *mutations* durable: every applied batch is appended
// (and fsynced) before its epoch is published, so an acknowledged write
// survives a crash even if it never reached a checkpoint. Recovery is
// checkpoint + tail: load the newest snapshot, then replay the WAL
// records whose epochs follow it.
//
// Layout: a WAL is a directory of segment files named by the first epoch
// they may contain (`%020d.wal`, so lexicographic order is epoch order).
// Each segment is
//
//	magic "EGWL" | version uvarint | record*
//
// and each record is
//
//	recLen uvarint | body | CRC-32C(recLen bytes + body)
//	body := epoch uvarint | kind byte | payload
//
// the same crcWriter framing and ErrCorrupt discipline as the snapshot
// codec: any byte that does not decode to exactly this shape classifies
// as ErrCorrupt, never as a structurally-valid-but-wrong record. A crash
// mid-append leaves a torn tail; replay stops at the last intact record
// (the longest valid prefix) and OpenWAL truncates the tear before
// appending anything after it.
//
// Epochs are contiguous: Append enforces lastEpoch+1, replay re-verifies
// it across segment boundaries, and TruncateThrough deletes segments
// wholly covered by a checkpoint so the log stays bounded by one
// checkpoint interval of writes.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

var walMagic = [4]byte{'E', 'G', 'W', 'L'}

// WALVersion is the current segment format version.
const WALVersion = 1

// maxWALRecord bounds one record's encoded body. Service bodies are
// capped far below this (service.DefaultMaxBodyBytes); anything larger
// in a segment is damage, not data.
const maxWALRecord = 64 << 20

// DefaultWALSegmentBytes rotates the active segment once it grows past
// this size, so truncation after a checkpoint has whole files to delete.
const DefaultWALSegmentBytes = 64 << 20

// WALRecord is one durable mutation batch: the epoch it produced, a
// caller-defined kind tag, and the replayable payload bytes. The storage
// layer treats kind and payload as opaque.
type WALRecord struct {
	Epoch   uint64
	Kind    byte
	Payload []byte
}

// WALOptions configures an opened WAL.
type WALOptions struct {
	// SegmentBytes is the rotation threshold (0 = DefaultWALSegmentBytes).
	SegmentBytes int64
	// NoSync skips the per-append fsync. Appends then survive process
	// crashes (the file write is done) but not host crashes; meant for
	// benchmarks and bulk loads, not serving.
	NoSync bool
}

// WAL is an append-only log of mutation batches, safe for concurrent
// use. Obtain one with OpenWAL.
type WAL struct {
	dir  string
	opts WALOptions

	mu     sync.Mutex
	f      *os.File // active segment, nil until the next Append creates one
	size   int64    // bytes written to the active segment
	active walSeg   // meaningful iff f != nil
	closed []walSeg // fully written segments, ascending

	last    uint64 // last durable epoch
	hasLast bool

	// err is sticky: a failed write leaves an undefined tail in the
	// active segment, so no further append may run until restart.
	err error
}

// walSeg tracks one segment file and the epoch range it holds.
type walSeg struct {
	path        string
	first, last uint64 // valid iff records > 0
	records     int
}

func walSegName(first uint64) string { return fmt.Sprintf("%020d.wal", first) }

// walSegFiles lists dir's segment files in epoch order.
func walSegFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.Type().IsRegular() && strings.HasSuffix(n, ".wal") && len(n) == len(walSegName(0)) {
			if _, err := strconv.ParseUint(strings.TrimSuffix(n, ".wal"), 10, 64); err == nil {
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)
	return names, nil
}

// scanSegment decodes one segment's records, appending them to recs and
// enforcing epoch contiguity against expect (advanced as records are
// accepted; *haveBase false means the first record establishes the
// base). It returns the byte length of the valid prefix — header
// included — and, when the tail does not decode, an ErrCorrupt error.
func scanSegment(data []byte, expect *uint64, haveBase *bool, recs *[]WALRecord) (int, error) {
	off := 0
	if len(data) < len(walMagic) || *(*[4]byte)(data[:4]) != walMagic {
		return 0, fmt.Errorf("%w: bad WAL segment magic", ErrCorrupt)
	}
	off = len(walMagic)
	ver, n := binary.Uvarint(data[off:])
	if n <= 0 || ver != WALVersion {
		return 0, fmt.Errorf("%w: unsupported WAL segment version", ErrCorrupt)
	}
	off += n
	for off < len(data) {
		recLen, n := binary.Uvarint(data[off:])
		if n <= 0 || recLen > maxWALRecord {
			return off, fmt.Errorf("%w: WAL record length at offset %d", ErrCorrupt, off)
		}
		end := off + n + int(recLen)
		if end+4 > len(data) {
			return off, fmt.Errorf("%w: torn WAL record at offset %d", ErrCorrupt, off)
		}
		if crc32.Checksum(data[off:end], castagnoli) != binary.BigEndian.Uint32(data[end:end+4]) {
			return off, fmt.Errorf("%w: WAL record checksum mismatch at offset %d", ErrCorrupt, off)
		}
		body := data[off+n : end]
		epoch, n2 := binary.Uvarint(body)
		if n2 <= 0 || n2 >= len(body) {
			return off, fmt.Errorf("%w: WAL record body at offset %d", ErrCorrupt, off)
		}
		if *haveBase && epoch != *expect {
			return off, fmt.Errorf("%w: WAL epoch %d at offset %d, want %d", ErrCorrupt, epoch, off, *expect)
		}
		*haveBase = true
		*expect = epoch + 1
		*recs = append(*recs, WALRecord{
			Epoch:   epoch,
			Kind:    body[n2],
			Payload: append([]byte(nil), body[n2+1:]...),
		})
		off = end + 4
	}
	return off, nil
}

// ReplayWAL reads dir's segments in epoch order and returns the longest
// valid prefix of records. A missing directory is an empty log. The
// returned error is nil when every segment decoded cleanly to its end,
// and wraps ErrCorrupt when a torn or damaged tail cut the replay short
// — the returned records are still the valid prefix, which is exactly
// the recoverable state (a torn tail is a batch that was never
// acknowledged). Any other error is a real I/O failure.
func ReplayWAL(dir string) ([]WALRecord, error) {
	names, err := walSegFiles(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var (
		recs     []WALRecord
		expect   uint64
		haveBase bool
	)
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return recs, err
		}
		if _, err := scanSegment(data, &expect, &haveBase, &recs); err != nil {
			return recs, fmt.Errorf("segment %s: %w", name, err)
		}
	}
	return recs, nil
}

// OpenWAL opens (creating if needed) the WAL directory for appending.
// Existing segments are scanned exactly like ReplayWAL; a torn tail is
// truncated away and any segments past the valid prefix are deleted, so
// the next Append lands immediately after the last intact record instead
// of after garbage no replay would ever reach.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultWALSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	names, err := walSegFiles(dir)
	if err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, opts: opts}
	var (
		expect   uint64 // next epoch the scan will accept
		haveBase bool
	)
	for i, name := range names {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var segRecs []WALRecord
		validLen, scanErr := scanSegment(data, &expect, &haveBase, &segRecs)
		seg := walSeg{path: path, records: len(segRecs)}
		if len(segRecs) > 0 {
			seg.first, seg.last = segRecs[0].Epoch, segRecs[len(segRecs)-1].Epoch
		}
		if scanErr != nil {
			// Trim the tear (or drop the segment if nothing valid remains),
			// delete everything past it, and stop: the valid prefix ends here.
			if len(segRecs) == 0 {
				if err := os.Remove(path); err != nil {
					return nil, err
				}
			} else {
				if err := os.Truncate(path, int64(validLen)); err != nil {
					return nil, err
				}
				w.closed = append(w.closed, seg)
			}
			for _, later := range names[i+1:] {
				if err := os.Remove(filepath.Join(dir, later)); err != nil {
					return nil, err
				}
			}
			if !opts.NoSync {
				if err := syncDir(dir); err != nil {
					return nil, err
				}
			}
			break
		}
		w.closed = append(w.closed, seg)
	}
	if haveBase {
		w.last, w.hasLast = expect-1, true
	}
	// Reopen the final segment for appending; earlier ones stay closed.
	if n := len(w.closed); n > 0 {
		seg := w.closed[n-1]
		f, err := os.OpenFile(seg.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		w.f, w.size, w.active = f, st.Size(), seg
		w.closed = w.closed[:n-1]
	}
	return w, nil
}

// Dir returns the WAL directory.
func (w *WAL) Dir() string { return w.dir }

// LastEpoch returns the last durable epoch and whether any record has
// ever been appended (in this process or a previous one).
func (w *WAL) LastEpoch() (uint64, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.last, w.hasLast
}

// Append logs one batch and syncs it to stable storage before returning:
// when Append returns nil the record survives a crash. Epochs must be
// contiguous — epoch is required to be exactly LastEpoch+1 (any value is
// accepted while the log is empty, so the first record after a
// checkpoint-only recovery picks up at checkpointEpoch+1). A failed
// write poisons the WAL: the segment tail is undefined, so every later
// Append fails with the same error until the process restarts and
// OpenWAL trims the tear.
func (w *WAL) Append(epoch uint64, kind byte, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.hasLast && epoch != w.last+1 {
		return fmt.Errorf("storage: WAL append epoch %d, want %d", epoch, w.last+1)
	}
	if w.f != nil && w.size >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	if w.f == nil {
		if err := w.openSegmentLocked(epoch); err != nil {
			return err
		}
	}

	// Shared with EncodeWALRecord: the bytes in a segment are the bytes a
	// replication stream ships, by construction.
	buf := encodeWALRecord(nil, epoch, kind, payload)

	if _, err := w.f.Write(buf); err != nil {
		w.err = fmt.Errorf("storage: WAL append: %w", err)
		return w.err
	}
	if !w.opts.NoSync {
		if err := w.f.Sync(); err != nil {
			w.err = fmt.Errorf("storage: WAL sync: %w", err)
			return w.err
		}
	}
	w.size += int64(len(buf))
	if w.active.records == 0 {
		w.active.first = epoch
	}
	w.active.last = epoch
	w.active.records++
	w.last, w.hasLast = epoch, true
	return nil
}

// openSegmentLocked creates a fresh segment named for first and writes
// its header.
func (w *WAL) openSegmentLocked(first uint64) error {
	path := filepath.Join(w.dir, walSegName(first))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	var hdr [len(walMagic) + binary.MaxVarintLen64]byte
	copy(hdr[:], walMagic[:])
	n := len(walMagic) + binary.PutUvarint(hdr[len(walMagic):], WALVersion)
	if _, err := f.Write(hdr[:n]); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if !w.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(path)
			return err
		}
		// The dirent too: a synced record inside a file whose creation
		// never reached disk is just as lost.
		if err := syncDir(w.dir); err != nil {
			f.Close()
			os.Remove(path)
			return err
		}
	}
	w.f, w.size = f, int64(n)
	w.active = walSeg{path: path}
	return nil
}

// rotateLocked closes the active segment; the next Append opens a new
// one named for its epoch.
func (w *WAL) rotateLocked() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.closed = append(w.closed, w.active)
	w.f, w.size = nil, 0
	return err
}

// TruncateThrough deletes every segment whose records all have epochs
// <= epoch — i.e. mutations a checkpoint at that epoch already contains.
// The active segment is rotated (and deleted) too when fully covered, so
// a checkpoint taken at the newest epoch empties the log; a segment
// straddling the boundary is kept whole (replay filters by epoch, so
// correctness never depends on truncation).
func (w *WAL) TruncateThrough(epoch uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f != nil && w.active.records > 0 && w.active.last <= epoch {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	kept := w.closed[:0]
	removed := false
	for _, seg := range w.closed {
		if seg.records == 0 || seg.last <= epoch {
			if err := os.Remove(seg.path); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return err
			}
			removed = true
			continue
		}
		kept = append(kept, seg)
	}
	w.closed = kept
	if removed && !w.opts.NoSync {
		// Make the unlinks durable: a power loss resurrecting only some
		// deleted segments could leave a replay-breaking epoch gap between
		// a stale survivor and the live tail.
		return syncDir(w.dir)
	}
	return nil
}

// AlignTo re-bases the contiguity expectation so the next Append must
// carry epoch+1. Recovery uses it when the replayable log ends behind
// the recovered epoch — an empty log after a checkpoint-only restart, or
// a corrupt tail wholly covered by the checkpoint — so the first
// post-recovery batch appends cleanly instead of failing the
// contiguity check against a stale last epoch. It refuses to rewind
// past records the log still holds: those would become an epoch gap no
// replay could cross.
func (w *WAL) AlignTo(epoch uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.hasLast && w.last > epoch {
		return fmt.Errorf("storage: WAL AlignTo(%d) behind durable epoch %d", epoch, w.last)
	}
	w.last, w.hasLast = epoch, true
	return nil
}

// Close closes the active segment file. The WAL must not be used after.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
