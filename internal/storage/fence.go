package storage

// Fence persistence. A fencing epoch is the fleet router's
// configuration counter for one shard: it is bumped at every leader
// promotion and at every migration cutover, and a node may acknowledge
// a stamped write only when the stamp equals the fence it has
// persisted. The fence lives next to the WAL segments — same directory,
// same durability discipline (write, fsync, rename, directory sync) —
// because it answers the same question the WAL does after a crash:
// "what had this node promised before the lights went out?". A leader
// that loses its fence file would forget it was deposed.

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// fenceFileName is the fence manifest inside a node's WAL root.
const fenceFileName = "fence.current"

// SaveFence durably records fence under dir, atomically: the value is
// written to a temp file, fsynced, renamed over the manifest, and the
// directory entry is synced — a crash leaves either the old fence or
// the new one, never a torn file.
func SaveFence(dir string, fence uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fenceFileName)
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, []byte(strconv.FormatUint(fence, 10)+"\n")); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// LoadFence reads the fence persisted under dir. ok=false (with nil
// error) means no fence has ever been installed — the node is
// unfenced, which is the standalone / pre-fleet state.
func LoadFence(dir string) (uint64, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, fenceFileName))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	fence, err := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
	if err != nil {
		return 0, false, fmt.Errorf("%w: fence manifest: %v", ErrCorrupt, err)
	}
	return fence, true, nil
}

// RemoveCheckpoints deletes name's checkpoint manifest and every
// epoch-named snapshot under dir — the durable half of dropping a graph
// after it has migrated to another shard. Missing files are fine (the
// graph may never have checkpointed); the directory entry is synced so
// the deletions survive a crash.
func RemoveCheckpoints(dir, name string) error {
	if err := os.Remove(filepath.Join(dir, name+".current")); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	ents, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, e := range ents {
		if _, ok := checkpointSnapEpoch(name, e.Name()); ok {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return err
			}
		}
	}
	return syncDir(dir)
}
