package storage_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/uta-db/previewtables/internal/fig1"
	"github.com/uta-db/previewtables/internal/storage"
)

// fig1Snapshot returns the serialized Fig. 1 graph, the seed every
// corruption test mutates.
func fig1Snapshot(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := storage.Write(&buf, fig1.Graph()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadSnapshot is the decoder's robustness contract: for arbitrary
// input bytes, Read must never panic, and every failure on in-memory data
// must be ErrCorrupt — nothing else can leak out of the decoding layer.
// Inputs that do decode must re-encode and decode to the same shape
// (round-trip closure).
func FuzzReadSnapshot(f *testing.F) {
	valid := fig1Snapshot(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("EGPT"))
	f.Add(valid[:len(valid)/2]) // truncated
	mid := append([]byte(nil), valid...)
	mid[len(mid)/2] ^= 0xff // flipped payload byte
	f.Add(mid)
	ver := append([]byte(nil), valid...)
	ver[4] = 0x2a // future version
	f.Add(ver)

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := storage.Read(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, storage.ErrCorrupt) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := storage.Write(&buf, g); err != nil {
			t.Fatalf("re-encoding a decoded snapshot: %v", err)
		}
		g2, err := storage.Read(&buf)
		if err != nil {
			t.Fatalf("re-decoding a re-encoded snapshot: %v", err)
		}
		if g.Stats() != g2.Stats() {
			t.Fatalf("round trip changed stats: %v vs %v", g.Stats(), g2.Stats())
		}
	})
}

// FuzzReplayWAL is the WAL decoder's robustness contract: for an
// arbitrary segment file, ReplayWAL must never panic, every failure must
// classify as ErrCorrupt (a local file never produces transport errors),
// accepted records must satisfy the contiguity invariant, and the decode
// must be deterministic — replaying the same bytes twice yields the same
// prefix, so recovery cannot diverge between the pre-restart scan and
// OpenWAL's trim.
func FuzzReplayWAL(f *testing.F) {
	recordDir := f.TempDir()
	w, err := storage.OpenWAL(recordDir, storage.WALOptions{})
	if err != nil {
		f.Fatal(err)
	}
	for e := uint64(1); e <= 4; e++ {
		if err := w.Append(e, byte(e), bytes.Repeat([]byte{byte(e)}, int(e)*7)); err != nil {
			f.Fatal(err)
		}
	}
	w.Close()
	segs, err := filepath.Glob(filepath.Join(recordDir, "*.wal"))
	if err != nil || len(segs) != 1 {
		f.Fatalf("want one seed segment: %v (%v)", segs, err)
	}
	valid, err := os.ReadFile(segs[0])
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("EGWL"))
	f.Add(valid[:len(valid)/2]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "00000000000000000001.wal"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, err := storage.ReplayWAL(dir)
		if err != nil && !errors.Is(err, storage.ErrCorrupt) {
			t.Fatalf("unclassified replay error: %v", err)
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].Epoch != recs[i-1].Epoch+1 {
				t.Fatalf("replay accepted an epoch gap: %d after %d", recs[i].Epoch, recs[i-1].Epoch)
			}
		}
		again, err2 := storage.ReplayWAL(dir)
		if (err == nil) != (err2 == nil) || len(again) != len(recs) {
			t.Fatalf("replay not deterministic: %d/%v vs %d/%v", len(recs), err, len(again), err2)
		}
	})
}

// FuzzWALStream is the shipped-stream decoder's robustness contract —
// the replication twin of FuzzReplayWAL. For arbitrary wire bytes,
// WALStreamReader must never panic; every failure must classify as
// ErrCorrupt (an in-memory stream has no transport errors); accepted
// records must be epoch-contiguous; and decoding must be idempotent:
// re-encoding the accepted prefix with EncodeWALRecord and decoding it
// again yields the same records with no error, so a follower relaying a
// feed downstream cannot alter it.
func FuzzWALStream(f *testing.F) {
	var valid []byte
	for e := uint64(1); e <= 4; e++ {
		valid = append(valid, storage.EncodeWALRecord(storage.WALRecord{
			Epoch: e, Kind: byte(e), Payload: bytes.Repeat([]byte{byte(e)}, int(e)*7),
		})...)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)/2]) // torn mid-record
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0xff
	f.Add(flipped)
	f.Add([]byte{0x00})                                 // zero-length record stub
	f.Add(storage.EncodeWALRecord(storage.WALRecord{})) // epoch 0, empty payload

	f.Fuzz(func(t *testing.T, data []byte) {
		decodeAll := func(stream []byte) ([]storage.WALRecord, error) {
			sr := storage.NewWALStreamReader(bytes.NewReader(stream))
			var recs []storage.WALRecord
			for {
				rec, err := sr.Next()
				if err == io.EOF {
					return recs, nil
				}
				if err != nil {
					return recs, err
				}
				recs = append(recs, rec)
			}
		}
		recs, err := decodeAll(data)
		if err != nil && !errors.Is(err, storage.ErrCorrupt) {
			t.Fatalf("unclassified stream error: %v", err)
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].Epoch != recs[i-1].Epoch+1 {
				t.Fatalf("stream accepted an epoch gap: %d after %d", recs[i].Epoch, recs[i-1].Epoch)
			}
		}
		var reenc []byte
		for _, r := range recs {
			reenc = append(reenc, storage.EncodeWALRecord(r)...)
		}
		again, err2 := decodeAll(reenc)
		if err2 != nil || len(again) != len(recs) {
			t.Fatalf("re-encoded prefix does not decode cleanly: %d/%v vs %d", len(again), err2, len(recs))
		}
		for i := range recs {
			if again[i].Epoch != recs[i].Epoch || again[i].Kind != recs[i].Kind || !bytes.Equal(again[i].Payload, recs[i].Payload) {
				t.Fatalf("record %d changed across re-encode: %+v vs %+v", i, again[i], recs[i])
			}
		}
	})
}

// TestReadCorruptExhaustive flips every byte of a valid snapshot in turn
// and truncates it at every prefix: each mutation must fail loudly — the
// checksum guarantees no single-byte flip slips through — and every
// failure must be ErrCorrupt, never a panic or a raw io error.
func TestReadCorruptExhaustive(t *testing.T) {
	valid := fig1Snapshot(t)
	check := func(data []byte, what string) {
		t.Helper()
		_, err := storage.Read(bytes.NewReader(data))
		if err == nil {
			t.Fatalf("%s: decoded successfully, want failure", what)
		}
		if !errors.Is(err, storage.ErrCorrupt) {
			t.Fatalf("%s: unclassified error: %v", what, err)
		}
	}
	for i := range valid {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x01
		check(mut, fmt.Sprintf("flip byte %d", i))
	}
	for i := 0; i < len(valid); i++ {
		check(valid[:i], fmt.Sprintf("truncate at %d", i))
	}
}
