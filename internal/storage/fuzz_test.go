package storage_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/uta-db/previewtables/internal/fig1"
	"github.com/uta-db/previewtables/internal/storage"
)

// fig1Snapshot returns the serialized Fig. 1 graph, the seed every
// corruption test mutates.
func fig1Snapshot(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := storage.Write(&buf, fig1.Graph()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadSnapshot is the decoder's robustness contract: for arbitrary
// input bytes, Read must never panic, and every failure on in-memory data
// must be ErrCorrupt — nothing else can leak out of the decoding layer.
// Inputs that do decode must re-encode and decode to the same shape
// (round-trip closure).
func FuzzReadSnapshot(f *testing.F) {
	valid := fig1Snapshot(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("EGPT"))
	f.Add(valid[:len(valid)/2]) // truncated
	mid := append([]byte(nil), valid...)
	mid[len(mid)/2] ^= 0xff // flipped payload byte
	f.Add(mid)
	ver := append([]byte(nil), valid...)
	ver[4] = 0x2a // future version
	f.Add(ver)

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := storage.Read(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, storage.ErrCorrupt) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := storage.Write(&buf, g); err != nil {
			t.Fatalf("re-encoding a decoded snapshot: %v", err)
		}
		g2, err := storage.Read(&buf)
		if err != nil {
			t.Fatalf("re-decoding a re-encoded snapshot: %v", err)
		}
		if g.Stats() != g2.Stats() {
			t.Fatalf("round trip changed stats: %v vs %v", g.Stats(), g2.Stats())
		}
	})
}

// TestReadCorruptExhaustive flips every byte of a valid snapshot in turn
// and truncates it at every prefix: each mutation must fail loudly — the
// checksum guarantees no single-byte flip slips through — and every
// failure must be ErrCorrupt, never a panic or a raw io error.
func TestReadCorruptExhaustive(t *testing.T) {
	valid := fig1Snapshot(t)
	check := func(data []byte, what string) {
		t.Helper()
		_, err := storage.Read(bytes.NewReader(data))
		if err == nil {
			t.Fatalf("%s: decoded successfully, want failure", what)
		}
		if !errors.Is(err, storage.ErrCorrupt) {
			t.Fatalf("%s: unclassified error: %v", what, err)
		}
	}
	for i := range valid {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x01
		check(mut, fmt.Sprintf("flip byte %d", i))
	}
	for i := 0; i < len(valid); i++ {
		check(valid[:i], fmt.Sprintf("truncate at %d", i))
	}
}
