// WAL shipping: the pieces that turn the write-ahead log into a
// replication log. A leader ships the exact record framing its segments
// use — `recLen uvarint | body | CRC-32C(recLen bytes + body)` with
// body = `epoch uvarint | kind byte | payload` — concatenated onto an
// HTTP response with no segment header, so a follower decodes the feed
// with the same prefix/ErrCorrupt discipline ReplayWAL applies to a
// segment file: any byte that does not decode to exactly this shape is
// ErrCorrupt, a truncated record is a torn tail, and accepted records
// are epoch-contiguous. EncodeWALRecord and WALStreamReader are the two
// ends of that wire; ReadWALAfter is the leader-side tail read that
// feeds it from the on-disk log.
package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// encodeWALRecord appends one framed record to dst — the exact byte
// sequence Append writes into a segment after the header, and the exact
// shape a shipped stream carries.
func encodeWALRecord(dst []byte, epoch uint64, kind byte, payload []byte) []byte {
	var hdr [binary.MaxVarintLen64 + 1]byte
	bn := binary.PutUvarint(hdr[:], epoch)
	hdr[bn] = kind
	bodyLen := bn + 1 + len(payload)

	var lenBuf [binary.MaxVarintLen64]byte
	start := len(dst)
	dst = append(dst, lenBuf[:binary.PutUvarint(lenBuf[:], uint64(bodyLen))]...)
	dst = append(dst, hdr[:bn+1]...)
	dst = append(dst, payload...)
	sum := crc32.Checksum(dst[start:], castagnoli)
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], sum)
	return append(dst, crc[:]...)
}

// EncodeWALRecord returns rec in the shipped-stream framing (identical
// to the in-segment record framing). Concatenating encoded records
// yields a valid stream for WALStreamReader.
func EncodeWALRecord(rec WALRecord) []byte {
	return AppendWALRecord(nil, rec)
}

// AppendWALRecord appends rec's shipped framing to dst and returns the
// extended slice — EncodeWALRecord without the per-record allocation,
// for senders framing many records through one scratch buffer.
func AppendWALRecord(dst []byte, rec WALRecord) []byte {
	return encodeWALRecord(dst, rec.Epoch, rec.Kind, rec.Payload)
}

// WALStreamReader decodes a shipped stream of WAL records. Next returns
// io.EOF exactly at a record boundary; every other failure — a torn
// record, a checksum mismatch, an epoch gap — wraps ErrCorrupt, so a
// follower can rely on errors.Is to tell "the feed ended" from "the
// feed is damaged; drop it and re-sync from the last applied epoch".
type WALStreamReader struct {
	r      *bufio.Reader
	expect uint64
	has    bool
}

// NewWALStreamReader returns a reader decoding records from r.
func NewWALStreamReader(r io.Reader) *WALStreamReader {
	return &WALStreamReader{r: bufio.NewReader(r)}
}

// Next decodes one record. io.EOF means the stream ended cleanly at a
// record boundary; ErrCorrupt-wrapped errors mean damage (including a
// stream torn mid-record); anything else is a transport failure.
func (sr *WALStreamReader) Next() (WALRecord, error) {
	// The length varint is collected byte by byte because the checksum
	// covers it exactly as it appeared on the wire.
	var lenBytes []byte
	var recLen uint64
	for shift := uint(0); ; shift += 7 {
		b, err := sr.r.ReadByte()
		if err != nil {
			if len(lenBytes) == 0 && err == io.EOF {
				return WALRecord{}, io.EOF // clean boundary
			}
			return WALRecord{}, sr.torn(err)
		}
		lenBytes = append(lenBytes, b)
		if shift >= 64 || (shift == 63 && b > 1) {
			return WALRecord{}, fmt.Errorf("%w: shipped record length overflows", ErrCorrupt)
		}
		recLen |= uint64(b&0x7f) << shift
		if b < 0x80 {
			break
		}
	}
	if recLen > maxWALRecord {
		return WALRecord{}, fmt.Errorf("%w: shipped record length %d", ErrCorrupt, recLen)
	}
	frame := make([]byte, len(lenBytes)+int(recLen)+4)
	copy(frame, lenBytes)
	if _, err := io.ReadFull(sr.r, frame[len(lenBytes):]); err != nil {
		return WALRecord{}, sr.torn(err)
	}
	end := len(frame) - 4
	if crc32.Checksum(frame[:end], castagnoli) != binary.BigEndian.Uint32(frame[end:]) {
		return WALRecord{}, fmt.Errorf("%w: shipped record checksum mismatch", ErrCorrupt)
	}
	body := frame[len(lenBytes):end]
	epoch, n := binary.Uvarint(body)
	if n <= 0 || n >= len(body) {
		return WALRecord{}, fmt.Errorf("%w: shipped record body", ErrCorrupt)
	}
	if sr.has && epoch != sr.expect {
		return WALRecord{}, fmt.Errorf("%w: shipped epoch %d, want %d", ErrCorrupt, epoch, sr.expect)
	}
	sr.has, sr.expect = true, epoch+1
	return WALRecord{Epoch: epoch, Kind: body[n], Payload: body[n+1:]}, nil
}

// torn classifies an interrupted read: running out of bytes mid-record
// is corruption (a torn shipped record); a real transport error passes
// through for the caller to retry.
func (sr *WALStreamReader) torn(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("%w: torn shipped record", ErrCorrupt)
	}
	return err
}

// ReadWALAfter reads dir's records with epochs strictly greater than
// after, in epoch order — the leader-side tail read behind WAL shipping.
// Whole segments older than the cut are skipped by name (segment names
// carry their first epoch), so tailing near the head of the log does not
// rescan history. The error discipline is ReplayWAL's: the returned
// records are always a valid, contiguous prefix of the requested tail,
// and a damaged or torn tail reports ErrCorrupt alongside them. A
// missing directory is an empty log.
//
// Concurrent appends are safe to race with: records are fsynced in
// order, so a scan that stops at a half-written final record has still
// returned every record some Append acknowledged before the scan began.
// Callers cap at the durable epoch they observed and treat a shorter
// prefix as damage.
func ReadWALAfter(dir string, after uint64) ([]WALRecord, error) {
	return ReadWALAfterN(dir, after, 0)
}

// ReadWALAfterN is ReadWALAfter bounded to at most max records (max <= 0
// means unbounded). Scanning stops at the first segment boundary past
// the cap, so a sender chunking a long backlog parses one chunk's worth
// of segments per call instead of the whole history.
func ReadWALAfterN(dir string, after uint64, max int) ([]WALRecord, error) {
	names, err := walSegFiles(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	// Skip a segment when the next one starts at or before after+1: every
	// record it holds is then <= after. The last segment is always read.
	start := 0
	for i := 0; i+1 < len(names); i++ {
		first, err := strconv.ParseUint(strings.TrimSuffix(names[i+1], ".wal"), 10, 64)
		if err == nil && first <= after+1 {
			start = i + 1
		}
	}
	var (
		recs     []WALRecord
		expect   uint64
		haveBase bool
	)
	for _, name := range names[start:] {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return clampRecords(filterAfter(recs, after), max), err
		}
		if _, err := scanSegment(data, &expect, &haveBase, &recs); err != nil {
			return clampRecords(filterAfter(recs, after), max), fmt.Errorf("segment %s: %w", name, err)
		}
		if max > 0 && len(filterAfter(recs, after)) >= max {
			break
		}
	}
	return clampRecords(filterAfter(recs, after), max), nil
}

// clampRecords truncates recs to at most max (max <= 0 = no limit).
func clampRecords(recs []WALRecord, max int) []WALRecord {
	if max > 0 && len(recs) > max {
		return recs[:max]
	}
	return recs
}

// filterAfter drops the leading records at or below the cut.
func filterAfter(recs []WALRecord, after uint64) []WALRecord {
	i := 0
	for i < len(recs) && recs[i].Epoch <= after {
		i++
	}
	return recs[i:]
}

// FirstEpoch returns the oldest epoch the log still holds, and false
// when the log holds no records at all (empty, or fully truncated by a
// checkpoint). Together with LastEpoch it brackets the shippable range:
// a follower at epoch f can tail the log iff f+1 >= FirstEpoch — below
// that it is past the truncation horizon and must bootstrap from a
// checkpoint instead.
func (w *WAL) FirstEpoch() (uint64, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, seg := range w.closed {
		if seg.records > 0 {
			return seg.first, true
		}
	}
	if w.f != nil && w.active.records > 0 {
		return w.active.first, true
	}
	return 0, false
}
