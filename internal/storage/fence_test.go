package storage

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFenceRoundTrip(t *testing.T) {
	dir := t.TempDir()

	if f, ok, err := LoadFence(dir); err != nil || ok || f != 0 {
		t.Fatalf("empty dir: LoadFence = %d, %v, %v; want 0, false, nil", f, ok, err)
	}
	if err := SaveFence(dir, 3); err != nil {
		t.Fatalf("SaveFence: %v", err)
	}
	if f, ok, err := LoadFence(dir); err != nil || !ok || f != 3 {
		t.Fatalf("LoadFence = %d, %v, %v; want 3, true, nil", f, ok, err)
	}
	// Overwrite is atomic: the manifest always names exactly one value.
	if err := SaveFence(dir, 7); err != nil {
		t.Fatalf("SaveFence overwrite: %v", err)
	}
	if f, _, err := LoadFence(dir); err != nil || f != 7 {
		t.Fatalf("LoadFence after overwrite = %d, %v; want 7", f, err)
	}
}

func TestFenceCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "not", "yet")
	if err := SaveFence(dir, 1); err != nil {
		t.Fatalf("SaveFence into missing dir: %v", err)
	}
	if f, ok, err := LoadFence(dir); err != nil || !ok || f != 1 {
		t.Fatalf("LoadFence = %d, %v, %v; want 1, true, nil", f, ok, err)
	}
}

func TestFenceCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, fenceFileName), []byte("not a number"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadFence(dir); err == nil {
		t.Fatal("LoadFence accepted a corrupt manifest")
	}
}
