package storage_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/uta-db/previewtables/internal/storage"
)

func readFile(t testing.TB, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func appendFile(t testing.TB, path string, data []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// shipWAL builds a WAL with n single-record epochs under tiny segments,
// returning its directory — the seed for tail-read and framing tests.
func shipWAL(t testing.TB, n int, segBytes int64) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "wal")
	w, err := storage.OpenWAL(dir, storage.WALOptions{SegmentBytes: segBytes, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for e := 1; e <= n; e++ {
		payload := []byte(fmt.Sprintf("batch-%03d", e))
		if err := w.Append(uint64(e), byte(e%3), payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestWALStreamRoundTrip: a stream is the concatenation of encoded
// records; the reader returns exactly them and ends with a clean io.EOF.
func TestWALStreamRoundTrip(t *testing.T) {
	recs := []storage.WALRecord{
		{Epoch: 7, Kind: 1, Payload: []byte(`{"edges":[]}`)},
		{Epoch: 8, Kind: 2, Payload: nil},
		{Epoch: 9, Kind: 1, Payload: bytes.Repeat([]byte{0xab}, 4096)},
	}
	var stream []byte
	for _, r := range recs {
		stream = append(stream, storage.EncodeWALRecord(r)...)
	}
	sr := storage.NewWALStreamReader(bytes.NewReader(stream))
	for i, want := range recs {
		got, err := sr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Epoch != want.Epoch || got.Kind != want.Kind || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("record %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := sr.Next(); err != io.EOF {
		t.Fatalf("stream end: %v, want io.EOF", err)
	}
}

// TestWALStreamMatchesSegmentBytes pins the framing-reuse claim: the
// bytes Append writes after the segment header are exactly the bytes
// EncodeWALRecord produces for the same record.
func TestWALStreamMatchesSegmentBytes(t *testing.T) {
	dir := shipWAL(t, 3, storage.DefaultWALSegmentBytes)
	segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want one segment: %v (%v)", segs, err)
	}
	data := readFile(t, segs[0])
	recs, err := storage.ReplayWAL(dir)
	if err != nil || len(recs) != 3 {
		t.Fatalf("replay: %d records, %v", len(recs), err)
	}
	var want []byte
	for _, r := range recs {
		want = append(want, storage.EncodeWALRecord(r)...)
	}
	if !bytes.HasSuffix(data, want) {
		t.Fatalf("segment payload bytes differ from shipped framing")
	}
	// And the segment's record region decodes as a shipped stream.
	sr := storage.NewWALStreamReader(bytes.NewReader(want))
	for i := 0; ; i++ {
		rec, err := sr.Next()
		if err == io.EOF {
			if i != 3 {
				t.Fatalf("stream yielded %d records, want 3", i)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.Epoch != recs[i].Epoch {
			t.Fatalf("record %d: epoch %d, want %d", i, rec.Epoch, recs[i].Epoch)
		}
	}
}

// TestWALStreamCorruption: every single-byte flip and every mid-record
// truncation of a two-record stream must fail with ErrCorrupt (never a
// panic, never a silent wrong record), after yielding at most the valid
// prefix.
func TestWALStreamCorruption(t *testing.T) {
	a := storage.EncodeWALRecord(storage.WALRecord{Epoch: 5, Kind: 1, Payload: []byte("hello")})
	b := storage.EncodeWALRecord(storage.WALRecord{Epoch: 6, Kind: 2, Payload: []byte("world")})
	stream := append(append([]byte(nil), a...), b...)

	decodeAll := func(data []byte) (int, error) {
		sr := storage.NewWALStreamReader(bytes.NewReader(data))
		n := 0
		for {
			_, err := sr.Next()
			if err == io.EOF {
				return n, nil
			}
			if err != nil {
				return n, err
			}
			n++
		}
	}

	for i := range stream {
		mut := append([]byte(nil), stream...)
		mut[i] ^= 0x01
		n, err := decodeAll(mut)
		if err == nil {
			t.Fatalf("flip byte %d: decoded %d records cleanly, want ErrCorrupt", i, n)
		}
		if !errors.Is(err, storage.ErrCorrupt) {
			t.Fatalf("flip byte %d: unclassified error: %v", i, err)
		}
	}
	for i := 1; i < len(stream); i++ {
		if i == len(a) {
			continue // a record boundary is a clean EOF, not a tear
		}
		n, err := decodeAll(stream[:i])
		if !errors.Is(err, storage.ErrCorrupt) {
			t.Fatalf("truncate at %d: got %d records, err %v, want ErrCorrupt", i, n, err)
		}
		if want := 0; i > len(a) {
			want = 1
			if n != want {
				t.Fatalf("truncate at %d: %d records before the tear, want %d", i, n, want)
			}
		}
	}
}

// TestWALStreamEpochGap: a stream whose records skip an epoch is damage,
// not data — the contiguity discipline of ReplayWAL applies on the wire.
func TestWALStreamEpochGap(t *testing.T) {
	stream := append(
		storage.EncodeWALRecord(storage.WALRecord{Epoch: 3, Kind: 1, Payload: []byte("x")}),
		storage.EncodeWALRecord(storage.WALRecord{Epoch: 5, Kind: 1, Payload: []byte("y")})...,
	)
	sr := storage.NewWALStreamReader(bytes.NewReader(stream))
	if _, err := sr.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Next(); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("epoch gap: %v, want ErrCorrupt", err)
	}
}

// TestReadWALAfter covers the tail read: arbitrary cuts, cuts at and
// past the head, and a missing directory.
func TestReadWALAfter(t *testing.T) {
	const n = 20
	dir := shipWAL(t, n, 64) // tiny segments force several rotations
	segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(segs) < 3 {
		t.Fatalf("want several segments, got %v (%v)", segs, err)
	}
	for after := uint64(0); after <= n+2; after++ {
		recs, err := storage.ReadWALAfter(dir, after)
		if err != nil {
			t.Fatalf("after %d: %v", after, err)
		}
		want := 0
		if after < n {
			want = int(n - after)
		}
		if len(recs) != want {
			t.Fatalf("after %d: %d records, want %d", after, len(recs), want)
		}
		for i, r := range recs {
			if r.Epoch != after+uint64(i)+1 {
				t.Fatalf("after %d: record %d has epoch %d", after, i, r.Epoch)
			}
		}
	}
	if recs, err := storage.ReadWALAfter(filepath.Join(t.TempDir(), "missing"), 0); err != nil || len(recs) != 0 {
		t.Fatalf("missing dir: %d records, %v", len(recs), err)
	}
}

// TestReadWALAfterTornTail: a torn final record reports ErrCorrupt but
// still hands back the valid tail prefix — exactly what a leader needs
// to ship everything durable while a concurrent append is mid-write.
func TestReadWALAfterTornTail(t *testing.T) {
	dir := shipWAL(t, 5, storage.DefaultWALSegmentBytes)
	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	appendFile(t, segs[len(segs)-1], []byte{0x20, 'h', 'a', 'l', 'f'})

	recs, err := storage.ReadWALAfter(dir, 2)
	if !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("torn tail: err %v, want ErrCorrupt", err)
	}
	if len(recs) != 3 || recs[0].Epoch != 3 || recs[2].Epoch != 5 {
		t.Fatalf("torn tail: records %v, want epochs 3..5", recs)
	}
}

// TestWALFirstEpoch: the truncation horizon moves as checkpoints delete
// covered segments, and disappears when the log empties.
func TestWALFirstEpoch(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	w, err := storage.OpenWAL(dir, storage.WALOptions{SegmentBytes: 64, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, ok := w.FirstEpoch(); ok {
		t.Fatal("empty log reports a first epoch")
	}
	for e := uint64(1); e <= 12; e++ {
		if err := w.Append(e, 1, []byte("payload-payload")); err != nil {
			t.Fatal(err)
		}
	}
	if first, ok := w.FirstEpoch(); !ok || first != 1 {
		t.Fatalf("first epoch = %d,%v, want 1", first, ok)
	}
	if err := w.TruncateThrough(7); err != nil {
		t.Fatal(err)
	}
	first, ok := w.FirstEpoch()
	if !ok || first > 8 {
		t.Fatalf("after truncation through 7: first = %d,%v, want <= 8", first, ok)
	}
	if err := w.TruncateThrough(12); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.FirstEpoch(); ok {
		t.Fatal("fully truncated log still reports a first epoch")
	}
	// Reopening recomputes the horizon from the surviving files.
	w.Close()
	w2, err := storage.OpenWAL(dir, storage.WALOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if _, ok := w2.FirstEpoch(); ok {
		t.Fatal("reopened empty log reports a first epoch")
	}
}

// TestReadWALAfterN: the chunked tail read returns at most max records,
// still contiguous from the cut, and a full chunk is valid even when
// damage lurks in segments past it.
func TestReadWALAfterN(t *testing.T) {
	const n = 20
	dir := shipWAL(t, n, 64)
	recs, err := storage.ReadWALAfterN(dir, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || recs[0].Epoch != 4 || recs[4].Epoch != 8 {
		t.Fatalf("chunk = %v, want epochs 4..8", recs)
	}
	if recs, err := storage.ReadWALAfterN(dir, 3, 100); err != nil || len(recs) != n-3 {
		t.Fatalf("oversized cap: %d records, %v", len(recs), err)
	}
	// Corrupt the last segment: a chunk wholly before it is unaffected.
	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	appendFile(t, segs[len(segs)-1], []byte{0x30, 'x'})
	recs, err = storage.ReadWALAfterN(dir, 0, 3)
	if err != nil || len(recs) != 3 || recs[0].Epoch != 1 {
		t.Fatalf("chunk before damage: %d records, %v", len(recs), err)
	}
	// An uncapped read still reports the damage alongside the prefix.
	if _, err := storage.ReadWALAfter(dir, 0); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("uncapped read of damaged log: %v, want ErrCorrupt", err)
	}
}
