package storage_test

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"github.com/uta-db/previewtables/internal/fig1"
	"github.com/uta-db/previewtables/internal/freebase"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/storage"
)

func TestRoundTripFig1(t *testing.T) {
	g := fig1.Graph()
	var buf bytes.Buffer
	if err := storage.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := storage.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats() != g2.Stats() {
		t.Errorf("stats: %v vs %v", g.Stats(), g2.Stats())
	}
	if err := g2.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	will, ok := g2.EntityByName("Will Smith")
	if !ok || len(g2.Entity(will).Types) != 2 {
		t.Error("multi-typed entity lost")
	}
	// Edge identity preserved in order.
	for i := 0; i < g.NumEdges(); i++ {
		a := g.Edge(graph.EdgeID(i))
		b := g2.Edge(graph.EdgeID(i))
		if g.EntityName(a.From) != g2.EntityName(b.From) ||
			g.EntityName(a.To) != g2.EntityName(b.To) ||
			g.RelType(a.Rel).Name != g2.RelType(b.Rel).Name {
			t.Fatalf("edge %d differs after round trip", i)
		}
	}
}

func TestRoundTripGeneratedDomain(t *testing.T) {
	g, err := freebase.Generate("basketball", freebase.GenOptions{Scale: 1e-4, Seed: 7, MinEntities: 300, MinEdges: 1000})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := storage.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := storage.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats() != g2.Stats() {
		t.Errorf("stats: %v vs %v", g.Stats(), g2.Stats())
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	g := fig1.Graph()
	var buf bytes.Buffer
	if err := storage.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a byte in the middle (entity names region).
	data[len(data)/2] ^= 0xff
	_, err := storage.Read(bytes.NewReader(data))
	if err == nil {
		t.Fatal("corrupted snapshot read succeeded")
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	_, err := storage.Read(bytes.NewReader([]byte("NOPE....")))
	if !errors.Is(err, storage.ErrCorrupt) {
		t.Errorf("bad magic: err = %v, want ErrCorrupt", err)
	}
	// Valid magic, bogus version.
	_, err = storage.Read(bytes.NewReader([]byte{'E', 'G', 'P', 'T', 99}))
	if err == nil {
		t.Error("unsupported version accepted")
	}
}

func TestTruncatedSnapshot(t *testing.T) {
	g := fig1.Graph()
	var buf bytes.Buffer
	if err := storage.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{5, len(data) / 2, len(data) - 2} {
		if _, err := storage.Read(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestEmptyGraphRoundTrip(t *testing.T) {
	var b graph.Builder
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := storage.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := storage.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEntities() != 0 || g2.NumTypes() != 0 {
		t.Error("empty graph round trip not empty")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fig1.egpt")
	g := fig1.Graph()
	if err := storage.SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := storage.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats() != g2.Stats() {
		t.Errorf("stats: %v vs %v", g.Stats(), g2.Stats())
	}
	if _, err := storage.LoadFile(filepath.Join(dir, "missing.egpt")); err == nil {
		t.Error("loading a missing file should fail")
	}
}

func TestCheckpointerSkipsUnchangedEpochs(t *testing.T) {
	dir := t.TempDir()
	ck := storage.NewCheckpointer(filepath.Join(dir, "g.egpt"))
	g := fig1.Graph()

	wrote, err := ck.Save(g, 0)
	if err != nil || !wrote {
		t.Fatalf("first save: wrote=%v err=%v, want write", wrote, err)
	}
	wrote, err = ck.Save(g, 0)
	if err != nil || wrote {
		t.Fatalf("same-epoch save: wrote=%v err=%v, want skip", wrote, err)
	}
	wrote, err = ck.Save(g, 3)
	if err != nil || !wrote {
		t.Fatalf("new-epoch save: wrote=%v err=%v, want write", wrote, err)
	}

	loaded, err := storage.LoadFile(ck.Path())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats() != g.Stats() {
		t.Fatalf("checkpoint round trip: %v vs %v", loaded.Stats(), g.Stats())
	}
}

func TestCheckpointerFailureStaysRetryable(t *testing.T) {
	// A path whose parent does not exist fails; the epoch must not be
	// recorded as saved, so a retry against a fixed path would write.
	ck := storage.NewCheckpointer(filepath.Join(t.TempDir(), "missing", "g.egpt"))
	if wrote, err := ck.Save(fig1.Graph(), 1); err == nil || wrote {
		t.Fatalf("save into missing dir: wrote=%v err=%v, want error", wrote, err)
	}
}
