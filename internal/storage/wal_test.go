package storage_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/uta-db/previewtables/internal/fig1"
	"github.com/uta-db/previewtables/internal/storage"
)

// appendAll writes records to a fresh WAL in dir and closes it.
func appendAll(t testing.TB, dir string, opts storage.WALOptions, recs []storage.WALRecord) {
	t.Helper()
	w, err := storage.OpenWAL(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r.Epoch, r.Kind, r.Payload); err != nil {
			t.Fatalf("append epoch %d: %v", r.Epoch, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// testRecords builds a batch sequence with payload shapes that exercise
// the framing: empty, single-byte, longer-than-one-varint-byte, and
// bytes that look like WAL structure.
func testRecords(n int) []storage.WALRecord {
	recs := make([]storage.WALRecord, n)
	for i := range recs {
		var payload []byte
		switch i % 4 {
		case 0:
			payload = nil
		case 1:
			payload = []byte{0xff}
		case 2:
			payload = bytes.Repeat([]byte{byte(i), 0x00, 0x7f}, 60) // >127 bytes: two-byte recLen varint
		case 3:
			payload = []byte("EGWL\x01\x05fake record")
		}
		recs[i] = storage.WALRecord{Epoch: uint64(i + 1), Kind: byte(i%3 + 1), Payload: payload}
	}
	return recs
}

func sameRecords(t *testing.T, got, want []storage.WALRecord, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i].Epoch != want[i].Epoch || got[i].Kind != want[i].Kind || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("%s: record %d differs: got {%d %d %x}, want {%d %d %x}",
				what, i, got[i].Epoch, got[i].Kind, got[i].Payload, want[i].Epoch, want[i].Kind, want[i].Payload)
		}
	}
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := testRecords(9)
	appendAll(t, dir, storage.WALOptions{}, want)
	got, err := storage.ReplayWAL(dir)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	sameRecords(t, got, want, "round trip")
}

func TestWALReplayMissingDirIsEmpty(t *testing.T) {
	recs, err := storage.ReplayWAL(filepath.Join(t.TempDir(), "nope"))
	if err != nil || len(recs) != 0 {
		t.Fatalf("missing dir: %d records, err %v; want empty, nil", len(recs), err)
	}
}

func TestWALSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	want := testRecords(12)
	// Tiny threshold: every record lands in (roughly) its own segment.
	appendAll(t, dir, storage.WALOptions{SegmentBytes: 1}, want)
	segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("rotation produced %d segments, want several", len(segs))
	}
	got, err := storage.ReplayWAL(dir)
	if err != nil {
		t.Fatalf("replay across segments: %v", err)
	}
	sameRecords(t, got, want, "multi-segment replay")
}

func TestWALAppendEpochDiscipline(t *testing.T) {
	w, err := storage.OpenWAL(t.TempDir(), storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Empty log accepts any starting epoch (recovery after a
	// checkpoint-only restart starts mid-sequence).
	if err := w.Append(41, 1, []byte("a")); err != nil {
		t.Fatalf("first append: %v", err)
	}
	if err := w.Append(43, 1, []byte("b")); err == nil {
		t.Fatal("gap accepted: epoch 43 after 41")
	}
	if err := w.Append(41, 1, []byte("b")); err == nil {
		t.Fatal("repeat accepted: epoch 41 after 41")
	}
	if err := w.Append(42, 1, []byte("b")); err != nil {
		t.Fatalf("contiguous append: %v", err)
	}
	if last, ok := w.LastEpoch(); !ok || last != 42 {
		t.Fatalf("LastEpoch = %d,%v, want 42,true", last, ok)
	}
}

func TestWALReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	appendAll(t, dir, storage.WALOptions{}, testRecords(3))

	w, err := storage.OpenWAL(dir, storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if last, ok := w.LastEpoch(); !ok || last != 3 {
		t.Fatalf("reopened LastEpoch = %d,%v, want 3,true", last, ok)
	}
	if err := w.Append(5, 1, nil); err == nil {
		t.Fatal("reopened WAL accepted a gap")
	}
	if err := w.Append(4, 1, []byte("resumed")); err != nil {
		t.Fatal(err)
	}
	w.Close()

	got, err := storage.ReplayWAL(dir)
	if err != nil {
		t.Fatalf("replay after reopen: %v", err)
	}
	want := append(testRecords(3), storage.WALRecord{Epoch: 4, Kind: 1, Payload: []byte("resumed")})
	sameRecords(t, got, want, "reopen")
}

// TestWALOpenTrimsTornTail is the crash-mid-append scenario: garbage
// after the last intact record (a torn write) must be dropped by
// OpenWAL so that post-recovery appends land after real data, and the
// whole log replays cleanly again.
func TestWALOpenTrimsTornTail(t *testing.T) {
	dir := t.TempDir()
	want := testRecords(4)
	appendAll(t, dir, storage.WALOptions{}, want)
	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	if len(segs) != 1 {
		t.Fatalf("want one segment, got %v", segs)
	}
	f, err := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x09, 'h', 'a', 'l', 'f'}); err != nil { // half a record
		t.Fatal(err)
	}
	f.Close()

	if _, err := storage.ReplayWAL(dir); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("torn tail replay error = %v, want ErrCorrupt", err)
	}

	w, err := storage.OpenWAL(dir, storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(5, 2, []byte("after crash")); err != nil {
		t.Fatalf("append after trim: %v", err)
	}
	w.Close()

	got, err := storage.ReplayWAL(dir)
	if err != nil {
		t.Fatalf("replay after trim+append: %v", err)
	}
	sameRecords(t, got, append(want, storage.WALRecord{Epoch: 5, Kind: 2, Payload: []byte("after crash")}), "trimmed")
}

// TestWALOpenDropsSegmentsPastCorruption: when an early segment is
// damaged, everything after it is unreachable by replay (the prefix
// ends at the damage), so OpenWAL deletes it rather than appending a
// new record after a hole.
func TestWALOpenDropsSegmentsPastCorruption(t *testing.T) {
	dir := t.TempDir()
	appendAll(t, dir, storage.WALOptions{SegmentBytes: 1}, testRecords(6))
	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	if len(segs) < 3 {
		t.Fatalf("want several segments, got %v", segs)
	}
	// Flip a payload byte in the middle segment.
	mid := segs[len(segs)/2]
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0xff
	if err := os.WriteFile(mid, data, 0o644); err != nil {
		t.Fatal(err)
	}

	prefix, err := storage.ReplayWAL(dir)
	if !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("replay error = %v, want ErrCorrupt", err)
	}

	w, err := storage.OpenWAL(dir, storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	last, ok := w.LastEpoch()
	if !ok || last != uint64(len(prefix)) {
		t.Fatalf("LastEpoch after trim = %d,%v, want %d", last, ok, len(prefix))
	}
	if err := w.Append(last+1, 1, []byte("resume")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got, err := storage.ReplayWAL(dir)
	if err != nil {
		t.Fatalf("replay after drop: %v", err)
	}
	sameRecords(t, got, append(testRecords(len(prefix)), storage.WALRecord{Epoch: last + 1, Kind: 1, Payload: []byte("resume")}), "post-drop")
}

func TestWALTruncateThrough(t *testing.T) {
	dir := t.TempDir()
	w, err := storage.OpenWAL(dir, storage.WALOptions{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(10)
	for _, r := range recs {
		if err := w.Append(r.Epoch, r.Kind, r.Payload); err != nil {
			t.Fatal(err)
		}
	}
	countSegs := func() int {
		segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
		if err != nil {
			t.Fatal(err)
		}
		return len(segs)
	}
	before := countSegs()
	if err := w.TruncateThrough(7); err != nil {
		t.Fatal(err)
	}
	after := countSegs()
	if after >= before {
		t.Fatalf("truncation did not shrink the log: %d → %d segments", before, after)
	}
	got, err := storage.ReplayWAL(dir)
	if err != nil {
		t.Fatalf("replay after truncation: %v", err)
	}
	if len(got) == 0 || got[len(got)-1].Epoch != 10 {
		t.Fatalf("truncation lost the tail: %d records, last %v", len(got), got)
	}
	if got[0].Epoch > 8 {
		t.Fatalf("truncation deleted epoch 8's segment: replay starts at %d", got[0].Epoch)
	}
	sameRecords(t, got, recs[got[0].Epoch-1:], "post-truncation tail")

	// A checkpoint at the newest epoch empties the log entirely, and the
	// epoch discipline survives in memory.
	if err := w.TruncateThrough(10); err != nil {
		t.Fatal(err)
	}
	if n := countSegs(); n != 0 {
		t.Fatalf("full truncation left %d segments", n)
	}
	if err := w.Append(12, 1, nil); err == nil {
		t.Fatal("gap accepted after full truncation")
	}
	if err := w.Append(11, 1, []byte("next")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got, err = storage.ReplayWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, got, []storage.WALRecord{{Epoch: 11, Kind: 1, Payload: []byte("next")}}, "after full truncation")
}

// TestReplayWALCorruptExhaustive is the crash-injection property test:
// for a recorded WAL, truncating at every byte offset and flipping every
// byte must each replay to a valid prefix of the original batches — or
// fail with ErrCorrupt — and never to a structurally valid but wrong
// batch. Mirrors TestReadCorruptExhaustive for the snapshot codec.
func TestReplayWALCorruptExhaustive(t *testing.T) {
	recordDir := t.TempDir()
	want := testRecords(6)
	appendAll(t, recordDir, storage.WALOptions{}, want)
	segs, err := filepath.Glob(filepath.Join(recordDir, "*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want one recorded segment, got %v (%v)", segs, err)
	}
	valid, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	segName := filepath.Base(segs[0])

	// check replays data as the only segment and asserts the prefix
	// property; fullOK says whether decoding everything cleanly is
	// acceptable for this mutation.
	check := func(t *testing.T, data []byte, fullOK bool, what string) {
		t.Helper()
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := storage.ReplayWAL(dir)
		if err != nil && !errors.Is(err, storage.ErrCorrupt) {
			t.Fatalf("%s: unclassified replay error: %v", what, err)
		}
		if len(got) > len(want) {
			t.Fatalf("%s: replay invented %d records", what, len(got)-len(want))
		}
		sameRecords(t, got, want[:len(got)], what)
		if err == nil && len(got) == len(want) && !fullOK {
			t.Fatalf("%s: corruption decoded cleanly to the full log", what)
		}
	}

	for i := 0; i <= len(valid); i++ {
		i := i
		t.Run(fmt.Sprintf("truncate/%d", i), func(t *testing.T) {
			check(t, valid[:i], i == len(valid), fmt.Sprintf("truncate at %d", i))
		})
	}
	for i := range valid {
		i := i
		t.Run(fmt.Sprintf("flip/%d", i), func(t *testing.T) {
			mut := append([]byte(nil), valid...)
			mut[i] ^= 0x01
			check(t, mut, false, fmt.Sprintf("flip byte %d", i))
		})
	}
}

func TestDurableCheckpointerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := fig1.Graph()
	ck := storage.NewDurableCheckpointer(dir, "fig1", nil)

	if _, _, ok, err := storage.LoadLatestCheckpoint(dir, "fig1"); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v, want absent", ok, err)
	}
	if wrote, err := ck.Save(g, 3); err != nil || !wrote {
		t.Fatalf("save epoch 3: wrote=%v err=%v", wrote, err)
	}
	if wrote, err := ck.Save(g, 3); err != nil || wrote {
		t.Fatalf("same-epoch save: wrote=%v err=%v, want skip", wrote, err)
	}
	if wrote, err := ck.Save(g, 7); err != nil || !wrote {
		t.Fatalf("save epoch 7: wrote=%v err=%v", wrote, err)
	}

	loaded, epoch, ok, err := storage.LoadLatestCheckpoint(dir, "fig1")
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if epoch != 7 {
		t.Fatalf("loaded epoch %d, want 7", epoch)
	}
	if loaded.Stats() != g.Stats() {
		t.Fatalf("checkpoint round trip: %v vs %v", loaded.Stats(), g.Stats())
	}
	// The superseded epoch-3 snapshot is gone.
	snaps, err := filepath.Glob(filepath.Join(dir, "fig1-*.egpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("superseded snapshots kept: %v", snaps)
	}
}

func TestDurableCheckpointerTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	w, err := storage.OpenWAL(filepath.Join(dir, "wal"), storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for e := uint64(1); e <= 5; e++ {
		if err := w.Append(e, 1, []byte("batch")); err != nil {
			t.Fatal(err)
		}
	}
	ck := storage.NewDurableCheckpointer(dir, "g", w)
	if _, err := ck.Save(fig1.Graph(), 5); err != nil {
		t.Fatal(err)
	}
	recs, err := storage.ReplayWAL(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("checkpoint at newest epoch left %d WAL records", len(recs))
	}
}

func BenchmarkWALAppend(b *testing.B) {
	payload := bytes.Repeat([]byte("previewtables"), 79) // ~1KB, one edge batch
	for _, bc := range []struct {
		name string
		opts storage.WALOptions
	}{
		{"sync", storage.WALOptions{}},
		{"nosync", storage.WALOptions{NoSync: true}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			w, err := storage.OpenWAL(b.TempDir(), bc.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Append(uint64(i+1), 1, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestWALAlignTo(t *testing.T) {
	dir := t.TempDir()
	w, err := storage.OpenWAL(dir, storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Empty log: align establishes the base.
	if err := w.AlignTo(10); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(10, 1, nil); err == nil {
		t.Fatal("aligned WAL accepted a repeat of the aligned epoch")
	}
	if err := w.Append(11, 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	// Forward align past the held records is a rewind refusal...
	if err := w.AlignTo(5); err == nil {
		t.Fatal("AlignTo rewound past a durable record")
	}
	// ...while aligning at or ahead of the durable tail is fine.
	if err := w.AlignTo(11); err != nil {
		t.Fatal(err)
	}
	if err := w.AlignTo(20); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(21, 1, []byte("b")); err != nil {
		t.Fatal(err)
	}
}
