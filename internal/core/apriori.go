package core

// Apriori-style optimal tight/diverse preview discovery (Alg. 3).
//
// Step 1 finds all k-subsets of entity types whose pairwise distances
// satisfy the constraint — equivalently, all k-cliques of the "compatibility
// graph" whose vertices are entity types and whose edges join pairs within
// distance d (tight) or at least d apart (diverse). Candidates are grown
// level-wise à la Apriori frequent-itemset mining [1]: two (i−1)-subsets
// sharing their first i−2 elements merge into an i-subset, and only the one
// new pair needs a distance check (the pairwise constraint is downward
// closed, so both parents being valid covers every other pair).
//
// Step 2 assembles the preview of each surviving k-subset per Theorem 3
// (ComputePreview) and returns the best.
//
// Candidate levels are stored flat (one []int32 with a fixed stride) rather
// than as a slice of slices: the d-sweep experiments of Fig. 9 generate
// millions of candidates at loose distance constraints, and per-candidate
// slice headers would triple the memory bill.

import (
	"math"

	"github.com/uta-db/previewtables/internal/graph"
)

// Apriori solves optimal tight/diverse preview discovery. In Concise mode
// (no distance constraint) every pair is compatible, making it an exhaustive
// — and slower — equivalent of BruteForce; it is permitted for testing but
// DynamicProgramming should be preferred.
func (d *Discoverer) Apriori(c Constraint) (Preview, error) {
	p, _, err := d.aprioriTop2(c)
	return p, err
}

// aprioriTop2 is Apriori returning, alongside the optimal preview, the
// runner-up score: the maximum preview score over every feasible k-subset
// other than the winner (-Inf when the winner is the only feasible
// subset). The runner-up is what the incremental Maintained state needs —
// an upper bound on how well any other subset scored — and it is a pure
// function of the candidate set, so sequential and parallel searches
// return the same value (top-2 merging is order-independent).
func (d *Discoverer) aprioriTop2(c Constraint) (Preview, float64, error) {
	if err := c.Validate(); err != nil {
		return Preview{}, 0, err
	}
	types := d.usableTypes()
	if len(types) < c.K {
		return Preview{}, 0, ErrNoPreview
	}
	var stats SearchStats

	// Level i holds all valid i-subsets as indexes into types, flattened
	// with stride i, lexicographically sorted by construction.
	k := c.K
	var level []int32
	stride := 0
	budget := c.MaxCandidates
	if k == 1 {
		stride = 1
		for i := range types {
			level = append(level, int32(i))
		}
	} else {
		stride = 2
		for i := 0; i < len(types); i++ {
			for j := i + 1; j < len(types); j++ {
				if d.distOK(c, types[i], types[j]) {
					if budget > 0 && len(level)/2 >= budget {
						return Preview{}, 0, ErrSearchBudget
					}
					level = append(level, int32(i), int32(j))
				}
			}
		}
		stats.CandidatesGenerated += len(level) / 2
		for size := 3; size <= k && len(level) > 0; size++ {
			remaining := -1 // negative: unlimited
			if budget > 0 {
				// Never negative: earlier levels error before exceeding
				// the budget. May be exactly 0 — joinLevel must still run,
				// since an empty join completes the search (ErrNoPreview)
				// rather than exceeding the budget.
				remaining = budget - stats.CandidatesGenerated
			}
			var err error
			if level, err = d.joinLevel(c, types, level, stride, remaining); err != nil {
				return Preview{}, 0, err
			}
			stride = size
			stats.CandidatesGenerated += len(level) / stride
		}
	}
	if len(level) == 0 {
		return Preview{}, 0, ErrNoPreview
	}

	var (
		bestKeys  []graph.TypeID
		bestScore float64
		runnerUp  = math.Inf(-1)
		found     bool
	)
	keys := make([]graph.TypeID, k)
	take := make([]int, k)
	for off := 0; off < len(level); off += stride {
		for i := 0; i < stride; i++ {
			keys[i] = types[level[off+i]]
		}
		stats.SubsetsScored++
		score := d.previewScore(keys, c.N, take)
		// Explicit lexicographic tie-break, matching BruteForce and the
		// parallel searches' merge step (levels are lex-sorted, so first
		// wins was already lex-smallest; now the policy is stated).
		//
		// Invariant: runnerUp is the max score over scored subsets other
		// than the current best. When a new subset displaces the best, the
		// old best (the max of everything before it) becomes the runner-up;
		// otherwise the new subset competes for runner-up directly.
		switch {
		case !found:
			bestScore = score
			bestKeys = append(bestKeys[:0], keys...)
			found = true
		case score > bestScore || (score == bestScore && lessKeys(keys, bestKeys)):
			runnerUp = bestScore
			bestScore = score
			bestKeys = append(bestKeys[:0], keys...)
		case score > runnerUp:
			runnerUp = score
		}
	}
	if !found {
		return Preview{}, 0, ErrNoPreview
	}
	best, err := d.ComputePreview(bestKeys, c.N)
	if err != nil {
		return Preview{}, 0, err
	}
	best.Stats = stats
	return best, runnerUp, nil
}

// joinLevel merges a flat level of (size-1)-subsets into the flat level of
// size-subsets. Blocks sharing a prefix are contiguous because levels are
// generated in lexicographic order; within a block only the new last-element
// pair needs a distance check. A non-negative limit caps how many
// candidates this level may produce before the join aborts with
// ErrSearchBudget (a limit of 0 errors on the first candidate but lets an
// empty join complete); negative means unlimited.
func (d *Discoverer) joinLevel(c Constraint, types []graph.TypeID, level []int32, stride, limit int) ([]int32, error) {
	var next []int32
	nCands := len(level) / stride
	produced := 0
	for a := 0; a < nCands; a++ {
		offA := a * stride
		for b := a + 1; b < nCands; b++ {
			offB := b * stride
			if !samePrefix(level[offA:offA+stride], level[offB:offB+stride]) {
				break
			}
			ta := types[level[offA+stride-1]]
			tb := types[level[offB+stride-1]]
			if !d.distOK(c, ta, tb) {
				continue
			}
			if limit >= 0 && produced >= limit {
				return nil, ErrSearchBudget
			}
			produced++
			next = append(next, level[offA:offA+stride]...)
			next = append(next, level[offB+stride-1])
		}
	}
	return next, nil
}

// samePrefix reports whether a and b agree on all but their last element.
func samePrefix(a, b []int32) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CliqueDFS solves the same problem as Apriori with a depth-first k-clique
// backtracking enumeration instead of level-wise candidate generation. The
// paper (citing Kose et al. [11]) argues the Apriori style beats classic
// clique enumeration; this implementation is the comparison point for that
// ablation (BenchmarkAblationCliqueEnumeration).
func (d *Discoverer) CliqueDFS(c Constraint) (Preview, error) {
	if err := c.Validate(); err != nil {
		return Preview{}, err
	}
	types := d.usableTypes()
	if len(types) < c.K {
		return Preview{}, ErrNoPreview
	}

	var (
		bestKeys  []graph.TypeID
		bestScore float64
		found     bool
		stats     SearchStats
	)
	subset := make([]graph.TypeID, c.K)
	take := make([]int, c.K)
	exceeded := false
	var rec func(pos, start int)
	rec = func(pos, start int) {
		if pos == c.K {
			stats.SubsetsScored++
			score := d.previewScore(subset, c.N, take)
			if !found || score > bestScore ||
				(score == bestScore && lessKeys(subset, bestKeys)) {
				bestScore = score
				bestKeys = append(bestKeys[:0], subset...)
				found = true
			}
			return
		}
		for i := start; i <= len(types)-(c.K-pos); i++ {
			if exceeded {
				return
			}
			t := types[i]
			ok := true
			for q := 0; q < pos; q++ {
				if !d.distOK(c, subset[q], t) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if c.MaxCandidates > 0 && stats.CandidatesGenerated >= c.MaxCandidates {
				exceeded = true
				return
			}
			stats.CandidatesGenerated++
			subset[pos] = t
			rec(pos+1, i+1)
		}
	}
	rec(0, 0)

	if exceeded {
		return Preview{}, ErrSearchBudget
	}
	if !found {
		return Preview{}, ErrNoPreview
	}
	best, err := d.ComputePreview(bestKeys, c.N)
	if err != nil {
		return Preview{}, err
	}
	best.Stats = stats
	return best, nil
}

// AnytimeBest is the anytime variant of discovery: it runs the depth-first
// clique enumeration under c.MaxCandidates and, where CliqueDFS reports
// ErrSearchBudget, instead returns the best preview found so far. The
// boolean reports whether enumeration completed within the budget (the
// result is then exact, equal to what Discover returns). Concise mode has
// no distance constraint and dynamic programming is already cheap and
// exact, so it is answered exactly regardless of budget.
//
// The enumeration is sequential and visits subsets in a fixed
// lexicographic order, so the partial answer for a given (scores, budget)
// pair is deterministic — a leader and a caught-up follower return the
// same bytes, which the response cache relies on.
func (d *Discoverer) AnytimeBest(c Constraint) (Preview, bool, error) {
	if err := c.Validate(); err != nil {
		return Preview{}, false, err
	}
	if c.Mode == Concise {
		p, err := d.DynamicProgramming(c)
		return p, true, err
	}
	types := d.usableTypes()
	if len(types) < c.K {
		return Preview{}, true, ErrNoPreview
	}

	var (
		bestKeys  []graph.TypeID
		bestScore float64
		found     bool
		stats     SearchStats
	)
	subset := make([]graph.TypeID, c.K)
	take := make([]int, c.K)
	exceeded := false
	var rec func(pos, start int)
	rec = func(pos, start int) {
		if pos == c.K {
			stats.SubsetsScored++
			score := d.previewScore(subset, c.N, take)
			if !found || score > bestScore ||
				(score == bestScore && lessKeys(subset, bestKeys)) {
				bestScore = score
				bestKeys = append(bestKeys[:0], subset...)
				found = true
			}
			return
		}
		for i := start; i <= len(types)-(c.K-pos); i++ {
			if exceeded {
				return
			}
			t := types[i]
			ok := true
			for q := 0; q < pos; q++ {
				if !d.distOK(c, subset[q], t) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if c.MaxCandidates > 0 && stats.CandidatesGenerated >= c.MaxCandidates {
				exceeded = true
				return
			}
			stats.CandidatesGenerated++
			subset[pos] = t
			rec(pos+1, i+1)
		}
	}
	rec(0, 0)

	if !found {
		if exceeded {
			return Preview{}, false, ErrSearchBudget
		}
		return Preview{}, true, ErrNoPreview
	}
	best, err := d.ComputePreview(bestKeys, c.N)
	if err != nil {
		return Preview{}, false, err
	}
	best.Stats = stats
	return best, !exceeded, nil
}
