package core

// Dynamic-programming optimal concise preview discovery (Alg. 2).
//
// With the entity types in an arbitrary fixed order τ1..τK, let
// opt(i, j, x) be the best score of a preview with exactly i tables and at
// most j non-key attributes drawn from the first x types. Then
//
//	opt(i, j, x) = max( opt(i, j, x−1),
//	                    max_{m=1..min(|Γτx|, j−(i−1))}
//	                        opt(i−1, j−m, x−1) + S(τx)·Σ top-m scores )
//
// — either τx contributes nothing, or it keys a table taking its top-m
// candidates (Theorem 3), reserving i−1 attributes for the other tables.
// The answer is opt(k, n, K), reconstructed via a choice table. The optimal
// substructure breaks under a pairwise distance constraint (membership of
// τx would depend on which types were chosen earlier, not just how many),
// which is why the paper pairs this algorithm with concise previews only.

import "github.com/uta-db/previewtables/internal/graph"

const negInf = -1e308 // effectively -∞ for score sums

// DynamicProgramming solves optimal concise preview discovery in
// O(K·k·n·min(n, maxΓ)) after the O(K·N log N) candidate sort done at
// Discoverer construction. It returns an error for Tight/Diverse modes.
func (d *Discoverer) DynamicProgramming(c Constraint) (Preview, error) {
	if err := c.Validate(); err != nil {
		return Preview{}, err
	}
	if c.Mode != Concise {
		return Preview{}, errNeedApriori(c.Mode)
	}
	types := d.usableTypes()
	if len(types) < c.K {
		return Preview{}, ErrNoPreview
	}

	k, n, kTypes := c.K, c.N, len(types)

	// dp is indexed [i][j]; rolled over x. choice[x][i][j] records how many
	// candidates τx took at state (i, j, x): 0 = skipped.
	cur := make([][]float64, k+1)
	prev := make([][]float64, k+1)
	for i := 0; i <= k; i++ {
		cur[i] = make([]float64, n+1)
		prev[i] = make([]float64, n+1)
	}
	choice := make([][][]int16, kTypes+1)
	for x := 0; x <= kTypes; x++ {
		choice[x] = make([][]int16, k+1)
		for i := 0; i <= k; i++ {
			choice[x][i] = make([]int16, n+1)
		}
	}

	// Base: x = 0. No types available: only i = 0 feasible.
	for i := 0; i <= k; i++ {
		for j := 0; j <= n; j++ {
			if i == 0 {
				prev[i][j] = 0
			} else {
				prev[i][j] = negInf
			}
		}
	}

	for x := 1; x <= kTypes; x++ {
		t := types[x-1]
		avail := len(d.ranked[t])
		ks := d.keyScore(t)
		for i := 0; i <= k; i++ {
			for j := 0; j <= n; j++ {
				best := prev[i][j]
				var bestM int16
				if i >= 1 && j >= i {
					mMax := j - (i - 1)
					if mMax > avail {
						mMax = avail
					}
					for m := 1; m <= mMax; m++ {
						below := prev[i-1][j-m]
						if below == negInf {
							continue
						}
						s := below + ks*d.prefix[t][m]
						if s > best {
							best = s
							bestM = int16(m)
						}
					}
				}
				cur[i][j] = best
				choice[x][i][j] = bestM
			}
		}
		cur, prev = prev, cur
	}
	// After the swap, prev holds the final layer.
	if prev[k][n] == negInf {
		return Preview{}, ErrNoPreview
	}

	// Reconstruct: walk choices from x = kTypes down.
	keys := make([]graph.TypeID, 0, k)
	takes := make([]int, 0, k)
	i, j := k, n
	for x := kTypes; x >= 1 && i > 0; x-- {
		m := int(choice[x][i][j])
		if m == 0 {
			continue
		}
		keys = append(keys, types[x-1])
		takes = append(takes, m)
		i--
		j -= m
	}
	if len(keys) != k {
		return Preview{}, ErrNoPreview
	}

	p := Preview{Tables: make([]Table, k)}
	for idx := range keys {
		// Reverse to present tables in type order.
		ri := len(keys) - 1 - idx
		p.Tables[idx] = d.buildTable(keys[ri], takes[ri])
		p.Score += p.Tables[idx].Score
	}
	p.Stats = SearchStats{SubsetsScored: 1}
	return p, nil
}

func errNeedApriori(m Mode) error {
	return &ModeError{Algorithm: "DynamicProgramming", Mode: m}
}

// ModeError reports an algorithm invoked on a preview space it does not
// support (the DP's optimal substructure breaks under distance constraints).
type ModeError struct {
	Algorithm string
	Mode      Mode
}

func (e *ModeError) Error() string {
	return "core: " + e.Algorithm + " does not support " + e.Mode.String() + " previews"
}
