package core

// Tuple materialization. A preview table conceptually has one tuple per
// entity of its key type (Definition 1); for display the paper "shows a few
// randomly sampled tuples in each preview table", leaving representative
// selection to future work. Both samplers are provided here: the paper's
// random sampling, and a coverage-greedy representative selection
// implementing that future-work item.

import (
	"math/rand"
	"sort"

	"github.com/uta-db/previewtables/internal/graph"
)

// Tuple is one materialized row of a preview table: the key entity and,
// aligned with the table's NonKeys, the (possibly empty, possibly
// multi-valued) sets of related entities.
type Tuple struct {
	Key    graph.EntityID
	Values [][]graph.EntityID
}

// Materialize builds the tuple for entity e in table t.
func Materialize(g *graph.EntityGraph, t *Table, e graph.EntityID) Tuple {
	tu := Tuple{Key: e, Values: make([][]graph.EntityID, len(t.NonKeys))}
	for i, c := range t.NonKeys {
		tu.Values[i] = g.Neighbors(e, c.Inc.Rel, c.Inc.Outgoing)
	}
	return tu
}

// MaterializeAll builds every tuple of table t, in key-entity order. The
// tuple count equals the number of entities of the key type.
func MaterializeAll(g *graph.EntityGraph, t *Table) []Tuple {
	ents := g.EntitiesOfType(t.Key)
	tuples := make([]Tuple, len(ents))
	for i, e := range ents {
		tuples[i] = Materialize(g, t, e)
	}
	return tuples
}

// SampleRandom materializes up to count tuples of table t chosen uniformly
// at random without replacement — the paper's display strategy. The order
// of the sample follows key-entity order for stable rendering.
func SampleRandom(g *graph.EntityGraph, t *Table, count int, rng *rand.Rand) []Tuple {
	ents := g.EntitiesOfType(t.Key)
	if count >= len(ents) {
		return MaterializeAll(g, t)
	}
	idx := rng.Perm(len(ents))[:count]
	sort.Ints(idx)
	tuples := make([]Tuple, count)
	for i, j := range idx {
		tuples[i] = Materialize(g, t, ents[j])
	}
	return tuples
}

// nonEmptyCells counts the non-empty non-key values of a tuple.
func nonEmptyCells(tu Tuple) int {
	var n int
	for _, v := range tu.Values {
		if len(v) > 0 {
			n++
		}
	}
	return n
}

// SampleRepresentative materializes up to count tuples chosen greedily to
// showcase the table (future work item 2 of Sec. 8): each pick maximizes
// the number of attribute values not yet exhibited by earlier picks,
// breaking ties toward tuples with more non-empty cells and then toward
// earlier entities for determinism. The result is in key-entity order.
func SampleRepresentative(g *graph.EntityGraph, t *Table, count int) []Tuple {
	all := MaterializeAll(g, t)
	if count >= len(all) {
		return all
	}
	type seenKey struct {
		attr int
		ent  graph.EntityID
	}
	seen := make(map[seenKey]bool)
	chosen := make([]bool, len(all))
	order := make([]int, 0, count)
	for len(order) < count {
		best, bestNovel, bestCells := -1, -1, -1
		for i := range all {
			if chosen[i] {
				continue
			}
			var novel int
			for a, vals := range all[i].Values {
				for _, v := range vals {
					if !seen[seenKey{a, v}] {
						novel++
					}
				}
			}
			cells := nonEmptyCells(all[i])
			if novel > bestNovel || (novel == bestNovel && cells > bestCells) {
				best, bestNovel, bestCells = i, novel, cells
			}
		}
		if best < 0 {
			break
		}
		chosen[best] = true
		order = append(order, best)
		for a, vals := range all[best].Values {
			for _, v := range vals {
				seen[seenKey{a, v}] = true
			}
		}
	}
	sort.Ints(order)
	tuples := make([]Tuple, len(order))
	for i, j := range order {
		tuples[i] = all[j]
	}
	return tuples
}
