package core_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/uta-db/previewtables/internal/core"
	"github.com/uta-db/previewtables/internal/fig1"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/score"
)

const eps = 1e-9

// fig1Discoverer builds a coverage/coverage discoverer over Fig. 1.
func fig1Discoverer(t *testing.T) (*graph.EntityGraph, *core.Discoverer) {
	t.Helper()
	g := fig1.Graph()
	set := score.Compute(g, score.DefaultWalkOptions())
	return g, core.New(set, core.Options{Key: score.KeyCoverage, NonKey: score.NonKeyCoverage})
}

func keyNames(g *graph.EntityGraph, p core.Preview) map[string]bool {
	names := map[string]bool{}
	for _, tb := range p.Tables {
		names[g.TypeName(tb.Key)] = true
	}
	return names
}

func TestOptimalConciseFig1(t *testing.T) {
	// Sec. 4 example: with coverage/coverage and (k=2, n=6) the optimal
	// concise preview scores 4·(6+5+4+2) + 2·(6+2) = 84 (the paper's
	// solution; a tie with FILM taking all five attributes also scores 84).
	g, d := fig1Discoverer(t)
	for _, algo := range []struct {
		name string
		run  func(core.Constraint) (core.Preview, error)
	}{
		{"BruteForce", d.BruteForce},
		{"DP", d.DynamicProgramming},
		{"Apriori", d.Apriori},
	} {
		p, err := algo.run(core.Constraint{K: 2, N: 6, Mode: core.Concise})
		if err != nil {
			t.Fatalf("%s: %v", algo.name, err)
		}
		if math.Abs(p.Score-84) > eps {
			t.Errorf("%s: optimal concise score = %v, want 84", algo.name, p.Score)
		}
		if len(p.Tables) != 2 {
			t.Errorf("%s: tables = %d, want 2", algo.name, len(p.Tables))
		}
		if n := p.NonKeyCount(); n != 6 {
			t.Errorf("%s: non-key attributes = %d, want 6", algo.name, n)
		}
		if !keyNames(g, p)[fig1.Film] {
			t.Errorf("%s: FILM must key a table in the optimal preview", algo.name)
		}
	}
}

func TestOptimalDiverseFig1(t *testing.T) {
	// Sec. 4 example: with (k=2, n=6, d=2) the optimal diverse preview is
	// {FILM with all five attributes; AWARD with Award Winners}:
	// 4·(6+5+4+2+1) + 3·2 = 78.
	g, d := fig1Discoverer(t)
	for _, algo := range []struct {
		name string
		run  func(core.Constraint) (core.Preview, error)
	}{
		{"BruteForce", d.BruteForce},
		{"Apriori", d.Apriori},
		{"CliqueDFS", d.CliqueDFS},
	} {
		p, err := algo.run(core.Constraint{K: 2, N: 6, Mode: core.Diverse, D: 2})
		if err != nil {
			t.Fatalf("%s: %v", algo.name, err)
		}
		if math.Abs(p.Score-78) > eps {
			t.Errorf("%s: optimal diverse score = %v, want 78", algo.name, p.Score)
		}
		names := keyNames(g, p)
		if !names[fig1.Film] || !names[fig1.Award] {
			t.Errorf("%s: keys = %v, want {FILM, AWARD}", algo.name, names)
		}
		for _, tb := range p.Tables {
			if g.TypeName(tb.Key) == fig1.Film && len(tb.NonKeys) != 5 {
				t.Errorf("%s: FILM table has %d non-keys, want all 5", algo.name, len(tb.NonKeys))
			}
		}
	}
}

func TestOptimalTightFig1(t *testing.T) {
	// d=1 restricts keys to adjacent types; {FILM, FILM ACTOR} still
	// achieves 84.
	_, d := fig1Discoverer(t)
	p, err := d.Apriori(core.Constraint{K: 2, N: 6, Mode: core.Tight, D: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Score-84) > eps {
		t.Errorf("optimal tight score = %v, want 84", p.Score)
	}
}

func TestDiscoverDispatch(t *testing.T) {
	_, d := fig1Discoverer(t)
	p1, err := d.Discover(core.Constraint{K: 2, N: 6, Mode: core.Concise})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := d.Discover(core.Constraint{K: 2, N: 6, Mode: core.Diverse, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1.Score-84) > eps || math.Abs(p2.Score-78) > eps {
		t.Errorf("Discover scores = %v, %v; want 84, 78", p1.Score, p2.Score)
	}
}

func TestDPRejectsDistanceModes(t *testing.T) {
	_, d := fig1Discoverer(t)
	_, err := d.DynamicProgramming(core.Constraint{K: 2, N: 6, Mode: core.Tight, D: 2})
	var me *core.ModeError
	if !errors.As(err, &me) {
		t.Fatalf("DP on tight previews: err = %v, want ModeError", err)
	}
	if me.Error() == "" {
		t.Error("ModeError message empty")
	}
}

func TestConstraintValidation(t *testing.T) {
	_, d := fig1Discoverer(t)
	if _, err := d.BruteForce(core.Constraint{K: 0, N: 5}); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := d.DynamicProgramming(core.Constraint{K: 3, N: 2}); err == nil {
		t.Error("n<k should fail")
	}
	if _, err := d.Apriori(core.Constraint{K: 2, N: 4, Mode: core.Tight, D: -1}); err == nil {
		t.Error("negative d should fail")
	}
}

func TestNoPreviewWhenKTooLarge(t *testing.T) {
	_, d := fig1Discoverer(t)
	for _, run := range []func(core.Constraint) (core.Preview, error){d.BruteForce, d.DynamicProgramming, d.Apriori} {
		if _, err := run(core.Constraint{K: 7, N: 10, Mode: core.Concise}); !errors.Is(err, core.ErrNoPreview) {
			t.Errorf("k beyond type count: err = %v, want ErrNoPreview", err)
		}
	}
}

func TestNoPreviewWhenDistanceInfeasible(t *testing.T) {
	// Fig. 3 has diameter 2: no pair is ≥ 5 apart.
	_, d := fig1Discoverer(t)
	for _, run := range []func(core.Constraint) (core.Preview, error){d.BruteForce, d.Apriori, d.CliqueDFS} {
		if _, err := run(core.Constraint{K: 2, N: 4, Mode: core.Diverse, D: 5}); !errors.Is(err, core.ErrNoPreview) {
			t.Errorf("infeasible distance: err = %v, want ErrNoPreview", err)
		}
	}
}

func TestSingleTablePreview(t *testing.T) {
	g, d := fig1Discoverer(t)
	p, err := d.Discover(core.Constraint{K: 1, N: 3, Mode: core.Concise})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Tables) != 1 || g.TypeName(p.Tables[0].Key) != fig1.Film {
		t.Errorf("k=1 preview should be a single FILM table, got %v", keyNames(g, p))
	}
	// FILM's top 3 by coverage: Actor 6, Genres 5, Director 4 → 4·15 = 60.
	if math.Abs(p.Score-60) > eps {
		t.Errorf("k=1 n=3 score = %v, want 60", p.Score)
	}
}

func TestTheorem3PrefixProperty(t *testing.T) {
	// Every table of every optimal preview takes a prefix of the ranked
	// candidate order: its m-th candidate score equals the m-th ranked.
	_, d := fig1Discoverer(t)
	p, err := d.BruteForce(core.Constraint{K: 3, N: 8, Mode: core.Concise})
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range p.Tables {
		ranked := d.Ranked(tb.Key)
		for i, c := range tb.NonKeys {
			if math.Abs(c.Score-ranked[i].Score) > eps {
				t.Errorf("table %d candidate %d score %v != ranked %v", tb.Key, i, c.Score, ranked[i].Score)
			}
		}
	}
}

func TestMonotonicityProposition2(t *testing.T) {
	// Prop. 2: widening a table (larger n for the same keys) never lowers
	// its score.
	g, d := fig1Discoverer(t)
	film, _ := g.TypeByName(fig1.Film)
	actor, _ := g.TypeByName(fig1.FilmActor)
	keys := []graph.TypeID{film, actor}
	var last float64 = -1
	for n := 2; n <= 8; n++ {
		p, err := d.ComputePreview(keys, n)
		if err != nil {
			t.Fatal(err)
		}
		if p.Score < last-eps {
			t.Errorf("score decreased when n grew to %d: %v < %v", n, p.Score, last)
		}
		last = p.Score
	}
}

func TestMonotonicityProposition1(t *testing.T) {
	// Prop. 1: a superset preview scores at least as much. Growing k (with
	// ample n) never lowers the optimum.
	_, d := fig1Discoverer(t)
	var last float64 = -1
	for k := 1; k <= 6; k++ {
		p, err := d.BruteForce(core.Constraint{K: k, N: k + 20, Mode: core.Concise})
		if err != nil {
			t.Fatal(err)
		}
		if p.Score < last-eps {
			t.Errorf("optimum decreased at k=%d: %v < %v", k, p.Score, last)
		}
		last = p.Score
	}
}

func TestComputePreviewErrors(t *testing.T) {
	g, d := fig1Discoverer(t)
	film, _ := g.TypeByName(fig1.Film)
	if _, err := d.ComputePreview(nil, 3); err == nil {
		t.Error("empty key set should fail")
	}
	if _, err := d.ComputePreview([]graph.TypeID{film, film}, 4); err == nil {
		t.Error("duplicate keys should fail")
	}
	if _, err := d.ComputePreview([]graph.TypeID{film}, 0); err == nil {
		t.Error("zero budget should fail")
	}
}

func TestComputePreviewExhaustsCandidates(t *testing.T) {
	// Budget beyond the schema's capacity: tables take everything available
	// and the preview simply has fewer than n non-keys (footnote 2).
	g, d := fig1Discoverer(t)
	film, _ := g.TypeByName(fig1.Film)
	p, err := d.ComputePreview([]graph.TypeID{film}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.NonKeyCount(); got != 5 {
		t.Errorf("non-keys = %d, want all 5 of FILM's candidates", got)
	}
}

func TestSearchStats(t *testing.T) {
	_, d := fig1Discoverer(t)
	p, err := d.BruteForce(core.Constraint{K: 2, N: 6, Mode: core.Concise})
	if err != nil {
		t.Fatal(err)
	}
	// C(6,2) = 15 subsets.
	if p.Stats.SubsetsScored != 15 {
		t.Errorf("brute force scored %d subsets, want 15", p.Stats.SubsetsScored)
	}
	pa, err := d.Apriori(core.Constraint{K: 2, N: 6, Mode: core.Diverse, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if pa.Stats.SubsetsScored >= 15 {
		t.Errorf("apriori scored %d subsets, want fewer than brute force's 15", pa.Stats.SubsetsScored)
	}
	if pa.Stats.CandidatesGenerated == 0 {
		t.Error("apriori should report generated candidates")
	}
}

func TestModeString(t *testing.T) {
	if core.Concise.String() != "Concise" || core.Tight.String() != "Tight" || core.Diverse.String() != "Diverse" {
		t.Error("mode names")
	}
	if core.Mode(9).String() == "" {
		t.Error("unknown mode should render")
	}
}

// ---------------------------------------------------------------------------
// Randomized cross-validation of the three algorithms.

// randomEntityGraph builds a small random typed entity graph.
func randomEntityGraph(rng *rand.Rand) *graph.EntityGraph {
	var b graph.Builder
	nTypes := rng.Intn(7) + 2
	types := make([]graph.TypeID, nTypes)
	for i := range types {
		types[i] = b.Type("T" + string(rune('A'+i)))
	}
	nRels := rng.Intn(12) + 1
	rels := make([]graph.RelTypeID, 0, nRels)
	for i := 0; i < nRels; i++ {
		from := types[rng.Intn(nTypes)]
		to := types[rng.Intn(nTypes)]
		rels = append(rels, b.RelType("r"+string(rune('0'+i%10))+string(rune('a'+i/10)), from, to))
	}
	nEnts := rng.Intn(30) + 5
	ents := make([]graph.EntityID, nEnts)
	for i := range ents {
		ents[i] = b.Entity("e"+string(rune('0'+i%10))+string(rune('a'+i/10)), types[rng.Intn(nTypes)])
	}
	nEdges := rng.Intn(60)
	for i := 0; i < nEdges; i++ {
		b.Edge(ents[rng.Intn(nEnts)], ents[rng.Intn(nEnts)], rels[rng.Intn(len(rels))])
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func randomOptions(rng *rand.Rand) core.Options {
	o := core.Options{Key: score.KeyCoverage, NonKey: score.NonKeyCoverage}
	if rng.Intn(2) == 0 {
		o.Key = score.KeyRandomWalk
	}
	if rng.Intn(2) == 0 {
		o.NonKey = score.NonKeyEntropy
	}
	return o
}

func TestDPMatchesBruteForceProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomEntityGraph(rng)
		set := score.Compute(g, score.DefaultWalkOptions())
		d := core.New(set, randomOptions(rng))
		k := rng.Intn(3) + 1
		n := k + rng.Intn(5)
		c := core.Constraint{K: k, N: n, Mode: core.Concise}
		pBF, errBF := d.BruteForce(c)
		pDP, errDP := d.DynamicProgramming(c)
		if (errBF == nil) != (errDP == nil) {
			t.Logf("seed %d: errBF=%v errDP=%v", seed, errBF, errDP)
			return false
		}
		if errBF != nil {
			return true
		}
		if math.Abs(pBF.Score-pDP.Score) > 1e-9*(1+math.Abs(pBF.Score)) {
			t.Logf("seed %d: BF=%v DP=%v (k=%d n=%d)", seed, pBF.Score, pDP.Score, k, n)
			return false
		}
		return pDP.NonKeyCount() <= n && len(pDP.Tables) == k
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestAprioriMatchesBruteForceProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomEntityGraph(rng)
		set := score.Compute(g, score.DefaultWalkOptions())
		d := core.New(set, randomOptions(rng))
		k := rng.Intn(3) + 1
		n := k + rng.Intn(5)
		mode := core.Tight
		if rng.Intn(2) == 0 {
			mode = core.Diverse
		}
		c := core.Constraint{K: k, N: n, Mode: mode, D: rng.Intn(3) + 1}
		pBF, errBF := d.BruteForce(c)
		pAP, errAP := d.Apriori(c)
		pDF, errDF := d.CliqueDFS(c)
		if (errBF == nil) != (errAP == nil) || (errBF == nil) != (errDF == nil) {
			t.Logf("seed %d: errBF=%v errAP=%v errDF=%v", seed, errBF, errAP, errDF)
			return false
		}
		if errBF != nil {
			return true
		}
		tol := 1e-9 * (1 + math.Abs(pBF.Score))
		if math.Abs(pBF.Score-pAP.Score) > tol || math.Abs(pBF.Score-pDF.Score) > tol {
			t.Logf("seed %d: BF=%v AP=%v DFS=%v (%+v)", seed, pBF.Score, pAP.Score, pDF.Score, c)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestDistanceConstraintHonored(t *testing.T) {
	// Every pair of tables in the returned preview satisfies the bound.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomEntityGraph(rng)
		set := score.Compute(g, score.DefaultWalkOptions())
		d := core.New(set, randomOptions(rng))
		mode := core.Tight
		if rng.Intn(2) == 0 {
			mode = core.Diverse
		}
		c := core.Constraint{K: rng.Intn(3) + 2, N: 12, Mode: mode, D: rng.Intn(3) + 1}
		p, err := d.Apriori(c)
		if err != nil {
			return true
		}
		m := d.Distances()
		keys := p.Keys()
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				dist := m.Dist(keys[i], keys[j])
				if mode == core.Tight && (dist < 0 || dist > c.D) {
					return false
				}
				if mode == core.Diverse && dist >= 0 && dist < c.D {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPreviewKeysDistinct(t *testing.T) {
	// Definition 1: preview tables have pairwise distinct key attributes.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomEntityGraph(rng)
		set := score.Compute(g, score.DefaultWalkOptions())
		d := core.New(set, randomOptions(rng))
		p, err := d.DynamicProgramming(core.Constraint{K: rng.Intn(4) + 1, N: 10, Mode: core.Concise})
		if err != nil {
			return true
		}
		seen := map[graph.TypeID]bool{}
		for _, tb := range p.Tables {
			if seen[tb.Key] {
				return false
			}
			seen[tb.Key] = true
			if len(tb.NonKeys) == 0 {
				return false // Definition 1: at least one non-key attribute
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTableScoreEquation2(t *testing.T) {
	// S(T) = S(τ) × Σ Sτ(γ) and S(P) = Σ S(T) hold exactly on outputs.
	_, d := fig1Discoverer(t)
	p, err := d.BruteForce(core.Constraint{K: 3, N: 7, Mode: core.Concise})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, tb := range p.Tables {
		var sum float64
		for _, c := range tb.NonKeys {
			sum += c.Score
		}
		if math.Abs(tb.Score-tb.KeyScore*sum) > eps {
			t.Errorf("table score %v != key %v × Σ %v", tb.Score, tb.KeyScore, sum)
		}
		total += tb.Score
	}
	if math.Abs(total-p.Score) > eps {
		t.Errorf("preview score %v != Σ tables %v", p.Score, total)
	}
}

// TestSearchBudget pins MaxCandidates: a starved budget aborts the
// tight/diverse searches with ErrSearchBudget, while a sufficient one
// returns exactly the unbounded result.
func TestSearchBudget(t *testing.T) {
	_, d := fig1Discoverer(t)
	// Diverse with d=0 degenerates: every pair is compatible, so the
	// candidate space is all k-subsets — the worst case the budget guards.
	c := core.Constraint{K: 3, N: 3, Mode: core.Diverse, D: 0}

	unbounded, err := d.Apriori(c)
	if err != nil {
		t.Fatal(err)
	}

	c.MaxCandidates = 2
	if _, err := d.Apriori(c); !errors.Is(err, core.ErrSearchBudget) {
		t.Errorf("Apriori with starved budget: got %v, want ErrSearchBudget", err)
	}
	if _, err := d.CliqueDFS(c); !errors.Is(err, core.ErrSearchBudget) {
		t.Errorf("CliqueDFS with starved budget: got %v, want ErrSearchBudget", err)
	}

	c.MaxCandidates = 1 << 20
	for name, f := range map[string]func(core.Constraint) (core.Preview, error){
		"Apriori": d.Apriori, "CliqueDFS": d.CliqueDFS,
	} {
		p, err := f(c)
		if err != nil {
			t.Fatalf("%s with ample budget: %v", name, err)
		}
		if math.Abs(p.Score-unbounded.Score) > eps {
			t.Errorf("%s budgeted score %v != unbounded %v", name, p.Score, unbounded.Score)
		}
	}
}

// TestSearchBudgetExactBoundary pins the boundary: when the search
// completes having generated exactly MaxCandidates candidates, the
// budget must not fire — the outcome (including ErrNoPreview) must match
// the unbounded run. Path schema a-b-c-d under Tight d=1: the compatible
// pairs are exactly the 3 path edges and no triple is pairwise-close, so
// the unbounded search generates 3 candidates and finds no preview.
func TestSearchBudgetExactBoundary(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	var rels []graph.RelType
	for i := 1; i < len(names); i++ {
		rels = append(rels, graph.RelType{Name: "r", From: graph.TypeID(i - 1), To: graph.TypeID(i)})
	}
	s, err := graph.NewSchema(names, rels)
	if err != nil {
		t.Fatal(err)
	}
	set := score.ComputeSchemaOnly(s, score.DefaultWalkOptions())
	d := core.New(set, core.Options{Key: score.KeyCoverage, NonKey: score.NonKeyCoverage})

	c := core.Constraint{K: 3, N: 3, Mode: core.Tight, D: 1}
	if _, err := d.Apriori(c); !errors.Is(err, core.ErrNoPreview) {
		t.Fatalf("unbounded: got %v, want ErrNoPreview", err)
	}
	p, _ := d.Apriori(core.Constraint{K: 2, N: 2, Mode: core.Tight, D: 1})
	if got := p.Stats.CandidatesGenerated; got != 3 {
		t.Fatalf("pair level generated %d candidates, want 3 (fixture drifted)", got)
	}
	c.MaxCandidates = 3 // exactly the pair level; the empty join must complete
	if _, err := d.Apriori(c); !errors.Is(err, core.ErrNoPreview) {
		t.Errorf("budget == candidates generated: got %v, want ErrNoPreview", err)
	}
	c.MaxCandidates = 2 // genuinely starved
	if _, err := d.Apriori(c); !errors.Is(err, core.ErrSearchBudget) {
		t.Errorf("starved budget: got %v, want ErrSearchBudget", err)
	}
}
