package core

// Incremental discovery across epochs. A live graph republishes its score
// set on every write batch, and rebuilding a Discoverer from scratch is
// cheap — but the tight/diverse *search* over it (Apriori) is the most
// expensive computation in the system (~1.2s on the 100k-entity bench
// graph). Maintained keeps a Discoverer current across epochs without
// re-searching, by combining two facts:
//
//  1. A write batch moves the non-key aggregates (coverage histograms,
//     entropy) of only the entity types it touches — the "dirty" set the
//     dynamic layer already tracks for its incremental score refresh. A
//     clean type's ranked candidate list and prefix sums are bit-identical
//     before and after, so the refreshed Discoverer reuses them and
//     re-ranks only the dirty types. Key scores under the random-walk
//     measure drift globally each epoch; Refresh diffs them across all
//     types, so walk drift simply widens the effective moved set.
//
//  2. The previous search's winner stays the winner until some moved
//     type's gain could carry another subset across the top-k boundary.
//     Each full search records a certificate: the winning key subset plus
//     a "rival" bound — an upper bound on the preview score of every
//     OTHER feasible subset. Refresh inflates the rival by the largest
//     possible total uplift a subset could collect from moved types; a
//     later Discover re-scores just the certified winner (O(k·n)) and
//     serves it when it still strictly beats the rival. Only when the
//     boundary is crossed does a full (parallel) re-search run, which
//     also re-seeds the rival from the true runner-up score.
//
// Soundness of the uplift bound: allocate() is exact (greedy on
// non-increasing, non-negative marginals), so a subset A's score is
// S(A) = max over budget splits of Σ_{t∈A} ks(t)·prefix[t][m_t]. For each
// moved type define uplift(t) = max_m [ks'(t)·prefix'[t][m] −
// ks(t)·prefix[t][m]]₊; then S'(A) ≤ S(A) + Σ_{t∈A∩moved} uplift(t) for
// every A, because the optimal new split is also *a* split under the old
// scores. A subset contains at most k types, so adding the top
// min(k,|moved|) uplifts to the rival preserves rival ≥ max_{A≠winner}
// S'(A). Feasibility (usable types, schema distances) is purely
// structural — RankNonKeys includes every incidence regardless of score —
// so the subset space cannot grow under a non-structural refresh, and
// "no preview" / "budget exceeded" outcomes carry across epochs too.
//
// The strict inequality S'(winner) > rival matters for byte-identity:
// it implies the winner strictly beats every other subset, so a cold
// search's lexicographic tie-break must also select it.

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/par"
	"github.com/uta-db/previewtables/internal/score"
)

// ErrStaleEpoch is returned by DiscoverAt/AnytimeAt when the Maintained
// state is not at the requested epoch (the caller raced a refresh, or no
// refresh has happened yet). Callers fall back to a cold Discoverer for
// their view.
var ErrStaleEpoch = errors.New("core: maintained discoverer not at requested epoch")

// maxCerts bounds the certificate map: constraints arrive from request
// parameters, and an adversarial parameter scan must not grow state
// without bound. Eviction is arbitrary — a dropped certificate only costs
// one extra full search.
const maxCerts = 256

// topCert certifies one constraint's search outcome at the current epoch.
type topCert struct {
	// keys is the winning key subset (table order). nil when err is set.
	keys []graph.TypeID
	// rival upper-bounds the preview score of every feasible subset other
	// than keys. -Inf when keys is the only feasible subset.
	rival float64
	// err records a structural outcome (ErrNoPreview, ErrSearchBudget):
	// the feasible space and candidate volume depend only on the schema,
	// so these survive every non-structural refresh.
	err error
}

// searchFlight deduplicates concurrent full searches for one constraint:
// followers wait for the owner's result instead of re-running a
// seconds-long Apriori.
type searchFlight struct {
	epoch uint64
	done  chan struct{}
	p     Preview
	err   error
}

// Maintained carries a Discoverer forward across the epochs of one live
// graph for one (key measure, non-key measure) pair. All methods are safe
// for concurrent use; full searches run outside the state lock so cheap
// certificate hits (and anytime answers) are never blocked behind one.
type Maintained struct {
	opts Options

	mu       sync.Mutex
	disc     *Discoverer
	epoch    uint64
	init     bool
	certs    map[Constraint]*topCert
	inflight map[Constraint]*searchFlight

	// Counters observable by tests and benchmarks.
	fullSearches atomic.Int64
	certServes   atomic.Int64
}

// NewMaintained returns an empty Maintained state; the first Refresh
// populates it (and is always a cold build).
func NewMaintained(opts Options) *Maintained {
	return &Maintained{
		opts:     opts,
		certs:    make(map[Constraint]*topCert),
		inflight: make(map[Constraint]*searchFlight),
	}
}

// Epoch returns the epoch the state is maintained at, and whether it has
// been initialized at all.
func (m *Maintained) Epoch() (uint64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch, m.init
}

// FullSearches returns how many full Apriori searches have run (tests and
// benchmarks assert the certificate path avoids them).
func (m *Maintained) FullSearches() int64 { return m.fullSearches.Load() }

// CertServes returns how many discoveries were served from a certificate
// without a full search.
func (m *Maintained) CertServes() int64 { return m.certServes.Load() }

// Refresh advances the maintained state to epoch over the given score
// set. dirty lists the entity types whose non-key aggregates moved since
// the previous refresh (union over all intervening batches); structural
// forces a cold rebuild (new types or relationship types, a recovery or
// resync where batch contiguity broke, or an unknown delta). Epochs at or
// below the current one are ignored.
func (m *Maintained) Refresh(set *score.Set, epoch uint64, dirty []graph.TypeID, structural bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.init && epoch <= m.epoch {
		return
	}
	old := m.disc
	if !m.init || structural || old.schema.NumTypes() != set.Schema().NumTypes() {
		m.disc = New(set, m.opts)
		// Certificates (including error certificates) assume an unchanged
		// feasible space; a structural change voids them all.
		m.certs = make(map[Constraint]*topCert)
		m.epoch, m.init = epoch, true
		return
	}

	nd := rebuiltFrom(old, set, dirty, m.opts)

	// Effective moved set: the declared dirty types plus every type whose
	// key score drifted (the random-walk measure moves globally on any
	// edge change). O(T) — negligible next to re-ranking.
	moved := make(map[graph.TypeID]bool, len(dirty))
	for _, t := range dirty {
		moved[t] = true
	}
	n := set.Schema().NumTypes()
	for t := 0; t < n; t++ {
		id := graph.TypeID(t)
		if !moved[id] && old.keyScore(id) != nd.keyScore(id) {
			moved[id] = true
		}
	}

	if len(m.certs) > 0 && len(moved) > 0 {
		// Sorted descending uplifts with prefix sums: certificate k's
		// rival inflates by the top min(k, |moved|) uplifts.
		uplifts := make([]float64, 0, len(moved))
		for t := range moved {
			if u := upliftOf(old, nd, t); u > 0 {
				uplifts = append(uplifts, u)
			}
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(uplifts)))
		for c, cert := range m.certs {
			if cert.err != nil {
				continue
			}
			top := c.K
			if top > len(uplifts) {
				top = len(uplifts)
			}
			for i := 0; i < top; i++ {
				cert.rival += uplifts[i]
			}
		}
	}

	m.disc = nd
	m.epoch = epoch
}

// rebuiltFrom builds the refreshed Discoverer: clean types reuse the old
// ranked/prefix slices (their inputs did not move, so a fresh ranking
// would be bit-identical), dirty types re-rank, and the all-pairs
// distance matrix carries over unchanged (the schema graph did not
// change structurally).
func rebuiltFrom(old *Discoverer, set *score.Set, dirty []graph.TypeID, opts Options) *Discoverer {
	s := set.Schema()
	d := &Discoverer{set: set, schema: s, opts: opts}
	n := s.NumTypes()
	d.ranked = make([][]score.RankedIncidence, n)
	d.prefix = make([][]float64, n)
	copy(d.ranked, old.ranked)
	copy(d.prefix, old.prefix)
	par.ForEach(opts.Parallelism, len(dirty), func(i int) {
		t := dirty[i]
		r := set.RankNonKeys(opts.NonKey, t)
		d.ranked[t] = r
		p := make([]float64, len(r)+1)
		for j, c := range r {
			p[j+1] = p[j] + c.Score
		}
		d.prefix[t] = p
	})
	d.dist = old.Distances()
	d.distOnce.Do(func() {})
	return d
}

// upliftOf bounds how much more a single table keyed by t can contribute
// under the new scores than under the old, over every possible candidate
// count m: max_m [ks'·prefix'[m] − ks·prefix[m]], clamped at 0.
func upliftOf(old, nd *Discoverer, t graph.TypeID) float64 {
	ksO, ksN := old.keyScore(t), nd.keyScore(t)
	pO, pN := old.prefix[t], nd.prefix[t]
	var u float64
	for m := 1; m < len(pN) && m < len(pO); m++ {
		if diff := ksN*pN[m] - ksO*pO[m]; diff > u {
			u = diff
		}
	}
	return u
}

// DiscoverAt solves the discovery problem exactly at the given epoch,
// returning precisely what a cold Discoverer built from that epoch's
// score set would return from Discover. It serves from a certificate when
// the certified winner still strictly beats the rival bound, and
// otherwise runs a full (parallel) search — outside the state lock, with
// concurrent searches for the same constraint collapsed to one — and
// installs a fresh certificate. Returns ErrStaleEpoch when the state is
// not at epoch.
func (m *Maintained) DiscoverAt(epoch uint64, c Constraint) (Preview, error) {
	if err := c.Validate(); err != nil {
		return Preview{}, err
	}
	m.mu.Lock()
	if !m.init || m.epoch != epoch {
		m.mu.Unlock()
		return Preview{}, ErrStaleEpoch
	}
	d := m.disc
	if c.Mode == Concise {
		// Dynamic programming is display-bounded and cheap; no
		// certificate machinery needed.
		m.mu.Unlock()
		return d.DynamicProgramming(c)
	}
	if cert, ok := m.certs[c]; ok {
		if cert.err != nil {
			m.certServes.Add(1)
			m.mu.Unlock()
			return Preview{}, cert.err
		}
		if p, ok := certPreview(d, cert, c); ok {
			m.certServes.Add(1)
			m.mu.Unlock()
			return p, nil
		}
	}
	if f := m.inflight[c]; f != nil && f.epoch == epoch {
		m.mu.Unlock()
		<-f.done
		return f.p, f.err
	}
	f := &searchFlight{epoch: epoch, done: make(chan struct{})}
	m.inflight[c] = f
	m.mu.Unlock()

	m.fullSearches.Add(1)
	p, runnerUp, err := d.aprioriParallelTop2(c, par.Workers(m.opts.Parallelism))

	m.mu.Lock()
	if m.inflight[c] == f {
		delete(m.inflight, c)
	}
	// Install the certificate only if no refresh moved the state while
	// the search ran; a newer epoch's answer must come from a newer
	// search (or an uplift-adjusted certificate, which this is not).
	if m.init && m.epoch == epoch {
		if len(m.certs) >= maxCerts {
			for k := range m.certs {
				delete(m.certs, k)
				break
			}
		}
		switch {
		case err == nil:
			m.certs[c] = &topCert{keys: p.Keys(), rival: runnerUp}
		case errors.Is(err, ErrNoPreview) || errors.Is(err, ErrSearchBudget):
			m.certs[c] = &topCert{err: err}
		}
	}
	m.mu.Unlock()
	f.p, f.err = p, err
	close(f.done)
	return p, err
}

// certPreview re-scores a certified winner against its rival bound and,
// when it still strictly wins, assembles its preview. The strict
// inequality guarantees a cold search would select the same subset even
// through its lexicographic tie-break. Called with m.mu held.
func certPreview(d *Discoverer, cert *topCert, c Constraint) (Preview, bool) {
	for _, t := range cert.keys {
		if !d.usable(t) {
			return Preview{}, false
		}
	}
	take := make([]int, len(cert.keys))
	s := d.previewScore(cert.keys, c.N, take)
	if !(s > cert.rival) {
		return Preview{}, false
	}
	p, err := d.ComputePreview(cert.keys, c.N)
	if err != nil {
		return Preview{}, false
	}
	p.Stats = SearchStats{SubsetsScored: 1}
	return p, true
}

// CertifiedAt reports whether DiscoverAt at this epoch would answer
// without a full search: the state is at epoch and the constraint has a
// currently-valid certificate (Concise needs none — dynamic programming
// is already cheap and exact). Within one epoch the answer can only go
// from false to true (scores are frozen; only a completed search adds a
// certificate), which lets callers key caches on it.
func (m *Maintained) CertifiedAt(epoch uint64, c Constraint) bool {
	if c.Validate() != nil {
		return false
	}
	if c.Mode == Concise {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.init || m.epoch != epoch {
		return false
	}
	cert, ok := m.certs[c]
	if !ok {
		return false
	}
	if cert.err != nil {
		return true
	}
	_, ok = certPreview(m.disc, cert, c)
	return ok
}

// AnytimeAt answers with the budget-bounded anytime search over the
// maintained Discoverer at the given epoch (see Discoverer.AnytimeBest).
// Returns ErrStaleEpoch when the state is not at epoch.
func (m *Maintained) AnytimeAt(epoch uint64, c Constraint) (Preview, bool, error) {
	m.mu.Lock()
	if !m.init || m.epoch != epoch {
		m.mu.Unlock()
		return Preview{}, false, ErrStaleEpoch
	}
	d := m.disc
	m.mu.Unlock()
	// The Discoverer is immutable; the bounded search runs outside the
	// lock so refreshes and certificate hits are never blocked behind it.
	return d.AnytimeBest(c)
}
