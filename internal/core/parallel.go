package core

// Parallel exact search. The k-subset enumerations behind every discovery
// mode are embarrassingly parallel — the subset space partitions into
// contiguous ranges, and a Discoverer is read-only during search, so
// workers share it freely. This file holds the worker-pool versions:
// BruteForceParallel (Alg. 1 partitioned by first element) and
// AprioriParallel (Alg. 3 with every level-wise stage partitioned into
// spans). Both promise results identical to their sequential
// counterparts:
//
//   - Candidate order is preserved: each stage's spans are concatenated in
//     span order, reproducing the sequential (lexicographic) level layout
//     exactly, so downstream stages see the same input either way.
//   - Per-worker bests merge deterministically: equal scores break toward
//     the lexicographically smallest key subset (lessKeys), the same
//     policy the sequential searches state inline — which subset a worker
//     happened to score never shows through.
//   - The Constraint.MaxCandidates budget is enforced through a shared
//     atomic counter: the search errors with ErrSearchBudget exactly when
//     the total candidate volume exceeds the budget, the same outcome as
//     the sequential check. Workers may transiently overshoot the counter
//     before observing the abort flag (by at most one in-flight candidate
//     per worker — the first failed take stops a worker's stage), but the
//     overshoot is never published: success and failure, and the preview
//     returned on success, are identical at any worker count.
//
// This is an engineering extension beyond the paper (whose C++
// implementation was single-threaded); it makes ground-truth validation of
// the faster algorithms affordable on larger schemas and lets one server
// answer distance-constrained previews with all its cores.

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/par"
)

// BruteForceParallel is BruteForce distributed over workers goroutines
// (NumCPU when workers <= 0). It returns a preview with exactly the same
// score as BruteForce; when several subsets tie, it deterministically
// returns the lexicographically smallest tied key subset, so results do
// not depend on scheduling.
func (d *Discoverer) BruteForceParallel(c Constraint, workers int) (Preview, error) {
	if err := c.Validate(); err != nil {
		return Preview{}, err
	}
	types := d.usableTypes()
	if len(types) < c.K {
		return Preview{}, ErrNoPreview
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(types) {
		workers = len(types)
	}

	type result struct {
		keys   []graph.TypeID
		score  float64
		found  bool
		scored int
	}
	results := make([]result, workers)
	firstIdx := make(chan int)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			subset := make([]graph.TypeID, c.K)
			take := make([]int, c.K)
			res := &results[w]
			var rec func(pos, start int)
			rec = func(pos, start int) {
				if pos == c.K {
					if c.Mode != Concise && !d.pairwiseOK(c, subset) {
						return
					}
					res.scored++
					score := d.previewScore(subset, c.N, take)
					if !res.found || score > res.score ||
						(score == res.score && lessKeys(subset, res.keys)) {
						res.score = score
						res.keys = append(res.keys[:0], subset...)
						res.found = true
					}
					return
				}
				for i := start; i <= len(types)-(c.K-pos); i++ {
					subset[pos] = types[i]
					rec(pos+1, i+1)
				}
			}
			for i := range firstIdx {
				if i > len(types)-c.K {
					continue
				}
				subset[0] = types[i]
				rec(1, i+1)
			}
		}(w)
	}
	for i := 0; i <= len(types)-c.K; i++ {
		firstIdx <- i
	}
	close(firstIdx)
	wg.Wait()

	var (
		best  result
		stats SearchStats
	)
	for _, res := range results {
		stats.SubsetsScored += res.scored
		if !res.found {
			continue
		}
		if !best.found || res.score > best.score ||
			(res.score == best.score && lessKeys(res.keys, best.keys)) {
			best = res
		}
	}
	if !best.found {
		return Preview{}, ErrNoPreview
	}
	p, err := d.ComputePreview(best.keys, c.N)
	if err != nil {
		return Preview{}, err
	}
	p.Stats = stats
	return p, nil
}

// lessKeys orders key subsets lexicographically.
func lessKeys(a, b []graph.TypeID) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// DiscoverParallel is Discover with an explicit worker count: dynamic
// programming for concise previews (whose cost is bounded by the
// display-sized constraint, not the subset space — there is nothing worth
// fanning out), AprioriParallel for tight and diverse previews. It returns
// exactly the preview Discover returns.
func (d *Discoverer) DiscoverParallel(c Constraint, workers int) (Preview, error) {
	if c.Mode == Concise {
		return d.DynamicProgramming(c)
	}
	return d.AprioriParallel(c, workers)
}

// spanFactor is how many spans each stage plans per worker. More spans
// than workers keeps the pull-based pool load-balanced when candidate
// blocks are skewed; the partition never affects results, only balance.
const spanFactor = 8

// budgetCounter enforces Constraint.MaxCandidates across workers: every
// produced candidate takes one ticket from a shared atomic counter, and
// the first take past the limit raises the exceeded flag that workers poll
// at stage boundaries. The counter may transiently run past the limit
// (bounded by one in-flight candidate per worker), but the overshoot is
// never published — the search's outcome depends only on whether the total
// candidate volume exceeds the budget, exactly like the sequential check.
type budgetCounter struct {
	limit    int64 // <= 0: unlimited
	produced atomic.Int64
	exceeded atomic.Bool
}

func newBudgetCounter(limit int) *budgetCounter {
	return &budgetCounter{limit: int64(limit)}
}

// take accounts one produced candidate, reporting false once the budget is
// exhausted. Unlimited budgets skip the shared counter entirely: a
// contended atomic add per candidate on the innermost join loop would
// serialize the very stage being parallelized, and with no limit the
// counter decides nothing (stats come from the level lengths).
func (b *budgetCounter) take() bool {
	if b.limit <= 0 {
		return true
	}
	if n := b.produced.Add(1); n > b.limit {
		b.exceeded.Store(true)
		return false
	}
	return true
}

// ok reports whether the budget still holds.
func (b *budgetCounter) ok() bool { return !b.exceeded.Load() }

// concatInt32 concatenates span outputs in span order, reproducing the
// sequential enumeration order exactly.
func concatInt32(parts [][]int32) []int32 {
	var n int
	for _, p := range parts {
		n += len(p)
	}
	out := make([]int32, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// AprioriParallel is Apriori distributed over workers goroutines (NumCPU
// when workers <= 0; the sequential implementation when workers == 1).
// Every stage — valid-pair generation, each level-wise join, and the final
// candidate scoring — partitions its input into contiguous spans executed
// by a shared worker pool, with span outputs concatenated in span order so
// each level's flat layout matches the sequential search bit for bit. It
// returns exactly the preview (and stats) Apriori returns, including
// ErrSearchBudget under exactly the same candidate volumes.
func (d *Discoverer) AprioriParallel(c Constraint, workers int) (Preview, error) {
	p, _, err := d.aprioriParallelTop2(c, workers)
	return p, err
}

// aprioriParallelTop2 is AprioriParallel returning the runner-up score
// alongside the optimal preview (see aprioriTop2). The runner-up is the
// max over all scored subsets other than the winner — a max over a fixed
// set — so per-span (best, runner-up) pairs merge to the same value the
// sequential scan computes, at any worker count.
func (d *Discoverer) aprioriParallelTop2(c Constraint, workers int) (Preview, float64, error) {
	if err := c.Validate(); err != nil {
		return Preview{}, 0, err
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers == 1 {
		return d.aprioriTop2(c)
	}
	types := d.usableTypes()
	if len(types) < c.K {
		return Preview{}, 0, ErrNoPreview
	}
	if c.Mode != Concise {
		d.Distances() // materialize once, not under every worker's first query
	}

	k := c.K
	budget := newBudgetCounter(c.MaxCandidates)
	candTotal := 0 // CandidatesGenerated, accumulated from level lengths
	var level []int32
	stride := 0
	if k == 1 {
		stride = 1
		level = make([]int32, len(types))
		for i := range types {
			level[i] = int32(i)
		}
	} else {
		// Level 2: valid pairs, partitioned by first element.
		stride = 2
		spans := par.Spans(len(types), workers*spanFactor)
		parts := make([][]int32, len(spans))
		par.ForEach(workers, len(spans), func(si int) {
			var out []int32
			for i := spans[si].Lo; i < spans[si].Hi && budget.ok(); i++ {
				for j := i + 1; j < len(types); j++ {
					if !d.distOK(c, types[i], types[j]) {
						continue
					}
					if !budget.take() {
						return
					}
					out = append(out, int32(i), int32(j))
				}
			}
			parts[si] = out
		})
		if !budget.ok() {
			return Preview{}, 0, ErrSearchBudget
		}
		level = concatInt32(parts)
		candTotal += len(level) / 2
		for size := 3; size <= k && len(level) > 0; size++ {
			var err error
			if level, err = d.joinLevelParallel(c, types, level, stride, workers, budget); err != nil {
				return Preview{}, 0, err
			}
			stride = size
			candTotal += len(level) / stride
		}
	}
	stats := SearchStats{CandidatesGenerated: candTotal}
	if len(level) == 0 {
		return Preview{}, 0, ErrNoPreview
	}

	// Score the surviving k-subsets: per-span bests, merged in span order
	// with the lexicographic tie-break. Spans cover ascending candidate
	// ranges of a lex-sorted level, so the merged winner is the same
	// subset the sequential scan keeps.
	nCands := len(level) / stride
	type best struct {
		keys   []graph.TypeID
		score  float64
		second float64 // max score in span excluding keys; -Inf if none
		found  bool
	}
	spans := par.Spans(nCands, workers*spanFactor)
	bests := make([]best, len(spans))
	par.ForEach(workers, len(spans), func(si int) {
		keys := make([]graph.TypeID, stride)
		take := make([]int, stride)
		res := &bests[si]
		res.second = math.Inf(-1)
		for cand := spans[si].Lo; cand < spans[si].Hi; cand++ {
			off := cand * stride
			for i := 0; i < stride; i++ {
				keys[i] = types[level[off+i]]
			}
			score := d.previewScore(keys, c.N, take)
			switch {
			case !res.found:
				res.score = score
				res.keys = append(res.keys[:0], keys...)
				res.found = true
			case score > res.score || (score == res.score && lessKeys(keys, res.keys)):
				res.second = res.score
				res.score = score
				res.keys = append(res.keys[:0], keys...)
			case score > res.second:
				res.second = score
			}
		}
	})
	stats.SubsetsScored = nCands
	// Merge: the global runner-up is the max over every span's runner-up
	// plus every span best that is not the global winner. Folding a
	// displaced winner's score at displacement time covers the bests seen
	// before the winner; bests after it fold in directly.
	win := best{second: math.Inf(-1)}
	runnerUp := math.Inf(-1)
	for _, rb := range bests {
		if rb.second > runnerUp {
			runnerUp = rb.second
		}
		if !rb.found {
			continue
		}
		switch {
		case !win.found:
			win = rb
		case rb.score > win.score || (rb.score == win.score && lessKeys(rb.keys, win.keys)):
			if win.score > runnerUp {
				runnerUp = win.score
			}
			win = rb
		case rb.score > runnerUp:
			runnerUp = rb.score
		}
	}
	if !win.found {
		return Preview{}, 0, ErrNoPreview
	}
	p, err := d.ComputePreview(win.keys, c.N)
	if err != nil {
		return Preview{}, 0, err
	}
	p.Stats = stats
	return p, runnerUp, nil
}

// joinLevelParallel is joinLevel with the candidate blocks partitioned
// across workers. Span outputs concatenate in span order, so the produced
// level is identical to the sequential join's; the budget flows through
// the shared counter.
func (d *Discoverer) joinLevelParallel(c Constraint, types []graph.TypeID, level []int32, stride, workers int, budget *budgetCounter) ([]int32, error) {
	nCands := len(level) / stride
	spans := par.Spans(nCands, workers*spanFactor)
	parts := make([][]int32, len(spans))
	par.ForEach(workers, len(spans), func(si int) {
		var out []int32
		for a := spans[si].Lo; a < spans[si].Hi && budget.ok(); a++ {
			offA := a * stride
			for b := a + 1; b < nCands; b++ {
				offB := b * stride
				if !samePrefix(level[offA:offA+stride], level[offB:offB+stride]) {
					break
				}
				ta := types[level[offA+stride-1]]
				tb := types[level[offB+stride-1]]
				if !d.distOK(c, ta, tb) {
					continue
				}
				if !budget.take() {
					return
				}
				out = append(out, level[offA:offA+stride]...)
				out = append(out, level[offB+stride-1])
			}
		}
		parts[si] = out
	})
	if !budget.ok() {
		return nil, ErrSearchBudget
	}
	return concatInt32(parts), nil
}
