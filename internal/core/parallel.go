package core

// Parallel brute force. The exhaustive search of Alg. 1 is embarrassingly
// parallel: the k-subset space partitions by first element, and a
// Discoverer is read-only during search, so workers share it freely. This
// is an engineering extension beyond the paper (whose C++ implementation
// was single-threaded); it exists to make ground-truth validation of the
// faster algorithms affordable on larger schemas, and as the subject of an
// ablation benchmark.

import (
	"runtime"
	"sync"

	"github.com/uta-db/previewtables/internal/graph"
)

// BruteForceParallel is BruteForce distributed over workers goroutines
// (NumCPU when workers <= 0). It returns a preview with exactly the same
// score as BruteForce; when several subsets tie, it deterministically
// returns the lexicographically smallest tied key subset, so results do
// not depend on scheduling.
func (d *Discoverer) BruteForceParallel(c Constraint, workers int) (Preview, error) {
	if err := c.Validate(); err != nil {
		return Preview{}, err
	}
	types := d.usableTypes()
	if len(types) < c.K {
		return Preview{}, ErrNoPreview
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(types) {
		workers = len(types)
	}

	type result struct {
		keys   []graph.TypeID
		score  float64
		found  bool
		scored int
	}
	results := make([]result, workers)
	firstIdx := make(chan int)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			subset := make([]graph.TypeID, c.K)
			take := make([]int, c.K)
			res := &results[w]
			var rec func(pos, start int)
			rec = func(pos, start int) {
				if pos == c.K {
					if c.Mode != Concise && !d.pairwiseOK(c, subset) {
						return
					}
					res.scored++
					score := d.previewScore(subset, c.N, take)
					if !res.found || score > res.score ||
						(score == res.score && lessKeys(subset, res.keys)) {
						res.score = score
						res.keys = append(res.keys[:0], subset...)
						res.found = true
					}
					return
				}
				for i := start; i <= len(types)-(c.K-pos); i++ {
					subset[pos] = types[i]
					rec(pos+1, i+1)
				}
			}
			for i := range firstIdx {
				if i > len(types)-c.K {
					continue
				}
				subset[0] = types[i]
				rec(1, i+1)
			}
		}(w)
	}
	for i := 0; i <= len(types)-c.K; i++ {
		firstIdx <- i
	}
	close(firstIdx)
	wg.Wait()

	var (
		best  result
		stats SearchStats
	)
	for _, res := range results {
		stats.SubsetsScored += res.scored
		if !res.found {
			continue
		}
		if !best.found || res.score > best.score ||
			(res.score == best.score && lessKeys(res.keys, best.keys)) {
			best = res
		}
	}
	if !best.found {
		return Preview{}, ErrNoPreview
	}
	p, err := d.ComputePreview(best.keys, c.N)
	if err != nil {
		return Preview{}, err
	}
	p.Stats = stats
	return p, nil
}

// lessKeys orders key subsets lexicographically.
func lessKeys(a, b []graph.TypeID) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
