package core_test

import (
	"math/rand"
	"testing"

	"github.com/uta-db/previewtables/internal/core"
	"github.com/uta-db/previewtables/internal/fig1"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/score"
)

// filmDirectorGenresTable builds Fig. 2's upper table: FILM keyed, with
// Director and Genres.
func filmDirectorGenresTable(t *testing.T, g *graph.EntityGraph) core.Table {
	t.Helper()
	s := g.Schema()
	film, _ := g.TypeByName(fig1.Film)
	var nonKeys []core.Candidate
	for _, inc := range s.Incident(film) {
		switch s.RelType(inc.Rel).Name {
		case fig1.RelDirector, fig1.RelGenres:
			nonKeys = append(nonKeys, core.Candidate{Inc: inc})
		}
	}
	if len(nonKeys) != 2 {
		t.Fatalf("expected 2 non-keys, got %d", len(nonKeys))
	}
	return core.Table{Key: film, NonKeys: nonKeys}
}

func TestMaterializeFig2UpperTable(t *testing.T) {
	g := fig1.Graph()
	tb := filmDirectorGenresTable(t, g)
	tuples := core.MaterializeAll(g, &tb)
	if len(tuples) != 4 {
		t.Fatalf("tuples = %d, want 4 (|T| = |T.τ|)", len(tuples))
	}
	byName := map[string]core.Tuple{}
	for _, tu := range tuples {
		byName[g.EntityName(tu.Key)] = tu
	}

	// t1 = 〈Men in Black, Barry Sonnenfeld, {Action Film, Science Fiction}〉.
	mib := byName["Men in Black"]
	if len(mib.Values) != 2 {
		t.Fatalf("values per tuple = %d, want 2", len(mib.Values))
	}
	var director, genres []graph.EntityID
	s := g.Schema()
	for i, c := range tb.NonKeys {
		if s.RelType(c.Inc.Rel).Name == fig1.RelDirector {
			director = mib.Values[i]
		} else {
			genres = mib.Values[i]
		}
	}
	if len(director) != 1 || g.EntityName(director[0]) != "Barry Sonnenfeld" {
		t.Errorf("t1.Director = %v", director)
	}
	if len(genres) != 2 {
		t.Errorf("t1.Genres = %d values, want 2 (multi-valued)", len(genres))
	}

	// t3 = 〈Hancock, Peter Berg, -〉: empty Genres value.
	hancock := byName["Hancock"]
	for i, c := range tb.NonKeys {
		if s.RelType(c.Inc.Rel).Name == fig1.RelGenres && len(hancock.Values[i]) != 0 {
			t.Errorf("t3.Genres = %v, want empty", hancock.Values[i])
		}
	}
}

func TestSampleRandom(t *testing.T) {
	g := fig1.Graph()
	tb := filmDirectorGenresTable(t, g)
	rng := rand.New(rand.NewSource(7))
	sample := core.SampleRandom(g, &tb, 2, rng)
	if len(sample) != 2 {
		t.Fatalf("sample size = %d, want 2", len(sample))
	}
	// Sampling without replacement: distinct keys.
	if sample[0].Key == sample[1].Key {
		t.Error("sample contains duplicate tuple")
	}
	// Oversampling returns everything.
	if got := core.SampleRandom(g, &tb, 99, rng); len(got) != 4 {
		t.Errorf("oversample size = %d, want 4", len(got))
	}
}

func TestSampleRepresentativeCoversValues(t *testing.T) {
	g := fig1.Graph()
	tb := filmDirectorGenresTable(t, g)
	sample := core.SampleRepresentative(g, &tb, 3)
	if len(sample) != 3 {
		t.Fatalf("sample size = %d, want 3", len(sample))
	}
	// Three representative tuples must expose all three directors — a
	// random sample might repeat Barry Sonnenfeld's films, but the greedy
	// selection maximizes novel values.
	s := g.Schema()
	var di int
	for i, c := range tb.NonKeys {
		if s.RelType(c.Inc.Rel).Name == fig1.RelDirector {
			di = i
		}
	}
	directors := map[string]bool{}
	for _, tu := range sample {
		for _, v := range tu.Values[di] {
			directors[g.EntityName(v)] = true
		}
	}
	if len(directors) != 3 {
		t.Errorf("representative sample exposes directors %v, want all 3", directors)
	}
}

func TestSampleRepresentativeOversample(t *testing.T) {
	g := fig1.Graph()
	tb := filmDirectorGenresTable(t, g)
	if got := core.SampleRepresentative(g, &tb, 99); len(got) != 4 {
		t.Errorf("oversample size = %d, want 4", len(got))
	}
}

func TestSuggestSize(t *testing.T) {
	g := fig1.Graph()
	s := g.Schema()
	c := core.SuggestSize(s, 16)
	if c.K < 1 || c.N < c.K {
		t.Errorf("suggested constraint invalid: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("suggested constraint fails validation: %v", err)
	}
	// Tiny budget still yields a valid single-table constraint.
	c = core.SuggestSize(s, 1)
	if c.K != 1 || c.N < 1 {
		t.Errorf("tiny budget constraint = %+v", c)
	}
	// k never exceeds usable types.
	c = core.SuggestSize(s, 1000)
	if c.K > 6 {
		t.Errorf("k = %d exceeds the 6 usable types", c.K)
	}
}

func TestSuggestSizeEmptySchema(t *testing.T) {
	s, err := graph.NewSchema([]string{"lonely"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := core.SuggestSize(s, 10)
	if c.K != 0 {
		t.Errorf("schema with no relationships should suggest k=0, got %+v", c)
	}
}

func TestSuggestDistanceMode(t *testing.T) {
	g := fig1.Graph()
	sug := core.SuggestDistanceMode(g.Schema())
	if sug.TightD < 1 {
		t.Errorf("tight d = %d, want ≥ 1", sug.TightD)
	}
	if sug.DiverseD <= sug.TightD {
		t.Errorf("diverse d = %d should exceed tight d = %d", sug.DiverseD, sug.TightD)
	}
	// Fig. 3 has diameter 2: both bounds stay within it.
	if sug.TightD > 2 || sug.DiverseD > 2 {
		t.Errorf("suggestion exceeds diameter 2: %+v", sug)
	}
	// Verify the suggested constraints are actually satisfiable.
	set := score.Compute(g, score.DefaultWalkOptions())
	d := core.New(set, core.Options{Key: score.KeyCoverage, NonKey: score.NonKeyCoverage})
	if _, err := d.Apriori(core.Constraint{K: 2, N: 4, Mode: core.Tight, D: sug.TightD}); err != nil {
		t.Errorf("suggested tight constraint unsatisfiable: %v", err)
	}
	if _, err := d.Apriori(core.Constraint{K: 2, N: 4, Mode: core.Diverse, D: sug.DiverseD}); err != nil {
		t.Errorf("suggested diverse constraint unsatisfiable: %v", err)
	}
}

func TestSuggestDistanceModeElongated(t *testing.T) {
	// A long path should prefer Diverse.
	names := make([]string, 12)
	rels := make([]graph.RelType, 0, 11)
	for i := range names {
		names[i] = string(rune('a' + i))
		if i > 0 {
			rels = append(rels, graph.RelType{Name: "r", From: graph.TypeID(i - 1), To: graph.TypeID(i)})
		}
	}
	s, err := graph.NewSchema(names, rels)
	if err != nil {
		t.Fatal(err)
	}
	if sug := core.SuggestDistanceMode(s); sug.Preferred != core.Diverse {
		t.Errorf("elongated schema should prefer Diverse, got %v", sug.Preferred)
	}
	// A star should prefer Tight.
	star := make([]graph.RelType, 0, 11)
	for i := 1; i < 12; i++ {
		star = append(star, graph.RelType{Name: "r", From: 0, To: graph.TypeID(i)})
	}
	s2, err := graph.NewSchema(names, star)
	if err != nil {
		t.Fatal(err)
	}
	if sug := core.SuggestDistanceMode(s2); sug.Preferred != core.Tight {
		t.Errorf("star schema should prefer Tight, got %v", sug.Preferred)
	}
}
