package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/uta-db/previewtables/internal/core"
)

func randomUndirected(rng *rand.Rand, n int, p float64) *core.UndirectedGraph {
	g := core.NewUndirectedGraph(n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if rng.Float64() < p {
				g.AddEdge(a, b)
			}
		}
	}
	return g
}

func TestHasClique(t *testing.T) {
	g := core.NewUndirectedGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	if !g.HasClique(3) {
		t.Error("triangle 0-1-2 should be found")
	}
	if g.HasClique(4) {
		t.Error("no 4-clique exists")
	}
	if !g.HasClique(1) || !g.HasClique(0) {
		t.Error("trivial cliques should exist")
	}
}

func TestTheorem1ReductionExample(t *testing.T) {
	// A 5-cycle has cliques of size 2 but not 3.
	g := core.NewUndirectedGraph(5)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)
	}
	s := core.ReduceCliqueToTight(g)
	if !core.DecideTightPreview(s, 2, 2, 1) {
		t.Error("TightPreview(k=2) should exist for the 5-cycle")
	}
	if core.DecideTightPreview(s, 3, 3, 1) {
		t.Error("TightPreview(k=3) should not exist for the 5-cycle")
	}
}

func TestTheorem2ReductionExample(t *testing.T) {
	// Fig. 4-style check: the complement construction plus hub vertex.
	g := core.NewUndirectedGraph(6)
	// Clique {0,1,2}; vertex 5 isolated-ish.
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(3, 4)
	s := core.ReduceCliqueToDiverse(g)
	if !core.DecideDiversePreview(s, 3, 3, 2) {
		t.Error("DiversePreview(k=3) should exist: G has the clique {0,1,2}")
	}
	if core.DecideDiversePreview(s, 4, 4, 2) {
		t.Error("DiversePreview(k=4) should not exist: G has no 4-clique")
	}
}

func TestTheorem1ReductionProperty(t *testing.T) {
	// Clique(G, k) ⇔ TightPreview(Gs, k, k, 1, 0) on random graphs.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 3
		g := randomUndirected(rng, n, 0.5)
		s := core.ReduceCliqueToTight(g)
		for k := 2; k <= 4 && k <= n; k++ {
			if g.HasClique(k) != core.DecideTightPreview(s, k, k, 1) {
				t.Logf("seed %d: mismatch at k=%d", seed, k)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestTheorem2ReductionProperty(t *testing.T) {
	// Clique(G, k) ⇔ DiversePreview(Gs, k, k, 2, 0) on random graphs.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 3
		g := randomUndirected(rng, n, 0.5)
		s := core.ReduceCliqueToDiverse(g)
		for k := 2; k <= 4 && k <= n; k++ {
			if g.HasClique(k) != core.DecideDiversePreview(s, k, k, 2) {
				t.Logf("seed %d: mismatch at k=%d", seed, k)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestReductionSizes(t *testing.T) {
	// The reductions are polynomial: |Vs| and |Es| are linear/quadratic in
	// |V| as stated in the proofs.
	g := core.NewUndirectedGraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	tight := core.ReduceCliqueToTight(g)
	if tight.NumTypes() != 5 || tight.NumRelTypes() != 2 {
		t.Errorf("tight reduction sizes = (%d, %d), want (5, 2)", tight.NumTypes(), tight.NumRelTypes())
	}
	diverse := core.ReduceCliqueToDiverse(g)
	// 5 hub edges + complement of 2 edges among C(5,2)=10 pairs = 8.
	if diverse.NumTypes() != 6 || diverse.NumRelTypes() != 5+8 {
		t.Errorf("diverse reduction sizes = (%d, %d), want (6, 13)", diverse.NumTypes(), diverse.NumRelTypes())
	}
}

func TestSelfLoopIgnoredInUndirected(t *testing.T) {
	g := core.NewUndirectedGraph(2)
	g.AddEdge(0, 0) // no-op
	if g.Adj[0][0] {
		t.Error("self loop must be ignored")
	}
}
