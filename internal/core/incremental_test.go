package core_test

// Differential suite for incremental discovery: a Maintained state
// carried across the epochs of a randomized live-update workload must
// answer every constraint exactly as a cold Discoverer built from that
// epoch's score set — same tables, same scores, same errors — while
// actually exercising the certificate fast path (asserted via the
// full-search counter). This is the tentpole correctness property:
// incrementality must be invisible in results, visible only in work.

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"github.com/uta-db/previewtables/internal/core"
	"github.com/uta-db/previewtables/internal/dynamic"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/score"
)

// incrementalConstraints sweeps all three modes, including a tiny-budget
// constraint (error certificates must carry across epochs) and an
// infeasible diverse distance (ErrNoPreview certificates likewise).
func incrementalConstraints() []core.Constraint {
	return []core.Constraint{
		{K: 2, N: 5, Mode: core.Concise},
		{K: 2, N: 4, Mode: core.Tight, D: 2},
		{K: 3, N: 6, Mode: core.Tight, D: 3},
		{K: 2, N: 4, Mode: core.Diverse, D: 2},
		{K: 3, N: 6, Mode: core.Diverse, D: 1},
		{K: 3, N: 6, Mode: core.Diverse, D: 1, MaxCandidates: 2},
		{K: 3, N: 6, Mode: core.Diverse, D: 50},
	}
}

// randomLiveWorkload drives batches of random mutations against a live
// graph and calls check after every publication. Batches are mostly
// incremental (edges, new entities of existing types); every few batches
// one is structural (a new type and relationship type), so both refresh
// paths run.
func randomLiveWorkload(t *testing.T, seed int64, batches int, check func(*dynamic.Snapshot)) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var dg dynamic.Graph
	nTypes := rng.Intn(4) + 3
	types := make([]graph.TypeID, nTypes)
	for i := range types {
		types[i] = dg.Type(fmt.Sprintf("T%d", i))
	}
	var rels []graph.RelTypeID
	for i := 0; i < rng.Intn(5)+3; i++ {
		r, err := dg.RelType(fmt.Sprintf("r%d", i), types[rng.Intn(len(types))], types[rng.Intn(len(types))])
		if err != nil {
			t.Fatal(err)
		}
		rels = append(rels, r)
	}
	nEnts := rng.Intn(30) + 20
	for i := 0; i < nEnts; i++ {
		dg.Entity(fmt.Sprintf("e%d", i), types[rng.Intn(len(types))])
	}
	for i := 0; i < nEnts*2; i++ {
		rel := rels[rng.Intn(len(rels))]
		if err := dg.AddEdge(graph.EntityID(rng.Intn(nEnts)), graph.EntityID(rng.Intn(nEnts)), rel); err != nil {
			t.Fatal(err)
		}
	}
	live, err := dynamic.NewLive(&dg, score.DefaultWalkOptions())
	if err != nil {
		t.Fatal(err)
	}
	check(live.Snapshot())
	for batch := 0; batch < batches; batch++ {
		snap, err := live.Apply(func(g *dynamic.Graph) error {
			if batch > 0 && batch%4 == 0 {
				// Structural batch: grow the schema itself.
				nt := g.Type(fmt.Sprintf("T%d-b%d", len(types), batch))
				types = append(types, nt)
				r, err := g.RelType(fmt.Sprintf("r-b%d", batch), types[rng.Intn(len(types))], nt)
				if err != nil {
					return err
				}
				rels = append(rels, r)
			}
			if rng.Intn(2) == 0 {
				g.Entity(fmt.Sprintf("e-b%d-%d", batch, rng.Intn(100)), types[rng.Intn(len(types))])
			}
			st := g.Stats()
			for i := 0; i < rng.Intn(8)+1; i++ {
				from := graph.EntityID(rng.Intn(st.Entities))
				to := graph.EntityID(rng.Intn(st.Entities))
				if err := g.AddEdge(from, to, rels[rng.Intn(len(rels))]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		check(snap)
	}
}

// assertSameOutcome requires the maintained and cold answers to agree
// exactly: equal previews modulo work counters, or errors with the same
// identity and message.
func assertSameOutcome(t *testing.T, label string, pm core.Preview, errM error, pc core.Preview, errC error) {
	t.Helper()
	if (errM == nil) != (errC == nil) {
		t.Fatalf("%s: maintained err %v, cold err %v", label, errM, errC)
	}
	if errM != nil {
		if errM.Error() != errC.Error() {
			t.Fatalf("%s: error text diverges: maintained %q, cold %q", label, errM, errC)
		}
		return
	}
	if !reflect.DeepEqual(stripStats(pm), stripStats(pc)) {
		t.Fatalf("%s: previews diverge:\nmaintained %+v\ncold       %+v", label, stripStats(pm), stripStats(pc))
	}
}

// TestMaintainedMatchesColdAcrossEpochs is the differential property. A
// second Maintained receives only every third refresh with the dirty
// sets of the skipped epochs unioned in, so multi-epoch catch-up (the
// service's dirty-log path) is covered too.
func TestMaintainedMatchesColdAcrossEpochs(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			for _, pair := range measurePairs() {
				opts := pair
				opts.Parallelism = diffWorkers
				m := core.NewMaintained(opts)
				lag := core.NewMaintained(opts)
				var (
					pendingDirty      []graph.TypeID
					pendingStructural bool
					pendingBase       uint64
				)
				queries := 0
				randomLiveWorkload(t, seed, 9, func(snap *dynamic.Snapshot) {
					m.Refresh(snap.Scores, snap.Epoch, snap.Dirty, snap.Structural)
					cold := core.New(snap.Scores, opts)
					for _, c := range incrementalConstraints() {
						pm, errM := m.DiscoverAt(snap.Epoch, c)
						pc, errC := cold.Discover(c)
						label := fmt.Sprintf("epoch %d constraint %+v", snap.Epoch, c)
						assertSameOutcome(t, label, pm, errM, pc, errC)
						queries++
					}
					// The lagging state unions skipped epochs' deltas, the
					// way Graph.deltaSince reconstructs a multi-epoch gap.
					pendingDirty = append(pendingDirty, snap.Dirty...)
					pendingStructural = pendingStructural || snap.Structural
					if snap.Epoch-pendingBase >= 3 {
						lag.Refresh(snap.Scores, snap.Epoch, pendingDirty, pendingStructural)
						for _, c := range incrementalConstraints() {
							pm, errM := lag.DiscoverAt(snap.Epoch, c)
							pc, errC := cold.Discover(c)
							assertSameOutcome(t, fmt.Sprintf("lag epoch %d constraint %+v", snap.Epoch, c), pm, errM, pc, errC)
						}
						pendingDirty, pendingStructural, pendingBase = nil, false, snap.Epoch
					}
				})
				// The point of the machinery: certificates must actually
				// serve — every query triggering a full search would make
				// the maintained path pure overhead.
				if m.CertServes() == 0 {
					t.Fatalf("no certificate serves in %d queries (full searches: %d)", queries, m.FullSearches())
				}
				if m.FullSearches() >= int64(queries) {
					t.Fatalf("full searches (%d) not below query count (%d): incrementality never engaged", m.FullSearches(), queries)
				}
			}
		})
	}
}

// TestMaintainedStaleEpoch: a Maintained asked about an epoch it is not
// at must refuse with ErrStaleEpoch, never answer from the wrong state.
func TestMaintainedStaleEpoch(t *testing.T) {
	opts := core.Options{Key: score.KeyCoverage, NonKey: score.NonKeyCoverage}
	m := core.NewMaintained(opts)
	c := core.Constraint{K: 2, N: 4, Mode: core.Tight, D: 2}
	if _, err := m.DiscoverAt(0, c); !errors.Is(err, core.ErrStaleEpoch) {
		t.Fatalf("uninitialized DiscoverAt: got %v, want ErrStaleEpoch", err)
	}
	randomLiveWorkload(t, 3, 1, func(snap *dynamic.Snapshot) {
		m.Refresh(snap.Scores, snap.Epoch, snap.Dirty, snap.Structural)
	})
	if _, err := m.DiscoverAt(99, c); !errors.Is(err, core.ErrStaleEpoch) {
		t.Fatalf("wrong-epoch DiscoverAt: got %v, want ErrStaleEpoch", err)
	}
	if m.CertifiedAt(99, c) {
		t.Fatal("CertifiedAt claimed certification at an epoch the state is not at")
	}
	if _, _, err := m.AnytimeAt(99, c); !errors.Is(err, core.ErrStaleEpoch) {
		t.Fatalf("wrong-epoch AnytimeAt: got %v, want ErrStaleEpoch", err)
	}
}

// TestMaintainedConcurrent hammers one Maintained from many goroutines
// while refreshes land, for the race detector: every non-stale answer
// must equal the cold answer for its epoch.
func TestMaintainedConcurrent(t *testing.T) {
	opts := core.Options{Key: score.KeyCoverage, NonKey: score.NonKeyCoverage, Parallelism: 2}
	m := core.NewMaintained(opts)
	var (
		mu    sync.Mutex
		colds = map[uint64]*core.Discoverer{}
	)
	constraints := incrementalConstraints()
	randomLiveWorkload(t, 11, 6, func(snap *dynamic.Snapshot) {
		m.Refresh(snap.Scores, snap.Epoch, snap.Dirty, snap.Structural)
		mu.Lock()
		colds[snap.Epoch] = core.New(snap.Scores, opts)
		mu.Unlock()
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < len(constraints); i++ {
					c := constraints[(i+w)%len(constraints)]
					pm, errM := m.DiscoverAt(snap.Epoch, c)
					if errors.Is(errM, core.ErrStaleEpoch) {
						continue // raced a newer refresh; the service falls back cold
					}
					mu.Lock()
					cold := colds[snap.Epoch]
					mu.Unlock()
					pc, errC := cold.Discover(c)
					assertSameOutcome(t, fmt.Sprintf("worker %d epoch %d %+v", w, snap.Epoch, c), pm, errM, pc, errC)
				}
			}()
		}
		wg.Wait()
	})
}

// TestMaintainedAnytimeConverges: the anytime answer under an unlimited
// budget is the exact preview with converged=true; under a budget of one
// subset it still returns a valid (possibly partial) outcome, and the
// exact path is untouched.
func TestMaintainedAnytimeConverges(t *testing.T) {
	opts := core.Options{Key: score.KeyCoverage, NonKey: score.NonKeyCoverage}
	m := core.NewMaintained(opts)
	randomLiveWorkload(t, 5, 3, func(snap *dynamic.Snapshot) {
		m.Refresh(snap.Scores, snap.Epoch, snap.Dirty, snap.Structural)
		cold := core.New(snap.Scores, opts)
		for _, c := range incrementalConstraints() {
			if c.Mode == core.Concise || c.MaxCandidates != 0 {
				continue
			}
			exact, exactErr := cold.Discover(c)
			full, converged, err := m.AnytimeAt(snap.Epoch, c)
			if exactErr != nil {
				if err == nil || err.Error() != exactErr.Error() {
					t.Fatalf("epoch %d %+v: anytime err %v, exact err %v", snap.Epoch, c, err, exactErr)
				}
				continue
			}
			if err != nil || !converged {
				t.Fatalf("epoch %d %+v: unbounded anytime did not converge: converged=%t err=%v", snap.Epoch, c, converged, err)
			}
			if !reflect.DeepEqual(stripStats(full), stripStats(exact)) {
				t.Fatalf("epoch %d %+v: converged anytime preview differs from exact", snap.Epoch, c)
			}
			bounded := c
			bounded.MaxCandidates = 1
			p, conv, err := m.AnytimeAt(snap.Epoch, bounded)
			if err == nil {
				if p.Score <= 0 && len(p.Tables) == 0 {
					t.Fatalf("epoch %d %+v: budget-1 anytime returned an empty preview without error", snap.Epoch, c)
				}
				if conv && !reflect.DeepEqual(stripStats(p), stripStats(exact)) {
					t.Fatalf("epoch %d %+v: budget-1 anytime claimed convergence on a non-exact preview", snap.Epoch, c)
				}
			} else if !errors.Is(err, core.ErrSearchBudget) && !errors.Is(err, core.ErrNoPreview) {
				t.Fatalf("epoch %d %+v: budget-1 anytime failed unexpectedly: %v", snap.Epoch, c, err)
			}
		}
	})
}
