package core

// Executable forms of the paper's NP-hardness reductions (Sec. 4.1). The
// decision problems TightPreview(Gs, k, n, d, s) and
// DiversePreview(Gs, k, n, d, s) are reduced from Clique(G, k); these
// constructors build the schema graph Gs from an arbitrary undirected graph
// G so that tests can verify both directions of each reduction:
//
//	Clique(G, k)  ⇔  TightPreview(ReduceCliqueToTight(G), k, k, 1, 0)
//	Clique(G, k)  ⇔  DiversePreview(ReduceCliqueToDiverse(G), k, k, 2, 0)
//
// As in the paper's proofs the schema graphs carry no scores (s = 0): any
// preview satisfying the structural constraints witnesses the clique.

import (
	"fmt"

	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/score"
)

// UndirectedGraph is a simple adjacency-matrix graph for the reductions and
// their tests. Adj must be symmetric with a false diagonal.
type UndirectedGraph struct {
	N   int
	Adj [][]bool
}

// NewUndirectedGraph allocates an empty graph on n vertices.
func NewUndirectedGraph(n int) *UndirectedGraph {
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	return &UndirectedGraph{N: n, Adj: adj}
}

// AddEdge inserts the undirected edge {a, b}.
func (g *UndirectedGraph) AddEdge(a, b int) {
	if a == b {
		return
	}
	g.Adj[a][b] = true
	g.Adj[b][a] = true
}

// HasClique reports whether g contains a clique of size k, by backtracking.
// It is the small-instance ground truth for the reduction tests.
func (g *UndirectedGraph) HasClique(k int) bool {
	if k <= 0 {
		return true
	}
	if k == 1 {
		return g.N > 0
	}
	cur := make([]int, 0, k)
	var rec func(start int) bool
	rec = func(start int) bool {
		if len(cur) == k {
			return true
		}
		for v := start; v <= g.N-(k-len(cur)); v++ {
			ok := true
			for _, u := range cur {
				if !g.Adj[u][v] {
					ok = false
					break
				}
			}
			if ok {
				cur = append(cur, v)
				if rec(v + 1) {
					return true
				}
				cur = cur[:len(cur)-1]
			}
		}
		return false
	}
	return rec(0)
}

// ReduceCliqueToTight builds the schema graph of Theorem 1: a vertex
// bijection, with one relationship type per edge of G. A tight preview with
// k tables, n = k non-key attributes and d = 1 exists iff G has a k-clique
// (for k ≥ 2; a 1-clique needs only a non-isolated vertex, matching the
// preview's requirement of one non-key attribute).
func ReduceCliqueToTight(g *UndirectedGraph) *graph.Schema {
	names := make([]string, g.N)
	for i := range names {
		names[i] = fmt.Sprintf("tau%d", i)
	}
	var rels []graph.RelType
	for a := 0; a < g.N; a++ {
		for b := a + 1; b < g.N; b++ {
			if g.Adj[a][b] {
				rels = append(rels, graph.RelType{
					Name: fmt.Sprintf("gamma%d_%d", a, b),
					From: graph.TypeID(a), To: graph.TypeID(b),
				})
			}
		}
	}
	s, err := graph.NewSchema(names, rels)
	if err != nil {
		panic("core: reduction construction: " + err.Error())
	}
	return s
}

// ReduceCliqueToDiverse builds the schema graph of Theorem 2: a special
// vertex τ0 adjacent to every other vertex, and — barring τ0 — the
// complement of G. Two original vertices are adjacent in G iff their images
// are exactly distance 2 apart in Gs (only via τ0), so a diverse preview
// with pairwise distance ≥ 2 selects exactly the images of a clique.
// τ0 occupies TypeID 0; vertex v of G maps to TypeID v+1.
func ReduceCliqueToDiverse(g *UndirectedGraph) *graph.Schema {
	names := make([]string, g.N+1)
	names[0] = "tau0"
	for i := 0; i < g.N; i++ {
		names[i+1] = fmt.Sprintf("tau%d", i+1)
	}
	var rels []graph.RelType
	for v := 0; v < g.N; v++ {
		rels = append(rels, graph.RelType{
			Name: fmt.Sprintf("hub%d", v+1),
			From: 0, To: graph.TypeID(v + 1),
		})
	}
	for a := 0; a < g.N; a++ {
		for b := a + 1; b < g.N; b++ {
			if !g.Adj[a][b] { // complement
				rels = append(rels, graph.RelType{
					Name: fmt.Sprintf("comp%d_%d", a+1, b+1),
					From: graph.TypeID(a + 1), To: graph.TypeID(b + 1),
				})
			}
		}
	}
	s, err := graph.NewSchema(names, rels)
	if err != nil {
		panic("core: reduction construction: " + err.Error())
	}
	return s
}

// DecideTightPreview answers the decision problem
// TightPreview(Gs, k, n, d, 0): does any preview with k tables, at most n
// non-key attributes and pairwise table distance ≤ d exist? Scores are
// irrelevant at s = 0, so any returned preview is a witness.
func DecideTightPreview(s *graph.Schema, k, n, dBound int) bool {
	return decideStructural(s, Constraint{K: k, N: n, Mode: Tight, D: dBound})
}

// DecideDiversePreview answers DiversePreview(Gs, k, n, d, 0).
func DecideDiversePreview(s *graph.Schema, k, n, dBound int) bool {
	return decideStructural(s, Constraint{K: k, N: n, Mode: Diverse, D: dBound})
}

func decideStructural(s *graph.Schema, c Constraint) bool {
	set := score.ComputeSchemaOnly(s, score.DefaultWalkOptions())
	d := New(set, Options{Key: score.KeyCoverage, NonKey: score.NonKeyCoverage})
	_, err := d.Apriori(c)
	return err == nil
}
