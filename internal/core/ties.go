package core

// Tie enumeration. Eq. 3's arg max "may return a set of optimal previews
// due to ties in scores"; Algs. 1–3 return one representative, and the
// paper notes that finding all optima "requires simple extension to deal
// with ties". This file is that extension: an exhaustive search that keeps
// every key-attribute subset achieving the maximum score.
//
// Ties are genuinely common — the paper's own Sec. 4 example (Fig. 1,
// coverage/coverage, k=2, n=6) has two optimal previews scoring 84 — so a
// downstream application that must present "the" preview deterministically
// can enumerate the tied set and apply its own policy.

import (
	"math"
	"sort"

	"github.com/uta-db/previewtables/internal/graph"
)

// AllOptimal enumerates every optimal preview in the constrained space, in
// deterministic (lexicographic key-subset) order. Two previews are tied
// when their scores agree within a relative tolerance of 1e-12. The search
// is brute force and therefore exponential in c.K; use it on small schemas
// or small k.
func (d *Discoverer) AllOptimal(c Constraint) ([]Preview, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	types := d.usableTypes()
	if len(types) < c.K {
		return nil, ErrNoPreview
	}

	var (
		bestScore float64
		bestKeys  [][]graph.TypeID
		found     bool
		stats     SearchStats
	)
	subset := make([]graph.TypeID, c.K)
	take := make([]int, c.K)
	tol := func() float64 { return 1e-12 * (1 + math.Abs(bestScore)) }

	var rec func(pos, start int)
	rec = func(pos, start int) {
		if pos == c.K {
			if c.Mode != Concise && !d.pairwiseOK(c, subset) {
				return
			}
			stats.SubsetsScored++
			score := d.previewScore(subset, c.N, take)
			switch {
			case !found || score > bestScore+tol():
				bestScore = score
				bestKeys = bestKeys[:0]
				bestKeys = append(bestKeys, append([]graph.TypeID(nil), subset...))
				found = true
			case math.Abs(score-bestScore) <= tol():
				bestKeys = append(bestKeys, append([]graph.TypeID(nil), subset...))
			}
			return
		}
		for i := start; i <= len(types)-(c.K-pos); i++ {
			subset[pos] = types[i]
			rec(pos+1, i+1)
		}
	}
	rec(0, 0)

	if !found {
		return nil, ErrNoPreview
	}
	previews := make([]Preview, 0, len(bestKeys))
	for _, keys := range bestKeys {
		p, err := d.ComputePreview(keys, c.N)
		if err != nil {
			return nil, err
		}
		p.Stats = stats
		previews = append(previews, p)
	}
	// Note: distinct key subsets can still materialize previews with equal
	// scores but different tables; the deterministic order is by key ids.
	sort.SliceStable(previews, func(a, b int) bool {
		ka, kb := previews[a].Keys(), previews[b].Keys()
		for i := range ka {
			if ka[i] != kb[i] {
				return ka[i] < kb[i]
			}
		}
		return false
	})
	return previews, nil
}
