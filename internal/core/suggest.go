package core

// Parameter suggestion — the paper's future-work items 1 and 4 (Sec. 8):
// "Guidelines and automatic techniques for choosing between tight and
// diverse previews" and "Suggesting values of various parameters, including
// N, K and distance constraints".

import "github.com/uta-db/previewtables/internal/graph"

// SuggestSize derives a size constraint (k, n) from a display budget
// expressed in table cells (columns × visible rows are the caller's
// concern; the budget counts attribute columns including keys). The
// heuristic splits the budget so that tables average three non-key
// attributes — the width of the Freebase gold-standard tables (Table 10) —
// and clamps to the schema's capacity.
func SuggestSize(s *graph.Schema, budgetCells int) Constraint {
	if budgetCells < 2 {
		budgetCells = 2
	}
	// Each table costs 1 key column + avg 3 non-key columns.
	k := budgetCells / 4
	if k < 1 {
		k = 1
	}
	// Count usable types (those with at least one incident relationship).
	var usable int
	for t := 0; t < s.NumTypes(); t++ {
		if len(s.Incident(graph.TypeID(t))) > 0 {
			usable++
		}
	}
	if usable == 0 {
		return Constraint{K: 0, N: 0}
	}
	if k > usable {
		k = usable
	}
	n := budgetCells - k
	if n < k {
		n = k
	}
	return Constraint{K: k, N: n, Mode: Concise}
}

// DistanceSuggestion is the output of SuggestDistanceMode: a recommended
// tight bound and diverse bound, plus which of the two spaces the heuristic
// prefers for the given schema.
type DistanceSuggestion struct {
	Preferred Mode // Tight or Diverse
	TightD    int  // recommended d for tight previews
	DiverseD  int  // recommended d for diverse previews
}

// SuggestDistanceMode inspects the schema's distance structure and proposes
// distance constraints (future work item 1). The heuristics follow the
// paper's observations in Sec. 6.2: a tight bound larger than the average
// path length makes "most previews tight" and is useless, so the tight
// bound is capped below the average path length; the diverse bound sits
// between the average and the diameter so the space is non-empty but
// meaningfully spread. Hub-dominated schemas (small average distance
// relative to size, like Freebase domains) favor Tight — their importance
// mass is concentrated around hubs; sparse elongated schemas favor Diverse.
func SuggestDistanceMode(s *graph.Schema) DistanceSuggestion {
	m := s.AllDistances()
	diam, avg := m.Diameter()

	tightD := int(avg)
	if tightD < 1 {
		tightD = 1
	}
	if tightD >= diam && diam > 1 {
		tightD = diam - 1
	}
	diverseD := int(avg) + 1
	if diverseD <= tightD {
		diverseD = tightD + 1
	}
	if diverseD > diam && diam > 0 {
		diverseD = diam
	}

	pref := Tight
	// Elongated schema: diameter much larger than average path length means
	// distant clusters of concepts that a diverse preview surfaces better.
	if diam >= 2*int(avg)+2 {
		pref = Diverse
	}
	return DistanceSuggestion{Preferred: pref, TightD: tightD, DiverseD: diverseD}
}
