package core

// Multi-way relationships (Appendix B). Some non-key attributes point at
// mediator entity types that exist to connect several other types — e.g. a
// film's Performances attribute targets FILM PERFORMANCE entities, each of
// which links onward to a FILM ACTOR and a FILM CHARACTER. The paper's
// sample previews render such attributes with "values for all participating
// entity types" (Agent J is a FILM CHARACTER played by FILM ACTOR Will
// Smith in FILM Men in Black). This file detects mediator targets and
// materializes the one-hop expansion.

import (
	"sort"

	"github.com/uta-db/previewtables/internal/graph"
)

// MediatorInfo describes the multi-way structure behind one non-key
// attribute: the target entity type and the further entity types reachable
// from it in one hop (excluding the keyed type itself).
type MediatorInfo struct {
	Target graph.TypeID
	// Participants are the other entity types a target entity connects to,
	// in ascending id order.
	Participants []graph.TypeID
}

// Mediator inspects a non-key attribute of a table keyed by key and
// reports the multi-way structure, if any: the attribute is mediated when
// its target type has outgoing or incoming relationship types to entity
// types other than the keyed type. ok is false for plain binary
// attributes (the target is a leaf relative to the key).
func Mediator(s *graph.Schema, key graph.TypeID, inc graph.Incidence) (MediatorInfo, bool) {
	target := s.OtherEnd(inc)
	seen := map[graph.TypeID]bool{}
	for _, tinc := range s.Incident(target) {
		other := s.OtherEnd(tinc)
		if other == key || other == target {
			continue
		}
		seen[other] = true
	}
	if len(seen) == 0 {
		return MediatorInfo{}, false
	}
	info := MediatorInfo{Target: target, Participants: make([]graph.TypeID, 0, len(seen))}
	for t := range seen {
		info.Participants = append(info.Participants, t)
	}
	sort.Slice(info.Participants, func(a, b int) bool {
		return info.Participants[a] < info.Participants[b]
	})
	return info, true
}

// ExpandedValue is one value of a multi-way attribute: the direct target
// entity plus the entities it links onward to (one hop), grouped by their
// entity type.
type ExpandedValue struct {
	Value graph.EntityID
	// Linked maps each participant entity type to the entities of that type
	// adjacent to Value (in either direction), deduplicated.
	Linked map[graph.TypeID][]graph.EntityID
}

// ExpandValues materializes the one-hop expansion of a tuple's value set on
// a mediated attribute: for each direct value, the related entities of each
// participant type. Plain binary attributes return values with empty
// Linked maps.
func ExpandValues(g *graph.EntityGraph, key graph.TypeID, inc graph.Incidence, tuple Tuple, attrIndex int) []ExpandedValue {
	s := g.Schema()
	info, mediated := Mediator(s, key, inc)
	vals := tuple.Values[attrIndex]
	out := make([]ExpandedValue, 0, len(vals))
	for _, v := range vals {
		ev := ExpandedValue{Value: v, Linked: map[graph.TypeID][]graph.EntityID{}}
		if mediated {
			for _, tinc := range s.Incident(info.Target) {
				other := s.OtherEnd(tinc)
				if other == key || other == info.Target {
					continue
				}
				for _, u := range g.Neighbors(v, tinc.Rel, tinc.Outgoing) {
					if !g.HasType(u, other) {
						continue
					}
					ev.Linked[other] = appendUnique(ev.Linked[other], u)
				}
			}
		}
		out = append(out, ev)
	}
	return out
}

func appendUnique(xs []graph.EntityID, v graph.EntityID) []graph.EntityID {
	for _, x := range xs {
		if x == v {
			return xs
		}
	}
	return append(xs, v)
}
