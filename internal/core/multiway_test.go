package core_test

import (
	"testing"

	"github.com/uta-db/previewtables/internal/core"
	"github.com/uta-db/previewtables/internal/graph"
)

// performanceGraph builds the Appendix B scenario: FILM PERFORMANCE is a
// mediator connecting FILM, FILM ACTOR and FILM CHARACTER ("Agent J is a
// FILM CHARACTER played by FILM ACTOR Will Smith in FILM Men in Black").
func performanceGraph(t *testing.T) (*graph.EntityGraph, graph.TypeID, graph.Incidence) {
	t.Helper()
	var b graph.Builder
	film := b.Type("FILM")
	perf := b.Type("FILM PERFORMANCE")
	actor := b.Type("FILM ACTOR")
	character := b.Type("FILM CHARACTER")

	rPerf := b.RelType("Performances", film, perf)
	rActor := b.RelType("Performance actor", perf, actor)
	rChar := b.RelType("Performance character", perf, character)

	mib := b.Entity("Men in Black", film)
	p1 := b.Entity("perf-1", perf)
	will := b.Entity("Will Smith", actor)
	agentJ := b.Entity("Agent J", character)
	b.Edge(mib, p1, rPerf)
	b.Edge(p1, will, rActor)
	b.Edge(p1, agentJ, rChar)

	p2 := b.Entity("perf-2", perf)
	tommy := b.Entity("Tommy Lee Jones", actor)
	agentK := b.Entity("Agent K", character)
	b.Edge(mib, p2, rPerf)
	b.Edge(p2, tommy, rActor)
	b.Edge(p2, agentK, rChar)

	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := g.Schema()
	for _, inc := range s.Incident(film) {
		if s.RelType(inc.Rel).Name == "Performances" && inc.Outgoing {
			return g, film, inc
		}
	}
	t.Fatal("Performances incidence not found")
	return nil, 0, graph.Incidence{}
}

func TestMediatorDetection(t *testing.T) {
	g, film, inc := performanceGraph(t)
	s := g.Schema()
	info, ok := core.Mediator(s, film, inc)
	if !ok {
		t.Fatal("Performances should be detected as multi-way")
	}
	if s.TypeName(info.Target) != "FILM PERFORMANCE" {
		t.Errorf("target = %s", s.TypeName(info.Target))
	}
	names := map[string]bool{}
	for _, p := range info.Participants {
		names[s.TypeName(p)] = true
	}
	if !names["FILM ACTOR"] || !names["FILM CHARACTER"] || len(names) != 2 {
		t.Errorf("participants = %v", names)
	}
}

func TestMediatorNegative(t *testing.T) {
	// In Fig. 1, Genres targets FILM GENRE, which connects only back to
	// FILM: a plain binary attribute.
	g, d := fig1Discoverer(t)
	_ = d
	s := g.Schema()
	film, _ := g.TypeByName("FILM")
	for _, inc := range s.Incident(film) {
		if s.RelType(inc.Rel).Name == "Genres" {
			if _, ok := core.Mediator(s, film, inc); ok {
				t.Error("Genres should not be multi-way")
			}
		}
	}
}

func TestExpandValues(t *testing.T) {
	g, film, inc := performanceGraph(t)
	s := g.Schema()
	tb := core.Table{Key: film, NonKeys: []core.Candidate{{Inc: inc}}}
	tuples := core.MaterializeAll(g, &tb)
	if len(tuples) != 1 {
		t.Fatalf("tuples = %d, want 1", len(tuples))
	}
	expanded := core.ExpandValues(g, film, inc, tuples[0], 0)
	if len(expanded) != 2 {
		t.Fatalf("expanded values = %d, want 2 performances", len(expanded))
	}
	// Find perf-1 and check its linked actor/character.
	var found bool
	for _, ev := range expanded {
		if g.EntityName(ev.Value) != "perf-1" {
			continue
		}
		found = true
		actor, _ := s.TypeByName("FILM ACTOR")
		character, _ := s.TypeByName("FILM CHARACTER")
		if len(ev.Linked[actor]) != 1 || g.EntityName(ev.Linked[actor][0]) != "Will Smith" {
			t.Errorf("perf-1 actor = %v", ev.Linked[actor])
		}
		if len(ev.Linked[character]) != 1 || g.EntityName(ev.Linked[character][0]) != "Agent J" {
			t.Errorf("perf-1 character = %v", ev.Linked[character])
		}
	}
	if !found {
		t.Error("perf-1 not among expanded values")
	}
}

func TestExpandValuesBinaryAttribute(t *testing.T) {
	// Expanding a plain attribute yields values with empty Linked maps.
	g, d := fig1Discoverer(t)
	_ = d
	s := g.Schema()
	film, _ := g.TypeByName("FILM")
	var genres graph.Incidence
	for _, inc := range s.Incident(film) {
		if s.RelType(inc.Rel).Name == "Genres" {
			genres = inc
		}
	}
	tb := core.Table{Key: film, NonKeys: []core.Candidate{{Inc: genres}}}
	tuples := core.MaterializeAll(g, &tb)
	for _, tu := range tuples {
		for _, ev := range core.ExpandValues(g, film, genres, tu, 0) {
			if len(ev.Linked) != 0 {
				t.Errorf("binary attribute expanded: %v", ev.Linked)
			}
		}
	}
}
