package core_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/uta-db/previewtables/internal/core"
	"github.com/uta-db/previewtables/internal/fig1"
	"github.com/uta-db/previewtables/internal/score"
)

func TestAllOptimalFig1Ties(t *testing.T) {
	// The Sec. 4 example has two tied optimal key subsets at score 84:
	// {FILM, FILM ACTOR} (the paper's answer) and {FILM, FILM DIRECTOR}.
	g, d := fig1Discoverer(t)
	all, err := d.AllOptimal(core.Constraint{K: 2, N: 6, Mode: core.Concise})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("tied optima = %d, want 2", len(all))
	}
	seen := map[string]bool{}
	for _, p := range all {
		if math.Abs(p.Score-84) > eps {
			t.Errorf("tied preview score = %v, want 84", p.Score)
		}
		for _, k := range p.Keys() {
			seen[g.TypeName(k)] = true
		}
	}
	if !seen[fig1.Film] || !seen[fig1.FilmActor] || !seen[fig1.FilmDirector] {
		t.Errorf("tied key attributes = %v", seen)
	}
}

func TestAllOptimalUniqueOptimum(t *testing.T) {
	// Diverse d=2 on Fig. 1 has the unique optimum {FILM, AWARD}.
	g, d := fig1Discoverer(t)
	all, err := d.AllOptimal(core.Constraint{K: 2, N: 6, Mode: core.Diverse, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 {
		t.Fatalf("tied optima = %d, want 1", len(all))
	}
	names := keyNames(g, all[0])
	if !names[fig1.Film] || !names[fig1.Award] {
		t.Errorf("keys = %v", names)
	}
}

func TestAllOptimalContainsBruteForceOptimum(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomEntityGraph(rng)
		set := score.Compute(g, score.DefaultWalkOptions())
		d := core.New(set, randomOptions(rng))
		c := core.Constraint{K: rng.Intn(3) + 1, N: 8, Mode: core.Concise}
		bf, errBF := d.BruteForce(c)
		all, errAll := d.AllOptimal(c)
		if (errBF == nil) != (errAll == nil) {
			return false
		}
		if errBF != nil {
			return true
		}
		if len(all) == 0 {
			return false
		}
		for _, p := range all {
			if math.Abs(p.Score-bf.Score) > 1e-9*(1+math.Abs(bf.Score)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAllOptimalErrors(t *testing.T) {
	_, d := fig1Discoverer(t)
	if _, err := d.AllOptimal(core.Constraint{K: 0, N: 1}); err == nil {
		t.Error("invalid constraint should fail")
	}
	if _, err := d.AllOptimal(core.Constraint{K: 9, N: 9}); err != core.ErrNoPreview {
		t.Error("oversized k should report ErrNoPreview")
	}
}

func TestBruteForceParallelMatchesSequential(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomEntityGraph(rng)
		set := score.Compute(g, score.DefaultWalkOptions())
		d := core.New(set, randomOptions(rng))
		mode := core.Concise
		switch rng.Intn(3) {
		case 1:
			mode = core.Tight
		case 2:
			mode = core.Diverse
		}
		c := core.Constraint{K: rng.Intn(3) + 1, N: 8, Mode: mode, D: rng.Intn(3) + 1}
		seq, errSeq := d.BruteForce(c)
		par, errPar := d.BruteForceParallel(c, rng.Intn(4)+1)
		if (errSeq == nil) != (errPar == nil) {
			t.Logf("seed %d: errSeq=%v errPar=%v", seed, errSeq, errPar)
			return false
		}
		if errSeq != nil {
			return true
		}
		if math.Abs(seq.Score-par.Score) > 1e-9*(1+math.Abs(seq.Score)) {
			t.Logf("seed %d: seq=%v par=%v", seed, seq.Score, par.Score)
			return false
		}
		if seq.Stats.SubsetsScored != par.Stats.SubsetsScored {
			t.Logf("seed %d: scored seq=%d par=%d", seed, seq.Stats.SubsetsScored, par.Stats.SubsetsScored)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestBruteForceParallelDeterministicAcrossWorkerCounts(t *testing.T) {
	_, d := fig1Discoverer(t)
	c := core.Constraint{K: 2, N: 6, Mode: core.Concise}
	var firstKeys []string
	g := fig1.Graph()
	for _, workers := range []int{1, 2, 4, 16} {
		p, err := d.BruteForceParallel(c, workers)
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, k := range p.Keys() {
			names = append(names, g.TypeName(k))
		}
		if firstKeys == nil {
			firstKeys = names
			continue
		}
		for i := range names {
			if names[i] != firstKeys[i] {
				t.Fatalf("workers=%d chose %v, first run chose %v", workers, names, firstKeys)
			}
		}
	}
}

func TestBruteForceParallelErrors(t *testing.T) {
	_, d := fig1Discoverer(t)
	if _, err := d.BruteForceParallel(core.Constraint{K: 0, N: 0}, 2); err == nil {
		t.Error("invalid constraint should fail")
	}
	if _, err := d.BruteForceParallel(core.Constraint{K: 2, N: 4, Mode: core.Diverse, D: 9}, 2); err != core.ErrNoPreview {
		t.Error("infeasible constraint should report ErrNoPreview")
	}
}
