package core

// Brute-force optimal preview discovery (Alg. 1). Enumerates every k-subset
// of usable entity types, filters complete subsets by the pairwise distance
// constraint when in Tight/Diverse mode, assembles each surviving preview
// per Theorem 3 and keeps the best.
//
// Faithful to the paper, the distance check happens on complete k-subsets
// ("by performing distance check on every pair of preview tables in each
// k-subset of entity types") — no early pruning. That is exactly what makes
// the Apriori-style algorithm of Alg. 3 outperform it by orders of
// magnitude in Fig. 9; an early-pruning brute force would blur that
// comparison. It serves as ground truth in tests and as the baseline of the
// efficiency experiments (Figs. 8–9).

import "github.com/uta-db/previewtables/internal/graph"

// BruteForce solves the optimal preview discovery problem by exhaustive
// enumeration. It supports all three modes. Returns ErrNoPreview when the
// constrained space is empty.
func (d *Discoverer) BruteForce(c Constraint) (Preview, error) {
	if err := c.Validate(); err != nil {
		return Preview{}, err
	}
	types := d.usableTypes()
	if len(types) < c.K {
		return Preview{}, ErrNoPreview
	}

	var (
		bestKeys  []graph.TypeID
		bestScore float64
		found     bool
		stats     SearchStats
	)
	subset := make([]graph.TypeID, c.K)
	take := make([]int, c.K) // allocation-free scoring scratch

	var rec func(pos, start int)
	rec = func(pos, start int) {
		if pos == c.K {
			if c.Mode != Concise && !d.pairwiseOK(c, subset) {
				return
			}
			stats.SubsetsScored++
			score := d.previewScore(subset, c.N, take)
			// Ties break toward the lexicographically smallest key subset —
			// redundant while enumeration is lexicographic (first wins), but
			// stated explicitly so the policy survives reordering and matches
			// the parallel searches' merge step.
			if !found || score > bestScore ||
				(score == bestScore && lessKeys(subset, bestKeys)) {
				bestScore = score
				bestKeys = append(bestKeys[:0], subset...)
				found = true
			}
			return
		}
		for i := start; i <= len(types)-(c.K-pos); i++ {
			subset[pos] = types[i]
			rec(pos+1, i+1)
		}
	}
	rec(0, 0)

	if !found {
		return Preview{}, ErrNoPreview
	}
	best, err := d.ComputePreview(bestKeys, c.N)
	if err != nil {
		return Preview{}, err
	}
	best.Stats = stats
	return best, nil
}

// pairwiseOK checks the distance constraint on every pair of the subset.
func (d *Discoverer) pairwiseOK(c Constraint, subset []graph.TypeID) bool {
	for i := 0; i < len(subset); i++ {
		for j := i + 1; j < len(subset); j++ {
			if !d.distOK(c, subset[i], subset[j]) {
				return false
			}
		}
	}
	return true
}
