package core_test

// Differential tests for the parallel hot paths: on randomized generated
// graphs, every (measure pair × mode × constraint) must yield identical
// previews — tables, scores, everything except the work counters — whether
// the scoring and search ran sequentially or on a worker pool, and the
// parallel searches must agree with brute force on the optimum. These
// tests are the determinism guarantee of docs/ARCHITECTURE.md in
// executable form.

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"github.com/uta-db/previewtables/internal/core"
	"github.com/uta-db/previewtables/internal/freebase"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/score"
)

// diffWorkers is the worker-pool size the differential tests compare
// against sequential execution. Fixed above 1 (rather than NumCPU) so the
// parallel code paths are exercised even on a single-core CI machine.
const diffWorkers = 4

// diffDomains generates the randomized test graphs: two domains with very
// different schema sizes (basketball K=6, architecture K=23), two seeds
// each.
func diffDomains(t *testing.T) map[string]*graph.EntityGraph {
	t.Helper()
	graphs := map[string]*graph.EntityGraph{}
	for _, domain := range []string{"basketball", "architecture"} {
		for _, seed := range []int64{7, 20160626} {
			g, err := freebase.Generate(domain, freebase.GenOptions{
				Scale: 1e-4, Seed: seed, MinEntities: 300, MinEdges: 1200,
			})
			if err != nil {
				t.Fatal(err)
			}
			graphs[domain+"/"+string(rune('0'+seed%10))] = g
		}
	}
	return graphs
}

// measurePairs enumerates all four scoring configurations.
func measurePairs() []core.Options {
	var pairs []core.Options
	for _, km := range []score.KeyMeasure{score.KeyCoverage, score.KeyRandomWalk} {
		for _, nm := range []score.NonKeyMeasure{score.NonKeyCoverage, score.NonKeyEntropy} {
			pairs = append(pairs, core.Options{Key: km, NonKey: nm})
		}
	}
	return pairs
}

// diffConstraints sweeps the three modes at brute-forceable sizes.
func diffConstraints() []core.Constraint {
	return []core.Constraint{
		{K: 2, N: 5, Mode: core.Concise},
		{K: 3, N: 7, Mode: core.Concise},
		{K: 2, N: 4, Mode: core.Tight, D: 2},
		{K: 3, N: 6, Mode: core.Tight, D: 3},
		{K: 2, N: 4, Mode: core.Diverse, D: 2},
		{K: 3, N: 6, Mode: core.Diverse, D: 3},
		{K: 4, N: 8, Mode: core.Diverse, D: 1},
	}
}

// stripStats zeroes the work counters, the one field allowed to differ
// between algorithms (and the only one that may not differ between
// parallelism levels of the same algorithm — see TestAprioriParallelStats).
func stripStats(p core.Preview) core.Preview {
	p.Stats = core.SearchStats{}
	return p
}

// TestScoreComputeParallelBitIdentical: the scoring precomputation is the
// first hot path — a parallel Compute must reproduce the sequential Set
// bit for bit, across every measure.
func TestScoreComputeParallelBitIdentical(t *testing.T) {
	for name, g := range diffDomains(t) {
		seq := score.Compute(g, score.DefaultWalkOptions())
		parOpts := score.DefaultWalkOptions()
		parOpts.Parallelism = diffWorkers
		parSet := score.Compute(g, parOpts)

		s := seq.Schema()
		for ti := 0; ti < s.NumTypes(); ti++ {
			tid := graph.TypeID(ti)
			for _, km := range []score.KeyMeasure{score.KeyCoverage, score.KeyRandomWalk} {
				if a, b := seq.Key(km, tid), parSet.Key(km, tid); a != b {
					t.Fatalf("%s: key %v score of type %d differs: sequential %v, parallel %v", name, km, ti, a, b)
				}
			}
			for i := range s.Incident(tid) {
				for _, nm := range []score.NonKeyMeasure{score.NonKeyCoverage, score.NonKeyEntropy} {
					if a, b := seq.NonKey(nm, tid, i), parSet.NonKey(nm, tid, i); a != b {
						t.Fatalf("%s: non-key %v score of (%d, %d) differs: sequential %v, parallel %v", name, nm, ti, i, a, b)
					}
				}
			}
		}
	}
}

// TestDiscoverDifferential is the core differential property: for every
// (measure pair × mode × constraint), Parallelism=1 and Parallelism=N
// produce identical previews, and both agree with brute force on the
// optimal score.
func TestDiscoverDifferential(t *testing.T) {
	parOpts := score.DefaultWalkOptions()
	parOpts.Parallelism = diffWorkers
	for name, g := range diffDomains(t) {
		seqSet := score.Compute(g, score.DefaultWalkOptions())
		parSet := score.Compute(g, parOpts)
		for _, pair := range measurePairs() {
			seqOpts, parOpts := pair, pair
			seqOpts.Parallelism = 1
			parOpts.Parallelism = diffWorkers
			dSeq := core.New(seqSet, seqOpts)
			dPar := core.New(parSet, parOpts)
			for _, c := range diffConstraints() {
				pSeq, errSeq := dSeq.Discover(c)
				pPar, errPar := dPar.Discover(c)
				if (errSeq == nil) != (errPar == nil) || (errSeq != nil && !errors.Is(errPar, errSeq)) {
					t.Fatalf("%s %v %+v: error divergence: sequential %v, parallel %v", name, pair, c, errSeq, errPar)
				}
				if errSeq != nil {
					continue
				}
				if !reflect.DeepEqual(stripStats(pSeq), stripStats(pPar)) {
					t.Fatalf("%s %v %+v: previews diverge:\nsequential %+v\nparallel   %+v", name, pair, c, pSeq, pPar)
				}

				// Ground truth: brute force over the same sequential set.
				pBF, errBF := dSeq.BruteForce(c)
				if errBF != nil {
					t.Fatalf("%s %v %+v: brute force failed where Discover succeeded: %v", name, pair, c, errBF)
				}
				tol := 1e-12 * (1 + math.Abs(pBF.Score))
				if math.Abs(pBF.Score-pSeq.Score) > tol {
					t.Fatalf("%s %v %+v: Discover score %v != brute-force optimum %v", name, pair, c, pSeq.Score, pBF.Score)
				}
				// And the parallel brute force agrees with everything else.
				pBFP, errBFP := dPar.BruteForceParallel(c, diffWorkers)
				if errBFP != nil {
					t.Fatal(errBFP)
				}
				if math.Abs(pBFP.Score-pBF.Score) > tol {
					t.Fatalf("%s %v %+v: parallel brute-force score %v != sequential %v", name, pair, c, pBFP.Score, pBF.Score)
				}
			}
		}
	}
}

// TestDiscoverRepeatedRunsIdentical: two independent end-to-end runs —
// fresh score sets, fresh discoverers — must produce byte-identical
// previews. This pins the deterministic tie-breaking (RankKeys,
// RankNonKeys, search merges) and the order-stable entropy accumulation:
// before the Entropy fix, Go's randomized map iteration could flip the
// last bits of a score between runs and with them the chosen preview.
func TestDiscoverRepeatedRunsIdentical(t *testing.T) {
	g, err := freebase.Generate("basketball", freebase.GenOptions{
		Scale: 1e-4, Seed: 99, MinEntities: 300, MinEdges: 1200,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []core.Preview {
		opts := score.DefaultWalkOptions()
		opts.Parallelism = workers
		set := score.Compute(g, opts)
		var out []core.Preview
		for _, pair := range measurePairs() {
			pair.Parallelism = workers
			d := core.New(set, pair)
			for _, c := range diffConstraints() {
				p, err := d.Discover(c)
				if errors.Is(err, core.ErrNoPreview) {
					out = append(out, core.Preview{}) // infeasible: must be infeasible every run
					continue
				}
				if err != nil {
					t.Fatalf("workers=%d %v %+v: %v", workers, pair, c, err)
				}
				out = append(out, stripStats(p))
			}
		}
		return out
	}
	first := run(1)
	for _, workers := range []int{1, diffWorkers} {
		again := run(workers)
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("workers=%d: repeated run produced different previews", workers)
		}
	}
}

// TestAprioriParallelStats: the parallel Apriori is the same algorithm,
// so even its work counters match the sequential search's.
func TestAprioriParallelStats(t *testing.T) {
	g, err := freebase.Generate("architecture", freebase.GenOptions{
		Scale: 1e-4, Seed: 3, MinEntities: 300, MinEdges: 1200,
	})
	if err != nil {
		t.Fatal(err)
	}
	set := score.Compute(g, score.DefaultWalkOptions())
	d := core.New(set, core.Options{Key: score.KeyCoverage, NonKey: score.NonKeyCoverage})
	for _, c := range []core.Constraint{
		{K: 1, N: 3, Mode: core.Tight, D: 2},
		{K: 3, N: 6, Mode: core.Tight, D: 3},
		{K: 4, N: 8, Mode: core.Diverse, D: 1},
	} {
		seq, errSeq := d.Apriori(c)
		parp, errPar := d.AprioriParallel(c, diffWorkers)
		if (errSeq == nil) != (errPar == nil) {
			t.Fatalf("%+v: error divergence: %v vs %v", c, errSeq, errPar)
		}
		if errSeq != nil {
			continue
		}
		if !reflect.DeepEqual(seq, parp) {
			t.Fatalf("%+v: full previews (including stats) diverge:\nsequential %+v\nparallel   %+v", c, seq, parp)
		}
	}
}

// TestAprioriParallelBudgetBoundary: the shared atomic budget counter
// reproduces the sequential semantics exactly — success at a budget equal
// to the total candidate volume, ErrSearchBudget one below it — at every
// parallelism level.
func TestAprioriParallelBudgetBoundary(t *testing.T) {
	g, err := freebase.Generate("architecture", freebase.GenOptions{
		Scale: 1e-4, Seed: 5, MinEntities: 300, MinEdges: 1200,
	})
	if err != nil {
		t.Fatal(err)
	}
	set := score.Compute(g, score.DefaultWalkOptions())
	d := core.New(set, core.Options{Key: score.KeyCoverage, NonKey: score.NonKeyCoverage})
	c := core.Constraint{K: 3, N: 6, Mode: core.Diverse, D: 2}

	unbounded, err := d.Apriori(c)
	if err != nil {
		t.Fatal(err)
	}
	total := unbounded.Stats.CandidatesGenerated
	if total < 2 {
		t.Fatalf("constraint too small to exercise the budget: %d candidates", total)
	}

	for _, workers := range []int{1, diffWorkers} {
		exact := c
		exact.MaxCandidates = total
		p, err := d.AprioriParallel(exact, workers)
		if err != nil {
			t.Fatalf("workers=%d: budget == volume (%d) must succeed, got %v", workers, total, err)
		}
		if !reflect.DeepEqual(stripStats(p), stripStats(unbounded)) {
			t.Fatalf("workers=%d: budgeted preview differs from unbounded", workers)
		}
		tight := c
		tight.MaxCandidates = total - 1
		if _, err := d.AprioriParallel(tight, workers); !errors.Is(err, core.ErrSearchBudget) {
			t.Fatalf("workers=%d: budget below volume must fail with ErrSearchBudget, got %v", workers, err)
		}
	}
}
