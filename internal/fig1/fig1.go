// Package fig1 reconstructs the running example of the paper: the entity
// graph excerpt of Figure 1, whose schema graph is Figure 3 and whose
// 2-table preview is Figure 2. Every count in the package is pinned by a
// number stated in the paper:
//
//   - Scov(FILM) = 4 (Sec. 3.2): four films.
//   - Scov(Director) = 4 and Scov(Genres) = 5 (Sec. 3.3).
//   - w(FILM, FILM GENRE)=5, w(FILM, FILM ACTOR)=6, w(FILM, FILM DIRECTOR)=4,
//     w(FILM, FILM PRODUCER)=3 (the random-walk example: M = 5/18 and 3/18).
//   - Two edges (Actor, Executive Producer) from Will Smith to I, Robot.
//   - Will Smith bears both FILM ACTOR and FILM PRODUCER.
//   - Award Winners appears as two distinct relationship types
//     (FILM ACTOR→AWARD and FILM DIRECTOR→AWARD).
//   - t3 (Hancock) has an empty Genres value; t1/t2 share {Action Film,
//     Science Fiction}; t4 has {Action Film} (Fig. 2).
//   - dist(FILM, FILM ACTOR)=1 and dist(FILM, AWARD)=2 (Sec. 4).
//
// Tests across the repository use this graph to verify the scoring measures
// and discovery algorithms against the paper's worked results.
package fig1

import "github.com/uta-db/previewtables/internal/graph"

// Entity type names of Figure 3.
const (
	Film         = "FILM"
	FilmActor    = "FILM ACTOR"
	FilmDirector = "FILM DIRECTOR"
	FilmProducer = "FILM PRODUCER"
	FilmGenre    = "FILM GENRE"
	Award        = "AWARD"
)

// Relationship type surface names of Figure 3.
const (
	RelActor        = "Actor"
	RelDirector     = "Director"
	RelGenres       = "Genres"
	RelProducer     = "Producer"
	RelExecProducer = "Executive Producer"
	RelAwardWinners = "Award Winners"
)

// Graph builds the Figure 1 entity graph. It panics on construction error
// (the fixture is static); tests rely on it validating cleanly.
func Graph() *graph.EntityGraph {
	var b graph.Builder

	film := b.Type(Film)
	actor := b.Type(FilmActor)
	director := b.Type(FilmDirector)
	producer := b.Type(FilmProducer)
	genre := b.Type(FilmGenre)
	award := b.Type(Award)

	rActor := b.RelType(RelActor, actor, film)
	rDirector := b.RelType(RelDirector, director, film)
	rGenres := b.RelType(RelGenres, film, genre)
	rProducer := b.RelType(RelProducer, producer, film)
	rExec := b.RelType(RelExecProducer, producer, film)
	rAwardActor := b.RelType(RelAwardWinners, actor, award)
	rAwardDirector := b.RelType(RelAwardWinners, director, award)

	mib := b.Entity("Men in Black", film)
	mib2 := b.Entity("Men in Black II", film)
	hancock := b.Entity("Hancock", film)
	irobot := b.Entity("I, Robot", film)

	will := b.Entity("Will Smith", actor, producer)
	tommy := b.Entity("Tommy Lee Jones", actor)

	barry := b.Entity("Barry Sonnenfeld", director)
	peter := b.Entity("Peter Berg", director)
	alex := b.Entity("Alex Proyas", director)

	action := b.Entity("Action Film", genre)
	scifi := b.Entity("Science Fiction", genre)

	saturn := b.Entity("Saturn Award", award)
	academy := b.Entity("Academy Award", award)
	razzie := b.Entity("Razzie Award", award)

	// Actor: 6 edges, so w(FILM, FILM ACTOR) = 6.
	b.Edge(will, mib, rActor)
	b.Edge(will, mib2, rActor)
	b.Edge(will, hancock, rActor)
	b.Edge(will, irobot, rActor)
	b.Edge(tommy, mib, rActor)
	b.Edge(tommy, mib2, rActor)

	// Director: 4 edges (Fig. 2: Barry×2, Peter, Alex).
	b.Edge(barry, mib, rDirector)
	b.Edge(barry, mib2, rDirector)
	b.Edge(peter, hancock, rDirector)
	b.Edge(alex, irobot, rDirector)

	// Genres: 5 edges (Fig. 2 tuples; Hancock has none).
	b.Edge(mib, action, rGenres)
	b.Edge(mib, scifi, rGenres)
	b.Edge(mib2, action, rGenres)
	b.Edge(mib2, scifi, rGenres)
	b.Edge(irobot, action, rGenres)

	// Producer (2) + Executive Producer (1): w(FILM, FILM PRODUCER) = 3.
	// The Executive Producer edge to I, Robot parallels Will Smith's Actor
	// edge, making Gd a true multigraph (Sec. 2).
	b.Edge(will, hancock, rProducer)
	b.Edge(will, mib2, rProducer)
	b.Edge(will, irobot, rExec)

	// Award Winners: two relationship types sharing a surface name.
	b.Edge(will, saturn, rAwardActor)
	b.Edge(tommy, academy, rAwardActor)
	b.Edge(barry, razzie, rAwardDirector)

	g, err := b.Build()
	if err != nil {
		panic("fig1: " + err.Error())
	}
	return g
}
