package yps09_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/uta-db/previewtables/internal/fig1"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/yps09"
)

func fig1Summarizer(t *testing.T) (*graph.EntityGraph, *yps09.Summarizer) {
	t.Helper()
	g := fig1.Graph()
	return g, yps09.New(g)
}

func TestImportanceDistribution(t *testing.T) {
	g, y := fig1Summarizer(t)
	var sum float64
	for i := 0; i < g.NumTypes(); i++ {
		p := y.Importance(graph.TypeID(i))
		if p < 0 {
			t.Errorf("negative importance for %s: %v", g.TypeName(graph.TypeID(i)), p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importance sums to %v, want 1", sum)
	}
}

func TestHubTableRanksHigh(t *testing.T) {
	// FILM joins every other table and has the widest schema: it must rank
	// in the top two by YPS09 importance.
	g, y := fig1Summarizer(t)
	ranked := y.RankTables()
	top2 := map[string]bool{
		g.TypeName(ranked[0]): true,
		g.TypeName(ranked[1]): true,
	}
	if !top2[fig1.Film] {
		t.Errorf("FILM not in top-2 YPS09 tables: %v", top2)
	}
}

func TestRankTablesDeterministic(t *testing.T) {
	_, y := fig1Summarizer(t)
	a := y.RankTables()
	b := y.RankTables()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("ranking not deterministic")
		}
	}
}

func TestDistanceProperties(t *testing.T) {
	g, y := fig1Summarizer(t)
	n := g.NumTypes()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			da := y.Distance(graph.TypeID(a), graph.TypeID(b))
			db := y.Distance(graph.TypeID(b), graph.TypeID(a))
			if da != db {
				t.Errorf("distance not symmetric for (%d,%d): %v vs %v", a, b, da, db)
			}
			if a == b && da != 0 {
				t.Errorf("self distance = %v, want 0", da)
			}
			if da < 0 || da > 1 {
				t.Errorf("distance out of [0,1]: %v", da)
			}
		}
	}
}

func TestJoinedTablesCloserThanUnjoined(t *testing.T) {
	g, y := fig1Summarizer(t)
	film, _ := g.TypeByName(fig1.Film)
	director, _ := g.TypeByName(fig1.FilmDirector)
	genre, _ := g.TypeByName(fig1.FilmGenre)
	award, _ := g.TypeByName(fig1.Award)
	joined := y.Distance(film, director)
	unjoined := y.Distance(genre, award)
	if joined >= unjoined {
		t.Errorf("joined tables (%v) should be closer than unjoined (%v)", joined, unjoined)
	}
	if unjoined != 1 {
		t.Errorf("unjoined distance = %v, want 1", unjoined)
	}
}

func TestSummarize(t *testing.T) {
	g, y := fig1Summarizer(t)
	clusters, err := y.Summarize(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 3 {
		t.Fatalf("clusters = %d, want 3", len(clusters))
	}
	seenCenter := map[graph.TypeID]bool{}
	var members int
	for _, c := range clusters {
		if seenCenter[c.Center] {
			t.Error("duplicate cluster center")
		}
		seenCenter[c.Center] = true
		members += len(c.Members)
		found := false
		for _, m := range c.Members {
			if m == c.Center {
				found = true
			}
		}
		if !found {
			t.Errorf("center %s not among its own members", g.TypeName(c.Center))
		}
	}
	if members != g.NumTypes() {
		t.Errorf("clusters cover %d tables, want all %d", members, g.NumTypes())
	}
}

func TestSummarizeKEqualsN(t *testing.T) {
	g, y := fig1Summarizer(t)
	clusters, err := y.Summarize(g.NumTypes())
	if err != nil {
		t.Fatal(err)
	}
	// k = n: every table may become its own center, unless some table is at
	// distance 0 from an existing center; clusters still cover everything.
	var members int
	for _, c := range clusters {
		members += len(c.Members)
	}
	if members != g.NumTypes() {
		t.Errorf("coverage = %d, want %d", members, g.NumTypes())
	}
}

func TestSummarizeErrors(t *testing.T) {
	_, y := fig1Summarizer(t)
	if _, err := y.Summarize(0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := y.Summarize(99); err == nil {
		t.Error("k beyond table count should fail")
	}
}

func TestTableWidth(t *testing.T) {
	g, y := fig1Summarizer(t)
	film, _ := g.TypeByName(fig1.Film)
	// FILM: key column + 5 incident relationship columns.
	if w := y.TableWidth(film); w != 6 {
		t.Errorf("width(FILM) = %d, want 6", w)
	}
}

func TestFirstCenterIsMostImportant(t *testing.T) {
	_, y := fig1Summarizer(t)
	clusters, err := y.Summarize(2)
	if err != nil {
		t.Fatal(err)
	}
	if clusters[0].Center != y.RankTables()[0] {
		t.Error("first center should be the most important table")
	}
}

func TestSummarizerOnRandomGraphs(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b graph.Builder
		nTypes := rng.Intn(6) + 2
		types := make([]graph.TypeID, nTypes)
		for i := range types {
			types[i] = b.Type("T" + string(rune('A'+i)))
		}
		var rels []graph.RelTypeID
		for i := 0; i < rng.Intn(10)+1; i++ {
			rels = append(rels, b.RelType("r"+string(rune('0'+i)), types[rng.Intn(nTypes)], types[rng.Intn(nTypes)]))
		}
		var ents []graph.EntityID
		for i := 0; i < rng.Intn(20)+2; i++ {
			ents = append(ents, b.Entity("e"+string(rune('a'+i%26))+string(rune('0'+i/26)), types[rng.Intn(nTypes)]))
		}
		for i := 0; i < rng.Intn(40); i++ {
			b.Edge(ents[rng.Intn(len(ents))], ents[rng.Intn(len(ents))], rels[rng.Intn(len(rels))])
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		y := yps09.New(g)
		var sum float64
		for i := 0; i < nTypes; i++ {
			sum += y.Importance(graph.TypeID(i))
		}
		if math.Abs(sum-1) > 1e-6 {
			return false
		}
		k := rng.Intn(nTypes) + 1
		clusters, err := y.Summarize(k)
		if err != nil {
			return false
		}
		var members int
		for _, c := range clusters {
			members += len(c.Members)
		}
		return members == nTypes
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
