// Package yps09 adapts "Summarizing Relational Databases" (Yang, Procopiuc,
// Srivastava; VLDB 2009) to entity graphs, following Sec. 6.1.1 of the
// preview-tables paper, which uses it as the comparison baseline ("YPS09").
//
// The adaptation converts the entity graph into a relational view exactly
// as Sec. 6.1.1 describes: one table per entity type τ, whose first column
// holds the entities of τ and which has one further column per relationship
// type incident on τ. Crucially, "for each entity belonging to τ, a number
// of tuples are inserted into the table, which are essentially a Cartesian
// product of distinct values on all these columns" — so the row count of a
// table is Σ_e Π_γ max(1, |e.γ|), which explodes for entity types with many
// multi-valued attributes. This faithful conversion is what makes YPS09
// misjudge entity-graph importance in the paper's comparison (its
// information content rewards Cartesian blow-up, not user-facing
// centrality). On that view the three steps of YPS09 are reproduced:
//
//  1. Table importance — each table's information content (entropy of its
//     columns) diffused over the join graph by a random walk whose
//     transitions are proportional to the entropy carried by join columns;
//     importance is the stationary distribution (the idea the paper notes
//     is "similar to our random-walk based scoring measure").
//  2. Table similarity — join-entropy affinity normalized by information
//     content, turned into a distance.
//  3. Weighted k-center clustering — a greedy 2-approximation picks k
//     cluster centers; the centers are the summary. Each center table keeps
//     every incident relationship as an attribute (the wide tables the user
//     study renders for the "YPS09" approach).
package yps09

import (
	"errors"
	"math"
	"sort"

	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/score"
)

// Summarizer holds the relational view of one entity graph and its
// precomputed importance model.
type Summarizer struct {
	g      *graph.EntityGraph
	schema *graph.Schema

	ic         []float64   // information content per table (entity type)
	joinH      [][]float64 // join entropy between neighbor tables, aligned with schema.Neighbors
	importance []float64   // stationary importance per table
}

// New builds the relational view of g and precomputes table importance.
func New(g *graph.EntityGraph) *Summarizer {
	s := g.Schema()
	y := &Summarizer{g: g, schema: s}
	n := s.NumTypes()

	// Column entropies and Cartesian row counts. The relational conversion
	// inserts, per entity, the Cartesian product of its distinct values on
	// all columns; a table's cardinality term is therefore
	// log10(1 + Σ_e Π_γ max(1, |e.γ|)), clamped to avoid overflow.
	// Relationship columns reuse the paper's non-key entropy (they carry
	// exactly the same value distributions).
	y.ic = make([]float64, n)
	colH := make([][]float64, n)
	for t := 0; t < n; t++ {
		tid := graph.TypeID(t)
		incs := s.Incident(tid)
		hs := make([]float64, len(incs))
		ic := cartesianLogRows(g, tid, incs)
		for i, inc := range incs {
			hs[i] = score.Entropy(g, tid, inc)
			ic += hs[i]
		}
		colH[t] = hs
		y.ic[t] = ic
	}

	// Join entropies between neighboring tables: the entropy carried by the
	// columns realizing the join, summed over parallel relationship types,
	// from the source table's side.
	y.joinH = make([][]float64, n)
	for t := 0; t < n; t++ {
		tid := graph.TypeID(t)
		neighbors, _ := s.Neighbors(tid)
		jh := make([]float64, len(neighbors))
		incs := s.Incident(tid)
		for i, inc := range incs {
			other := s.OtherEnd(inc)
			for j, u := range neighbors {
				if u == other {
					jh[j] += colH[t][i]
				}
			}
		}
		y.joinH[t] = jh
	}

	// YPS09 defines a table's importance as its information content,
	// diffused over the join graph by the random walk. The information
	// content term dominates: with the Cartesian-product conversion, IC
	// rewards tables whose entities have many multi-valued attributes
	// (recordings, tracks, episodes, editions) and starves narrow
	// user-facing tables (writers, producers, concerts). That systematic
	// bias — information structure over entrance-page centrality — is
	// exactly why the baseline diverges from the gold standards in the
	// paper's comparison (Figs. 5–7, Table 4).
	pi := y.stationaryImportance()
	y.importance = make([]float64, n)
	var total float64
	for t := 0; t < n; t++ {
		y.importance[t] = y.ic[t] * (1 + pi[t])
		total += y.importance[t]
	}
	if total > 0 {
		for t := range y.importance {
			y.importance[t] /= total
		}
	} else {
		// Degenerate database: every table carries zero information
		// (single-row tables, no relationships). Fall back to the walk
		// mass so importance stays a distribution.
		copy(y.importance, pi)
	}
	return y
}

// cartesianLogRows returns log10(1 + Σ_e Π_γ max(1, |e.γ|)): the logarithm
// of the Cartesian-product row count of type t's relational table. The sum
// is accumulated in log space per entity and clamped so pathological hubs
// cannot overflow float64.
func cartesianLogRows(g *graph.EntityGraph, t graph.TypeID, incs []graph.Incidence) float64 {
	const maxLogRows = 30 // 10^30 rows is beyond any meaningful distinction
	var logSum float64    // log10 of the running row-count sum
	first := true
	for _, e := range g.EntitiesOfType(t) {
		var logProd float64
		for _, inc := range incs {
			if v := len(g.Neighbors(e, inc.Rel, inc.Outgoing)); v > 1 {
				logProd += math.Log10(float64(v))
			}
		}
		if logProd > maxLogRows {
			logProd = maxLogRows
		}
		if first {
			logSum = logProd
			first = false
			continue
		}
		// logSum = log10(10^logSum + 10^logProd), numerically stable.
		hi, lo := logSum, logProd
		if lo > hi {
			hi, lo = lo, hi
		}
		logSum = hi + math.Log10(1+math.Pow(10, lo-hi))
		if logSum > maxLogRows {
			logSum = maxLogRows
		}
	}
	if first {
		return 0 // no entities
	}
	return logSum
}

// stationaryImportance runs the lazy random walk whose self-transition
// weight is a table's own information content and whose cross-transitions
// carry join entropy. Zero-weight rows fall back to uniform.
func (y *Summarizer) stationaryImportance() []float64 {
	n := y.schema.NumTypes()
	if n == 0 {
		return nil
	}
	if n == 1 {
		return []float64{1}
	}
	pi := make([]float64, n)
	next := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	const (
		tol     = 1e-12
		maxIter = 10000
		jump    = 1e-5 // smoothing against disconnected join graphs
	)
	for iter := 0; iter < maxIter; iter++ {
		var jumpMass float64
		for j := range next {
			next[j] = 0
		}
		for t := 0; t < n; t++ {
			neighbors, _ := y.schema.Neighbors(graph.TypeID(t))
			row := y.ic[t]
			for _, w := range y.joinH[t] {
				row += w
			}
			row += jump * float64(n-1)
			if row == 0 {
				share := pi[t] / float64(n)
				for j := 0; j < n; j++ {
					next[j] += share
				}
				continue
			}
			next[t] += pi[t] * y.ic[t] / row
			for i, u := range neighbors {
				next[u] += pi[t] * y.joinH[t][i] / row
			}
			contrib := pi[t] * jump / row
			jumpMass += contrib
			next[t] -= contrib
		}
		for j := range next {
			next[j] += jumpMass
		}
		var delta float64
		for j := range next {
			next[j] = 0.5*next[j] + 0.5*pi[j]
			delta += math.Abs(next[j] - pi[j])
		}
		pi, next = next, pi
		if delta < tol {
			break
		}
	}
	var sum float64
	for _, p := range pi {
		sum += p
	}
	if sum > 0 {
		for i := range pi {
			pi[i] /= sum
		}
	}
	return pi
}

// Importance returns table τ's importance score.
func (y *Summarizer) Importance(t graph.TypeID) float64 { return y.importance[t] }

// RankTables returns all tables (entity types) by decreasing importance —
// the ranking compared against gold standards in Figs. 5–7 and Table 4.
func (y *Summarizer) RankTables() []graph.TypeID {
	ids := make([]graph.TypeID, len(y.importance))
	for i := range ids {
		ids[i] = graph.TypeID(i)
	}
	sort.SliceStable(ids, func(a, b int) bool {
		ia, ib := y.importance[ids[a]], y.importance[ids[b]]
		if ia != ib {
			return ia > ib
		}
		return ids[a] < ids[b]
	})
	return ids
}

// Distance returns the dissimilarity between two tables: 1 − normalized
// join affinity. Directly joined tables with high shared entropy are close;
// tables with no join path get the maximum distance 1.
func (y *Summarizer) Distance(a, b graph.TypeID) float64 {
	if a == b {
		return 0
	}
	var aff float64
	neighbors, _ := y.schema.Neighbors(a)
	for i, u := range neighbors {
		if u == b {
			aff += y.joinH[a][i]
		}
	}
	neighbors, _ = y.schema.Neighbors(b)
	for i, u := range neighbors {
		if u == a {
			aff += y.joinH[b][i]
		}
	}
	if aff == 0 {
		return 1
	}
	denom := y.ic[a] + y.ic[b]
	if denom <= 0 {
		return 1
	}
	sim := aff / denom
	if sim > 1 {
		sim = 1
	}
	return 1 - sim
}

// Cluster is one group of the k-center summary: a center table and its
// member tables (the center included).
type Cluster struct {
	Center  graph.TypeID
	Members []graph.TypeID
}

// ErrTooFewTables is returned when k exceeds the number of tables.
var ErrTooFewTables = errors.New("yps09: k exceeds table count")

// Summarize runs weighted k-center clustering: the first center is the most
// important table; each subsequent center maximizes
// importance(t) × distance(t, nearest center) — the greedy 2-approximation
// of the weighted k-center objective used by YPS09. Tables are then
// assigned to their nearest center.
func (y *Summarizer) Summarize(k int) ([]Cluster, error) {
	n := y.schema.NumTypes()
	if k < 1 || k > n {
		return nil, ErrTooFewTables
	}
	ranked := y.RankTables()
	centers := []graph.TypeID{ranked[0]}
	minDist := make([]float64, n)
	for t := 0; t < n; t++ {
		minDist[t] = y.Distance(graph.TypeID(t), centers[0])
	}
	for len(centers) < k {
		best := graph.TypeID(-1)
		bestW := -1.0
		for t := 0; t < n; t++ {
			tid := graph.TypeID(t)
			if minDist[t] == 0 {
				continue
			}
			w := y.importance[t] * minDist[t]
			if w > bestW {
				best, bestW = tid, w
			}
		}
		if best < 0 {
			break // everything coincides with a center
		}
		centers = append(centers, best)
		for t := 0; t < n; t++ {
			if d := y.Distance(graph.TypeID(t), best); d < minDist[t] {
				minDist[t] = d
			}
		}
	}

	clusters := make([]Cluster, len(centers))
	for i, c := range centers {
		clusters[i] = Cluster{Center: c}
	}
	for t := 0; t < n; t++ {
		tid := graph.TypeID(t)
		bi, bd := 0, math.Inf(1)
		for i, c := range centers {
			if d := y.Distance(tid, c); d < bd {
				bi, bd = i, d
			}
		}
		clusters[bi].Members = append(clusters[bi].Members, tid)
	}
	return clusters, nil
}

// TableWidth returns the number of columns of table τ in the relational
// view: the key column plus one column per incident relationship type. The
// user study uses this as the YPS09 presentation's complexity.
func (y *Summarizer) TableWidth(t graph.TypeID) int {
	return 1 + len(y.schema.Incident(t))
}
