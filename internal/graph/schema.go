package graph

import "fmt"

// Schema is the schema graph Gs(Vs, Es) in a form convenient for the preview
// algorithms: entity types as vertices, relationship types as (directed)
// multigraph edges, plus the undirected weighted view used by the
// random-walk scoring measure and by table-distance computation.
//
// A Schema is obtained either from an entity graph (EntityGraph.Schema,
// in which case edge weights are relationship-instance counts) or built
// directly with NewSchema (used by the NP-hardness reductions and tests,
// where weights default to 1 per relationship type).
type Schema struct {
	typeNames []string
	rels      []RelType

	// incident[t] lists all relationship types incident on t, outgoing
	// first; this is Γτ, the candidate non-key attribute set of t.
	incident [][]Incidence

	// neighbors[t] lists the distinct entity types adjacent to t in the
	// undirected view (no self loops removed: a self loop makes t its own
	// neighbor but contributes distance 0 anyway, so it is skipped).
	neighbors [][]TypeID

	// weight[t] holds, aligned with neighbors[t], the undirected edge
	// weight w(t, u): the total number of relationship instances between
	// entities of the two types, in both directions (Sec. 3.2).
	weight [][]float64
}

// Incidence is one candidate non-key attribute of a table keyed by some
// entity type τ: a relationship type together with the orientation in which
// it is incident on τ. Outgoing means the relationship is γ(τ, τ′); the
// same relationship type can be incident on a type in both orientations
// (a self loop in the schema graph).
type Incidence struct {
	Rel      RelTypeID
	Outgoing bool
}

// Schema derives the schema graph of g. Undirected edge weights are the
// relationship-instance counts of the underlying entity graph.
func (g *EntityGraph) Schema() *Schema {
	names := make([]string, len(g.types))
	for i := range g.types {
		names[i] = g.types[i].Name
	}
	rels := make([]RelType, len(g.relTypes))
	copy(rels, g.relTypes)
	return buildSchema(names, rels)
}

// NewSchema builds a schema graph directly from a list of entity type names
// and relationship types. Relationship types with zero EdgeCount are given
// weight 1 in the undirected view so that structure-only schemas (as used in
// the NP-hardness reductions, where scores are irrelevant) stay connected
// the same way.
func NewSchema(typeNames []string, rels []RelType) (*Schema, error) {
	for _, r := range rels {
		if r.From < 0 || int(r.From) >= len(typeNames) || r.To < 0 || int(r.To) >= len(typeNames) {
			return nil, fmt.Errorf("relationship type %q: endpoint out of range", r.Name)
		}
	}
	rs := make([]RelType, len(rels))
	copy(rs, rels)
	return buildSchema(append([]string(nil), typeNames...), rs), nil
}

func buildSchema(names []string, rels []RelType) *Schema {
	s := &Schema{typeNames: names, rels: rels}
	s.incident = make([][]Incidence, len(names))
	for ri, r := range rels {
		s.incident[r.From] = append(s.incident[r.From], Incidence{Rel: RelTypeID(ri), Outgoing: true})
	}
	for ri, r := range rels {
		s.incident[r.To] = append(s.incident[r.To], Incidence{Rel: RelTypeID(ri), Outgoing: false})
	}

	// Undirected weighted adjacency, merging parallel relationship types.
	adj := make([]map[TypeID]float64, len(names))
	add := func(a, b TypeID, w float64) {
		if adj[a] == nil {
			adj[a] = make(map[TypeID]float64)
		}
		adj[a][b] += w
	}
	for _, r := range rels {
		w := float64(r.EdgeCount)
		if r.EdgeCount == 0 {
			w = 1
		}
		if r.From == r.To {
			add(r.From, r.To, w)
			continue
		}
		add(r.From, r.To, w)
		add(r.To, r.From, w)
	}
	s.neighbors = make([][]TypeID, len(names))
	s.weight = make([][]float64, len(names))
	for t := range adj {
		for u := range adj[t] {
			s.neighbors[t] = append(s.neighbors[t], u)
		}
		// Deterministic order for reproducibility.
		sortTypeIDs(s.neighbors[t])
		s.weight[t] = make([]float64, len(s.neighbors[t]))
		for i, u := range s.neighbors[t] {
			s.weight[t][i] = adj[t][TypeID(u)]
		}
	}
	return s
}

func sortTypeIDs(ts []TypeID) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j-1] > ts[j]; j-- {
			ts[j-1], ts[j] = ts[j], ts[j-1]
		}
	}
}

// NumTypes returns |Vs|.
func (s *Schema) NumTypes() int { return len(s.typeNames) }

// NumRelTypes returns |Es|.
func (s *Schema) NumRelTypes() int { return len(s.rels) }

// TypeName returns the name of entity type t.
func (s *Schema) TypeName(t TypeID) string { return s.typeNames[t] }

// TypeByName resolves a type name by linear scan (schemas are small).
func (s *Schema) TypeByName(name string) (TypeID, bool) {
	for i, n := range s.typeNames {
		if n == name {
			return TypeID(i), true
		}
	}
	return None, false
}

// RelType returns relationship type r.
func (s *Schema) RelType(r RelTypeID) RelType { return s.rels[r] }

// Incident returns Γτ — the candidate non-key attributes of entity type t —
// as (relationship type, orientation) pairs. The returned slice is shared.
func (s *Schema) Incident(t TypeID) []Incidence { return s.incident[t] }

// Neighbors returns the distinct entity types adjacent to t in the
// undirected schema view, and their accumulated weights (parallel
// relationship types merged). Both slices are shared and index-aligned.
func (s *Schema) Neighbors(t TypeID) ([]TypeID, []float64) {
	return s.neighbors[t], s.weight[t]
}

// TotalWeight returns Σ_k w(t, k), the denominator of the random-walk
// transition probabilities out of t.
func (s *Schema) TotalWeight(t TypeID) float64 {
	var sum float64
	for _, w := range s.weight[t] {
		sum += w
	}
	return sum
}

// OtherEnd returns the entity type at the far end of incidence inc relative
// to the keyed type: the target entity type of the corresponding non-key
// attribute.
func (s *Schema) OtherEnd(inc Incidence) TypeID {
	r := s.rels[inc.Rel]
	if inc.Outgoing {
		return r.To
	}
	return r.From
}

// Distances computes single-source shortest-path distances (in hops, over
// the undirected view) from entity type src to every type. Unreachable
// types get -1. This is the distance used by the tight/diverse constraints:
// the length of the shortest undirected path between key attributes.
func (s *Schema) Distances(src TypeID) []int {
	dist := make([]int, len(s.typeNames))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []TypeID{src}
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		for _, u := range s.neighbors[t] {
			if dist[u] == -1 {
				dist[u] = dist[t] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// DistanceMatrix holds all-pairs shortest-path distances between entity
// types over the undirected schema view. Unreachable pairs hold -1.
type DistanceMatrix struct {
	n int
	d []int
}

// AllDistances computes the all-pairs distance matrix by one BFS per type.
// Schema graphs are small (the largest Freebase domain in the paper has 91
// types), so the K·(K+N) cost is negligible and the matrix is precomputed
// once per discovery session.
func (s *Schema) AllDistances() *DistanceMatrix {
	n := len(s.typeNames)
	m := &DistanceMatrix{n: n, d: make([]int, n*n)}
	for t := 0; t < n; t++ {
		copy(m.d[t*n:(t+1)*n], s.Distances(TypeID(t)))
	}
	return m
}

// Dist returns the distance between entity types a and b, or -1 if they are
// disconnected.
func (m *DistanceMatrix) Dist(a, b TypeID) int { return m.d[int(a)*m.n+int(b)] }

// N returns the number of entity types covered by the matrix.
func (m *DistanceMatrix) N() int { return m.n }

// Diameter returns the largest finite pairwise distance, and the average
// finite pairwise distance over distinct pairs. A schema with no edges
// returns (0, 0).
func (m *DistanceMatrix) Diameter() (diameter int, avg float64) {
	var sum, cnt int
	for a := 0; a < m.n; a++ {
		for b := a + 1; b < m.n; b++ {
			d := m.Dist(TypeID(a), TypeID(b))
			if d < 0 {
				continue
			}
			if d > diameter {
				diameter = d
			}
			sum += d
			cnt++
		}
	}
	if cnt > 0 {
		avg = float64(sum) / float64(cnt)
	}
	return diameter, avg
}
