package graph_test

import (
	"fmt"
	"testing"

	"github.com/uta-db/previewtables/internal/fig1"
	"github.com/uta-db/previewtables/internal/graph"
)

func mustType(t *testing.T, g *graph.EntityGraph, name string) graph.TypeID {
	t.Helper()
	id, ok := g.TypeByName(name)
	if !ok {
		t.Fatalf("type %q not found", name)
	}
	return id
}

func mustEntity(t *testing.T, g *graph.EntityGraph, name string) graph.EntityID {
	t.Helper()
	id, ok := g.EntityByName(name)
	if !ok {
		t.Fatalf("entity %q not found", name)
	}
	return id
}

func TestFig1Sizes(t *testing.T) {
	g := fig1.Graph()
	st := g.Stats()
	if st.Types != 6 {
		t.Errorf("types = %d, want 6 (Fig. 3)", st.Types)
	}
	if st.RelTypes != 7 {
		t.Errorf("relationship types = %d, want 7 (Fig. 3)", st.RelTypes)
	}
	if st.Entities != 14 {
		t.Errorf("entities = %d, want 14", st.Entities)
	}
	if st.Edges != 21 {
		t.Errorf("edges = %d, want 21 (6+4+5+3+3)", st.Edges)
	}
}

func TestFig1Validates(t *testing.T) {
	g := fig1.Graph()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestFig1TypeCoverage(t *testing.T) {
	g := fig1.Graph()
	cases := map[string]int{
		fig1.Film:         4, // Scov(FILM) = 4, Sec. 3.2
		fig1.FilmActor:    2,
		fig1.FilmDirector: 3,
		fig1.FilmProducer: 1,
		fig1.FilmGenre:    2,
		fig1.Award:        3,
	}
	for name, want := range cases {
		id := mustType(t, g, name)
		if got := g.TypeCoverage(id); got != want {
			t.Errorf("coverage(%s) = %d, want %d", name, got, want)
		}
	}
}

func TestFig1RelEdgeCounts(t *testing.T) {
	g := fig1.Graph()
	counts := map[string]int{}
	for i := 0; i < g.NumRelTypes(); i++ {
		rt := g.RelType(graph.RelTypeID(i))
		key := fmt.Sprintf("%s(%s,%s)", rt.Name, g.TypeName(rt.From), g.TypeName(rt.To))
		counts[key] = rt.EdgeCount
	}
	want := map[string]int{
		"Actor(FILM ACTOR,FILM)":                 6,
		"Director(FILM DIRECTOR,FILM)":           4, // Scov(Director) = 4
		"Genres(FILM,FILM GENRE)":                5, // Scov(Genres) = 5
		"Producer(FILM PRODUCER,FILM)":           2,
		"Executive Producer(FILM PRODUCER,FILM)": 1,
		"Award Winners(FILM ACTOR,AWARD)":        2,
		"Award Winners(FILM DIRECTOR,AWARD)":     1,
	}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("edge count %s = %d, want %d", k, counts[k], v)
		}
	}
	if len(counts) != len(want) {
		t.Errorf("relationship type set = %v, want %v", counts, want)
	}
}

func TestMultigraphParallelEdges(t *testing.T) {
	// Will Smith has two edges to I, Robot (Actor and Executive Producer).
	g := fig1.Graph()
	will := mustEntity(t, g, "Will Smith")
	irobot := mustEntity(t, g, "I, Robot")
	var parallel int
	for _, eid := range g.OutEdges(will) {
		if g.Edge(eid).To == irobot {
			parallel++
		}
	}
	if parallel != 2 {
		t.Errorf("parallel edges Will Smith -> I, Robot = %d, want 2", parallel)
	}
}

func TestMultipleTypesPerEntity(t *testing.T) {
	g := fig1.Graph()
	will := mustEntity(t, g, "Will Smith")
	actor := mustType(t, g, fig1.FilmActor)
	producer := mustType(t, g, fig1.FilmProducer)
	film := mustType(t, g, fig1.Film)
	if !g.HasType(will, actor) || !g.HasType(will, producer) {
		t.Error("Will Smith should bear both FILM ACTOR and FILM PRODUCER")
	}
	if g.HasType(will, film) {
		t.Error("Will Smith should not bear FILM")
	}
}

func TestNeighbors(t *testing.T) {
	g := fig1.Graph()
	mib := mustEntity(t, g, "Men in Black")
	var genres graph.RelTypeID = graph.None
	var director graph.RelTypeID = graph.None
	for i := 0; i < g.NumRelTypes(); i++ {
		switch g.RelType(graph.RelTypeID(i)).Name {
		case fig1.RelGenres:
			genres = graph.RelTypeID(i)
		case fig1.RelDirector:
			director = graph.RelTypeID(i)
		}
	}

	// Outgoing Genres from Men in Black: {Action Film, Science Fiction}.
	got := g.Neighbors(mib, genres, true)
	if len(got) != 2 {
		t.Fatalf("genres of Men in Black = %d values, want 2", len(got))
	}
	names := map[string]bool{}
	for _, id := range got {
		names[g.EntityName(id)] = true
	}
	if !names["Action Film"] || !names["Science Fiction"] {
		t.Errorf("genres of Men in Black = %v", names)
	}

	// Incoming Director to Men in Black: {Barry Sonnenfeld}.
	got = g.Neighbors(mib, director, false)
	if len(got) != 1 || g.EntityName(got[0]) != "Barry Sonnenfeld" {
		t.Errorf("director of Men in Black = %v", got)
	}

	// Hancock has no Genres edges: empty value (t3 in Fig. 2).
	hancock := mustEntity(t, g, "Hancock")
	if got := g.Neighbors(hancock, genres, true); len(got) != 0 {
		t.Errorf("genres of Hancock = %v, want empty", got)
	}
}

func TestNeighborsDeduplicates(t *testing.T) {
	var b graph.Builder
	a := b.Type("A")
	c := b.Type("C")
	r := b.RelType("r", a, c)
	x := b.Entity("x", a)
	y := b.Entity("y", c)
	b.Edge(x, y, r)
	b.Edge(x, y, r) // parallel duplicate
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Neighbors(x, r, true); len(got) != 1 {
		t.Errorf("neighbors = %v, want single deduplicated value", got)
	}
}

func TestBuilderEdgeInfersTypes(t *testing.T) {
	var b graph.Builder
	a := b.Type("A")
	c := b.Type("C")
	r := b.RelType("r", a, c)
	// Entities declared with no explicit type: the edge's relationship type
	// must endow them.
	x := b.Entity("x")
	y := b.Entity("y")
	b.Edge(x, y, r)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasType(x, a) || !g.HasType(y, c) {
		t.Error("edge should endow endpoint types from its relationship type")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderUntypedEntityFails(t *testing.T) {
	var b graph.Builder
	b.Entity("orphan")
	if _, err := b.Build(); err == nil {
		t.Error("Build should fail for an entity with no type")
	}
}

func TestBuilderRejectsBadRelType(t *testing.T) {
	var b graph.Builder
	a := b.Type("A")
	if id := b.RelType("r", a, graph.TypeID(99)); id != graph.None {
		t.Error("RelType with unknown endpoint should return None")
	}
	if _, err := b.Build(); err == nil {
		t.Error("Build should surface the deferred error")
	}
}

func TestBuilderIdempotentDeclarations(t *testing.T) {
	var b graph.Builder
	if b.Type("A") != b.Type("A") {
		t.Error("Type not idempotent")
	}
	a, c := b.Type("A"), b.Type("C")
	if b.RelType("r", a, c) != b.RelType("r", a, c) {
		t.Error("RelType not idempotent")
	}
	if b.RelType("r", a, c) == b.RelType("r", c, a) {
		t.Error("RelType should distinguish orientations sharing a surface name")
	}
	if b.Entity("x", a) != b.Entity("x") {
		t.Error("Entity not idempotent")
	}
}

func TestEntityLookup(t *testing.T) {
	g := fig1.Graph()
	if _, ok := g.EntityByName("Men in Black"); !ok {
		t.Error("Men in Black should resolve")
	}
	if _, ok := g.EntityByName("Nonexistent"); ok {
		t.Error("Nonexistent should not resolve")
	}
	if _, ok := g.TypeByName("FILM"); !ok {
		t.Error("FILM should resolve")
	}
	if _, ok := g.TypeByName("NOPE"); ok {
		t.Error("NOPE should not resolve")
	}
}

func TestIncidentRelTypes(t *testing.T) {
	g := fig1.Graph()
	film := mustType(t, g, fig1.Film)
	// FILM: incoming Actor, Director, Producer, Executive Producer;
	// outgoing Genres. Five candidate non-key attributes.
	if got := len(g.IncidentRelTypes(film)); got != 5 {
		t.Errorf("incident relationship types on FILM = %d, want 5", got)
	}
	award := mustType(t, g, fig1.Award)
	if got := len(g.IncidentRelTypes(award)); got != 2 {
		t.Errorf("incident relationship types on AWARD = %d, want 2", got)
	}
}

func TestStatsString(t *testing.T) {
	s := graph.Stats{Entities: 2000000, Types: 63, Edges: 18000000, RelTypes: 136}
	want := "2000000 / 63 vertices, 18000000 / 136 edges"
	if got := s.String(); got != want {
		t.Errorf("Stats.String() = %q, want %q", got, want)
	}
}

func TestEmptyGraph(t *testing.T) {
	var b graph.Builder
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEntities() != 0 || g.NumTypes() != 0 || g.NumEdges() != 0 {
		t.Error("empty build should produce empty graph")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate(empty): %v", err)
	}
}
