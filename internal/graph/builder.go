package graph

import (
	"fmt"
	"sort"
)

// Builder incrementally assembles an EntityGraph. It is not safe for
// concurrent use. The zero value is ready to use.
//
// The usual flow is:
//
//	var b graph.Builder
//	film := b.Type("FILM")
//	actor := b.Type("FILM ACTOR")
//	act := b.RelType("Actor", actor, film)
//	will := b.Entity("Will Smith", actor)
//	mib := b.Entity("Men in Black", film)
//	b.Edge(will, mib, act)
//	g, err := b.Build()
type Builder struct {
	entities []Entity
	types    []EntityType
	relTypes []RelType
	edges    []Edge

	entityByName map[string]EntityID
	typeByName   map[string]TypeID
	relByKey     map[relKey]RelTypeID

	err error
}

type relKey struct {
	name     string
	from, to TypeID
}

// Type declares (or finds) the entity type with the given name and returns
// its id. Declaring the same name twice returns the same id.
func (b *Builder) Type(name string) TypeID {
	if b.typeByName == nil {
		b.typeByName = make(map[string]TypeID)
	}
	if id, ok := b.typeByName[name]; ok {
		return id
	}
	id := TypeID(len(b.types))
	b.types = append(b.types, EntityType{Name: name})
	b.typeByName[name] = id
	return id
}

// RelType declares (or finds) the relationship type with the given surface
// name from entity type from to entity type to, and returns its id. Two
// relationship types may share a surface name as long as their endpoint
// types differ (as in the paper's two "Award Winners" relationship types).
func (b *Builder) RelType(name string, from, to TypeID) RelTypeID {
	if b.relByKey == nil {
		b.relByKey = make(map[relKey]RelTypeID)
	}
	k := relKey{name, from, to}
	if id, ok := b.relByKey[k]; ok {
		return id
	}
	if int(from) >= len(b.types) || int(to) >= len(b.types) || from < 0 || to < 0 {
		b.fail(fmt.Errorf("relationship type %q: unknown endpoint type", name))
		return None
	}
	id := RelTypeID(len(b.relTypes))
	b.relTypes = append(b.relTypes, RelType{Name: name, From: from, To: to})
	b.relByKey[k] = id
	return id
}

// Entity declares the entity with the given name bearing the given types and
// returns its id. If the entity already exists, the types are merged into
// its type set. An entity must end up with at least one type by Build time.
func (b *Builder) Entity(name string, types ...TypeID) EntityID {
	if b.entityByName == nil {
		b.entityByName = make(map[string]EntityID)
	}
	id, ok := b.entityByName[name]
	if !ok {
		id = EntityID(len(b.entities))
		b.entities = append(b.entities, Entity{Name: name})
		b.entityByName[name] = id
	}
	for _, t := range types {
		if t < 0 || int(t) >= len(b.types) {
			b.fail(fmt.Errorf("entity %q: unknown type id %d", name, t))
			return id
		}
		b.addType(id, t)
	}
	return id
}

func (b *Builder) addType(e EntityID, t TypeID) {
	ts := b.entities[e].Types
	i := sort.Search(len(ts), func(i int) bool { return ts[i] >= t })
	if i < len(ts) && ts[i] == t {
		return
	}
	ts = append(ts, 0)
	copy(ts[i+1:], ts[i:])
	ts[i] = t
	b.entities[e].Types = ts
}

// Edge adds a directed relationship instance from entity from to entity to
// with relationship type rel. The endpoints automatically acquire the
// relationship type's endpoint entity types (the paper: "the type of a
// relationship determines the types of its two end entities").
func (b *Builder) Edge(from, to EntityID, rel RelTypeID) EdgeID {
	if b.err != nil {
		return None
	}
	if from < 0 || int(from) >= len(b.entities) || to < 0 || int(to) >= len(b.entities) {
		b.fail(fmt.Errorf("edge: endpoint out of range (from=%d, to=%d)", from, to))
		return None
	}
	if rel < 0 || int(rel) >= len(b.relTypes) {
		b.fail(fmt.Errorf("edge: unknown relationship type id %d", rel))
		return None
	}
	rt := b.relTypes[rel]
	b.addType(from, rt.From)
	b.addType(to, rt.To)
	b.relTypes[rel].EdgeCount++
	id := EdgeID(len(b.edges))
	b.edges = append(b.edges, Edge{From: from, To: to, Rel: rel})
	return id
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build finalizes the graph: it computes per-type entity lists, adjacency
// indexes, and the schema-graph incidence lists, and returns the immutable
// EntityGraph. The builder must not be reused after Build.
func (b *Builder) Build() (*EntityGraph, error) {
	if b.err != nil {
		return nil, b.err
	}
	for i := range b.entities {
		if len(b.entities[i].Types) == 0 {
			return nil, fmt.Errorf("entity %q has no type", b.entities[i].Name)
		}
	}

	g := &EntityGraph{
		entities:     b.entities,
		types:        b.types,
		relTypes:     b.relTypes,
		edges:        b.edges,
		entityByName: b.entityByName,
		typeByName:   b.typeByName,
	}
	if g.entityByName == nil {
		g.entityByName = map[string]EntityID{}
	}
	if g.typeByName == nil {
		g.typeByName = map[string]TypeID{}
	}

	// Per-type entity lists (sorted by construction order of ids).
	for ei := range g.entities {
		for _, t := range g.entities[ei].Types {
			g.types[t].Entities = append(g.types[t].Entities, EntityID(ei))
		}
	}

	// Entity adjacency. Two passes: count, then fill from a single backing
	// array to keep the index compact.
	outCount := make([]int32, len(g.entities))
	inCount := make([]int32, len(g.entities))
	for _, e := range g.edges {
		outCount[e.From]++
		inCount[e.To]++
	}
	g.out = make([][]EdgeID, len(g.entities))
	g.in = make([][]EdgeID, len(g.entities))
	outBacking := make([]EdgeID, len(g.edges))
	inBacking := make([]EdgeID, len(g.edges))
	var op, ip int32
	for i := range g.entities {
		g.out[i] = outBacking[op : op : op+outCount[i]]
		op += outCount[i]
		g.in[i] = inBacking[ip : ip : ip+inCount[i]]
		ip += inCount[i]
	}
	for ei := range g.edges {
		e := &g.edges[ei]
		g.out[e.From] = append(g.out[e.From], EdgeID(ei))
		g.in[e.To] = append(g.in[e.To], EdgeID(ei))
	}

	// Schema incidence lists.
	g.schemaOut = make([][]RelTypeID, len(g.types))
	g.schemaIn = make([][]RelTypeID, len(g.types))
	for ri, rt := range g.relTypes {
		g.schemaOut[rt.From] = append(g.schemaOut[rt.From], RelTypeID(ri))
		g.schemaIn[rt.To] = append(g.schemaIn[rt.To], RelTypeID(ri))
	}

	return g, nil
}
