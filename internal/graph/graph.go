// Package graph implements the data model of "Generating Preview Tables for
// Entity Graphs" (SIGMOD 2016): the entity graph Gd(Vd, Ed) — a directed
// multigraph of named entities connected by typed relationships — and the
// schema graph Gs(Vs, Es) uniquely derived from it, whose vertices are
// entity types and whose edges are relationship types.
//
// An entity may belong to one or more entity types. A relationship type
// determines the entity types of both of its endpoints, so two relationship
// types may share a surface name (e.g. "Award Winners" from FILM ACTOR to
// AWARD and from FILM DIRECTOR to AWARD) while remaining distinct.
//
// All identifiers are dense small integers suitable for array indexing;
// the package is designed so that a graph is built once (via Builder) and
// then queried many times without further allocation.
package graph

import (
	"fmt"
	"sort"
)

// EntityID identifies an entity (a vertex of the entity graph Gd).
type EntityID int32

// TypeID identifies an entity type (a vertex of the schema graph Gs).
type TypeID int32

// RelTypeID identifies a relationship type (an edge of the schema graph Gs).
type RelTypeID int32

// EdgeID identifies a single relationship instance (an edge of Gd).
type EdgeID int32

// None is the sentinel for "no such vertex/edge".
const None = -1

// Entity is a vertex of the entity graph: a named entity belonging to one or
// more entity types.
type Entity struct {
	Name  string
	Types []TypeID // sorted, at least one
}

// EntityType is a vertex of the schema graph.
type EntityType struct {
	Name     string
	Entities []EntityID // entities bearing this type, sorted
}

// RelType is an edge of the schema graph: a relationship type from entity
// type From to entity type To. EdgeCount is the number of entity-graph edges
// bearing this type.
type RelType struct {
	Name      string
	From, To  TypeID
	EdgeCount int
}

// Edge is a single directed relationship instance in the entity graph.
type Edge struct {
	From, To EntityID
	Rel      RelTypeID
}

// EntityGraph is an immutable directed entity multigraph together with its
// uniquely determined schema graph. Construct one with a Builder.
type EntityGraph struct {
	entities []Entity
	types    []EntityType
	relTypes []RelType
	edges    []Edge

	entityByName map[string]EntityID
	typeByName   map[string]TypeID

	// out[e] / in[e] list edge indexes incident from / to entity e.
	out [][]EdgeID
	in  [][]EdgeID

	// schema adjacency: relationship types incident on each entity type,
	// outgoing (rel.From == t) and incoming (rel.To == t).
	schemaOut [][]RelTypeID
	schemaIn  [][]RelTypeID
}

// NumEntities returns |Vd|.
func (g *EntityGraph) NumEntities() int { return len(g.entities) }

// NumEdges returns |Ed|.
func (g *EntityGraph) NumEdges() int { return len(g.edges) }

// NumTypes returns |Vs|, the number of entity types.
func (g *EntityGraph) NumTypes() int { return len(g.types) }

// NumRelTypes returns |Es|, the number of relationship types.
func (g *EntityGraph) NumRelTypes() int { return len(g.relTypes) }

// Entity returns the entity with the given id.
func (g *EntityGraph) Entity(id EntityID) Entity { return g.entities[id] }

// EntityName returns the name of the entity with the given id.
func (g *EntityGraph) EntityName(id EntityID) string { return g.entities[id].Name }

// Type returns the entity type with the given id.
func (g *EntityGraph) Type(id TypeID) EntityType { return g.types[id] }

// TypeName returns the name of the entity type with the given id.
func (g *EntityGraph) TypeName(id TypeID) string { return g.types[id].Name }

// RelType returns the relationship type with the given id.
func (g *EntityGraph) RelType(id RelTypeID) RelType { return g.relTypes[id] }

// Edge returns the edge with the given id.
func (g *EntityGraph) Edge(id EdgeID) Edge { return g.edges[id] }

// EntityByName resolves an entity by name; ok is false if absent.
func (g *EntityGraph) EntityByName(name string) (EntityID, bool) {
	id, ok := g.entityByName[name]
	return id, ok
}

// TypeByName resolves an entity type by name; ok is false if absent.
func (g *EntityGraph) TypeByName(name string) (TypeID, bool) {
	id, ok := g.typeByName[name]
	return id, ok
}

// EntitiesOfType returns the entities bearing type t (shared slice; callers
// must not mutate it).
func (g *EntityGraph) EntitiesOfType(t TypeID) []EntityID { return g.types[t].Entities }

// TypeCoverage returns |{v in Vd : v has type t}| — the coverage-based score
// of t as a key attribute.
func (g *EntityGraph) TypeCoverage(t TypeID) int { return len(g.types[t].Entities) }

// OutEdges returns the ids of edges incident from entity e.
func (g *EntityGraph) OutEdges(e EntityID) []EdgeID { return g.out[e] }

// InEdges returns the ids of edges incident to entity e.
func (g *EntityGraph) InEdges(e EntityID) []EdgeID { return g.in[e] }

// SchemaOut returns the relationship types whose From endpoint is t.
func (g *EntityGraph) SchemaOut(t TypeID) []RelTypeID { return g.schemaOut[t] }

// SchemaIn returns the relationship types whose To endpoint is t.
func (g *EntityGraph) SchemaIn(t TypeID) []RelTypeID { return g.schemaIn[t] }

// IncidentRelTypes returns all relationship types incident on t (outgoing
// then incoming). These are the candidate non-key attributes Γτ of a preview
// table keyed by t. The returned slice is freshly allocated.
func (g *EntityGraph) IncidentRelTypes(t TypeID) []RelTypeID {
	out := g.schemaOut[t]
	in := g.schemaIn[t]
	rs := make([]RelTypeID, 0, len(out)+len(in))
	rs = append(rs, out...)
	rs = append(rs, in...)
	return rs
}

// HasType reports whether entity e bears type t.
func (g *EntityGraph) HasType(e EntityID, t TypeID) bool {
	ts := g.entities[e].Types
	i := sort.Search(len(ts), func(i int) bool { return ts[i] >= t })
	return i < len(ts) && ts[i] == t
}

// Neighbors returns, for entity e and relationship type rel, the set of
// related entities as mandated by Definition 1:
//
//   - if outgoing is true, the entities u with an edge e(v, u) of type rel
//     (rel.From must be a type of v);
//   - otherwise the entities u with an edge e(u, v) of type rel.
//
// The result preserves first-seen order and contains no duplicates.
func (g *EntityGraph) Neighbors(e EntityID, rel RelTypeID, outgoing bool) []EntityID {
	var refs []EdgeID
	if outgoing {
		refs = g.out[e]
	} else {
		refs = g.in[e]
	}
	var res []EntityID
	var seen map[EntityID]bool
	for _, ref := range refs {
		ed := g.edges[ref]
		if ed.Rel != rel {
			continue
		}
		other := ed.To
		if !outgoing {
			other = ed.From
		}
		if seen == nil {
			seen = make(map[EntityID]bool, 4)
		}
		if !seen[other] {
			seen[other] = true
			res = append(res, other)
		}
	}
	return res
}

// Stats summarizes a graph in the shape of the paper's Table 2 row:
// entity-graph size and schema-graph size.
type Stats struct {
	Entities int // |Vd|
	Edges    int // |Ed|
	Types    int // |Vs|
	RelTypes int // |Es|
}

// Stats returns size statistics for g.
func (g *EntityGraph) Stats() Stats {
	return Stats{
		Entities: len(g.entities),
		Edges:    len(g.edges),
		Types:    len(g.types),
		RelTypes: len(g.relTypes),
	}
}

// String renders the stats in a Table 2-like "entities/types  edges/reltypes"
// form, e.g. "2000000 / 63 vertices, 18000000 / 136 edges".
func (s Stats) String() string {
	return fmt.Sprintf("%d / %d vertices, %d / %d edges", s.Entities, s.Types, s.Edges, s.RelTypes)
}

// Validate checks internal consistency of the graph: every edge's endpoints
// exist and bear the endpoint types declared by the edge's relationship
// type, every type's entity list is sorted and deduplicated, and the
// schema-graph edge counts equal the actual number of entity-graph edges of
// each relationship type. It is intended for tests and loaders; a graph
// produced by Builder.Build always validates.
func (g *EntityGraph) Validate() error {
	counts := make([]int, len(g.relTypes))
	for i, e := range g.edges {
		if e.From < 0 || int(e.From) >= len(g.entities) || e.To < 0 || int(e.To) >= len(g.entities) {
			return fmt.Errorf("edge %d: endpoint out of range", i)
		}
		if e.Rel < 0 || int(e.Rel) >= len(g.relTypes) {
			return fmt.Errorf("edge %d: relationship type out of range", i)
		}
		rt := g.relTypes[e.Rel]
		if !g.HasType(e.From, rt.From) {
			return fmt.Errorf("edge %d: source %q lacks type %q required by relationship %q",
				i, g.entities[e.From].Name, g.types[rt.From].Name, rt.Name)
		}
		if !g.HasType(e.To, rt.To) {
			return fmt.Errorf("edge %d: target %q lacks type %q required by relationship %q",
				i, g.entities[e.To].Name, g.types[rt.To].Name, rt.Name)
		}
		counts[e.Rel]++
	}
	for i, rt := range g.relTypes {
		if rt.EdgeCount != counts[i] {
			return fmt.Errorf("relationship type %q: recorded edge count %d != actual %d",
				rt.Name, rt.EdgeCount, counts[i])
		}
		if rt.From < 0 || int(rt.From) >= len(g.types) || rt.To < 0 || int(rt.To) >= len(g.types) {
			return fmt.Errorf("relationship type %q: endpoint type out of range", rt.Name)
		}
	}
	for ti, t := range g.types {
		for j := 1; j < len(t.Entities); j++ {
			if t.Entities[j-1] >= t.Entities[j] {
				return fmt.Errorf("type %q: entity list not strictly sorted", t.Name)
			}
		}
		for _, e := range t.Entities {
			if !g.HasType(e, TypeID(ti)) {
				return fmt.Errorf("type %q: listed entity %q does not bear it", t.Name, g.entities[e].Name)
			}
		}
	}
	for ei, ent := range g.entities {
		if len(ent.Types) == 0 {
			return fmt.Errorf("entity %q (%d) has no type", ent.Name, ei)
		}
		for j := 1; j < len(ent.Types); j++ {
			if ent.Types[j-1] >= ent.Types[j] {
				return fmt.Errorf("entity %q: type list not strictly sorted", ent.Name)
			}
		}
	}
	return nil
}
