package graph_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/uta-db/previewtables/internal/fig1"
	"github.com/uta-db/previewtables/internal/graph"
)

func fig1Schema(t *testing.T) (*graph.EntityGraph, *graph.Schema) {
	t.Helper()
	g := fig1.Graph()
	return g, g.Schema()
}

func schemaType(t *testing.T, s *graph.Schema, name string) graph.TypeID {
	t.Helper()
	id, ok := s.TypeByName(name)
	if !ok {
		t.Fatalf("schema type %q not found", name)
	}
	return id
}

func TestSchemaSizes(t *testing.T) {
	_, s := fig1Schema(t)
	if s.NumTypes() != 6 {
		t.Errorf("schema |Vs| = %d, want 6", s.NumTypes())
	}
	if s.NumRelTypes() != 7 {
		t.Errorf("schema |Es| = %d, want 7", s.NumRelTypes())
	}
}

func TestSchemaWeights(t *testing.T) {
	// The paper's random-walk example fixes the undirected weights around
	// FILM: Genre 5, Actor 6, Director 4, Producer 3 (total 18).
	_, s := fig1Schema(t)
	film := schemaType(t, s, fig1.Film)
	neighbors, weights := s.Neighbors(film)
	got := map[string]float64{}
	for i, n := range neighbors {
		got[s.TypeName(n)] = weights[i]
	}
	want := map[string]float64{
		fig1.FilmGenre:    5,
		fig1.FilmActor:    6,
		fig1.FilmDirector: 4,
		fig1.FilmProducer: 3,
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("w(FILM, %s) = %v, want %v", k, got[k], v)
		}
	}
	if len(got) != len(want) {
		t.Errorf("FILM neighbors = %v, want exactly %v", got, want)
	}
	if tw := s.TotalWeight(film); tw != 18 {
		t.Errorf("total weight of FILM = %v, want 18", tw)
	}
}

func TestSchemaMergesParallelRelTypes(t *testing.T) {
	// Producer and Executive Producer both connect FILM PRODUCER and FILM;
	// the undirected view merges them into one weighted edge (2+1=3).
	_, s := fig1Schema(t)
	producer := schemaType(t, s, fig1.FilmProducer)
	neighbors, weights := s.Neighbors(producer)
	if len(neighbors) != 1 {
		t.Fatalf("FILM PRODUCER neighbors = %d, want 1", len(neighbors))
	}
	if s.TypeName(neighbors[0]) != fig1.Film || weights[0] != 3 {
		t.Errorf("merged edge = (%s, %v), want (FILM, 3)", s.TypeName(neighbors[0]), weights[0])
	}
}

func TestSchemaDistances(t *testing.T) {
	// Sec. 4: dist(FILM, FILM ACTOR) = 1 and dist(FILM, AWARD) = 2.
	_, s := fig1Schema(t)
	m := s.AllDistances()
	film := schemaType(t, s, fig1.Film)
	actor := schemaType(t, s, fig1.FilmActor)
	award := schemaType(t, s, fig1.Award)
	if d := m.Dist(film, actor); d != 1 {
		t.Errorf("dist(FILM, FILM ACTOR) = %d, want 1", d)
	}
	if d := m.Dist(film, award); d != 2 {
		t.Errorf("dist(FILM, AWARD) = %d, want 2", d)
	}
	if d := m.Dist(film, film); d != 0 {
		t.Errorf("dist(FILM, FILM) = %d, want 0", d)
	}
}

func TestSchemaIncidentOrientations(t *testing.T) {
	_, s := fig1Schema(t)
	film := schemaType(t, s, fig1.Film)
	incs := s.Incident(film)
	if len(incs) != 5 {
		t.Fatalf("Γ(FILM) size = %d, want 5", len(incs))
	}
	var outgoing, incoming int
	for _, inc := range incs {
		if inc.Outgoing {
			outgoing++
			if s.RelType(inc.Rel).From != film {
				t.Error("outgoing incidence should have From = FILM")
			}
		} else {
			incoming++
			if s.RelType(inc.Rel).To != film {
				t.Error("incoming incidence should have To = FILM")
			}
		}
	}
	if outgoing != 1 || incoming != 4 {
		t.Errorf("FILM incidences: %d outgoing, %d incoming; want 1, 4", outgoing, incoming)
	}
}

func TestOtherEnd(t *testing.T) {
	_, s := fig1Schema(t)
	film := schemaType(t, s, fig1.Film)
	genre := schemaType(t, s, fig1.FilmGenre)
	for _, inc := range s.Incident(film) {
		r := s.RelType(inc.Rel)
		if r.Name == fig1.RelGenres {
			if got := s.OtherEnd(inc); got != genre {
				t.Errorf("OtherEnd(Genres from FILM) = %s, want FILM GENRE", s.TypeName(got))
			}
		}
	}
	for _, inc := range s.Incident(genre) {
		if got := s.OtherEnd(inc); got != film {
			t.Errorf("OtherEnd(Genres from FILM GENRE) = %s, want FILM", s.TypeName(got))
		}
	}
}

func TestNewSchemaDirect(t *testing.T) {
	// Structure-only schema (unit weights) as used by the NP-hardness
	// reductions: a path a-b-c.
	s, err := graph.NewSchema([]string{"a", "b", "c"}, []graph.RelType{
		{Name: "r1", From: 0, To: 1},
		{Name: "r2", From: 1, To: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := s.AllDistances()
	if d := m.Dist(0, 2); d != 2 {
		t.Errorf("dist(a,c) = %d, want 2", d)
	}
	if w := s.TotalWeight(1); w != 2 {
		t.Errorf("total weight of b = %v, want 2 (unit weights)", w)
	}
}

func TestNewSchemaRejectsOutOfRange(t *testing.T) {
	_, err := graph.NewSchema([]string{"a"}, []graph.RelType{{Name: "r", From: 0, To: 5}})
	if err == nil {
		t.Error("NewSchema should reject out-of-range endpoints")
	}
}

func TestDisconnectedSchemaDistances(t *testing.T) {
	s, err := graph.NewSchema([]string{"a", "b", "c", "d"}, []graph.RelType{
		{Name: "r1", From: 0, To: 1},
		{Name: "r2", From: 2, To: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := s.AllDistances()
	if d := m.Dist(0, 2); d != -1 {
		t.Errorf("dist across components = %d, want -1", d)
	}
	if d := m.Dist(0, 1); d != 1 {
		t.Errorf("dist(a,b) = %d, want 1", d)
	}
}

func TestSelfLoopSchema(t *testing.T) {
	// TV EPISODE -> TV EPISODE ("Previous episode") style self loop.
	s, err := graph.NewSchema([]string{"ep"}, []graph.RelType{
		{Name: "prev", From: 0, To: 0, EdgeCount: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	incs := s.Incident(0)
	if len(incs) != 2 {
		t.Fatalf("self loop incidences = %d, want 2 (both orientations)", len(incs))
	}
	if s.OtherEnd(incs[0]) != 0 || s.OtherEnd(incs[1]) != 0 {
		t.Error("self loop other end should be the same type")
	}
	neighbors, weights := s.Neighbors(0)
	if len(neighbors) != 1 || neighbors[0] != 0 || weights[0] != 7 {
		t.Errorf("self loop undirected view = (%v, %v), want ([0], [7])", neighbors, weights)
	}
}

// randomSchema builds a random connected-ish schema for property tests.
func randomSchema(rng *rand.Rand, nTypes, nRels int) *graph.Schema {
	names := make([]string, nTypes)
	for i := range names {
		names[i] = string(rune('A' + i%26))
	}
	rels := make([]graph.RelType, nRels)
	for i := range rels {
		rels[i] = graph.RelType{
			Name:      "r",
			From:      graph.TypeID(rng.Intn(nTypes)),
			To:        graph.TypeID(rng.Intn(nTypes)),
			EdgeCount: rng.Intn(10) + 1,
		}
	}
	s, err := graph.NewSchema(names, rels)
	if err != nil {
		panic(err)
	}
	return s
}

func TestDistanceMatrixProperties(t *testing.T) {
	// Distance is symmetric and satisfies the triangle inequality on every
	// random schema.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 2
		s := randomSchema(rng, n, rng.Intn(20)+1)
		m := s.AllDistances()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				ab := m.Dist(graph.TypeID(a), graph.TypeID(b))
				ba := m.Dist(graph.TypeID(b), graph.TypeID(a))
				if ab != ba {
					return false
				}
				if a == b && ab != 0 {
					return false
				}
				for c := 0; c < n; c++ {
					ac := m.Dist(graph.TypeID(a), graph.TypeID(c))
					cb := m.Dist(graph.TypeID(c), graph.TypeID(b))
					if ac >= 0 && cb >= 0 && ab >= 0 && ab > ac+cb {
						return false
					}
					if ac >= 0 && cb >= 0 && ab < 0 {
						return false // connected through c but reported disconnected
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDiameter(t *testing.T) {
	s, err := graph.NewSchema([]string{"a", "b", "c", "d"}, []graph.RelType{
		{Name: "r", From: 0, To: 1},
		{Name: "r", From: 1, To: 2},
		{Name: "r", From: 2, To: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	diam, avg := s.AllDistances().Diameter()
	if diam != 3 {
		t.Errorf("diameter = %d, want 3", diam)
	}
	// Pairs: ab=1 ac=2 ad=3 bc=1 bd=2 cd=1 → avg = 10/6.
	if want := 10.0 / 6.0; avg < want-1e-9 || avg > want+1e-9 {
		t.Errorf("avg distance = %v, want %v", avg, want)
	}
}

func TestSchemaWeightSymmetry(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 2
		s := randomSchema(rng, n, rng.Intn(16)+1)
		for a := 0; a < n; a++ {
			na, wa := s.Neighbors(graph.TypeID(a))
			for i, b := range na {
				if graph.TypeID(a) == b {
					continue // self loop: single entry
				}
				nb, wb := s.Neighbors(b)
				found := false
				for j, back := range nb {
					if back == graph.TypeID(a) {
						found = wb[j] == wa[i]
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
