// Package stats provides the statistical machinery behind the paper's
// evaluation: descriptive statistics and boxplot summaries (Figs. 10–14),
// Pearson correlation (Table 4, Eq. 4), and the two-proportion one-tailed
// z-test used for the pairwise user-study comparisons (Tables 7, 13–16).
// Everything is stdlib math; the normal CDF comes from math.Erf.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a statistic needs more observations
// than were provided.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// observations.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks (the "exclusive" R-7 method used by
// most plotting libraries). xs need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Boxplot is the five-number summary rendered by the paper's
// time-per-task figures.
type Boxplot struct {
	Min, Q1, Median, Q3, Max float64
	N                        int
}

// NewBoxplot computes the five-number summary of xs.
func NewBoxplot(xs []float64) (Boxplot, error) {
	if len(xs) == 0 {
		return Boxplot{}, ErrInsufficientData
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Boxplot{
		Min:    sorted[0],
		Q1:     percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		Q3:     percentileSorted(sorted, 75),
		Max:    sorted[len(sorted)-1],
		N:      len(xs),
	}, nil
}

// IQR returns the interquartile range Q3 − Q1.
func (b Boxplot) IQR() float64 { return b.Q3 - b.Q1 }

// Pearson computes the Pearson Correlation Coefficient between x and y
// (Eq. 4 of the paper). It returns an error when the lengths differ, fewer
// than two pairs exist, or either variable is constant (undefined PCC).
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(x) < 2 {
		return 0, ErrInsufficientData
	}
	n := float64(len(x))
	var sx, sy, sxy, sxx, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxy += x[i] * y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
	}
	num := sxy/n - (sx/n)*(sy/n)
	dx := sxx/n - (sx/n)*(sx/n)
	dy := syy/n - (sy/n)*(sy/n)
	if dx <= 0 || dy <= 0 {
		return 0, errors.New("stats: constant variable, correlation undefined")
	}
	return num / math.Sqrt(dx*dy), nil
}

// NormalCDF returns Φ(z), the standard normal cumulative distribution.
func NormalCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// ZTestResult is the outcome of a two-proportion one-tailed z-test as
// reported in the paper's pairwise comparison tables: the z-score, the
// one-tailed p-value, and whether the null hypothesis is rejected at the
// configured significance level.
type ZTestResult struct {
	Z        float64
	P        float64
	Rejected bool
	Alpha    float64
}

// TwoProportionZTest compares observed success proportions cA = xA/nA and
// cB = xB/nB with a pooled two-proportion z-test. Following Sec. 6.3.1: for
// a positive z (cA > cB) the p-value is right-tailed; for a negative z it
// is left-tailed. The null hypothesis (no difference in the observed
// direction) is rejected when p < alpha.
func TwoProportionZTest(xA, nA, xB, nB int, alpha float64) (ZTestResult, error) {
	if nA <= 0 || nB <= 0 {
		return ZTestResult{}, ErrInsufficientData
	}
	if xA < 0 || xA > nA || xB < 0 || xB > nB {
		return ZTestResult{}, errors.New("stats: successes out of range")
	}
	cA := float64(xA) / float64(nA)
	cB := float64(xB) / float64(nB)
	pooled := float64(xA+xB) / float64(nA+nB)
	se := math.Sqrt(pooled * (1 - pooled) * (1/float64(nA) + 1/float64(nB)))
	if se == 0 {
		// Both proportions identical at 0 or 1: no evidence either way.
		return ZTestResult{Z: 0, P: 0.5, Rejected: false, Alpha: alpha}, nil
	}
	z := (cA - cB) / se
	var p float64
	if z >= 0 {
		p = 1 - NormalCDF(z) // right tail
	} else {
		p = NormalCDF(z) // left tail
	}
	return ZTestResult{Z: z, P: p, Rejected: p < alpha, Alpha: alpha}, nil
}
