package stats_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/uta-db/previewtables/internal/stats"
)

const eps = 1e-9

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := stats.Mean(xs); m != 5 {
		t.Errorf("mean = %v, want 5", m)
	}
	if v := stats.Variance(xs); v != 4 {
		t.Errorf("variance = %v, want 4", v)
	}
	if s := stats.StdDev(xs); s != 2 {
		t.Errorf("stddev = %v, want 2", s)
	}
	if stats.Mean(nil) != 0 || stats.Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should be 0")
	}
}

func TestPercentileAndMedian(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	if m := stats.Median(xs); m != 2.5 {
		t.Errorf("median = %v, want 2.5", m)
	}
	if p := stats.Percentile(xs, 0); p != 1 {
		t.Errorf("p0 = %v, want 1", p)
	}
	if p := stats.Percentile(xs, 100); p != 4 {
		t.Errorf("p100 = %v, want 4", p)
	}
	if p := stats.Percentile(xs, 25); math.Abs(p-1.75) > eps {
		t.Errorf("p25 = %v, want 1.75", p)
	}
	if p := stats.Percentile(nil, 50); p != 0 {
		t.Errorf("empty percentile = %v, want 0", p)
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestBoxplot(t *testing.T) {
	b, err := stats.NewBoxplot([]float64{5, 1, 3, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if b.Min != 1 || b.Max != 5 || b.Median != 3 || b.Q1 != 2 || b.Q3 != 4 || b.N != 5 {
		t.Errorf("boxplot = %+v", b)
	}
	if b.IQR() != 2 {
		t.Errorf("IQR = %v, want 2", b.IQR())
	}
	if _, err := stats.NewBoxplot(nil); err == nil {
		t.Error("empty boxplot should fail")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := stats.Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > eps {
		t.Errorf("r = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = stats.Pearson(x, neg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r+1) > eps {
		t.Errorf("r = %v, want -1", r)
	}
}

func TestPearsonKnownValue(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 3, 2, 5, 4}
	r, err := stats.Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.8) > eps {
		t.Errorf("r = %v, want 0.8", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := stats.Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := stats.Pearson([]float64{1}, []float64{2}); err == nil {
		t.Error("single pair should fail")
	}
	if _, err := stats.Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("constant variable should fail")
	}
}

func TestPearsonBounds(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 3
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		r, err := stats.Pearson(x, y)
		if err != nil {
			return true
		}
		return r >= -1-eps && r <= 1+eps
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNormalCDF(t *testing.T) {
	cases := map[float64]float64{
		0:     0.5,
		1.645: 0.95,
		-1.96: 0.025,
		3:     0.99865,
	}
	for z, want := range cases {
		if got := stats.NormalCDF(z); math.Abs(got-want) > 5e-4 {
			t.Errorf("Φ(%v) = %v, want %v", z, got, want)
		}
	}
}

func TestTwoProportionZTestPaperExample(t *testing.T) {
	// Table 7, Concise vs Diverse in "music": cConcise = 0.903 (n=52),
	// cDiverse = 0.730 (n=52) → z = −2.28, p = 0.0113 when comparing
	// Diverse against Concise (row Concise, column Diverse: z for the
	// column approach vs row approach as A vs B).
	res, err := stats.TwoProportionZTest(38, 52, 47, 52, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// 38/52 = 0.7307 vs 47/52 = 0.9038.
	if math.Abs(res.Z-(-2.28)) > 0.02 {
		t.Errorf("z = %v, want ≈ -2.28 (paper Table 7)", res.Z)
	}
	if math.Abs(res.P-0.0113) > 0.002 {
		t.Errorf("p = %v, want ≈ 0.0113", res.P)
	}
	if !res.Rejected {
		t.Error("null hypothesis should be rejected at α = 0.1")
	}
}

func TestTwoProportionZTestSymmetry(t *testing.T) {
	a, err := stats.TwoProportionZTest(40, 50, 30, 50, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := stats.TwoProportionZTest(30, 50, 40, 50, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Z+b.Z) > eps {
		t.Errorf("z not antisymmetric: %v vs %v", a.Z, b.Z)
	}
	if math.Abs(a.P-b.P) > eps {
		t.Errorf("one-tailed p should match under swap: %v vs %v", a.P, b.P)
	}
}

func TestTwoProportionZTestEdgeCases(t *testing.T) {
	if _, err := stats.TwoProportionZTest(1, 0, 1, 2, 0.1); err == nil {
		t.Error("zero sample should fail")
	}
	if _, err := stats.TwoProportionZTest(5, 2, 1, 2, 0.1); err == nil {
		t.Error("successes beyond n should fail")
	}
	res, err := stats.TwoProportionZTest(5, 5, 7, 7, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected || res.Z != 0 {
		t.Errorf("identical saturated proportions: %+v, want z=0 not rejected", res)
	}
}
