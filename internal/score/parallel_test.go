package score_test

// Bit-identity tests for the parallel walk: the blocked matrix-vector
// step must reproduce the sequential power iteration exactly — same
// iterate at every step, therefore the same iteration count and the same
// fixed point to the last bit — cold and warm-started alike.

import (
	"fmt"
	"testing"

	"github.com/uta-db/previewtables/internal/freebase"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/score"
)

func TestStationaryDistributionParallelBitIdentical(t *testing.T) {
	for _, domain := range []string{"basketball", "music", "books"} {
		g, err := freebase.Generate(domain, freebase.GenOptions{
			Scale: 1e-4, Seed: 11, MinEntities: 300, MinEdges: 1200,
		})
		if err != nil {
			t.Fatal(err)
		}
		s := g.Schema()

		seqOpts := score.DefaultWalkOptions()
		parOpts := seqOpts
		parOpts.Parallelism = 5 // deliberately not a divisor of most type counts

		cold := score.StationaryDistribution(s, seqOpts)
		coldPar := score.StationaryDistribution(s, parOpts)
		if len(cold) != len(coldPar) {
			t.Fatalf("%s: length mismatch %d vs %d", domain, len(cold), len(coldPar))
		}
		for i := range cold {
			if cold[i] != coldPar[i] {
				t.Fatalf("%s: cold walk diverges at type %d: sequential %v, parallel %v", domain, i, cold[i], coldPar[i])
			}
		}

		// Warm start from a perturbed copy of the cold solution — the
		// incremental-refresh path of package dynamic.
		prev := append([]float64(nil), cold...)
		prev[0] *= 1.25
		warm := score.StationaryDistributionWarm(s, seqOpts, prev)
		warmPar := score.StationaryDistributionWarm(s, parOpts, prev)
		for i := range warm {
			if warm[i] != warmPar[i] {
				t.Fatalf("%s: warm walk diverges at type %d: sequential %v, parallel %v", domain, i, warm[i], warmPar[i])
			}
		}
	}
}

// TestStationaryDistributionParallelLargeSchema exercises the blocked
// parallel path proper: the shipped Table 2 schemas stay below the
// walk's parallel threshold (the per-iteration pool would cost more than
// the step), so this builds a synthetic schema well above it and checks
// the worker pool reproduces the sequential fixed point bit for bit.
func TestStationaryDistributionParallelLargeSchema(t *testing.T) {
	var b graph.Builder
	const nTypes = 600 // comfortably above walkParallelThreshold
	types := make([]graph.TypeID, nTypes)
	for i := range types {
		types[i] = b.Type(fmt.Sprintf("T%03d", i))
	}
	// A connected, irregular weighted schema: a chain plus pseudo-random
	// chords, with edge counts driven by entity degree.
	for i := 0; i < nTypes; i++ {
		next := (i + 1) % nTypes
		chord := (i*i*31 + 7) % nTypes
		rel := b.RelType(fmt.Sprintf("chain%03d", i), types[i], types[next])
		for e := 0; e < 1+i%5; e++ {
			b.Edge(b.Entity(fmt.Sprintf("e%d-%d", i, e), types[i]), b.Entity(fmt.Sprintf("e%d-0", next), types[next]), rel)
		}
		if chord != i && chord != next {
			rel := b.RelType(fmt.Sprintf("chord%03d", i), types[i], types[chord])
			b.Edge(b.Entity(fmt.Sprintf("e%d-0", i), types[i]), b.Entity(fmt.Sprintf("e%d-0", chord), types[chord]), rel)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := g.Schema()
	if s.NumTypes() != nTypes {
		t.Fatalf("built %d types, want %d", s.NumTypes(), nTypes)
	}

	seqOpts := score.DefaultWalkOptions()
	for _, workers := range []int{2, 3, 7} {
		parOpts := seqOpts
		parOpts.Parallelism = workers
		seq := score.StationaryDistribution(s, seqOpts)
		parPi := score.StationaryDistribution(s, parOpts)
		for i := range seq {
			if seq[i] != parPi[i] {
				t.Fatalf("workers=%d: walk diverges at type %d: sequential %v, parallel %v", workers, i, seq[i], parPi[i])
			}
		}
	}
}

func TestEntropyRepeatedCallsBitIdentical(t *testing.T) {
	// Entropy must not let map iteration order into its floating-point
	// accumulation: repeated calls return the same bits.
	g, err := freebase.Generate("tv", freebase.GenOptions{
		Scale: 1e-4, Seed: 13, MinEntities: 300, MinEdges: 1200,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := g.Schema()
	for ti := 0; ti < s.NumTypes(); ti++ {
		for _, inc := range s.Incident(graph.TypeID(ti)) {
			first := score.Entropy(g, graph.TypeID(ti), inc)
			for rep := 0; rep < 5; rep++ {
				if got := score.Entropy(g, graph.TypeID(ti), inc); got != first {
					t.Fatalf("type %d: Entropy differs between calls: %v vs %v", ti, first, got)
				}
			}
		}
	}
}
