package score_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/uta-db/previewtables/internal/fig1"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/score"
)

const eps = 1e-9

func fig1Set(t *testing.T) (*graph.EntityGraph, *score.Set) {
	t.Helper()
	g := fig1.Graph()
	return g, score.Compute(g, score.DefaultWalkOptions())
}

func typeID(t *testing.T, g *graph.EntityGraph, name string) graph.TypeID {
	t.Helper()
	id, ok := g.TypeByName(name)
	if !ok {
		t.Fatalf("type %q not found", name)
	}
	return id
}

// incidence finds the incidence of relationship type relName on keyed type t
// with the given orientation.
func incidence(t *testing.T, s *graph.Schema, keyed graph.TypeID, relName string, outgoing bool) (graph.Incidence, int) {
	t.Helper()
	for i, inc := range s.Incident(keyed) {
		if s.RelType(inc.Rel).Name == relName && inc.Outgoing == outgoing {
			return inc, i
		}
	}
	t.Fatalf("incidence %q (outgoing=%v) not found on %s", relName, outgoing, s.TypeName(keyed))
	return graph.Incidence{}, -1
}

func TestKeyCoverageFig1(t *testing.T) {
	g, set := fig1Set(t)
	if got := set.Key(score.KeyCoverage, typeID(t, g, fig1.Film)); got != 4 {
		t.Errorf("Scov(FILM) = %v, want 4", got)
	}
	if got := set.Key(score.KeyCoverage, typeID(t, g, fig1.FilmActor)); got != 2 {
		t.Errorf("Scov(FILM ACTOR) = %v, want 2", got)
	}
}

func TestNonKeyCoverageFig1(t *testing.T) {
	// Sec. 3.3: SFILMcov(Director) = 4, SFILMcov(Genres) = 5.
	g, set := fig1Set(t)
	film := typeID(t, g, fig1.Film)
	s := set.Schema()
	_, di := incidence(t, s, film, fig1.RelDirector, false)
	if got := set.NonKey(score.NonKeyCoverage, film, di); got != 4 {
		t.Errorf("Scov(Director) = %v, want 4", got)
	}
	_, gi := incidence(t, s, film, fig1.RelGenres, true)
	if got := set.NonKey(score.NonKeyCoverage, film, gi); got != 5 {
		t.Errorf("Scov(Genres) = %v, want 5", got)
	}
}

func TestNonKeyCoverageSymmetric(t *testing.T) {
	// "The coverage-based scoring measure for non-key attribute is
	// symmetric": the score of γ is the same whether τ or τ' keys the table.
	g, set := fig1Set(t)
	s := set.Schema()
	film := typeID(t, g, fig1.Film)
	genre := typeID(t, g, fig1.FilmGenre)
	_, fi := incidence(t, s, film, fig1.RelGenres, true)
	_, gi := incidence(t, s, genre, fig1.RelGenres, false)
	a := set.NonKey(score.NonKeyCoverage, film, fi)
	b := set.NonKey(score.NonKeyCoverage, genre, gi)
	if a != b {
		t.Errorf("coverage asymmetric: %v vs %v", a, b)
	}
}

func TestEntropyFig1WorkedExample(t *testing.T) {
	// Sec. 3.3: SFILMent(Director) = (2/4)log(4/2) + (1/4)log(4) + (1/4)log(4)
	// ≈ 0.45 and SFILMent(Genres) = (2/3)log(3/2) + (1/3)log(3) ≈ 0.28,
	// in log base 10.
	g, set := fig1Set(t)
	s := set.Schema()
	film := typeID(t, g, fig1.Film)

	_, di := incidence(t, s, film, fig1.RelDirector, false)
	wantDirector := 0.5*math.Log10(2) + 0.5*math.Log10(4)
	if got := set.NonKey(score.NonKeyEntropy, film, di); math.Abs(got-wantDirector) > eps {
		t.Errorf("Sent(Director) = %v, want %v", got, wantDirector)
	}
	if got := set.NonKey(score.NonKeyEntropy, film, di); math.Abs(got-0.45) > 0.005 {
		t.Errorf("Sent(Director) = %v, want ≈0.45 (paper)", got)
	}

	_, gi := incidence(t, s, film, fig1.RelGenres, true)
	wantGenres := (2.0/3.0)*math.Log10(1.5) + (1.0/3.0)*math.Log10(3)
	if got := set.NonKey(score.NonKeyEntropy, film, gi); math.Abs(got-wantGenres) > eps {
		t.Errorf("Sent(Genres) = %v, want %v", got, wantGenres)
	}
	if got := set.NonKey(score.NonKeyEntropy, film, gi); math.Abs(got-0.28) > 0.005 {
		t.Errorf("Sent(Genres) = %v, want ≈0.28 (paper)", got)
	}
}

func TestEntropyAsymmetric(t *testing.T) {
	// "the entropy-based scoring measure for non-key attribute is
	// asymmetric": from the FILM side Genres groups films by genre sets;
	// from the FILM GENRE side it groups genres by film sets.
	g, set := fig1Set(t)
	s := set.Schema()
	film := typeID(t, g, fig1.Film)
	genre := typeID(t, g, fig1.FilmGenre)
	_, fi := incidence(t, s, film, fig1.RelGenres, true)
	_, gi := incidence(t, s, genre, fig1.RelGenres, false)
	a := set.NonKey(score.NonKeyEntropy, film, fi)
	b := set.NonKey(score.NonKeyEntropy, genre, gi)
	if math.Abs(a-b) < eps {
		t.Errorf("entropy unexpectedly symmetric: %v vs %v", a, b)
	}
	// From the genre side: Action Film ← {MIB, MIB2, IRobot},
	// Science Fiction ← {MIB, MIB2}: two distinct singleton groups of 2
	// tuples → H = 2 × (1/2)log(2) = log10(2).
	if want := math.Log10(2); math.Abs(b-want) > eps {
		t.Errorf("Sent(Genres) from FILM GENRE = %v, want %v", b, want)
	}
}

func TestEntropyEmptyAttribute(t *testing.T) {
	var b graph.Builder
	a := b.Type("A")
	c := b.Type("C")
	b.RelType("r", a, c)
	b.Entity("x", a)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	set := score.Compute(g, score.DefaultWalkOptions())
	// No edges at all: entropy is 0 by convention.
	if got := set.NonKey(score.NonKeyEntropy, a, 0); got != 0 {
		t.Errorf("entropy of empty attribute = %v, want 0", got)
	}
}

func TestEntropyUniformVsSkewed(t *testing.T) {
	// n tuples with n distinct values maximizes entropy: H = log10(n).
	// n tuples all sharing one value gives H = 0.
	build := func(distinct bool) *graph.EntityGraph {
		var b graph.Builder
		a := b.Type("A")
		c := b.Type("C")
		r := b.RelType("r", a, c)
		shared := b.Entity("shared", c)
		for i := 0; i < 8; i++ {
			x := b.Entity(string(rune('a'+i)), a)
			if distinct {
				y := b.Entity(string(rune('A'+i)), c)
				b.Edge(x, y, r)
			} else {
				b.Edge(x, shared, r)
			}
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	gU := build(true)
	setU := score.Compute(gU, score.DefaultWalkOptions())
	aU, _ := gU.TypeByName("A")
	if got, want := setU.NonKey(score.NonKeyEntropy, aU, 0), math.Log10(8); math.Abs(got-want) > eps {
		t.Errorf("uniform entropy = %v, want %v", got, want)
	}
	gS := build(false)
	setS := score.Compute(gS, score.DefaultWalkOptions())
	aS, _ := gS.TypeByName("A")
	if got := setS.NonKey(score.NonKeyEntropy, aS, 0); got != 0 {
		t.Errorf("constant-value entropy = %v, want 0", got)
	}
}

func TestEntropyValueSetGrouping(t *testing.T) {
	// "for two values on a multi-valued attribute ... we consider them
	// equivalent if and only if they have the same set of component values".
	// {v1,v2} and {v2,v1} must collide; {v1} must not collide with {v1,v2}.
	var b graph.Builder
	a := b.Type("A")
	c := b.Type("C")
	r := b.RelType("r", a, c)
	v1 := b.Entity("v1", c)
	v2 := b.Entity("v2", c)
	x := b.Entity("x", a)
	y := b.Entity("y", a)
	z := b.Entity("z", a)
	b.Edge(x, v1, r)
	b.Edge(x, v2, r)
	b.Edge(y, v2, r) // insertion order reversed relative to x
	b.Edge(y, v1, r)
	b.Edge(z, v1, r)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	set := score.Compute(g, score.DefaultWalkOptions())
	// Groups: {v1,v2}×2, {v1}×1 over 3 non-empty tuples.
	want := (2.0/3.0)*math.Log10(1.5) + (1.0/3.0)*math.Log10(3)
	if got := set.NonKey(score.NonKeyEntropy, a, 0); math.Abs(got-want) > eps {
		t.Errorf("value-set entropy = %v, want %v", got, want)
	}
}

func TestStationaryFig1TransitionExample(t *testing.T) {
	// The paper computes MFILM,FILM GENRE = 5/18 ≈ 0.28 and
	// MFILM,FILM PRODUCER = 3/18 ≈ 0.17. Verify through the weights.
	g, _ := fig1Set(t)
	s := g.Schema()
	film := typeID(t, g, fig1.Film)
	total := s.TotalWeight(film)
	if total != 18 {
		t.Fatalf("total weight of FILM = %v, want 18", total)
	}
	neighbors, weights := s.Neighbors(film)
	for i, u := range neighbors {
		p := weights[i] / total
		switch s.TypeName(u) {
		case fig1.FilmGenre:
			if math.Abs(p-5.0/18.0) > eps {
				t.Errorf("M(FILM→GENRE) = %v, want 5/18", p)
			}
		case fig1.FilmProducer:
			if math.Abs(p-3.0/18.0) > eps {
				t.Errorf("M(FILM→PRODUCER) = %v, want 3/18", p)
			}
		}
	}
}

func TestStationarySumsToOne(t *testing.T) {
	_, set := fig1Set(t)
	var sum float64
	for i := 0; i < set.Schema().NumTypes(); i++ {
		p := set.Key(score.KeyRandomWalk, graph.TypeID(i))
		if p < 0 {
			t.Errorf("negative stationary probability %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("stationary distribution sums to %v, want 1", sum)
	}
}

func TestStationaryFilmIsTop(t *testing.T) {
	// FILM is the hub of Fig. 3: it must have the highest stationary
	// probability.
	g, set := fig1Set(t)
	ranked := set.RankKeys(score.KeyRandomWalk)
	if got := g.TypeName(ranked[0]); got != fig1.Film {
		t.Errorf("top random-walk type = %s, want FILM", got)
	}
}

func TestStationaryDisconnectedNeedsSmoothing(t *testing.T) {
	// Two components: {a-b} heavy, {c-d} light. With smoothing the
	// distribution converges and every type gets positive mass.
	s, err := graph.NewSchema([]string{"a", "b", "c", "d"}, []graph.RelType{
		{Name: "r", From: 0, To: 1, EdgeCount: 100},
		{Name: "r", From: 2, To: 3, EdgeCount: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	pi := score.StationaryDistribution(s, score.DefaultWalkOptions())
	var sum float64
	for _, p := range pi {
		if p <= 0 {
			t.Errorf("stationary probability %v not positive", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("sum = %v, want 1", sum)
	}
}

func TestStationaryIsolatedVertex(t *testing.T) {
	// A vertex with no incident edges and zero smoothing must not break
	// the iteration (uniform redistribution keeps the chain stochastic).
	s, err := graph.NewSchema([]string{"a", "b", "c"}, []graph.RelType{
		{Name: "r", From: 0, To: 1, EdgeCount: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	pi := score.StationaryDistribution(s, score.WalkOptions{Smoothing: 0, Tolerance: 1e-12, MaxIter: 5000})
	var sum float64
	for _, p := range pi {
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("sum = %v, want 1", sum)
	}
}

func TestStationaryTwoVertexChain(t *testing.T) {
	// A single undirected edge: stationary distribution is (1/2, 1/2)
	// regardless of weight.
	s, err := graph.NewSchema([]string{"a", "b"}, []graph.RelType{
		{Name: "r", From: 0, To: 1, EdgeCount: 42},
	})
	if err != nil {
		t.Fatal(err)
	}
	pi := score.StationaryDistribution(s, score.DefaultWalkOptions())
	if math.Abs(pi[0]-0.5) > 1e-6 || math.Abs(pi[1]-0.5) > 1e-6 {
		t.Errorf("pi = %v, want (0.5, 0.5)", pi)
	}
}

func TestStationaryWeightedStar(t *testing.T) {
	// Star a-(b,c) with weights 3 and 1. Theory: for an undirected chain,
	// pi(v) ∝ degree weight. Weights: a: 4, b: 3, c: 1 → pi = (1/2, 3/8, 1/8).
	s, err := graph.NewSchema([]string{"a", "b", "c"}, []graph.RelType{
		{Name: "r", From: 0, To: 1, EdgeCount: 3},
		{Name: "r", From: 0, To: 2, EdgeCount: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	pi := score.StationaryDistribution(s, score.WalkOptions{Smoothing: 0, Tolerance: 1e-13, MaxIter: 100000})
	want := []float64{0.5, 0.375, 0.125}
	for i := range want {
		if math.Abs(pi[i]-want[i]) > 1e-4 {
			t.Errorf("pi[%d] = %v, want %v", i, pi[i], want[i])
			break
		}
	}
}

func TestStationaryEdgeCases(t *testing.T) {
	empty, err := graph.NewSchema(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pi := score.StationaryDistribution(empty, score.DefaultWalkOptions()); len(pi) != 0 {
		t.Errorf("empty schema pi = %v", pi)
	}
	single, err := graph.NewSchema([]string{"a"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pi := score.StationaryDistribution(single, score.DefaultWalkOptions()); len(pi) != 1 || pi[0] != 1 {
		t.Errorf("single-vertex pi = %v, want [1]", pi)
	}
}

func TestRankKeysDeterministicAndSorted(t *testing.T) {
	_, set := fig1Set(t)
	for _, m := range []score.KeyMeasure{score.KeyCoverage, score.KeyRandomWalk} {
		r1 := set.RankKeys(m)
		r2 := set.RankKeys(m)
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("%v ranking not deterministic", m)
			}
			if i > 0 && set.Key(m, r1[i-1]) < set.Key(m, r1[i]) {
				t.Fatalf("%v ranking not sorted", m)
			}
		}
	}
}

func TestRankNonKeysSorted(t *testing.T) {
	g, set := fig1Set(t)
	film := typeID(t, g, fig1.Film)
	ranked := set.RankNonKeys(score.NonKeyCoverage, film)
	if len(ranked) != 5 {
		t.Fatalf("ranked candidates = %d, want 5", len(ranked))
	}
	// Top candidate by coverage is Actor (6 edges).
	if name := set.Schema().RelType(ranked[0].Inc.Rel).Name; name != fig1.RelActor {
		t.Errorf("top non-key of FILM = %s, want Actor", name)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].Score < ranked[i].Score {
			t.Error("non-key ranking not sorted")
		}
	}
}

func TestMeasureStrings(t *testing.T) {
	if score.KeyCoverage.String() != "Coverage" || score.KeyRandomWalk.String() != "Random Walk" {
		t.Error("key measure names")
	}
	if score.NonKeyCoverage.String() != "Coverage" || score.NonKeyEntropy.String() != "Entropy" {
		t.Error("non-key measure names")
	}
	if score.KeyMeasure(9).String() == "" || score.NonKeyMeasure(9).String() == "" {
		t.Error("unknown measures should still render")
	}
}

func TestEntropyNonNegativeProperty(t *testing.T) {
	// Entropy is always in [0, log10(#tuples)] on random bipartite graphs.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b graph.Builder
		a := b.Type("A")
		c := b.Type("C")
		r := b.RelType("r", a, c)
		nLeft := rng.Intn(12) + 1
		nRight := rng.Intn(6) + 1
		for i := 0; i < nLeft; i++ {
			x := b.Entity(string(rune('a'))+string(rune('0'+i%10))+string(rune('0'+i/10)), a)
			for j := 0; j < nRight; j++ {
				if rng.Intn(3) == 0 {
					y := b.Entity("R"+string(rune('0'+j)), c)
					b.Edge(x, y, r)
				}
			}
		}
		b.Entity("pad", c) // keep type C inhabited
		g, err := b.Build()
		if err != nil {
			return false
		}
		set := score.Compute(g, score.DefaultWalkOptions())
		h := set.NonKey(score.NonKeyEntropy, a, 0)
		return h >= 0 && h <= math.Log10(float64(nLeft))+eps
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestComputeSchemaOnly(t *testing.T) {
	s, err := graph.NewSchema([]string{"a", "b"}, []graph.RelType{
		{Name: "r", From: 0, To: 1, EdgeCount: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	set := score.ComputeSchemaOnly(s, score.DefaultWalkOptions())
	if got := set.Key(score.KeyCoverage, 0); got != 0 {
		t.Errorf("schema-only coverage = %v, want 0", got)
	}
	if got := set.NonKey(score.NonKeyCoverage, 0, 0); got != 4 {
		t.Errorf("schema-only non-key coverage = %v, want 4", got)
	}
	if got := set.NonKey(score.NonKeyEntropy, 0, 0); got != 0 {
		t.Errorf("schema-only entropy = %v, want 0", got)
	}
}
