// Package score implements the preview scoring measures of Sec. 3 of the
// paper: the coverage-based and random-walk based key attribute measures,
// and the coverage-based and entropy-based non-key attribute measures.
//
// Scores are precomputed once per graph into a Set, which the discovery
// algorithms then consult in O(1). This mirrors the paper's setup: "Both
// the schema graph and the scoring measures ... are computed before optimal
// preview discovery" (Sec. 5).
package score

import (
	"fmt"
	"math"
	"sort"

	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/par"
)

// KeyMeasure selects the scoring measure for key attributes (entity types).
type KeyMeasure int

// Key attribute measures (Sec. 3.2).
const (
	KeyCoverage   KeyMeasure = iota // Scov(τ): number of entities of type τ
	KeyRandomWalk                   // Swalk(τ): stationary probability of τ
)

// String returns the measure name as used in the paper's tables.
func (m KeyMeasure) String() string {
	switch m {
	case KeyCoverage:
		return "Coverage"
	case KeyRandomWalk:
		return "Random Walk"
	default:
		return fmt.Sprintf("KeyMeasure(%d)", int(m))
	}
}

// NonKeyMeasure selects the scoring measure for non-key attributes
// (relationship types).
type NonKeyMeasure int

// Non-key attribute measures (Sec. 3.3).
const (
	NonKeyCoverage NonKeyMeasure = iota // Sτcov(γ): number of edges of type γ
	NonKeyEntropy                       // Sτent(γ): entropy of γ's values in table τ
)

// String returns the measure name as used in the paper's tables.
func (m NonKeyMeasure) String() string {
	switch m {
	case NonKeyCoverage:
		return "Coverage"
	case NonKeyEntropy:
		return "Entropy"
	default:
		return fmt.Sprintf("NonKeyMeasure(%d)", int(m))
	}
}

// WalkOptions configures the random-walk key measure and, because it is
// the options value every scoring entry point already threads through, the
// parallelism of the scoring hot paths.
type WalkOptions struct {
	// Smoothing is the small transition probability added between every
	// pair of entity types to guarantee convergence on disconnected schema
	// graphs. The paper uses 1e-5 (Sec. 6).
	Smoothing float64
	// Tolerance is the L1 convergence threshold of power iteration.
	Tolerance float64
	// MaxIter caps power iteration.
	MaxIter int
	// Parallelism is the worker count for the scoring hot paths: Compute's
	// per-type entropy/coverage fan-out and power iteration's blocked
	// matrix-vector step (both the cold and the warm-started incremental
	// path). Values <= 1 mean sequential. Results are bit-identical at
	// every setting: each output slot is computed by exactly one worker
	// with a per-slot floating-point accumulation order that does not
	// depend on the worker count (see internal/par), and the convergence
	// test reduces the parallel step's output on one goroutine in index
	// order.
	Parallelism int
}

// DefaultWalkOptions returns the paper's configuration (sequential; set
// Parallelism explicitly to fan out).
func DefaultWalkOptions() WalkOptions {
	return WalkOptions{Smoothing: 1e-5, Tolerance: 1e-12, MaxIter: 10000}
}

// Set holds every precomputed score for one entity graph: key attribute
// scores per measure per entity type, and non-key attribute scores per
// measure per (entity type, incidence). A Set is immutable after Compute.
type Set struct {
	schema *graph.Schema

	keyCov  []float64 // per TypeID
	keyWalk []float64 // per TypeID

	// nonKey[measure][type] is index-aligned with schema.Incident(type).
	nonKeyCov [][]float64
	nonKeyEnt [][]float64
}

// Compute precomputes all four measures for g. The entropy measure
// materializes per-tuple value sets, so Compute is the only phase that
// touches the entity graph; discovery afterwards only needs the Set and the
// schema graph.
//
// With opts.Parallelism > 1 the per-type work — coverage plus every
// incident attribute's entropy, the dominant cost of the precomputation —
// fans out over a worker pool. Each type's scores are computed by exactly
// one worker with the same per-type code as the sequential path and
// written to slots only that worker touches, so the resulting Set is
// bit-identical to a sequential Compute.
func Compute(g *graph.EntityGraph, opts WalkOptions) *Set {
	s := g.Schema()
	set := &Set{schema: s}

	n := g.NumTypes()
	set.keyCov = make([]float64, n)
	set.nonKeyCov = make([][]float64, n)
	set.nonKeyEnt = make([][]float64, n)
	par.ForEach(opts.Parallelism, n, func(t int) {
		set.keyCov[t] = float64(g.TypeCoverage(graph.TypeID(t)))
		incs := s.Incident(graph.TypeID(t))
		cov := make([]float64, len(incs))
		ent := make([]float64, len(incs))
		for i, inc := range incs {
			cov[i] = float64(s.RelType(inc.Rel).EdgeCount)
			ent[i] = Entropy(g, graph.TypeID(t), inc)
		}
		set.nonKeyCov[t] = cov
		set.nonKeyEnt[t] = ent
	})
	set.keyWalk = StationaryDistribution(s, opts)
	return set
}

// ComputeSchemaOnly builds a Set for a bare schema graph (no entity graph).
// Key coverage and entropy are unavailable and default to zero; key
// random-walk uses unit edge weights. It backs the NP-hardness reduction
// tests, where the optimization is purely structural (s = 0 in the decision
// problems).
func ComputeSchemaOnly(s *graph.Schema, opts WalkOptions) *Set {
	set := &Set{schema: s}
	set.keyCov = make([]float64, s.NumTypes())
	set.keyWalk = StationaryDistribution(s, opts)
	set.nonKeyCov = make([][]float64, s.NumTypes())
	set.nonKeyEnt = make([][]float64, s.NumTypes())
	for t := 0; t < s.NumTypes(); t++ {
		incs := s.Incident(graph.TypeID(t))
		cov := make([]float64, len(incs))
		for i, inc := range incs {
			cov[i] = float64(s.RelType(inc.Rel).EdgeCount)
		}
		set.nonKeyCov[t] = cov
		set.nonKeyEnt[t] = make([]float64, len(incs))
	}
	return set
}

// NewSet assembles a Set from externally maintained measure values — the
// hook for incremental maintenance (package dynamic keeps coverage, edge
// counts and entropies up to date under a stream of graph updates and
// emits Sets without rescanning the entity graph). nonKeyCov and nonKeyEnt
// must be index-aligned with s.Incident(t) for each type t. Dimensions are
// validated; values are not copied.
func NewSet(s *graph.Schema, keyCov, keyWalk []float64, nonKeyCov, nonKeyEnt [][]float64) (*Set, error) {
	n := s.NumTypes()
	if len(keyCov) != n || len(keyWalk) != n || len(nonKeyCov) != n || len(nonKeyEnt) != n {
		return nil, fmt.Errorf("score: NewSet dimension mismatch: %d types, got %d/%d/%d/%d",
			n, len(keyCov), len(keyWalk), len(nonKeyCov), len(nonKeyEnt))
	}
	for t := 0; t < n; t++ {
		incs := len(s.Incident(graph.TypeID(t)))
		if len(nonKeyCov[t]) != incs || len(nonKeyEnt[t]) != incs {
			return nil, fmt.Errorf("score: NewSet type %d: %d incidences, got %d/%d",
				t, incs, len(nonKeyCov[t]), len(nonKeyEnt[t]))
		}
	}
	return &Set{schema: s, keyCov: keyCov, keyWalk: keyWalk, nonKeyCov: nonKeyCov, nonKeyEnt: nonKeyEnt}, nil
}

// Schema returns the schema graph the scores were computed against.
func (s *Set) Schema() *graph.Schema { return s.schema }

// Key returns S(τ) under the given measure.
func (s *Set) Key(m KeyMeasure, t graph.TypeID) float64 {
	switch m {
	case KeyCoverage:
		return s.keyCov[t]
	case KeyRandomWalk:
		return s.keyWalk[t]
	}
	panic("score: unknown key measure")
}

// NonKey returns Sτ(γ) for the i-th incidence of type t (index aligned with
// Schema().Incident(t)) under the given measure.
func (s *Set) NonKey(m NonKeyMeasure, t graph.TypeID, i int) float64 {
	switch m {
	case NonKeyCoverage:
		return s.nonKeyCov[t][i]
	case NonKeyEntropy:
		return s.nonKeyEnt[t][i]
	}
	panic("score: unknown non-key measure")
}

// RankKeys returns all entity types sorted by decreasing score under m,
// breaking ties by TypeID for determinism.
func (s *Set) RankKeys(m KeyMeasure) []graph.TypeID {
	ids := make([]graph.TypeID, len(s.keyCov))
	for i := range ids {
		ids[i] = graph.TypeID(i)
	}
	sort.SliceStable(ids, func(a, b int) bool {
		sa, sb := s.Key(m, ids[a]), s.Key(m, ids[b])
		if sa != sb {
			return sa > sb
		}
		return ids[a] < ids[b]
	})
	return ids
}

// RankedIncidence is one candidate non-key attribute with its score.
type RankedIncidence struct {
	Index int // index into Schema().Incident(t)
	Inc   graph.Incidence
	Score float64
}

// RankNonKeys returns the candidate non-key attributes of type t sorted by
// decreasing score under m (Theorem 3 ordering), breaking ties by incidence
// index for determinism.
func (s *Set) RankNonKeys(m NonKeyMeasure, t graph.TypeID) []RankedIncidence {
	incs := s.schema.Incident(t)
	rs := make([]RankedIncidence, len(incs))
	for i, inc := range incs {
		rs[i] = RankedIncidence{Index: i, Inc: inc, Score: s.NonKey(m, t, i)}
	}
	sort.SliceStable(rs, func(a, b int) bool {
		if rs[a].Score != rs[b].Score {
			return rs[a].Score > rs[b].Score
		}
		return rs[a].Index < rs[b].Index
	})
	return rs
}

// walkParallelThreshold is the minimum type count before power iteration
// fans its row blocks out over workers; below it the per-iteration pool
// coordination costs more than the whole matrix-vector step.
const walkParallelThreshold = 256

// StationaryDistribution computes the random-walk scores Swalk over the
// undirected weighted schema view: π = πM where Mij = wij / Σk wik, with
// opts.Smoothing added between every (ordered) pair of distinct types and
// rows renormalized (the paper's convergence fix for disconnected schema
// graphs). The result sums to 1; an empty schema returns an empty slice.
//
// Iteration uses the lazy walk (M+I)/2, which has exactly the same fixed
// point π = πM but converges even on periodic (bipartite) schema graphs,
// where plain power iteration oscillates forever.
func StationaryDistribution(s *graph.Schema, opts WalkOptions) []float64 {
	return StationaryDistributionWarm(s, opts, nil)
}

// StationaryDistributionWarm is StationaryDistribution with a warm start:
// power iteration begins from prev (renormalized) instead of the uniform
// distribution when prev matches the schema's type count. With positive
// smoothing the chain is ergodic, so the fixed point is unique and the
// starting vector only affects the iteration count — after a small
// perturbation of the edge weights (one update batch on a live graph) the
// old π is already near the new fixed point and convergence takes a
// handful of iterations instead of hundreds. prev is not modified.
//
// The iteration step is formulated as a gather (next[j] pulls from j's
// neighbors in adjacency order) rather than a scatter, so each row of
// next is a pure function of pi with a fixed accumulation order. With
// opts.Parallelism > 1 rows are partitioned into blocks executed by a
// worker pool; the global smoothing mass and the convergence delta are
// reduced sequentially in index order, making the result bit-identical
// to the sequential iteration at any worker count.
func StationaryDistributionWarm(s *graph.Schema, opts WalkOptions, prev []float64) []float64 {
	n := s.NumTypes()
	if n == 0 {
		return nil
	}
	if n == 1 {
		return []float64{1}
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 10000
	}
	if opts.Tolerance <= 0 {
		opts.Tolerance = 1e-12
	}

	// Row sums after smoothing: total weight + smoothing to (n-1) others.
	rowSum := make([]float64, n)
	for t := 0; t < n; t++ {
		rowSum[t] = s.TotalWeight(graph.TypeID(t)) + opts.Smoothing*float64(n-1)
	}

	pi := make([]float64, n)
	next := make([]float64, n)
	warm := false
	if len(prev) == n {
		var sum float64
		for _, p := range prev {
			if p < 0 {
				sum = 0
				break
			}
			sum += p
		}
		if sum > 0 {
			for i := range pi {
				pi[i] = prev[i] / sum
			}
			warm = true
		}
	}
	if !warm {
		for i := range pi {
			pi[i] = 1 / float64(n)
		}
	}
	// Row blocks for the parallel matrix-vector step. Each row is computed
	// independently with a fixed per-row accumulation order, so the block
	// plan affects load balance only, never the floating-point result —
	// which is also why dropping to sequential below the threshold changes
	// nothing but speed: per iteration the step costs ~n·deg flops, and
	// under a few hundred rows that is microseconds of math, less than the
	// worker pool's per-iteration spawn cost. Shipped domains (K ≤ 91)
	// therefore run sequentially here; the blocked path engages for large
	// schemas, where it pays.
	workers := par.Workers(opts.Parallelism)
	spans := []par.Span{{Lo: 0, Hi: n}}
	if workers > 1 && n >= walkParallelThreshold {
		spans = par.Spans(n, workers*4)
	} else {
		workers = 1
	}
	for iter := 0; iter < opts.MaxIter; iter++ {
		// next = pi · M, gathered per row. Sequential pre-pass: the global
		// smoothing mass Σ_t pi[t]·σ/rowSum[t] every row receives (each row
		// subtracts its own contribution — no self smoothing), plus the
		// uniform share isolated vertices with zero smoothing distribute to
		// keep the chain stochastic.
		var smoothTotal, isoShare float64
		for t := 0; t < n; t++ {
			if rowSum[t] == 0 {
				isoShare += pi[t] / float64(n)
			} else {
				smoothTotal += pi[t] * opts.Smoothing / rowSum[t]
			}
		}
		base := smoothTotal + isoShare
		par.ForEach(workers, len(spans), func(si int) {
			for j := spans[si].Lo; j < spans[si].Hi; j++ {
				var sum float64
				neighbors, weights := s.Neighbors(graph.TypeID(j))
				for i, u := range neighbors {
					if rowSum[u] > 0 {
						sum += pi[u] * weights[i] / rowSum[u]
					}
				}
				sum += base
				if rowSum[j] > 0 {
					sum -= pi[j] * opts.Smoothing / rowSum[j] // no self smoothing
				}
				next[j] = 0.5*sum + 0.5*pi[j] // lazy step
			}
		})
		// Convergence delta reduced sequentially in index order, so the
		// iteration count — and therefore the result — is independent of
		// the worker count.
		var delta float64
		for j := range next {
			delta += math.Abs(next[j] - pi[j])
		}
		pi, next = next, pi
		if delta < opts.Tolerance {
			break
		}
	}
	// Normalize defensively against floating-point drift.
	var sum float64
	for _, p := range pi {
		sum += p
	}
	if sum > 0 {
		for i := range pi {
			pi[i] /= sum
		}
	}
	return pi
}

// Entropy computes Sτent(γ) (Sec. 3.3): the entropy, in log base 10, of the
// distribution of value sets attained by the tuples of the table keyed by
// entity type t on the non-key attribute inc. Tuples with empty values are
// excluded from the denominator; two multi-valued cells are equal iff they
// contain the same set of component entities.
func Entropy(g *graph.EntityGraph, t graph.TypeID, inc graph.Incidence) float64 {
	groups := make(map[string]int)
	var nonEmpty int
	for _, e := range g.EntitiesOfType(t) {
		vals := g.Neighbors(e, inc.Rel, inc.Outgoing)
		if len(vals) == 0 {
			continue
		}
		nonEmpty++
		groups[valueSetKey(vals)]++
	}
	if nonEmpty == 0 {
		return 0
	}
	// Deterministic accumulation: the entropy depends only on the multiset
	// of group sizes, so fold the histogram into size → multiplicity and
	// sum over sizes in increasing order. Iterating the groups map directly
	// would let Go's randomized map order pick the floating-point summation
	// order, making repeated runs differ in the last bits — enough to flip
	// score ties and break the bit-identical guarantee the parallel paths
	// (and the differential tests) rely on.
	sizes := make(map[int]int)
	for _, nj := range groups {
		sizes[nj]++
	}
	distinct := make([]int, 0, len(sizes))
	for c := range sizes {
		distinct = append(distinct, c)
	}
	sort.Ints(distinct)
	var h float64
	total := float64(nonEmpty)
	for _, c := range distinct {
		p := float64(c) / total
		h += float64(sizes[c]) * p * math.Log10(1/p)
	}
	return h
}

// valueSetKey canonicalizes a value set: sorted entity ids joined into a
// deterministic key, so {a,b} and {b,a} collide.
func valueSetKey(vals []graph.EntityID) string {
	ids := make([]graph.EntityID, len(vals))
	copy(ids, vals)
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	// Compact binary key: 4 bytes per id.
	buf := make([]byte, 0, len(ids)*4)
	for _, id := range ids {
		buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(buf)
}
