// Package score implements the preview scoring measures of Sec. 3 of the
// paper: the coverage-based and random-walk based key attribute measures,
// and the coverage-based and entropy-based non-key attribute measures.
//
// Scores are precomputed once per graph into a Set, which the discovery
// algorithms then consult in O(1). This mirrors the paper's setup: "Both
// the schema graph and the scoring measures ... are computed before optimal
// preview discovery" (Sec. 5).
package score

import (
	"fmt"
	"math"
	"sort"

	"github.com/uta-db/previewtables/internal/graph"
)

// KeyMeasure selects the scoring measure for key attributes (entity types).
type KeyMeasure int

// Key attribute measures (Sec. 3.2).
const (
	KeyCoverage   KeyMeasure = iota // Scov(τ): number of entities of type τ
	KeyRandomWalk                   // Swalk(τ): stationary probability of τ
)

// String returns the measure name as used in the paper's tables.
func (m KeyMeasure) String() string {
	switch m {
	case KeyCoverage:
		return "Coverage"
	case KeyRandomWalk:
		return "Random Walk"
	default:
		return fmt.Sprintf("KeyMeasure(%d)", int(m))
	}
}

// NonKeyMeasure selects the scoring measure for non-key attributes
// (relationship types).
type NonKeyMeasure int

// Non-key attribute measures (Sec. 3.3).
const (
	NonKeyCoverage NonKeyMeasure = iota // Sτcov(γ): number of edges of type γ
	NonKeyEntropy                       // Sτent(γ): entropy of γ's values in table τ
)

// String returns the measure name as used in the paper's tables.
func (m NonKeyMeasure) String() string {
	switch m {
	case NonKeyCoverage:
		return "Coverage"
	case NonKeyEntropy:
		return "Entropy"
	default:
		return fmt.Sprintf("NonKeyMeasure(%d)", int(m))
	}
}

// WalkOptions configures the random-walk key measure.
type WalkOptions struct {
	// Smoothing is the small transition probability added between every
	// pair of entity types to guarantee convergence on disconnected schema
	// graphs. The paper uses 1e-5 (Sec. 6).
	Smoothing float64
	// Tolerance is the L1 convergence threshold of power iteration.
	Tolerance float64
	// MaxIter caps power iteration.
	MaxIter int
}

// DefaultWalkOptions returns the paper's configuration.
func DefaultWalkOptions() WalkOptions {
	return WalkOptions{Smoothing: 1e-5, Tolerance: 1e-12, MaxIter: 10000}
}

// Set holds every precomputed score for one entity graph: key attribute
// scores per measure per entity type, and non-key attribute scores per
// measure per (entity type, incidence). A Set is immutable after Compute.
type Set struct {
	schema *graph.Schema

	keyCov  []float64 // per TypeID
	keyWalk []float64 // per TypeID

	// nonKey[measure][type] is index-aligned with schema.Incident(type).
	nonKeyCov [][]float64
	nonKeyEnt [][]float64
}

// Compute precomputes all four measures for g. The entropy measure
// materializes per-tuple value sets, so Compute is the only phase that
// touches the entity graph; discovery afterwards only needs the Set and the
// schema graph.
func Compute(g *graph.EntityGraph, opts WalkOptions) *Set {
	s := g.Schema()
	set := &Set{schema: s}

	set.keyCov = make([]float64, g.NumTypes())
	for t := 0; t < g.NumTypes(); t++ {
		set.keyCov[t] = float64(g.TypeCoverage(graph.TypeID(t)))
	}
	set.keyWalk = StationaryDistribution(s, opts)

	set.nonKeyCov = make([][]float64, g.NumTypes())
	set.nonKeyEnt = make([][]float64, g.NumTypes())
	for t := 0; t < g.NumTypes(); t++ {
		incs := s.Incident(graph.TypeID(t))
		cov := make([]float64, len(incs))
		ent := make([]float64, len(incs))
		for i, inc := range incs {
			cov[i] = float64(s.RelType(inc.Rel).EdgeCount)
			ent[i] = Entropy(g, graph.TypeID(t), inc)
		}
		set.nonKeyCov[t] = cov
		set.nonKeyEnt[t] = ent
	}
	return set
}

// ComputeSchemaOnly builds a Set for a bare schema graph (no entity graph).
// Key coverage and entropy are unavailable and default to zero; key
// random-walk uses unit edge weights. It backs the NP-hardness reduction
// tests, where the optimization is purely structural (s = 0 in the decision
// problems).
func ComputeSchemaOnly(s *graph.Schema, opts WalkOptions) *Set {
	set := &Set{schema: s}
	set.keyCov = make([]float64, s.NumTypes())
	set.keyWalk = StationaryDistribution(s, opts)
	set.nonKeyCov = make([][]float64, s.NumTypes())
	set.nonKeyEnt = make([][]float64, s.NumTypes())
	for t := 0; t < s.NumTypes(); t++ {
		incs := s.Incident(graph.TypeID(t))
		cov := make([]float64, len(incs))
		for i, inc := range incs {
			cov[i] = float64(s.RelType(inc.Rel).EdgeCount)
		}
		set.nonKeyCov[t] = cov
		set.nonKeyEnt[t] = make([]float64, len(incs))
	}
	return set
}

// NewSet assembles a Set from externally maintained measure values — the
// hook for incremental maintenance (package dynamic keeps coverage, edge
// counts and entropies up to date under a stream of graph updates and
// emits Sets without rescanning the entity graph). nonKeyCov and nonKeyEnt
// must be index-aligned with s.Incident(t) for each type t. Dimensions are
// validated; values are not copied.
func NewSet(s *graph.Schema, keyCov, keyWalk []float64, nonKeyCov, nonKeyEnt [][]float64) (*Set, error) {
	n := s.NumTypes()
	if len(keyCov) != n || len(keyWalk) != n || len(nonKeyCov) != n || len(nonKeyEnt) != n {
		return nil, fmt.Errorf("score: NewSet dimension mismatch: %d types, got %d/%d/%d/%d",
			n, len(keyCov), len(keyWalk), len(nonKeyCov), len(nonKeyEnt))
	}
	for t := 0; t < n; t++ {
		incs := len(s.Incident(graph.TypeID(t)))
		if len(nonKeyCov[t]) != incs || len(nonKeyEnt[t]) != incs {
			return nil, fmt.Errorf("score: NewSet type %d: %d incidences, got %d/%d",
				t, incs, len(nonKeyCov[t]), len(nonKeyEnt[t]))
		}
	}
	return &Set{schema: s, keyCov: keyCov, keyWalk: keyWalk, nonKeyCov: nonKeyCov, nonKeyEnt: nonKeyEnt}, nil
}

// Schema returns the schema graph the scores were computed against.
func (s *Set) Schema() *graph.Schema { return s.schema }

// Key returns S(τ) under the given measure.
func (s *Set) Key(m KeyMeasure, t graph.TypeID) float64 {
	switch m {
	case KeyCoverage:
		return s.keyCov[t]
	case KeyRandomWalk:
		return s.keyWalk[t]
	}
	panic("score: unknown key measure")
}

// NonKey returns Sτ(γ) for the i-th incidence of type t (index aligned with
// Schema().Incident(t)) under the given measure.
func (s *Set) NonKey(m NonKeyMeasure, t graph.TypeID, i int) float64 {
	switch m {
	case NonKeyCoverage:
		return s.nonKeyCov[t][i]
	case NonKeyEntropy:
		return s.nonKeyEnt[t][i]
	}
	panic("score: unknown non-key measure")
}

// RankKeys returns all entity types sorted by decreasing score under m,
// breaking ties by TypeID for determinism.
func (s *Set) RankKeys(m KeyMeasure) []graph.TypeID {
	ids := make([]graph.TypeID, len(s.keyCov))
	for i := range ids {
		ids[i] = graph.TypeID(i)
	}
	sort.SliceStable(ids, func(a, b int) bool {
		sa, sb := s.Key(m, ids[a]), s.Key(m, ids[b])
		if sa != sb {
			return sa > sb
		}
		return ids[a] < ids[b]
	})
	return ids
}

// RankedIncidence is one candidate non-key attribute with its score.
type RankedIncidence struct {
	Index int // index into Schema().Incident(t)
	Inc   graph.Incidence
	Score float64
}

// RankNonKeys returns the candidate non-key attributes of type t sorted by
// decreasing score under m (Theorem 3 ordering), breaking ties by incidence
// index for determinism.
func (s *Set) RankNonKeys(m NonKeyMeasure, t graph.TypeID) []RankedIncidence {
	incs := s.schema.Incident(t)
	rs := make([]RankedIncidence, len(incs))
	for i, inc := range incs {
		rs[i] = RankedIncidence{Index: i, Inc: inc, Score: s.NonKey(m, t, i)}
	}
	sort.SliceStable(rs, func(a, b int) bool {
		if rs[a].Score != rs[b].Score {
			return rs[a].Score > rs[b].Score
		}
		return rs[a].Index < rs[b].Index
	})
	return rs
}

// StationaryDistribution computes the random-walk scores Swalk over the
// undirected weighted schema view: π = πM where Mij = wij / Σk wik, with
// opts.Smoothing added between every (ordered) pair of distinct types and
// rows renormalized (the paper's convergence fix for disconnected schema
// graphs). The result sums to 1; an empty schema returns an empty slice.
//
// Iteration uses the lazy walk (M+I)/2, which has exactly the same fixed
// point π = πM but converges even on periodic (bipartite) schema graphs,
// where plain power iteration oscillates forever.
func StationaryDistribution(s *graph.Schema, opts WalkOptions) []float64 {
	return StationaryDistributionWarm(s, opts, nil)
}

// StationaryDistributionWarm is StationaryDistribution with a warm start:
// power iteration begins from prev (renormalized) instead of the uniform
// distribution when prev matches the schema's type count. With positive
// smoothing the chain is ergodic, so the fixed point is unique and the
// starting vector only affects the iteration count — after a small
// perturbation of the edge weights (one update batch on a live graph) the
// old π is already near the new fixed point and convergence takes a
// handful of iterations instead of hundreds. prev is not modified.
func StationaryDistributionWarm(s *graph.Schema, opts WalkOptions, prev []float64) []float64 {
	n := s.NumTypes()
	if n == 0 {
		return nil
	}
	if n == 1 {
		return []float64{1}
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 10000
	}
	if opts.Tolerance <= 0 {
		opts.Tolerance = 1e-12
	}

	// Row sums after smoothing: total weight + smoothing to (n-1) others.
	rowSum := make([]float64, n)
	for t := 0; t < n; t++ {
		rowSum[t] = s.TotalWeight(graph.TypeID(t)) + opts.Smoothing*float64(n-1)
	}

	pi := make([]float64, n)
	next := make([]float64, n)
	warm := false
	if len(prev) == n {
		var sum float64
		for _, p := range prev {
			if p < 0 {
				sum = 0
				break
			}
			sum += p
		}
		if sum > 0 {
			for i := range pi {
				pi[i] = prev[i] / sum
			}
			warm = true
		}
	}
	if !warm {
		for i := range pi {
			pi[i] = 1 / float64(n)
		}
	}
	for iter := 0; iter < opts.MaxIter; iter++ {
		// next = pi · M. The smoothing term contributes
		// Σ_t pi[t]·σ/rowSum[t] to every j≠t; accumulate the global sum and
		// subtract each row's own contribution.
		var smoothTotal float64
		for j := range next {
			next[j] = 0
		}
		for t := 0; t < n; t++ {
			if rowSum[t] == 0 {
				// Isolated vertex with zero smoothing: distribute uniformly
				// to keep the chain stochastic.
				share := pi[t] / float64(n)
				for j := 0; j < n; j++ {
					next[j] += share
				}
				continue
			}
			contrib := pi[t] * opts.Smoothing / rowSum[t]
			smoothTotal += contrib
			next[t] -= contrib // no self smoothing
			neighbors, weights := s.Neighbors(graph.TypeID(t))
			for i, u := range neighbors {
				next[u] += pi[t] * weights[i] / rowSum[t]
			}
		}
		if smoothTotal != 0 {
			for j := range next {
				next[j] += smoothTotal
			}
		}
		var delta float64
		for j := range next {
			next[j] = 0.5*next[j] + 0.5*pi[j] // lazy step
			delta += math.Abs(next[j] - pi[j])
		}
		pi, next = next, pi
		if delta < opts.Tolerance {
			break
		}
	}
	// Normalize defensively against floating-point drift.
	var sum float64
	for _, p := range pi {
		sum += p
	}
	if sum > 0 {
		for i := range pi {
			pi[i] /= sum
		}
	}
	return pi
}

// Entropy computes Sτent(γ) (Sec. 3.3): the entropy, in log base 10, of the
// distribution of value sets attained by the tuples of the table keyed by
// entity type t on the non-key attribute inc. Tuples with empty values are
// excluded from the denominator; two multi-valued cells are equal iff they
// contain the same set of component entities.
func Entropy(g *graph.EntityGraph, t graph.TypeID, inc graph.Incidence) float64 {
	groups := make(map[string]int)
	var nonEmpty int
	for _, e := range g.EntitiesOfType(t) {
		vals := g.Neighbors(e, inc.Rel, inc.Outgoing)
		if len(vals) == 0 {
			continue
		}
		nonEmpty++
		groups[valueSetKey(vals)]++
	}
	if nonEmpty == 0 {
		return 0
	}
	var h float64
	total := float64(nonEmpty)
	for _, nj := range groups {
		p := float64(nj) / total
		h += p * math.Log10(1/p)
	}
	return h
}

// valueSetKey canonicalizes a value set: sorted entity ids joined into a
// deterministic key, so {a,b} and {b,a} collide.
func valueSetKey(vals []graph.EntityID) string {
	ids := make([]graph.EntityID, len(vals))
	copy(ids, vals)
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	// Compact binary key: 4 bytes per id.
	buf := make([]byte, 0, len(ids)*4)
	for _, id := range ids {
		buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(buf)
}
