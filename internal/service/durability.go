package service

// Durability: recovery of live graphs from checkpoint + write-ahead log.
//
// The write handlers log each batch's raw request body into the WAL
// (tagged with a kind byte naming the route) before the epoch is
// published. Replay therefore runs the exact bytes through the exact
// code path that applied them originally — applyEdgeBatch for JSON edge
// batches, triple.Decode for native batches — against a graph in the
// same pre-batch state, so recovery reconstructs the identical sequence
// of states the server acknowledged before the crash.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"github.com/uta-db/previewtables/internal/dynamic"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/score"
	"github.com/uta-db/previewtables/internal/storage"
	"github.com/uta-db/previewtables/internal/triple"
)

// WAL record kinds: which write route produced a batch, and therefore
// how its payload replays.
const (
	batchKindEdges   byte = 1 // POST /edges: JSON edgesRequest body
	batchKindTriples byte = 2 // POST /triples: native triple-format text
)

// applyLogged applies one logged batch body to g — the shared replay
// path of WAL recovery and follower replication, running the exact bytes
// through the exact code that applied them originally. Logged batches
// were fully validated before they were logged, so a failure here means
// the durable state is inconsistent (say, a WAL paired with the wrong
// checkpoint, or a stream from a different graph) — the caller must stop
// rather than guess.
func applyLogged(g *dynamic.Graph, kind byte, payload []byte) error {
	switch kind {
	case batchKindEdges:
		var req edgesRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return fmt.Errorf("decoding edge batch: %v", err)
		}
		return applyEdgeBatch(g, req.Edges)
	case batchKindTriples:
		return triple.Decode(bytes.NewReader(payload), liveSink{g})
	default:
		return fmt.Errorf("unknown batch kind %d", kind)
	}
}

// Recovery is the result of RecoverLive: the resumed facade, the opened
// WAL ready for further appends, and the origin the replay started from.
// Register the pieces together:
//
//	reg.AddLive(name, rec.Live, WithDurability(rec.WAL), WithOrigin(rec.Origin, rec.OriginEpoch))
type Recovery struct {
	Live *dynamic.Live
	WAL  *storage.WAL
	// Origin is the state the WAL tail was replayed onto — the newest
	// checkpoint, or the caller's base graph — and OriginEpoch its epoch.
	// The replication bootstrap endpoint serves it to fresh followers, so
	// they reconstruct this process's state through the identical code
	// path (see WithOrigin).
	Origin      *graph.EntityGraph
	OriginEpoch uint64
}

// RecoverLive rebuilds one durable live graph from its persisted state
// and returns the facade resumed at the exact recovered epoch, plus the
// opened WAL ready for further appends.
//
//   - The newest valid checkpoint under ckptDir (written by
//     storage.NewDurableCheckpointer) is loaded when one exists;
//     otherwise recovery starts from base at epoch 0. ckptDir may be ""
//     when checkpointing is not configured.
//   - The WAL tail is replayed on top: records at or below the
//     checkpoint epoch are skipped (the snapshot already contains them),
//     the rest must continue the epoch sequence without a gap. A torn
//     final record — a crash mid-append — is an unacknowledged batch and
//     is discarded; OpenWAL truncates it so new appends land after the
//     last intact record.
//
// The recovered facade serves the same previews, byte for byte, that the
// pre-crash process acknowledged at that epoch.
func RecoverLive(base *graph.EntityGraph, name, ckptDir, walDir string, opts score.WalkOptions) (*Recovery, error) {
	return recoverLiveAt(base, 0, name, ckptDir, walDir, opts)
}

// recoverLiveAt is RecoverLive with the base graph pinned to a known
// epoch: a follower's base is the bootstrap snapshot it fetched from its
// leader, which is rarely epoch 0. A newer local checkpoint still wins.
func recoverLiveAt(base *graph.EntityGraph, baseEpoch uint64, name, ckptDir, walDir string, opts score.WalkOptions) (*Recovery, error) {
	g, epoch := base, baseEpoch
	if ckptDir != "" {
		snap, e, ok, err := storage.LoadLatestCheckpoint(ckptDir, name)
		if err != nil {
			return nil, fmt.Errorf("service: recovering %q: %w", name, err)
		}
		if ok && e >= epoch {
			g, epoch = snap, e
		}
	}
	origin, originEpoch := g, epoch
	dg, err := dynamic.FromEntityGraph(g)
	if err != nil {
		return nil, fmt.Errorf("service: recovering %q: %w", name, err)
	}
	recs, replayErr := storage.ReplayWAL(walDir)
	if replayErr != nil && !errors.Is(replayErr, storage.ErrCorrupt) {
		return nil, fmt.Errorf("service: recovering %q: %w", name, replayErr)
	}
	for _, rec := range recs {
		if rec.Epoch <= epoch {
			continue // already in the checkpoint
		}
		if rec.Epoch != epoch+1 {
			return nil, fmt.Errorf("service: recovering %q: WAL resumes at epoch %d but checkpoint is at %d; log truncated past its checkpoint", name, rec.Epoch, epoch)
		}
		// Reproduce the live path's score-solve trajectory, not just its
		// final state: the walk measure is a warm-started power iteration,
		// so the published scores depend on the sequence of solves (one per
		// epoch). Solving the pre-record state here — with the final state's
		// solve supplied by NewLiveAt's publish below — yields exactly one
		// solve per state in epoch order, the same trajectory the original
		// process ran, which is what makes recovered (and replicated) walk
		// scores byte-identical rather than merely converged-within-
		// tolerance. Cost: one O(K²)-per-iteration re-solve per replayed
		// batch, the same price the live path paid.
		if _, err := dg.Scores(opts); err != nil {
			return nil, fmt.Errorf("service: recovering %q: refreshing scores before epoch %d: %w", name, rec.Epoch, err)
		}
		if err := applyLogged(dg, rec.Kind, rec.Payload); err != nil {
			return nil, fmt.Errorf("service: recovering %q: replaying epoch %d: %w", name, rec.Epoch, err)
		}
		epoch = rec.Epoch
	}
	wal, err := storage.OpenWAL(walDir, storage.WALOptions{})
	if err != nil {
		return nil, fmt.Errorf("service: recovering %q: opening WAL: %w", name, err)
	}
	// Reconcile the log with the recovered epoch. The log can end behind
	// it — empty after a checkpoint-only restart, or its valid prefix
	// shortened by corruption the checkpoint already covers. Drop the
	// stale remains (every surviving record is at or below the checkpoint
	// epoch, hence redundant) and re-base, so the next batch appends
	// epoch+1 instead of tripping the contiguity check and wedging.
	if last, ok := wal.LastEpoch(); !ok || last < epoch {
		if ok {
			if err := wal.TruncateThrough(epoch); err != nil {
				wal.Close()
				return nil, fmt.Errorf("service: recovering %q: dropping stale WAL prefix: %w", name, err)
			}
		}
		if err := wal.AlignTo(epoch); err != nil {
			wal.Close()
			return nil, fmt.Errorf("service: recovering %q: %w", name, err)
		}
	}
	live, err := dynamic.NewLiveAt(dg, opts, epoch)
	if err != nil {
		wal.Close()
		return nil, fmt.Errorf("service: recovering %q: %w", name, err)
	}
	return &Recovery{Live: live, WAL: wal, Origin: origin, OriginEpoch: originEpoch}, nil
}
