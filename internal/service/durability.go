package service

// Durability: recovery of live graphs from checkpoint + write-ahead log.
//
// The write handlers log each batch's raw request body into the WAL
// (tagged with a kind byte naming the route) before the epoch is
// published. Replay therefore runs the exact bytes through the exact
// code path that applied them originally — applyEdgeBatch for JSON edge
// batches, triple.Decode for native batches — against a graph in the
// same pre-batch state, so recovery reconstructs the identical sequence
// of states the server acknowledged before the crash.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"github.com/uta-db/previewtables/internal/dynamic"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/score"
	"github.com/uta-db/previewtables/internal/storage"
	"github.com/uta-db/previewtables/internal/triple"
)

// WAL record kinds: which write route produced a batch, and therefore
// how its payload replays.
const (
	batchKindEdges   byte = 1 // POST /edges: JSON edgesRequest body
	batchKindTriples byte = 2 // POST /triples: native triple-format text
)

// replayRecord applies one logged batch to g. Logged batches were fully
// validated before they were logged, so a failure here means the durable
// state is inconsistent (say, a WAL paired with the wrong checkpoint) —
// recovery must stop rather than guess.
func replayRecord(g *dynamic.Graph, rec storage.WALRecord) error {
	switch rec.Kind {
	case batchKindEdges:
		var req edgesRequest
		if err := json.Unmarshal(rec.Payload, &req); err != nil {
			return fmt.Errorf("decoding edge batch: %v", err)
		}
		return applyEdgeBatch(g, req.Edges)
	case batchKindTriples:
		return triple.Decode(bytes.NewReader(rec.Payload), liveSink{g})
	default:
		return fmt.Errorf("unknown batch kind %d", rec.Kind)
	}
}

// RecoverLive rebuilds one durable live graph from its persisted state
// and returns the facade resumed at the exact recovered epoch, plus the
// opened WAL ready for further appends (register both together:
// reg.AddLive(name, live, WithDurability(wal))).
//
//   - The newest valid checkpoint under ckptDir (written by
//     storage.NewDurableCheckpointer) is loaded when one exists;
//     otherwise recovery starts from base at epoch 0. ckptDir may be ""
//     when checkpointing is not configured.
//   - The WAL tail is replayed on top: records at or below the
//     checkpoint epoch are skipped (the snapshot already contains them),
//     the rest must continue the epoch sequence without a gap. A torn
//     final record — a crash mid-append — is an unacknowledged batch and
//     is discarded; OpenWAL truncates it so new appends land after the
//     last intact record.
//
// The recovered facade serves the same previews, byte for byte, that the
// pre-crash process acknowledged at that epoch.
func RecoverLive(base *graph.EntityGraph, name, ckptDir, walDir string, opts score.WalkOptions) (*dynamic.Live, *storage.WAL, error) {
	g, epoch := base, uint64(0)
	if ckptDir != "" {
		snap, e, ok, err := storage.LoadLatestCheckpoint(ckptDir, name)
		if err != nil {
			return nil, nil, fmt.Errorf("service: recovering %q: %w", name, err)
		}
		if ok {
			g, epoch = snap, e
		}
	}
	dg, err := dynamic.FromEntityGraph(g)
	if err != nil {
		return nil, nil, fmt.Errorf("service: recovering %q: %w", name, err)
	}
	recs, replayErr := storage.ReplayWAL(walDir)
	if replayErr != nil && !errors.Is(replayErr, storage.ErrCorrupt) {
		return nil, nil, fmt.Errorf("service: recovering %q: %w", name, replayErr)
	}
	for _, rec := range recs {
		if rec.Epoch <= epoch {
			continue // already in the checkpoint
		}
		if rec.Epoch != epoch+1 {
			return nil, nil, fmt.Errorf("service: recovering %q: WAL resumes at epoch %d but checkpoint is at %d; log truncated past its checkpoint", name, rec.Epoch, epoch)
		}
		if err := replayRecord(dg, rec); err != nil {
			return nil, nil, fmt.Errorf("service: recovering %q: replaying epoch %d: %w", name, rec.Epoch, err)
		}
		epoch = rec.Epoch
	}
	wal, err := storage.OpenWAL(walDir, storage.WALOptions{})
	if err != nil {
		return nil, nil, fmt.Errorf("service: recovering %q: opening WAL: %w", name, err)
	}
	// Reconcile the log with the recovered epoch. The log can end behind
	// it — empty after a checkpoint-only restart, or its valid prefix
	// shortened by corruption the checkpoint already covers. Drop the
	// stale remains (every surviving record is at or below the checkpoint
	// epoch, hence redundant) and re-base, so the next batch appends
	// epoch+1 instead of tripping the contiguity check and wedging.
	if last, ok := wal.LastEpoch(); !ok || last < epoch {
		if ok {
			if err := wal.TruncateThrough(epoch); err != nil {
				wal.Close()
				return nil, nil, fmt.Errorf("service: recovering %q: dropping stale WAL prefix: %w", name, err)
			}
		}
		if err := wal.AlignTo(epoch); err != nil {
			wal.Close()
			return nil, nil, fmt.Errorf("service: recovering %q: %w", name, err)
		}
	}
	live, err := dynamic.NewLiveAt(dg, opts, epoch)
	if err != nil {
		wal.Close()
		return nil, nil, fmt.Errorf("service: recovering %q: %w", name, err)
	}
	return live, wal, nil
}
