package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/uta-db/previewtables/internal/core"
	"github.com/uta-db/previewtables/internal/dynamic"
	"github.com/uta-db/previewtables/internal/fig1"
	"github.com/uta-db/previewtables/internal/score"
)

// newMutableServer registers the Fig. 1 graph as a live graph named
// "fig1" and returns the pieces tests assert on.
func newMutableServer(t testing.TB) (*Registry, *dynamic.Live, *Server, *httptest.Server) {
	t.Helper()
	dg, err := dynamic.FromEntityGraph(fig1.Graph())
	if err != nil {
		t.Fatal(err)
	}
	live, err := dynamic.NewLive(dg, score.DefaultWalkOptions())
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.AddLive("fig1", live); err != nil {
		t.Fatal(err)
	}
	srv := New(reg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return reg, live, srv, ts
}

// post sends a body and returns status and response bytes.
func post(t testing.TB, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// mutationDoc mirrors mutationResponse for decoding.
type mutationDoc struct {
	Graph        string `json:"graph"`
	Epoch        uint64 `json:"epoch"`
	AppliedEdges int    `json:"applied_edges"`
	Stats        struct {
		Edges    int     `json:"edges"`
		Entities int     `json:"entities"`
		Mutable  bool    `json:"mutable"`
		Epoch    *uint64 `json:"epoch"`
	} `json:"stats"`
}

func TestPostEdgesAppliesBatch(t *testing.T) {
	_, live, _, ts := newMutableServer(t)
	before := live.Snapshot().Stats

	body := `{"edges": [
		{"from": "Danny Elfman", "rel": "Music", "from_type": "FILM COMPOSER", "to_type": "` + fig1.Film + `", "to": "Men in Black"},
		{"from": "Danny Elfman", "rel": "Music", "to": "Men in Black II"}
	]}`
	status, raw := post(t, ts.URL+"/v1/graphs/fig1/edges", body)
	if status != http.StatusOK {
		t.Fatalf("POST edges: status %d body %s", status, raw)
	}
	var doc mutationDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Graph != "fig1" || doc.Epoch != 1 || doc.AppliedEdges != 2 {
		t.Fatalf("mutation echo: %+v", doc)
	}
	if doc.Stats.Edges != before.Edges+2 || !doc.Stats.Mutable || doc.Stats.Epoch == nil || *doc.Stats.Epoch != 1 {
		t.Fatalf("mutation stats: %+v (before %+v)", doc.Stats, before)
	}
	if live.Refreshes() != 1 {
		t.Fatalf("refreshes = %d, want 1", live.Refreshes())
	}

	// The untyped second edge resolved against the batch-declared rel: both
	// land on the same relationship type.
	g := live.Snapshot().Frozen
	composer, ok := g.TypeByName("FILM COMPOSER")
	if !ok {
		t.Fatal("batch did not declare FILM COMPOSER")
	}
	if got := g.TypeCoverage(composer); got != 1 {
		t.Fatalf("composer coverage = %d, want 1", got)
	}

	// Stats and preview now carry the epoch.
	var stats struct {
		Epoch   *uint64 `json:"epoch"`
		Mutable bool    `json:"mutable"`
		Edges   int     `json:"edges"`
	}
	if status := getJSON(t, ts.URL+"/v1/graphs/fig1/stats", &stats); status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	if !stats.Mutable || stats.Epoch == nil || *stats.Epoch != 1 || stats.Edges != before.Edges+2 {
		t.Fatalf("stats after mutation: %+v", stats)
	}
	var pv struct {
		Epoch *uint64 `json:"epoch"`
	}
	if status := getJSON(t, ts.URL+"/v1/graphs/fig1/preview?k=2&n=3", &pv); status != http.StatusOK {
		t.Fatalf("preview: %d", status)
	}
	if pv.Epoch == nil || *pv.Epoch != 1 {
		t.Fatalf("preview epoch = %v, want 1", pv.Epoch)
	}
}

func TestPostTriplesAppliesBatch(t *testing.T) {
	_, live, _, ts := newMutableServer(t)
	body := `# a producer credit and a brand-new type
type "STUDIO"
entity "Columbia Pictures" "STUDIO"
edge "Columbia Pictures" "Produced By" "STUDIO" "` + fig1.Film + `" "Men in Black"
edge "Columbia Pictures" "Produced By" "STUDIO" "` + fig1.Film + `" "Hancock"
`
	status, raw := post(t, ts.URL+"/v1/graphs/fig1/triples", body)
	if status != http.StatusOK {
		t.Fatalf("POST triples: status %d body %s", status, raw)
	}
	var doc mutationDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Epoch != 1 || doc.AppliedEdges != 2 {
		t.Fatalf("mutation echo: %+v", doc)
	}
	snap := live.Snapshot()
	if _, ok := snap.Frozen.TypeByName("STUDIO"); !ok {
		t.Fatal("triple batch did not declare STUDIO")
	}
	if snap.Epoch != 1 || live.Refreshes() != 1 {
		t.Fatalf("epoch %d refreshes %d, want 1/1", snap.Epoch, live.Refreshes())
	}
}

// TestStaticGraphEpochless pins the static path: no epoch or mutable
// fields anywhere, and writes are refused with 405.
func TestStaticGraphEpochless(t *testing.T) {
	_, ts := newTestServer(t)
	var stats map[string]json.RawMessage
	if status := getJSON(t, ts.URL+"/v1/graphs/fig1/stats", &stats); status != http.StatusOK {
		t.Fatal("stats failed")
	}
	if _, ok := stats["epoch"]; ok {
		t.Fatalf("static stats carry an epoch: %v", stats)
	}
	if _, ok := stats["mutable"]; ok {
		t.Fatalf("static stats claim mutability: %v", stats)
	}
	var pv map[string]json.RawMessage
	if status := getJSON(t, ts.URL+"/v1/graphs/fig1/preview?k=1&n=1", &pv); status != http.StatusOK {
		t.Fatal("preview failed")
	}
	if _, ok := pv["epoch"]; ok {
		t.Fatalf("static preview carries an epoch: %v", pv)
	}

	status, raw := post(t, ts.URL+"/v1/graphs/fig1/edges", `{"edges":[{"from":"a","rel":"r","to":"b"}]}`)
	if status != http.StatusMethodNotAllowed {
		t.Fatalf("write to read-only graph: status %d body %s, want 405", status, raw)
	}
	if !strings.Contains(string(raw), "read-only") {
		t.Fatalf("read-only error body: %s", raw)
	}
}

func TestWriteErrorPaths(t *testing.T) {
	_, live, srv, ts := newMutableServer(t)
	srv.MaxBatchEdges = 4
	srv.MaxBodyBytes = 1 << 16

	edge := func(docs ...string) string {
		return `{"edges":[` + strings.Join(docs, ",") + `]}`
	}
	big := make([]string, 5)
	for i := range big {
		big[i] = fmt.Sprintf(`{"from":"f%d","rel":"Genres","to":"g"}`, i)
	}
	cases := []struct {
		name   string
		path   string
		body   string
		status int
		errHas string
	}{
		{"malformed JSON", "/v1/graphs/fig1/edges", `{"edges": [`, http.StatusBadRequest, "decoding"},
		{"empty batch", "/v1/graphs/fig1/edges", `{"edges": []}`, http.StatusBadRequest, "empty batch"},
		{"missing fields", "/v1/graphs/fig1/edges", edge(`{"from":"a","to":"b"}`), http.StatusBadRequest, "required"},
		{"one-sided typing", "/v1/graphs/fig1/edges", edge(`{"from":"a","rel":"r","from_type":"X","to":"b"}`), http.StatusBadRequest, "together"},
		{"unknown rel", "/v1/graphs/fig1/edges", edge(`{"from":"a","rel":"Narrated By","to":"b"}`), http.StatusUnprocessableEntity, "unknown relationship type"},
		{"ambiguous rel", "/v1/graphs/fig1/edges", edge(`{"from":"Will Smith","rel":"Award Winners","to":"Saturn Award"}`), http.StatusUnprocessableEntity, "ambiguous"},
		{"unknown graph", "/v1/graphs/nope/edges", edge(`{"from":"a","rel":"r","to":"b"}`), http.StatusNotFound, "no graph"},
		{"oversized batch", "/v1/graphs/fig1/edges", edge(big...), http.StatusRequestEntityTooLarge, "exceeds limit"},
		{"oversized body", "/v1/graphs/fig1/edges", `{"edges":[{"from":"` + strings.Repeat("x", 1<<17) + `","rel":"r","to":"b"}]}`, http.StatusRequestEntityTooLarge, "exceeds"},
		{"triples syntax error", "/v1/graphs/fig1/triples", "edge only two\n", http.StatusBadRequest, "line 1"},
		{"triples empty", "/v1/graphs/fig1/triples", "# nothing\n", http.StatusBadRequest, "empty batch"},
		{"triples oversized batch", "/v1/graphs/fig1/triples",
			strings.Repeat(`edge "a" "r" "X" "Y" "b"`+"\n", 5), http.StatusRequestEntityTooLarge, "exceeds limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, raw := post(t, ts.URL+tc.path, tc.body)
			if status != tc.status {
				t.Fatalf("status %d body %s, want %d", status, raw, tc.status)
			}
			var doc struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(raw, &doc); err != nil || doc.Error == "" {
				t.Fatalf("error body %s (%v)", raw, err)
			}
			if !strings.Contains(doc.Error, tc.errHas) {
				t.Fatalf("error %q does not mention %q", doc.Error, tc.errHas)
			}
		})
	}
	// None of the failures mutated anything: epoch 0, zero refreshes.
	if snap := live.Snapshot(); snap.Epoch != 0 || live.Refreshes() != 0 {
		t.Fatalf("failed batches mutated the graph: epoch %d, refreshes %d", snap.Epoch, live.Refreshes())
	}

	// Method discipline on the write routes.
	resp, err := http.Get(ts.URL + "/v1/graphs/fig1/edges")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "POST" {
		t.Fatalf("GET on write route: status %d allow %q", resp.StatusCode, resp.Header.Get("Allow"))
	}
}

// TestSearchBudgetOnMutableGraph keeps the ErrSearchBudget → 422 mapping
// intact on the live path, across an epoch bump.
func TestSearchBudgetOnMutableGraph(t *testing.T) {
	_, _, srv, ts := newMutableServer(t)
	srv.SearchBudget = 2
	if status, raw := post(t, ts.URL+"/v1/graphs/fig1/edges",
		`{"edges":[{"from":"Peter Berg","rel":"Director","to":"I, Robot"}]}`); status != http.StatusOK {
		t.Fatalf("seed mutation failed: %d %s", status, raw)
	}
	var doc struct {
		Error string `json:"error"`
	}
	status := getJSON(t, ts.URL+"/v1/graphs/fig1/preview?k=3&n=3&mode=diverse&d=0", &doc)
	if status != http.StatusUnprocessableEntity || !strings.Contains(doc.Error, "budget") {
		t.Fatalf("budget on mutable graph: status %d error %q, want 422 mentioning budget", status, doc.Error)
	}
}

// TestNoStaleDiscovererAcrossEpochs pins the invalidation contract at the
// view level: a mutation swaps the whole view, so the Discoverer and
// score set identities change, while repeated reads within one epoch
// share identities.
func TestNoStaleDiscovererAcrossEpochs(t *testing.T) {
	reg, _, _, ts := newMutableServer(t)
	gr, ok := reg.Get("fig1")
	if !ok {
		t.Fatal("graph missing")
	}
	v1 := gr.view()
	d1 := v1.Discoverer(score.KeyCoverage, score.NonKeyCoverage)
	if d1 != gr.Discoverer(score.KeyCoverage, score.NonKeyCoverage) {
		t.Fatal("same epoch handed out distinct Discoverers")
	}
	if status, raw := post(t, ts.URL+"/v1/graphs/fig1/edges",
		`{"edges":[{"from":"Alex Proyas","rel":"Director","to":"Hancock"}]}`); status != http.StatusOK {
		t.Fatalf("mutation failed: %d %s", status, raw)
	}
	v2 := gr.view()
	if v2 == v1 || v2.epoch != v1.epoch+1 {
		t.Fatalf("view not swapped: epochs %d → %d", v1.epoch, v2.epoch)
	}
	d2 := v2.Discoverer(score.KeyCoverage, score.NonKeyCoverage)
	if d2 == d1 {
		t.Fatal("stale Discoverer survived the epoch bump")
	}
	if v2.Scores() == v1.Scores() {
		t.Fatal("stale score set survived the epoch bump")
	}
	// The old view still answers consistently for in-flight requests.
	if _, err := d1.Discover(core.Constraint{K: 2, N: 3}); err != nil {
		t.Fatalf("old epoch's Discoverer broke: %v", err)
	}
}

// TestConcurrentWritesAndPreviews is the serving-layer race test: several
// writers stream disjoint edge batches while readers hammer preview,
// render and stats. Asserts, under -race: every request succeeds, epochs
// observed by each client are monotone, every batch got exactly one epoch
// and one score refresh, and the final preview matches a from-scratch
// discovery on the final frozen snapshot (no stale Discoverer or score
// set survived).
func TestConcurrentWritesAndPreviews(t *testing.T) {
	_, live, _, ts := newMutableServer(t)
	const writers, batches, readers = 4, 5, 4

	var writersWG, readersWG sync.WaitGroup
	errs := make(chan error, writers*batches+readers)
	epochs := make(chan uint64, writers*batches)
	done := make(chan struct{})

	for w := 0; w < writers; w++ {
		w := w
		writersWG.Add(1)
		go func() {
			defer writersWG.Done()
			for b := 0; b < batches; b++ {
				body := fmt.Sprintf(
					`{"edges":[{"from":"Film w%db%d","rel":"Genres","from_type":%q,"to_type":"FILM GENRE","to":"Action Film"}]}`,
					w, b, fig1.Film)
				resp, err := http.Post(ts.URL+"/v1/graphs/fig1/edges", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("writer %d batch %d: status %d body %s", w, b, resp.StatusCode, raw)
					continue
				}
				var doc mutationDoc
				if err := json.Unmarshal(raw, &doc); err != nil {
					errs <- err
					continue
				}
				epochs <- doc.Epoch
			}
		}()
	}
	for r := 0; r < readers; r++ {
		r := r
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			urls := []string{
				ts.URL + "/v1/graphs/fig1/preview?k=2&n=3",
				ts.URL + "/v1/graphs/fig1/stats",
				ts.URL + "/v1/graphs/fig1/render?k=1&n=1",
			}
			var last uint64
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				u := urls[i%len(urls)]
				resp, err := http.Get(u)
				if err != nil {
					errs <- err
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("reader %d: %s: status %d body %s", r, u, resp.StatusCode, raw)
					return
				}
				if strings.Contains(u, "render") {
					continue // text body, no epoch
				}
				var doc struct {
					Epoch *uint64 `json:"epoch"`
				}
				if err := json.Unmarshal(raw, &doc); err != nil || doc.Epoch == nil {
					errs <- fmt.Errorf("reader %d: %s: epochless body %s (%v)", r, u, raw, err)
					return
				}
				if *doc.Epoch < last {
					errs <- fmt.Errorf("reader %d: epoch regressed %d → %d", r, last, *doc.Epoch)
					return
				}
				last = *doc.Epoch
			}
		}()
	}
	// Readers stop once every writer has finished (success or failure), so
	// a failing batch surfaces as a test error instead of a hang.
	writersWG.Wait()
	close(done)
	readersWG.Wait()
	close(errs)
	close(epochs)
	for err := range errs {
		t.Error(err)
	}

	// Exactly one epoch (and one refresh) per batch: the responses carry a
	// permutation of 1..writers*batches.
	seen := map[uint64]bool{}
	for e := range epochs {
		if seen[e] {
			t.Errorf("epoch %d answered two batches", e)
		}
		seen[e] = true
	}
	if len(seen) != writers*batches {
		t.Fatalf("got %d distinct epochs, want %d", len(seen), writers*batches)
	}
	for e := uint64(1); e <= writers*batches; e++ {
		if !seen[e] {
			t.Fatalf("epoch %d never answered a batch", e)
		}
	}
	if got := live.Refreshes(); got != writers*batches {
		t.Fatalf("score refreshes = %d, want exactly %d (one per batch)", got, writers*batches)
	}

	// The served preview now matches a from-scratch discovery against the
	// final snapshot: no stale Discoverer or scores.
	snap := live.Snapshot()
	if snap.Epoch != writers*batches {
		t.Fatalf("final epoch = %d, want %d", snap.Epoch, writers*batches)
	}
	want, err := core.New(score.Compute(snap.Frozen, score.DefaultWalkOptions()),
		core.Options{Key: score.KeyCoverage, NonKey: score.NonKeyCoverage}).
		Discover(core.Constraint{K: 2, N: 3})
	if err != nil {
		t.Fatal(err)
	}
	var final struct {
		Epoch   *uint64 `json:"epoch"`
		Preview struct {
			Score float64 `json:"score"`
		} `json:"preview"`
	}
	if status := getJSON(t, ts.URL+"/v1/graphs/fig1/preview?k=2&n=3", &final); status != http.StatusOK {
		t.Fatalf("final preview: %d", status)
	}
	if final.Epoch == nil || *final.Epoch != uint64(writers*batches) {
		t.Fatalf("final preview epoch = %v, want %d", final.Epoch, writers*batches)
	}
	if final.Preview.Score != want.Score {
		t.Fatalf("final preview score = %v, want %v (stale snapshot served?)", final.Preview.Score, want.Score)
	}
}

// TestWriteRouteMethodDiscipline is direct coverage of the write-path
// 405 surface, until now only exercised incidentally: every non-POST
// method on the write routes is refused with Allow: POST, POST on the
// read routes is refused with Allow: GET, HEAD, and a write to a
// read-only graph is 405 with a deliberately empty Allow (the route
// supports no method at all; see requireMutable).
func TestWriteRouteMethodDiscipline(t *testing.T) {
	_, _, _, mutTS := newMutableServer(t)
	_, staticTS := newTestServer(t)

	do := func(method, url, body string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, url, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	for _, route := range []string{"edges", "triples"} {
		for _, method := range []string{http.MethodGet, http.MethodHead, http.MethodPut, http.MethodDelete, http.MethodPatch} {
			resp := do(method, mutTS.URL+"/v1/graphs/fig1/"+route, "")
			if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "POST" {
				t.Errorf("%s /%s on mutable graph: status %d allow %q, want 405 / POST",
					method, route, resp.StatusCode, resp.Header.Get("Allow"))
			}
		}
	}
	for _, route := range []string{"stats", "preview", "render"} {
		resp := do(http.MethodPost, mutTS.URL+"/v1/graphs/fig1/"+route, "{}")
		if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "GET, HEAD" {
			t.Errorf("POST /%s: status %d allow %q, want 405 / GET, HEAD",
				route, resp.StatusCode, resp.Header.Get("Allow"))
		}
	}
	for _, route := range []string{"edges", "triples"} {
		resp := do(http.MethodPost, staticTS.URL+"/v1/graphs/fig1/"+route, "{}")
		allow, present := resp.Header["Allow"]
		if resp.StatusCode != http.StatusMethodNotAllowed || !present || len(allow) != 1 || allow[0] != "" {
			t.Errorf("POST /%s on static graph: status %d allow %v, want 405 with explicitly empty Allow",
				route, resp.StatusCode, allow)
		}
	}
}
