package service

// Replication endpoints: WAL shipping from a leader to its followers.
//
//	GET  /v1/replication/{graph}/status             replication status doc
//	GET  /v1/replication/{graph}/wal?from=E&wait=D  shipped records with epochs > E
//	GET  /v1/replication/{graph}/checkpoint         bootstrap snapshot + epoch header
//	POST /v1/replication/promote                    follower → leader, whole node
//	POST /v1/replication/fence                      fence exchange (fence-enabled nodes)
//	POST /v1/replication/{graph}/adopt              begin adopting a graph (migration)
//	POST /v1/replication/{graph}/promote            complete an adoption, one graph
//
// The wal route streams records in the shipped framing (the segment
// record framing verbatim; see storage.EncodeWALRecord), capped at the
// durable epoch observed when the response started. With nothing new to
// ship it long-polls — the publish broadcast wakes it — and answers an
// empty 200 at the wait deadline, so a quiet leader costs a follower one
// cheap request per wait interval. A `from` behind the truncation
// horizon answers 410 Gone: the records are no longer on disk and the
// follower must re-bootstrap from the checkpoint route; a `from` ahead
// of the leader's durable epoch answers 409 Conflict — the follower is
// following the wrong leader (or a reset one) and tailing cannot
// reconcile them.
//
// The checkpoint route serves the origin state (WithOrigin) while the
// WAL still reaches back to it — a follower restoring it and replaying
// the full tail reconstructs the leader's state through the identical
// code path, which is what makes reads byte-identical — and falls back
// to the current frozen snapshot once truncation has moved past the
// origin (count-exact; entropy equal to the last ulp, the same
// asymmetry as the leader's own checkpoint recovery).
//
// Replication status deliberately lives under /v1/replication, not in
// the graph stats document: every /v1/graphs read surface stays
// byte-identical between a leader and its caught-up followers, which is
// the invariant the differential tests pin.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/uta-db/previewtables/internal/storage"
)

// epochHeader carries an epoch out of band: the durable epoch on wal
// responses, the snapshot's epoch on checkpoint responses.
const epochHeader = "X-Previewtables-Epoch"

// leaderHeader names the leader on a follower's 503 write refusals.
const leaderHeader = "X-Previewtables-Leader"

// fenceHeader carries a fencing epoch: the router stamps it on proxied
// writes and on forwarded replication responses (followers adopt it
// from there), carries it on promote requests, and 409 refusals echo
// the node's own fence in it. See Registry.InstallFence.
const fenceHeader = "X-Previewtables-Fence"

// DefaultReplicationWait bounds the wal route's long poll; a follower's
// request-level wait parameter can only shorten it.
const DefaultReplicationWait = 25 * time.Second

// replStatusDoc is the JSON body of GET /v1/replication/{graph}/status.
// Pointer fields appear per role: a leader reports its durable epoch,
// origin and horizon; a follower additionally reports its replication
// loop's progress against the leader.
type replStatusDoc struct {
	Graph string `json:"graph"`
	// Role is "leader" for a graph shipping its own WAL, "follower" for
	// a replica applying a shipped one.
	Role string `json:"role"`
	// Epoch is the published epoch readers currently see.
	Epoch uint64 `json:"epoch"`
	// DurableEpoch is the WAL's last epoch — what a follower can reach.
	DurableEpoch uint64 `json:"durable_epoch"`
	// OriginEpoch is the epoch of the bootstrap state this process
	// started from (see WithOrigin); present when an origin is held.
	OriginEpoch *uint64 `json:"origin_epoch,omitempty"`
	// Horizon is the lowest `from` the wal route can serve: records with
	// epochs <= Horizon-1 may be truncated away. A follower at or above
	// Horizon can tail; one below it must re-bootstrap.
	Horizon uint64 `json:"horizon"`

	// Leader, AppliedEpoch, LeaderEpoch, Lag and Resyncs describe a
	// follower's replication loop (absent on leaders).
	Leader       string  `json:"leader,omitempty"`
	AppliedEpoch *uint64 `json:"applied_epoch,omitempty"`
	LeaderEpoch  *uint64 `json:"leader_epoch,omitempty"`
	Lag          *uint64 `json:"lag,omitempty"`
	Resyncs      *uint64 `json:"resyncs,omitempty"`
	Bootstraps   *uint64 `json:"bootstraps,omitempty"`
	// Error is the replication loop's last failure, if it is currently
	// failing (cleared by the next successful poll).
	Error string `json:"error,omitempty"`
}

// handleReplication dispatches /v1/replication/{graph}/{action}, plus
// the node-level promote action (no graph segment: promotion flips the
// whole node, every followed graph at once).
func (s *Server) handleReplication(w http.ResponseWriter, r *http.Request, rest string) {
	switch rest {
	case "promote":
		s.handlePromote(w, r)
		return
	case "fence":
		s.handleFence(w, r)
		return
	}
	name, action, ok := strings.Cut(rest, "/")
	if !ok || name == "" || strings.Contains(action, "/") {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no such route %q", r.URL.Path))
		return
	}
	if action == "adopt" {
		// Adoption targets a graph this node does NOT yet hold — resolve
		// the route before the registry lookup that would 404 it.
		s.handleAdopt(w, r, name)
		return
	}
	gr, ok := s.reg.Get(name)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no graph %q; see /v1/graphs", name))
		return
	}
	switch action {
	case "status", "wal", "checkpoint":
	case "promote":
		s.handleGraphPromote(w, r, gr)
		return
	default:
		s.writeError(w, http.StatusNotFound,
			fmt.Errorf("no such replication action %q: want status, wal, checkpoint, adopt or promote", action))
		return
	}
	if !s.requireRead(w, r) {
		return
	}
	// A volatile follower has replication status but no WAL of its own to
	// ship; only the shipping routes require one.
	src := gr.replSrc()
	if src == nil && !(action == "status" && gr.FollowState() != nil) {
		s.writeError(w, http.StatusNotFound,
			fmt.Errorf("graph %q is not replicated: it has no write-ahead log (previewd -mutable -wal-dir)", name))
		return
	}
	switch action {
	case "status":
		s.handleReplStatus(w, gr, src)
	case "wal":
		s.handleReplWAL(w, r, gr, src)
	case "checkpoint":
		s.handleReplCheckpoint(w, gr, src)
	}
}

// handlePromote serves POST /v1/replication/promote: the admin action a
// fleet router invokes on a caught-up follower when its leader dies.
// The route exists only on nodes started as followers (Server.OnPromote
// set) — everywhere else it answers 404, before any method check, like
// every other nonexistent resource.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if s.OnPromote == nil {
		s.writeError(w, http.StatusNotFound,
			fmt.Errorf("this node is not a follower; there is nothing to promote"))
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	// The router carries the shard's new fence on the promote request;
	// installing it BEFORE the flip means that from the very first write
	// this node acknowledges as leader, it is fenced against the router
	// ever re-issuing the old configuration's stamps.
	if stamp := r.Header.Get(fenceHeader); stamp != "" {
		f, err := strconv.ParseUint(stamp, 10, 64)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad %s header %q: %v", fenceHeader, stamp, err))
			return
		}
		if err := s.reg.InstallFence(f); err != nil {
			s.writeError(w, http.StatusInternalServerError, fmt.Errorf("installing fence %d: %w", f, err))
			return
		}
	}
	if err := s.OnPromote(); err != nil {
		s.writeError(w, http.StatusInternalServerError, fmt.Errorf("promoting: %w", err))
		return
	}
	s.writeJSON(w, struct {
		Promoted bool `json:"promoted"`
	}{Promoted: true})
}

// handleFence serves POST /v1/replication/fence, the fence exchange:
// the caller proposes a fence, the node raises its persisted fence to
// at least that value, and the response reports the fence now in force
// — max(proposed, persisted). The exchange is how a router (re)learns
// a shard's fence: a freshly started router proposes 1 and adopts
// whatever comes back, so a router restart can never regress a fleet
// below fences already persisted. The route exists only on
// fence-enabled nodes (previewd with -wal-dir); elsewhere it 404s like
// any other nonexistent resource.
func (s *Server) handleFence(w http.ResponseWriter, r *http.Request) {
	cur, on := s.reg.Fencing()
	if !on {
		s.writeError(w, http.StatusNotFound,
			fmt.Errorf("this node does not persist a fence; start previewd with -wal-dir to join a fleet"))
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	var req struct {
		Fence uint64 `json:"fence"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad fence body: %v", err))
		return
	}
	if req.Fence > cur {
		if err := s.reg.InstallFence(req.Fence); err != nil {
			s.writeError(w, http.StatusInternalServerError, fmt.Errorf("installing fence %d: %w", req.Fence, err))
			return
		}
	}
	cur, _ = s.reg.Fencing()
	s.writeJSON(w, struct {
		Fence uint64 `json:"fence"`
	}{Fence: cur})
}

// handleAdopt serves POST /v1/replication/{graph}/adopt: begin tailing
// a graph this node does not yet hold from another shard's leader (the
// first phase of migrating it here). The body names the source:
// {"source": "http://old-leader:8080"}. Fence-gated; 409 when the graph
// is already registered here (adopting over live state would be a
// divergence bomb, and a retry of an in-flight adoption should land on
// the status route, not start over).
func (s *Server) handleAdopt(w http.ResponseWriter, r *http.Request, name string) {
	if s.OnAdopt == nil {
		s.writeError(w, http.StatusNotFound,
			fmt.Errorf("this node does not adopt graphs at runtime; start previewd with -mutable -wal-dir to be a migration target"))
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	if !s.adminFenceOK(w, r) {
		return
	}
	var req struct {
		Source string `json:"source"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&req); err != nil || req.Source == "" {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("adopt body must name a source leader URL: %v", err))
		return
	}
	if _, ok := s.reg.Get(name); ok {
		s.writeError(w, http.StatusConflict,
			fmt.Errorf("graph %q is already registered on this node", name))
		return
	}
	if err := s.OnAdopt(name, req.Source); err != nil {
		s.writeError(w, http.StatusBadGateway, fmt.Errorf("adopting %q from %s: %w", name, req.Source, err))
		return
	}
	s.writeJSON(w, struct {
		Adopting string `json:"adopting"`
		Source   string `json:"source"`
	}{Adopting: name, Source: req.Source})
}

// handleGraphPromote serves POST /v1/replication/{graph}/promote: the
// cutover half of adoption — stop tailing the source and open the graph
// for writes on this node. Unlike the node-level promote (which flips a
// whole follower process), this flips one graph on an otherwise-leading
// node. Fence-gated.
func (s *Server) handleGraphPromote(w http.ResponseWriter, r *http.Request, gr *Graph) {
	if s.OnGraphPromote == nil {
		s.writeError(w, http.StatusNotFound,
			fmt.Errorf("this node does not promote single graphs; see POST /v1/replication/promote for whole-node promotion"))
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	if !s.adminFenceOK(w, r) {
		return
	}
	if err := s.OnGraphPromote(gr.Name()); err != nil {
		s.writeError(w, http.StatusInternalServerError, fmt.Errorf("promoting %q: %w", gr.Name(), err))
		return
	}
	s.writeJSON(w, struct {
		Promoted string `json:"promoted"`
	}{Promoted: gr.Name()})
}

// walRange reads the shippable bracket: the durable epoch and the lowest
// `from` still on disk.
func walRange(src *replSource) (horizon, durable uint64) {
	durable, _ = src.wal.LastEpoch()
	horizon = durable // empty log: only a caught-up follower can tail
	if first, ok := src.wal.FirstEpoch(); ok {
		horizon = first - 1
	}
	return horizon, durable
}

func (s *Server) handleReplStatus(w http.ResponseWriter, gr *Graph, src *replSource) {
	doc := replStatusDoc{
		Graph: gr.Name(),
		Role:  "leader",
		Epoch: gr.view().epoch,
	}
	if src != nil {
		doc.Horizon, doc.DurableEpoch = walRange(src)
		if src.origin != nil {
			e := src.originEpoch
			doc.OriginEpoch = &e
		}
	}
	if st := gr.FollowState(); st != nil {
		doc.Role = "follower"
		doc.Leader = s.reg.Leader()
		applied, leaderEpoch := st.AppliedEpoch, st.LeaderEpoch
		doc.AppliedEpoch = &applied
		doc.LeaderEpoch = &leaderEpoch
		lag := uint64(0)
		if leaderEpoch > applied {
			lag = leaderEpoch - applied
		}
		doc.Lag = &lag
		resyncs, bootstraps := st.Resyncs, st.Bootstraps
		doc.Resyncs = &resyncs
		doc.Bootstraps = &bootstraps
		doc.Error = st.Err
	}
	s.writeJSON(w, doc)
}

// handleReplWAL ships records with epochs in (from, durable], long-polling
// when the follower is caught up.
func (s *Server) handleReplWAL(w http.ResponseWriter, r *http.Request, gr *Graph, src *replSource) {
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("from must be the last applied epoch: %v", err))
		return
	}
	wait := s.replicationWait()
	if ws := q.Get("wait"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil || d < 0 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad wait %q", ws))
			return
		}
		if d < wait {
			wait = d
		}
	}
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		// Grab the broadcast channel BEFORE reading the durable epoch: a
		// publish landing between the two closes the channel we hold, so
		// the select below fires and the loop re-checks — the wake-up can
		// never slip between the check and the wait.
		changed := gr.epochChanged()
		horizon, durable := walRange(src)
		switch {
		case from > durable:
			s.writeError(w, http.StatusConflict, fmt.Errorf(
				"follower epoch %d is ahead of the leader's durable epoch %d; the nodes have diverged", from, durable))
			return
		case from < horizon:
			s.writeError(w, http.StatusGone, fmt.Errorf(
				"epoch %d is behind the truncation horizon %d; bootstrap from /v1/replication/%s/checkpoint", from, horizon, gr.Name()))
			return
		case from < durable:
			s.shipWAL(w, gr, src, from, durable)
			return
		}
		// Caught up: wait for the next publish (records are durable
		// strictly before their epoch publishes, so by the time the
		// broadcast fires the record it announces is shippable).
		select {
		case <-changed:
		case <-deadline.C:
			w.Header().Set(epochHeader, strconv.FormatUint(durable, 10))
			w.Header().Set("Content-Type", "application/octet-stream")
			w.WriteHeader(http.StatusOK) // empty body: nothing new
			return
		case <-r.Context().Done():
			return
		}
	}
}

// maxShipRecords chunks one wal response: a follower far behind gets its
// backlog in bounded pieces (it re-requests from its advanced cursor
// immediately, since it is still behind the durable epoch), so the
// leader never parses or buffers the whole history for one request.
const maxShipRecords = 4096

// shipWAL writes the records in (from, durable] in the shipped framing,
// chunked at maxShipRecords.
func (s *Server) shipWAL(w http.ResponseWriter, gr *Graph, src *replSource, from, durable uint64) {
	recs, err := storage.ReadWALAfterN(src.wal.Dir(), from, maxShipRecords)
	// Drop records past the durable cap: they may be mid-append, and a
	// torn or damaged tail beyond the cap is not the follower's problem.
	for len(recs) > 0 && recs[len(recs)-1].Epoch > durable {
		recs = recs[:len(recs)-1]
	}
	// A full chunk is a complete answer even if a scan error lurks past
	// it or the durable epoch is further ahead.
	if err != nil && len(recs) < maxShipRecords && (len(recs) == 0 || recs[len(recs)-1].Epoch < durable) {
		if errors.Is(err, fs.ErrNotExist) || errors.Is(err, storage.ErrCorrupt) {
			// A checkpoint truncated segments between our horizon check and
			// the read; the follower re-requests and gets the 410 properly.
			s.writeError(w, http.StatusGone, fmt.Errorf(
				"log moved while reading from epoch %d; retry (%v)", from, err))
		} else {
			s.writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	if len(recs) == 0 || recs[0].Epoch != from+1 {
		s.writeError(w, http.StatusGone, fmt.Errorf(
			"epoch %d is no longer contiguous with the log; bootstrap from /v1/replication/%s/checkpoint", from, gr.Name()))
		return
	}
	w.Header().Set(epochHeader, strconv.FormatUint(durable, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	var buf []byte
	for _, rec := range recs {
		buf = storage.AppendWALRecord(buf[:0], rec)
		if _, err := w.Write(buf); err != nil {
			return // follower went away; it will re-request from its cursor
		}
	}
}

// handleReplCheckpoint serves a bootstrap snapshot: the origin while the
// WAL still reaches back to it, else the current frozen snapshot.
func (s *Server) handleReplCheckpoint(w http.ResponseWriter, gr *Graph, src *replSource) {
	horizon, durable := walRange(src)
	if src.origin != nil && src.originEpoch >= horizon {
		w.Header().Set(epochHeader, strconv.FormatUint(src.originEpoch, 10))
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := storage.Write(w, src.origin); err != nil {
			return // headers are out; the follower's decoder rejects the tear
		}
		return
	}
	live := gr.Live()
	if live == nil { // unreachable: replSrc implies live
		s.writeError(w, http.StatusInternalServerError, errors.New("replicated graph has no live facade"))
		return
	}
	snap := live.Snapshot()
	if snap.Epoch < horizon || snap.Epoch > durable {
		// Published and durable state are reconciling (a write is between
		// its log append and its publish); the follower just retries.
		s.writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("snapshot epoch %d outside shippable range [%d,%d]; retry", snap.Epoch, horizon, durable))
		return
	}
	w.Header().Set(epochHeader, strconv.FormatUint(snap.Epoch, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	_ = storage.Write(w, snap.Frozen)
}

// replicationWait returns the server's long-poll bound.
func (s *Server) replicationWait() time.Duration {
	if s.ReplicationWait > 0 {
		return s.ReplicationWait
	}
	return DefaultReplicationWait
}
