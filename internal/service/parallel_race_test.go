package service

// Race coverage for the parallel hot paths: preview reads — each fanning
// scoring and search out over a worker pool — racing live write batches.
// Run under -race by CI. The assertions are the epoch discipline (monotone
// per reader) and the absence of torn score.Set reads: after the dust
// settles, a preview served over HTTP must equal one computed directly
// from the final snapshot's score set, which could not hold had any
// request mixed state from two epochs.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/uta-db/previewtables/internal/core"
	"github.com/uta-db/previewtables/internal/dynamic"
	"github.com/uta-db/previewtables/internal/freebase"
	"github.com/uta-db/previewtables/internal/score"
)

func TestParallelScoringUnderConcurrentWrites(t *testing.T) {
	src, err := freebase.Generate("basketball", freebase.GenOptions{
		Scale: 1e-4, Seed: 31, MinEntities: 300, MinEdges: 1200,
	})
	if err != nil {
		t.Fatal(err)
	}
	dg, err := dynamic.FromEntityGraph(src)
	if err != nil {
		t.Fatal(err)
	}
	walkOpts := score.DefaultWalkOptions()
	walkOpts.Parallelism = 4 // every refresh runs the blocked parallel walk
	live, err := dynamic.NewLive(dg, walkOpts)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	reg.Parallelism = 4 // every Discoverer build and search fans out
	if err := reg.AddLive("bb", live); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg))
	defer ts.Close()

	// One entity pair the writers keep connecting under fresh relationship
	// instances; resolved by name so batches stay valid as the graph grows.
	rel := src.RelType(0)
	from := src.EntityName(src.EntitiesOfType(rel.From)[0])
	to := src.EntityName(src.EntitiesOfType(rel.To)[0])

	const writers, batches, readers = 3, 6, 4
	var writersWG, readersWG sync.WaitGroup
	errs := make(chan error, writers*batches+readers)
	done := make(chan struct{})

	for w := 0; w < writers; w++ {
		w := w
		writersWG.Add(1)
		go func() {
			defer writersWG.Done()
			for b := 0; b < batches; b++ {
				body := fmt.Sprintf(
					`{"edges":[{"from":%q,"rel":%q,"from_type":%q,"to_type":%q,"to":%q}]}`,
					from, rel.Name, src.TypeName(rel.From), src.TypeName(rel.To), to)
				resp, err := http.Post(ts.URL+"/v1/graphs/bb/edges", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("writer %d batch %d: status %d body %s", w, b, resp.StatusCode, raw)
				}
			}
		}()
	}

	// Readers sweep the measure pairs and modes, so the racing searches
	// exercise both the parallel Apriori and the (concise) DP path against
	// Discoverers built on the worker pool.
	queries := []string{
		"/v1/graphs/bb/preview?k=2&n=4",
		"/v1/graphs/bb/preview?k=2&n=4&key=walk&nonkey=entropy",
		"/v1/graphs/bb/preview?k=2&n=4&mode=tight&d=3",
		"/v1/graphs/bb/preview?k=2&n=4&mode=diverse&d=1&nonkey=entropy",
	}
	for r := 0; r < readers; r++ {
		r := r
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			var last uint64
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(ts.URL + queries[i%len(queries)])
				if err != nil {
					errs <- err
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("reader %d: status %d body %s", r, resp.StatusCode, raw)
					return
				}
				var doc struct {
					Epoch   *uint64 `json:"epoch"`
					Preview struct {
						Score float64 `json:"score"`
					} `json:"preview"`
				}
				if err := json.Unmarshal(raw, &doc); err != nil || doc.Epoch == nil {
					errs <- fmt.Errorf("reader %d: bad body %s (%v)", r, raw, err)
					return
				}
				if *doc.Epoch < last {
					errs <- fmt.Errorf("reader %d: epoch regressed %d → %d", r, last, *doc.Epoch)
					return
				}
				last = *doc.Epoch
				if doc.Preview.Score < 0 {
					errs <- fmt.Errorf("reader %d: negative preview score %v", r, doc.Preview.Score)
					return
				}
			}
		}()
	}

	writersWG.Wait()
	close(done)
	readersWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Quiesced: the served preview must equal one discovered directly from
	// the final snapshot — a torn read of a half-published score.Set could
	// not reproduce it.
	snap := live.Snapshot()
	if snap.Epoch != uint64(writers*batches) {
		t.Fatalf("expected epoch %d after %d batches, got %d", writers*batches, writers*batches, snap.Epoch)
	}
	want, err := core.New(snap.Scores, core.Options{Key: score.KeyCoverage, NonKey: score.NonKeyCoverage, Parallelism: 4}).
		Discover(core.Constraint{K: 2, N: 4, Mode: core.Concise})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/graphs/bb/preview?k=2&n=4")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var doc struct {
		Epoch   *uint64 `json:"epoch"`
		Preview struct {
			Score float64 `json:"score"`
		} `json:"preview"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Epoch == nil || *doc.Epoch != snap.Epoch {
		t.Fatalf("post-quiesce preview epoch %v, want %d", doc.Epoch, snap.Epoch)
	}
	if doc.Preview.Score != want.Score {
		t.Fatalf("served preview score %v != snapshot-derived score %v", doc.Preview.Score, want.Score)
	}
}
