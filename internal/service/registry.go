// Package service is the HTTP serving layer: a named registry of loaded
// entity graphs with per-graph caches of the expensive precomputations,
// a JSON API over preview discovery and rendering (see Server), and a
// write path for live graphs (see write.go).
//
// The caching design follows the paper's own split (Sec. 5: "Both the
// schema graph and the scoring measures ... are computed before optimal
// preview discovery"): the dominant cost of answering a preview request
// is obtaining the score.Set — one pass over every edge of the entity
// graph plus power iteration for the random-walk measure — while the
// discovery search itself is bounded by the (small, display-sized)
// constraint. The unit of caching is the epoch view: one immutable
// bundle of (entity graph, score set, Discoverer cache). A static graph
// keeps one view forever, computing its score.Set at most once and a
// core.Discoverer at most once per (key measure, non-key measure) no
// matter how many requests race for them — dedup is singleflight-style:
// a map lookup under a short mutex hands every racing request the same
// slot, and the slot's sync.Once makes exactly one of them build while
// the rest block for the result. A mutable graph gets a fresh view per
// mutation epoch, its score set produced by the incremental refresh
// (package dynamic) rather than score.Compute; swapping the view is what
// invalidates every cached Discoverer at once.
package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/uta-db/previewtables/internal/core"
	"github.com/uta-db/previewtables/internal/dynamic"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/score"
	"github.com/uta-db/previewtables/internal/storage"
)

// Registry holds the named graphs a server exposes: immutable graphs
// registered with Add, live (mutable) graphs registered with AddLive.
// All methods are safe for concurrent use.
type Registry struct {
	// Parallelism is the worker count handed to the scoring
	// precomputation (score.Compute) and to Discoverer construction and
	// search (core.Options.Parallelism) of every graph registered after it
	// is set. Values <= 1 mean sequential; results are identical either
	// way (the parallel paths are bit-identical by construction). Set it
	// before registering graphs: each registration and view publication
	// captures the current value, so later writes affect later
	// registrations only.
	//
	// Live graphs' incremental refreshes are driven by the WalkOptions
	// their dynamic.Live was built with; set Parallelism there too (see
	// cmd/previewd).
	Parallelism int

	mu     sync.RWMutex
	graphs map[string]*Graph
	leader string // non-empty = follower registry; writes answer 503 naming it

	// Fencing state (see EnableFencing). fence is read lock-free on the
	// write hot path; fenceMu serializes installs so the persist and the
	// in-memory store cannot interleave across concurrent installers.
	fenceMu  sync.Mutex
	fence    atomic.Uint64
	fenceOn  atomic.Bool
	fenceDir string

	// scoreComputes counts score.Compute runs across all static graphs.
	// Tests and benchmarks assert on it to prove the cache-hit path never
	// re-runs the precomputation. (Live graphs never run score.Compute at
	// all — their sets come from the incremental refresh; see
	// dynamic.Live.Refreshes for the equivalent counter.)
	scoreComputes atomic.Int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{graphs: make(map[string]*Graph)}
}

// Add registers an immutable graph under name. The name must be
// non-empty, must not contain '/', and must not already be registered.
func (r *Registry) Add(name string, g *graph.EntityGraph) error {
	if g == nil {
		return fmt.Errorf("service: nil graph %q", name)
	}
	gr := &Graph{name: name, reg: r}
	workers := r.Parallelism // captured: compute may run on a request goroutine
	v := &view{
		stats: g.Stats(),
		g:     g,
		gr:    gr,
		par:   workers,
		discs: make(map[measureKey]*discSlot),
		compute: func() *score.Set {
			r.scoreComputes.Add(1)
			opts := score.DefaultWalkOptions()
			opts.Parallelism = workers
			return score.Compute(g, opts)
		},
	}
	gr.cur.Store(v)
	return r.register(name, gr)
}

// A LiveOption configures one live graph registration.
type LiveOption func(*liveConfig)

type liveConfig struct {
	wal         *storage.WAL
	origin      *graph.EntityGraph
	originEpoch uint64
}

// WithDurability makes the live graph durable: every batch the write
// endpoints apply is appended to w — and synced — before its epoch is
// published, so an acknowledged write survives a crash. Recovery is
// RecoverLive's job; this option only installs the logging hook. A
// durable graph is also replicable: its WAL is what the replication
// endpoints ship to followers.
func WithDurability(w *storage.WAL) LiveOption {
	return func(c *liveConfig) { c.wal = w }
}

// WithOrigin records the exact state this process built its live graph
// from — the loaded base at epoch 0, or the recovered checkpoint at its
// epoch (Recovery.Origin). The replication bootstrap endpoint serves it
// while the WAL still reaches back that far, which is what lets a fresh
// follower reconstruct the leader's state through the identical code
// path and serve byte-identical reads; without it (or once truncation
// has moved past it) bootstrap falls back to the current frozen
// snapshot, whose replay is count-exact but entropy-equal only to the
// last ulp (the same asymmetry as the leader's own checkpoint recovery).
func WithOrigin(g *graph.EntityGraph, epoch uint64) LiveOption {
	return func(c *liveConfig) { c.origin, c.originEpoch = g, epoch }
}

// AddLive registers a mutable graph under name: preview requests read
// epoch-versioned snapshots, and the write endpoints mutate it through
// the live facade. Naming rules match Add.
func (r *Registry) AddLive(name string, live *dynamic.Live, opts ...LiveOption) error {
	if live == nil {
		return fmt.Errorf("service: nil live graph %q", name)
	}
	var cfg liveConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.wal != nil {
		live.SetDurability(func(epoch uint64, kind byte, payload []byte) error {
			return cfg.wal.Append(epoch, kind, payload)
		})
	}
	gr := &Graph{name: name, reg: r}
	gr.live.Store(live)
	if cfg.wal != nil {
		gr.repl.Store(&replSource{wal: cfg.wal, origin: cfg.origin, originEpoch: cfg.originEpoch})
	}
	gr.publish(live.Snapshot())
	return r.register(name, gr)
}

// SetLeader marks the whole registry as a follower of the previewd at
// base URL addr: every write endpoint answers 503 naming it, because the
// only writer a replica may accept from is the replication stream.
// Passing "" restores normal write handling.
func (r *Registry) SetLeader(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.leader = addr
}

// Leader returns the leader address of a follower registry, or "".
func (r *Registry) Leader() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.leader
}

func (r *Registry) register(name string, gr *Graph) error {
	if name == "" {
		return fmt.Errorf("service: empty graph name")
	}
	for _, c := range name {
		if c == '/' {
			return fmt.Errorf("service: graph name %q contains '/'", name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.graphs[name]; ok {
		return fmt.Errorf("service: graph %q already registered", name)
	}
	r.graphs[name] = gr
	return nil
}

// EnableFencing arms the write-path fence check (see Server's
// requireWritable) and loads any fence previously persisted under dir —
// a node that was deposed stays deposed across restarts. dir is the
// node's WAL root; previewd enables fencing whenever -wal-dir is set.
// An empty dir arms the check without persistence (tests only).
func (r *Registry) EnableFencing(dir string) error {
	r.fenceMu.Lock()
	defer r.fenceMu.Unlock()
	if dir != "" {
		f, ok, err := storage.LoadFence(dir)
		if err != nil {
			return err
		}
		if ok && f > r.fence.Load() {
			r.fence.Store(f)
		}
	}
	r.fenceDir = dir
	r.fenceOn.Store(true)
	return nil
}

// Fencing returns the node's current fence and whether fencing is
// enabled at all. Fence 0 with fencing enabled means "never fenced":
// unstamped writes are still accepted (the standalone state).
func (r *Registry) Fencing() (uint64, bool) {
	return r.fence.Load(), r.fenceOn.Load()
}

// InstallFence raises the node's fence to f, persisting before the
// in-memory store so an acknowledged install survives a crash. Raising
// is monotone: f at or below the current fence is a no-op (a stale
// installer learns the truth from Fencing, never lowers it). Installs
// arrive only through admin channels — promotion, the fence-exchange
// route, and the replication stream's fence header — never from the
// write path itself.
func (r *Registry) InstallFence(f uint64) error {
	if !r.fenceOn.Load() {
		return errors.New("service: fencing is not enabled on this node")
	}
	r.fenceMu.Lock()
	defer r.fenceMu.Unlock()
	if f <= r.fence.Load() {
		return nil
	}
	if r.fenceDir != "" {
		if err := storage.SaveFence(r.fenceDir, f); err != nil {
			return err
		}
	}
	r.fence.Store(f)
	return nil
}

// adoptFence is InstallFence for fences observed on the replication
// stream (the router stamps its forwarded replication responses):
// best-effort, and a no-op on nodes without fencing — a follower of a
// non-fleet leader sees no stamps and needs no fence.
func (r *Registry) adoptFence(f uint64) {
	if r.fenceOn.Load() && f > r.fence.Load() {
		_ = r.InstallFence(f)
	}
}

// Remove unregisters name and returns its graph, ok=false when it was
// never registered. In-flight requests holding the graph finish against
// their resolved views; new requests 404. Durable-state cleanup is the
// caller's job (see Adopter.Drop) — the registry only owns the name.
func (r *Registry) Remove(name string) (*Graph, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	gr, ok := r.graphs[name]
	if ok {
		delete(r.graphs, name)
	}
	return gr, ok
}

// Get returns the registered graph, or ok=false.
func (r *Registry) Get(name string) (*Graph, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	gr, ok := r.graphs[name]
	return gr, ok
}

// Names lists the registered graph names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.graphs))
	for n := range r.graphs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ScoreComputes reports how many times score.Compute has run across the
// registry's static graphs. With the cache working it equals the number
// of static graphs that have served at least one preview request.
func (r *Registry) ScoreComputes() int64 { return r.scoreComputes.Load() }

// measureKey identifies one cached Discoverer configuration.
type measureKey struct {
	key    score.KeyMeasure
	nonKey score.NonKeyMeasure
}

// discSlot is the singleflight slot for one measure pair: the request
// that created the slot builds, everyone else blocks on done. Like the
// response cache's respSlot — and unlike a sync.Once — construction
// failure is not sticky: a build that panics withdraws the slot, so the
// next request retries instead of finding a completed slot with a nil
// Discoverer.
type discSlot struct {
	done chan struct{}
	disc *core.Discoverer
}

// view is one epoch's consistent read surface: the (frozen) entity graph,
// its score set, and the Discoverer cache keyed by measure pair. A static
// graph has exactly one view for its lifetime; a mutable graph gets a
// fresh view per mutation epoch — swapping the view is what invalidates
// every cached Discoverer at once, because the cache lives inside it.
// Handlers resolve the view once per request and use it throughout, so a
// request started at epoch e keeps e's graph, scores and discoverers even
// if writers publish newer epochs meanwhile.
type view struct {
	epoch   uint64
	mutable bool
	stats   graph.Stats
	g       *graph.EntityGraph

	// gr points back to the owning Graph, where the cross-epoch
	// incremental discovery state lives (a view is one epoch; the
	// maintained Discoverers outlive it).
	gr *Graph

	// par is the worker count for this view's score computation,
	// Discoverer construction and searches (Registry.Parallelism at view
	// creation).
	par int

	// buildDisc overrides cold Discoverer construction in tests (failure
	// injection for the non-sticky build discipline); nil means core.New.
	buildDisc func(score.KeyMeasure, score.NonKeyMeasure) *core.Discoverer

	// scores is set eagerly for mutable views (the incremental refresh
	// already produced it) and computed on first use through scoreOnce for
	// static views.
	scoreOnce sync.Once
	scores    *score.Set
	compute   func() *score.Set

	mu    sync.Mutex
	discs map[measureKey]*discSlot

	// resp caches rendered response bytes keyed by endpoint + canonical
	// params (cache.go). It lives inside the view on purpose: the view
	// IS the epoch, so publishing a new epoch abandons every cached body
	// of the old one with no explicit invalidation step — on a leader's
	// write batch and a follower's ApplyShipped alike, both of which
	// install views through Graph.publish.
	respMu sync.Mutex
	resp   map[string]*respSlot
}

// Scores returns the view's score set, computing it on first use for
// static views. Concurrent callers share one computation.
func (v *view) Scores() *score.Set {
	v.scoreOnce.Do(func() {
		if v.scores == nil {
			v.scores = v.compute()
		}
	})
	return v.scores
}

// Discoverer returns the view's cached Discoverer for the measure pair,
// building it (and, transitively, the score set) on first use.
// Concurrent callers for the same pair share one build; different pairs
// build independently and concurrently. A build that panics propagates
// to its own request only: the slot is withdrawn, waiters retry, and the
// next request builds afresh (failure is not sticky).
func (v *view) Discoverer(km score.KeyMeasure, nm score.NonKeyMeasure) *core.Discoverer {
	k := measureKey{key: km, nonKey: nm}
	for {
		v.mu.Lock()
		if slot, ok := v.discs[k]; ok {
			v.mu.Unlock()
			<-slot.done
			if slot.disc != nil {
				return slot.disc
			}
			// The builder panicked and withdrew the slot; race for a
			// fresh one.
			continue
		}
		slot := &discSlot{done: make(chan struct{})}
		v.discs[k] = slot
		v.mu.Unlock()

		var d *core.Discoverer
		func() {
			defer func() {
				if d == nil {
					// Construction panicked (or produced nothing): withdraw
					// the slot and release waiters so they retry; a panic
					// keeps unwinding this request's goroutine.
					v.mu.Lock()
					if v.discs[k] == slot {
						delete(v.discs, k)
					}
					v.mu.Unlock()
					close(slot.done)
				}
			}()
			d = v.buildDiscoverer(km, nm)
		}()
		if d == nil {
			// The slot is already withdrawn and closed by the deferred
			// cleanup; race for a fresh build.
			continue
		}
		slot.disc = d
		close(slot.done)
		return d
	}
}

// buildDiscoverer constructs the cold Discoverer for a measure pair,
// through the test hook when one is installed.
func (v *view) buildDiscoverer(km score.KeyMeasure, nm score.NonKeyMeasure) *core.Discoverer {
	if v.buildDisc != nil {
		return v.buildDisc(km, nm)
	}
	return core.New(v.Scores(), core.Options{Key: km, NonKey: nm, Parallelism: v.par})
}

// replSource is what one graph can ship to followers: its WAL plus the
// origin state recovery started from (see WithOrigin). Swapped as a unit
// when a follower re-bootstraps mid-run.
type replSource struct {
	wal         *storage.WAL
	origin      *graph.EntityGraph
	originEpoch uint64
}

// FollowStatus is a follower's view of one replicated graph, published
// by its replication loop and served by the replication status endpoint.
type FollowStatus struct {
	// AppliedEpoch is the last shipped epoch applied and published.
	AppliedEpoch uint64
	// LeaderEpoch is the leader's durable epoch as of the last poll.
	LeaderEpoch uint64
	// Resyncs counts streams dropped for corruption or transport failure
	// and re-requested from the last applied epoch.
	Resyncs uint64
	// Bootstraps counts full checkpoint bootstraps (initial or after
	// falling behind the leader's truncation horizon).
	Bootstraps uint64
	// Err is the last replication failure, cleared on the next success.
	Err string
}

// Graph is one registered graph: a static entity graph or a live one,
// behind an atomically swapped epoch view. The live facade itself is
// behind an atomic pointer because a follower that falls behind the
// leader's truncation horizon replaces it wholesale (re-bootstrap)
// while readers keep serving the old view.
type Graph struct {
	name string
	reg  *Registry
	live atomic.Pointer[dynamic.Live] // non-nil iff the graph is mutable
	repl atomic.Pointer[replSource]   // non-nil iff the graph can ship its WAL
	cur  atomic.Pointer[view]

	// follow is the replication-loop status of a follower's graph.
	follow atomic.Pointer[FollowStatus]

	// notify is closed and replaced on every publish, waking replication
	// long-polls; see epochChanged.
	notifyMu sync.Mutex
	notifyCh chan struct{}

	// maintained carries discovery state across epochs, one per measure
	// pair (see core.Maintained). It lives on the Graph, not the view:
	// the view swap that invalidates the per-epoch cold caches is exactly
	// what the maintained state survives.
	maintMu    sync.Mutex
	maintained map[measureKey]*core.Maintained

	// dirtyLog records, per published epoch, the dirty-type delta its
	// snapshot carried, so a maintained Discoverer several epochs behind
	// can catch up with the union of the intervening deltas. Bounded to
	// the most recent maxDirtyLog epochs; a gap forces a cold rebuild.
	dirtyMu  sync.Mutex
	dirtyLog map[uint64]dirtyEntry

	// anytimeRefined is the highest epoch for which a background anytime
	// refinement (or a certified exact serve) has completed; nil until the
	// graph sees its first anytime request. Surfaced in the stats doc.
	anytimeRefined atomic.Pointer[uint64]
}

// dirtyEntry is one epoch's delta in the dirty log.
type dirtyEntry struct {
	dirty      []graph.TypeID
	structural bool
}

// maxDirtyLog bounds the dirty log: a maintained Discoverer more than
// this many epochs stale rebuilds cold, which under sustained writes
// never happens (it refreshes on every discovery request).
const maxDirtyLog = 64

// Name returns the registered name.
func (gr *Graph) Name() string { return gr.name }

// Mutable reports whether the graph accepts writes.
func (gr *Graph) Mutable() bool { return gr.live.Load() != nil }

// Live returns the mutable graph's facade, or nil for static graphs.
func (gr *Graph) Live() *dynamic.Live { return gr.live.Load() }

// replSrc returns the graph's shippable state, or nil when the graph is
// static or volatile (no WAL, nothing to ship).
func (gr *Graph) replSrc() *replSource { return gr.repl.Load() }

// WAL returns the graph's write-ahead log, or nil for static/volatile
// graphs. previewd's checkpoint loop uses it to pick up graphs that
// were adopted at runtime (no startup flag ever named them).
func (gr *Graph) WAL() *storage.WAL { return gr.repl.Load().walOrNil() }

func (src *replSource) walOrNil() *storage.WAL {
	if src == nil {
		return nil
	}
	return src.wal
}

// FollowState returns the replication-loop status published by a
// follower for this graph, or nil on a leader.
func (gr *Graph) FollowState() *FollowStatus { return gr.follow.Load() }

// epochChanged returns a channel closed at the next publish. Callers
// re-check their condition after it fires and call again for the next
// edge — the standard broadcast-channel pattern.
func (gr *Graph) epochChanged() <-chan struct{} {
	gr.notifyMu.Lock()
	defer gr.notifyMu.Unlock()
	if gr.notifyCh == nil {
		gr.notifyCh = make(chan struct{})
	}
	return gr.notifyCh
}

// broadcastEpoch wakes everything blocked in epochChanged.
func (gr *Graph) broadcastEpoch() {
	gr.notifyMu.Lock()
	defer gr.notifyMu.Unlock()
	if gr.notifyCh != nil {
		close(gr.notifyCh)
		gr.notifyCh = nil
	}
}

// resetLive replaces a follower graph's facade and shippable state after
// a re-bootstrap: the old live (and its view) keep serving readers until
// the new snapshot publishes.
func (gr *Graph) resetLive(live *dynamic.Live, src *replSource) {
	gr.live.Store(live)
	gr.repl.Store(src)
	gr.publish(live.Snapshot())
}

// view returns the current epoch view. Handlers call it once per request
// and thread the result through, so one request never mixes epochs.
func (gr *Graph) view() *view { return gr.cur.Load() }

// publish installs a new epoch view for snap unless a newer epoch is
// already current (concurrent writers publish out of lock order), and
// returns the view now current. The snapshot's dirty-type delta is
// recorded (before the swap, so a request resolving the new view always
// finds its epoch's entry) for incremental discovery catch-up.
func (gr *Graph) publish(snap *dynamic.Snapshot) *view {
	gr.recordDelta(snap)
	nv := &view{
		epoch:   snap.Epoch,
		mutable: true,
		stats:   snap.Stats,
		g:       snap.Frozen,
		gr:      gr,
		par:     gr.reg.Parallelism,
		scores:  snap.Scores,
		discs:   make(map[measureKey]*discSlot),
	}
	for {
		old := gr.cur.Load()
		if old != nil && old.epoch >= nv.epoch {
			return old
		}
		if gr.cur.CompareAndSwap(old, nv) {
			gr.broadcastEpoch()
			return nv
		}
	}
}

// recordDelta files snap's dirty delta in the dirty log and trims
// entries that have fallen out of the window.
func (gr *Graph) recordDelta(snap *dynamic.Snapshot) {
	gr.dirtyMu.Lock()
	defer gr.dirtyMu.Unlock()
	if gr.dirtyLog == nil {
		gr.dirtyLog = make(map[uint64]dirtyEntry)
	}
	gr.dirtyLog[snap.Epoch] = dirtyEntry{dirty: snap.Dirty, structural: snap.Structural}
	for e := range gr.dirtyLog {
		if e+maxDirtyLog < snap.Epoch {
			delete(gr.dirtyLog, e)
		}
	}
}

// deltaSince computes the union of dirty types over epochs (from, to],
// from the dirty log. haveBase reports whether the caller has any state
// at all (an uninitialized Maintained rebuilds cold regardless). The
// returned structural flag is true when the union cannot be trusted —
// an epoch's entry is missing (log trimmed, or the epoch predates this
// process) or any intervening publication was itself structural (new
// schema elements, recovery, resync re-bootstrap) — and the caller must
// rebuild cold.
func (gr *Graph) deltaSince(from uint64, haveBase bool, to uint64) ([]graph.TypeID, bool) {
	if !haveBase {
		return nil, true
	}
	gr.dirtyMu.Lock()
	defer gr.dirtyMu.Unlock()
	seen := make(map[graph.TypeID]struct{})
	for e := from + 1; e <= to; e++ {
		ent, ok := gr.dirtyLog[e]
		if !ok || ent.structural {
			return nil, true
		}
		for _, t := range ent.dirty {
			seen[t] = struct{}{}
		}
	}
	dirty := make([]graph.TypeID, 0, len(seen))
	for t := range seen {
		dirty = append(dirty, t)
	}
	sort.Slice(dirty, func(a, b int) bool { return dirty[a] < dirty[b] })
	return dirty, false
}

// maintainedFor returns the graph's maintained discovery state for a
// measure pair, refreshed to v's epoch (creating it, cold, on first
// use). Returns nil when the state has already moved past v's epoch —
// the caller's view is stale and must fall back to its own cold
// Discoverer rather than roll the shared state backwards.
func (gr *Graph) maintainedFor(v *view, km score.KeyMeasure, nm score.NonKeyMeasure) *core.Maintained {
	mk := measureKey{key: km, nonKey: nm}
	gr.maintMu.Lock()
	if gr.maintained == nil {
		gr.maintained = make(map[measureKey]*core.Maintained)
	}
	m := gr.maintained[mk]
	if m == nil {
		m = core.NewMaintained(core.Options{Key: km, NonKey: nm, Parallelism: v.par})
		gr.maintained[mk] = m
	}
	gr.maintMu.Unlock()

	epoch, ok := m.Epoch()
	switch {
	case ok && epoch == v.epoch:
		return m
	case ok && epoch > v.epoch:
		return nil
	}
	dirty, structural := gr.deltaSince(epoch, ok, v.epoch)
	// A concurrent refresh to a newer epoch wins benignly: Refresh
	// ignores stale epochs, and DiscoverAt then reports ErrStaleEpoch.
	m.Refresh(v.Scores(), v.epoch, dirty, structural)
	return m
}

// noteRefined records that anytime refinement completed for epoch; the
// watermark is monotone (a slower refinement for an older epoch never
// regresses it).
func (gr *Graph) noteRefined(epoch uint64) {
	for {
		old := gr.anytimeRefined.Load()
		if old != nil && *old >= epoch {
			return
		}
		e := epoch
		if gr.anytimeRefined.CompareAndSwap(old, &e) {
			return
		}
	}
}

// search runs one discovery at the view's epoch. Mutable graphs go
// through the carried-forward incremental state — a certificate hit
// skips the Apriori search entirely — and fall back to the view's own
// cold Discoverer when the shared state has moved past this view's
// epoch. Static graphs always use the cold path (their single view's
// Discoverer cache already makes repeat discovery free).
func (v *view) search(km score.KeyMeasure, nm score.NonKeyMeasure, c core.Constraint) (core.Preview, error) {
	if v.mutable && v.gr != nil {
		if m := v.gr.maintainedFor(v, km, nm); m != nil {
			p, err := m.DiscoverAt(v.epoch, c)
			if !errors.Is(err, core.ErrStaleEpoch) {
				return p, err
			}
		}
	}
	return v.Discoverer(km, nm).Discover(c)
}

// Entity returns the graph behind the current view (for mutable graphs,
// the frozen snapshot of the latest epoch).
func (gr *Graph) Entity() *graph.EntityGraph { return gr.view().g }

// Stats returns the current view's size statistics.
func (gr *Graph) Stats() graph.Stats { return gr.view().stats }

// Scores returns the current view's score set.
func (gr *Graph) Scores() *score.Set { return gr.view().Scores() }

// Discoverer returns the current view's Discoverer for the measure pair.
// Callers needing epoch consistency across several calls should resolve
// the view once instead.
func (gr *Graph) Discoverer(km score.KeyMeasure, nm score.NonKeyMeasure) *core.Discoverer {
	return gr.view().Discoverer(km, nm)
}
