// Package service is the HTTP serving layer: a named registry of loaded
// entity graphs with per-graph caches of the expensive precomputations,
// and a JSON API over preview discovery and rendering (see Server).
//
// The caching design follows the paper's own split (Sec. 5: "Both the
// schema graph and the scoring measures ... are computed before optimal
// preview discovery"): the dominant cost of answering a preview request
// is score.Compute — one pass over every edge of the entity graph plus
// power iteration for the random-walk measure — while the discovery
// search itself is bounded by the (small, display-sized) constraint. The
// registry therefore computes the score.Set at most once per graph and a
// core.Discoverer at most once per (graph, key measure, non-key measure),
// no matter how many requests race for them. Dedup is singleflight-style:
// a map lookup under a short mutex hands every racing request the same
// slot, and the slot's sync.Once makes exactly one of them build while
// the rest block for the result. Builds for different measure pairs
// proceed concurrently.
package service

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/uta-db/previewtables/internal/core"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/score"
)

// Registry holds the named entity graphs a server exposes. Graphs are
// registered once at startup (or whenever) and served concurrently;
// all methods are safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	graphs map[string]*Graph

	// scoreComputes counts score.Compute runs across all graphs. Tests
	// and benchmarks assert on it to prove the cache-hit path never
	// re-runs the precomputation.
	scoreComputes atomic.Int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{graphs: make(map[string]*Graph)}
}

// Add registers g under name. The name must be non-empty, must not
// contain '/', and must not already be registered.
func (r *Registry) Add(name string, g *graph.EntityGraph) error {
	if name == "" {
		return fmt.Errorf("service: empty graph name")
	}
	for _, c := range name {
		if c == '/' {
			return fmt.Errorf("service: graph name %q contains '/'", name)
		}
	}
	if g == nil {
		return fmt.Errorf("service: nil graph %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.graphs[name]; ok {
		return fmt.Errorf("service: graph %q already registered", name)
	}
	r.graphs[name] = &Graph{
		name:  name,
		g:     g,
		stats: g.Stats(),
		reg:   r,
		discs: make(map[measureKey]*discSlot),
	}
	return nil
}

// Get returns the registered graph, or ok=false.
func (r *Registry) Get(name string) (*Graph, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	gr, ok := r.graphs[name]
	return gr, ok
}

// Names lists the registered graph names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.graphs))
	for n := range r.graphs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ScoreComputes reports how many times score.Compute has run across the
// registry's graphs. With the cache working it equals the number of
// graphs that have served at least one preview request.
func (r *Registry) ScoreComputes() int64 { return r.scoreComputes.Load() }

// measureKey identifies one cached Discoverer configuration.
type measureKey struct {
	key    score.KeyMeasure
	nonKey score.NonKeyMeasure
}

// discSlot is the singleflight slot for one measure pair: the first
// request through the Once builds, everyone else blocks on it.
type discSlot struct {
	once sync.Once
	disc *core.Discoverer
}

// Graph is one registered entity graph plus its lazily built, cached
// precomputations.
type Graph struct {
	name  string
	g     *graph.EntityGraph
	stats graph.Stats
	reg   *Registry

	scoreOnce sync.Once
	scores    *score.Set

	mu    sync.Mutex
	discs map[measureKey]*discSlot
}

// Name returns the registered name.
func (gr *Graph) Name() string { return gr.name }

// Entity returns the underlying entity graph.
func (gr *Graph) Entity() *graph.EntityGraph { return gr.g }

// Stats returns the graph's size statistics (captured at registration).
func (gr *Graph) Stats() graph.Stats { return gr.stats }

// Scores returns the graph's precomputed score set, computing it on
// first use. Concurrent callers share one computation.
func (gr *Graph) Scores() *score.Set {
	gr.scoreOnce.Do(func() {
		gr.reg.scoreComputes.Add(1)
		gr.scores = score.Compute(gr.g, score.DefaultWalkOptions())
	})
	return gr.scores
}

// Discoverer returns the cached Discoverer for the measure pair,
// building it (and, transitively, the score set) on first use.
// Concurrent callers for the same pair share one build; different pairs
// build independently and concurrently.
func (gr *Graph) Discoverer(km score.KeyMeasure, nm score.NonKeyMeasure) *core.Discoverer {
	k := measureKey{key: km, nonKey: nm}
	gr.mu.Lock()
	slot, ok := gr.discs[k]
	if !ok {
		slot = &discSlot{}
		gr.discs[k] = slot
	}
	gr.mu.Unlock()
	slot.once.Do(func() {
		slot.disc = core.New(gr.Scores(), core.Options{Key: km, NonKey: nm})
	})
	return slot.disc
}
