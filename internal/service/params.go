package service

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"

	"github.com/uta-db/previewtables/internal/core"
	"github.com/uta-db/previewtables/internal/score"
)

// Request-size caps. Previews are display-bounded by definition (the
// paper's k and n are single digits), so generous ceilings cost nothing
// for real clients while keeping one unauthenticated GET from driving
// the dynamic program's O(types·k·n) time and memory — or the response
// body — arbitrarily large. Tight/diverse requests are additionally
// bounded by Server.SearchBudget: the exact Apriori search is
// combinatorial in k when the distance constraint degenerates, which no
// cap on k alone can contain.
const (
	// maxK bounds k, the number of preview tables.
	maxK = 64
	// maxN bounds n, the total non-key attribute budget.
	maxN = 256
	// maxTuples bounds the tuples= parameter so one request cannot ask
	// the server to materialize an entire large graph into a response.
	maxTuples = 1000
)

// previewParams is a validated preview/render request: the core
// constraint, the scoring measures, and presentation knobs.
type previewParams struct {
	Constraint core.Constraint
	Key        score.KeyMeasure
	NonKey     score.NonKeyMeasure
	Tuples     int
	// Representative selects coverage-greedy tuple sampling instead of
	// the paper's random sampling.
	Representative bool
	// Anytime selects anytime discovery (preview route only): answer
	// immediately with a budget-bounded best-so-far while a background
	// refinement converges on the exact preview.
	Anytime bool
}

// parsePreviewParams maps query parameters onto previewParams, mirroring
// the previewgen CLI flags: k, n, mode, d, key, nonkey, tuples, rep.
// Defaults are previewgen's: k=3 n=9 concise coverage/coverage, no
// tuples. Every failure is a user error (HTTP 400).
func parsePreviewParams(q url.Values) (previewParams, error) {
	p := previewParams{
		Constraint: core.Constraint{K: 3, N: 9, Mode: core.Concise, D: 2},
		Key:        score.KeyCoverage,
		NonKey:     score.NonKeyCoverage,
	}
	var err error
	if p.Constraint.K, err = intParam(q, "k", p.Constraint.K); err != nil {
		return p, err
	}
	if p.Constraint.N, err = intParam(q, "n", p.Constraint.N); err != nil {
		return p, err
	}
	if p.Constraint.D, err = intParam(q, "d", p.Constraint.D); err != nil {
		return p, err
	}
	if p.Constraint.K > maxK {
		return p, fmt.Errorf("k=%d above server limit %d", p.Constraint.K, maxK)
	}
	if p.Constraint.N > maxN {
		return p, fmt.Errorf("n=%d above server limit %d", p.Constraint.N, maxN)
	}
	switch v := strings.ToLower(q.Get("mode")); v {
	case "", "concise":
		p.Constraint.Mode = core.Concise
	case "tight":
		p.Constraint.Mode = core.Tight
	case "diverse":
		p.Constraint.Mode = core.Diverse
	default:
		return p, fmt.Errorf("unknown mode %q: want concise, tight or diverse", v)
	}
	switch v := strings.ToLower(q.Get("key")); v {
	case "", "coverage":
		p.Key = score.KeyCoverage
	case "walk", "random-walk", "randomwalk":
		p.Key = score.KeyRandomWalk
	default:
		return p, fmt.Errorf("unknown key measure %q: want coverage or walk", v)
	}
	switch v := strings.ToLower(q.Get("nonkey")); v {
	case "", "coverage":
		p.NonKey = score.NonKeyCoverage
	case "entropy":
		p.NonKey = score.NonKeyEntropy
	default:
		return p, fmt.Errorf("unknown nonkey measure %q: want coverage or entropy", v)
	}
	if p.Tuples, err = intParam(q, "tuples", 0); err != nil {
		return p, err
	}
	if p.Tuples < 0 || p.Tuples > maxTuples {
		return p, fmt.Errorf("tuples=%d out of range [0, %d]", p.Tuples, maxTuples)
	}
	switch v := strings.ToLower(q.Get("rep")); v {
	case "", "0", "false":
	case "1", "true":
		p.Representative = true
	default:
		return p, fmt.Errorf("invalid rep=%q: want true or false", v)
	}
	switch v := strings.ToLower(q.Get("anytime")); v {
	case "", "0", "false":
	case "1", "true":
		p.Anytime = true
	default:
		return p, fmt.Errorf("invalid anytime=%q: want true or false", v)
	}
	if err := p.Constraint.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

// canonical renders validated parameters in one fixed spelling and
// order, so every equivalent request — defaults omitted or spelled out,
// measure aliases (key=random-walk vs key=walk), unknown parameters the
// parser ignores — maps to the same cache key and ETag. Canonicalizing
// from the parsed struct rather than the raw query is what makes the
// merge safe: two requests share a key only if the handler would have
// seen identical previewParams, and the body is a function of nothing
// else. d is included even for concise requests (where discovery
// ignores it) — that can only fragment the key space, never alias two
// different bodies.
func (p previewParams) canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "k=%d&n=%d&mode=%s&d=%d&key=%s&nonkey=%s&tuples=%d&rep=%t&anytime=%t",
		p.Constraint.K, p.Constraint.N, strings.ToLower(p.Constraint.Mode.String()), p.Constraint.D,
		keyMeasureName(p.Key), nonKeyMeasureName(p.NonKey), p.Tuples, p.Representative, p.Anytime)
	return b.String()
}

// intParam parses an optional integer query parameter.
func intParam(q url.Values, name string, def int) (int, error) {
	v := q.Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("invalid %s=%q: not an integer", name, v)
	}
	return n, nil
}

// keyMeasureName returns the lowercase wire name of a key measure, the
// inverse of parsePreviewParams's mapping.
func keyMeasureName(m score.KeyMeasure) string {
	if m == score.KeyRandomWalk {
		return "walk"
	}
	return "coverage"
}

func nonKeyMeasureName(m score.NonKeyMeasure) string {
	if m == score.NonKeyEntropy {
		return "entropy"
	}
	return "coverage"
}
