package service

// Response-cache tests: the proof obligations of epoch-keyed caching.
//
//   - the differential suite pins the headline invariant: a cache-served
//     body is byte-identical to a cold, cache-bypassed render for every
//     read endpoint × param combination — on a static graph, on a
//     mutable leader mid-write-history, and on a caught-up follower;
//   - the conditional-GET tests pin ETag semantics: stable within an
//     epoch (a repeated conditional GET answers 304 with no body),
//     changed across epochs (a stale validator revalidates to 200);
//   - the HEAD table pins HEAD × {200, 304, 404, 405}: identical
//     headers to GET, never a body;
//   - the invalidation tests (race-enabled) pin that a write batch on a
//     leader and a shipped batch on a follower each publish an epoch
//     whose reads never serve the prior epoch's cached body;
//   - the singleflight test pins that a thundering herd on one cold key
//     renders exactly once.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/uta-db/previewtables/internal/core"
	"github.com/uta-db/previewtables/internal/fig1"
	"github.com/uta-db/previewtables/internal/score"
)

// readCombos is every read endpoint × a spread of param combinations:
// all three modes, both key and non-key measures, tuple sampling plain
// and representative, both render formats, the stats doc and the
// cross-graph listing. The diverse combo is the paper's Sec. 4 example.
func readCombos(graph string) []string {
	g := "/v1/graphs/" + graph
	return []string{
		"/v1/graphs",
		g + "/stats",
		g + "/preview?k=2&n=3",
		g + "/preview?k=2&n=3&tuples=3",
		g + "/preview?k=3&n=6&key=coverage&nonkey=entropy&tuples=2",
		g + "/preview?k=2&n=4&mode=tight&d=2&key=walk&nonkey=entropy",
		g + "/preview?k=2&n=6&mode=diverse&d=2&rep=true&tuples=2",
		g + "/render?k=2&n=3&tuples=3",
		g + "/render?k=2&n=3&tuples=3&format=markdown",
	}
}

// fetched is one observed response.
type fetched struct {
	status int
	body   string
	etag   string
	ct     string
	cl     string
}

func fetch(t testing.TB, method, url, ifNoneMatch string) fetched {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return fetched{
		status: resp.StatusCode,
		body:   string(raw),
		etag:   resp.Header.Get("ETag"),
		ct:     resp.Header.Get("Content-Type"),
		cl:     resp.Header.Get("Content-Length"),
	}
}

// assertCachedEqualsCold runs the differential on one server pair over
// the same registry: cached GETs must be byte-identical to cache-
// bypassed cold renders on every combo, carry the same ETag and
// Content-Type, and a repeated conditional GET within the epoch must
// answer 304 with no body.
func assertCachedEqualsCold(t *testing.T, what string, cachedTS, bypassTS *httptest.Server, graph string) {
	t.Helper()
	for _, u := range readCombos(graph) {
		cold := fetch(t, http.MethodGet, bypassTS.URL+u, "")
		if cold.status != http.StatusOK {
			t.Fatalf("%s: cold GET %s: status %d body %s", what, u, cold.status, cold.body)
		}
		warm := fetch(t, http.MethodGet, cachedTS.URL+u, "")  // miss: renders and caches
		again := fetch(t, http.MethodGet, cachedTS.URL+u, "") // hit: served bytes
		for name, got := range map[string]fetched{"first cached": warm, "repeat cached": again} {
			if got.body != cold.body {
				t.Errorf("%s: %s GET %s body diverged from cold render:\ncold:   %q\ncached: %q", what, name, u, cold.body, got.body)
			}
			if got.etag != cold.etag || got.etag == "" {
				t.Errorf("%s: %s GET %s ETag = %q, cold %q", what, name, u, got.etag, cold.etag)
			}
			if got.ct != cold.ct {
				t.Errorf("%s: %s GET %s Content-Type = %q, cold %q", what, name, u, got.ct, cold.ct)
			}
		}
		// A repeated conditional GET within the epoch is 304, bodiless,
		// and re-asserts the same validator.
		notMod := fetch(t, http.MethodGet, cachedTS.URL+u, cold.etag)
		if notMod.status != http.StatusNotModified || notMod.body != "" || notMod.etag != cold.etag {
			t.Errorf("%s: conditional GET %s = (%d, %q, etag %q), want (304, empty, %q)",
				what, u, notMod.status, notMod.body, notMod.etag, cold.etag)
		}
	}
}

// TestResponseDifferentialStatic: cached == cold on an immutable graph.
func TestResponseDifferentialStatic(t *testing.T) {
	reg, cachedTS := newTestServer(t)
	bypass := New(reg)
	bypass.NoCache = true
	bypassTS := httptest.NewServer(bypass)
	defer bypassTS.Close()
	assertCachedEqualsCold(t, "static", cachedTS, bypassTS, "fig1")
}

// TestResponseDifferentialLeaderAndFollower: cached == cold on a durable
// leader with write history, and on a caught-up follower — including
// that leader and follower mint the same validators, so a client can
// revalidate against either node.
func TestResponseDifferentialLeaderAndFollower(t *testing.T) {
	root := t.TempDir()
	leader := startDurable(t, "", filepath.Join(root, "leader-wal"))
	for _, b := range replBatches {
		postBatch(t, leader.ts, b.route, b.body)
	}
	bypass := New(leader.srv.reg)
	bypass.NoCache = true
	bypassTS := httptest.NewServer(bypass)
	defer bypassTS.Close()
	assertCachedEqualsCold(t, "leader", leader.ts, bypassTS, "fig1")

	node := startFollowerNode(t, leader.ts.URL, "", "")
	if err := node.f.WaitCaughtUp(uint64(len(replBatches)), 30*time.Second); err != nil {
		t.Fatal(err)
	}
	fBypass := New(node.reg)
	fBypass.NoCache = true
	fBypassTS := httptest.NewServer(fBypass)
	defer fBypassTS.Close()
	assertCachedEqualsCold(t, "follower", node.ts, fBypassTS, "fig1")

	// Cross-node validator stability: a tag fetched from the leader
	// revalidates 304 against the follower and vice versa.
	for _, u := range readCombos("fig1") {
		lt := fetch(t, http.MethodGet, leader.ts.URL+u, "").etag
		if got := fetch(t, http.MethodGet, node.ts.URL+u, lt); got.status != http.StatusNotModified {
			t.Errorf("leader tag %q for %s did not revalidate on the follower: status %d", lt, u, got.status)
		}
	}
}

// TestConditionalGet pins the validator lifecycle on one URL: stable
// tag within an epoch, 304 on exact match, weak-form and list-form
// matches, "*" honored only when a representation exists, and a stale
// tag answering 200 with the new epoch's bytes after a write.
func TestConditionalGet(t *testing.T) {
	leader := startDurable(t, "", filepath.Join(t.TempDir(), "wal"))
	u := leader.ts.URL + "/v1/graphs/fig1/stats"

	first := fetch(t, http.MethodGet, u, "")
	if first.status != http.StatusOK || first.etag == "" {
		t.Fatalf("GET: status %d etag %q", first.status, first.etag)
	}
	if got := fetch(t, http.MethodGet, u, first.etag); got.status != http.StatusNotModified {
		t.Fatalf("exact If-None-Match: status %d, want 304", got.status)
	}
	if got := fetch(t, http.MethodGet, u, "W/"+first.etag); got.status != http.StatusNotModified {
		t.Fatalf("weak If-None-Match: status %d, want 304", got.status)
	}
	if got := fetch(t, http.MethodGet, u, `"nope", `+first.etag); got.status != http.StatusNotModified {
		t.Fatalf("list If-None-Match: status %d, want 304", got.status)
	}
	if got := fetch(t, http.MethodGet, u, "*"); got.status != http.StatusNotModified {
		t.Fatalf("* If-None-Match on existing representation: status %d, want 304", got.status)
	}
	if got := fetch(t, http.MethodGet, u, `"nope"`); got.status != http.StatusOK || got.body != first.body {
		t.Fatalf("non-matching If-None-Match: status %d, want 200 with the full body", got.status)
	}

	// "*" asserts "any representation exists" — a well-formed request
	// the graph cannot satisfy has none, so it must NOT answer 304.
	unsat := leader.ts.URL + "/v1/graphs/fig1/preview?k=50&n=50"
	if got := fetch(t, http.MethodGet, unsat, "*"); got.status != http.StatusUnprocessableEntity {
		t.Fatalf("* on unsatisfiable request: status %d, want 422", got.status)
	}

	// A write publishes a new epoch: the old validator is stale, the
	// response is the new epoch's body with a new tag.
	postBatch(t, leader.ts, replBatches[0].route, replBatches[0].body)
	after := fetch(t, http.MethodGet, u, first.etag)
	if after.status != http.StatusOK {
		t.Fatalf("stale validator after write: status %d, want 200", after.status)
	}
	if after.etag == first.etag || after.body == first.body {
		t.Fatalf("write did not move the representation: etag %q→%q", first.etag, after.etag)
	}
	var doc struct {
		Epoch *uint64 `json:"epoch"`
	}
	if err := json.Unmarshal([]byte(after.body), &doc); err != nil || doc.Epoch == nil || *doc.Epoch != 1 {
		t.Fatalf("post-write stats body %q (err %v), want epoch 1", after.body, err)
	}
}

// TestHeadDiscipline is the satellite table: HEAD × {200, 304, 404,
// 405}. A HEAD 200 carries GET's exact ETag, Content-Type and
// Content-Length with an empty body; HEAD revalidates to 304 like GET;
// the 404/405 ordering is method-blind.
func TestHeadDiscipline(t *testing.T) {
	_, ts := newTestServer(t)
	okURLs := []string{
		"/v1/graphs",
		"/v1/graphs/fig1/stats",
		"/v1/graphs/fig1/preview?k=2&n=3&tuples=3",
		"/v1/graphs/fig1/render?k=2&n=3&format=markdown",
	}
	for _, u := range okURLs {
		get := fetch(t, http.MethodGet, ts.URL+u, "")
		if get.status != http.StatusOK {
			t.Fatalf("GET %s: status %d", u, get.status)
		}
		head := fetch(t, http.MethodHead, ts.URL+u, "")
		if head.status != http.StatusOK || head.body != "" {
			t.Errorf("HEAD %s: status %d body %q, want bodiless 200", u, head.status, head.body)
		}
		if head.etag != get.etag || head.ct != get.ct || head.cl != fmt.Sprint(len(get.body)) {
			t.Errorf("HEAD %s headers (etag %q, ct %q, cl %q) diverge from GET (etag %q, ct %q, len %d)",
				u, head.etag, head.ct, head.cl, get.etag, get.ct, len(get.body))
		}
		notMod := fetch(t, http.MethodHead, ts.URL+u, get.etag)
		if notMod.status != http.StatusNotModified || notMod.body != "" || notMod.etag != get.etag {
			t.Errorf("conditional HEAD %s = (%d, %q, etag %q), want (304, empty, %q)",
				u, notMod.status, notMod.body, notMod.etag, get.etag)
		}
	}
	for _, tc := range []struct {
		url    string
		status int
	}{
		{"/v1/graphs/nope/stats", http.StatusNotFound},
		{"/v1/graphs/fig1/nope", http.StatusNotFound},
		{"/v2/nope", http.StatusNotFound},
		{"/v1/graphs/fig1/edges", http.StatusMethodNotAllowed},
		{"/v1/graphs/fig1/triples", http.StatusMethodNotAllowed},
	} {
		if got := fetch(t, http.MethodHead, ts.URL+tc.url, ""); got.status != tc.status {
			t.Errorf("HEAD %s: status %d, want %d", tc.url, got.status, tc.status)
		}
	}
}

// TestCacheSingleflight: a thundering herd racing one cold URL renders
// exactly once — every other request is a hit (a served cached body or
// a singleflight wait on the one render).
func TestCacheSingleflight(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Add("fig1", fig1.Graph()); err != nil {
		t.Fatal(err)
	}
	srv := New(reg)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const workers = 32
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			got := fetch(t, http.MethodGet, ts.URL+"/v1/graphs/fig1/preview?k=2&n=3&tuples=4", "")
			if got.status != http.StatusOK {
				errs <- fmt.Errorf("status %d", got.status)
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	hits, misses := srv.CacheStats()
	if misses != 1 || hits != workers-1 {
		t.Fatalf("herd of %d: hits %d misses %d, want %d and 1 (one render, everyone else served)", workers, hits, misses, workers-1)
	}
}

// TestCacheAliasSpellings: equivalent param spellings share one cache
// entry — same canonical key, same ETag, byte-identical bodies, and no
// extra render.
func TestCacheAliasSpellings(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Add("fig1", fig1.Graph()); err != nil {
		t.Fatal(err)
	}
	srv := New(reg)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spellings := []string{
		"/v1/graphs/fig1/preview?k=2&n=3&key=walk",
		"/v1/graphs/fig1/preview?key=random-walk&n=3&k=2",
		"/v1/graphs/fig1/preview?k=2&n=3&key=randomwalk&nonkey=coverage&rep=false",
		"/v1/graphs/fig1/preview?k=2&n=3&key=walk&ignored=param",
	}
	first := fetch(t, http.MethodGet, ts.URL+spellings[0], "")
	if first.status != http.StatusOK {
		t.Fatalf("status %d", first.status)
	}
	for _, u := range spellings[1:] {
		got := fetch(t, http.MethodGet, ts.URL+u, "")
		if got.body != first.body || got.etag != first.etag {
			t.Errorf("GET %s: (etag %q) diverged from canonical sibling (etag %q)", u, got.etag, first.etag)
		}
	}
	hits, misses := srv.CacheStats()
	if misses != 1 || hits != uint64(len(spellings)-1) {
		t.Fatalf("alias spellings: hits %d misses %d, want %d and 1", hits, misses, len(spellings)-1)
	}
}

// epochOf extracts the epoch a stats or preview body reports.
func epochOf(t testing.TB, body string) uint64 {
	t.Helper()
	var doc struct {
		Epoch *uint64 `json:"epoch"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil || doc.Epoch == nil {
		t.Fatalf("no epoch in body %q (err %v)", body, err)
	}
	return *doc.Epoch
}

// TestCacheInvalidationUnderWrites is the race-enabled invalidation
// property on a leader: concurrent readers hammer cached routes while a
// writer publishes epochs; every reader's observed epoch sequence is
// monotone, and a read issued after a write's acknowledgment never
// serves an older epoch's cached body.
func TestCacheInvalidationUnderWrites(t *testing.T) {
	leader := startDurable(t, "", filepath.Join(t.TempDir(), "wal"))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 64)

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				got := fetch(t, http.MethodGet, leader.ts.URL+"/v1/graphs/fig1/stats", "")
				if got.status != http.StatusOK {
					errs <- fmt.Errorf("reader: status %d", got.status)
					return
				}
				e := epochOf(t, got.body)
				if e < last {
					errs <- fmt.Errorf("reader: epoch regressed %d → %d (stale cached body served)", last, e)
					return
				}
				last = e
			}
		}()
	}

	for i, b := range replBatches {
		postBatch(t, leader.ts, b.route, b.body)
		acked := uint64(i + 1)
		// A read after the ack must reflect at least the acked epoch:
		// the prior epoch's cached body is unreachable the moment the
		// write's publish lands.
		got := fetch(t, http.MethodGet, leader.ts.URL+"/v1/graphs/fig1/stats", "")
		if e := epochOf(t, got.body); e < acked {
			t.Fatalf("after ack of epoch %d, stats served epoch %d", acked, e)
		}
		pv := fetch(t, http.MethodGet, leader.ts.URL+"/v1/graphs/fig1/preview?k=2&n=3", "")
		if pv.status != http.StatusOK {
			t.Fatalf("preview after epoch %d: status %d", acked, pv.status)
		}
		if e := epochOf(t, pv.body); e < acked {
			t.Fatalf("after ack of epoch %d, preview served epoch %d", acked, e)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestFollowerCacheInvalidation: a shipped batch invalidates the
// follower's cached bodies exactly like a local write invalidates the
// leader's — once ApplyShipped publishes epoch e, cached reads serve e,
// a stale validator answers 200 (not 304), and the body is
// byte-identical to the leader's.
func TestFollowerCacheInvalidation(t *testing.T) {
	root := t.TempDir()
	leader := startDurable(t, "", filepath.Join(root, "leader-wal"))
	node := startFollowerNode(t, leader.ts.URL, "", "")

	postBatch(t, leader.ts, replBatches[0].route, replBatches[0].body)
	if err := node.f.WaitCaughtUp(1, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	u := "/v1/graphs/fig1/stats"
	before := fetch(t, http.MethodGet, node.ts.URL+u, "")
	if e := epochOf(t, before.body); e != 1 {
		t.Fatalf("follower stats epoch %d, want 1", e)
	}
	// Warm the preview cache at epoch 1 too.
	pvBefore := fetch(t, http.MethodGet, node.ts.URL+"/v1/graphs/fig1/preview?k=2&n=3", "")

	postBatch(t, leader.ts, replBatches[1].route, replBatches[1].body)
	if err := node.f.WaitCaughtUp(2, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	after := fetch(t, http.MethodGet, node.ts.URL+u, "")
	if e := epochOf(t, after.body); e != 2 {
		t.Fatalf("follower stats after shipped epoch 2 served epoch %d (stale cached body)", e)
	}
	if got := fetch(t, http.MethodGet, node.ts.URL+u, before.etag); got.status != http.StatusOK {
		t.Fatalf("stale validator on follower: status %d, want 200 with the new epoch", got.status)
	}
	pvAfter := fetch(t, http.MethodGet, node.ts.URL+"/v1/graphs/fig1/preview?k=2&n=3", "")
	if e := epochOf(t, pvAfter.body); e != 2 {
		t.Fatalf("follower preview after shipped epoch 2 served epoch %d", e)
	}
	if pvAfter.body == pvBefore.body && pvAfter.etag == pvBefore.etag {
		t.Fatal("shipped batch did not invalidate the follower's cached preview")
	}
	// And the invalidated read matches the leader byte for byte.
	leaderPv := fetch(t, http.MethodGet, leader.ts.URL+"/v1/graphs/fig1/preview?k=2&n=3", "")
	if pvAfter.body != leaderPv.body || pvAfter.etag != leaderPv.etag {
		t.Fatal("follower's post-invalidation preview diverged from the leader's")
	}
}

// TestElapsedHeader: the per-request timing that used to live in the
// body rides in X-Previewtables-Elapsed on every read route, and the
// body carries no elapsed_ms at all.
func TestElapsedHeader(t *testing.T) {
	_, ts := newTestServer(t)
	for _, u := range []string{"/v1/graphs", "/v1/graphs/fig1/stats", "/v1/graphs/fig1/preview?k=2&n=3"} {
		resp, err := http.Get(ts.URL + u)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.Header.Get(elapsedHeader) == "" {
			t.Errorf("GET %s: no %s header", u, elapsedHeader)
		}
		if strings.Contains(string(raw), "elapsed_ms") {
			t.Errorf("GET %s body still carries elapsed_ms: %s", u, raw)
		}
	}
}

// BenchmarkResponseCacheHit is the steady-state hot path: one URL,
// warm cache, each request a lookup + conditional check + one Write.
func BenchmarkResponseCacheHit(b *testing.B) {
	benchServing(b, false, "")
}

// BenchmarkResponseCacheBypass is the contrast arm: the identical
// request stream with the cache disabled, paying discovery + document
// building + JSON encoding per request.
func BenchmarkResponseCacheBypass(b *testing.B) {
	benchServing(b, true, "")
}

// BenchmarkResponseCache304 is the conditional hot path: the client
// replays the current validator, so the server answers 304 from the
// ETag alone without touching the cache.
func BenchmarkResponseCache304(b *testing.B) {
	reg := NewRegistry()
	if err := reg.Add("fig1", fig1.Graph()); err != nil {
		b.Fatal(err)
	}
	srv := New(reg)
	warm := httptest.NewRequest(http.MethodGet, "/v1/graphs/fig1/preview?k=2&n=3&tuples=4", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, warm)
	etag := rec.Header().Get("ETag")
	if rec.Code != http.StatusOK || etag == "" {
		b.Fatalf("warmup: status %d etag %q", rec.Code, etag)
	}
	benchServing(b, false, etag)
}

func benchServing(b *testing.B, noCache bool, ifNoneMatch string) {
	reg := NewRegistry()
	if err := reg.Add("fig1", fig1.Graph()); err != nil {
		b.Fatal(err)
	}
	srv := New(reg)
	srv.NoCache = noCache
	warm := httptest.NewRequest(http.MethodGet, "/v1/graphs/fig1/preview?k=2&n=3&tuples=4", nil)
	srv.ServeHTTP(httptest.NewRecorder(), warm)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest(http.MethodGet, "/v1/graphs/fig1/preview?k=2&n=3&tuples=4", nil)
			if ifNoneMatch != "" {
				req.Header.Set("If-None-Match", ifNoneMatch)
			}
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			wantStatus := http.StatusOK
			if ifNoneMatch != "" {
				wantStatus = http.StatusNotModified
			}
			if rec.Code != wantStatus {
				panic(fmt.Sprintf("status %d: %s", rec.Code, rec.Body))
			}
		}
	})
}

// fillToCapacity stuffs v's response cache with distinct completed
// synthetic entries until it holds exactly maxCachedResponses.
func fillToCapacity(t testing.TB, v *view) {
	t.Helper()
	for i := 0; ; i++ {
		v.respMu.Lock()
		n := len(v.resp)
		v.respMu.Unlock()
		if n >= maxCachedResponses {
			return
		}
		key := fmt.Sprintf("synthetic-%d", i)
		if _, _, err := v.cachedResponse(key, func() (*cacheEntry, error) {
			return &cacheEntry{body: []byte(key)}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCacheAtCapacityAdmitsNewKey pins the admission bugfix: the cache
// at maxCachedResponses entries must admit the next distinct key by
// evicting an existing completed entry — not build-then-delete the
// newcomer forever. The 4097th key renders once and the second request
// for it is served from cache.
func TestCacheAtCapacityAdmitsNewKey(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Add("fig1", fig1.Graph()); err != nil {
		t.Fatal(err)
	}
	gr, _ := reg.Get("fig1")
	v := gr.view()
	fillToCapacity(t, v)

	builds := 0
	newcomer := func() (*cacheEntry, error) {
		builds++
		return &cacheEntry{body: []byte("newcomer")}, nil
	}
	if _, hit, err := v.cachedResponse("the-4097th-key", newcomer); err != nil || hit {
		t.Fatalf("first request: hit=%t err=%v, want a build", hit, err)
	}
	if _, hit, err := v.cachedResponse("the-4097th-key", newcomer); err != nil || !hit {
		t.Fatalf("second request: hit=%t err=%v, want served from cache", hit, err)
	}
	if builds != 1 {
		t.Fatalf("newcomer built %d times, want 1", builds)
	}
	v.respMu.Lock()
	n := len(v.resp)
	v.respMu.Unlock()
	if n > maxCachedResponses {
		t.Fatalf("cache grew past its bound: %d > %d", n, maxCachedResponses)
	}
}

// TestCacheAtCapacityHerd extends the singleflight property to the
// at-capacity regime: with the cache already full, a 32-way herd racing
// one uncached URL still renders exactly once, and the herd's key is
// retained afterwards.
func TestCacheAtCapacityHerd(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Add("fig1", fig1.Graph()); err != nil {
		t.Fatal(err)
	}
	gr, _ := reg.Get("fig1")
	fillToCapacity(t, gr.view())

	srv := New(reg)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const workers = 32
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			got := fetch(t, http.MethodGet, ts.URL+"/v1/graphs/fig1/preview?k=2&n=3&tuples=4", "")
			if got.status != http.StatusOK {
				errs <- fmt.Errorf("status %d", got.status)
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	hits, misses := srv.CacheStats()
	if misses != 1 || hits != workers-1 {
		t.Fatalf("at-capacity herd of %d: hits %d misses %d, want %d and 1", workers, hits, misses, workers-1)
	}
	// A repeat request is a pure cache hit: the herd's entry was admitted
	// (something else was evicted), not built-then-deleted.
	if got := fetch(t, http.MethodGet, ts.URL+"/v1/graphs/fig1/preview?k=2&n=3&tuples=4", ""); got.status != http.StatusOK {
		t.Fatalf("repeat request: status %d", got.status)
	}
	if hits2, misses2 := srv.CacheStats(); misses2 != misses || hits2 != hits+1 {
		t.Fatalf("repeat request rendered again: hits %d→%d misses %d→%d", hits, hits2, misses, misses2)
	}
}

// TestDiscovererBuildNotSticky pins the registry bugfix: a Discoverer
// construction that panics must not leave a completed slot holding nil —
// the panicking request fails alone, waiters retry, and the next request
// builds successfully.
func TestDiscovererBuildNotSticky(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Add("fig1", fig1.Graph()); err != nil {
		t.Fatal(err)
	}
	gr, _ := reg.Get("fig1")
	v := gr.view()

	var mu sync.Mutex
	fails := 2 // first two builds die; the third succeeds
	v.buildDisc = func(km score.KeyMeasure, nm score.NonKeyMeasure) *core.Discoverer {
		mu.Lock()
		failNow := fails > 0
		if failNow {
			fails--
		}
		mu.Unlock()
		if failNow {
			panic("injected Discoverer construction failure")
		}
		return core.New(v.Scores(), core.Options{Key: km, NonKey: nm, Parallelism: v.par})
	}

	// A herd races the poisoned build: the requests that draw a failing
	// build panic (their goroutines recover, like net/http would); every
	// other request must end with a real Discoverer — never a nil
	// dereference, never a permanent failure.
	const workers = 8
	var wg sync.WaitGroup
	got := make([]*core.Discoverer, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ok := func() (ok bool) {
					defer func() {
						if r := recover(); r != nil {
							ok = false // this request 500s; try again like a fresh request
						}
					}()
					got[w] = v.Discoverer(score.KeyCoverage, score.NonKeyCoverage)
					return true
				}()
				if ok {
					return
				}
			}
		}()
	}
	wg.Wait()
	for w, d := range got {
		if d == nil {
			t.Fatalf("worker %d ended with a nil Discoverer", w)
		}
		if d != got[0] {
			t.Fatalf("worker %d got a different Discoverer instance; the successful build should be shared", w)
		}
	}
	mu.Lock()
	remaining := fails
	mu.Unlock()
	if remaining != 0 {
		t.Fatalf("only %d of 2 injected failures consumed", 2-remaining)
	}
	// The successful build is cached: one more call, no new build.
	v.buildDisc = func(km score.KeyMeasure, nm score.NonKeyMeasure) *core.Discoverer {
		t.Fatal("rebuilt after success")
		return nil
	}
	if d := v.Discoverer(score.KeyCoverage, score.NonKeyCoverage); d != got[0] {
		t.Fatal("cached Discoverer not returned")
	}
}
