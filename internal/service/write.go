package service

// Write endpoints: live graph ingestion over HTTP.
//
//	POST /v1/graphs/{name}/edges     JSON edge batch
//	POST /v1/graphs/{name}/triples   native triple-format batch (text)
//
// Both routes require the graph to be registered mutable (previewd
// -mutable); writes to a static graph fail with 405, and writes to a
// read replica (previewd -follow) with 503 naming the leader — the
// ordering and Allow discipline live in Server.requireWritable. A batch
// is atomic:
// it is fully validated before the live graph is touched, applies as one
// mutation, bumps the epoch by exactly one, and triggers exactly one
// incremental score refresh. Failed batches mutate nothing and publish no
// epoch. Limits: Server.MaxBodyBytes on the request body and
// Server.MaxBatchEdges on the batch's edge count, both answered with 413.
//
// On a durable graph (Registry.AddLive with WithDurability) each batch
// is written to the WAL before its epoch is published; a failed log
// write answers 500 with no epoch published, and the graph stops
// accepting writes (dynamic.ErrWedged, also 500) until a restart
// re-syncs memory with the log.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/uta-db/previewtables/internal/dynamic"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/render"
	"github.com/uta-db/previewtables/internal/triple"
)

// edgeDoc is one relationship instance in a POST /edges batch. From, Rel
// and To are required. FromType and ToType name the endpoint entity
// types: given together they declare-or-find the relationship type
// (upsert, exactly like the native triple format's edge directive);
// omitted together, Rel must resolve to exactly one already-declared
// relationship type by surface name.
type edgeDoc struct {
	From     string `json:"from"`
	Rel      string `json:"rel"`
	FromType string `json:"from_type,omitempty"`
	ToType   string `json:"to_type,omitempty"`
	To       string `json:"to"`
}

// edgesRequest is the JSON body of POST /v1/graphs/{name}/edges.
type edgesRequest struct {
	Edges []edgeDoc `json:"edges"`
}

// mutationResponse is the JSON body of a successful write: the epoch the
// batch created and the graph's statistics at that epoch.
type mutationResponse struct {
	Graph        string               `json:"graph"`
	Epoch        uint64               `json:"epoch"`
	AppliedEdges int                  `json:"applied_edges"`
	Stats        render.GraphStatsDoc `json:"stats"`
	ElapsedMS    float64              `json:"elapsed_ms"`
}

// resolveError marks a well-formed batch that names things the graph does
// not have (unknown or ambiguous relationship type): HTTP 422, in
// contrast to malformed payloads (400).
type resolveError struct{ err error }

func (e *resolveError) Error() string { return e.err.Error() }

// readBody reads a write request's body under the server's size cap,
// distinguishing the over-cap failure (413) from transport errors.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", s.MaxBodyBytes))
		} else {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %v", err))
		}
		return nil, false
	}
	return body, true
}

// finishMutation publishes the batch's snapshot as the graph's current
// view and answers with the new epoch.
func (s *Server) finishMutation(w http.ResponseWriter, gr *Graph, snap *dynamic.Snapshot, applied int, start time.Time) {
	gr.publish(snap)
	s.writeJSON(w, mutationResponse{
		Graph:        gr.Name(),
		Epoch:        snap.Epoch,
		AppliedEdges: applied,
		Stats:        render.GraphStats(gr.Name(), snap.Stats).WithEpoch(snap.Epoch),
		ElapsedMS:    float64(time.Since(start).Microseconds()) / 1000,
	})
}

// writeMutationError maps an apply failure onto an HTTP status: batches
// naming unknown things are the client's 422; everything else — and in
// particular a durability (WAL) failure or a wedged graph — is the
// server's 500.
func (s *Server) writeMutationError(w http.ResponseWriter, err error) {
	var re *resolveError
	if errors.As(err, &re) {
		s.writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.writeError(w, http.StatusInternalServerError, err)
}

// handleEdges applies a JSON edge batch to a mutable graph.
func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request, gr *Graph) {
	start := time.Now()
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req edgesRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding edge batch: %v", err))
		return
	}
	if len(req.Edges) == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("empty batch: want {\"edges\": [...]}"))
		return
	}
	if len(req.Edges) > s.MaxBatchEdges {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d edges exceeds limit %d; split it", len(req.Edges), s.MaxBatchEdges))
		return
	}
	for i, e := range req.Edges {
		if e.From == "" || e.Rel == "" || e.To == "" {
			s.writeError(w, http.StatusBadRequest,
				fmt.Errorf("edge %d: from, rel and to are required", i))
			return
		}
		if (e.FromType == "") != (e.ToType == "") {
			s.writeError(w, http.StatusBadRequest,
				fmt.Errorf("edge %d: from_type and to_type must be given together or omitted together", i))
			return
		}
	}
	snap, err := gr.Live().ApplyBatch(batchKindEdges, body, func(g *dynamic.Graph) error {
		return applyEdgeBatch(g, req.Edges)
	})
	if err != nil {
		s.writeMutationError(w, err)
		return
	}
	s.finishMutation(w, gr, snap, len(req.Edges), start)
}

// applyEdgeBatch resolves and then applies one edge batch. Resolution is
// read-only and runs first over the whole batch, so a failing batch
// leaves the graph untouched; application afterwards is infallible
// (declare-or-find semantics throughout).
func applyEdgeBatch(g *dynamic.Graph, edges []edgeDoc) error {
	// One name → endpoint-signature index over the graph's relationship
	// types plus the batch's typed declarations (which participate in
	// resolving its untyped edges — a batch is one atomic unit), so
	// resolution is a map lookup per edge instead of a scan of every
	// relationship type.
	byName := map[string]map[[2]string]bool{}
	sign := func(rel string) map[[2]string]bool {
		pairs := byName[rel]
		if pairs == nil {
			pairs = map[[2]string]bool{}
			byName[rel] = pairs
		}
		return pairs
	}
	for r := 0; r < g.Stats().RelTypes; r++ {
		rt := g.Rel(graph.RelTypeID(r))
		sign(rt.Name)[[2]string{g.TypeName(rt.From), g.TypeName(rt.To)}] = true
	}
	for _, e := range edges {
		if e.FromType != "" {
			sign(e.Rel)[[2]string{e.FromType, e.ToType}] = true
		}
	}
	type spec struct{ from, to, fromType, toType, rel string }
	specs := make([]spec, len(edges))
	for i, e := range edges {
		sp := spec{from: e.From, to: e.To, fromType: e.FromType, toType: e.ToType, rel: e.Rel}
		if e.FromType == "" {
			cands := byName[e.Rel]
			switch len(cands) {
			case 0:
				return &resolveError{fmt.Errorf(
					"edge %d: unknown relationship type %q; declare it by sending from_type and to_type", i, e.Rel)}
			case 1:
				for p := range cands {
					sp.fromType, sp.toType = p[0], p[1]
				}
			default:
				return &resolveError{fmt.Errorf(
					"edge %d: relationship name %q is ambiguous (%d endpoint signatures); disambiguate with from_type and to_type", i, e.Rel, len(cands))}
			}
		}
		specs[i] = sp
	}
	for _, sp := range specs {
		ft := g.Type(sp.fromType)
		tt := g.Type(sp.toType)
		rel, err := g.RelType(sp.rel, ft, tt)
		if err != nil {
			return err // unreachable: endpoints were just declared
		}
		if err := g.AddEdge(g.Entity(sp.from, ft), g.Entity(sp.to, tt), rel); err != nil {
			return err // unreachable: ids come from the same graph
		}
	}
	return nil
}

// probeSink validates a triple batch without touching the live graph: it
// hands the parser self-consistent throwaway IDs and counts what a real
// application would do. Decode through a probeSink succeeding guarantees
// Decode of the same bytes through a real sink cannot fail — declaration
// is upsert throughout, so syntax is the only failure mode.
type probeSink struct {
	types      map[string]graph.TypeID
	ents       map[string]graph.EntityID
	rels       map[[3]string]bool
	edges      int
	directives int
}

func newProbeSink() *probeSink {
	return &probeSink{
		types: map[string]graph.TypeID{},
		ents:  map[string]graph.EntityID{},
		rels:  map[[3]string]bool{},
	}
}

func (p *probeSink) Type(name string) graph.TypeID {
	p.directives++
	id, ok := p.types[name]
	if !ok {
		id = graph.TypeID(len(p.types))
		p.types[name] = id
	}
	return id
}

func (p *probeSink) RelType(name string, from, to graph.TypeID) (graph.RelTypeID, error) {
	p.directives++
	p.rels[[3]string{name, fmt.Sprint(from), fmt.Sprint(to)}] = true
	return graph.RelTypeID(len(p.rels) - 1), nil
}

func (p *probeSink) Entity(name string, types ...graph.TypeID) graph.EntityID {
	p.directives++
	id, ok := p.ents[name]
	if !ok {
		id = graph.EntityID(len(p.ents))
		p.ents[name] = id
	}
	return id
}

func (p *probeSink) Edge(from, to graph.EntityID, rel graph.RelTypeID) error {
	p.directives++
	p.edges++
	return nil
}

// liveSink adapts dynamic.Graph to triple.Sink.
type liveSink struct{ g *dynamic.Graph }

func (s liveSink) Type(name string) graph.TypeID { return s.g.Type(name) }

func (s liveSink) RelType(name string, from, to graph.TypeID) (graph.RelTypeID, error) {
	return s.g.RelType(name, from, to)
}

func (s liveSink) Entity(name string, types ...graph.TypeID) graph.EntityID {
	return s.g.Entity(name, types...)
}

func (s liveSink) Edge(from, to graph.EntityID, rel graph.RelTypeID) error {
	return s.g.AddEdge(from, to, rel)
}

// handleTriples applies a native triple-format batch to a mutable graph.
// The body is the same line-oriented format triple.Unmarshal reads (type,
// rel, entity and edge directives), parsed and validated in full before
// the graph is touched.
func (s *Server) handleTriples(w http.ResponseWriter, r *http.Request, gr *Graph) {
	start := time.Now()
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	probe := newProbeSink()
	if err := triple.Decode(bytes.NewReader(body), probe); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if probe.directives == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("empty batch: want native triple-format directives"))
		return
	}
	if probe.edges > s.MaxBatchEdges {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d edges exceeds limit %d; split it", probe.edges, s.MaxBatchEdges))
		return
	}
	snap, err := gr.Live().ApplyBatch(batchKindTriples, body, func(g *dynamic.Graph) error {
		return triple.Decode(bytes.NewReader(body), liveSink{g})
	})
	if err != nil {
		s.writeMutationError(w, err)
		return
	}
	s.finishMutation(w, gr, snap, probe.edges, start)
}
