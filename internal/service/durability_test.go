package service

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/uta-db/previewtables/internal/dynamic"
	"github.com/uta-db/previewtables/internal/fig1"
	"github.com/uta-db/previewtables/internal/score"
	"github.com/uta-db/previewtables/internal/storage"
)

// durableSession is one previewd "process": a registry serving the fig1
// graph durably. crash() abandons it SIGKILL-style — no checkpoint, no
// WAL close, no flush — leaving only what Append already put on disk.
type durableSession struct {
	live *dynamic.Live
	wal  *storage.WAL
	srv  *Server // the handler behind ts, for wrapping in test proxies
	ts   *httptest.Server
}

// startDurable boots a session from whatever ckptDir+walDir hold,
// exactly like previewd -mutable -wal-dir does at startup.
func startDurable(t testing.TB, ckptDir, walDir string) *durableSession {
	t.Helper()
	rec, err := RecoverLive(fig1.Graph(), "fig1", ckptDir, walDir, score.DefaultWalkOptions())
	if err != nil {
		t.Fatal(err)
	}
	live, wal := rec.Live, rec.WAL
	t.Cleanup(func() { wal.Close() })
	reg := NewRegistry()
	if err := reg.AddLive("fig1", live, WithDurability(wal), WithOrigin(rec.Origin, rec.OriginEpoch)); err != nil {
		t.Fatal(err)
	}
	srv := New(reg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &durableSession{live: live, wal: wal, srv: srv, ts: ts}
}

func (s *durableSession) crash() {
	// SIGKILL semantics: the HTTP listener dies with the process; the
	// in-memory graph, pending checkpoints and the open WAL handle are
	// simply abandoned. (Cleanup closes the leaked fd at test end.)
	s.ts.Close()
}

// crashBatches drives the write path through both routes; each entry is
// one epoch. No batch repeats an edge, so the multigraph dedup
// divergence documented on dynamic.Graph.Freeze cannot blur the
// byte-identity assertions.
var crashBatches = []struct{ route, body string }{
	{"edges", `{"edges":[
		{"from":"Danny Elfman","rel":"Music","from_type":"FILM COMPOSER","to_type":"` + fig1.Film + `","to":"Men in Black"},
		{"from":"Danny Elfman","rel":"Music","to":"Men in Black II"}]}`},
	{"triples", "type \"STUDIO\"\nentity \"Columbia Pictures\" \"STUDIO\"\n" +
		"edge \"Columbia Pictures\" \"Produced By\" \"STUDIO\" \"" + fig1.Film + "\" \"Men in Black\"\n" +
		"edge \"Columbia Pictures\" \"Produced By\" \"STUDIO\" \"" + fig1.Film + "\" \"Hancock\"\n"},
	{"edges", `{"edges":[{"from":"Alex Proyas","rel":"Director","to":"Hancock"}]}`},
	{"edges", `{"edges":[{"from":"Hancock","rel":"Genres","to":"Action Film"}]}`},
	{"triples", "edge \"Columbia Pictures\" \"Produced By\" \"STUDIO\" \"" + fig1.Film + "\" \"I, Robot\"\n"},
	{"edges", `{"edges":[{"from":"Peter Berg","rel":"Director","to":"I, Robot"}]}`},
}

func postBatch(t testing.TB, ts *httptest.Server, route, body string) {
	t.Helper()
	status, raw := post(t, ts.URL+"/v1/graphs/fig1/"+route, body)
	if status != http.StatusOK {
		t.Fatalf("POST %s: status %d body %s", route, status, raw)
	}
}

// snapshotResponses fetches every read surface whose bytes must survive
// a crash: stats, JSON previews (both measure pairs for the key axis,
// with sampled tuples), and the markdown rendering. Read bodies carry
// no timing field (that moved to the X-Previewtables-Elapsed header),
// so the comparison is raw bytes with nothing masked.
func snapshotResponses(t testing.TB, ts *httptest.Server) map[string]string {
	t.Helper()
	urls := []string{
		"/v1/graphs/fig1/stats",
		"/v1/graphs/fig1/preview?k=2&n=3&tuples=3&key=coverage&nonkey=coverage",
		"/v1/graphs/fig1/preview?k=3&n=6&tuples=2&key=coverage&nonkey=entropy",
		"/v1/graphs/fig1/preview?k=2&n=4&mode=tight&d=2&key=coverage&nonkey=coverage",
		"/v1/graphs/fig1/render?k=2&n=3&tuples=3&key=coverage&nonkey=coverage&format=markdown",
	}
	out := make(map[string]string, len(urls))
	for _, u := range urls {
		resp, err := http.Get(ts.URL + u)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d body %s", u, resp.StatusCode, raw)
		}
		out[u] = string(raw)
	}
	return out
}

func assertSameResponses(t *testing.T, before, after map[string]string) {
	t.Helper()
	for u, want := range before {
		if got := after[u]; got != want {
			t.Errorf("GET %s diverged after recovery:\npre-crash:  %s\npost-crash: %s", u, want, got)
		}
	}
}

// TestKillAndRestartWALOnly is the end-to-end crash test with no
// checkpoint at all: the whole state is base graph + WAL. Recovery
// replays the identical batch sequence through the identical code path,
// so every read response — including entropy scores and sampled tuples —
// is byte-identical to the acknowledged pre-crash responses.
func TestKillAndRestartWALOnly(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal", "fig1")

	s1 := startDurable(t, "", walDir)
	for _, b := range crashBatches {
		postBatch(t, s1.ts, b.route, b.body)
	}
	wantEpoch := uint64(len(crashBatches))
	if got := s1.live.Snapshot().Epoch; got != wantEpoch {
		t.Fatalf("pre-crash epoch = %d, want %d", got, wantEpoch)
	}
	before := snapshotResponses(t, s1.ts)
	s1.crash()

	s2 := startDurable(t, "", walDir)
	if got := s2.live.Snapshot().Epoch; got != wantEpoch {
		t.Fatalf("recovered epoch = %d, want %d", got, wantEpoch)
	}
	assertSameResponses(t, before, snapshotResponses(t, s2.ts))

	// The recovered graph is live, not a read-only reconstruction: the
	// next batch continues the epoch sequence durably.
	postBatch(t, s2.ts, "edges", `{"edges":[{"from":"Men in Black","rel":"Genres","to":"Action Film"}]}`)
	if got := s2.live.Snapshot().Epoch; got != wantEpoch+1 {
		t.Fatalf("post-recovery epoch = %d, want %d", got, wantEpoch+1)
	}
}

// TestKillAndRestartCheckpointPlusWAL crashes after a mid-stream
// checkpoint: recovery loads the newest snapshot, replays only the WAL
// tail past it, resumes at the exact pre-crash epoch, and serves
// byte-identical coverage previews. It also pins the log-bounding
// invariant: the checkpoint truncated every WAL segment it covers.
func TestKillAndRestartCheckpointPlusWAL(t *testing.T) {
	root := t.TempDir()
	ckptDir := filepath.Join(root, "ckpt")
	walDir := filepath.Join(root, "wal", "fig1")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}

	s1 := startDurable(t, ckptDir, walDir)
	mid := len(crashBatches) / 2
	for _, b := range crashBatches[:mid] {
		postBatch(t, s1.ts, b.route, b.body)
	}
	// One checkpoint tick, as previewd's loop would run it. Tiny segments
	// so "segments older than the checkpoint" is plural and observable.
	snap := s1.live.Snapshot()
	ck := storage.NewDurableCheckpointer(ckptDir, "fig1", s1.wal)
	if wrote, err := ck.Save(snap.Frozen, snap.Epoch); err != nil || !wrote {
		t.Fatalf("checkpoint: wrote=%v err=%v", wrote, err)
	}
	recs, err := storage.ReplayWAL(walDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Epoch <= snap.Epoch {
			t.Fatalf("WAL still holds epoch %d, already covered by the epoch-%d checkpoint", r.Epoch, snap.Epoch)
		}
	}
	for _, b := range crashBatches[mid:] {
		postBatch(t, s1.ts, b.route, b.body)
	}
	wantEpoch := uint64(len(crashBatches))
	before := snapshotResponses(t, s1.ts)
	s1.crash()

	s2 := startDurable(t, ckptDir, walDir)
	if got := s2.live.Snapshot().Epoch; got != wantEpoch {
		t.Fatalf("recovered epoch = %d, want %d (checkpoint %d + WAL tail)", got, wantEpoch, snap.Epoch)
	}
	// Entropy accumulates its aggregate in insertion order, and a
	// checkpoint canonicalizes edge order — so the entropy preview is
	// equal to the last ulp but not guaranteed bit-identical here. Every
	// count-backed surface must be byte-identical.
	after := snapshotResponses(t, s2.ts)
	delete(before, "/v1/graphs/fig1/preview?k=3&n=6&tuples=2&key=coverage&nonkey=entropy")
	assertSameResponses(t, before, after)

	postBatch(t, s2.ts, "edges", `{"edges":[{"from":"Men in Black","rel":"Genres","to":"Action Film"}]}`)
	if got := s2.live.Snapshot().Epoch; got != wantEpoch+1 {
		t.Fatalf("post-recovery epoch = %d, want %d", got, wantEpoch+1)
	}
}

// TestRecoverLiveDiscardsTornTail: a crash mid-append leaves half a
// record; the batch was never acknowledged, so recovery resumes at the
// last intact epoch and new writes land cleanly after the trim.
func TestRecoverLiveDiscardsTornTail(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	s1 := startDurable(t, "", walDir)
	for _, b := range crashBatches[:3] {
		postBatch(t, s1.ts, b.route, b.body)
	}
	s1.crash()
	segs, err := filepath.Glob(filepath.Join(walDir, "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v (%v)", segs, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 'm', 'i', 'd', '-', 'a', 'p', 'p', 'e', 'n', 'd'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := startDurable(t, "", walDir)
	if got := s2.live.Snapshot().Epoch; got != 3 {
		t.Fatalf("recovered epoch = %d, want 3 (torn tail discarded)", got)
	}
	postBatch(t, s2.ts, "edges", crashBatches[3].body)
	if got := s2.live.Snapshot().Epoch; got != 4 {
		t.Fatalf("post-trim epoch = %d, want 4", got)
	}
}

// TestWriteLogFailureAnswers500 pins the failed-durability contract on
// the HTTP surface: the batch answers 500, no epoch is published, and
// the graph stays wedged (also 500) until restart.
func TestWriteLogFailureAnswers500(t *testing.T) {
	dg, err := dynamic.FromEntityGraph(fig1.Graph())
	if err != nil {
		t.Fatal(err)
	}
	live, err := dynamic.NewLive(dg, score.DefaultWalkOptions())
	if err != nil {
		t.Fatal(err)
	}
	live.SetDurability(func(uint64, byte, []byte) error {
		return errors.New("injected log-write failure")
	})
	reg := NewRegistry()
	if err := reg.AddLive("fig1", live); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg))
	defer ts.Close()

	body := `{"edges":[{"from":"Alex Proyas","rel":"Director","to":"Hancock"}]}`
	status, raw := post(t, ts.URL+"/v1/graphs/fig1/edges", body)
	if status != http.StatusInternalServerError || !strings.Contains(string(raw), "injected log-write failure") {
		t.Fatalf("log failure: status %d body %s, want 500 naming the cause", status, raw)
	}
	var stats struct {
		Epoch *uint64 `json:"epoch"`
	}
	if st := getJSON(t, ts.URL+"/v1/graphs/fig1/stats", &stats); st != http.StatusOK {
		t.Fatalf("stats: %d", st)
	}
	if stats.Epoch == nil || *stats.Epoch != 0 {
		t.Fatalf("epoch published despite log failure: %v", stats.Epoch)
	}
	if live.Refreshes() != 0 {
		t.Fatalf("refreshes = %d, want 0", live.Refreshes())
	}

	status, raw = post(t, ts.URL+"/v1/graphs/fig1/edges", body)
	if status != http.StatusInternalServerError || !strings.Contains(string(raw), "wedged") {
		t.Fatalf("wedged write: status %d body %s, want 500 mentioning wedged", status, raw)
	}
}

// TestDurableWritesReachDiskPerBatch: WithDurability means an
// acknowledged batch is already replayable — before any checkpoint and
// before any shutdown hook.
func TestDurableWritesReachDiskPerBatch(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	s := startDurable(t, "", walDir)
	for i, b := range crashBatches[:2] {
		postBatch(t, s.ts, b.route, b.body)
		recs, err := storage.ReplayWAL(walDir)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != i+1 || recs[i].Epoch != uint64(i+1) {
			t.Fatalf("after batch %d: %d records on disk, last epoch %v", i+1, len(recs), recs)
		}
	}
}

func BenchmarkRecovery(b *testing.B) {
	// A realistic tail: one checkpointless WAL holding 100 single-edge
	// batches against the Fig. 1 base — recovery replays all of them and
	// rebuilds scores once.
	walDir := filepath.Join(b.TempDir(), "wal")
	wal, err := storage.OpenWAL(walDir, storage.WALOptions{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		payload := fmt.Sprintf(`{"edges":[{"from":"Film %d","rel":"Genres","from_type":%q,"to_type":"FILM GENRE","to":"Action Film"}]}`, i, fig1.Film)
		if err := wal.Append(uint64(i+1), batchKindEdges, []byte(payload)); err != nil {
			b.Fatal(err)
		}
	}
	wal.Close()
	base := fig1.Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := RecoverLive(base, "fig1", "", walDir, score.DefaultWalkOptions())
		if err != nil {
			b.Fatal(err)
		}
		if rec.Live.Snapshot().Epoch != 100 {
			b.Fatalf("recovered epoch %d", rec.Live.Snapshot().Epoch)
		}
		rec.WAL.Close()
	}
}

// TestRecoverLiveRebasesWALBehindCheckpoint: corruption can shorten the
// WAL's valid prefix to below the checkpoint epoch. Everything lost was
// already in the snapshot, so recovery must succeed AND the first
// post-recovery write must append cleanly — not trip the WAL's
// contiguity check against the stale tail and wedge the graph.
func TestRecoverLiveRebasesWALBehindCheckpoint(t *testing.T) {
	root := t.TempDir()
	ckptDir := filepath.Join(root, "ckpt")
	walDir := filepath.Join(root, "wal")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}

	s1 := startDurable(t, ckptDir, walDir)
	for _, b := range crashBatches[:3] {
		postBatch(t, s1.ts, b.route, b.body)
	}
	// Checkpoint at epoch 3 WITHOUT WAL truncation (nil wal), so the log
	// still holds epochs 1..3 — then corrupt it in the middle, shrinking
	// the valid prefix to epoch 1 < checkpoint epoch 3.
	snap := s1.live.Snapshot()
	if _, err := storage.NewDurableCheckpointer(ckptDir, "fig1", nil).Save(snap.Frozen, snap.Epoch); err != nil {
		t.Fatal(err)
	}
	s1.crash()
	segs, err := filepath.Glob(filepath.Join(walDir, "*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want one segment: %v (%v)", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if recs, err := storage.ReplayWAL(walDir); err == nil || len(recs) >= 3 {
		t.Fatalf("corruption did not shrink the prefix: %d records, err %v", len(recs), err)
	}

	s2 := startDurable(t, ckptDir, walDir)
	if got := s2.live.Snapshot().Epoch; got != 3 {
		t.Fatalf("recovered epoch = %d, want 3 (checkpoint)", got)
	}
	// The write must succeed and be durable at epoch 4.
	postBatch(t, s2.ts, "edges", crashBatches[3].body)
	if got := s2.live.Snapshot().Epoch; got != 4 {
		t.Fatalf("post-recovery epoch = %d, want 4", got)
	}
	s2.crash()
	s3 := startDurable(t, ckptDir, walDir)
	if got := s3.live.Snapshot().Epoch; got != 4 {
		t.Fatalf("second recovery epoch = %d, want 4 (re-based WAL replays)", got)
	}
}
