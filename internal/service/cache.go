package service

// Response cache: the serving-layer consequence of the replication
// work's byte-identity proof. Within one epoch every read body is a pure
// function of (graph, epoch, endpoint, canonicalized params) — PR 5's
// differential tests assert it literally across processes — so there is
// no reason to re-discover, re-render and re-serialize JSON per request.
// This file caches the exact serialized bytes of the first rendering and
// serves them to every later request at the same key.
//
// Invalidation is implicit: per-graph entries live inside the epoch view
// (registry.go), so a view swap — a leader write batch or a follower's
// ApplyShipped, both of which publish through Graph.publish — abandons
// the whole map to the garbage collector along with the old snapshot.
// Nothing is ever deleted eagerly and no generation counters exist; the
// epoch in the key IS the invalidation. The /v1/graphs listing spans
// graphs, so it gets a one-slot cache keyed by the composite (name,
// epoch) vector of every registered graph (listCache).
//
// Misses are deduplicated singleflight-style, like the Discoverer cache:
// a thundering herd racing for one uncached key performs one discovery +
// render while everyone else blocks for the finished bytes. Failed
// builds are never cached — errors are cheap to recompute and must not
// shadow a later success (the search budget, for one, is configurable).
//
// ETags are epoch-derived and strong: a hash of (graph, epoch, mutable,
// endpoint, canonical params). Two consequences fall out of bodies being
// pure functions of that tuple. First, a conditional GET whose
// If-None-Match carries the current tag can be answered 304 before
// touching the cache — the tag alone proves the client's copy is the
// current representation, because tags are minted only by successful
// renders and change with the epoch. Second, a leader and a caught-up
// follower mint identical tags, so validators survive failover between
// byte-identical replicas. The "*" form is deliberately excluded from
// the pre-render fast path: it asserts "any current representation
// exists", which cannot be known without rendering (a request can be
// well-formed yet 422), so it is honored only after a successful build.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// elapsedHeader carries the wall time one request actually cost, in
// milliseconds. It replaces the old elapsed_ms body field: timing is a
// per-request datum, and keeping it in the body would make two renders
// of the same epoch differ — destroying both the cache's byte-identity
// contract and the replication differential's literal comparison.
const elapsedHeader = "X-Previewtables-Elapsed"

// cacheEntry is one immutable rendered response: the exact bytes of a
// 200 body plus the headers that describe them. Entries are never
// mutated after construction, so serving one concurrently is safe
// without copies.
type cacheEntry struct {
	contentType string
	etag        string
	body        []byte
}

// respSlot is the singleflight slot for one cache key: the goroutine
// that created the slot builds, everyone else blocks on done. Exactly
// one of ent/err is set when done closes.
type respSlot struct {
	done chan struct{}
	ent  *cacheEntry
	err  error
}

// maxCachedResponses bounds one view's response cache. The parameter
// space is capped (maxK × maxN × modes × measures × tuples), but its
// product is large enough that an adversarial scan could otherwise pin
// a view's memory; at the bound, admitting a new key evicts an arbitrary
// completed entry, so a hot key that first arrives after the cap is
// still cacheable (an evicted entry just rebuilds on its next miss).
const maxCachedResponses = 4096

// responseCacher is the shape serveCached needs: the per-view map and
// the cross-graph listing slot both implement it.
type responseCacher interface {
	// cachedResponse returns the entry for key, building at most once
	// per key however many requests race. The bool reports whether the
	// caller was served from cache (false for the builder itself).
	cachedResponse(key string, build func() (*cacheEntry, error)) (*cacheEntry, bool, error)
}

// cachedResponse implements responseCacher on the epoch view. The view
// is the unit of invalidation: a published epoch installs a fresh view
// with an empty map, so entries for dead epochs are unreachable the
// moment the swap lands, even for requests already holding the old view
// (they serve the old epoch consistently, which is the read contract —
// a request started at epoch e keeps e throughout).
func (v *view) cachedResponse(key string, build func() (*cacheEntry, error)) (*cacheEntry, bool, error) {
	v.respMu.Lock()
	if v.resp == nil {
		v.resp = make(map[string]*respSlot)
	}
	if slot, ok := v.resp[key]; ok {
		v.respMu.Unlock()
		<-slot.done
		return slot.ent, true, slot.err
	}
	slot := &respSlot{done: make(chan struct{})}
	if len(v.resp) >= maxCachedResponses {
		// At capacity: make room for the newcomer by dropping an arbitrary
		// *completed* entry (map iteration order picks it). In-flight slots
		// are never evicted — other requests are parked on them, and
		// removing one would let a racing request start a duplicate build.
		for k, s := range v.resp {
			completed := false
			select {
			case <-s.done:
				completed = true
			default:
			}
			if completed {
				delete(v.resp, k)
				break
			}
		}
	}
	v.resp[key] = slot
	v.respMu.Unlock()
	slot.ent, slot.err = build()
	close(slot.done)
	if slot.err != nil {
		// Failed builds are not cached: the next request retries.
		v.respMu.Lock()
		if v.resp[key] == slot {
			delete(v.resp, key)
		}
		v.respMu.Unlock()
	}
	return slot.ent, false, slot.err
}

// etagScope is the graph-identity half of an ETag and cache key: who the
// graph is and which epoch is being represented. Static graphs never
// change, so their scope is constant for the process lifetime.
func (v *view) etagScope(name string) string {
	return fmt.Sprintf("%s|%d|%t", name, v.epoch, v.mutable)
}

// listCache caches the single current /v1/graphs rendering. The key is
// the composite scope over every registered graph's (name, epoch), so
// any graph's epoch swap implicitly invalidates it; only the newest key
// is retained — the listing has one current representation, and stale
// epochs' entries would be dead weight.
type listCache struct {
	mu   sync.Mutex
	key  string
	slot *respSlot
}

func (c *listCache) cachedResponse(key string, build func() (*cacheEntry, error)) (*cacheEntry, bool, error) {
	c.mu.Lock()
	if c.slot != nil && c.key == key {
		slot := c.slot
		c.mu.Unlock()
		<-slot.done
		return slot.ent, true, slot.err
	}
	slot := &respSlot{done: make(chan struct{})}
	c.slot, c.key = slot, key
	c.mu.Unlock()
	slot.ent, slot.err = build()
	close(slot.done)
	if slot.err != nil {
		c.mu.Lock()
		if c.slot == slot {
			c.slot = nil
		}
		c.mu.Unlock()
	}
	return slot.ent, false, slot.err
}

// etagFor mints the strong ETag for one (scope, key) pair. Minting is a
// pure function, which is what makes the pre-render 304 fast path and
// cross-replica validator stability work; the hash keeps graph names and
// parameters out of the wire format and makes the tag's length uniform.
func etagFor(scope, key string) string {
	sum := sha256.Sum256([]byte(scope + "\x00" + key))
	return `"` + hex.EncodeToString(sum[:16]) + `"`
}

// etagMatches reports whether an If-None-Match header names etag. Weak
// comparison (RFC 9110 §8.8.3.2): a W/ prefix is ignored, so a client
// that downgraded the tag still revalidates successfully. The "*" form
// is NOT handled here — see the file comment; callers decide it with
// knowledge of whether a representation exists.
func etagMatches(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		t := strings.TrimSpace(part)
		t = strings.TrimPrefix(t, "W/")
		if t == etag {
			return true
		}
	}
	return false
}

// httpError pairs a build failure with the status it maps to, so error
// mapping survives the trip through a build closure.
type httpError struct {
	status int
	err    error
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

// marshalJSONBody serializes one document exactly as writeJSON streams
// it (no HTML escaping, trailing newline), so cached bodies are
// byte-identical to what the uncached encoder would have produced.
func marshalJSONBody(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// serveCached answers one read request from cache: mint the ETag, try
// the conditional fast path, then look up (or build) the rendered bytes
// and write them with full conditional-GET and HEAD semantics. All four
// read surfaces (list, stats, preview, render) funnel through here, so
// the header discipline — ETag, Content-Type, Content-Length, elapsed —
// is uniform by construction.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, scope, key string, cache responseCacher, build func() (*cacheEntry, error)) {
	start := time.Now()
	etag := etagFor(scope, key)
	if inm := r.Header.Get("If-None-Match"); inm != "" && inm != "*" && etagMatches(inm, etag) {
		// The client already holds this epoch's bytes: 304 without
		// rendering, looking up, or even holding the cache lock.
		s.cacheHits.Add(1)
		h := w.Header()
		h.Set("ETag", etag)
		setElapsed(h, start)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	sealed := func() (*cacheEntry, error) {
		ent, err := build()
		if err != nil {
			return nil, err
		}
		ent.etag = etag
		return ent, nil
	}
	var (
		ent *cacheEntry
		hit bool
		err error
	)
	if s.NoCache {
		ent, err = sealed()
	} else {
		ent, hit, err = cache.cachedResponse(key, sealed)
	}
	if err != nil {
		var he *httpError
		if errors.As(err, &he) {
			s.writeError(w, he.status, he.err)
		} else {
			s.writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	if hit {
		s.cacheHits.Add(1)
	} else {
		s.cacheMisses.Add(1)
	}
	h := w.Header()
	h.Set("ETag", ent.etag)
	h.Set("Content-Type", ent.contentType)
	setElapsed(h, start)
	// Post-build conditional check: covers "*" (a representation
	// provably exists now) and clients that raced the fast path.
	if inm := r.Header.Get("If-None-Match"); inm == "*" || (inm != "" && etagMatches(inm, ent.etag)) {
		h.Del("Content-Type")
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Length", strconv.Itoa(len(ent.body)))
	if r.Method == http.MethodHead {
		// Identical headers to GET — ETag, Content-Type, Content-Length —
		// with no body; net/http suppresses any body on HEAD, but not
		// writing one keeps the hit path allocation-free.
		w.WriteHeader(http.StatusOK)
		return
	}
	_, _ = w.Write(ent.body)
}

// setElapsed stamps the per-request wall time on the response headers,
// in fractional milliseconds (the old body field's unit).
func setElapsed(h http.Header, start time.Time) {
	h.Set(elapsedHeader, strconv.FormatFloat(float64(time.Since(start).Microseconds())/1000, 'f', -1, 64))
}

// CacheStats reports the response cache's cumulative hit and miss
// counts. A hit is any request served without rendering: a cached-bytes
// lookup, a singleflight wait on another request's render, or a
// fast-path 304. previewd logs these and loadgen records the hit rate
// into the serving benchmark trajectory.
func (s *Server) CacheStats() (hits, misses uint64) {
	return s.cacheHits.Load(), s.cacheMisses.Load()
}
