package service

// Serving-layer differential for incremental discovery: a maintained
// server (the default) must serve byte-identical preview bodies to a
// forceCold reference server sharing the same registry, at every epoch
// of a write workload, on the leader AND on a WAL-shipping follower.
// Plus the anytime contract: ?anytime=1 answers immediately, converges
// to the exact bytes, and surfaces convergence in the stats doc.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/uta-db/previewtables/internal/fig1"
)

// incrementalReadURLs exercises every discovery mode the incremental
// path serves, across measure pairs, with and without tuples. The
// infeasible diverse distance pins error-certificate behavior (both
// servers must 422 identically, which readBodies tolerates).
var incrementalReadURLs = []string{
	"/v1/graphs/fig1/preview?k=2&n=3",
	"/v1/graphs/fig1/preview?k=2&n=3&tuples=3",
	"/v1/graphs/fig1/preview?k=2&n=4&mode=tight&d=2",
	"/v1/graphs/fig1/preview?k=2&n=4&mode=tight&d=2&key=walk&nonkey=entropy",
	"/v1/graphs/fig1/preview?k=3&n=6&mode=tight&d=3&tuples=2",
	"/v1/graphs/fig1/preview?k=2&n=4&mode=diverse&d=2",
	"/v1/graphs/fig1/preview?k=2&n=4&mode=diverse&d=2&key=coverage&nonkey=entropy",
	"/v1/graphs/fig1/preview?k=2&n=4&mode=diverse&d=9",
	"/v1/graphs/fig1/render?k=2&n=4&mode=tight&d=2&tuples=2&format=markdown",
}

// readBodies fetches urls from base, folding status, ETag and body into
// one comparable string. Unlike readSurfaces it accepts 422s — the
// infeasible constraint must fail identically on both servers.
func readBodies(t testing.TB, base string, urls []string) map[string]string {
	t.Helper()
	out := make(map[string]string, len(urls))
	for _, u := range urls {
		resp, err := http.Get(base + u)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("GET %s: status %d body %s", u, resp.StatusCode, raw)
		}
		out[u] = fmt.Sprintf("%d\n%s\n%s", resp.StatusCode, resp.Header.Get("ETag"), raw)
	}
	return out
}

// coldMirror wraps a second Server over the same registry with the
// incremental path disabled and the response cache off: its bodies are
// what the pre-incremental serving stack would have produced.
func coldMirror(reg *Registry) *httptest.Server {
	ref := New(reg)
	ref.forceCold = true
	ref.NoCache = true
	return httptest.NewServer(ref)
}

// TestIncrementalServingDifferential is the acceptance test for the
// tentpole: at every epoch of a write workload — including a structural
// batch (new type) — the maintained leader and a caught-up follower each
// serve bytes identical to their cold reference, and the maintained
// state demonstrably served from certificates rather than re-searching
// every request.
func TestIncrementalServingDifferential(t *testing.T) {
	root := t.TempDir()
	leader := startDurable(t, "", filepath.Join(root, "leader-wal"))
	leaderRef := coldMirror(leader.srv.reg)
	t.Cleanup(leaderRef.Close)

	node := startFollowerNode(t, leader.ts.URL, "", "")
	followerRef := coldMirror(node.reg)
	t.Cleanup(followerRef.Close)

	compare := func(what, mainBase, refBase string) {
		t.Helper()
		got := readBodies(t, mainBase, incrementalReadURLs)
		want := readBodies(t, refBase, incrementalReadURLs)
		for u, w := range want {
			if g := got[u]; g != w {
				t.Fatalf("%s: GET %s diverged from cold reference:\ncold:        %s\nincremental: %s", what, u, w, g)
			}
		}
	}

	compare("leader epoch 0", leader.ts.URL, leaderRef.URL)
	for i, b := range crashBatches {
		postBatch(t, leader.ts, b.route, b.body)
		// Double-read: the second pass hits the epoch's certificates and
		// response cache and must not change a byte.
		compare(fmt.Sprintf("leader epoch %d", i+1), leader.ts.URL, leaderRef.URL)
		compare(fmt.Sprintf("leader epoch %d (warm)", i+1), leader.ts.URL, leaderRef.URL)
	}

	wantEpoch := uint64(len(crashBatches))
	if err := node.f.WaitCaughtUp(wantEpoch, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	compare("follower caught up", node.ts.URL, followerRef.URL)
	// Cross-node: a caught-up follower's maintained bodies must also
	// equal the leader's (replication byte-identity survives the
	// incremental path).
	compare("leader vs follower", leader.ts.URL, node.ts.URL)

	// The machinery must have engaged: some queries were served from
	// carried-forward certificates instead of full searches.
	gr, ok := leader.srv.reg.Get("fig1")
	if !ok {
		t.Fatal("fig1 not registered")
	}
	gr.maintMu.Lock()
	var certServes, fullSearches int64
	for _, m := range gr.maintained {
		certServes += m.CertServes()
		fullSearches += m.FullSearches()
	}
	gr.maintMu.Unlock()
	if certServes == 0 {
		t.Fatalf("no certificate serves on the leader (full searches: %d): incremental path never engaged", fullSearches)
	}
}

// anytimeResp is the slice of previewResponse the anytime tests decode.
type anytimeResp struct {
	Epoch     *uint64 `json:"epoch"`
	Converged *bool   `json:"converged"`
	Preview   struct {
		Score  float64         `json:"score"`
		Tables json.RawMessage `json:"tables"`
	} `json:"preview"`
}

func getAnytime(t *testing.T, url string) (int, anytimeResp, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var ar anytimeResp
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &ar); err != nil {
			t.Fatalf("GET %s: decoding %s: %v", url, raw, err)
		}
	}
	return resp.StatusCode, ar, string(raw)
}

// TestAnytimePreviewConverges: an ?anytime=1 request answers 200 with a
// converged marker; polling the same URL eventually yields converged
// true with exactly the exact endpoint's preview; and the stats doc
// reports the convergence watermark.
func TestAnytimePreviewConverges(t *testing.T) {
	leader := startDurable(t, "", filepath.Join(t.TempDir(), "wal"))
	ts := leader.ts

	const q = "/v1/graphs/fig1/preview?k=2&n=4&mode=diverse&d=2"
	status, exact, _ := getAnytime(t, ts.URL+q)
	if status != http.StatusOK {
		t.Fatalf("exact preview: status %d", status)
	}

	deadline := time.Now().Add(10 * time.Second)
	var last anytimeResp
	for {
		st, ar, raw := getAnytime(t, ts.URL+q+"&anytime=1")
		if st != http.StatusOK {
			t.Fatalf("anytime preview: status %d body %s", st, raw)
		}
		if ar.Converged == nil {
			t.Fatalf("anytime preview carries no converged field: %s", raw)
		}
		last = ar
		if *ar.Converged {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("anytime preview never converged")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if last.Preview.Score != exact.Preview.Score || string(last.Preview.Tables) != string(exact.Preview.Tables) {
		t.Fatalf("converged anytime preview differs from exact:\nanytime: %.4f %s\nexact:   %.4f %s",
			last.Preview.Score, last.Preview.Tables, exact.Preview.Score, exact.Preview.Tables)
	}

	// Stats now reports convergence at the current epoch.
	resp, err := http.Get(ts.URL + "/v1/graphs/fig1/stats")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var stats struct {
		Epoch   *uint64 `json:"epoch"`
		Anytime *struct {
			Converged    bool   `json:"converged"`
			RefinedEpoch uint64 `json:"refined_epoch"`
		} `json:"anytime"`
	}
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Anytime == nil {
		t.Fatalf("stats doc missing anytime block after anytime requests: %s", raw)
	}
	if !stats.Anytime.Converged {
		t.Fatalf("stats doc reports unconverged after refinement: %s", raw)
	}
	if stats.Epoch != nil && stats.Anytime.RefinedEpoch != *stats.Epoch {
		t.Fatalf("refined_epoch %d != epoch %d: %s", stats.Anytime.RefinedEpoch, *stats.Epoch, raw)
	}

	// A write invalidates convergence: the next anytime answer at the
	// new epoch starts unconverged again (or re-certifies, but the stats
	// doc must track whichever happened, not report stale convergence).
	postBatch(t, ts, "edges",
		`{"edges":[{"from":"Hancock","rel":"Genres","from_type":"`+fig1.Film+`","to_type":"`+fig1.FilmGenre+`","to":"Science Fiction"}]}`)
	resp2, err := http.Get(ts.URL + "/v1/graphs/fig1/stats")
	if err != nil {
		t.Fatal(err)
	}
	raw2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if err := json.Unmarshal(raw2, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Anytime == nil {
		t.Fatalf("stats doc lost its anytime block after a write: %s", raw2)
	}
	if stats.Epoch != nil && stats.Anytime.RefinedEpoch >= *stats.Epoch && !stats.Anytime.Converged {
		t.Fatalf("stats doc inconsistent: refined %d >= epoch %d but converged=false", stats.Anytime.RefinedEpoch, *stats.Epoch)
	}
}

// TestAnytimeBudgetBounded: a tiny anytime budget still answers 200
// with a valid best-so-far preview (budget 2 scores fig1's first
// feasible pair before exhausting), deterministically; a budget too
// small to score anything fails 422 like an exhausted exact search.
func TestAnytimeBudgetBounded(t *testing.T) {
	reg, _ := newTestServer(t)

	// A second server with a tiny anytime budget over the same registry.
	tiny := New(reg)
	tiny.AnytimeBudget = 2
	tiny.NoCache = true // every request recomputes; determinism is real, not cached
	tinyTS := httptest.NewServer(tiny)
	t.Cleanup(tinyTS.Close)

	const q = "/v1/graphs/fig1/preview?k=2&n=4&mode=diverse&d=2&anytime=1"
	st, ar, raw := getAnytime(t, tinyTS.URL+q)
	if st != http.StatusOK {
		t.Fatalf("budget-2 anytime: status %d body %s", st, raw)
	}
	if ar.Preview.Score <= 0 {
		t.Fatalf("budget-2 anytime returned empty preview: %s", raw)
	}
	st2, ar2, raw2 := getAnytime(t, tinyTS.URL+q)
	if st2 != http.StatusOK || ar2.Preview.Score != ar.Preview.Score || string(ar2.Preview.Tables) != string(ar.Preview.Tables) {
		t.Fatalf("budget-2 anytime not deterministic:\nfirst:  %s\nsecond: %s", raw, raw2)
	}

	// Fresh registry: sharing one would let the tiny server's background
	// refinement certify the constraint and turn the starved request
	// into an exact 200.
	starvedReg, _ := newTestServer(t)
	starved := New(starvedReg)
	starved.AnytimeBudget = 1
	starvedTS := httptest.NewServer(starved)
	t.Cleanup(starvedTS.Close)
	if st, _, raw := getAnytime(t, starvedTS.URL+q); st != http.StatusUnprocessableEntity {
		t.Fatalf("budget-1 anytime: status %d body %s, want 422 (budget exhausted before any feasible subset)", st, raw)
	}
}

// TestAnytimeParamValidation: the anytime parameter parses strictly.
func TestAnytimeParamValidation(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		q    string
		want int
	}{
		{"anytime=1", http.StatusOK},
		{"anytime=true", http.StatusOK},
		{"anytime=0", http.StatusOK},
		{"anytime=false", http.StatusOK},
		{"anytime=banana", http.StatusBadRequest},
	} {
		resp, err := http.Get(ts.URL + "/v1/graphs/fig1/preview?k=2&n=3&" + tc.q)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status %d want %d (body %s)", tc.q, resp.StatusCode, tc.want, raw)
		}
		if tc.want == http.StatusOK && strings.Contains(tc.q, "anytime=1") && !strings.Contains(string(raw), `"converged"`) {
			t.Fatalf("%s: 200 body missing converged field: %s", tc.q, raw)
		}
	}
}
