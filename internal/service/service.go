package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"github.com/uta-db/previewtables/internal/core"
	"github.com/uta-db/previewtables/internal/render"
)

// Server serves a Registry over HTTP. Routes:
//
//	GET  /healthz                          liveness probe, plain "ok"
//	GET  /v1/graphs                        registered graphs with stats
//	GET  /v1/graphs/{name}/stats           one graph's stats (+ epoch when mutable)
//	GET  /v1/graphs/{name}/preview?...     optimal preview as JSON
//	GET  /v1/graphs/{name}/render?...      optimal preview as text/markdown
//	POST /v1/graphs/{name}/edges           apply a JSON edge batch (mutable graphs)
//	POST /v1/graphs/{name}/triples         apply a native-format triple batch
//	GET  /v1/replication/{name}/...        WAL shipping (see replication.go)
//
// Error ordering is uniform across routes: an unknown route, graph or
// action answers 404 whatever the method; a known route with a method
// outside its set answers 405 with an accurate Allow (empty on a
// read-only graph's write routes — they support no method at all); a
// method-correct write on a follower answers 503 naming the leader.
//
// Every read route serves its rendered bytes from an epoch-keyed
// response cache with strong epoch-derived ETags (see cache.go): a GET
// or HEAD whose If-None-Match names the current representation answers
// 304 without rendering, HEAD answers GET's exact headers (ETag,
// Content-Type, Content-Length) with no body, and per-request timing
// rides in the X-Previewtables-Elapsed header so bodies stay pure
// functions of (epoch, params).
//
// preview and render accept k, n, mode (concise|tight|diverse), d, key
// (coverage|walk), nonkey (coverage|entropy), tuples and rep parameters;
// render additionally accepts format (text|markdown). The write routes
// are documented on their handlers in write.go. Routing is parsed by hand
// so the package works under any go directive version (the
// pattern-matching ServeMux needs go ≥ 1.22 in go.mod).
type Server struct {
	reg *Registry

	// SearchBudget caps candidate generation per tight/diverse request
	// (core.Constraint.MaxCandidates). The exact Apriori search is
	// combinatorial in k under degenerate distance constraints (diverse
	// d=0 makes every type pair compatible), so without a budget one GET
	// could pin a CPU indefinitely. Zero disables the cap.
	SearchBudget int

	// MaxBatchEdges caps the edge count of one write batch; a batch is
	// one epoch and one score refresh, so its size bounds write-path
	// latency. Oversized batches fail with 413 — split them client-side.
	MaxBatchEdges int

	// MaxBodyBytes caps a write request's body size (413 beyond it).
	MaxBodyBytes int64

	// ReplicationWait bounds the WAL-shipping route's long poll (0 =
	// DefaultReplicationWait). A follower's wait parameter can shorten
	// one request's wait but never lengthen it past this bound.
	ReplicationWait time.Duration

	// NoCache disables the epoch-keyed response cache (cache.go): every
	// read discovers and renders cold. ETag/304/HEAD semantics are
	// unaffected — they are properties of the routes, not the cache.
	// The differential tests and loadgen's contrast arm use it;
	// previewd exposes it as -no-response-cache.
	NoCache bool

	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	list        listCache
}

// DefaultSearchBudget bounds tight/diverse candidate generation per
// request: generous for real schema graphs (the paper's largest domain
// needs ~10^4 candidates at its loosest d), small enough that a
// degenerate request fails in well under a second.
const DefaultSearchBudget = 2_000_000

// DefaultMaxBatchEdges bounds one mutation batch. Each batch pays one
// O(u·deg + K²) refresh plus one freeze, so tens of thousands of edges
// per request keeps bulk loading fast without letting a single POST stall
// readers' view swaps for seconds.
const DefaultMaxBatchEdges = 50_000

// DefaultMaxBodyBytes bounds a write body (a generous multiple of
// DefaultMaxBatchEdges worth of triple lines).
const DefaultMaxBodyBytes = 16 << 20

// New returns a Server over reg with default limits.
func New(reg *Registry) *Server {
	return &Server{
		reg:           reg,
		SearchBudget:  DefaultSearchBudget,
		MaxBatchEdges: DefaultMaxBatchEdges,
		MaxBodyBytes:  DefaultMaxBodyBytes,
	}
}

// errorDoc is the JSON error body for every non-2xx response.
type errorDoc struct {
	Error string `json:"error"`
}

// graphsDoc is the JSON body of GET /v1/graphs.
type graphsDoc struct {
	Graphs []render.GraphStatsDoc `json:"graphs"`
}

// constraintDoc echoes the constraint a preview was discovered under.
// D is a pointer so a valid d=0 on a tight/diverse request still echoes
// (omitempty on an int would drop it), while concise responses — where
// d is meaningless — omit the field entirely.
type constraintDoc struct {
	K    int    `json:"k"`
	N    int    `json:"n"`
	Mode string `json:"mode"`
	D    *int   `json:"d,omitempty"`
}

// previewResponse is the JSON body of GET /v1/graphs/{name}/preview.
// Epoch is present for mutable graphs only: it names the snapshot the
// preview was discovered against, so a client interleaving writes and
// reads can tell whether a preview already reflects its last batch.
//
// The body deliberately carries no timing field: a body must be a pure
// function of (epoch, params) for the response cache and the
// replication byte-identity proof, so per-request timing rides in the
// X-Previewtables-Elapsed header instead (see cache.go).
type previewResponse struct {
	Graph      string            `json:"graph"`
	Epoch      *uint64           `json:"epoch,omitempty"`
	Constraint constraintDoc     `json:"constraint"`
	Key        string            `json:"key_measure"`
	NonKey     string            `json:"non_key_measure"`
	Preview    render.PreviewDoc `json:"preview"`
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case path == "/healthz":
		if !s.requireRead(w, r) {
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	case path == "/v1/graphs" || path == "/v1/graphs/":
		if !s.requireRead(w, r) {
			return
		}
		s.handleList(w, r)
	case strings.HasPrefix(path, "/v1/graphs/"):
		s.handleGraph(w, r, strings.TrimPrefix(path, "/v1/graphs/"))
	case strings.HasPrefix(path, "/v1/replication/"):
		s.handleReplication(w, r, strings.TrimPrefix(path, "/v1/replication/"))
	default:
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no such route %q", path))
	}
}

// requireRead admits GET and HEAD, answering anything else with 405.
func (s *Server) requireRead(w http.ResponseWriter, r *http.Request) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		return true
	}
	w.Header().Set("Allow", "GET, HEAD")
	s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	return false
}

// requireWritable gates the write routes with one fixed ordering, shared
// by leader and follower modes (resource existence — the 404s — was
// already settled by the caller):
//
//  1. a read-only graph's write routes support no method at all, so any
//     method answers 405 with a deliberately empty Allow (RFC 9110
//     permits an empty list to say exactly that) — previously a GET here
//     advertised Allow: POST while POST itself was refused;
//  2. on a writable graph, a non-POST method answers 405 with Allow: POST;
//  3. a well-formed write to a follower answers 503 naming the leader in
//     the X-Previewtables-Leader header: the method exists and the graph
//     is mutable, but this node only accepts writes from the replication
//     stream — 503 (not 405) so clients retry against the leader.
func (s *Server) requireWritable(w http.ResponseWriter, r *http.Request, gr *Graph) bool {
	if !gr.Mutable() {
		w.Header().Set("Allow", "")
		s.writeError(w, http.StatusMethodNotAllowed,
			fmt.Errorf("graph %q is read-only; register it mutable (previewd -mutable) to accept writes", gr.Name()))
		return false
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return false
	}
	if leader := s.reg.Leader(); leader != "" {
		w.Header().Set(leaderHeader, leader)
		s.writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("graph %q is a read replica; write to the leader at %s", gr.Name(), leader))
		return false
	}
	return true
}

// handleGraph dispatches /v1/graphs/{name}/{action}.
func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request, rest string) {
	name, action, ok := strings.Cut(rest, "/")
	if !ok || name == "" || strings.Contains(action, "/") {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no such route %q", r.URL.Path))
		return
	}
	gr, ok := s.reg.Get(name)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no graph %q; see /v1/graphs", name))
		return
	}
	switch action {
	case "stats":
		if s.requireRead(w, r) {
			s.handleStats(w, r, gr)
		}
	case "preview":
		if s.requireRead(w, r) {
			s.handlePreview(w, r, gr)
		}
	case "render":
		if s.requireRead(w, r) {
			s.handleRender(w, r, gr)
		}
	case "edges":
		if s.requireWritable(w, r, gr) {
			s.handleEdges(w, r, gr)
		}
	case "triples":
		if s.requireWritable(w, r, gr) {
			s.handleTriples(w, r, gr)
		}
	default:
		s.writeError(w, http.StatusNotFound,
			fmt.Errorf("no such action %q: want stats, preview, render, edges or triples", action))
	}
}

// handleList serves /v1/graphs through the one-slot listing cache: the
// cache key (and ETag scope) is the composite (name, epoch) vector of
// every registered graph, captured as view pointers once so the key and
// the body are built from the same epochs even while writers publish.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	names := s.reg.Names()
	views := make([]*view, len(names))
	var scope strings.Builder
	scope.WriteString("graphs")
	for i, name := range names {
		gr, ok := s.reg.Get(name)
		if !ok {
			continue
		}
		views[i] = gr.view()
		fmt.Fprintf(&scope, "\x00%s", views[i].etagScope(name))
	}
	composite := scope.String()
	s.serveCached(w, r, composite, composite, &s.list, func() (*cacheEntry, error) {
		doc := graphsDoc{Graphs: []render.GraphStatsDoc{}}
		for i, name := range names {
			if views[i] != nil {
				doc.Graphs = append(doc.Graphs, statsFor(name, views[i]))
			}
		}
		body, err := marshalJSONBody(doc)
		if err != nil {
			return nil, err
		}
		return &cacheEntry{contentType: "application/json; charset=utf-8", body: body}, nil
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request, gr *Graph) {
	// One view load: reading stats and epoch separately could pair an old
	// epoch's counts with a concurrent writer's new epoch.
	v := gr.view()
	s.serveCached(w, r, v.etagScope(gr.Name()), "stats", v, func() (*cacheEntry, error) {
		body, err := marshalJSONBody(statsFor(gr.Name(), v))
		if err != nil {
			return nil, err
		}
		return &cacheEntry{contentType: "application/json; charset=utf-8", body: body}, nil
	})
}

func statsFor(name string, v *view) render.GraphStatsDoc {
	doc := render.GraphStats(name, v.stats)
	if v.mutable {
		doc = doc.WithEpoch(v.epoch)
	}
	return doc
}

// discover runs one validated discovery request against the epoch view's
// cached Discoverer, mapping failures to HTTP statuses via httpError:
// empty preview space is 422 (the request was well formed; the graph
// just cannot satisfy it). Failures pass through the cache layer
// uncached — only successful renders are retained.
func (s *Server) discover(v *view, p previewParams) (core.Preview, error) {
	c := p.Constraint
	c.MaxCandidates = s.SearchBudget
	pv, err := v.Discoverer(p.Key, p.NonKey).Discover(c)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, core.ErrNoPreview):
			status = http.StatusUnprocessableEntity
		case errors.Is(err, core.ErrSearchBudget):
			status = http.StatusUnprocessableEntity
			err = fmt.Errorf("%w: the distance constraint admits too many key-attribute subsets; tighten mode/d or lower k", err)
		}
		return core.Preview{}, &httpError{status: status, err: err}
	}
	return pv, nil
}

func (s *Server) handlePreview(w http.ResponseWriter, r *http.Request, gr *Graph) {
	p, err := parsePreviewParams(r.URL.Query())
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	v := gr.view()
	s.serveCached(w, r, v.etagScope(gr.Name()), "preview?"+p.canonical(), v, func() (*cacheEntry, error) {
		pv, err := s.discover(v, p)
		if err != nil {
			return nil, err
		}
		mode := constraintDoc{
			K:    p.Constraint.K,
			N:    p.Constraint.N,
			Mode: strings.ToLower(p.Constraint.Mode.String()),
		}
		if p.Constraint.Mode != core.Concise {
			d := p.Constraint.D
			mode.D = &d
		}
		resp := previewResponse{
			Graph:      gr.Name(),
			Constraint: mode,
			Key:        keyMeasureName(p.Key),
			NonKey:     nonKeyMeasureName(p.NonKey),
			Preview:    render.PreviewDocument(v.g, &pv, renderOptions(p)),
		}
		if v.mutable {
			epoch := v.epoch
			resp.Epoch = &epoch
		}
		body, err := marshalJSONBody(resp)
		if err != nil {
			return nil, err
		}
		return &cacheEntry{contentType: "application/json; charset=utf-8", body: body}, nil
	})
}

func (s *Server) handleRender(w http.ResponseWriter, r *http.Request, gr *Graph) {
	format := strings.ToLower(r.URL.Query().Get("format"))
	if format == "" {
		format = "text"
	}
	if format != "text" && format != "markdown" {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown format %q: want text or markdown", format))
		return
	}
	p, err := parsePreviewParams(r.URL.Query())
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	v := gr.view()
	key := "render?format=" + format + "&" + p.canonical()
	s.serveCached(w, r, v.etagScope(gr.Name()), key, v, func() (*cacheEntry, error) {
		pv, err := s.discover(v, p)
		if err != nil {
			return nil, err
		}
		// Rendering into a buffer (rather than streaming to the socket)
		// is what makes render failures reportable as 500s at all — the
		// old streaming path had already committed the status line.
		var buf bytes.Buffer
		opts := renderOptions(p)
		ct := "text/plain; charset=utf-8"
		if format == "markdown" {
			ct = "text/markdown; charset=utf-8"
			err = render.MarkdownPreview(&buf, v.g, &pv, opts)
		} else {
			err = render.Preview(&buf, v.g, &pv, opts)
		}
		if err != nil {
			return nil, err
		}
		return &cacheEntry{contentType: ct, body: buf.Bytes()}, nil
	})
}

// renderOptions maps request parameters onto render options. Sampling is
// reseeded per request so identical requests return identical tuples.
func renderOptions(p previewParams) render.Options {
	return render.Options{
		Tuples:         p.Tuples,
		Representative: p.Representative,
		Rand:           rand.New(rand.NewSource(1)),
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorDoc{Error: err.Error()})
}
