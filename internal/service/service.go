package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"github.com/uta-db/previewtables/internal/core"
	"github.com/uta-db/previewtables/internal/render"
)

// Server serves a Registry over HTTP. Routes:
//
//	GET  /healthz                          liveness probe, plain "ok"
//	GET  /v1/graphs                        registered graphs with stats
//	GET  /v1/graphs/{name}/stats           one graph's stats (+ epoch when mutable)
//	GET  /v1/graphs/{name}/preview?...     optimal preview as JSON
//	GET  /v1/graphs/{name}/render?...      optimal preview as text/markdown
//	POST /v1/graphs/{name}/edges           apply a JSON edge batch (mutable graphs)
//	POST /v1/graphs/{name}/triples         apply a native-format triple batch
//	GET  /v1/replication/{name}/...        WAL shipping (see replication.go)
//
// Error ordering is uniform across routes: an unknown route, graph or
// action answers 404 whatever the method; a known route with a method
// outside its set answers 405 with an accurate Allow (empty on a
// read-only graph's write routes — they support no method at all); a
// method-correct write on a follower answers 503 naming the leader.
//
// preview and render accept k, n, mode (concise|tight|diverse), d, key
// (coverage|walk), nonkey (coverage|entropy), tuples and rep parameters;
// render additionally accepts format (text|markdown). The write routes
// are documented on their handlers in write.go. Routing is parsed by hand
// so the package works under any go directive version (the
// pattern-matching ServeMux needs go ≥ 1.22 in go.mod).
type Server struct {
	reg *Registry

	// SearchBudget caps candidate generation per tight/diverse request
	// (core.Constraint.MaxCandidates). The exact Apriori search is
	// combinatorial in k under degenerate distance constraints (diverse
	// d=0 makes every type pair compatible), so without a budget one GET
	// could pin a CPU indefinitely. Zero disables the cap.
	SearchBudget int

	// MaxBatchEdges caps the edge count of one write batch; a batch is
	// one epoch and one score refresh, so its size bounds write-path
	// latency. Oversized batches fail with 413 — split them client-side.
	MaxBatchEdges int

	// MaxBodyBytes caps a write request's body size (413 beyond it).
	MaxBodyBytes int64

	// ReplicationWait bounds the WAL-shipping route's long poll (0 =
	// DefaultReplicationWait). A follower's wait parameter can shorten
	// one request's wait but never lengthen it past this bound.
	ReplicationWait time.Duration
}

// DefaultSearchBudget bounds tight/diverse candidate generation per
// request: generous for real schema graphs (the paper's largest domain
// needs ~10^4 candidates at its loosest d), small enough that a
// degenerate request fails in well under a second.
const DefaultSearchBudget = 2_000_000

// DefaultMaxBatchEdges bounds one mutation batch. Each batch pays one
// O(u·deg + K²) refresh plus one freeze, so tens of thousands of edges
// per request keeps bulk loading fast without letting a single POST stall
// readers' view swaps for seconds.
const DefaultMaxBatchEdges = 50_000

// DefaultMaxBodyBytes bounds a write body (a generous multiple of
// DefaultMaxBatchEdges worth of triple lines).
const DefaultMaxBodyBytes = 16 << 20

// New returns a Server over reg with default limits.
func New(reg *Registry) *Server {
	return &Server{
		reg:           reg,
		SearchBudget:  DefaultSearchBudget,
		MaxBatchEdges: DefaultMaxBatchEdges,
		MaxBodyBytes:  DefaultMaxBodyBytes,
	}
}

// errorDoc is the JSON error body for every non-2xx response.
type errorDoc struct {
	Error string `json:"error"`
}

// graphsDoc is the JSON body of GET /v1/graphs.
type graphsDoc struct {
	Graphs []render.GraphStatsDoc `json:"graphs"`
}

// constraintDoc echoes the constraint a preview was discovered under.
// D is a pointer so a valid d=0 on a tight/diverse request still echoes
// (omitempty on an int would drop it), while concise responses — where
// d is meaningless — omit the field entirely.
type constraintDoc struct {
	K    int    `json:"k"`
	N    int    `json:"n"`
	Mode string `json:"mode"`
	D    *int   `json:"d,omitempty"`
}

// previewResponse is the JSON body of GET /v1/graphs/{name}/preview.
// Epoch is present for mutable graphs only: it names the snapshot the
// preview was discovered against, so a client interleaving writes and
// reads can tell whether a preview already reflects its last batch.
type previewResponse struct {
	Graph      string            `json:"graph"`
	Epoch      *uint64           `json:"epoch,omitempty"`
	Constraint constraintDoc     `json:"constraint"`
	Key        string            `json:"key_measure"`
	NonKey     string            `json:"non_key_measure"`
	Preview    render.PreviewDoc `json:"preview"`
	ElapsedMS  float64           `json:"elapsed_ms"`
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case path == "/healthz":
		if !s.requireRead(w, r) {
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	case path == "/v1/graphs" || path == "/v1/graphs/":
		if !s.requireRead(w, r) {
			return
		}
		s.handleList(w)
	case strings.HasPrefix(path, "/v1/graphs/"):
		s.handleGraph(w, r, strings.TrimPrefix(path, "/v1/graphs/"))
	case strings.HasPrefix(path, "/v1/replication/"):
		s.handleReplication(w, r, strings.TrimPrefix(path, "/v1/replication/"))
	default:
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no such route %q", path))
	}
}

// requireRead admits GET and HEAD, answering anything else with 405.
func (s *Server) requireRead(w http.ResponseWriter, r *http.Request) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		return true
	}
	w.Header().Set("Allow", "GET, HEAD")
	s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	return false
}

// requireWritable gates the write routes with one fixed ordering, shared
// by leader and follower modes (resource existence — the 404s — was
// already settled by the caller):
//
//  1. a read-only graph's write routes support no method at all, so any
//     method answers 405 with a deliberately empty Allow (RFC 9110
//     permits an empty list to say exactly that) — previously a GET here
//     advertised Allow: POST while POST itself was refused;
//  2. on a writable graph, a non-POST method answers 405 with Allow: POST;
//  3. a well-formed write to a follower answers 503 naming the leader in
//     the X-Previewtables-Leader header: the method exists and the graph
//     is mutable, but this node only accepts writes from the replication
//     stream — 503 (not 405) so clients retry against the leader.
func (s *Server) requireWritable(w http.ResponseWriter, r *http.Request, gr *Graph) bool {
	if !gr.Mutable() {
		w.Header().Set("Allow", "")
		s.writeError(w, http.StatusMethodNotAllowed,
			fmt.Errorf("graph %q is read-only; register it mutable (previewd -mutable) to accept writes", gr.Name()))
		return false
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return false
	}
	if leader := s.reg.Leader(); leader != "" {
		w.Header().Set(leaderHeader, leader)
		s.writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("graph %q is a read replica; write to the leader at %s", gr.Name(), leader))
		return false
	}
	return true
}

// handleGraph dispatches /v1/graphs/{name}/{action}.
func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request, rest string) {
	name, action, ok := strings.Cut(rest, "/")
	if !ok || name == "" || strings.Contains(action, "/") {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no such route %q", r.URL.Path))
		return
	}
	gr, ok := s.reg.Get(name)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no graph %q; see /v1/graphs", name))
		return
	}
	switch action {
	case "stats":
		if s.requireRead(w, r) {
			s.writeJSON(w, statsFor(gr))
		}
	case "preview":
		if s.requireRead(w, r) {
			s.handlePreview(w, r, gr)
		}
	case "render":
		if s.requireRead(w, r) {
			s.handleRender(w, r, gr)
		}
	case "edges":
		if s.requireWritable(w, r, gr) {
			s.handleEdges(w, r, gr)
		}
	case "triples":
		if s.requireWritable(w, r, gr) {
			s.handleTriples(w, r, gr)
		}
	default:
		s.writeError(w, http.StatusNotFound,
			fmt.Errorf("no such action %q: want stats, preview, render, edges or triples", action))
	}
}

func (s *Server) handleList(w http.ResponseWriter) {
	doc := graphsDoc{Graphs: []render.GraphStatsDoc{}}
	for _, name := range s.reg.Names() {
		gr, ok := s.reg.Get(name)
		if !ok {
			continue
		}
		doc.Graphs = append(doc.Graphs, statsFor(gr))
	}
	s.writeJSON(w, doc)
}

func statsFor(gr *Graph) render.GraphStatsDoc {
	// One view load: reading stats and epoch separately could pair an old
	// epoch's counts with a concurrent writer's new epoch.
	v := gr.view()
	doc := render.GraphStats(gr.Name(), v.stats)
	if v.mutable {
		doc = doc.WithEpoch(v.epoch)
	}
	return doc
}

// discover runs one validated discovery request against the epoch view's
// cached Discoverer, mapping failures to HTTP statuses: empty preview
// space is 422 (the request was well formed; the graph just cannot
// satisfy it).
func (s *Server) discover(w http.ResponseWriter, r *http.Request, v *view) (core.Preview, previewParams, bool) {
	p, err := parsePreviewParams(r.URL.Query())
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return core.Preview{}, p, false
	}
	c := p.Constraint
	c.MaxCandidates = s.SearchBudget
	pv, err := v.Discoverer(p.Key, p.NonKey).Discover(c)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, core.ErrNoPreview):
			status = http.StatusUnprocessableEntity
		case errors.Is(err, core.ErrSearchBudget):
			status = http.StatusUnprocessableEntity
			err = fmt.Errorf("%w: the distance constraint admits too many key-attribute subsets; tighten mode/d or lower k", err)
		}
		s.writeError(w, status, err)
		return core.Preview{}, p, false
	}
	return pv, p, true
}

func (s *Server) handlePreview(w http.ResponseWriter, r *http.Request, gr *Graph) {
	start := time.Now()
	v := gr.view()
	pv, p, ok := s.discover(w, r, v)
	if !ok {
		return
	}
	mode := constraintDoc{
		K:    p.Constraint.K,
		N:    p.Constraint.N,
		Mode: strings.ToLower(p.Constraint.Mode.String()),
	}
	if p.Constraint.Mode != core.Concise {
		d := p.Constraint.D
		mode.D = &d
	}
	resp := previewResponse{
		Graph:      gr.Name(),
		Constraint: mode,
		Key:        keyMeasureName(p.Key),
		NonKey:     nonKeyMeasureName(p.NonKey),
		Preview:    render.PreviewDocument(v.g, &pv, renderOptions(p)),
		ElapsedMS:  float64(time.Since(start).Microseconds()) / 1000,
	}
	if v.mutable {
		epoch := v.epoch
		resp.Epoch = &epoch
	}
	s.writeJSON(w, resp)
}

func (s *Server) handleRender(w http.ResponseWriter, r *http.Request, gr *Graph) {
	format := strings.ToLower(r.URL.Query().Get("format"))
	if format == "" {
		format = "text"
	}
	if format != "text" && format != "markdown" {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown format %q: want text or markdown", format))
		return
	}
	v := gr.view()
	pv, p, ok := s.discover(w, r, v)
	if !ok {
		return
	}
	opts := renderOptions(p)
	var err error
	switch format {
	case "markdown":
		w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
		err = render.MarkdownPreview(w, v.g, &pv, opts)
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		err = render.Preview(w, v.g, &pv, opts)
	}
	// The status line is already out; all we can do is stop writing.
	_ = err
}

// renderOptions maps request parameters onto render options. Sampling is
// reseeded per request so identical requests return identical tuples.
func renderOptions(p previewParams) render.Options {
	return render.Options{
		Tuples:         p.Tuples,
		Representative: p.Representative,
		Rand:           rand.New(rand.NewSource(1)),
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorDoc{Error: err.Error()})
}
