package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/uta-db/previewtables/internal/core"
	"github.com/uta-db/previewtables/internal/render"
)

// Server serves a Registry over HTTP. Routes:
//
//	GET  /healthz                          liveness probe, plain "ok"
//	GET  /v1/graphs                        registered graphs with stats
//	GET  /v1/graphs/{name}/stats           one graph's stats (+ epoch when mutable)
//	GET  /v1/graphs/{name}/preview?...     optimal preview as JSON
//	GET  /v1/graphs/{name}/render?...      optimal preview as text/markdown
//	POST /v1/graphs/{name}/edges           apply a JSON edge batch (mutable graphs)
//	POST /v1/graphs/{name}/triples         apply a native-format triple batch
//	DELETE /v1/graphs/{name}               drop a migrated graph (nodes with OnDrop)
//	GET  /v1/replication/{name}/...        WAL shipping (see replication.go)
//	POST /v1/replication/fence             fence exchange (fence-enabled nodes)
//	POST /v1/replication/{name}/adopt      start adopting a graph (OnAdopt)
//	POST /v1/replication/{name}/promote    complete an adoption (OnGraphPromote)
//
// Error ordering is uniform across routes: an unknown route, graph or
// action answers 404 whatever the method; a known route with a method
// outside its set answers 405 with an accurate Allow (empty on a
// read-only graph's write routes — they support no method at all); a
// method-correct write on a follower answers 503 naming the leader.
//
// Every read route serves its rendered bytes from an epoch-keyed
// response cache with strong epoch-derived ETags (see cache.go): a GET
// or HEAD whose If-None-Match names the current representation answers
// 304 without rendering, HEAD answers GET's exact headers (ETag,
// Content-Type, Content-Length) with no body, and per-request timing
// rides in the X-Previewtables-Elapsed header so bodies stay pure
// functions of (epoch, params).
//
// preview and render accept k, n, mode (concise|tight|diverse), d, key
// (coverage|walk), nonkey (coverage|entropy), tuples and rep parameters;
// render additionally accepts format (text|markdown). The write routes
// are documented on their handlers in write.go. Routing is parsed by hand
// so the package works under any go directive version (the
// pattern-matching ServeMux needs go ≥ 1.22 in go.mod).
type Server struct {
	reg *Registry

	// SearchBudget caps candidate generation per tight/diverse request
	// (core.Constraint.MaxCandidates). The exact Apriori search is
	// combinatorial in k under degenerate distance constraints (diverse
	// d=0 makes every type pair compatible), so without a budget one GET
	// could pin a CPU indefinitely. Zero disables the cap.
	SearchBudget int

	// MaxBatchEdges caps the edge count of one write batch; a batch is
	// one epoch and one score refresh, so its size bounds write-path
	// latency. Oversized batches fail with 413 — split them client-side.
	MaxBatchEdges int

	// MaxBodyBytes caps a write request's body size (413 beyond it).
	MaxBodyBytes int64

	// ReplicationWait bounds the WAL-shipping route's long poll (0 =
	// DefaultReplicationWait). A follower's wait parameter can shorten
	// one request's wait but never lengthen it past this bound.
	ReplicationWait time.Duration

	// NoCache disables the epoch-keyed response cache (cache.go): every
	// read discovers and renders cold. ETag/304/HEAD semantics are
	// unaffected — they are properties of the routes, not the cache.
	// The differential tests and loadgen's contrast arm use it;
	// previewd exposes it as -no-response-cache.
	NoCache bool

	// AnytimeBudget caps candidate generation for the immediate answer of
	// an ?anytime=1 preview request (core.Constraint.MaxCandidates for
	// AnytimeBest). Zero means unlimited — the immediate answer is then
	// already exact. previewd exposes it as -anytime-budget.
	AnytimeBudget int

	// OnPromote, when set, makes POST /v1/replication/promote turn this
	// node from a follower into a leader (see Follower.Promote). The
	// process that started the followers wires it — previewd -follow and
	// the fleet test harness promote every follower on the registry and
	// clear the leader mark. Nil means the route does not exist on this
	// node (leaders and static servers answer 404), which keeps the
	// 404→405 discipline: resource existence is decided before method.
	OnPromote func() error

	// OnAdopt, OnGraphPromote and OnDrop are the graph-migration hooks a
	// leader wires through an Adopter (adopter.go): adopt starts tailing
	// one graph from another shard's leader, graph-promote completes the
	// adoption (the graph opens for writes here), and drop unregisters a
	// graph and deletes its local durable state after it has moved away.
	// Nil means the corresponding route does not exist on this node —
	// same 404-before-405 discipline as OnPromote. All three routes are
	// fence-gated: on a fenced node they require a stamp at or above the
	// current fence, so only the fleet router (which mints fences) can
	// drive a migration.
	OnAdopt        func(graph, source string) error
	OnGraphPromote func(graph string) error
	OnDrop         func(graph string) error

	// forceCold routes every discovery through the per-view cold
	// Discoverer, bypassing the carried-forward incremental state. Test
	// hook: the differential suite uses a forceCold server as the
	// byte-reference for a maintained one.
	forceCold bool

	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	list        listCache
}

// DefaultSearchBudget bounds tight/diverse candidate generation per
// request: generous for real schema graphs (the paper's largest domain
// needs ~10^4 candidates at its loosest d), small enough that a
// degenerate request fails in well under a second.
const DefaultSearchBudget = 2_000_000

// DefaultMaxBatchEdges bounds one mutation batch. Each batch pays one
// O(u·deg + K²) refresh plus one freeze, so tens of thousands of edges
// per request keeps bulk loading fast without letting a single POST stall
// readers' view swaps for seconds.
const DefaultMaxBatchEdges = 50_000

// DefaultMaxBodyBytes bounds a write body (a generous multiple of
// DefaultMaxBatchEdges worth of triple lines).
const DefaultMaxBodyBytes = 16 << 20

// DefaultAnytimeBudget bounds the immediate answer of an anytime
// request: small enough that the bounded DFS returns in milliseconds on
// the 100k-entity bench graph, large enough to cover the full candidate
// volume of the paper's domains at their default constraints (where the
// "partial" answer is therefore already exact).
const DefaultAnytimeBudget = 50_000

// New returns a Server over reg with default limits.
func New(reg *Registry) *Server {
	return &Server{
		reg:           reg,
		SearchBudget:  DefaultSearchBudget,
		MaxBatchEdges: DefaultMaxBatchEdges,
		MaxBodyBytes:  DefaultMaxBodyBytes,
		AnytimeBudget: DefaultAnytimeBudget,
	}
}

// errorDoc is the JSON error body for every non-2xx response.
type errorDoc struct {
	Error string `json:"error"`
}

// graphsDoc is the JSON body of GET /v1/graphs.
type graphsDoc struct {
	Graphs []render.GraphStatsDoc `json:"graphs"`
}

// constraintDoc echoes the constraint a preview was discovered under.
// D is a pointer so a valid d=0 on a tight/diverse request still echoes
// (omitempty on an int would drop it), while concise responses — where
// d is meaningless — omit the field entirely.
type constraintDoc struct {
	K    int    `json:"k"`
	N    int    `json:"n"`
	Mode string `json:"mode"`
	D    *int   `json:"d,omitempty"`
}

// previewResponse is the JSON body of GET /v1/graphs/{name}/preview.
// Epoch is present for mutable graphs only: it names the snapshot the
// preview was discovered against, so a client interleaving writes and
// reads can tell whether a preview already reflects its last batch.
//
// The body deliberately carries no timing field: a body must be a pure
// function of (epoch, params) for the response cache and the
// replication byte-identity proof, so per-request timing rides in the
// X-Previewtables-Elapsed header instead (see cache.go).
type previewResponse struct {
	Graph      string            `json:"graph"`
	Epoch      *uint64           `json:"epoch,omitempty"`
	Constraint constraintDoc     `json:"constraint"`
	Key        string            `json:"key_measure"`
	NonKey     string            `json:"non_key_measure"`
	Preview    render.PreviewDoc `json:"preview"`
	// Converged is present on anytime requests only: false when the
	// preview is the budget-bounded immediate answer (a background
	// refinement is converging toward the exact one), true when it is the
	// certified exact answer. The certification bit is part of the cache
	// key, so each keyed body stays a pure function of (epoch, params).
	Converged *bool `json:"converged,omitempty"`
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case path == "/healthz":
		if !s.requireRead(w, r) {
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	case path == "/v1/graphs" || path == "/v1/graphs/":
		if !s.requireRead(w, r) {
			return
		}
		s.handleList(w, r)
	case strings.HasPrefix(path, "/v1/graphs/"):
		s.handleGraph(w, r, strings.TrimPrefix(path, "/v1/graphs/"))
	case strings.HasPrefix(path, "/v1/replication/"):
		s.handleReplication(w, r, strings.TrimPrefix(path, "/v1/replication/"))
	default:
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no such route %q", path))
	}
}

// requireRead admits GET and HEAD, answering anything else with 405.
func (s *Server) requireRead(w http.ResponseWriter, r *http.Request) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		return true
	}
	w.Header().Set("Allow", "GET, HEAD")
	s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	return false
}

// requireWritable gates the write routes with one fixed ordering, shared
// by leader and follower modes (resource existence — the 404s — was
// already settled by the caller):
//
//  1. a read-only graph's write routes support no method at all, so any
//     method answers 405 with a deliberately empty Allow (RFC 9110
//     permits an empty list to say exactly that) — previously a GET here
//     advertised Allow: POST while POST itself was refused;
//  2. on a writable graph, a non-POST method answers 405 with Allow: POST;
//  3. a well-formed write to a follower answers 503 naming the leader in
//     the X-Previewtables-Leader header: the method exists and the graph
//     is mutable, but this node only accepts writes from the replication
//     stream — 503 (not 405) so clients retry against the leader;
//  4. a graph this node is adopting mid-migration (per-graph follower on
//     an otherwise-leading node) answers 503 the same way, because until
//     the cutover promotes it the only writer is the old owner's stream;
//  5. last, on a fence-enabled node the write's fence stamp must equal
//     the node's persisted fence exactly (409 otherwise) — see
//     writeFenceOK for why not-equal in either direction is fatal.
func (s *Server) requireWritable(w http.ResponseWriter, r *http.Request, gr *Graph) bool {
	if !gr.Mutable() {
		w.Header().Set("Allow", "")
		s.writeError(w, http.StatusMethodNotAllowed,
			fmt.Errorf("graph %q is read-only; register it mutable (previewd -mutable) to accept writes", gr.Name()))
		return false
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return false
	}
	if leader := s.reg.Leader(); leader != "" {
		w.Header().Set(leaderHeader, leader)
		s.writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("graph %q is a read replica; write to the leader at %s", gr.Name(), leader))
		return false
	}
	if gr.FollowState() != nil {
		s.writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("graph %q is being adopted from another shard (migration in flight); write through the fleet router", gr.Name()))
		return false
	}
	return s.writeFenceOK(w, r)
}

// writeFenceOK enforces the fencing invariant on one write: with
// fencing enabled, a stamped write lands only when its stamp EQUALS the
// node's persisted fence. A lower stamp is a write routed under a
// superseded configuration (the router has since promoted someone else
// or migrated the graph); a higher stamp proves this node missed a
// fence installation — i.e. it was deposed while unreachable — and the
// write path never installs fences itself, so it refuses rather than
// adopt. An unstamped write is accepted only by a never-fenced node
// (fence 0): that is the standalone previewd, which must keep working
// without a router. Every refusal is 409 with the node's fence in the
// response header so the router can observe the disagreement.
func (s *Server) writeFenceOK(w http.ResponseWriter, r *http.Request) bool {
	cur, on := s.reg.Fencing()
	if !on {
		return true
	}
	stamp := r.Header.Get(fenceHeader)
	if stamp == "" {
		if cur == 0 {
			return true
		}
		w.Header().Set(fenceHeader, strconv.FormatUint(cur, 10))
		s.writeError(w, http.StatusConflict,
			fmt.Errorf("this node is fenced at epoch %d and accepts only writes stamped by its fleet router", cur))
		return false
	}
	f, err := strconv.ParseUint(stamp, 10, 64)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad %s header %q: %v", fenceHeader, stamp, err))
		return false
	}
	if f != cur {
		w.Header().Set(fenceHeader, strconv.FormatUint(cur, 10))
		verdict := "stale: the fleet configuration has moved on"
		if f > cur {
			verdict = "unknown here: this node was deposed while unreachable"
		}
		s.writeError(w, http.StatusConflict,
			fmt.Errorf("write fence %d is %s (node fence %d); this node cannot acknowledge the write", f, verdict, cur))
		return false
	}
	return true
}

// adminFenceOK gates the migration admin routes (adopt, graph-promote,
// drop): on a fenced node the request must carry a stamp at or above
// the current fence — higher stamps install (the admin channel is where
// fences legitimately arrive), lower ones mean a superseded router and
// answer 409. Unfenced nodes accept unstamped admin calls, so a
// standalone operator can still drive a migration by hand.
func (s *Server) adminFenceOK(w http.ResponseWriter, r *http.Request) bool {
	cur, on := s.reg.Fencing()
	if !on {
		return true
	}
	stamp := r.Header.Get(fenceHeader)
	if stamp == "" {
		if cur == 0 {
			return true
		}
		w.Header().Set(fenceHeader, strconv.FormatUint(cur, 10))
		s.writeError(w, http.StatusConflict,
			fmt.Errorf("this node is fenced at epoch %d; admin actions must carry a current fence stamp", cur))
		return false
	}
	f, err := strconv.ParseUint(stamp, 10, 64)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad %s header %q: %v", fenceHeader, stamp, err))
		return false
	}
	if f < cur {
		w.Header().Set(fenceHeader, strconv.FormatUint(cur, 10))
		s.writeError(w, http.StatusConflict,
			fmt.Errorf("admin fence %d is stale (node fence %d); a newer router owns this node", f, cur))
		return false
	}
	if f > cur {
		if err := s.reg.InstallFence(f); err != nil {
			s.writeError(w, http.StatusInternalServerError, fmt.Errorf("installing fence %d: %w", f, err))
			return false
		}
	}
	return true
}

// handleGraph dispatches /v1/graphs/{name}/{action}; the action-less
// /v1/graphs/{name} is the graph resource itself, which exists as a
// DELETE target on nodes that drop graphs at runtime (OnDrop set).
func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request, rest string) {
	name, action, ok := strings.Cut(rest, "/")
	if (!ok || action == "") && name != "" {
		s.handleDrop(w, r, name)
		return
	}
	if !ok || name == "" || strings.Contains(action, "/") {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no such route %q", r.URL.Path))
		return
	}
	gr, ok := s.reg.Get(name)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no graph %q; see /v1/graphs", name))
		return
	}
	switch action {
	case "stats":
		if s.requireRead(w, r) {
			s.handleStats(w, r, gr)
		}
	case "preview":
		if s.requireRead(w, r) {
			s.handlePreview(w, r, gr)
		}
	case "render":
		if s.requireRead(w, r) {
			s.handleRender(w, r, gr)
		}
	case "edges":
		if s.requireWritable(w, r, gr) {
			s.handleEdges(w, r, gr)
		}
	case "triples":
		if s.requireWritable(w, r, gr) {
			s.handleTriples(w, r, gr)
		}
	default:
		s.writeError(w, http.StatusNotFound,
			fmt.Errorf("no such action %q: want stats, preview, render, edges or triples", action))
	}
}

// handleDrop serves DELETE /v1/graphs/{name}: unregister the graph and
// delete its local durable state, the final step of migrating it to
// another shard. The resource exists only on nodes wired for runtime
// drops (OnDrop set) and only for registered graphs — 404 otherwise,
// before any method check. Fence-gated like the other migration admin
// routes, so a superseded router cannot delete data the current one is
// serving.
func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request, name string) {
	if s.OnDrop == nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no such route %q", r.URL.Path))
		return
	}
	if _, ok := s.reg.Get(name); !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no graph %q; see /v1/graphs", name))
		return
	}
	if r.Method != http.MethodDelete {
		w.Header().Set("Allow", "DELETE")
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	if !s.adminFenceOK(w, r) {
		return
	}
	if err := s.OnDrop(name); err != nil {
		s.writeError(w, http.StatusInternalServerError, fmt.Errorf("dropping %q: %w", name, err))
		return
	}
	s.writeJSON(w, struct {
		Dropped string `json:"dropped"`
	}{Dropped: name})
}

// handleList serves /v1/graphs through the one-slot listing cache: the
// cache key (and ETag scope) is the composite (name, epoch) vector of
// every registered graph, captured as view pointers once so the key and
// the body are built from the same epochs even while writers publish.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	names := s.reg.Names()
	views := make([]*view, len(names))
	refined := make([]*uint64, len(names))
	var scope strings.Builder
	scope.WriteString("graphs")
	for i, name := range names {
		gr, ok := s.reg.Get(name)
		if !ok {
			continue
		}
		views[i] = gr.view()
		refined[i] = gr.anytimeRefined.Load()
		fmt.Fprintf(&scope, "\x00%s", views[i].etagScope(name))
		if refined[i] != nil {
			// Anytime convergence is in the body, so it must be in the
			// key: a refinement landing between requests re-renders.
			fmt.Fprintf(&scope, "|refined=%d", *refined[i])
		}
	}
	composite := scope.String()
	s.serveCached(w, r, composite, composite, &s.list, func() (*cacheEntry, error) {
		doc := graphsDoc{Graphs: []render.GraphStatsDoc{}}
		for i, name := range names {
			if views[i] != nil {
				doc.Graphs = append(doc.Graphs, statsFor(name, views[i], refined[i]))
			}
		}
		body, err := marshalJSONBody(doc)
		if err != nil {
			return nil, err
		}
		return &cacheEntry{contentType: "application/json; charset=utf-8", body: body}, nil
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request, gr *Graph) {
	// One view load: reading stats and epoch separately could pair an old
	// epoch's counts with a concurrent writer's new epoch.
	v := gr.view()
	key := "stats"
	refined := gr.anytimeRefined.Load()
	if refined != nil {
		// Convergence state is in the body, so it joins the cache key.
		key = fmt.Sprintf("stats&refined=%d", *refined)
	}
	s.serveCached(w, r, v.etagScope(gr.Name()), key, v, func() (*cacheEntry, error) {
		body, err := marshalJSONBody(statsFor(gr.Name(), v, refined))
		if err != nil {
			return nil, err
		}
		return &cacheEntry{contentType: "application/json; charset=utf-8", body: body}, nil
	})
}

// statsFor renders one graph's stats doc. refined is the node-local
// anytime refinement watermark (nil until the graph's first anytime
// request): the doc reports convergence relative to the view's epoch, so
// "converged" flips false the instant a write publishes a newer epoch
// and back true when refinement catches up.
func statsFor(name string, v *view, refined *uint64) render.GraphStatsDoc {
	doc := render.GraphStats(name, v.stats)
	if v.mutable {
		doc = doc.WithEpoch(v.epoch)
	}
	if refined != nil {
		doc = doc.WithAnytime(*refined >= v.epoch, *refined)
	}
	return doc
}

// discover runs one validated discovery request at the epoch view,
// mapping failures to HTTP statuses via httpError: empty preview space
// is 422 (the request was well formed; the graph just cannot satisfy
// it). Failures pass through the cache layer uncached — only successful
// renders are retained. Mutable graphs route through the carried-forward
// incremental state (view.search); forceCold pins the per-view cold
// Discoverer for the differential tests.
func (s *Server) discover(v *view, p previewParams) (core.Preview, error) {
	c := p.Constraint
	c.MaxCandidates = s.SearchBudget
	var (
		pv  core.Preview
		err error
	)
	if s.forceCold {
		pv, err = v.Discoverer(p.Key, p.NonKey).Discover(c)
	} else {
		pv, err = v.search(p.Key, p.NonKey, c)
	}
	if err != nil {
		return core.Preview{}, mapDiscoveryError(err)
	}
	return pv, nil
}

// mapDiscoveryError wraps a core discovery failure with its HTTP status.
func mapDiscoveryError(err error) error {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, core.ErrNoPreview):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, core.ErrSearchBudget):
		status = http.StatusUnprocessableEntity
		err = fmt.Errorf("%w: the distance constraint admits too many key-attribute subsets; tighten mode/d or lower k", err)
	}
	return &httpError{status: status, err: err}
}

// anytimeCertified reports whether an anytime request can be answered
// exactly without a full search: the maintained state holds a valid
// certificate for (epoch, constraint) — or the mode is concise, where
// exact discovery is already cheap. Within one epoch this can only flip
// false→true, so it is usable as a cache-key bit. A true answer also
// marks the epoch refined (the exact answer is about to be served).
func (s *Server) anytimeCertified(gr *Graph, v *view, p previewParams) bool {
	if s.forceCold {
		// The differential reference serves exact answers only.
		return true
	}
	c := p.Constraint
	c.MaxCandidates = s.SearchBudget
	if c.Mode == core.Concise {
		gr.noteRefined(v.epoch)
		return true
	}
	m := gr.maintainedFor(v, p.Key, p.NonKey)
	if m == nil || !m.CertifiedAt(v.epoch, c) {
		return false
	}
	gr.noteRefined(v.epoch)
	return true
}

// anytimeDiscover answers an anytime request: exactly (through the
// certificate fast path) when certified, otherwise with the
// deterministic budget-bounded best-so-far, kicking off a background
// refinement toward a certificate for this epoch.
func (s *Server) anytimeDiscover(gr *Graph, v *view, p previewParams, certified bool) (core.Preview, error) {
	if certified {
		return s.discover(v, p)
	}
	ac := p.Constraint
	ac.MaxCandidates = s.AnytimeBudget
	var (
		pv  core.Preview
		err error
	)
	if m := gr.maintainedFor(v, p.Key, p.NonKey); m != nil {
		pv, _, err = m.AnytimeAt(v.epoch, ac)
	} else {
		err = core.ErrStaleEpoch
	}
	if errors.Is(err, core.ErrStaleEpoch) {
		// The shared state moved past this view's epoch; the view's own
		// cold Discoverer is bit-identical to the maintained one at this
		// epoch, so the bounded answer is the same bytes either way.
		pv, _, err = v.Discoverer(p.Key, p.NonKey).AnytimeBest(ac)
	}
	go s.refineAnytime(gr, v, p)
	if err != nil {
		return core.Preview{}, mapDiscoveryError(err)
	}
	return pv, nil
}

// refineAnytime runs the full search for an anytime request in the
// background, installing the certificate that lets the next request at
// this epoch serve the exact answer, and recording convergence for the
// stats doc. Concurrent refinements for one constraint collapse inside
// Maintained; a refinement that loses an epoch race simply exits — the
// newer epoch's own requests refine themselves.
func (s *Server) refineAnytime(gr *Graph, v *view, p previewParams) {
	c := p.Constraint
	c.MaxCandidates = s.SearchBudget
	m := gr.maintainedFor(v, p.Key, p.NonKey)
	if m == nil {
		return
	}
	_, err := m.DiscoverAt(v.epoch, c)
	if err == nil || errors.Is(err, core.ErrNoPreview) || errors.Is(err, core.ErrSearchBudget) {
		gr.noteRefined(v.epoch)
	}
}

func (s *Server) handlePreview(w http.ResponseWriter, r *http.Request, gr *Graph) {
	p, err := parsePreviewParams(r.URL.Query())
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	v := gr.view()
	key := "preview?" + p.canonical()
	var certified bool
	if p.Anytime {
		// The certification bit joins the cache key: the conv=false key
		// maps to the deterministic budget-bounded body, the conv=true key
		// to the exact body — each pure per (epoch, key). Within an epoch
		// the bit only flips false→true, so a client polling the same URL
		// sees the partial answer until refinement lands, then the exact
		// one (under a new ETag).
		certified = s.anytimeCertified(gr, v, p)
		key += fmt.Sprintf("&converged=%t", certified)
	}
	s.serveCached(w, r, v.etagScope(gr.Name()), key, v, func() (*cacheEntry, error) {
		var (
			pv  core.Preview
			err error
		)
		if p.Anytime {
			pv, err = s.anytimeDiscover(gr, v, p, certified)
		} else {
			pv, err = s.discover(v, p)
		}
		if err != nil {
			return nil, err
		}
		mode := constraintDoc{
			K:    p.Constraint.K,
			N:    p.Constraint.N,
			Mode: strings.ToLower(p.Constraint.Mode.String()),
		}
		if p.Constraint.Mode != core.Concise {
			d := p.Constraint.D
			mode.D = &d
		}
		resp := previewResponse{
			Graph:      gr.Name(),
			Constraint: mode,
			Key:        keyMeasureName(p.Key),
			NonKey:     nonKeyMeasureName(p.NonKey),
			Preview:    render.PreviewDocument(v.g, &pv, renderOptions(p)),
		}
		if p.Anytime {
			c := certified
			resp.Converged = &c
		}
		if v.mutable {
			epoch := v.epoch
			resp.Epoch = &epoch
		}
		body, err := marshalJSONBody(resp)
		if err != nil {
			return nil, err
		}
		return &cacheEntry{contentType: "application/json; charset=utf-8", body: body}, nil
	})
}

func (s *Server) handleRender(w http.ResponseWriter, r *http.Request, gr *Graph) {
	format := strings.ToLower(r.URL.Query().Get("format"))
	if format == "" {
		format = "text"
	}
	if format != "text" && format != "markdown" {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown format %q: want text or markdown", format))
		return
	}
	p, err := parsePreviewParams(r.URL.Query())
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	v := gr.view()
	key := "render?format=" + format + "&" + p.canonical()
	s.serveCached(w, r, v.etagScope(gr.Name()), key, v, func() (*cacheEntry, error) {
		pv, err := s.discover(v, p)
		if err != nil {
			return nil, err
		}
		// Rendering into a buffer (rather than streaming to the socket)
		// is what makes render failures reportable as 500s at all — the
		// old streaming path had already committed the status line.
		var buf bytes.Buffer
		opts := renderOptions(p)
		ct := "text/plain; charset=utf-8"
		if format == "markdown" {
			ct = "text/markdown; charset=utf-8"
			err = render.MarkdownPreview(&buf, v.g, &pv, opts)
		} else {
			err = render.Preview(&buf, v.g, &pv, opts)
		}
		if err != nil {
			return nil, err
		}
		return &cacheEntry{contentType: ct, body: buf.Bytes()}, nil
	})
}

// renderOptions maps request parameters onto render options. Sampling is
// reseeded per request so identical requests return identical tuples.
func renderOptions(p previewParams) render.Options {
	return render.Options{
		Tuples:         p.Tuples,
		Representative: p.Representative,
		Rand:           rand.New(rand.NewSource(1)),
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorDoc{Error: err.Error()})
}
