package service

// Adopter: the node-side machinery of graph migration. When the fleet
// router moves a graph between shards it drives three admin routes on
// the destination and source leaders (replication.go); an Adopter is
// what previewd wires behind them. Adopt starts a per-graph Follower
// tailing the graph from the old owner — checkpoint bootstrap over the
// ordinary replication routes, durable local WAL, contiguous applies —
// WITHOUT marking the whole registry as a follower, so the node keeps
// leading its other graphs; the adopted graph's own FollowState is what
// refuses direct writes until cutover. Promote stops the tail and opens
// the graph for writes (the router has already fenced the source, so
// nothing can land there anymore). Drop is the source side's cleanup:
// unregister the graph and delete its local WAL segments and
// checkpoints — the data now lives on the new owner.

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"github.com/uta-db/previewtables/internal/score"
	"github.com/uta-db/previewtables/internal/storage"
)

// Adopter hosts runtime graph adoption on a leader node. Safe for
// concurrent use; one Adopter serves a whole registry.
type Adopter struct {
	reg  *Registry
	opts FollowerOptions // Leader overridden per adoption

	mu sync.Mutex
	fs map[string]*Follower // graphs currently being adopted
}

// NewAdopter returns an Adopter whose adoptions replicate with opts
// (Walk, CheckpointDir, WALRoot, Wait, Backoff); opts.Leader is ignored
// — each adoption names its own source.
func NewAdopter(reg *Registry, opts FollowerOptions) *Adopter {
	return &Adopter{reg: reg, opts: opts, fs: make(map[string]*Follower)}
}

// Adopt begins replicating graph name from the leader at source
// directly (not through a router: mid-migration the ring still routes
// the graph's replication to the OLD owner only until cutover, and
// after cutover to the new one — a direct tail is immune to the flip).
func (a *Adopter) Adopt(name, source string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.fs[name]; ok {
		return fmt.Errorf("service: already adopting %q", name)
	}
	if a.opts.CheckpointDir != "" {
		// First adoption on a fresh node may precede any checkpointing.
		if err := os.MkdirAll(a.opts.CheckpointDir, 0o755); err != nil {
			return err
		}
	}
	opts := a.opts
	opts.Leader = source
	f, err := startFollower(a.reg, name, opts, false)
	if err != nil {
		return err
	}
	a.fs[name] = f
	return nil
}

// Promote completes an adoption: the replication loop stops, the follow
// status clears, and the graph accepts writes on this node. The caller
// (the router's migration pipeline) is responsible for having fenced
// the source and waited for this node to reach the source's durable
// epoch first.
func (a *Adopter) Promote(name string) error {
	a.mu.Lock()
	f := a.fs[name]
	delete(a.fs, name)
	a.mu.Unlock()
	if f == nil {
		return fmt.Errorf("service: not adopting %q", name)
	}
	return f.promoteGraph()
}

// Drop unregisters graph name and deletes its local durable state — WAL
// segment directory and checkpoints. Works on a led graph (the source
// side of a completed migration) and on an in-flight adoption (aborting
// it). Readers holding the old graph finish their requests; new ones
// 404.
func (a *Adopter) Drop(name string) error {
	a.mu.Lock()
	f := a.fs[name]
	delete(a.fs, name)
	a.mu.Unlock()

	gr, ok := a.reg.Remove(name)
	if !ok && f == nil {
		return fmt.Errorf("service: no graph %q", name)
	}
	var walDir string
	if f != nil {
		if f.wal != nil {
			walDir = f.wal.Dir()
		}
		f.Stop() // closes the WAL
	} else if gr != nil {
		if src := gr.replSrc(); src != nil && src.wal != nil {
			walDir = src.wal.Dir()
			src.wal.Close()
		}
	}
	if walDir != "" {
		if err := os.RemoveAll(walDir); err != nil {
			return err
		}
	}
	if a.opts.CheckpointDir != "" {
		if err := storage.RemoveCheckpoints(a.opts.CheckpointDir, name); err != nil {
			return err
		}
	}
	return nil
}

// RecoverAdopted recovers graphs this node adopted at runtime: every
// checkpoint manifest under ckptDir whose graph is not already
// registered (the -graph/-domain flags cover the provisioned ones) is
// recovered exactly like a flag-loaded durable graph — checkpoint plus
// WAL-tail replay — and registered mutable. An adopted graph thereby
// survives process restarts even though no flag names it. Returns
// name → Recovery so the caller can hand the WALs to its checkpoint
// loop.
func RecoverAdopted(reg *Registry, ckptDir, walRoot string, walk score.WalkOptions) (map[string]*Recovery, error) {
	ents, err := os.ReadDir(ckptDir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	out := make(map[string]*Recovery)
	for _, e := range ents {
		name, ok := strings.CutSuffix(e.Name(), ".current")
		if !ok || name == "" || name == "fence" { // fence.current is the fence manifest, not a graph
			continue
		}
		if _, ok := reg.Get(name); ok {
			continue
		}
		g, epoch, found, err := storage.LoadLatestCheckpoint(ckptDir, name)
		if err != nil {
			return out, fmt.Errorf("service: recovering adopted %q: %w", name, err)
		}
		if !found {
			continue
		}
		rec, err := recoverLiveAt(g, epoch, name, ckptDir, filepath.Join(walRoot, name), walk)
		if err != nil {
			return out, fmt.Errorf("service: recovering adopted %q: %w", name, err)
		}
		if err := reg.AddLive(name, rec.Live,
			WithDurability(rec.WAL), WithOrigin(rec.Origin, rec.OriginEpoch)); err != nil {
			rec.WAL.Close()
			return out, err
		}
		out[name] = rec
	}
	return out, nil
}

// Adopting reports whether name is currently mid-adoption.
func (a *Adopter) Adopting(name string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, ok := a.fs[name]
	return ok
}
